(* gen_golden — regenerate the flat-core golden schedule fingerprints.

   Writes one line per (family, seed, size, solver):

     family seed size solver n_rounds md5-of-Schedule.to_string

   The committed output (data/golden/schedules.tsv) was produced by the
   pre-CSR list-path planners; test/test_flatcore.ml replays every row
   against the current tree and fails on any drift.  Regenerating this
   file is therefore a deliberate act: it redefines the reference
   behavior, and belongs in a PR that argues why schedules may change.

     dune exec tools/golden/gen_golden.exe > data/golden/schedules.tsv *)

module M = Migration

let solvers = [ "auto"; "hetero"; "even-opt"; "greedy"; "saia" ]
let seeds = [ 1; 2; 3 ]
let sizes = [ 10; 26 ]

(* the perf-scale family is covered by the qcheck differential suite
   and experiment E11; fingerprinting it here would only slow the
   regeneration loop down *)
let families = List.filter (fun f -> f.Gen.name <> "huge") Gen.all

let () =
  print_string M.Golden.header;
  List.iter
    (fun fam ->
      List.iter
        (fun seed ->
          List.iter
            (fun size ->
              let inst = Gen.instance fam ~seed ~size in
              List.iter
                (fun solver ->
                  match M.Golden.fingerprint inst ~solver ~seed with
                  | None -> ()
                  | Some fp ->
                      Printf.printf "%s\t%d\t%d\t%s\t%d\t%s\n" fam.Gen.name
                        seed size solver fp.M.Golden.rounds fp.M.Golden.digest)
                solvers)
            sizes)
        seeds)
    families
