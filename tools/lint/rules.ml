(* The rule registry: one entry per enforced rule, the single source of
   truth for [--list-rules], the unknown-rule usage error, the allow
   attribute validator, and the doc/LINT.md drift check in CI.  Keep
   the list alphabetical — the CI drift check compares it against the
   rule-catalog headings of doc/LINT.md verbatim.

   [kind] records how a rule runs: [Syntactic] rules walk one parsed
   file at a time, [Tree] rules see the whole file list (layering,
   mli-coverage), [Interprocedural] rules need the typed ASTs (.cmt)
   and the repo-wide call graph (see cmt_loader.ml / callgraph.ml). *)

type kind = Syntactic | Tree | Interprocedural

type t = { name : string; kind : kind; summary : string }

let all =
  [
    {
      name = "determinism";
      kind = Syntactic;
      summary = "bare Random.* and wall-clock reads banned under lib/";
    };
    {
      name = "determinism-taint";
      kind = Interprocedural;
      summary =
        "no solver/planner entry point may transitively reach ambient \
         nondeterminism";
    };
    {
      name = "domain-escape";
      kind = Interprocedural;
      summary =
        "module-level mutable state must not escape unguarded into \
         worker-domain closures";
    };
    {
      name = "domain-safety";
      kind = Syntactic;
      summary = "module-level mutable state needs a reviewed guard";
    };
    {
      name = "exception";
      kind = Syntactic;
      summary = "catch-all handlers must re-raise";
    };
    {
      name = "hotpath";
      kind = Syntactic;
      summary = "no List/Hashtbl in the seven flat-core kernel files";
    };
    {
      name = "hotpath-deep";
      kind = Interprocedural;
      summary =
        "kernel entry points may not transitively reach allocating stdlib \
         calls";
    };
    {
      name = "layering";
      kind = Tree;
      summary = "the architecture DAG, from real ocamldep output";
    };
    {
      name = "mli-coverage";
      kind = Tree;
      summary = "every lib module declares its surface in a .mli";
    };
    {
      name = "probes";
      kind = Syntactic;
      summary = "probe registrations are literal, well-formed, unique";
    };
  ]

let names = List.map (fun r -> r.name) all
let is_known name = List.exists (fun r -> r.name = name) all

let interprocedural_requested enabled =
  List.exists (fun r -> r.kind = Interprocedural && enabled r.name) all
