(* Rule "probes": instrumentation cell names are a public, stable
   schema (they become --metrics-json keys and bench baselines), so
   every [Probes.counter] / [Probes.timer] / [Instr.counter] /
   [Instr.timer] registration must

   - pass the name as a string literal (otherwise the convention
     cannot be checked statically — annotate the rare parameterized
     registration with [@lint.allow "probes: ..."]);
   - match "<layer>.<name>": at least two lowercase [a-z0-9_]
     dot-separated segments, each starting with a letter;
   - be unique across the scanned tree: one name, one owning module,
     one cell kind.  The registration set doubles as the resolution
     table — a second registration elsewhere, or under the other kind,
     is a collision, not a new probe. *)

let rule = "probes"

type kind = Counter | Timer

type reg = { kind : kind; file : string; line : int }
type state = { tbl : (string, reg) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }
let kind_to_string = function Counter -> "counter" | Timer -> "timer"

let name_ok name =
  let seg_ok s =
    String.length s > 0
    && (match s.[0] with 'a' .. 'z' -> true | _ -> false)
    && String.for_all
         (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
         s
  in
  match String.split_on_char '.' name with
  | _ :: _ :: _ as segs -> List.for_all seg_ok segs
  | _ -> false

let check (st : state) (file : Source.file) (emit : Walk.emit) =
  let register ~loc ~kind name =
    if not (name_ok name) then
      emit ~rule ~loc
        (Printf.sprintf
           "probe name %S does not match \"<layer>.<name>\" (lowercase \
            dot-separated segments)"
           name)
    else
      match Hashtbl.find_opt st.tbl name with
      | Some prev when prev.kind <> kind ->
          emit ~rule ~loc
            (Printf.sprintf
               "probe %S registered as both %s and %s (first at %s:%d)" name
               (kind_to_string prev.kind) (kind_to_string kind) prev.file
               prev.line)
      | Some prev when prev.file <> file.path ->
          emit ~rule ~loc
            (Printf.sprintf
               "probe %S already registered at %s:%d — a probe name belongs \
                to exactly one module"
               name prev.file prev.line)
      | Some _ -> ()
      | None ->
          Hashtbl.add st.tbl name
            { kind; file = file.path; line = Walk.line_of loc }
  in
  let on_expr (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (Nolabel, arg) :: _) -> (
        match List.rev (Util.flatten txt) with
        | fn :: owner :: _
          when (fn = "counter" || fn = "timer")
               && (owner = "Probes" || owner = "Instr") -> (
            let kind = if fn = "counter" then Counter else Timer in
            match arg.pexp_desc with
            | Pexp_constant (Pconst_string (name, sloc, _)) ->
                register ~loc:sloc ~kind name
            | _ ->
                emit ~rule ~loc:arg.pexp_loc
                  "probe name is not a string literal — the \
                   \"<layer>.<name>\" convention cannot be checked; extract \
                   a literal or annotate [@lint.allow \"probes: ...\"]")
        | _ -> ())
    | _ -> ()
  in
  { Walk.no_check with on_expr }
