(* Rule "hotpath": the flat-core contract for the seven hot kernels
   (Euler orientation, graph traversal, König and Vizing coloring,
   recoloring walks, max-flow, degree-constrained b-matching).  Their
   steady-state loops run once per edge per round over ~1e6-edge
   instances, so they must iterate the CSR adjacency with arena
   scratch — no boxed [List] chains, no [Hashtbl] probes — or the
   allocation budget the perf gate enforces (bench/gate.ml) is blown.

   Any [List.*] or [Hashtbl.*] reference in these files is flagged.
   Cold paths through the same modules (list-returning public APIs,
   once-per-solve component fan-out) do exist; those sites carry an
   explicit [@lint.allow "hotpath: reason"] stating why the use is off
   the per-edge path.  The point is that reaching for a list in these
   files is a reviewed decision, not a default. *)

let rule = "hotpath"

(* basenames of the hot-kernel implementation files *)
let hot_files =
  [
    "euler.ml";
    "traversal.ml";
    "konig.ml";
    "vizing.ml";
    "recolor.ml";
    "max_flow.ml";
    "bmatching.ml";
  ]

let banned_head = function
  | "List" | "Hashtbl" -> true
  | _ -> false

let check (file : Source.file) (emit : Walk.emit) =
  let hot =
    match file.scope with
    | Source.Lib _ -> List.mem (Filename.basename file.path) hot_files
    | _ -> false
  in
  if not hot then Walk.no_check
  else
    let on_expr (e : Parsetree.expression) =
      match e.pexp_desc with
      | Pexp_ident { txt; loc } -> (
          match Util.flatten txt with
          | head :: (_ :: _ as rest) when banned_head head ->
              emit ~rule ~loc
                (Printf.sprintf
                   "%s.%s in a hot kernel — steady-state loops iterate the \
                    CSR view with arena scratch; if this site is genuinely \
                    off the per-edge path, annotate it with [@lint.allow \
                    \"hotpath: reason\"]"
                   head
                   (String.concat "." rest))
          | "Stdlib" :: head :: (_ :: _ as rest) when banned_head head ->
              emit ~rule ~loc
                (Printf.sprintf
                   "Stdlib.%s.%s in a hot kernel — steady-state loops \
                    iterate the CSR view with arena scratch"
                   head (String.concat "." rest))
          | _ -> ())
      | _ -> ()
    in
    { Walk.no_check with on_expr }
