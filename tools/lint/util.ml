let rec flatten (lid : Longident.t) =
  match lid with
  | Lident s -> [ s ]
  | Ldot (l, s) -> flatten l @ [ s ]
  | Lapply _ -> []
