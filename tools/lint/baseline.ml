(* Ratchet mode.

   A baseline file records the findings a codebase currently has, one
   key per line; --baseline FILE then fails the run only on findings
   *not* in the file, so a rule can be turned on before the last
   legacy finding is burned down, while still blocking regressions.

   Keys are "file<TAB>rule<TAB>message" — deliberately line-number-
   and chain-insensitive, so unrelated edits that shift a legacy
   finding by a few lines (or reroute its witness chain) do not
   resurrect it.  --write-baseline FILE regenerates the file from the
   current findings, sorted and de-duplicated, for the burn-down
   commits that fix some of them. *)

let key (f : Finding.t) = String.concat "\t" [ f.file; f.rule; f.message ]

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let keys = Hashtbl.create 64 in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then Hashtbl.replace keys line ()
         done
       with End_of_file -> ());
      keys)

let write path findings =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.map key findings
      |> List.sort_uniq String.compare
      |> List.iter (fun k -> output_string oc (k ^ "\n")))

(* (new findings, baselined-away count) *)
let filter keys findings =
  let fresh, old =
    List.partition (fun f -> not (Hashtbl.mem keys (key f))) findings
  in
  (fresh, List.length old)
