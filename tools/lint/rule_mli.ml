(* Rule "mli-coverage": every library module must declare its public
   surface in a .mli.  An interface is where invariants get written
   down (and where the other rules' contracts become API contracts);
   an .ml without one exports every helper by accident. *)

let rule = "mli-coverage"

let run (files : Source.file list) ~(file_allowed : string -> string -> bool) =
  List.filter_map
    (fun (f : Source.file) ->
      match f.scope with
      | Source.Lib _
        when Filename.check_suffix f.path ".ml"
             && (not (Sys.file_exists (f.path ^ "i")))
             && not (file_allowed f.path rule) ->
          Some
            (Finding.v ~file:f.path ~line:1 ~rule
               "library module has no .mli interface — declare its public \
                surface")
      | _ -> None)
    files
