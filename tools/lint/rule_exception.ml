(* Rule "exception": a catch-all handler ([with _ ->], [with _e ->],
   or a [match]'s [exception _ ->] case) that does not re-raise
   swallows everything — including Out_of_memory, Stack_overflow and
   the assertion failures the certifier and fuzz loop rely on to
   surface broken planners.  Match the specific exceptions you expect,
   bind and log the exception, or re-raise. *)

let rule = "exception"

let rec catch_all (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_var { txt; _ } -> String.length txt > 0 && txt.[0] = '_'
  | Ppat_alias (p, _) -> catch_all p
  | Ppat_or (a, b) -> catch_all a || catch_all b
  | Ppat_constraint (p, _) -> catch_all p
  | Ppat_exception p -> catch_all p
  | _ -> false

let reraises (e : Parsetree.expression) =
  let found = ref false in
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      expr =
        (fun it (e : Parsetree.expression) ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
              match List.rev (Util.flatten txt) with
              | ("raise" | "raise_notrace" | "raise_with_backtrace") :: _ ->
                  found := true
              | _ -> ())
          | _ -> ());
          default.expr it e);
    }
  in
  it.expr it e;
  !found

let check (_file : Source.file) (emit : Walk.emit) =
  let flag_cases cases =
    List.iter
      (fun (c : Parsetree.case) ->
        if catch_all c.pc_lhs && not (reraises c.pc_rhs) then
          emit ~rule ~loc:c.pc_lhs.ppat_loc
            "catch-all exception handler swallows the exception — match \
             specific exceptions, bind and report it, or re-raise")
      cases
  in
  let on_expr (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_try (_, cases) -> flag_cases cases
    | Pexp_match (_, cases) ->
        flag_cases
          (List.filter
             (fun (c : Parsetree.case) ->
               match c.pc_lhs.ppat_desc with
               | Ppat_exception _ -> true
               | _ -> false)
             cases)
    | _ -> ()
  in
  { Walk.no_check with on_expr }
