(* Rule "domain-escape": a static race detector for the parallel
   execution paths.

   The syntactic "domain-safety" rule flags every module-level mutable
   binding, shared or not.  This rule is the precise replacement: a
   module-level mutable is only a race candidate when it *escapes*
   into code that actually runs on worker domains — a closure passed
   to [Exec.map], [Exec.with_pool], or [Even_optimal.schedule].

   Concretely: every application of a parallel sink is located in the
   call graph; the value references inside its argument expressions
   are the escape roots (the closures and the helpers they name).
   Everything reachable from a root may execute on a worker domain.
   A module-level mutable binding referenced from that region is
   flagged at its definition site, with the chain from escape root to
   the access — unless its constructor is a safe cell (Atomic, Mutex,
   Domain.DLS), it carries [@@lint.domain_safe "reason"], or every def
   that touches it also references [Mutex.lock]/[Mutex.protect] (the
   lock discipline is visible, so the sharing is a reviewed decision).

   A mutable used only from sequential code no longer needs an
   annotation under this rule — that is the precision the
   over-approximating syntactic rule could not offer. *)

let rule = "domain-escape"

let sink_name = function
  | [ "Exec"; "map" ] -> Some "Exec.map"
  | [ "Exec"; "with_pool" ] -> Some "Exec.with_pool"
  | [ "Migration__Even_optimal"; "schedule" ] -> Some "Even_optimal.schedule"
  | _ -> None

let guard_ref (r : Callgraph.reference) =
  match r.target with
  | [ "Stdlib"; "Mutex"; ("lock" | "protect") ] -> true
  | _ -> false

let lib_def (d : Callgraph.def) =
  match d.scope with Source.Lib _ -> true | _ -> false

let run (g : Callgraph.t) emit =
  (* escape roots: defs named inside a parallel sink's arguments,
     remembering which sink pulled each root in (first wins, in
     deterministic def order) *)
  let root_sink : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let roots = ref [] in
  Callgraph.iter_defs g (fun d ->
      List.iter
        (fun (a : Callgraph.apply) ->
          match sink_name a.a_head with
          | Some sink ->
              List.iter
                (fun (r : Callgraph.reference) ->
                  let key = String.concat "." r.target in
                  match Callgraph.find g key with
                  | Some rd ->
                      if not (Hashtbl.mem root_sink key) then (
                        Hashtbl.replace root_sink key
                          (Printf.sprintf "%s at %s:%d" sink d.file a.a_line);
                        roots := rd :: !roots)
                  | None -> ())
                a.a_args
          | None -> ())
        d.applies);
  let parents =
    Callgraph.bfs g ~sources:!roots ~skip:(fun _ -> false)
  in
  (* lock discipline: every def that references the mutable also
     references Mutex.lock/protect *)
  let all_accessors_guarded (m : Callgraph.def) =
    let accessors = ref [] in
    Callgraph.iter_defs g (fun d ->
        if
          d.key <> m.key
          && List.exists
               (fun (r : Callgraph.reference) ->
                 String.concat "." r.target = m.key)
               d.refs
        then accessors := d :: !accessors);
    !accessors <> []
    && List.for_all
         (fun (d : Callgraph.def) -> List.exists guard_ref d.refs)
         !accessors
  in
  Callgraph.iter_defs g (fun m ->
      match m.mutability with
      | Callgraph.Mutable what
        when lib_def m
             && Callgraph.reachable parents m
             && (not m.domain_safe)
             && (not (List.mem rule m.allows))
             && not (all_accessors_guarded m) ->
          let chain_defs = Callgraph.chain_defs g parents m in
          let chain = List.map Callgraph.display_def chain_defs in
          let via =
            match chain_defs with
            | root :: _ -> (
                match Hashtbl.find_opt root_sink root.key with
                | Some s -> s
                | None -> "a parallel region")
            | [] -> "a parallel region"
          in
          emit ~file:m.file ~line:m.line ~rule ~chain
            (Printf.sprintf
               "module-level mutable state %s (%s) escapes unguarded into \
                %s — worker domains may race on it; use Atomic/Mutex, pass \
                state explicitly, or annotate [@@lint.domain_safe \
                \"reason\"]"
               (Callgraph.display_def m)
               what via)
      | _ -> ())
