(* Rule "determinism": reproducibility is a hard contract (bit-identical
   schedules at any --jobs, (seed, family, size) as a complete
   reproducer), so library code may not consult ambient entropy.

   Banned under lib/:
   - any value of the global-state [Random] module (Random.self_init,
     Random.int, ...) — randomness must flow through an explicitly
     seeded [Random.State.t];
   - [Random.State.make_self_init] — a seeded state from an unseeded
     source;
   - wall-clock reads ([Unix.gettimeofday], [Unix.time], [Sys.time])
     outside lib/instr — timing belongs to the instrumentation layer
     ([Probes.now_s] / [Probes.time]), which keeps it out of planning
     decisions.

   bin/ and bench/ are exempt: the CLI seeds states from user flags
   and the benchmarks legitimately measure wall time. *)

let rule = "determinism"

let wall_clock = function
  | [ "Unix"; "gettimeofday" ]
  | [ "Unix"; "time" ]
  | [ "Sys"; "time" ]
  | [ "Stdlib"; "Sys"; "time" ] ->
      true
  | _ -> false

let check (file : Source.file) (emit : Walk.emit) =
  match file.scope with
  | Lib lib ->
      let on_expr (e : Parsetree.expression) =
        match e.pexp_desc with
        | Pexp_ident { txt; loc } -> (
            match Util.flatten txt with
            | [ "Random"; "State"; "make_self_init" ] ->
                emit ~rule ~loc
                  "Random.State.make_self_init draws from ambient entropy \
                   — seed the state explicitly"
            | [ "Random"; fn ] ->
                emit ~rule ~loc
                  (Printf.sprintf
                     "bare Random.%s uses the global RNG — thread an \
                      explicitly seeded Random.State instead"
                     fn)
            | path when wall_clock path && lib <> "probes" ->
                emit ~rule ~loc
                  (Printf.sprintf
                     "wall-clock call %s — timing belongs to the \
                      instrumentation layer (Probes.now_s / Probes.time)"
                     (String.concat "." path))
            | _ -> ())
        | _ -> ()
      in
      { Walk.no_check with on_expr }
  | _ -> Walk.no_check
