(* migrate-lint: repo-aware static analysis for the migration codebase.

     dune exec tools/lint/main.exe -- lib bin bench

   Walks every .ml under the given paths with the compiler-libs parser
   (plus an ocamldep pass for layering) and prints findings as
   "file:line rule message", one per line, sorted.  Exit status: 0
   clean, 1 findings, 2 usage or internal error.  See doc/LINT.md for
   the rule catalog and suppression semantics. *)

let usage =
  "usage: lint [--rules r1,r2] [--list-rules] PATH...\n\
   Rules: determinism domain-safety layering exception probes\n\
 \  mli-coverage hotpath"

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("lint: " ^ msg);
      exit 2)
    fmt

let () =
  let rules_filter = ref None in
  let paths = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--list-rules" :: _ ->
        List.iter print_endline Allow.known_rules;
        exit 0
    | "--rules" :: spec :: rest ->
        let rs = String.split_on_char ',' spec |> List.map String.trim in
        List.iter
          (fun r ->
            if not (List.mem r Allow.known_rules) then
              fail "unknown rule %S (try --list-rules)" r)
          rs;
        rules_filter := Some rs;
        parse_args rest
    | "--rules" :: [] -> fail "--rules needs an argument"
    | ("--help" | "-h") :: _ ->
        print_endline usage;
        exit 0
    | p :: rest ->
        if not (Sys.file_exists p) then fail "no such file or directory: %s" p;
        paths := p :: !paths;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if !paths = [] then fail "no paths given\n%s" usage;
  let enabled r =
    match !rules_filter with None -> true | Some rs -> List.mem r rs
  in
  let files = Source.discover (List.rev !paths) in
  let ml_files =
    List.filter
      (fun (f : Source.file) -> Filename.check_suffix f.path ".ml")
      files
  in
  let file_allows : (string, string list) Hashtbl.t = Hashtbl.create 64 in
  let file_allowed path rule =
    match Hashtbl.find_opt file_allows path with
    | Some rules -> List.mem rule rules
    | None -> false
  in
  let probes_state = Rule_probes.create () in
  let ast_findings =
    List.concat_map
      (fun (file : Source.file) ->
        match Source.parse_implementation file.path with
        | exception exn ->
            [
              Finding.v ~file:file.path ~line:1 ~rule:"parse"
                (Printexc.to_string exn);
            ]
        | str ->
            let make_checks emit =
              List.concat
                [
                  (if enabled "determinism" then
                     [ Rule_determinism.check file emit ]
                   else []);
                  (if enabled "domain-safety" then
                     [ Rule_domain_safety.check file str emit ]
                   else []);
                  (if enabled "exception" then
                     [ Rule_exception.check file emit ]
                   else []);
                  (if enabled "probes" then
                     [ Rule_probes.check probes_state file emit ]
                   else []);
                  (if enabled "hotpath" then [ Rule_hotpath.check file emit ]
                   else []);
                ]
            in
            let findings, allows = Walk.run ~file ~make_checks str in
            Hashtbl.replace file_allows file.path allows;
            findings)
      ml_files
  in
  let layering =
    if enabled "layering" then Rule_layering.run files ~file_allowed else []
  in
  let mli =
    if enabled "mli-coverage" then Rule_mli.run files ~file_allowed else []
  in
  let all =
    List.sort Finding.order (List.concat [ ast_findings; layering; mli ])
  in
  List.iter (fun f -> print_endline (Finding.to_string f)) all;
  if all <> [] then exit 1
