(* migrate-lint: repo-aware static analysis for the migration codebase.

     dune exec tools/lint/main.exe -- lib bin bench

   Walks every .ml under the given paths with the compiler-libs parser
   (plus an ocamldep pass for layering), and — for the interprocedural
   rules — loads the .cmt typed ASTs dune leaves next to the build
   artifacts, builds the repo-wide call graph, and follows calls
   across module boundaries.  Findings print as "file:line rule
   message", one per line, sorted; interprocedural findings append
   their witnessing call chain.  Exit status: 0 clean, 1 findings, 2
   usage or internal error.  See doc/LINT.md for the rule catalog and
   suppression semantics. *)

let usage =
  Printf.sprintf
    "usage: lint [options] PATH...\n\
     \  --rules r1,r2         run only the named rules\n\
     \  --list-rules          print the rule names and exit\n\
     \  --format text|json    output format (json = one object per line)\n\
     \  --baseline FILE       fail only on findings not in FILE\n\
     \  --write-baseline FILE record current findings in FILE and exit\n\
     Rules: %s"
    (String.concat " " Rules.names)

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("lint: " ^ msg);
      exit 2)
    fmt

type format = Text | Json

let () =
  let rules_filter = ref None in
  let paths = ref [] in
  let format = ref Text in
  let baseline = ref None in
  let write_baseline = ref None in
  let rec parse_args = function
    | [] -> ()
    | "--list-rules" :: _ ->
        List.iter print_endline Rules.names;
        exit 0
    | "--rules" :: spec :: rest ->
        let rs = String.split_on_char ',' spec |> List.map String.trim in
        List.iter
          (fun r ->
            if not (Rules.is_known r) then
              fail "unknown rule %S — known rules:\n  %s" r
                (String.concat "\n  " Rules.names))
          rs;
        rules_filter := Some rs;
        parse_args rest
    | "--format" :: f :: rest ->
        (match f with
        | "text" -> format := Text
        | "json" -> format := Json
        | other -> fail "unknown format %S (text or json)" other);
        parse_args rest
    | "--baseline" :: file :: rest ->
        if not (Sys.file_exists file) then
          fail "no such baseline file: %s" file;
        baseline := Some file;
        parse_args rest
    | "--write-baseline" :: file :: rest ->
        write_baseline := Some file;
        parse_args rest
    | [ ("--rules" | "--format" | "--baseline" | "--write-baseline") ] ->
        fail "missing argument\n%s" usage
    | ("--help" | "-h") :: _ ->
        print_endline usage;
        exit 0
    | p :: rest ->
        if not (Sys.file_exists p) then fail "no such file or directory: %s" p;
        paths := p :: !paths;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if !paths = [] then fail "no paths given\n%s" usage;
  let roots = List.rev !paths in
  let enabled r =
    match !rules_filter with None -> true | Some rs -> List.mem r rs
  in
  let files = Source.discover roots in
  let ml_files =
    List.filter
      (fun (f : Source.file) -> Filename.check_suffix f.path ".ml")
      files
  in
  let file_allows : (string, string list) Hashtbl.t = Hashtbl.create 64 in
  let file_allowed path rule =
    match Hashtbl.find_opt file_allows path with
    | Some rules -> List.mem rule rules
    | None -> false
  in
  let probes_state = Rule_probes.create () in
  let ast_findings =
    List.concat_map
      (fun (file : Source.file) ->
        match Source.parse_implementation file.path with
        | exception exn ->
            [
              Finding.v ~file:file.path ~line:1 ~rule:"parse"
                (Printexc.to_string exn);
            ]
        | str ->
            let make_checks emit =
              List.concat
                [
                  (if enabled "determinism" then
                     [ Rule_determinism.check file emit ]
                   else []);
                  (if enabled "domain-safety" then
                     [ Rule_domain_safety.check file str emit ]
                   else []);
                  (if enabled "exception" then
                     [ Rule_exception.check file emit ]
                   else []);
                  (if enabled "probes" then
                     [ Rule_probes.check probes_state file emit ]
                   else []);
                  (if enabled "hotpath" then [ Rule_hotpath.check file emit ]
                   else []);
                ]
            in
            let findings, allows = Walk.run ~file ~make_checks str in
            Hashtbl.replace file_allows file.path allows;
            findings)
      ml_files
  in
  let layering =
    if enabled "layering" then Rule_layering.run files ~file_allowed else []
  in
  let mli =
    if enabled "mli-coverage" then Rule_mli.run files ~file_allowed else []
  in
  let interproc =
    if not (Rules.interprocedural_requested enabled) then []
    else begin
      let units, missing = Cmt_loader.load ~roots ~sources:files in
      let acc = ref [] in
      List.iter
        (fun (f : Source.file) ->
          acc :=
            Finding.v ~file:f.path ~line:1 ~rule:"cmt"
              "no typed AST (.cmt) found for this file — build the tree \
               first (dune build @check) so the interprocedural rules can \
               analyze it"
            :: !acc)
        missing;
      let g = Callgraph.build units in
      let emit ~file ~line ~rule ~chain msg =
        acc := Finding.v ~file ~line ~rule ~chain msg :: !acc
      in
      if enabled "determinism-taint" then Rule_taint.run g emit;
      if enabled "domain-escape" then Rule_escape.run g emit;
      if enabled "hotpath-deep" then Rule_hotpath_deep.run g emit;
      !acc
    end
  in
  let all =
    List.sort Finding.order
      (List.concat [ ast_findings; layering; mli; interproc ])
  in
  (match !write_baseline with
  | Some file ->
      Baseline.write file all;
      Printf.eprintf "lint: wrote %d baseline entr%s to %s\n" (List.length all)
        (if List.length all = 1 then "y" else "ies")
        file;
      exit 0
  | None -> ());
  let all, suppressed =
    match !baseline with
    | Some file -> Baseline.filter (Baseline.load file) all
    | None -> (all, 0)
  in
  let render =
    match !format with Text -> Finding.to_string | Json -> Finding.to_json
  in
  List.iter (fun f -> print_endline (render f)) all;
  flush stdout;
  if suppressed > 0 then (
    Printf.eprintf "lint: %d finding(s) suppressed by baseline\n" suppressed;
    flush stderr);
  if all <> [] then exit 1
