(* Rule "layering": the architecture dependency DAG, enforced from
   ocamldep output rather than dune stanzas, so an over-permissive
   `libraries` field cannot smuggle in an edge the architecture
   forbids (core -> sim, gen -> sim, coloring/flow/mgraph -> core, ...).

   Every library is wrapped, so a cross-library reference necessarily
   goes through the target's interface module (Mgraph, Netflow,
   Coloring, Probes, Exec, Migration, Gen, Storsim, Workloads,
   Distproto); ocamldep -modules surfaces exactly those names.  Any
   module name outside that table is stdlib or library-internal and is
   ignored.  bin/ and bench/ sit at the top of the DAG and may use
   everything. *)

let rule = "layering"

let interface_libs =
  [
    ("Mgraph", "mgraph");
    ("Netflow", "netflow");
    ("Coloring", "coloring");
    ("Probes", "probes");
    ("Exec", "exec");
    ("Migration", "migration");
    ("Gen", "gen");
    ("Storsim", "storsim");
    ("Workloads", "workloads");
    ("Distproto", "distproto");
    ("Service", "service");
  ]

(* lib name -> libraries it may depend on.  This is the architecture
   contract, deliberately independent of the dune files. *)
let allowed =
  [
    ("probes", []);
    ("mgraph", []);
    ("exec", [ "probes" ]);
    (* exec is parallel infrastructure (a domain pool), not an upper
       layer: the flow/coloring kernels take an optional pool to solve
       independent per-component subproblems concurrently *)
    ("netflow", [ "mgraph"; "probes"; "exec" ]);
    ("coloring", [ "mgraph"; "netflow"; "probes"; "exec" ]);
    ("migration", [ "mgraph"; "netflow"; "coloring"; "probes"; "exec" ]);
    ( "gen",
      [ "mgraph"; "netflow"; "coloring"; "probes"; "exec"; "migration" ] );
    ( "storsim",
      [ "mgraph"; "netflow"; "coloring"; "probes"; "exec"; "migration" ] );
    ( "workloads",
      [
        "mgraph"; "netflow"; "coloring"; "probes"; "exec"; "migration";
        "storsim";
      ] );
    (* the coordinator/worker split: the distributed control plane
       executes certified plans over real processes, so it may use the
       core planning stack and the exec substrate — and nothing under
       lib/ may use it back except the service daemon.  Keeping storsim
       and workloads out of dist keeps the worker side mechanical: it
       receives shards, it does not invent scenarios *)
    ( "distproto",
      [ "mgraph"; "netflow"; "coloring"; "probes"; "exec"; "migration" ] );
    (* the streaming daemon sits at the top of the library DAG: it may
       drive the engine, simulation faults, workload re-layouts, and
       the distributed control plane, but no library depends back on
       it — only bin/ and the tests *)
    ( "service",
      [
        "mgraph"; "netflow"; "coloring"; "probes"; "exec"; "migration";
        "storsim"; "workloads"; "distproto";
      ] );
  ]

let ident_char = function
  | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

let mentions_module line m =
  let lm = String.length m and ll = String.length line in
  let rec from i =
    if i + lm > ll then false
    else
      match String.index_from_opt line i m.[0] with
      | None -> false
      | Some j ->
          if
            j + lm <= ll
            && String.sub line j lm = m
            && (j = 0 || (not (ident_char line.[j - 1])) && line.[j - 1] <> '.')
            && (j + lm = ll || not (ident_char line.[j + lm]))
          then true
          else from (j + 1)
  in
  from 0

(* First line referencing module [m], for a clickable location. *)
let dep_line path m =
  match open_in path with
  | exception Sys_error _ -> 1
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go n =
            match input_line ic with
            | line -> if mentions_module line m then n else go (n + 1)
            | exception End_of_file -> 1
          in
          go 1)

let parse_line line =
  match String.index_opt line ':' with
  | None -> None
  | Some i ->
      let path = String.sub line 0 i in
      let mods =
        String.sub line (i + 1) (String.length line - i - 1)
        |> String.split_on_char ' '
        |> List.filter (fun s -> s <> "")
      in
      Some (path, mods)

let run (files : Source.file list) ~(file_allowed : string -> string -> bool) =
  let scanned =
    List.filter
      (fun (f : Source.file) ->
        match f.scope with Source.Lib _ -> true | _ -> false)
      files
  in
  if scanned = [] then []
  else
    let cmd =
      Filename.quote_command "ocamldep"
        ("-modules" :: List.map (fun (f : Source.file) -> f.path) scanned)
    in
    let ic = Unix.open_process_in cmd in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 ->
        List.rev !lines
        |> List.concat_map (fun line ->
               match parse_line line with
               | None -> []
               | Some (path, mods) -> (
                   match (Source.classify path).scope with
                   | Source.Lib l when not (file_allowed path rule) ->
                       let deps_ok =
                         Option.value ~default:[] (List.assoc_opt l allowed)
                       in
                       List.filter_map
                         (fun m ->
                           match List.assoc_opt m interface_libs with
                           | Some t when t <> l && not (List.mem t deps_ok) ->
                               Some
                                 (Finding.v ~file:path ~line:(dep_line path m)
                                    ~rule
                                    (Printf.sprintf
                                       "library %S must not depend on %S \
                                        (via module %s) — architecture DAG \
                                        violation"
                                       l t m))
                           | _ -> None)
                         mods
                   | _ -> []))
    | _ ->
        [
          Finding.v ~file:"(ocamldep)" ~line:1 ~rule
            "ocamldep invocation failed — layering not checked";
        ]
