(* Rule "hotpath-deep": the flat-core allocation contract, enforced
   over whole call chains.

   The syntactic "hotpath" rule bans List/Hashtbl references written
   directly in the seven kernel files.  That stops at the file
   boundary: a kernel calling a helper in another module that builds a
   list per edge passes the syntactic rule and still blows the
   allocation budget the perf gate measures.  This rule follows the
   calls: starting from the exported values of the kernel units, every
   transitively reachable lib/ def is scanned for List/Hashtbl
   references, and each unreviewed one is a finding carrying the
   chain from the kernel entry to the allocation site.

   Review markers are shared with the syntactic rule: a site under
   [@lint.allow "hotpath: reason"] is already a reviewed cold-path
   decision and is not re-flagged here; [@lint.allow "hotpath-deep:
   reason"] marks sites that are only cold in their interprocedural
   context.  The probes library (instrumentation, compiled out of the
   measured configuration) is not traversed.  Conversely, a private
   List helper in a kernel file that no exported entry reaches is
   accepted here even though the syntactic rule flags it — depth and
   reachability, not file membership, decide. *)

let rule = "hotpath-deep"

let alloc_name = function
  | "Stdlib" :: (("List" | "Hashtbl") as m) :: (_ :: _ as rest) ->
      Some (String.concat "." (m :: rest))
  | _ -> None

let in_probes (d : Callgraph.def) =
  match d.scope with Source.Lib "probes" -> true | _ -> false

let lib_def (d : Callgraph.def) =
  match d.scope with Source.Lib _ -> not (in_probes d) | _ -> false

let run (g : Callgraph.t) emit =
  let entries = ref [] in
  Callgraph.iter_defs g (fun d ->
      if
        lib_def d && d.exported
        && List.mem d.basename Rule_hotpath.hot_files
      then entries := d :: !entries);
  let parents = Callgraph.bfs g ~sources:!entries ~skip:in_probes in
  Callgraph.iter_defs g (fun d ->
      if lib_def d && Callgraph.reachable parents d then
        List.iter
          (fun (r : Callgraph.reference) ->
            match alloc_name r.target with
            | Some alloc
              when (not (List.mem "hotpath" r.r_allows))
                   && not (List.mem rule r.r_allows) ->
                let chain = Callgraph.chain g parents d @ [ alloc ] in
                emit ~file:d.file ~line:r.r_line ~rule ~chain
                  (Printf.sprintf
                     "%s allocates on a kernel path — a hot entry point \
                      reaches this site; keep per-edge loops on the CSR \
                      view, or mark a reviewed cold path with [@lint.allow \
                      \"hotpath-deep: reason\"]"
                     alloc)
            | _ -> ())
          d.refs)
