(* Rule "determinism-taint": the interprocedural determinism contract.

   The syntactic "determinism" rule bans writing Random.int or a
   wall-clock read directly in a lib/ file.  This rule closes the
   loophole it leaves open: a solver entry point calling a helper
   calling a helper that rolls the dice.  Seeds are references to the
   ambient-nondeterminism primitives — the global [Random] generator
   (including [Random.State.make_self_init], which launders ambient
   entropy into an explicit state) and wall-clock reads — anywhere in
   lib/ outside the probes library.  Taint propagates backwards over
   the call graph: any seed inside a def reachable from an exported
   lib value is a finding, reported at the seed's source line with the
   witnessing call chain.

   Explicitly seeded randomness ([Random.State.int st]) is fine — the
   caller owns the state, so runs replay.  The probes library is
   instrumentation and is neither traversed nor seeded, matching the
   wall-clock exemption the syntactic rule grants it.  A seed that no
   exported value can reach (a dead or internal-only helper) is
   accepted: the contract is about what solver users can observe.
   Suppress at the seed site or its binding with
   [@lint.allow "determinism-taint: reason"]. *)

let rule = "determinism-taint"

let seed_name = function
  | [ "Stdlib"; "Random"; "State"; ("make_self_init" as fn) ]
  | [ "Stdlib"; "Random"; ("self_init" as fn) ] ->
      Some ("Random." ^ fn ^ " (ambient entropy)")
  | [ "Stdlib"; "Random"; "State"; _ ] -> None
  | [ "Stdlib"; "Random"; fn ] -> Some ("Random." ^ fn)
  | [ "Unix"; (("gettimeofday" | "time") as fn) ] ->
      Some ("Unix." ^ fn ^ " (wall clock)")
  | [ "Stdlib"; "Sys"; "time" ] -> Some "Sys.time (wall clock)"
  | _ -> None

let in_probes (d : Callgraph.def) =
  match d.scope with Source.Lib "probes" -> true | _ -> false

let lib_def (d : Callgraph.def) =
  match d.scope with Source.Lib _ -> not (in_probes d) | _ -> false

let run (g : Callgraph.t) emit =
  let entries = ref [] in
  Callgraph.iter_defs g (fun d ->
      if lib_def d && d.exported then entries := d :: !entries);
  let parents = Callgraph.bfs g ~sources:!entries ~skip:in_probes in
  Callgraph.iter_defs g (fun d ->
      if lib_def d && Callgraph.reachable parents d then
        List.iter
          (fun (r : Callgraph.reference) ->
            match seed_name r.target with
            | Some seed when not (List.mem rule r.r_allows) ->
                let chain = Callgraph.chain g parents d @ [ seed ] in
                let entry =
                  match chain with e :: _ -> e | [] -> assert false
                in
                emit ~file:d.file ~line:r.r_line ~rule ~chain
                  (Printf.sprintf
                     "%s is reachable from exported entry point %s — solver \
                      paths must be deterministic; take explicit state or \
                      seed, or suppress with [@lint.allow \
                      \"determinism-taint: reason\"]"
                     seed entry)
            | _ -> ())
          d.refs)
