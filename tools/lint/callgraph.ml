(* Repo-wide call graph over the typed ASTs.

   Nodes are module-level value bindings ("defs"), one per bound name,
   keyed by "<Unit>.<path>" (e.g. "Migration__Solver.solve").  Edges
   are value references: [f] -> [g] whenever [f]'s body mentions [g] —
   a deliberate over-approximation of "may call" that also covers
   passing [g] around as a closure.

   Cross-module references are resolved through the module-alias
   table: every wrapped library compiles against a dune-generated
   alias unit (module Solver = Migration__Solver), and the umbrella
   interface modules re-alias the same units (module Solver =
   Migration__.Solver), so a reference seen as Migration__.Solver.run
   or Migration.Solver.run canonicalizes to Migration__Solver.run by
   rewriting through Tmod_ident bindings until a fixpoint.  References
   whose head is a local identifier resolve through per-unit tables of
   module-level binders (Ident.unique_name keyed, so shadowing is
   harmless); genuine locals — function parameters, let-bound
   temporaries — resolve to nothing and are dropped.

   Stdlib and other out-of-tree references stay as their raw
   canonical path (["Stdlib"; "Random"; "int"]); the rules pattern
   match on those for taint seeds and allocation sites. *)

type reference = {
  target : string list;  (** canonical path *)
  r_line : int;
  r_allows : string list;
      (** [@lint.allow] rules active at the reference site, including
          binding-level and file-wide suppressions *)
}

type apply = {
  a_head : string list;  (** canonical path of the applied function *)
  a_line : int;
  a_args : reference list;
      (** resolved value references inside the argument expressions *)
}

type mutability =
  | Mutable of string  (** human description, e.g. "a Hashtbl.t" *)
  | Safe  (** Atomic/Mutex/DLS — a guard or safe cell *)
  | Immutable

type def = {
  unit_ : string;
  dpath : string list;
  key : string;
  file : string;  (** scanned source path, or the cmt-recorded one *)
  line : int;
  scope : Source.scope;
  basename : string;
  exported : bool;
  allows : string list;  (** suppressions covering the whole binding *)
  domain_safe : bool;
  mutability : mutability;
  mutable refs : reference list;
  mutable applies : apply list;
}

type t = {
  defs : (string, def) Hashtbl.t;
  mutable ordered : def list;  (** sorted by key, for determinism *)
  adjacency : (string, string list) Hashtbl.t;
}

let key_of path = String.concat "." path

(* "Migration__Solver" -> "Solver"; unwrapped units pass through. *)
let short_unit u =
  match String.rindex_opt u '_' with
  | Some i when i >= 2 && u.[i - 1] = '_' ->
      let tail = String.sub u (i + 1) (String.length u - i - 1) in
      if tail = "" then u else tail
  | _ -> u

let display_target path =
  match path with
  | "Stdlib" :: (_ :: _ as rest) -> String.concat "." rest
  | u :: rest -> String.concat "." (short_unit u :: rest)
  | [] -> "?"

let display_def d = display_target (d.unit_ :: d.dpath)

(* ---- path flattening and resolution ------------------------------- *)

let rec flatten_path (p : Path.t) =
  match p with
  | Path.Pident id -> Some (id, [])
  | Path.Pdot (p, s) -> (
      match flatten_path p with
      | Some (head, rest) -> Some (head, rest @ [ s ])
      | None -> None)
  | _ -> None

type unit_ctx = {
  u_name : string;
  u_values : (string, string list) Hashtbl.t;
      (** Ident.unique_name of a module-level binder -> its dpath *)
  u_modules : (string, string list) Hashtbl.t;
      (** Ident.unique_name of a module binder -> its module path *)
}

type builder = {
  aliases : (string * string, string list) Hashtbl.t;
  mutable b_defs : def list;
}

let rec canon aliases fuel path =
  if fuel = 0 then path
  else
    match path with
    | u :: m :: rest -> (
        match Hashtbl.find_opt aliases (u, m) with
        | Some prefix -> canon aliases (fuel - 1) (prefix @ rest)
        | None -> path)
    | _ -> path

let canonical b path = canon b.aliases 32 path

(* Resolve a typedtree path to a canonical target, in the context of
   the unit being walked.  [None] for genuine locals. *)
let resolve b ctx (p : Path.t) =
  match flatten_path p with
  | None -> None
  | Some (head, rest) -> (
      let uname = Ident.unique_name head in
      match Hashtbl.find_opt ctx.u_values uname with
      | Some dpath -> Some (canonical b ((ctx.u_name :: dpath) @ rest))
      | None -> (
          match Hashtbl.find_opt ctx.u_modules uname with
          | Some mpath -> Some (canonical b ((ctx.u_name :: mpath) @ rest))
          | None ->
              if Ident.global head then
                Some (canonical b (Ident.name head :: rest))
              else None))

(* ---- structure walking -------------------------------------------- *)

let line_of (loc : Location.t) = loc.loc_start.pos_lnum
let ignore_bad (_ : Location.t) (_ : string) = ()

let allows_of attrs = Allow.of_attributes ~bad:ignore_bad attrs

let file_allows (str : Typedtree.structure) =
  List.concat_map
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Typedtree.Tstr_attribute a -> allows_of [ a ]
      | _ -> [])
    str.str_items

let rec unwrap_module (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Typedtree.Tmod_constraint (inner, _, _, _) -> unwrap_module inner
  | _ -> me

(* What a module-level binding's value position holds, typed: the
   constructor is resolved through the call graph's own path logic, so
   Hashtbl.create hidden behind an alias still classifies. *)
let classify_value b ctx (e : Typedtree.expression) =
  let mutable_ctor = function
    | [ "Stdlib"; "ref" ] -> Some "a ref cell"
    | [ "Stdlib"; "Hashtbl"; "create" ] -> Some "a Hashtbl.t"
    | [ "Stdlib"; "Queue"; "create" ] -> Some "a Queue.t"
    | [ "Stdlib"; "Stack"; "create" ] -> Some "a Stack.t"
    | [ "Stdlib"; "Buffer"; "create" ] -> Some "a Buffer.t"
    | [ "Stdlib"; "Bytes"; ("create" | "make" | "of_string") ] ->
        Some "mutable bytes"
    | [
        "Stdlib";
        "Array";
        ("make" | "create_float" | "init" | "of_list" | "copy" | "append");
      ] ->
        Some "a mutable array"
    | [ "Stdlib"; "Dynarray"; ("create" | "make" | "init" | "of_list") ] ->
        Some "a Dynarray.t"
    | _ -> None
  in
  let safe_ctor = function
    | [ "Stdlib"; "Atomic"; "make" ]
    | [ "Stdlib"; "Mutex"; "create" ]
    | [ "Stdlib"; "Condition"; "create" ]
    | [ "Stdlib"; "Semaphore"; _; "make" ]
    | [ "Stdlib"; "Domain"; "DLS"; "new_key" ] ->
        true
    | _ -> false
  in
  let result = ref Immutable in
  let note m = match !result with Mutable _ -> () | _ -> result := m in
  let rec tail (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_let (_, _, body) -> tail body
    | Texp_sequence (_, b) -> tail b
    | Texp_ifthenelse (_, t, f) ->
        tail t;
        Option.iter tail f
    | Texp_match (_, cases, _) ->
        List.iter (fun c -> tail c.Typedtree.c_rhs) cases
    | Texp_try (_, cases) ->
        List.iter (fun c -> tail c.Typedtree.c_rhs) cases
    | Texp_tuple es -> List.iter tail es
    | Texp_construct (_, _, args) -> List.iter tail args
    | Texp_variant (_, e) -> Option.iter tail e
    | Texp_open (_, e) | Texp_letmodule (_, _, _, _, e) -> tail e
    | Texp_array _ -> note (Mutable "an array literal")
    | Texp_record { fields; extended_expression; _ } ->
        if
          Array.exists
            (fun ((ld : Types.label_description), _) ->
              ld.lbl_mut = Asttypes.Mutable)
            fields
        then note (Mutable "a record with mutable fields");
        Array.iter
          (fun (_, (rld : Typedtree.record_label_definition)) ->
            match rld with
            | Typedtree.Overridden (_, fe) -> tail fe
            | Typedtree.Kept _ -> ())
          fields;
        Option.iter tail extended_expression
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) -> (
        match resolve b ctx p with
        | Some target when safe_ctor target ->
            note Safe
        | Some target -> (
            match mutable_ctor target with
            | Some what -> note (Mutable what)
            | None -> ())
        | None -> ())
    | _ -> ()
  in
  tail e;
  !result

(* Collect the resolved value references inside one expression — used
   for the argument lists of recorded applications. *)
let arg_references b ctx base_allows (e : Typedtree.expression) =
  let acc = ref [] in
  let default = Tast_iterator.default_iterator in
  let it =
    {
      default with
      expr =
        (fun it (e : Typedtree.expression) ->
          (match e.exp_desc with
          | Texp_ident (p, _, _) -> (
              match resolve b ctx p with
              | Some target ->
                  acc :=
                    {
                      target;
                      r_line = line_of e.exp_loc;
                      r_allows = base_allows;
                    }
                    :: !acc
              | None -> ())
          | _ -> ());
          default.expr it e);
    }
  in
  it.expr it e;
  List.rev !acc

(* Walk one def body: references, applications, suppression frames. *)
let walk_body b ctx (d : def) (body : Typedtree.expression) =
  let refs = ref [] and applies = ref [] in
  let frames = ref [ d.allows ] in
  let active () = List.concat !frames in
  let default = Tast_iterator.default_iterator in
  let it =
    {
      default with
      expr =
        (fun it (e : Typedtree.expression) ->
          frames := allows_of e.exp_attributes :: !frames;
          (match e.exp_desc with
          | Texp_ident (p, _, _) -> (
              match resolve b ctx p with
              | Some target ->
                  refs :=
                    {
                      target;
                      r_line = line_of e.exp_loc;
                      r_allows = active ();
                    }
                    :: !refs
              | None -> ())
          | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
              match resolve b ctx p with
              | Some head ->
                  let a_args =
                    List.concat_map
                      (fun (_, arg) ->
                        match arg with
                        | Some ae -> arg_references b ctx (active ()) ae
                        | None -> [])
                      args
                  in
                  applies :=
                    { a_head = head; a_line = line_of e.exp_loc; a_args }
                    :: !applies
              | None -> ())
          | _ -> ());
          default.expr it e;
          frames := List.tl !frames);
    }
  in
  it.expr it body;
  d.refs <- List.rev !refs;
  d.applies <- List.rev !applies

(* ---- building ----------------------------------------------------- *)

let exported_in (u : Cmt_loader.unit_info) dpath =
  match dpath with
  | [] -> false
  | first :: rest -> (
      match (rest, u.sig_vals, u.sig_mods) with
      | [], Some vals, _ -> List.mem first vals
      | _ :: _, _, Some mods -> List.mem first mods
      | _, None, _ | _, _, None -> true)

(* First pass over a unit: record module aliases, module-level value
   and module binders, and the def skeletons (bodies walked in the
   second pass, once every unit's aliases are known). *)
let scan_unit b (u : Cmt_loader.unit_info) =
  let file, scope =
    match u.source with
    | Some (f : Source.file) -> (f.path, f.scope)
    | None -> ("(" ^ u.modname ^ ")", Source.Other)
  in
  let ctx =
    {
      u_name = u.modname;
      u_values = Hashtbl.create 64;
      u_modules = Hashtbl.create 8;
    }
  in
  let fallows = file_allows u.str in
  let bodies = ref [] in
  let rec scan_items prefix enclosing_allows
      (items : Typedtree.structure_item list) =
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Typedtree.Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                let binding_allows = allows_of vb.vb_attributes in
                let ids = Typedtree.pat_bound_idents vb.vb_pat in
                List.iter
                  (fun id ->
                    let dpath = prefix @ [ Ident.name id ] in
                    Hashtbl.replace ctx.u_values (Ident.unique_name id) dpath;
                    let d =
                      {
                        unit_ = u.modname;
                        dpath;
                        key = key_of (u.modname :: dpath);
                        file;
                        line = line_of vb.vb_pat.pat_loc;
                        scope;
                        basename = Filename.basename file;
                        exported = exported_in u dpath;
                        allows =
                          binding_allows @ enclosing_allows @ fallows;
                        domain_safe = Allow.has_domain_safe vb.vb_attributes;
                        mutability = classify_value b ctx vb.vb_expr;
                        refs = [];
                        applies = [];
                      }
                    in
                    b.b_defs <- d :: b.b_defs;
                    bodies := (d, vb.vb_expr) :: !bodies)
                  ids)
              vbs
        | Typedtree.Tstr_module mb -> (
            let name =
              match mb.mb_id with Some id -> Some id | None -> None
            in
            match name with
            | None -> ()
            | Some id -> (
                let mpath = prefix @ [ Ident.name id ] in
                Hashtbl.replace ctx.u_modules (Ident.unique_name id) mpath;
                let inner = unwrap_module mb.mb_expr in
                match inner.mod_desc with
                | Typedtree.Tmod_ident (p, _) -> (
                    match resolve b ctx p with
                    | Some target ->
                        Hashtbl.replace b.aliases
                          (u.modname, Ident.name id)
                          target
                    | None -> ())
                | Typedtree.Tmod_structure str ->
                    scan_items mpath
                      (allows_of mb.mb_attributes @ enclosing_allows)
                      str.str_items
                | _ -> ()))
        | _ -> ())
      items
  in
  scan_items [] [] u.str.str_items;
  (ctx, !bodies)

let build (units : Cmt_loader.unit_info list) =
  let b = { aliases = Hashtbl.create 256; b_defs = [] } in
  let scanned = List.map (fun u -> scan_unit b u) units in
  (* second pass: canonicalize alias targets now that every unit's
     aliases are recorded, then walk bodies *)
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) b.aliases [] in
  List.iter
    (fun k ->
      match Hashtbl.find_opt b.aliases k with
      | Some path -> Hashtbl.replace b.aliases k (canon b.aliases 32 path)
      | None -> ())
    keys;
  List.iter
    (fun (ctx, bodies) ->
      List.iter (fun (d, body) -> walk_body b ctx d body) bodies)
    scanned;
  let defs = Hashtbl.create 1024 in
  List.iter (fun d -> Hashtbl.replace defs d.key d) b.b_defs;
  let ordered =
    List.sort (fun a bd -> String.compare a.key bd.key) b.b_defs
  in
  let adjacency = Hashtbl.create 1024 in
  List.iter
    (fun d ->
      let ns =
        List.filter_map
          (fun r ->
            let k = key_of r.target in
            if k <> d.key && Hashtbl.mem defs k then Some k else None)
          d.refs
        |> List.sort_uniq String.compare
      in
      Hashtbl.replace adjacency d.key ns)
    ordered;
  { defs; ordered; adjacency }

let find t key = Hashtbl.find_opt t.defs key
let iter_defs t f = List.iter f t.ordered

(* Multi-source BFS.  Sources are visited in sorted order and
   neighbors expanded in sorted order, so the parent forest — and
   therefore every printed chain — is deterministic. *)
let bfs t ~(sources : def list) ~(skip : def -> bool) =
  let parents : (string, string option) Hashtbl.t = Hashtbl.create 256 in
  let q = Queue.create () in
  List.sort (fun a b -> String.compare a.key b.key) sources
  |> List.iter (fun d ->
         if (not (skip d)) && not (Hashtbl.mem parents d.key) then (
           Hashtbl.replace parents d.key None;
           Queue.add d.key q));
  while not (Queue.is_empty q) do
    let k = Queue.take q in
    let ns = Option.value ~default:[] (Hashtbl.find_opt t.adjacency k) in
    List.iter
      (fun n ->
        if not (Hashtbl.mem parents n) then
          match Hashtbl.find_opt t.defs n with
          | Some nd when not (skip nd) ->
              Hashtbl.replace parents n (Some k);
              Queue.add n q
          | _ -> ())
      ns
  done;
  parents

let reachable parents (d : def) = Hashtbl.mem parents d.key

(* The chain source .. target, following parent pointers. *)
let chain_defs t parents (d : def) =
  let rec up k acc =
    match Hashtbl.find_opt parents k with
    | Some (Some p) -> up p (k :: acc)
    | Some None -> k :: acc
    | None -> k :: acc
  in
  up d.key [] |> List.filter_map (fun k -> find t k)

let chain t parents (d : def) = List.map display_def (chain_defs t parents d)
