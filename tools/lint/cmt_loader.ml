(* Typed-AST input for the interprocedural rules.

   dune compiles everything with -bin-annot, so every library module
   already has a .cmt (typed implementation) and, when it has an .mli,
   a .cmti (typed interface) under the library's .objs directory.  The
   loader walks the scanned roots — descending into the dot-directories
   the source scan skips — and reads every .cmt it finds; when the tool
   runs from the workspace root (outside _build), it also looks under
   _build/default/<root>, so `dune exec tools/lint/main.exe -- lib`
   works both from a checkout and inside the @lint rule.

   Each loaded unit is matched back to the scanned source file through
   [cmt_sourcefile] (a compiler-recorded relative path): exact match
   first, then suffix match.  Units with no scanned source — e.g. the
   dune-generated alias module lib__.ml-gen — are kept anyway: their
   module aliases are what lets the call graph resolve wrapped-library
   references (Migration__.Solver -> Migration__Solver). *)

type unit_info = {
  modname : string;  (** compilation unit, e.g. "Migration__Solver" *)
  source : Source.file option;  (** matched scanned source, if any *)
  str : Typedtree.structure;
  sig_vals : string list option;
      (** value names exported by the .cmti; [None] = no interface,
          every value is public *)
  sig_mods : string list option;  (** module names exported likewise *)
}

let is_dir p = try Sys.is_directory p with Sys_error _ -> false

let rec find_cmts acc path =
  if is_dir path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if name = "" || name = "_build" then acc
           else find_cmts acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

let discover_cmts roots =
  let roots =
    List.concat_map
      (fun r ->
        let r = if is_dir r then r else Filename.dirname r in
        let built = Filename.concat (Filename.concat "_build" "default") r in
        if is_dir built then [ r; built ] else [ r ])
      roots
  in
  List.concat_map (fun r -> List.rev (find_cmts [] r)) roots
  |> List.sort_uniq String.compare

(* Match the compiler-recorded source path against the scanned files:
   exact, then by "/"-suffix (the cmt was produced from a different
   working directory), longest scanned path winning on ties. *)
let match_source (sources : Source.file list) recorded =
  match
    List.find_opt (fun (f : Source.file) -> f.path = recorded) sources
  with
  | Some f -> Some f
  | None ->
      let suffix = "/" ^ recorded in
      List.filter
        (fun (f : Source.file) ->
          let lp = String.length f.path and ls = String.length suffix in
          lp >= ls && String.sub f.path (lp - ls) ls = suffix)
        sources
      |> List.sort (fun (a : Source.file) b ->
             compare (String.length b.path) (String.length a.path))
      |> function
      | f :: _ -> Some f
      | [] -> None

let sig_names (sg : Typedtree.signature) =
  let vals = ref [] and mods = ref [] in
  List.iter
    (fun (item : Typedtree.signature_item) ->
      match item.sig_desc with
      | Typedtree.Tsig_value vd -> vals := Ident.name vd.val_id :: !vals
      | Typedtree.Tsig_module md -> (
          match md.md_id with
          | Some id -> mods := Ident.name id :: !mods
          | None -> ())
      | _ -> ())
    sg.sig_items;
  (List.rev !vals, List.rev !mods)

let read_unit sources cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | exception _ -> None
  | cmt -> (
      match cmt.cmt_annots with
      | Cmt_format.Implementation str ->
          let source =
            match cmt.cmt_sourcefile with
            | Some s -> match_source sources s
            | None -> None
          in
          let sig_vals, sig_mods =
            let cmti = Filename.chop_suffix cmt_path ".cmt" ^ ".cmti" in
            if Sys.file_exists cmti then
              match Cmt_format.read_cmt cmti with
              | exception _ -> (None, None)
              | icmt -> (
                  match icmt.cmt_annots with
                  | Cmt_format.Interface sg ->
                      let vals, mods = sig_names sg in
                      (Some vals, Some mods)
                  | _ -> (None, None))
            else (None, None)
          in
          Some { modname = cmt.cmt_modname; source; str; sig_vals; sig_mods }
      | _ -> None)

(* Load every unit under [roots].  Also returns, for the enforcement
   path, the lib-scope .ml sources that have no typed AST: an
   interprocedural rule silently skipping an unbuilt file would turn
   "clean" into "unchecked", so main.ml reports those as findings. *)
let load ~roots ~(sources : Source.file list) =
  let units = List.filter_map (read_unit sources) (discover_cmts roots) in
  (* keep one unit per modname — the same cmt can be discovered twice
     when a root and its _build mirror both exist *)
  let seen = Hashtbl.create 64 in
  let units =
    List.filter
      (fun u ->
        if Hashtbl.mem seen u.modname then false
        else (
          Hashtbl.add seen u.modname ();
          true))
      units
  in
  let covered = Hashtbl.create 64 in
  List.iter
    (fun u ->
      match u.source with
      | Some f -> Hashtbl.replace covered f.path ()
      | None -> ())
    units;
  let missing =
    List.filter
      (fun (f : Source.file) ->
        (match f.scope with Source.Lib _ -> true | _ -> false)
        && Filename.check_suffix f.path ".ml"
        && not (Hashtbl.mem covered f.path))
      sources
  in
  (units, missing)
