(* File discovery and classification.

   A path is classified by its segments, not by the scan root, so the
   fixture corpus under test/lint/fixtures/lib/... is analyzed exactly
   like the real tree: the first "lib" segment marks a library source
   and the following segment names the directory, which maps to the
   dune library name. *)

type scope =
  | Lib of string  (** dune library name, e.g. "migration" for lib/core *)
  | Bin
  | Bench
  | Other

type file = { path : string; scope : scope }

let lib_of_dir = function
  | "core" -> "migration"
  | "flow" -> "netflow"
  | "sim" -> "storsim"
  | "instr" -> "probes"
  | "dist" -> "distproto"
  | d -> d

let classify path =
  let rec scan = function
    | "lib" :: dir :: _ :: _ -> Lib (lib_of_dir dir)
    | "bin" :: _ :: _ -> Bin
    | "bench" :: _ :: _ -> Bench
    | _ :: rest -> scan rest
    | [] -> Other
  in
  { path; scope = scan (String.split_on_char '/' path) }

let is_source path =
  Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"

let rec find_sources acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if name = "" || name.[0] = '.' || name = "_build" then acc
           else find_sources acc (Filename.concat path name))
         acc
  else if is_source path then classify path :: acc
  else acc

let discover paths =
  List.concat_map (fun p -> List.rev (find_sources [] p)) paths
  |> List.sort_uniq (fun a b -> String.compare a.path b.path)

let parse_implementation path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Location.init lexbuf path;
      Parse.implementation lexbuf)
