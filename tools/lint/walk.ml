(* Shared AST walk.

   Drives every syntactic rule over one parsed implementation in a
   single traversal while maintaining the [@lint.allow] suppression
   scope stack.  Rules plug in as [check] records: [on_expr] fires for
   every expression, [on_top_binding] only for value bindings at
   module level (the module-level-state surface the domain-safety rule
   cares about). *)

type emit = rule:string -> loc:Location.t -> string -> unit

type check = {
  on_expr : Parsetree.expression -> unit;
  on_top_binding : Parsetree.value_binding -> unit;
}

let no_check = { on_expr = ignore; on_top_binding = ignore }
let line_of (loc : Location.t) = loc.loc_start.pos_lnum

(* Returns the findings plus the file-wide allow set (consulted by the
   non-AST rules: layering, mli-coverage). *)
let run ~(file : Source.file) ~(make_checks : emit -> check list)
    (str : Parsetree.structure) =
  let findings = ref [] in
  let env = Allow.make () in
  let push rules = env.frames <- rules :: env.frames in
  let pop () = env.frames <- List.tl env.frames in
  let raw ~rule ~loc msg =
    findings :=
      Finding.v ~file:file.path ~line:(line_of loc) ~rule msg :: !findings
  in
  let bad loc msg = raw ~rule:"suppression" ~loc msg in
  let emit ~rule ~loc msg =
    if not (Allow.active env rule) then raw ~rule ~loc msg
  in
  let checks = make_checks emit in
  let expr_depth = ref 0 in
  let default = Ast_iterator.default_iterator in
  let iter =
    {
      default with
      expr =
        (fun it (e : Parsetree.expression) ->
          push (Allow.of_attributes ~bad e.pexp_attributes);
          List.iter (fun c -> c.on_expr e) checks;
          incr expr_depth;
          default.expr it e;
          decr expr_depth;
          pop ());
      structure_item =
        (fun it (si : Parsetree.structure_item) ->
          match si.pstr_desc with
          | Pstr_attribute a ->
              env.file_wide <- Allow.of_attributes ~bad [ a ] @ env.file_wide
          | Pstr_value (_, vbs) ->
              List.iter
                (fun (vb : Parsetree.value_binding) ->
                  push (Allow.of_attributes ~bad vb.pvb_attributes);
                  if !expr_depth = 0 then
                    List.iter (fun c -> c.on_top_binding vb) checks;
                  default.value_binding it vb;
                  pop ())
                vbs
          | _ -> default.structure_item it si);
      module_binding =
        (fun it (mb : Parsetree.module_binding) ->
          push (Allow.of_attributes ~bad mb.pmb_attributes);
          default.module_binding it mb;
          pop ());
    }
  in
  iter.structure iter str;
  (List.rev !findings, env.file_wide)
