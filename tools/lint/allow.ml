(* Suppression attributes.

   [@lint.allow "rule: reason"] silences findings of [rule] within the
   annotated expression, value binding, or module binding; as a
   floating [@@@lint.allow "rule: reason"] it covers the whole file.
   The reason is mandatory: a suppression without one is itself a
   finding (rule "suppression"), as is an unknown rule name.

   [@lint.domain_safe "reason"] is the domain-safety rule's escape
   hatch for module-level mutable state whose locking discipline the
   analyzer cannot see; it, too, demands a non-empty reason. *)

let known_rules = Rules.names

let payload_string : Parsetree.payload -> string option = function
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

(* "rule: reason" -> (rule, Some reason); "rule" -> (rule, None) *)
let split spec =
  match String.index_opt spec ':' with
  | None -> (String.trim spec, None)
  | Some i ->
      let rule = String.trim (String.sub spec 0 i) in
      let reason =
        String.trim (String.sub spec (i + 1) (String.length spec - i - 1))
      in
      (rule, if reason = "" then None else Some reason)

type env = { mutable frames : string list list; mutable file_wide : string list }

let make () = { frames = []; file_wide = [] }

let active env rule =
  List.mem rule env.file_wide || List.exists (List.mem rule) env.frames

(* Rules suppressed by one node's attributes.  [bad] receives a
   diagnostic for each malformed suppression. *)
let of_attributes ~bad (attrs : Parsetree.attributes) =
  List.filter_map
    (fun (a : Parsetree.attribute) ->
      match a.attr_name.txt with
      | "lint.allow" -> (
          match payload_string a.attr_payload with
          | None ->
              bad a.attr_loc
                "[@lint.allow] payload must be a string \"rule: reason\"";
              None
          | Some spec ->
              let rule, reason = split spec in
              if not (List.mem rule known_rules) then (
                bad a.attr_loc
                  (Printf.sprintf "[@lint.allow] names unknown rule %S" rule);
                None)
              else (
                (match reason with
                | Some _ -> ()
                | None ->
                    bad a.attr_loc
                      (Printf.sprintf
                         "[@lint.allow %S] is missing its reason — write \
                          \"%s: why this is safe\""
                         rule rule));
                Some rule))
      | "lint.domain_safe" ->
          (match payload_string a.attr_payload with
          | Some s when String.trim s <> "" -> ()
          | _ ->
              bad a.attr_loc
                "[@lint.domain_safe] requires a non-empty reason string");
          None
      | _ -> None)
    attrs

let has_domain_safe (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) -> a.attr_name.txt = "lint.domain_safe")
    attrs
