(* A single lint diagnostic.  Findings print as "file:line rule message"
   so editors and CI logs can jump straight to the offending line; the
   interprocedural rules attach the call chain that witnesses the
   violation, rendered as a "(via A -> B -> C)" suffix in text mode
   and as a structured array in --format json. *)

type t = {
  file : string;
  line : int;
  rule : string;
  message : string;
  chain : string list;
}

let v ~file ~line ~rule ?(chain = []) message =
  { file; line; rule; message; chain }

let order a b =
  match String.compare a.file b.file with
  | 0 -> (
      match compare a.line b.line with
      | 0 -> (
          match String.compare a.rule b.rule with
          | 0 -> String.compare a.message b.message
          | c -> c)
      | c -> c)
  | c -> c

let to_string f =
  let chain =
    match f.chain with
    | [] -> ""
    | c -> Printf.sprintf " (via %s)" (String.concat " -> " c)
  in
  Printf.sprintf "%s:%d %s %s%s" f.file f.line f.rule f.message chain

(* Minimal JSON string escaping — the messages are ASCII with the odd
   em dash; escape the two structural characters and control bytes. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One JSON object per finding, one per line (JSON Lines), so CI can
   stream-convert findings into GitHub annotations with jq. *)
let to_json f =
  Printf.sprintf
    "{\"file\":\"%s\",\"line\":%d,\"rule\":\"%s\",\"message\":\"%s\",\"chain\":[%s]}"
    (json_escape f.file) f.line (json_escape f.rule) (json_escape f.message)
    (String.concat ","
       (List.map (fun c -> Printf.sprintf "\"%s\"" (json_escape c)) f.chain))
