(* A single lint diagnostic.  Findings print as "file:line rule message"
   so editors and CI logs can jump straight to the offending line. *)

type t = { file : string; line : int; rule : string; message : string }

let v ~file ~line ~rule message = { file; line; rule; message }

let order a b =
  match String.compare a.file b.file with
  | 0 -> (
      match compare a.line b.line with
      | 0 -> String.compare a.rule b.rule
      | c -> c)
  | c -> c

let to_string f = Printf.sprintf "%s:%d %s %s" f.file f.line f.rule f.message
