(* Rule "domain-safety": Pipeline.solve ?jobs, Gen.Fuzz.run ?jobs and
   the fault-injection engine fuzz mode all run library code on worker
   domains (Exec.map), so module-level mutable state anywhere under
   lib/ is shared mutable state.  A binding whose value is (or
   contains, in a value position) a ref cell, Hashtbl, Queue, Stack,
   Buffer, mutable array/bytes, or a record with mutable fields is
   flagged unless

   - it is itself a guard or safe cell (Mutex.create, Atomic.make,
     Domain.DLS.new_key), or
   - it carries [@@lint.domain_safe "reason"] stating the locking or
     single-writer discipline that makes it safe.

   The scan is syntactic and value-position only: state created inside
   a function body is per-call, and a scratch table consumed while
   computing an immutable module-level value never escapes — neither
   is flagged.  Hiding a ref behind a helper function defeats the
   scan; the rule is a tripwire, not a proof. *)

let rule = "domain-safety"

(* Field names declared mutable anywhere in this file: a module-level
   record literal touching one of them is mutable state. *)
let mutable_fields (str : Parsetree.structure) =
  let fields = ref [] in
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      type_declaration =
        (fun it (td : Parsetree.type_declaration) ->
          (match td.ptype_kind with
          | Ptype_record labels ->
              List.iter
                (fun (l : Parsetree.label_declaration) ->
                  if l.pld_mutable = Mutable then
                    fields := l.pld_name.txt :: !fields)
                labels
          | _ -> ());
          default.type_declaration it td);
    }
  in
  it.structure it str;
  !fields

let mutable_ctor = function
  | [ "ref" ] | [ "Stdlib"; "ref" ] -> Some "a ref cell"
  | [ "Hashtbl"; "create" ] -> Some "a Hashtbl.t"
  | [ "Queue"; "create" ] -> Some "a Queue.t"
  | [ "Stack"; "create" ] -> Some "a Stack.t"
  | [ "Buffer"; "create" ] -> Some "a Buffer.t"
  | [ "Bytes"; ("create" | "make" | "of_string") ] -> Some "mutable bytes"
  | [ "Array"; ("make" | "create_float" | "init" | "of_list" | "copy") ] ->
      Some "a mutable array"
  | [ "Dynarray"; ("create" | "make" | "init" | "of_list") ] ->
      Some "a Dynarray.t"
  | _ -> None

let is_unit_pattern (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_construct ({ txt = Lident "()"; _ }, None) -> true
  | _ -> false

let check (file : Source.file) (str : Parsetree.structure) (emit : Walk.emit) =
  match file.scope with
  | Lib _ ->
      let mut_fields = mutable_fields str in
      let on_top_binding (vb : Parsetree.value_binding) =
        if
          Allow.has_domain_safe vb.pvb_attributes || is_unit_pattern vb.pvb_pat
        then ()
        else
          let flag loc what =
            emit ~rule ~loc
              (Printf.sprintf
                 "module-level mutable state (%s) is shared across worker \
                  domains — guard it with Mutex/Atomic or annotate \
                  [@@lint.domain_safe \"reason\"]"
                 what)
          in
          (* value positions only: what the bound name can reach *)
          let rec tail (e : Parsetree.expression) =
            if Allow.has_domain_safe e.pexp_attributes then ()
            else
              match e.pexp_desc with
              | Pexp_let (_, _, body) -> tail body
              | Pexp_sequence (_, b) -> tail b
              | Pexp_ifthenelse (_, t, f) ->
                  tail t;
                  Option.iter tail f
              | Pexp_match (_, cases) | Pexp_try (_, cases) ->
                  List.iter (fun (c : Parsetree.case) -> tail c.pc_rhs) cases
              | Pexp_tuple es -> List.iter tail es
              | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) -> tail e
              | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> tail e
              | Pexp_open (_, e) | Pexp_letmodule (_, _, e) -> tail e
              | Pexp_array _ -> flag e.pexp_loc "an array literal"
              | Pexp_record (fields, base) ->
                  if
                    List.exists
                      (fun ((lid : Longident.t Location.loc), _) ->
                        List.mem (Longident.last lid.txt) mut_fields)
                      fields
                  then flag e.pexp_loc "a record with mutable fields";
                  List.iter (fun (_, fe) -> tail fe) fields;
                  Option.iter tail base
              | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, _)
                -> (
                  match mutable_ctor (Util.flatten txt) with
                  | Some what -> flag loc what
                  | None -> ())
              | _ -> ()
          in
          tail vb.pvb_expr
      in
      { Walk.no_check with on_top_binding }
  | _ -> Walk.no_check
