module M = Migration
module Certify = M.Certify

type trigger =
  | Retarget of (int * int) list
  | Demand_shift of { fraction : float }
  | Add_disk of { cap : int }
  | Remove_disk of { disk : int }
  | Fail_disk of { disk : int }

type request = { at : int; tenant : int; trigger : trigger }

type cluster = {
  caps : int array;
  placement : int array;
  demands : float array;
}

type report = {
  epochs : int;
  total_rounds : int;
  replans : int;
  transfers : int;
  repairs : int;
  quarantined : int;
  engine_retries : int;
  statuses : Certify.service_request_status array;
  latencies : (int * int) list;
  p50 : int;
  p99 : int;
  tenants : (int * int * int * int) list;
  truncated : bool;
  execution : Certify.service_execution;
}

(* instrumentation: the service's always-on flight counters *)
let c_epochs = M.Instr.counter "service.epochs"
let c_absorbed = M.Instr.counter "service.absorbed"
let c_rejected = M.Instr.counter "service.rejected"
let c_transfers = M.Instr.counter "service.transfers"
let c_repairs = M.Instr.counter "service.repairs"
let t_epoch = M.Instr.timer "service.epoch"

let percentile sorted q =
  let len = Array.length sorted in
  if len = 0 then 0
  else begin
    let rank =
      int_of_float (ceil (q /. 100.0 *. float_of_int len)) in
    sorted.(max 0 (min (len - 1) (rank - 1)))
  end

(* Tracking of one admitted request, mirroring the certifier's replay
   move for move: a move is settled once superseded or in effect, a
   request completes when every move settled, and abandonment (a
   quarantined or dead target) is sticky. *)
type tracked = {
  tr_input : int;  (* index in the caller's request list *)
  tr_at : int;
  tr_trigger : trigger;
  mutable tr_moves : (int * int) list;  (* owed at absorption, deduped *)
  mutable tr_outstanding : (int * int) list;
  mutable tr_rejected : string option;
  mutable tr_absorbed : int;  (* -1 until absorbed *)
  mutable tr_done : int;      (* completion round, -1 *)
  mutable tr_abandoned : bool;
}

let run ?(jobs = 1) ?(epoch_rounds = 16) ?(max_epochs = 100_000)
    ?(rng_seed = 0) ?policy ?(tolerance = 0.05) cluster ~requests () =
  if epoch_rounds < 1 then invalid_arg "Service.run: epoch_rounds must be >= 1";
  if max_epochs < 1 then invalid_arg "Service.run: max_epochs must be >= 1";
  if tolerance < 0.0 then invalid_arg "Service.run: tolerance must be >= 0";
  let m = Array.length cluster.placement in
  if Array.length cluster.demands <> m then
    invalid_arg "Service.run: demands and placement sizes differ";
  let n0 = Array.length cluster.caps in
  if n0 = 0 then invalid_arg "Service.run: no disks";
  Array.iter
    (fun c -> if c < 1 then invalid_arg "Service.run: caps must be >= 1")
    cluster.caps;
  Array.iter
    (fun d ->
      if d < 0 || d >= n0 then
        invalid_arg "Service.run: placement references unknown disk")
    cluster.placement;
  Array.iter
    (fun w ->
      if w < 0.0 || not (Float.is_finite w) then
        invalid_arg "Service.run: demands must be finite and >= 0")
    cluster.demands;
  List.iter
    (fun r ->
      if r.tenant < 0 then invalid_arg "Service.run: tenant must be >= 0")
    requests;
  let policy =
    match policy with
    | Some p -> p
    | None -> fun ~epoch:_ -> M.Engine.no_faults
  in
  (* ---- mutable cluster state; the disk universe can grow ---- *)
  let n = ref n0 in
  let caps = ref (Array.copy cluster.caps) in
  let alive = ref (Array.make n0 true) in
  let draining = ref (Array.make n0 false) in
  let active d = !alive.(d) && not !draining.(d) in
  let active_count () =
    let c = ref 0 in
    for d = 0 to !n - 1 do
      if active d then incr c
    done;
    !c
  in
  let add_disk cap =
    let grow a x = Array.append a [| x |] in
    caps := grow !caps cap;
    alive := grow !alive true;
    draining := grow !draining false;
    incr n;
    !n - 1
  in
  let placement = Array.copy cluster.placement in
  let desired = Array.copy cluster.placement in
  let demands = ref (Array.copy cluster.demands) in
  let owner = Array.make m (-1) in
  let rng = Random.State.make [| rng_seed; 0x5e7f1ce |] in
  (* ---- admitted requests, in stable arrival order ---- *)
  let tracked =
    List.mapi
      (fun i r ->
        {
          tr_input = i;
          tr_at = r.at;
          tr_trigger = r.trigger;
          tr_moves = [];
          tr_outstanding = [];
          tr_rejected = None;
          tr_absorbed = -1;
          tr_done = -1;
          tr_abandoned = false;
        })
      requests
    |> List.stable_sort (fun a b -> compare a.tr_at b.tr_at)
    |> Array.of_list
  in
  let n_req = Array.length tracked in
  let next = ref 0 (* next sorted request not yet absorbed/rejected *) in
  let live = ref [] (* sorted indices: absorbed, unsettled *) in
  let discharge_live ~round =
    live :=
      List.filter
        (fun k ->
          let t = tracked.(k) in
          if t.tr_abandoned then false
          else begin
            t.tr_outstanding <-
              List.filter
                (fun (item, target) ->
                  owner.(item) = k && placement.(item) <> target)
                t.tr_outstanding;
            if t.tr_outstanding = [] then begin
              t.tr_done <- round;
              false
            end
            else true
          end)
        !live
  in
  let abandon k =
    let t = tracked.(k) in
    if (not t.tr_abandoned) && t.tr_done < 0 then begin
      t.tr_abandoned <- true;
      List.iter
        (fun (item, _) ->
          if owner.(item) = k then desired.(item) <- placement.(item))
        t.tr_outstanding
    end
  in
  (* ---- trigger reduction: each trigger becomes owed moves ---- *)
  let rebalance_moves () =
    (* incremental re-layout of the *desired* placement (where items
       are headed) over the active disks only *)
    let act =
      List.filter active (List.init !n Fun.id) |> Array.of_list
    in
    if Array.length act = 0 then []
    else begin
      let inv = Array.make !n (-1) in
      Array.iteri (fun ci d -> inv.(d) <- ci) act;
      let weights = Array.map (fun d -> float_of_int !caps.(d)) act in
      (* an abandoned evacuation can leave [desired] on a draining
         disk; project such strays to the ring-next active disk so the
         re-layout pulls them back into the active set *)
      let ring_next d =
        let len = Array.length act in
        let rec go i = if i >= len then act.(0) else if act.(i) > d then act.(i) else go (i + 1) in
        go 0
      in
      let current =
        Storsim.Placement.of_array
          (Array.map
             (fun d -> if inv.(d) >= 0 then inv.(d) else inv.(ring_next d))
             desired)
      in
      let relaid =
        Workloads.Layout.rebalance_incremental ~demands:!demands ~weights
          ~current ~tolerance
      in
      let p' = Storsim.Placement.to_array relaid in
      let moves = ref [] in
      for item = m - 1 downto 0 do
        let target = act.(p'.(item)) in
        if target <> desired.(item) then moves := (item, target) :: !moves
      done;
      !moves
    end
  in
  let evacuation_moves disk =
    (* send everything headed to [disk] to the demand-least-loaded
       active disks, heaviest items first *)
    let evacuees =
      List.filter (fun item -> desired.(item) = disk) (List.init m Fun.id)
      |> List.sort (fun a b ->
             compare (!demands.(b), a) (!demands.(a), b))
    in
    if evacuees = [] then []
    else begin
      let carried = Array.make !n 0.0 in
      Array.iteri
        (fun item d ->
          if d >= 0 && d < !n then carried.(d) <- carried.(d) +. !demands.(item))
        desired;
      let best () =
        let b = ref (-1) in
        for d = !n - 1 downto 0 do
          if active d then
            if
              !b < 0
              || carried.(d) /. float_of_int !caps.(d)
                 <= carried.(!b) /. float_of_int !caps.(!b)
            then b := d
        done;
        !b
      in
      List.map
        (fun item ->
          let d = best () in
          carried.(d) <- carried.(d) +. !demands.(item);
          carried.(disk) <- carried.(disk) -. !demands.(item);
          (item, d))
        evacuees
    end
  in
  (* admission control: validate the trigger against the *current*
     state, reduce it to owed moves, or reject with a reason *)
  let admit k ~base ~retired =
    let t = tracked.(k) in
    let reject reason =
      t.tr_rejected <- Some reason;
      M.Instr.bump c_rejected
    in
    let accept moves =
      t.tr_absorbed <- base;
      M.Instr.bump c_absorbed;
      let dedup = ref [] in
      List.iter
        (fun (item, target) ->
          owner.(item) <- k;
          dedup := (item, target) :: List.remove_assoc item !dedup)
        moves;
      t.tr_moves <- moves;
      t.tr_outstanding <- List.rev !dedup;
      List.iter (fun (item, target) -> desired.(item) <- target) t.tr_outstanding;
      live := k :: !live
    in
    if t.tr_at < 0 then reject "arrival round is negative"
    else
      match t.tr_trigger with
      | Retarget moves -> (
          let bad =
            List.find_opt
              (fun (item, target) ->
                item < 0 || item >= m || target < 0 || target >= !n
                || not (active target))
              moves
          in
          match bad with
          | Some (item, target) ->
              reject
                (Printf.sprintf "retarget %d:%d names a bad item or inactive disk"
                   item target)
          | None -> accept moves)
      | Demand_shift { fraction } ->
          if fraction < 0.0 || fraction > 1.0 then
            reject "shift fraction outside [0, 1]"
          else begin
            demands := Workloads.Demand.shift rng ~fraction !demands;
            accept (rebalance_moves ())
          end
      | Add_disk { cap } ->
          if cap < 1 then reject "new disk capacity must be >= 1"
          else begin
            ignore (add_disk cap);
            accept (rebalance_moves ())
          end
      | Remove_disk { disk } ->
          if disk < 0 || disk >= !n || not (active disk) then
            reject (Printf.sprintf "disk %d is not active" disk)
          else if active_count () < 2 then
            reject "cannot drain the last active disk"
          else begin
            !draining.(disk) <- true;
            accept (evacuation_moves disk)
          end
      | Fail_disk { disk } ->
          if disk < 0 || disk >= !n || not !alive.(disk) then
            reject (Printf.sprintf "disk %d is not alive" disk)
          else if active disk && active_count () < 2 then
            reject "cannot fail the last active disk"
          else begin
            !alive.(disk) <- false;
            retired := disk :: !retired;
            accept []
          end
  in
  (* next active disk in ring order: the re-replication target *)
  let replica_of d =
    let r = ref (-1) in
    let i = ref ((d + 1) mod !n) in
    while !r < 0 && !i <> d do
      if active !i then r := !i else i := (!i + 1) mod !n
    done;
    if !r < 0 then invalid_arg "Service.run: no active disk left to repair onto";
    !r
  in
  (* ---- the epoch loop ---- *)
  let now = ref 0 in
  let epochs_rev = ref [] in
  let epoch_count = ref 0 in
  let replans = ref 0 in
  let transfers = ref 0 in
  let repairs = ref 0 in
  let quarantined_total = ref 0 in
  let retries = ref 0 in
  let pending_repairs = ref [] (* disks that died mid-epoch, to patch *) in
  let carry = ref [||] (* previous epoch's remaining plan, as moves *) in
  let work_left () =
    !next < n_req
    || !pending_repairs <> []
    || placement <> desired
  in
  while work_left () && !epoch_count < max_epochs do
    M.Instr.time t_epoch (fun () ->
        (* fast-forward pure idle time to the next arrival *)
        if
          placement = desired && !pending_repairs = [] && !next < n_req
          && tracked.(!next).tr_at > !now
        then now := tracked.(!next).tr_at;
        let base = !now in
        let retired = ref [] in
        (* phase 1+2: absorb every request due at this boundary *)
        let absorbed_rev = ref [] in
        while !next < n_req && tracked.(!next).tr_at <= base do
          admit !next ~base ~retired;
          if tracked.(!next).tr_rejected = None then
            absorbed_rev := !next :: !absorbed_rev;
          incr next
        done;
        let retired = List.rev !retired in
        (* phase 3a: patch items off disks that died (by trigger now,
           or mid-epoch last round) *)
        let patches_rev = ref [] in
        List.iter
          (fun d ->
            for item = 0 to m - 1 do
              if placement.(item) = d then begin
                let r = replica_of d in
                placement.(item) <- r;
                if desired.(item) = d then desired.(item) <- r;
                patches_rev := (item, r) :: !patches_rev;
                incr repairs;
                M.Instr.bump c_repairs
              end
            done)
          (!pending_repairs @ retired);
        pending_repairs := [];
        (* phase 3b: a still-owed move toward a dead disk can never be
           served — abandon its request, stickily *)
        List.iter
          (fun k ->
            let t = tracked.(k) in
            if
              (not t.tr_abandoned)
              && t.tr_done < 0
              && List.exists
                   (fun (item, target) ->
                     owner.(item) = k
                     && placement.(item) <> target
                     && target < !n
                     && not !alive.(target))
                   t.tr_outstanding
            then abandon k)
          !live;
        (* boundary settlement: supersession and no-op moves *)
        discharge_live ~round:base;
        (* ---- plan the outstanding diff as one migration instance ---- *)
        let moves = ref [] in
        for item = m - 1 downto 0 do
          if placement.(item) <> desired.(item) then
            moves := (item, placement.(item), desired.(item)) :: !moves
        done;
        let moves = !moves in
        let m_e = List.length moves in
        let g = Mgraph.Multigraph.create ~n:!n () in
        let items = Array.make m_e (-1) in
        let sources = Array.make m_e (-1) in
        let targets = Array.make m_e (-1) in
        List.iter
          (fun (item, src, dst) ->
            let e = Mgraph.Multigraph.add_edge g src dst in
            items.(e) <- item;
            sources.(e) <- src;
            targets.(e) <- dst)
          moves;
        let inst = M.Instance.create g ~caps:(Array.copy !caps) in
        if m_e = 0 then begin
          (* boundary-only epoch: absorption / repairs, nothing to move *)
          epochs_rev :=
            {
              Certify.se_base = base;
              se_instance = inst;
              se_items = items;
              se_sources = sources;
              se_targets = targets;
              se_absorbed = List.rev !absorbed_rev;
              se_retired = retired;
              se_patches = List.rev !patches_rev;
              se_log = [];
              se_idle = 0;
              se_quarantined = [];
              se_residual = [];
              se_bounds = [];
            }
            :: !epochs_rev;
          carry := [||]
        end
        else begin
          (* warm start: rounds of the previous epoch's unexecuted plan
             that still describe the same physical transfer *)
          let edge_of = Hashtbl.create (2 * m_e) in
          Array.iteri
            (fun e item -> Hashtbl.replace edge_of (item, sources.(e), targets.(e)) e)
            items;
          let warm =
            Array.map
              (fun round ->
                List.filter_map (fun mv -> Hashtbl.find_opt edge_of mv) round)
              !carry
          in
          (* components whose capacities changed since their warm rounds
             were certified must re-solve *)
          let dirty_disks =
            match !epochs_rev with
            | [] -> []
            | prev :: _ ->
                let prev_caps = M.Instance.caps prev.Certify.se_instance in
                List.filter
                  (fun d ->
                    d < Array.length prev_caps && !caps.(d) <> prev_caps.(d))
                  (List.init !n Fun.id)
          in
          let erng = Random.State.make [| rng_seed; !epoch_count; 0xe19 |] in
          let o =
            M.Engine.run ~rng:erng ~jobs ~stop_after:epoch_rounds ~warm
              ~dirty_disks
              ~policy:(policy ~epoch:!epoch_count)
              inst
          in
          (* apply completions round by round; a transfer is in effect
             from the next round (the certifier's convention) *)
          List.iteri
            (fun r round ->
              let moved = ref false in
              List.iter
                (fun e ->
                  placement.(items.(e)) <- targets.(e);
                  incr transfers;
                  M.Instr.bump c_transfers;
                  moved := true)
                round.Certify.completed;
              if !moved then discharge_live ~round:(base + r + 1))
            o.M.Engine.execution.Certify.log;
          (* quarantined edges: the move is dropped and its owner
             abandoned; the item stays where it is *)
          List.iter
            (fun (e, _) ->
              incr quarantined_total;
              let item = items.(e) in
              let k = owner.(item) in
              if k >= 0 then abandon k;
              desired.(item) <- placement.(item))
            o.M.Engine.quarantined;
          (* disks crashed mid-epoch: dead from the next boundary, and
             their resident items need re-replication *)
          List.iter
            (fun d ->
              !alive.(d) <- false;
              pending_repairs := !pending_repairs @ [ d ])
            o.M.Engine.crashed;
          (* degraded capacities persist into the next epochs *)
          List.iter (fun (d, c) -> !caps.(d) <- c) o.M.Engine.degraded;
          replans := !replans + o.M.Engine.replans;
          retries := !retries + o.M.Engine.retries;
          carry :=
            Array.map
              (List.map (fun e -> (items.(e), sources.(e), targets.(e))))
              o.M.Engine.remaining_plan;
          epochs_rev :=
            {
              Certify.se_base = base;
              se_instance = inst;
              se_items = items;
              se_sources = sources;
              se_targets = targets;
              se_absorbed = List.rev !absorbed_rev;
              se_retired = retired;
              se_patches = List.rev !patches_rev;
              se_log = o.M.Engine.execution.Certify.log;
              se_idle = o.M.Engine.execution.Certify.idle_rounds;
              se_quarantined = List.map fst o.M.Engine.quarantined;
              se_residual = o.M.Engine.residual;
              se_bounds = o.M.Engine.execution.Certify.replan_bounds;
            }
            :: !epochs_rev;
          now := base + o.M.Engine.total_rounds
        end;
        incr epoch_count;
        M.Instr.bump c_epochs)
  done;
  let truncated = work_left () in
  if truncated then begin
    (* give up cleanly: every unsettled request is abandoned *)
    List.iter abandon !live;
    live := []
  end;
  (* ---- assemble the report and its tamper-evident execution ---- *)
  let svc_requests =
    Array.map
      (fun t ->
        let status =
          match t.tr_rejected with
          | Some reason -> Certify.Sreq_rejected reason
          | None ->
              if t.tr_done >= 0 && not t.tr_abandoned then
                Certify.Sreq_completed
                  { absorbed = t.tr_absorbed; completed = t.tr_done }
              else Certify.Sreq_abandoned { absorbed = t.tr_absorbed }
        in
        {
          Certify.sreq_at = t.tr_at;
          sreq_moves = t.tr_moves;
          sreq_status = status;
        })
      tracked
  in
  let execution =
    {
      Certify.svc_initial = Array.copy cluster.placement;
      svc_final = Array.copy placement;
      svc_epochs = List.rev !epochs_rev;
      svc_requests;
    }
  in
  let statuses = Array.make n_req (Certify.Sreq_rejected "") in
  Array.iteri
    (fun k t -> statuses.(t.tr_input) <- svc_requests.(k).Certify.sreq_status)
    tracked;
  let latencies =
    Array.to_list tracked
    |> List.filter_map (fun t ->
           if t.tr_done >= 0 && not t.tr_abandoned && t.tr_rejected = None then
             Some (t.tr_input, t.tr_done - t.tr_at)
           else None)
    |> List.sort compare
  in
  let sorted_lat =
    let a = Array.of_list (List.map snd latencies) in
    Array.sort compare a;
    a
  in
  (* the SLA view: the same latency population, split per tenant *)
  let tenants =
    let tenant_of_input =
      Array.of_list (List.map (fun r -> r.tenant) requests)
    in
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (i, lat) ->
        let t = tenant_of_input.(i) in
        Hashtbl.replace tbl t
          (lat :: Option.value ~default:[] (Hashtbl.find_opt tbl t)))
      latencies;
    Hashtbl.fold (fun t lats acc -> (t, lats) :: acc) tbl []
    |> List.sort compare
    |> List.map (fun (t, lats) ->
           let a = Array.of_list lats in
           Array.sort compare a;
           (t, Array.length a, percentile a 50.0, percentile a 99.0))
  in
  {
    epochs = !epoch_count;
    total_rounds = !now;
    replans = !replans;
    transfers = !transfers;
    repairs = !repairs;
    quarantined = !quarantined_total;
    engine_retries = !retries;
    statuses;
    latencies;
    p50 = percentile sorted_lat 50.0;
    p99 = percentile sorted_lat 99.0;
    tenants;
    truncated;
    execution;
  }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "epochs:      %d (%d rounds total)@,\
     transfers:   %d (%d quarantined, %d repairs)@,\
     replans:     %d (retries %d)"
    r.epochs r.total_rounds r.transfers r.quarantined r.repairs r.replans
    r.engine_retries;
  let completed = List.length r.latencies in
  let rejected =
    Array.fold_left
      (fun acc s ->
        match s with Certify.Sreq_rejected _ -> acc + 1 | _ -> acc)
      0 r.statuses
  in
  let abandoned =
    Array.fold_left
      (fun acc s ->
        match s with Certify.Sreq_abandoned _ -> acc + 1 | _ -> acc)
      0 r.statuses
  in
  Format.fprintf ppf
    "@,requests:    %d completed, %d abandoned, %d rejected@,\
     latency:     p50=%d p99=%d rounds"
    completed abandoned rejected r.p50 r.p99;
  (* single-tenant streams (everything tagged 0) keep the legacy
     report shape; any explicit tenant switches the breakdown on *)
  if List.exists (fun (t, _, _, _) -> t <> 0) r.tenants then
    List.iter
      (fun (t, completed, p50, p99) ->
        Format.fprintf ppf "@,tenant %d:    %d completed, p50=%d p99=%d rounds"
          t completed p50 p99)
      r.tenants;
  if r.truncated then Format.fprintf ppf "@,TRUNCATED: epoch budget exhausted";
  Format.fprintf ppf "@]"

let pp_statuses ppf r =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i s ->
      if i > 0 then Format.pp_print_cut ppf ();
      Format.fprintf ppf "request %d: %s" i
        (Certify.service_request_status_to_string s))
    r.statuses;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Trace files: a tiny line format for the CLI and the test corpus. *)

let parse_trace lines =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let parse_int s = int_of_string_opt (String.trim s) in
  let parse_kv key s =
    match String.index_opt s '=' with
    | Some i when String.sub s 0 i = key ->
        Some (String.sub s (i + 1) (String.length s - i - 1))
    | _ -> None
  in
  let cluster = ref None in
  let reqs = ref [] in
  let rec go lineno = function
    | [] -> (
        match !cluster with
        | None -> err "trace has no init line"
        | Some c -> Ok (c, List.rev !reqs))
    | line :: rest -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go (lineno + 1) rest
        else
          let words =
            String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
          in
          match words with
          | "init" :: kvs -> (
              let find key =
                List.find_map (parse_kv key) kvs
              in
              match
                (find "disks", find "items", find "caps", find "zipf",
                 find "seed")
              with
              | Some disks, Some items, caps, zipf, seed -> (
                  match (parse_int disks, parse_int items) with
                  | Some n, Some m when n >= 1 && m >= 1 -> (
                      let caps =
                        match caps with
                        | None -> Some (Array.make n 2)
                        | Some s ->
                            let parts = String.split_on_char ',' s in
                            if List.length parts <> n then None
                            else
                              let a = List.filter_map parse_int parts in
                              if List.length a = n then
                                Some (Array.of_list a)
                              else None
                      in
                      match caps with
                      | None -> err "line %d: bad caps list" lineno
                      | Some caps ->
                          let s =
                            Option.bind zipf float_of_string_opt
                            |> Option.value ~default:1.1
                          in
                          let seed =
                            Option.bind seed parse_int |> Option.value ~default:0
                          in
                          let rng = Random.State.make [| seed; 0x7ace |] in
                          let demands =
                            Workloads.Demand.demands rng ~n:m ~s
                          in
                          let weights = Array.map float_of_int caps in
                          let placement =
                            Storsim.Placement.to_array
                              (Workloads.Layout.balance ~demands ~weights)
                          in
                          cluster := Some { caps; placement; demands };
                          go (lineno + 1) rest)
                  | _ -> err "line %d: bad disks/items counts" lineno)
              | _ -> err "line %d: init needs disks= and items=" lineno)
          | "at" :: round :: rest_words -> (
              match parse_int round with
              | None -> err "line %d: bad round" lineno
              | Some at -> (
                  (* optional tenant=T tag before the trigger word *)
                  let tenant, rest_words =
                    match rest_words with
                    | kv :: tl when parse_kv "tenant" kv <> None ->
                        (Option.bind (parse_kv "tenant" kv) parse_int, tl)
                    | _ -> (Some 0, rest_words)
                  in
                  match (tenant, rest_words) with
                  | None, _ ->
                      err "line %d: tenant wants a non-negative int" lineno
                  | Some tenant, _ when tenant < 0 ->
                      err "line %d: tenant wants a non-negative int" lineno
                  | Some _, [] -> err "line %d: missing trigger" lineno
                  | Some tenant, what :: args -> (
                  let push trigger =
                    reqs := { at; tenant; trigger } :: !reqs;
                    go (lineno + 1) rest
                  in
                  match (what, args) with
                  | "retarget", moves -> (
                      let parse_move s =
                        match String.split_on_char ':' s with
                        | [ a; b ] -> (
                            match (parse_int a, parse_int b) with
                            | Some i, Some d -> Some (i, d)
                            | _ -> None)
                        | _ -> None
                      in
                      let parsed = List.map parse_move moves in
                      if List.exists Option.is_none parsed || moves = [] then
                        err "line %d: retarget wants item:disk pairs" lineno
                      else
                        push (Retarget (List.filter_map Fun.id parsed)))
                  | "shift", [ f ] -> (
                      match float_of_string_opt f with
                      | Some fraction -> push (Demand_shift { fraction })
                      | None -> err "line %d: bad shift fraction" lineno)
                  | "add", [ kv ] -> (
                      match Option.bind (parse_kv "cap" kv) parse_int with
                      | Some cap -> push (Add_disk { cap })
                      | None -> err "line %d: add wants cap=N" lineno)
                  | "remove", [ d ] -> (
                      match parse_int d with
                      | Some disk -> push (Remove_disk { disk })
                      | None -> err "line %d: bad disk" lineno)
                  | "fail", [ d ] -> (
                      match parse_int d with
                      | Some disk -> push (Fail_disk { disk })
                      | None -> err "line %d: bad disk" lineno)
                  | _ -> err "line %d: unknown trigger %S" lineno what)))
          | _ -> err "line %d: expected 'init ...' or 'at R ...'" lineno)
  in
  go 1 lines

(* ------------------------------------------------------------------ *)
(* Soak driver: turn a generated migration instance into a randomized
   trigger stream and push it through the full loop, certifying the
   concatenated flight log.  The [(inst, seed)] pair is a complete
   reproducer. *)

type soak_stats = {
  soak_epochs : int;
  soak_rounds : int;
  soak_transfers : int;
  soak_completed : int;
  soak_abandoned : int;
  soak_rejected : int;
}

let soak ?(jobs = 1) ?(epoch_rounds = 4) ?(fault_rate = 0.0) ~inst ~seed () =
  let g = M.Instance.graph inst in
  let n = M.Instance.n_disks inst in
  let m = M.Instance.n_items inst in
  if m = 0 then
    Ok
      {
        soak_epochs = 0;
        soak_rounds = 0;
        soak_transfers = 0;
        soak_completed = 0;
        soak_abandoned = 0;
        soak_rejected = 0;
      }
  else begin
    let rng = Random.State.make [| seed; 0x50a4 |] in
    (* item e starts on one endpoint and is asked onto the other *)
    let placement = Array.make m 0 in
    let moves = Array.make m (0, 0) in
    for e = 0 to m - 1 do
      let u, v = Mgraph.Multigraph.endpoints g e in
      placement.(e) <- u;
      moves.(e) <- (e, v)
    done;
    let demands = Workloads.Demand.demands rng ~n:m ~s:1.1 in
    let cluster =
      { caps = Array.copy (M.Instance.caps inst); placement; demands }
    in
    (* split the retargets into batches at staggered rounds, and mix in
       state triggers drawn from the same seed *)
    let batches = 1 + Random.State.int rng 3 in
    let reqs = ref [] in
    let round_of b = b * (1 + Random.State.int rng (2 * epoch_rounds)) in
    for b = 0 to batches - 1 do
      let batch =
        Array.to_list moves
        |> List.filteri (fun e _ -> e mod batches = b)
      in
      if batch <> [] then
        reqs :=
          { at = round_of b; tenant = b; trigger = Retarget batch } :: !reqs
    done;
    if Random.State.bool rng then
      reqs :=
        {
          at = round_of batches;
          tenant = 0;
          trigger = Demand_shift { fraction = 0.3 };
        }
        :: !reqs;
    if n >= 3 && Random.State.int rng 4 = 0 then
      reqs :=
        {
          at = round_of (batches + 1);
          tenant = 0;
          trigger = Fail_disk { disk = Random.State.int rng n };
        }
        :: !reqs;
    if Random.State.int rng 4 = 0 then
      reqs :=
        { at = round_of (batches + 1); tenant = 0; trigger = Add_disk { cap = 2 } }
        :: !reqs;
    let requests =
      List.stable_sort (fun a b -> compare a.at b.at) (List.rev !reqs)
    in
    let policy ~epoch =
      Storsim.Fault.engine_policy ~fault_rate ~seed:((seed * 31) + epoch) ()
    in
    match
      run ~jobs ~epoch_rounds ~max_epochs:200 ~rng_seed:seed ~policy cluster
        ~requests ()
    with
    | exception M.Engine.Plan_rejected msg ->
        Error [ "replan rejected mid-flight: " ^ msg ]
    | r ->
        let v = Certify.certify_service r.execution in
        let messages =
          List.map Certify.service_violation_to_string v.Certify.svc_violations
        in
        let extra =
          if r.truncated then [ "service truncated: epoch budget exhausted" ]
          else []
        in
        (match messages @ extra with
        | [] ->
            let count f = Array.fold_left f 0 r.statuses in
            Ok
              {
                soak_epochs = r.epochs;
                soak_rounds = r.total_rounds;
                soak_transfers = r.transfers;
                soak_completed =
                  count (fun acc s ->
                      match s with
                      | Certify.Sreq_completed _ -> acc + 1
                      | _ -> acc);
                soak_abandoned =
                  count (fun acc s ->
                      match s with
                      | Certify.Sreq_abandoned _ -> acc + 1
                      | _ -> acc);
                soak_rejected =
                  count (fun acc s ->
                      match s with
                      | Certify.Sreq_rejected _ -> acc + 1
                      | _ -> acc);
              }
        | msgs -> Error msgs)
  end
