(** The online migration service: a closed-loop streaming daemon.

    Every other entry point in this repository is batch — one instance
    in, one schedule out.  [Service.run] is the production shape: a
    stream of migration {e triggers} (explicit retargets, Zipf demand
    shifts re-laid out through {!Workloads.Layout}, disk
    addition/drain/failure) arrives over a round clock while transfers
    from earlier triggers are still in flight.  The service
    admission-controls each trigger, batches arrivals into {e epochs}
    of at most [epoch_rounds] executed rounds, plans the outstanding
    placement diff as a migration instance, and drives it through
    {!Migration.Engine.run} under a per-epoch fault policy — warm: the
    previous epoch's unexecuted plan suffix seeds the planner, so
    components untouched by new arrivals or faults keep their rounds
    verbatim and only dirtied components re-solve.

    Requests are tracked move by move with supersession: a newer
    retarget of the same item absorbs the older one, and the older
    request's move counts as settled the moment it is superseded.  A
    request completes at the global round when its last owed move is
    in effect or superseded; [completed - arrival] is its
    request-to-completion latency ([p50]/[p99] are first-class report
    metrics).  Quarantined transfers and dead-target moves abandon
    their owning request, stickily.  Items resident on a disk that
    fails are re-replicated ("patched") onto the next active disk in
    ring order at the following epoch boundary.

    The whole run is recorded as a {!Migration.Certify.service_execution}
    — the concatenated flight log — and is replayable through
    {!Migration.Certify.certify_service}, which shares no state with
    the service.

    {b Determinism}: for fixed arguments the report (and its printed
    form) is bit-identical at every [jobs] value; no wall-clock time
    is read anywhere in the loop.

    Instrumentation ({!Migration.Instr}): ["service.epochs"],
    ["service.absorbed"], ["service.rejected"], ["service.transfers"],
    ["service.repairs"], and timer ["service.epoch"]. *)

type trigger =
  | Retarget of (int * int) list
      (** explicit [(item, target)] moves; within one request the last
          retarget of an item wins *)
  | Demand_shift of { fraction : float }
      (** permute this fraction of the demand weights
          ({!Workloads.Demand.shift}) and re-layout incrementally over
          the active disks *)
  | Add_disk of { cap : int }
      (** grow the cluster; triggers an incremental re-layout onto the
          new disk *)
  | Remove_disk of { disk : int }
      (** drain: the disk stops being a target and its resident data
          evacuates to the demand-least-loaded active disks *)
  | Fail_disk of { disk : int }
      (** the disk dies at the epoch boundary: resident items are
          patched to the ring-successor, in-flight moves toward it are
          abandoned *)

(** [tenant] tags the request for per-tenant accounting ([>= 0]; use
    [0] when tenancy does not matter — single-tenant reports omit the
    per-tenant breakdown). *)
type request = { at : int; tenant : int; trigger : trigger }

(** Initial cluster state.  [caps] are per-disk transfer constraints
    ([c_v >= 1], also used as layout weights), [placement] maps item ->
    disk, [demands] the per-item demand weights driving re-layouts. *)
type cluster = {
  caps : int array;
  placement : int array;
  demands : float array;
}

type report = {
  epochs : int;
  total_rounds : int;    (** global rounds, idle and fast-forward included *)
  replans : int;         (** engine re-solve events across all epochs *)
  transfers : int;       (** completed transfers (superseded work included) *)
  repairs : int;         (** re-replication patches applied *)
  quarantined : int;     (** transfers dropped by the engine *)
  engine_retries : int;
  statuses : Migration.Certify.service_request_status array;
      (** per input request, in the caller's order *)
  latencies : (int * int) list;
      (** [(input index, completion - arrival)] for completed requests *)
  p50 : int;  (** request-to-completion latency percentiles, rounds *)
  p99 : int;
  tenants : (int * int * int * int) list;
      (** per-tenant [(tenant, completed, p50, p99)] over the same
          latencies, ascending tenant id — the SLA view of the stream *)
  truncated : bool;  (** [max_epochs] exhausted with work left *)
  execution : Migration.Certify.service_execution;
      (** the concatenated flight log {!Migration.Certify.certify_service}
          audits *)
}

(** [run cluster ~requests ()] serves the stream to completion (or
    [max_epochs] truncation, default [100_000]).  Requests need not be
    sorted; arrival order is [at] with ties in list order.  Invalid
    triggers are {e rejected} with a reason, never raised.
    [epoch_rounds] (default [16]) bounds each epoch's executed rounds;
    [policy ~epoch] builds the fault policy injected into that epoch's
    engine run (default: fault-free); [rng_seed] derives the
    demand-shift RNG and each epoch's planner RNG
    ([Random.State.make [| rng_seed; epoch; 0xe19 |]]); [tolerance]
    (default [0.05]) is the re-layout imbalance tolerance; [jobs] is
    the planner's worker-domain budget.
    @raise Invalid_argument on a malformed [cluster] or non-positive
    [epoch_rounds]/[max_epochs].
    @raise Migration.Engine.Plan_rejected if a planner produces an
    uncertifiable plan mid-flight (a library bug, never a fault or
    stream outcome). *)
val run :
  ?jobs:int ->
  ?epoch_rounds:int ->
  ?max_epochs:int ->
  ?rng_seed:int ->
  ?policy:(epoch:int -> Migration.Engine.policy) ->
  ?tolerance:float ->
  cluster ->
  requests:request list ->
  unit ->
  report

val pp_report : Format.formatter -> report -> unit

(** One line per input request: its terminal status. *)
val pp_statuses : Format.formatter -> report -> unit

(** {1 Trace files}

    The CLI's line format:
    {v
    # comment
    init disks=4 items=64 caps=3,3,2,2 zipf=1.1 seed=42
    at 0 retarget 0:1 5:2
    at 6 shift 0.3
    at 9 add cap=3
    at 12 remove 1
    at 15 fail 0
    v}
    [init] builds the cluster: seeded Zipf demands over [items] items
    ([zipf] is the skew [s], default [1.1]; [seed] defaults [0]), the
    initial placement balanced with {!Workloads.Layout.balance} under
    [caps] as weights ([caps] defaults to [2] everywhere). *)
val parse_trace : string list -> (cluster * request list, string) result

(** {1 Soak driver}

    The fuzz harness's cell: convert a generated migration instance
    into a service stream (each edge [(u, v)] becomes item [e] placed
    on [u] and retargeted to [v], split into staggered batches, with
    demand-shift / disk-failure / disk-addition triggers mixed in from
    the same seed), run the full loop under
    {!Storsim.Fault.engine_policy} at [fault_rate], and certify the
    concatenated flight log.  [(inst, seed)] is a complete
    reproducer. *)

type soak_stats = {
  soak_epochs : int;
  soak_rounds : int;
  soak_transfers : int;
  soak_completed : int;   (** requests completed *)
  soak_abandoned : int;
  soak_rejected : int;
}

(** [soak ~inst ~seed ()] returns [Error messages] when the certifier
    rejects the flight log, the accounting disagrees, or the run
    truncates — the shape {!Gen.Fuzz.run_service} shrinks against. *)
val soak :
  ?jobs:int ->
  ?epoch_rounds:int ->
  ?fault_rate:float ->
  inst:Migration.Instance.t ->
  seed:int ->
  unit ->
  (soak_stats, string list) result
