type counter = { c_name : string; count : int Atomic.t }

type timer = {
  t_name : string;
  t_lock : Mutex.t;
  mutable total_s : float;
  mutable spans : int;
}

(* Registries keep insertion handles so cells survive reset; the hot
   path (bump/record) never touches these tables.  Registration can
   race — Exec workers may force a lazily-initialized module — so both
   tables are guarded by [registry_lock]; counter cells are a single
   Atomic and timer cells take their own lock, making every operation
   safe from any domain. *)
let registry_lock = Mutex.create ()

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
[@@lint.domain_safe "every access goes through registry_lock"]

let timers : (string, timer) Hashtbl.t = Hashtbl.create 32
[@@lint.domain_safe "every access goes through registry_lock"]

let locked f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = { c_name = name; count = Atomic.make 0 } in
          Hashtbl.add counters name c;
          c)

let bump ?(by = 1) c = ignore (Atomic.fetch_and_add c.count by)
let counter_value c = Atomic.get c.count

let timer name =
  locked (fun () ->
      match Hashtbl.find_opt timers name with
      | Some t -> t
      | None ->
          let t =
            { t_name = name; t_lock = Mutex.create (); total_s = 0.0; spans = 0 }
          in
          Hashtbl.add timers name t;
          t)

let record t seconds =
  Mutex.lock t.t_lock;
  t.total_s <- t.total_s +. seconds;
  t.spans <- t.spans + 1;
  Mutex.unlock t.t_lock

let now_s () = Unix.gettimeofday ()

let time t f =
  let t0 = now_s () in
  Fun.protect ~finally:(fun () -> record t (now_s () -. t0)) f

type span = { total_s : float; count : int }

type snapshot = {
  counters : (string * int) list;
  timers : (string * span) list;
}

let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ (c : counter) -> Atomic.set c.count 0) counters;
      Hashtbl.iter
        (fun _ (t : timer) ->
          Mutex.lock t.t_lock;
          t.total_s <- 0.0;
          t.spans <- 0;
          Mutex.unlock t.t_lock)
        timers)

let snapshot () =
  locked (fun () ->
      let cs =
        Hashtbl.fold
          (fun name (c : counter) acc -> (name, Atomic.get c.count) :: acc)
          counters []
        |> List.sort compare
      in
      let ts =
        Hashtbl.fold
          (fun name (t : timer) acc ->
            Mutex.lock t.t_lock;
            let sp = { total_s = t.total_s; count = t.spans } in
            Mutex.unlock t.t_lock;
            (name, sp) :: acc)
          timers []
        |> List.sort compare
      in
      { counters = cs; timers = ts })

(* Cross-process aggregation: the distributed runner forks
   coordinator and worker processes, each with its own registry.  A
   child marshals its snapshot into a single line (workers ship it in
   their farewell protocol message; the coordinator leaves its own in
   the state directory) and the parent absorbs it, so one process's
   snapshot covers the whole process tree.  The encoding is a plain
   space-separated list — "c:<name>=<n>" and "t:<name>=<total>:<spans>"
   with %h hex floats so spans round-trip exactly; names are
   dot-separated identifiers and never contain spaces. *)

let marshal_snapshot snap =
  String.concat " "
    (List.map (fun (name, v) -> Printf.sprintf "c:%s=%d" name v) snap.counters
    @ List.map
        (fun (name, sp) ->
          Printf.sprintf "t:%s=%h:%d" name sp.total_s sp.count)
        snap.timers)

let unmarshal_snapshot s =
  let split_eq item =
    match String.index_opt item '=' with
    | None -> None
    | Some i ->
        Some
          ( String.sub item 0 i,
            String.sub item (i + 1) (String.length item - i - 1) )
  in
  let parse item =
    if String.length item < 2 || item.[1] <> ':' then None
    else
      let body = String.sub item 2 (String.length item - 2) in
      match (item.[0], split_eq body) with
      | 'c', Some (name, v) ->
          Option.map (fun v -> `C (name, v)) (int_of_string_opt v)
      | 't', Some (name, v) -> (
          match String.rindex_opt v ':' with
          | None -> None
          | Some k -> (
              let total = String.sub v 0 k in
              let count = String.sub v (k + 1) (String.length v - k - 1) in
              match (float_of_string_opt total, int_of_string_opt count) with
              | Some total_s, Some count -> Some (`T (name, { total_s; count }))
              | _ -> None))
      | _ -> None
  in
  let items = List.filter (fun x -> x <> "") (String.split_on_char ' ' s) in
  let rec go cs ts = function
    | [] -> Some { counters = List.rev cs; timers = List.rev ts }
    | item :: rest -> (
        match parse item with
        | Some (`C c) -> go (c :: cs) ts rest
        | Some (`T t) -> go cs (t :: ts) rest
        | None -> None)
  in
  go [] [] items

let absorb snap =
  List.iter
    (fun (name, v) -> if v <> 0 then bump ~by:v (counter name))
    snap.counters;
  List.iter
    (fun (name, sp) ->
      if sp.count > 0 then begin
        let t = timer name in
        Mutex.lock t.t_lock;
        t.total_s <- t.total_s +. sp.total_s;
        t.spans <- t.spans + sp.count;
        Mutex.unlock t.t_lock
      end)
    snap.timers

(* Names are ["subsystem.event"] identifiers — no quotes, backslashes
   or control characters — but escape defensively anyway. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json snap =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{";
  let first = ref true in
  let field name render =
    if not !first then Buffer.add_string buf ", ";
    first := false;
    Buffer.add_string buf (Printf.sprintf "\"%s\": " (json_escape name));
    render ()
  in
  List.iter
    (fun (name, v) -> field name (fun () -> Buffer.add_string buf (string_of_int v)))
    snap.counters;
  field "phase_timings" (fun () ->
      Buffer.add_string buf "{";
      List.iteri
        (fun i (name, sp) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf "\"%s\": %.6f" (json_escape name) sp.total_s))
        snap.timers;
      Buffer.add_string buf "}");
  field "phase_counts" (fun () ->
      Buffer.add_string buf "{";
      List.iteri
        (fun i (name, sp) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf "\"%s\": %d" (json_escape name) sp.count))
        snap.timers;
      Buffer.add_string buf "}");
  Buffer.add_string buf "}";
  Buffer.contents buf

let pp_table ppf snap =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "%-36s %12s@," "counter" "value";
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%-36s %12d@," name v)
    snap.counters;
  Format.fprintf ppf "@,%-36s %12s %8s@," "phase" "seconds" "spans";
  List.iter
    (fun (name, sp) ->
      Format.fprintf ppf "%-36s %12.6f %8d@," name sp.total_s sp.count)
    snap.timers;
  Format.fprintf ppf "@]"
