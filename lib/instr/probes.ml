type counter = { c_name : string; count : int Atomic.t }

type timer = {
  t_name : string;
  t_lock : Mutex.t;
  mutable total_s : float;
  mutable spans : int;
}

(* Registries keep insertion handles so cells survive reset; the hot
   path (bump/record) never touches these tables.  Registration can
   race — Exec workers may force a lazily-initialized module — so both
   tables are guarded by [registry_lock]; counter cells are a single
   Atomic and timer cells take their own lock, making every operation
   safe from any domain. *)
let registry_lock = Mutex.create ()

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
[@@lint.domain_safe "every access goes through registry_lock"]

let timers : (string, timer) Hashtbl.t = Hashtbl.create 32
[@@lint.domain_safe "every access goes through registry_lock"]

let locked f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = { c_name = name; count = Atomic.make 0 } in
          Hashtbl.add counters name c;
          c)

let bump ?(by = 1) c = ignore (Atomic.fetch_and_add c.count by)
let counter_value c = Atomic.get c.count

let timer name =
  locked (fun () ->
      match Hashtbl.find_opt timers name with
      | Some t -> t
      | None ->
          let t =
            { t_name = name; t_lock = Mutex.create (); total_s = 0.0; spans = 0 }
          in
          Hashtbl.add timers name t;
          t)

let record t seconds =
  Mutex.lock t.t_lock;
  t.total_s <- t.total_s +. seconds;
  t.spans <- t.spans + 1;
  Mutex.unlock t.t_lock

let now_s () = Unix.gettimeofday ()

let time t f =
  let t0 = now_s () in
  Fun.protect ~finally:(fun () -> record t (now_s () -. t0)) f

type span = { total_s : float; count : int }

type snapshot = {
  counters : (string * int) list;
  timers : (string * span) list;
}

let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ (c : counter) -> Atomic.set c.count 0) counters;
      Hashtbl.iter
        (fun _ (t : timer) ->
          Mutex.lock t.t_lock;
          t.total_s <- 0.0;
          t.spans <- 0;
          Mutex.unlock t.t_lock)
        timers)

let snapshot () =
  locked (fun () ->
      let cs =
        Hashtbl.fold
          (fun name (c : counter) acc -> (name, Atomic.get c.count) :: acc)
          counters []
        |> List.sort compare
      in
      let ts =
        Hashtbl.fold
          (fun name (t : timer) acc ->
            Mutex.lock t.t_lock;
            let sp = { total_s = t.total_s; count = t.spans } in
            Mutex.unlock t.t_lock;
            (name, sp) :: acc)
          timers []
        |> List.sort compare
      in
      { counters = cs; timers = ts })

(* Names are ["subsystem.event"] identifiers — no quotes, backslashes
   or control characters — but escape defensively anyway. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json snap =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{";
  let first = ref true in
  let field name render =
    if not !first then Buffer.add_string buf ", ";
    first := false;
    Buffer.add_string buf (Printf.sprintf "\"%s\": " (json_escape name));
    render ()
  in
  List.iter
    (fun (name, v) -> field name (fun () -> Buffer.add_string buf (string_of_int v)))
    snap.counters;
  field "phase_timings" (fun () ->
      Buffer.add_string buf "{";
      List.iteri
        (fun i (name, sp) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf "\"%s\": %.6f" (json_escape name) sp.total_s))
        snap.timers;
      Buffer.add_string buf "}");
  field "phase_counts" (fun () ->
      Buffer.add_string buf "{";
      List.iteri
        (fun i (name, sp) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf "\"%s\": %d" (json_escape name) sp.count))
        snap.timers;
      Buffer.add_string buf "}");
  Buffer.add_string buf "}";
  Buffer.contents buf

let pp_table ppf snap =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "%-36s %12s@," "counter" "value";
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%-36s %12d@," name v)
    snap.counters;
  Format.fprintf ppf "@,%-36s %12s %8s@," "phase" "seconds" "spans";
  List.iter
    (fun (name, sp) ->
      Format.fprintf ppf "%-36s %12.6f %8d@," name sp.total_s sp.count)
    snap.timers;
  Format.fprintf ppf "@]"
