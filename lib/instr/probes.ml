type counter = { c_name : string; mutable count : int }

type timer = { t_name : string; mutable total_s : float; mutable spans : int }

(* Registries keep insertion handles so cells survive reset; the hot
   path never touches these tables. *)
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let timers : (string, timer) Hashtbl.t = Hashtbl.create 32

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; count = 0 } in
      Hashtbl.add counters name c;
      c

let bump ?(by = 1) c = c.count <- c.count + by
let counter_value c = c.count

let timer name =
  match Hashtbl.find_opt timers name with
  | Some t -> t
  | None ->
      let t = { t_name = name; total_s = 0.0; spans = 0 } in
      Hashtbl.add timers name t;
      t

let record t seconds =
  t.total_s <- t.total_s +. seconds;
  t.spans <- t.spans + 1

let time t f =
  let t0 = Sys.time () in
  Fun.protect ~finally:(fun () -> record t (Sys.time () -. t0)) f

type span = { total_s : float; count : int }

type snapshot = {
  counters : (string * int) list;
  timers : (string * span) list;
}

let reset () =
  Hashtbl.iter (fun _ (c : counter) -> c.count <- 0) counters;
  Hashtbl.iter
    (fun _ (t : timer) ->
      t.total_s <- 0.0;
      t.spans <- 0)
    timers

let snapshot () =
  let cs =
    Hashtbl.fold
      (fun name (c : counter) acc -> (name, c.count) :: acc)
      counters []
    |> List.sort compare
  in
  let ts =
    Hashtbl.fold
      (fun name (t : timer) acc ->
        (name, { total_s = t.total_s; count = t.spans }) :: acc)
      timers []
    |> List.sort compare
  in
  { counters = cs; timers = ts }

(* Names are ["subsystem.event"] identifiers — no quotes, backslashes
   or control characters — but escape defensively anyway. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json snap =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{";
  let first = ref true in
  let field name render =
    if not !first then Buffer.add_string buf ", ";
    first := false;
    Buffer.add_string buf (Printf.sprintf "\"%s\": " (json_escape name));
    render ()
  in
  List.iter
    (fun (name, v) -> field name (fun () -> Buffer.add_string buf (string_of_int v)))
    snap.counters;
  field "phase_timings" (fun () ->
      Buffer.add_string buf "{";
      List.iteri
        (fun i (name, sp) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf "\"%s\": %.6f" (json_escape name) sp.total_s))
        snap.timers;
      Buffer.add_string buf "}");
  field "phase_counts" (fun () ->
      Buffer.add_string buf "{";
      List.iteri
        (fun i (name, sp) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf "\"%s\": %d" (json_escape name) sp.count))
        snap.timers;
      Buffer.add_string buf "}");
  Buffer.add_string buf "}";
  Buffer.contents buf

let pp_table ppf snap =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "%-36s %12s@," "counter" "value";
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%-36s %12d@," name v)
    snap.counters;
  Format.fprintf ppf "@,%-36s %12s %8s@," "phase" "seconds" "spans";
  List.iter
    (fun (name, sp) ->
      Format.fprintf ppf "%-36s %12.6f %8d@," name sp.total_s sp.count)
    snap.timers;
  Format.fprintf ppf "@]"
