(** Structured instrumentation: process-wide counters and timers.

    This is the metrics spine of the planner pipeline.  It sits below
    every algorithmic library (flow, coloring, core) so that hot loops
    can record events without depending on [Migration]; the core
    re-exports it as [Migration.Instr].

    Design constraints:

    - {b cheap}: a counter is a named [int Atomic.t]; bumping it is a
      single fetch-and-add.  Cells are created once (at module
      initialization of the instrumented code) and looked up never
      again, so the hot path carries no hashing.
    - {b domain-safe}: cells are shared across the Exec worker
      domains.  Counters are atomic, timers take a per-cell lock, and
      the registries are guarded by a single registration mutex, so
      concurrent bumps, records, registrations, {!reset} and
      {!snapshot} never lose updates or tear reads.
    - {b always-on}: there is no enable flag to thread through APIs.
      Callers that want a per-run view call {!reset} first and
      {!snapshot} after.
    - {b stable schema}: a registered cell survives {!reset} (only its
      value is zeroed), so a snapshot always contains every metric the
      linked program can produce — absent activity reads as [0], not
      as a missing key. *)

type counter
type timer

(** [counter name] registers (or retrieves) the counter cell [name].
    Counter and timer names share one namespace by convention
    ["<subsystem>.<event>"], e.g. ["flow.augmenting_paths"]. *)
val counter : string -> counter

val bump : ?by:int -> counter -> unit
val counter_value : counter -> int

(** [timer name] registers (or retrieves) the timer cell [name].
    Timers accumulate wall-clock spans: total seconds and span
    count. *)
val timer : string -> timer

(** [time t f] runs [f ()] and adds its duration to [t].  Exceptions
    propagate; the span up to the raise is still recorded. *)
val time : timer -> (unit -> 'a) -> 'a

(** [record t seconds] adds an externally-measured span. *)
val record : timer -> float -> unit

(** Wall-clock reading, for callers measuring their own spans before
    {!record}.  This is the {e only} sanctioned wall-clock source for
    library code: migrate-lint's determinism rule bans direct
    [Unix.gettimeofday] / [Sys.time] calls outside [lib/instr], so
    timing stays inside the instrumentation layer and can never leak
    into planning decisions. *)
val now_s : unit -> float

type span = { total_s : float; count : int }

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  timers : (string * span) list;   (** sorted by name *)
}

(** Zero every registered cell (registrations persist). *)
val reset : unit -> unit

val snapshot : unit -> snapshot

(** {1 Cross-process aggregation}

    The distributed runner forks coordinator and worker processes;
    each has its own registry, so a parent's {!snapshot} would miss
    everything the children counted.  A child marshals its snapshot
    into a single line, ships it to the parent (protocol message or
    state-dir file), and the parent {!absorb}s it — one process's
    snapshot then covers the whole process tree. *)

val marshal_snapshot : snapshot -> string
(** Single-line encoding (never contains ['\n']); timer spans use hex
    floats so values round-trip exactly. *)

val unmarshal_snapshot : string -> snapshot option
(** Inverse of {!marshal_snapshot}; [None] on malformed input. *)

val absorb : snapshot -> unit
(** Add a snapshot's counts and spans into this process's registry,
    registering any cells it does not have yet. *)

(** Flat JSON object: one key per counter (integer value) plus a
    ["phase_timings"] sub-object mapping timer names to total seconds
    (and ["phase_counts"] with span counts).  Self-contained — no JSON
    library involved. *)
val to_json : snapshot -> string

(** Human-readable two-column table. *)
val pp_table : Format.formatter -> snapshot -> unit
