type edge = { id : int; u : int; v : int }

type t = {
  mutable n : int;
  edges : edge Vec.t;
  (* adjacency: for each node, incident edge ids (self-loop listed once) *)
  mutable adj : int Vec.t array;
  mutable deg : int array;
}

let dummy_edge = { id = -1; u = -1; v = -1 }

let create ?(n = 0) () =
  if n < 0 then invalid_arg "Multigraph.create";
  {
    n;
    edges = Vec.create ~dummy:dummy_edge ();
    adj = Array.init (max n 1) (fun _ -> Vec.create ~dummy:(-1) ());
    deg = Array.make (max n 1) 0;
  }

let ensure_capacity g =
  let cap = Array.length g.adj in
  if g.n > cap then begin
    let ncap = max (2 * cap) g.n in
    let adj = Array.init ncap (fun i -> if i < cap then g.adj.(i) else Vec.create ~dummy:(-1) ()) in
    let deg = Array.make ncap 0 in
    Array.blit g.deg 0 deg 0 cap;
    g.adj <- adj;
    g.deg <- deg
  end

let add_node g =
  let id = g.n in
  g.n <- g.n + 1;
  ensure_capacity g;
  id

let n_nodes g = g.n
let n_edges g = Vec.length g.edges

let check_node g v name = if v < 0 || v >= g.n then invalid_arg name

let add_edge g u v =
  check_node g u "Multigraph.add_edge";
  check_node g v "Multigraph.add_edge";
  let id = Vec.length g.edges in
  ignore (Vec.push g.edges { id; u; v });
  ignore (Vec.push g.adj.(u) id);
  if u <> v then ignore (Vec.push g.adj.(v) id);
  g.deg.(u) <- g.deg.(u) + 1;
  g.deg.(v) <- g.deg.(v) + 1;
  id

let edge g e =
  if e < 0 || e >= n_edges g then invalid_arg "Multigraph.edge";
  Vec.get g.edges e

let endpoints g e =
  let { u; v; _ } = edge g e in
  (u, v)

let is_self_loop g e =
  let { u; v; _ } = edge g e in
  u = v

let other_endpoint g e w =
  let { u; v; _ } = edge g e in
  if w = u then v
  else if w = v then u
  else invalid_arg "Multigraph.other_endpoint: not an endpoint"

let degree g v =
  check_node g v "Multigraph.degree";
  g.deg.(v)

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    if g.deg.(v) > !best then best := g.deg.(v)
  done;
  !best

let incident g v =
  check_node g v "Multigraph.incident";
  Vec.to_list g.adj.(v)

let iter_incident g v f =
  check_node g v "Multigraph.iter_incident";
  Vec.iter f g.adj.(v)

let multiplicity g u v =
  check_node g u "Multigraph.multiplicity";
  check_node g v "Multigraph.multiplicity";
  let count = ref 0 in
  iter_incident g u (fun e ->
      let { u = a; v = b; _ } = edge g e in
      if (a = u && b = v) || (a = v && b = u) then incr count);
  (* a self-loop at u=v is listed once in adj and matched once above *)
  !count

let iter_edges g f = Vec.iter f g.edges
let fold_edges f g acc = Vec.fold (fun acc e -> f e acc) acc g.edges
let edges g = Vec.to_list g.edges

let max_multiplicity g =
  (* group edges by normalized endpoint pair *)
  let tbl = Hashtbl.create (max 16 (n_edges g)) in
  let best = ref 0 in
  iter_edges g (fun { u; v; _ } ->
      let key = if u <= v then (u, v) else (v, u) in
      let c = (try Hashtbl.find tbl key with Not_found -> 0) + 1 in
      Hashtbl.replace tbl key c;
      if c > !best then best := c);
  !best

let sub g keep =
  let h = create ~n:g.n () in
  let mapping = Vec.create ~dummy:(-1) () in
  iter_edges g (fun { id; u; v } ->
      if keep id then begin
        ignore (add_edge h u v);
        ignore (Vec.push mapping id)
      end);
  (h, Vec.to_array mapping)

let copy g =
  {
    n = g.n;
    edges = Vec.copy g.edges;
    adj = Array.map Vec.copy g.adj;
    deg = Array.copy g.deg;
  }

let is_simple g =
  let tbl = Hashtbl.create (max 16 (n_edges g)) in
  let ok = ref true in
  iter_edges g (fun { u; v; _ } ->
      if u = v then ok := false
      else begin
        let key = if u <= v then (u, v) else (v, u) in
        if Hashtbl.mem tbl key then ok := false else Hashtbl.add tbl key ()
      end);
  !ok

let handshake_ok g =
  let total = ref 0 in
  for v = 0 to g.n - 1 do
    total := !total + g.deg.(v)
  done;
  !total = 2 * n_edges g

let pp ppf g =
  Format.fprintf ppf "@[<v>graph %d nodes %d edges@," (n_nodes g) (n_edges g);
  iter_edges g (fun { id; u; v } -> Format.fprintf ppf "  e%d: %d -- %d@," id u v);
  Format.fprintf ppf "@]"
