type edge = { id : int; u : int; v : int }

module Csr = struct
  type t = {
    offsets : int array;
    neighbors : int array;
    edge_ids : int array;
  }

  let row_start t v = Array.unsafe_get t.offsets v
  let row_stop t v = Array.unsafe_get t.offsets (v + 1)
  let slots t v = t.offsets.(v + 1) - t.offsets.(v)
end

type t = {
  mutable n : int;
  edges : edge Vec.t;
  (* adjacency: for each node, incident edge ids (self-loop listed once) *)
  mutable adj : int Vec.t array;
  mutable deg : int array;
  (* cached flat view; rebuilt by [freeze], dropped on any mutation.
     The arrays inside are never written after construction, so a
     [copy] may share the cache with its source. *)
  mutable csr : Csr.t option;
}

let dummy_edge = { id = -1; u = -1; v = -1 }

let create ?(n = 0) () =
  if n < 0 then invalid_arg "Multigraph.create";
  {
    n;
    edges = Vec.create ~dummy:dummy_edge ();
    adj = Array.init (max n 1) (fun _ -> Vec.create ~dummy:(-1) ());
    deg = Array.make (max n 1) 0;
    csr = None;
  }

let ensure_capacity g =
  let cap = Array.length g.adj in
  if g.n > cap then begin
    let ncap = max (2 * cap) g.n in
    let adj = Array.init ncap (fun i -> if i < cap then g.adj.(i) else Vec.create ~dummy:(-1) ()) in
    let deg = Array.make ncap 0 in
    Array.blit g.deg 0 deg 0 cap;
    g.adj <- adj;
    g.deg <- deg
  end

let add_node g =
  let id = g.n in
  g.n <- g.n + 1;
  ensure_capacity g;
  g.csr <- None;
  id

let n_nodes g = g.n
let n_edges g = Vec.length g.edges

let check_node g v name = if v < 0 || v >= g.n then invalid_arg name

let add_edge g u v =
  check_node g u "Multigraph.add_edge";
  check_node g v "Multigraph.add_edge";
  let id = Vec.length g.edges in
  ignore (Vec.push g.edges { id; u; v });
  ignore (Vec.push g.adj.(u) id);
  if u <> v then ignore (Vec.push g.adj.(v) id);
  g.deg.(u) <- g.deg.(u) + 1;
  g.deg.(v) <- g.deg.(v) + 1;
  g.csr <- None;
  id

let edge g e =
  if e < 0 || e >= n_edges g then invalid_arg "Multigraph.edge";
  Vec.get g.edges e

let endpoints g e =
  let { u; v; _ } = edge g e in
  (u, v)

let is_self_loop g e =
  let { u; v; _ } = edge g e in
  u = v

let other_endpoint g e w =
  let { u; v; _ } = edge g e in
  if w = u then v
  else if w = v then u
  else invalid_arg "Multigraph.other_endpoint: not an endpoint"

let degree g v =
  check_node g v "Multigraph.degree";
  g.deg.(v)

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    if g.deg.(v) > !best then best := g.deg.(v)
  done;
  !best

let incident g v =
  check_node g v "Multigraph.incident";
  Vec.to_list g.adj.(v)

let iter_incident g v f =
  check_node g v "Multigraph.iter_incident";
  Vec.iter f g.adj.(v)

(* Canonical incidence order is insertion order (oldest edge first):
   [incident], [iter_incident] and the CSR rows of [freeze] all agree
   on it, and the determinism tests pin it. *)
let freeze g =
  match g.csr with
  | Some c -> c
  | None ->
      let n = g.n in
      let offsets = Array.make (n + 1) 0 in
      let total = ref 0 in
      for v = 0 to n - 1 do
        offsets.(v) <- !total;
        total := !total + Vec.length g.adj.(v)
      done;
      offsets.(n) <- !total;
      let neighbors = Array.make !total (-1) in
      let edge_ids = Array.make !total (-1) in
      for v = 0 to n - 1 do
        let row = g.adj.(v) in
        let base = offsets.(v) in
        for k = 0 to Vec.length row - 1 do
          let e = Vec.get row k in
          let { u = a; v = b; _ } = Vec.get g.edges e in
          edge_ids.(base + k) <- e;
          neighbors.(base + k) <- (if a = v then b else a)
        done
      done;
      let c = { Csr.offsets; neighbors; edge_ids } in
      g.csr <- Some c;
      c

let multiplicity g u v =
  check_node g u "Multigraph.multiplicity";
  check_node g v "Multigraph.multiplicity";
  let count = ref 0 in
  iter_incident g u (fun e ->
      let { u = a; v = b; _ } = edge g e in
      if (a = u && b = v) || (a = v && b = u) then incr count);
  (* a self-loop at u=v is listed once in adj and matched once above *)
  !count

let iter_edges g f = Vec.iter f g.edges
let fold_edges f g acc = Vec.fold (fun acc e -> f e acc) acc g.edges
let edges g = Vec.to_list g.edges

(* Normalized endpoint pair packed into one int: fits because node ids
   are array indices, so [n * n] stays well inside 63 bits. *)
let pair_keys g =
  let m = n_edges g in
  let keys = Array.make m 0 in
  iter_edges g (fun { id; u; v } ->
      let a = if u <= v then u else v and b = if u <= v then v else u in
      keys.(id) <- (a * g.n) + b);
  Array.sort (fun (a : int) b -> compare a b) keys;
  keys

let max_multiplicity g =
  if n_edges g = 0 then 0
  else begin
    let keys = pair_keys g in
    let best = ref 1 and run = ref 1 in
    for i = 1 to Array.length keys - 1 do
      if keys.(i) = keys.(i - 1) then begin
        incr run;
        if !run > !best then best := !run
      end
      else run := 1
    done;
    !best
  end

let sub g keep =
  let count = ref 0 in
  iter_edges g (fun { id; _ } -> if keep id then incr count);
  let mapping = Array.make !count (-1) in
  let h = create ~n:g.n () in
  let k = ref 0 in
  iter_edges g (fun { id; u; v } ->
      if keep id then begin
        ignore (add_edge h u v);
        mapping.(!k) <- id;
        incr k
      end);
  (h, mapping)

let copy g =
  {
    n = g.n;
    edges = Vec.copy g.edges;
    adj = Array.map Vec.copy g.adj;
    deg = Array.copy g.deg;
    csr = g.csr;
  }

let is_simple g =
  let no_loop = ref true in
  iter_edges g (fun { u; v; _ } -> if u = v then no_loop := false);
  !no_loop
  &&
  let keys = pair_keys g in
  let distinct = ref true in
  for i = 1 to Array.length keys - 1 do
    if keys.(i) = keys.(i - 1) then distinct := false
  done;
  !distinct

let handshake_ok g =
  let total = ref 0 in
  for v = 0 to g.n - 1 do
    total := !total + g.deg.(v)
  done;
  !total = 2 * n_edges g

let pp ppf g =
  Format.fprintf ppf "@[<v>graph %d nodes %d edges@," (n_nodes g) (n_edges g);
  iter_edges g (fun { id; u; v } -> Format.fprintf ppf "  e%d: %d -- %d@," id u v);
  Format.fprintf ppf "@]"

(* Pre-flat-core reference implementations, kept verbatim so the
   qcheck differential suite (test/test_flatcore.ml) can assert the
   array/CSR paths above agree with the original list/Hashtbl code.
   Nothing in lib/ may call these; they are test oracles only. *)
module Slow = struct
  let incident g v =
    check_node g v "Multigraph.Slow.incident";
    Vec.to_list g.adj.(v)

  let multiplicity g u v =
    check_node g u "Multigraph.Slow.multiplicity";
    check_node g v "Multigraph.Slow.multiplicity";
    List.length
      (List.filter
         (fun e ->
           let { u = a; v = b; _ } = edge g e in
           (a = u && b = v) || (a = v && b = u))
         (incident g u))

  let max_multiplicity g =
    let tbl = Hashtbl.create (max 16 (n_edges g)) in
    let best = ref 0 in
    iter_edges g (fun { u; v; _ } ->
        let key = if u <= v then (u, v) else (v, u) in
        let c = (try Hashtbl.find tbl key with Not_found -> 0) + 1 in
        Hashtbl.replace tbl key c;
        if c > !best then best := c);
    !best

  let is_simple g =
    let tbl = Hashtbl.create (max 16 (n_edges g)) in
    let ok = ref true in
    iter_edges g (fun { u; v; _ } ->
        if u = v then ok := false
        else begin
          let key = if u <= v then (u, v) else (v, u) in
          if Hashtbl.mem tbl key then ok := false else Hashtbl.add tbl key ()
        end);
    !ok

  let sub g keep =
    let h = create ~n:g.n () in
    let mapping = Vec.create ~dummy:(-1) () in
    iter_edges g (fun { id; u; v } ->
        if keep id then begin
          ignore (add_edge h u v);
          ignore (Vec.push mapping id)
        end);
    (h, Vec.to_array mapping)
end
