type arc = { edge : int; src : int; dst : int }

let all_degrees_even g =
  let rec loop v =
    v >= Multigraph.n_nodes g || (Multigraph.degree g v mod 2 = 0 && loop (v + 1))
  in
  loop 0

let check_even g =
  if not (all_degrees_even g) then
    invalid_arg "Euler: graph has a node of odd degree"

(* Hierholzer with a shared per-node adjacency cursor and a used-edge
   mask, so repeated calls inside [circuits] stay linear overall. *)
type state = {
  adj : int array array;  (* incident edge ids per node *)
  ptr : int array;        (* next unexplored position in adj.(v) *)
  used : bool array;
}

let make_state g =
  let n = Multigraph.n_nodes g in
  {
    adj = Array.init n (fun v -> Array.of_list (Multigraph.incident g v));
    ptr = Array.make n 0;
    used = Array.make (Multigraph.n_edges g) false;
  }

let circuit_of_state g st start =
  (* stack elements: (node, edge used to enter it, node it was entered from) *)
  let stack = ref [ (start, -1, -1) ] in
  let out = ref [] in
  let continue = ref true in
  while !continue do
    match !stack with
    | [] -> continue := false
    | (v, ein, from) :: rest ->
        let row = st.adj.(v) in
        while st.ptr.(v) < Array.length row && st.used.(row.(st.ptr.(v))) do
          st.ptr.(v) <- st.ptr.(v) + 1
        done;
        if st.ptr.(v) >= Array.length row then begin
          stack := rest;
          if ein >= 0 then out := { edge = ein; src = from; dst = v } :: !out
        end
        else begin
          let e = row.(st.ptr.(v)) in
          st.used.(e) <- true;
          let w = Multigraph.other_endpoint g e v in
          stack := (w, e, v) :: !stack
        end
  done;
  !out

let circuit_from g v =
  check_even g;
  let st = make_state g in
  circuit_of_state g st v

let circuits g =
  check_even g;
  let st = make_state g in
  let comp, k = Traversal.components g in
  (* pick a representative node per component, skip edgeless ones *)
  let rep = Array.make k (-1) in
  for v = 0 to Multigraph.n_nodes g - 1 do
    if rep.(comp.(v)) < 0 && Multigraph.degree g v > 0 then rep.(comp.(v)) <- v
  done;
  Array.to_list rep
  |> List.filter_map (fun v ->
         if v < 0 then None else Some (circuit_of_state g st v))

let orientation g =
  let result = Array.make (Multigraph.n_edges g) (-1, -1) in
  List.iter
    (fun circuit ->
      List.iter (fun { edge; src; dst } -> result.(edge) <- (src, dst)) circuit)
    (circuits g);
  result
