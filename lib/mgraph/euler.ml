type arc = { edge : int; src : int; dst : int }

let all_degrees_even g =
  let rec loop v =
    v >= Multigraph.n_nodes g || (Multigraph.degree g v mod 2 = 0 && loop (v + 1))
  in
  loop 0

let check_even g =
  if not (all_degrees_even g) then
    invalid_arg "Euler: graph has a node of odd degree"

(* Hierholzer over the CSR view with a shared per-node cursor and a
   used-edge mask, so repeated walks stay linear overall.  [ptr.(v)] is
   an absolute index into the flat row of [v]; [used.(e)] is 0/1. *)

(* One circuit from [start]: calls [emit e src dst] once per traversed
   edge, in the order edges finish (reverse circuit order — consing the
   emissions yields the circuit forward).  The explicit stack arrays
   ([sn]/[se]/[sf], at least [m + 1] slots each) are caller-provided so
   a caller walking many start nodes pays for them once; every cell is
   written before it is read, so they need no clearing between walks. *)
let walk (csr : Multigraph.Csr.t) ptr used sn se sf emit start =
  sn.(0) <- start;
  se.(0) <- -1;
  sf.(0) <- -1;
  let top = ref 0 in
  while !top >= 0 do
    let v = sn.(!top) in
    let stop = csr.Multigraph.Csr.offsets.(v + 1) in
    let p = ref ptr.(v) in
    while !p < stop && used.(csr.Multigraph.Csr.edge_ids.(!p)) = 1 do
      incr p
    done;
    ptr.(v) <- !p;
    if !p >= stop then begin
      let ein = se.(!top) and from = sf.(!top) in
      decr top;
      if ein >= 0 then emit ein from v
    end
    else begin
      let e = csr.Multigraph.Csr.edge_ids.(!p) in
      used.(e) <- 1;
      let w = csr.Multigraph.Csr.neighbors.(!p) in
      incr top;
      sn.(!top) <- w;
      se.(!top) <- e;
      sf.(!top) <- v
    end
  done

(* Shared walk state for the list-producing API. *)
type state = { csr : Multigraph.Csr.t; ptr : int array; used : int array }

let make_state g =
  let csr = Multigraph.freeze g in
  {
    csr;
    ptr = Array.sub csr.Multigraph.Csr.offsets 0 (Multigraph.n_nodes g);
    used = Array.make (Multigraph.n_edges g) 0;
  }

let circuit_of_state g st start =
  let out = ref [] in
  let m = Multigraph.n_edges g in
  let arena = Arena.local () in
  let cap = m + 1 in
  let hn = Arena.ints arena ~len:cap ~fill:0 in
  let he = Arena.ints arena ~len:cap ~fill:0 in
  let hf = Arena.ints arena ~len:cap ~fill:0 in
  walk st.csr st.ptr st.used (Arena.arr hn) (Arena.arr he) (Arena.arr hf)
    (fun edge src dst -> out := { edge; src; dst } :: !out)
    start;
  Arena.release arena hf;
  Arena.release arena he;
  Arena.release arena hn;
  !out

let circuit_from g v =
  check_even g;
  let st = make_state g in
  circuit_of_state g st v

let circuits g =
  check_even g;
  let st = make_state g in
  let comp, k = Traversal.components g in
  (* pick a representative node per component, skip edgeless ones *)
  let rep = Array.make k (-1) in
  for v = 0 to Multigraph.n_nodes g - 1 do
    if rep.(comp.(v)) < 0 && Multigraph.degree g v > 0 then rep.(comp.(v)) <- v
  done;
  Array.to_list rep
  |> (List.filter_map [@lint.allow
       "hotpath: circuits is the cold list-of-lists public API — one \
        call per component, never on the per-edge orientation path \
        (orient builds flat arrays directly)"]) (fun v ->
         if v < 0 then None else Some (circuit_of_state g st v))

let orient g =
  check_even g;
  let n = Multigraph.n_nodes g and m = Multigraph.n_edges g in
  let csr = Multigraph.freeze g in
  let arena = Arena.local () in
  let hp = Arena.ints arena ~len:(max n 1) ~fill:0 in
  let hu = Arena.ints arena ~len:(max m 1) ~fill:0 in
  let cap = m + 1 in
  let hn = Arena.ints arena ~len:cap ~fill:0 in
  let he = Arena.ints arena ~len:cap ~fill:0 in
  let hf = Arena.ints arena ~len:cap ~fill:0 in
  let ptr = Arena.arr hp and used = Arena.arr hu in
  let sn = Arena.arr hn and se = Arena.arr he and sf = Arena.arr hf in
  Array.blit csr.Multigraph.Csr.offsets 0 ptr 0 n;
  let srcs = Array.make m (-1) and dsts = Array.make m (-1) in
  (* The first positive-degree node of each component starts the full
     circuit of that component; later nodes find all incident edges
     used and walk for free — no separate component pass needed. *)
  for v = 0 to n - 1 do
    if Multigraph.Csr.slots csr v > 0 then
      walk csr ptr used sn se sf
        (fun e src dst ->
          srcs.(e) <- src;
          dsts.(e) <- dst)
        v
  done;
  Arena.release arena hf;
  Arena.release arena he;
  Arena.release arena hn;
  Arena.release arena hu;
  Arena.release arena hp;
  (srcs, dsts)

let orientation g =
  let srcs, dsts = orient g in
  Array.init (Array.length srcs) (fun e -> (srcs.(e), dsts.(e)))
