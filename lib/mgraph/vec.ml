type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ~dummy () = { data = Array.make 8 dummy; len = 0; dummy }

let make ~dummy n x =
  if n < 0 then invalid_arg "Vec.make";
  { data = Array.make (max 8 n) x; len = n; dummy }

let length v = v.len

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let grow v =
  let data = Array.make (2 * Array.length v.data) v.dummy in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v;
  v.data.(v.len) <- x;
  v.len <- v.len + 1;
  v.len - 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  let x = v.data.(v.len) in
  v.data.(v.len) <- v.dummy;
  x

let peek v =
  if v.len = 0 then invalid_arg "Vec.peek: empty";
  v.data.(v.len - 1)

let is_empty v = v.len = 0

let clear v =
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.len - 1) []

let of_list ~dummy xs =
  let v = create ~dummy () in
  List.iter (fun x -> ignore (push v x)) xs;
  v

let to_array v = Array.sub v.data 0 v.len
let unsafe_data v = v.data

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let copy v = { data = Array.copy v.data; len = v.len; dummy = v.dummy }
