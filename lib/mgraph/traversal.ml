(* Traversals over the CSR view.  Queues and stacks are arena scratch;
   only the result arrays/lists are allocated. *)

let bfs g src =
  let n = Multigraph.n_nodes g in
  let csr = Multigraph.freeze g in
  let dist = Array.make n (-1) in
  let arena = Arena.local () in
  let hq = Arena.ints arena ~len:n ~fill:0 in
  let q = Arena.arr hq in
  let head = ref 0 and tail = ref 0 in
  dist.(src) <- 0;
  q.(0) <- src;
  tail := 1;
  while !head < !tail do
    let u = q.(!head) in
    incr head;
    for p = Multigraph.Csr.row_start csr u to Multigraph.Csr.row_stop csr u - 1
    do
      let w = csr.Multigraph.Csr.neighbors.(p) in
      if dist.(w) < 0 then begin
        dist.(w) <- dist.(u) + 1;
        q.(!tail) <- w;
        incr tail
      end
    done
  done;
  Arena.release arena hq;
  dist

let dfs_order g src =
  let n = Multigraph.n_nodes g in
  let m = Multigraph.n_edges g in
  let csr = Multigraph.freeze g in
  let seen = Array.make n false in
  let order = ref [] in
  let arena = Arena.local () in
  (* each endpoint visit pushes at most its row, so 2m + 1 bounds the
     stack (duplicates allowed, filtered by [seen] at pop — exactly the
     original list-stack semantics, hence the same preorder) *)
  let hs = Arena.ints arena ~len:((2 * m) + 1) ~fill:0 in
  let stack = Arena.arr hs in
  stack.(0) <- src;
  let top = ref 0 in
  while !top >= 0 do
    let u = stack.(!top) in
    decr top;
    if not seen.(u) then begin
      seen.(u) <- true;
      order := u :: !order;
      for
        p = Multigraph.Csr.row_start csr u to Multigraph.Csr.row_stop csr u - 1
      do
        let w = csr.Multigraph.Csr.neighbors.(p) in
        if not seen.(w) then begin
          incr top;
          stack.(!top) <- w
        end
      done
    end
  done;
  Arena.release arena hs;
  (List.rev [@lint.allow
    "hotpath: dfs_order's public return type is a list — one reversal \
     per call, after the arena-stack walk; callers are cold setup \
     paths"]) !order

let components g =
  let n = Multigraph.n_nodes g in
  let csr = Multigraph.freeze g in
  let comp = Array.make n (-1) in
  let arena = Arena.local () in
  let hq = Arena.ints arena ~len:(max n 1) ~fill:0 in
  let q = Arena.arr hq in
  let k = ref 0 in
  for src = 0 to n - 1 do
    if comp.(src) < 0 then begin
      let id = !k in
      incr k;
      comp.(src) <- id;
      q.(0) <- src;
      let head = ref 0 and tail = ref 1 in
      while !head < !tail do
        let u = q.(!head) in
        incr head;
        for
          p = Multigraph.Csr.row_start csr u
          to Multigraph.Csr.row_stop csr u - 1
        do
          let w = csr.Multigraph.Csr.neighbors.(p) in
          if comp.(w) < 0 then begin
            comp.(w) <- id;
            q.(!tail) <- w;
            incr tail
          end
        done
      done
    end
  done;
  Arena.release arena hq;
  (comp, !k)

let n_components g = snd (components g)

let is_connected g = Multigraph.n_nodes g <= 1 || n_components g = 1

let component_members g =
  let comp, k = components g in
  let members = Array.make k [] in
  for v = Multigraph.n_nodes g - 1 downto 0 do
    members.(comp.(v)) <- v :: members.(comp.(v))
  done;
  members
