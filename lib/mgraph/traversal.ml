let bfs g src =
  let n = Multigraph.n_nodes g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    Multigraph.iter_incident g u (fun e ->
        let w = Multigraph.other_endpoint g e u in
        if dist.(w) < 0 then begin
          dist.(w) <- dist.(u) + 1;
          Queue.add w queue
        end)
  done;
  dist

let dfs_order g src =
  let n = Multigraph.n_nodes g in
  let seen = Array.make n false in
  let order = ref [] in
  let stack = ref [ src ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | u :: rest ->
        stack := rest;
        if not seen.(u) then begin
          seen.(u) <- true;
          order := u :: !order;
          Multigraph.iter_incident g u (fun e ->
              let w = Multigraph.other_endpoint g e u in
              if not seen.(w) then stack := w :: !stack)
        end
  done;
  List.rev !order

let components g =
  let n = Multigraph.n_nodes g in
  let comp = Array.make n (-1) in
  let k = ref 0 in
  for src = 0 to n - 1 do
    if comp.(src) < 0 then begin
      let id = !k in
      incr k;
      let queue = Queue.create () in
      comp.(src) <- id;
      Queue.add src queue;
      while not (Queue.is_empty queue) do
        let u = Queue.take queue in
        Multigraph.iter_incident g u (fun e ->
            let w = Multigraph.other_endpoint g e u in
            if comp.(w) < 0 then begin
              comp.(w) <- id;
              Queue.add w queue
            end)
      done
    end
  done;
  (comp, !k)

let n_components g = snd (components g)

let is_connected g = Multigraph.n_nodes g <= 1 || n_components g = 1

let component_members g =
  let comp, k = components g in
  let members = Array.make k [] in
  for v = Multigraph.n_nodes g - 1 downto 0 do
    members.(comp.(v)) <- v :: members.(comp.(v))
  done;
  members
