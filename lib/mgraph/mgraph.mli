(** Umbrella module for the multigraph substrate. *)

module Vec = Vec
module Arena = Arena
module Heap = Heap
module Stats = Stats
module Multigraph = Multigraph
module Traversal = Traversal
module Euler = Euler
module Graph_gen = Graph_gen
module Graph_io = Graph_io
