(** Small descriptive-statistics helpers for experiment reporting.

    Used by the benchmark harness to report multi-seed experiments
    with spread, and by the simulator's summaries.  All functions
    raise [Invalid_argument] on empty input. *)

val mean : float list -> float
val stddev : float list -> float
(** Sample standard deviation (n-1 denominator); 0 for singletons. *)

val minimum : float list -> float
val maximum : float list -> float

(** [percentile p xs] with [p] in [0, 100]: nearest-rank method. *)
val percentile : float -> float list -> float

val median : float list -> float

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p95 : float;
  max : float;
}

val summarize : float list -> summary
val pp_summary : Format.formatter -> summary -> unit
