(** Text serialization for multigraphs.

    The edge-list format is one header line ["n m"] followed by [m]
    lines ["u v"], whitespace-separated.  It round-trips edge ids
    (edges are listed in id order). *)

val to_edge_list : Multigraph.t -> string

(** @raise Failure on malformed input. *)
val of_edge_list : string -> Multigraph.t

(** GraphViz [graph { ... }] rendering, for eyeballing instances. *)
val to_dot : ?name:string -> Multigraph.t -> string
