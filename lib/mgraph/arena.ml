(* Reusable scratch buffers for the hot kernels.

   A buffer checkout pops a pooled int array of the right size class
   (power of two, minimum 16) or allocates one on first use; release
   pushes it back.  In steady state a kernel that checks out and
   releases the same shapes every call allocates nothing.

   Handles are poisoned on release: touching a released handle raises
   [Stale], which is how the test suite catches a kernel that leaks a
   buffer past its release point.  Kernels hoist the raw array out of
   the handle once ([arr]) and index it directly, so the liveness
   check costs one branch per checkout, not per access.

   Ownership rule: one arena per domain, never shared.  [local ()]
   returns this domain's arena via [Domain.DLS]; nothing stops a
   caller from smuggling an arena across domains, but every kernel in
   this repo either receives an arena from its (single-domain) caller
   or calls [local ()] itself. *)

exception Stale

type buf = { mutable live : bool; data : int array }

type t = {
  (* free buffers per size class; class [c] holds arrays of length
     [16 lsl c].  62 classes cover every representable length. *)
  pools : buf list array;
  mutable outstanding : int;
}

let create () = { pools = Array.make 62 []; outstanding = 0 }

let class_of len =
  if len < 0 then invalid_arg "Arena: negative length";
  let c = ref 0 in
  while 16 lsl !c < len do
    incr c
  done;
  !c

let ints t ~len ~fill =
  let c = class_of len in
  let b =
    match t.pools.(c) with
    | b :: rest ->
        t.pools.(c) <- rest;
        b.live <- true;
        b
    | [] -> { live = true; data = Array.make (16 lsl c) 0 }
  in
  Array.fill b.data 0 len fill;
  t.outstanding <- t.outstanding + 1;
  b

let arr b = if b.live then b.data else raise Stale

let release t b =
  if not b.live then raise Stale;
  b.live <- false;
  let c = class_of (Array.length b.data) in
  t.pools.(c) <- b :: t.pools.(c);
  t.outstanding <- t.outstanding - 1

let outstanding t = t.outstanding

let key = Domain.DLS.new_key create
let local () = Domain.DLS.get key
