(** Growable arrays.

    OCaml 5.1 does not ship [Dynarray]; this is the small subset the
    graph substrate needs.  Elements are stored in a backing array that
    doubles on overflow; a [dummy] value fills unused slots. *)

type 'a t

(** [create ~dummy ()] is an empty vector.  [dummy] is never observable
    through the API; it only pads the backing store. *)
val create : dummy:'a -> unit -> 'a t

(** [make ~dummy n x] is a vector of [n] copies of [x]. *)
val make : dummy:'a -> int -> 'a -> 'a t

(** Number of elements. *)
val length : 'a t -> int

(** [get v i] is the [i]-th element.  @raise Invalid_argument if out of
    bounds. *)
val get : 'a t -> int -> 'a

(** [set v i x] replaces the [i]-th element.  @raise Invalid_argument if
    out of bounds. *)
val set : 'a t -> int -> 'a -> unit

(** [push v x] appends [x] and returns its index. *)
val push : 'a t -> 'a -> int

(** [pop v] removes and returns the last element.
    @raise Invalid_argument on an empty vector. *)
val pop : 'a t -> 'a

(** Last element without removing it. *)
val peek : 'a t -> 'a

val is_empty : 'a t -> bool
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val of_list : dummy:'a -> 'a list -> 'a t
val to_array : 'a t -> 'a array

(** The backing array, without copying.  Length is at least {!length};
    only indices below {!length} hold live values.  Any growing push
    replaces the backing store, so hot kernels capture this per call
    and never hold it across mutations. *)
val unsafe_data : 'a t -> 'a array
val exists : ('a -> bool) -> 'a t -> bool
val copy : 'a t -> 'a t
