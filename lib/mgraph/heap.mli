(** Binary min-heaps.

    Generic priority queue used by the discrete-event simulator (event
    queues ordered by timestamp) and by scheduling heuristics.  The
    ordering is supplied at creation; ties are broken arbitrarily. *)

type 'a t

(** [create ~leq ()] is an empty heap ordered by [leq] (a total
    preorder: [leq a b] means [a] has priority at least [b]'s). *)
val create : leq:('a -> 'a -> bool) -> unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** [push h x] inserts [x]; O(log n). *)
val push : 'a t -> 'a -> unit

(** Smallest element.  @raise Invalid_argument on an empty heap. *)
val peek : 'a t -> 'a

(** Removes and returns the smallest element; O(log n).
    @raise Invalid_argument on an empty heap. *)
val pop : 'a t -> 'a

(** [pop_opt h] is [None] on an empty heap. *)
val pop_opt : 'a t -> 'a option

val of_list : leq:('a -> 'a -> bool) -> 'a list -> 'a t

(** Pops everything, smallest first. *)
val drain : 'a t -> 'a list
