(* Elements are stored boxed in [Some _] so the backing vector has a
   safe polymorphic dummy ([None]) regardless of the element type. *)
type 'a t = { data : 'a option Vec.t; leq : 'a -> 'a -> bool }

let create ~leq () = { data = Vec.create ~dummy:None (); leq }

let length h = Vec.length h.data
let is_empty h = length h = 0

let get h i =
  match Vec.get h.data i with
  | Some x -> x
  | None -> assert false (* no [None] below [length] by construction *)

let swap h i j =
  let x = Vec.get h.data i in
  Vec.set h.data i (Vec.get h.data j);
  Vec.set h.data j x

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if not (h.leq (get h parent) (get h i)) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let n = length h in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && not (h.leq (get h !smallest) (get h l)) then smallest := l;
  if r < n && not (h.leq (get h !smallest) (get h r)) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h x =
  let i = Vec.push h.data (Some x) in
  sift_up h i

let peek h =
  if is_empty h then invalid_arg "Heap.peek: empty";
  get h 0

let pop h =
  if is_empty h then invalid_arg "Heap.pop: empty";
  let top = get h 0 in
  let last = Vec.pop h.data in
  if not (is_empty h) then begin
    Vec.set h.data 0 last;
    sift_down h 0
  end;
  top

let pop_opt h = if is_empty h then None else Some (pop h)

let of_list ~leq xs =
  let h = create ~leq () in
  List.iter (push h) xs;
  h

let drain h =
  let rec loop acc =
    match pop_opt h with None -> List.rev acc | Some x -> loop (x :: acc)
  in
  loop []
