(** Euler circuits on multigraphs (Hierholzer's algorithm).

    The even-capacity scheduler of the paper (Section IV, step 2) needs
    an Euler circuit of the padded transfer graph, whose orientation
    then defines the bipartite graph [H].  Circuits are computed per
    connected component; a graph admits them iff every node has even
    degree (self-loops count 2). *)

type arc = {
  edge : int;  (** edge id in the underlying graph *)
  src : int;
  dst : int;
}

(** True iff every node of [g] has even degree. *)
val all_degrees_even : Multigraph.t -> bool

(** [circuit_from g v] is an Euler circuit of [v]'s component, starting
    and ending at [v], as the list of traversed arcs in order.  Every
    edge of the component appears exactly once.
    @raise Invalid_argument if some node of [g] has odd degree. *)
val circuit_from : Multigraph.t -> int -> arc list

(** One circuit per connected component that contains at least one
    edge.
    @raise Invalid_argument if some node of [g] has odd degree. *)
val circuits : Multigraph.t -> arc list list

(** [orient g] assigns each edge the direction in which some Euler
    circuit traverses it, as struct-of-arrays: [(srcs, dsts)] with
    edge [e] oriented [srcs.(e) -> dsts.(e)].  Each node then has
    exactly [degree/2] outgoing and [degree/2] incoming arcs — the
    property step 3 of the paper's algorithm needs.  This is the hot
    entry point: scratch state lives in the calling domain's
    {!Arena}, and nothing is allocated per edge beyond the two result
    arrays.
    @raise Invalid_argument if some node has odd degree. *)
val orient : Multigraph.t -> int array * int array

(** {!orient} as an array of [(src, dst)] pairs. *)
val orientation : Multigraph.t -> (int * int) array
