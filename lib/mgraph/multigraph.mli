(** Mutable multigraphs with edge identity.

    Nodes are dense integers [0 .. n-1]; edges are dense integers
    [0 .. m-1] and keep their identity (two parallel edges are distinct
    values).  Self-loops are allowed and contribute 2 to the degree of
    their endpoint, following the usual multigraph convention — this is
    what the Euler-circuit construction of the paper (Section IV)
    relies on.

    The structure is append-only: nodes and edges can be added but not
    removed.  Algorithms that need deletion work on a [mask] of live
    edges instead (see {!sub}). *)

type t

type edge = {
  id : int;
  u : int;  (** source endpoint (tail for directed interpretations) *)
  v : int;  (** destination endpoint *)
}

(** [create ~n ()] is a graph with [n] nodes and no edges. *)
val create : ?n:int -> unit -> t

(** Adds a fresh node and returns its id. *)
val add_node : t -> int

(** [add_edge g u v] adds an edge and returns its id.
    @raise Invalid_argument if [u] or [v] is not a node. *)
val add_edge : t -> int -> int -> int

val n_nodes : t -> int
val n_edges : t -> int

(** [edge g e] is the descriptor of edge [e]. *)
val edge : t -> int -> edge

val endpoints : t -> int -> int * int
val is_self_loop : t -> int -> bool

(** [other_endpoint g e w] is the endpoint of [e] different from [w]
    (or [w] itself for a self-loop).
    @raise Invalid_argument if [w] is not an endpoint of [e]. *)
val other_endpoint : t -> int -> int -> int

(** Degree of a node; a self-loop counts twice. *)
val degree : t -> int -> int

val max_degree : t -> int

(** Edge ids incident to a node, most recently added first.  A
    self-loop appears once in this list (but counts 2 in {!degree}). *)
val incident : t -> int -> int list

val iter_incident : t -> int -> (int -> unit) -> unit

(** [multiplicity g u v] is the number of parallel edges between [u]
    and [v] (direction-insensitive). *)
val multiplicity : t -> int -> int -> int

(** Maximum multiplicity over all node pairs, 0 for an edgeless graph.
    Self-loops are counted as multiplicity of the pair [(v, v)]. *)
val max_multiplicity : t -> int

val iter_edges : t -> (edge -> unit) -> unit
val fold_edges : (edge -> 'a -> 'a) -> t -> 'a -> 'a
val edges : t -> edge list

(** [sub g keep] is a fresh graph with the same node set and only the
    edges [e] with [keep e.id = true].  Edge ids are {e renumbered};
    the returned array maps new edge ids to old ones. *)
val sub : t -> (int -> bool) -> t * int array

(** Structural copy (same ids). *)
val copy : t -> t

(** True if no two edges share both endpoints and there is no
    self-loop — i.e. the graph is simple. *)
val is_simple : t -> bool

(** Total degree equals twice the number of edges (handshake lemma);
    exposed for tests. *)
val handshake_ok : t -> bool

val pp : Format.formatter -> t -> unit
