(** Mutable multigraphs with edge identity.

    Nodes are dense integers [0 .. n-1]; edges are dense integers
    [0 .. m-1] and keep their identity (two parallel edges are distinct
    values).  Self-loops are allowed and contribute 2 to the degree of
    their endpoint, following the usual multigraph convention — this is
    what the Euler-circuit construction of the paper (Section IV)
    relies on.

    The structure is append-only: nodes and edges can be added but not
    removed.  Algorithms that need deletion work on a [mask] of live
    edges instead (see {!sub}). *)

type t

type edge = {
  id : int;
  u : int;  (** source endpoint (tail for directed interpretations) *)
  v : int;  (** destination endpoint *)
}

(** Flat compressed-sparse-row view of the adjacency structure.

    Row [v] occupies slots [offsets.(v) .. offsets.(v+1) - 1] of the
    flat arrays; slot [k] holds the id of the [k]-th incident edge in
    {e canonical incidence order} (insertion order, oldest first —
    exactly the order of {!incident}) together with the neighbor it
    leads to ([v] itself for a self-loop, which occupies one slot).

    The arrays are never mutated after construction: hot kernels may
    capture them and index without re-checking the graph. *)
module Csr : sig
  type t = {
    offsets : int array;  (** length [n+1]; [offsets.(n)] = total slots *)
    neighbors : int array;  (** other endpoint per slot *)
    edge_ids : int array;  (** edge id per slot *)
  }

  val row_start : t -> int -> int
  val row_stop : t -> int -> int

  (** Slots in row [v]: the degree of [v] counting self-loops once. *)
  val slots : t -> int -> int
end

(** [create ~n ()] is a graph with [n] nodes and no edges. *)
val create : ?n:int -> unit -> t

(** Adds a fresh node and returns its id. *)
val add_node : t -> int

(** [add_edge g u v] adds an edge and returns its id.
    @raise Invalid_argument if [u] or [v] is not a node. *)
val add_edge : t -> int -> int -> int

val n_nodes : t -> int
val n_edges : t -> int

(** [edge g e] is the descriptor of edge [e]. *)
val edge : t -> int -> edge

val endpoints : t -> int -> int * int
val is_self_loop : t -> int -> bool

(** [other_endpoint g e w] is the endpoint of [e] different from [w]
    (or [w] itself for a self-loop).
    @raise Invalid_argument if [w] is not an endpoint of [e]. *)
val other_endpoint : t -> int -> int -> int

(** Degree of a node; a self-loop counts twice. *)
val degree : t -> int -> int

val max_degree : t -> int

(** Edge ids incident to a node, in canonical incidence order:
    insertion order, oldest edge first.  A self-loop appears once in
    this list (but counts 2 in {!degree}).  {!iter_incident} and the
    CSR rows of {!freeze} visit edges in the same order; determinism
    tests pin it. *)
val incident : t -> int -> int list

val iter_incident : t -> int -> (int -> unit) -> unit

(** [freeze g] is the CSR view of [g]'s current adjacency, built in
    O(n + m) and cached on the graph; any later {!add_node} or
    {!add_edge} drops the cache, so repeated freezes of an unchanged
    graph are free.  The returned arrays must not be written. *)
val freeze : t -> Csr.t

(** [multiplicity g u v] is the number of parallel edges between [u]
    and [v] (direction-insensitive). *)
val multiplicity : t -> int -> int -> int

(** Maximum multiplicity over all node pairs, 0 for an edgeless graph.
    Self-loops are counted as multiplicity of the pair [(v, v)]. *)
val max_multiplicity : t -> int

val iter_edges : t -> (edge -> unit) -> unit
val fold_edges : (edge -> 'a -> 'a) -> t -> 'a -> 'a
val edges : t -> edge list

(** [sub g keep] is a fresh graph with the same node set and only the
    edges [e] with [keep e.id = true].  Edge ids are {e renumbered};
    the returned array maps new edge ids to old ones. *)
val sub : t -> (int -> bool) -> t * int array

(** Structural copy (same ids). *)
val copy : t -> t

(** True if no two edges share both endpoints and there is no
    self-loop — i.e. the graph is simple. *)
val is_simple : t -> bool

(** Total degree equals twice the number of edges (handshake lemma);
    exposed for tests. *)
val handshake_ok : t -> bool

val pp : Format.formatter -> t -> unit

(** Pre-flat-core reference implementations (the original list/Hashtbl
    code), kept as oracles for the differential test suite.  Same
    contracts as the top-level functions of the same name; library
    code must not call these. *)
module Slow : sig
  val incident : t -> int -> int list
  val multiplicity : t -> int -> int -> int
  val max_multiplicity : t -> int
  val is_simple : t -> bool
  val sub : t -> (int -> bool) -> t * int array
end
