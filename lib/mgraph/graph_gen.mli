(** Deterministic random and structured multigraph generators.

    Every randomized generator takes an explicit [Random.State.t] so
    that tests and benchmarks are reproducible. *)

(** [gnm rng ~n ~m] draws [m] edges uniformly over node pairs.
    Self-loops are excluded unless [self_loops] is set. *)
val gnm : ?self_loops:bool -> Random.State.t -> n:int -> m:int -> Multigraph.t

(** Configuration-model multigraph: each node gets [deg] stubs and
    stubs are paired uniformly at random.  [n * deg] must be even.
    Self-loops may occur (they keep degrees exact). *)
val regular : Random.State.t -> n:int -> deg:int -> Multigraph.t

(** Random bipartite multigraph with sides [0..n1-1] and
    [n1..n1+n2-1] and [m] edges. *)
val bipartite : Random.State.t -> n1:int -> n2:int -> m:int -> Multigraph.t

(** Preferential-attachment-flavoured multigraph: endpoints are chosen
    proportionally to [current degree + 1], giving the skewed degree
    distributions of storage hot spots. *)
val power_law : Random.State.t -> n:int -> m:int -> Multigraph.t

(** [clustered rng ~k ~size ~intra ~inter] builds [k] clusters of
    [size] nodes with [intra] random edges inside each cluster and
    [inter] random edges between clusters — the dense-subset workloads
    that make the paper's [Γ] bound bite (Lemma 3.1). *)
val clustered :
  Random.State.t -> k:int -> size:int -> intra:int -> inter:int -> Multigraph.t

(** Simple cycle on [n >= 3] nodes. *)
val cycle : int -> Multigraph.t

(** Simple path on [n >= 1] nodes. *)
val path : int -> Multigraph.t

(** Complete simple graph on [n] nodes. *)
val complete : int -> Multigraph.t

(** [triangle_stack m] is the instance of the paper's Figure 2: three
    nodes with [m] parallel edges between every pair. *)
val triangle_stack : int -> Multigraph.t

(** [star ~leaves] with one central hub — the degenerate bottleneck
    case for heterogeneous constraints. *)
val star : leaves:int -> Multigraph.t

(** A reconstruction of the worked example of the paper's Figure 1:
    a small transfer multigraph with parallel edges.  (The published
    text does not reproduce the figure's exact edge list; this is a
    representative 5-node instance with multiplicities, used by the
    quickstart example and E1.) *)
val example_fig1 : unit -> Multigraph.t
