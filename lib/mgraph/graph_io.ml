let to_edge_list g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%d %d\n" (Multigraph.n_nodes g) (Multigraph.n_edges g));
  Multigraph.iter_edges g (fun { Multigraph.u; v; _ } ->
      Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

let tokens_of_string s =
  String.split_on_char '\n' s
  |> List.concat_map (String.split_on_char ' ')
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let of_edge_list s =
  let fail msg = failwith ("Graph_io.of_edge_list: " ^ msg) in
  let int_of tok =
    match int_of_string_opt tok with
    | Some i -> i
    | None -> fail ("not an integer: " ^ tok)
  in
  match tokens_of_string s with
  | n :: m :: rest ->
      let n = int_of n and m = int_of m in
      if n < 0 || m < 0 then fail "negative header";
      let g = Multigraph.create ~n () in
      let rec loop i = function
        | [] -> if i <> m then fail "fewer edges than header declares"
        | u :: v :: rest ->
            if i >= m then fail "more edges than header declares";
            let u = int_of u and v = int_of v in
            if u < 0 || u >= n || v < 0 || v >= n then fail "endpoint out of range";
            ignore (Multigraph.add_edge g u v);
            loop (i + 1) rest
        | [ _ ] -> fail "dangling endpoint"
      in
      loop 0 rest;
      g
  | _ -> fail "missing header"

let to_dot ?(name = "g") g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  for v = 0 to Multigraph.n_nodes g - 1 do
    Buffer.add_string buf (Printf.sprintf "  n%d;\n" v)
  done;
  Multigraph.iter_edges g (fun { Multigraph.id; u; v } ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -- n%d [label=\"e%d\"];\n" u v id));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
