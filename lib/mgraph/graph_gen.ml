let gnm ?(self_loops = false) rng ~n ~m =
  if n <= 0 then invalid_arg "Graph_gen.gnm: need n > 0";
  if (not self_loops) && n = 1 && m > 0 then
    invalid_arg "Graph_gen.gnm: cannot avoid self-loops with n = 1";
  let g = Multigraph.create ~n () in
  for _ = 1 to m do
    let u = Random.State.int rng n in
    let rec pick () =
      let v = Random.State.int rng n in
      if v = u && not self_loops then pick () else v
    in
    ignore (Multigraph.add_edge g u (pick ()))
  done;
  g

let regular rng ~n ~deg =
  if n <= 0 || deg < 0 then invalid_arg "Graph_gen.regular";
  if n * deg mod 2 <> 0 then
    invalid_arg "Graph_gen.regular: n * deg must be even";
  let stubs = Array.make (n * deg) 0 in
  for v = 0 to n - 1 do
    for j = 0 to deg - 1 do
      stubs.((v * deg) + j) <- v
    done
  done;
  (* Fisher-Yates, then pair consecutive stubs *)
  let len = Array.length stubs in
  for i = len - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = stubs.(i) in
    stubs.(i) <- stubs.(j);
    stubs.(j) <- t
  done;
  let g = Multigraph.create ~n () in
  let i = ref 0 in
  while !i + 1 < len do
    ignore (Multigraph.add_edge g stubs.(!i) stubs.(!i + 1));
    i := !i + 2
  done;
  g

let bipartite rng ~n1 ~n2 ~m =
  if n1 <= 0 || n2 <= 0 then invalid_arg "Graph_gen.bipartite";
  let g = Multigraph.create ~n:(n1 + n2) () in
  for _ = 1 to m do
    let u = Random.State.int rng n1 in
    let v = n1 + Random.State.int rng n2 in
    ignore (Multigraph.add_edge g u v)
  done;
  g

let power_law rng ~n ~m =
  if n < 2 then invalid_arg "Graph_gen.power_law: need n >= 2";
  let g = Multigraph.create ~n () in
  (* endpoint pool: node v appears degree(v)+1 times *)
  let pool = Vec.create ~dummy:(-1) () in
  for v = 0 to n - 1 do
    ignore (Vec.push pool v)
  done;
  for _ = 1 to m do
    let u = Vec.get pool (Random.State.int rng (Vec.length pool)) in
    let rec pick tries =
      let v = Vec.get pool (Random.State.int rng (Vec.length pool)) in
      if v = u && tries < 50 then pick (tries + 1)
      else if v = u then (u + 1) mod n
      else v
    in
    let v = pick 0 in
    ignore (Multigraph.add_edge g u v);
    ignore (Vec.push pool u);
    ignore (Vec.push pool v)
  done;
  g

let clustered rng ~k ~size ~intra ~inter =
  if k <= 0 || size <= 1 then invalid_arg "Graph_gen.clustered";
  let n = k * size in
  let g = Multigraph.create ~n () in
  for c = 0 to k - 1 do
    let base = c * size in
    for _ = 1 to intra do
      let u = base + Random.State.int rng size in
      let rec pick () =
        let v = base + Random.State.int rng size in
        if v = u then pick () else v
      in
      ignore (Multigraph.add_edge g u (pick ()))
    done
  done;
  if k > 1 then
    for _ = 1 to inter do
      let cu = Random.State.int rng k in
      let rec pick_cluster () =
        let cv = Random.State.int rng k in
        if cv = cu then pick_cluster () else cv
      in
      let cv = pick_cluster () in
      let u = (cu * size) + Random.State.int rng size in
      let v = (cv * size) + Random.State.int rng size in
      ignore (Multigraph.add_edge g u v)
    done;
  g

let cycle n =
  if n < 3 then invalid_arg "Graph_gen.cycle: need n >= 3";
  let g = Multigraph.create ~n () in
  for v = 0 to n - 1 do
    ignore (Multigraph.add_edge g v ((v + 1) mod n))
  done;
  g

let path n =
  if n < 1 then invalid_arg "Graph_gen.path";
  let g = Multigraph.create ~n () in
  for v = 0 to n - 2 do
    ignore (Multigraph.add_edge g v (v + 1))
  done;
  g

let complete n =
  if n < 1 then invalid_arg "Graph_gen.complete";
  let g = Multigraph.create ~n () in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      ignore (Multigraph.add_edge g u v)
    done
  done;
  g

let triangle_stack m =
  if m < 1 then invalid_arg "Graph_gen.triangle_stack";
  let g = Multigraph.create ~n:3 () in
  List.iter
    (fun (u, v) ->
      for _ = 1 to m do
        ignore (Multigraph.add_edge g u v)
      done)
    [ (0, 1); (1, 2); (0, 2) ];
  g

let star ~leaves =
  if leaves < 1 then invalid_arg "Graph_gen.star";
  let g = Multigraph.create ~n:(leaves + 1) () in
  for v = 1 to leaves do
    ignore (Multigraph.add_edge g 0 v)
  done;
  g

let example_fig1 () =
  let g = Multigraph.create ~n:5 () in
  (* disks v0..v4; parallel edges model several items moving between the
     same pair of disks *)
  List.iter
    (fun (u, v) -> ignore (Multigraph.add_edge g u v))
    [ (0, 1); (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (3, 4); (4, 1); (0, 3) ];
  g
