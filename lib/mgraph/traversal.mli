(** Graph traversals and connectivity over {!Multigraph.t}.

    All functions treat edges as undirected and ignore edge direction. *)

(** [bfs g src] is an array [dist] with [dist.(v)] the unweighted hop
    distance from [src] to [v], or [-1] if unreachable. *)
val bfs : Multigraph.t -> int -> int array

(** [dfs_order g src] is the list of nodes reachable from [src] in
    depth-first preorder. *)
val dfs_order : Multigraph.t -> int -> int list

(** [components g] is [(comp, k)] where [comp.(v)] is the component
    index of node [v] (in [0 .. k-1]) and [k] is the number of
    connected components.  Isolated nodes form their own components. *)
val components : Multigraph.t -> int array * int

val n_components : Multigraph.t -> int
val is_connected : Multigraph.t -> bool

(** Nodes of each component, indexed by component id. *)
val component_members : Multigraph.t -> int list array
