let check xs = if xs = [] then invalid_arg "Stats: empty sample"

let mean xs =
  check xs;
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  check xs;
  match xs with
  | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let ss =
        List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
      in
      sqrt (ss /. float_of_int (List.length xs - 1))

let minimum xs =
  check xs;
  List.fold_left min infinity xs

let maximum xs =
  check xs;
  List.fold_left max neg_infinity xs

let percentile p xs =
  check xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile";
  let sorted = List.sort compare xs in
  let n = List.length sorted in
  (* nearest-rank: smallest index i with 100 * i / n >= p *)
  let rank =
    int_of_float (ceil (p /. 100.0 *. float_of_int n)) |> max 1 |> min n
  in
  List.nth sorted (rank - 1)

let median xs = percentile 50.0 xs

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p95 : float;
  max : float;
}

let summarize xs =
  check xs;
  {
    n = List.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = minimum xs;
    p50 = median xs;
    p95 = percentile 95.0 xs;
    max = maximum xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.2f±%.2f min=%.2f p50=%.2f p95=%.2f max=%.2f"
    s.n s.mean s.stddev s.min s.p50 s.p95 s.max
