(** Reusable scratch buffers for the hot kernels.

    An arena pools int arrays by power-of-two size class under a
    checkout/release discipline: in steady state a kernel that checks
    out and releases the same shapes every call allocates nothing.
    Released handles are poisoned — touching one raises {!Stale}.

    {b Ownership rule:} one arena per domain, never shared.  Use
    {!local} for the calling domain's arena; never store an arena in a
    structure another domain can reach.  (doc/ALGORITHMS.md, "Flat
    core & memory discipline".) *)

type t

(** Raised on any use of a handle after its {!release}, and on a
    double release. *)
exception Stale

(** A checked-out int buffer. *)
type buf

(** A fresh arena with empty pools. *)
val create : unit -> t

(** [ints t ~len ~fill] checks out a buffer of at least [len] slots
    with slots [0 .. len-1] set to [fill].  Slots beyond [len] hold
    unspecified values — kernels must size their indexing by [len],
    not by the physical array length. *)
val ints : t -> len:int -> fill:int -> buf

(** The raw array behind a live handle.  Hoist this out of the handle
    once per checkout and index the array directly.
    @raise Stale if the handle was released. *)
val arr : buf -> int array

(** Return the buffer to the pool and poison the handle.
    @raise Stale on double release. *)
val release : t -> buf -> unit

(** Live checkouts not yet released — a leak detector for tests. *)
val outstanding : t -> int

(** The calling domain's own arena (created on first use, via
    [Domain.DLS]).  Each domain sees a distinct arena, which is what
    makes checkout/release safe without locks. *)
val local : unit -> t
