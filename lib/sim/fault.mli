(** Fault injection: mid-migration capability changes.

    The paper motivates heterogeneous constraints partly by disks whose
    available migration bandwidth changes with client traffic
    (Section I).  This module simulates the operational story: a
    migration is underway, a disk degrades (its transfer constraint
    drops — e.g. it starts serving a traffic spike) or upgrades, and
    the remaining transfers must be replanned under the new
    constraints. *)

type change = {
  after_round : int;  (** the change lands once this many rounds ran *)
  disk : int;
  new_cap : int;      (** must stay [>= 1] *)
}

type report = {
  before : Simulator.report;  (** rounds executed under the old plan *)
  after : Simulator.report;   (** replanned remainder *)
  total_rounds : int;
  total_wall_time : float;
}

(** [run_with_change cluster ~target ~plan change] executes the plan
    until [change.after_round], applies the capability change, replans
    the remaining moves with [plan] under the new constraints, and
    finishes.  The cluster ends at [target] (asserted).
    @raise Invalid_argument on a bad disk id or capacity. *)
val run_with_change :
  Cluster.t ->
  target:Placement.t ->
  plan:(Migration.Instance.t -> Migration.Schedule.t) ->
  change ->
  report

(** Flaky transport: each transfer independently fails with probability
    [failure_rate] (the item stays on its source; the round still pays
    full duration for the wasted stream).  After a full schedule pass,
    the surviving moves are re-planned and retried — up to
    [max_attempt_passes] whole passes. *)
type flaky = {
  failure_rate : float;        (** in [0, 1) *)
  max_attempt_passes : int;    (** >= 1 *)
}

type flaky_report = {
  passes : int;                (** planning passes needed *)
  total_rounds : int;
  wall_time : float;
  failed_transfers : int;      (** transfers that had to be retried *)
}

exception Too_flaky of flaky_report
(** Raised when items remain after [max_attempt_passes] passes. *)

(** [run_with_transfer_failures rng cluster ~target ~plan flaky] —
    drives the cluster to [target] despite transfer failures.
    @raise Invalid_argument on a bad rate or pass budget. *)
val run_with_transfer_failures :
  Random.State.t ->
  Cluster.t ->
  target:Placement.t ->
  plan:(Migration.Instance.t -> Migration.Schedule.t) ->
  flaky ->
  flaky_report
