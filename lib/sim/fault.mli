(** Fault injection: mid-migration capability changes.

    The paper motivates heterogeneous constraints partly by disks whose
    available migration bandwidth changes with client traffic
    (Section I).  This module simulates the operational story: a
    migration is underway, a disk degrades (its transfer constraint
    drops — e.g. it starts serving a traffic spike) or upgrades, and
    the remaining transfers must be replanned under the new
    constraints. *)

type change = {
  after_round : int;  (** the change lands once this many rounds ran *)
  disk : int;
  new_cap : int;      (** must stay [>= 1] *)
}

type report = {
  before : Simulator.report;  (** rounds executed under the old plan *)
  after : Simulator.report;   (** replanned remainder *)
  total_rounds : int;
  total_wall_time : float;
}

(** [run_with_change cluster ~target ~plan change] executes the plan
    until [change.after_round], applies the capability change, replans
    the remaining moves with [plan] under the new constraints, and
    finishes.  The cluster ends at [target] (asserted).
    @raise Invalid_argument on a bad disk id or capacity. *)
val run_with_change :
  Cluster.t ->
  target:Placement.t ->
  plan:(Migration.Instance.t -> Migration.Schedule.t) ->
  change ->
  report

(** {1 Engine fault policies}

    Seeded fault injection for {!Migration.Engine.run}: the
    operational fault model (transient failures, crashes, slowdowns)
    packaged as a deterministic {!Migration.Engine.policy}. *)

(** [engine_policy ~seed ()] builds the stochastic policy the CLI and
    the fuzz harness inject: every attempted transfer independently
    fails with probability [fault_rate] (default [0.]), and the
    scheduled [(round, disk)] events crash or slow disks when the
    engine's round clock reaches them.  Decisions are drawn from a
    private RNG derived from [seed] only, so a [(seed, fault_rate,
    events)] tuple is a complete reproducer.  Each call returns a
    fresh policy with fresh RNG state — reuse a policy value across
    runs and the second run sees different draws.
    @raise Invalid_argument on a rate outside [0, 1) or a negative
    round. *)
val engine_policy :
  ?fault_rate:float ->
  ?crashes:(int * int) list ->
  ?slowdowns:(int * int) list ->
  seed:int ->
  unit ->
  Migration.Engine.policy

(** [random_calamities rng ~n_disks ~horizon ~crashes ~slowdowns]
    draws scheduled crash and slowdown events on distinct disks, at
    rounds uniform in [\[0, horizon)] — the helper behind the CLI's
    [--crash]/[--slow] counts.
    @raise Invalid_argument when more events than disks are asked. *)
val random_calamities :
  Random.State.t ->
  n_disks:int ->
  horizon:int ->
  crashes:int ->
  slowdowns:int ->
  (int * int) list * (int * int) list

(** Flaky transport: each transfer independently fails with probability
    [failure_rate] (the item stays on its source; the round still pays
    full duration for the wasted stream).  After a full schedule pass,
    the surviving moves are re-planned and retried — up to
    [max_attempt_passes] whole passes. *)
type flaky = {
  failure_rate : float;        (** in [0, 1) *)
  max_attempt_passes : int;    (** >= 1 *)
}

type flaky_report = {
  passes : int;                (** planning passes needed *)
  total_rounds : int;
  wall_time : float;
  failed_transfers : int;      (** transfers that had to be retried *)
}

exception Too_flaky of flaky_report
(** Raised when items remain after [max_attempt_passes] passes. *)

(** [run_with_transfer_failures rng cluster ~target ~plan flaky] —
    drives the cluster to [target] despite transfer failures.
    @raise Invalid_argument on a bad rate or pass budget. *)
val run_with_transfer_failures :
  Random.State.t ->
  Cluster.t ->
  target:Placement.t ->
  plan:(Migration.Instance.t -> Migration.Schedule.t) ->
  flaky ->
  flaky_report
