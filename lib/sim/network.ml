type t = Full_bisection | Oversubscribed of float

let full_bisection = Full_bisection

let oversubscribed ~core_streams =
  if core_streams <= 0.0 then
    invalid_arg "Network.oversubscribed: capacity must be positive";
  Oversubscribed core_streams

let throttle t ~active =
  if active <= 0 then 1.0
  else
    match t with
    | Full_bisection -> 1.0
    | Oversubscribed core -> Float.min 1.0 (core /. float_of_int active)

let pp ppf = function
  | Full_bisection -> Format.pp_print_string ppf "full bisection"
  | Oversubscribed core -> Format.fprintf ppf "core limit %.1f streams" core
