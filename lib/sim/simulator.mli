(** Schedule execution.

    Runs a migration schedule against a cluster round by round:
    checks feasibility as it goes (items depart from the disk that
    actually holds them, no disk exceeds its transfer constraint),
    moves the items, and accounts wall-clock time under the
    bandwidth-splitting model.  This is the end-to-end check that a
    scheduler's output actually migrates the data. *)

type report = {
  rounds : int;
  wall_time : float;          (** sum of round durations *)
  per_round : float array;
  items_moved : int;
  max_streams : int;          (** busiest disk-round stream count *)
  mean_utilization : float;   (** used streams / Σc_v, averaged *)
}

exception Infeasible of string

(** [execute cluster job sched] mutates [cluster]'s placement.
    @raise Infeasible when a round violates a transfer constraint or
    moves an item from a disk that does not hold it. *)
val execute : Cluster.t -> Cluster.job -> Migration.Schedule.t -> report

(** [run cluster ~target ~plan] — the full loop: diff placements, plan
    with [plan], execute, and verify the target was reached (asserted
    internally).  Returns the report. *)
val run :
  Cluster.t ->
  target:Placement.t ->
  plan:(Migration.Instance.t -> Migration.Schedule.t) ->
  report

val pp_report : Format.formatter -> report -> unit
