(** Storage clusters: a set of disks plus the current placement.

    The bridge between the simulator world and the scheduling world:
    {!plan_reconfiguration} turns "move the cluster to this target
    placement" into a heterogeneous migration {!Migration.Instance.t},
    remembering which item each transfer-graph edge stands for. *)

type t

(** A migration job: the scheduling instance plus the edge → item map
    ([items.(edge_id)] is the item that edge moves). *)
type job = {
  instance : Migration.Instance.t;
  items : int array;
  sources : int array;  (** [sources.(edge_id)]: disk the item leaves *)
  targets : int array;  (** [targets.(edge_id)]: disk the item joins *)
}

(** @raise Invalid_argument if a placement mentions an unknown disk or
    disk ids are not [0 .. n-1] in order. *)
val create : disks:Disk.t array -> placement:Placement.t -> t

val disks : t -> Disk.t array
val disk : t -> int -> Disk.t
val n_disks : t -> int
val placement : t -> Placement.t

(** Per-disk item counts. *)
val load : t -> int array

(** [plan_reconfiguration t ~target] builds the transfer multigraph
    from the placement diff; transfer constraints come from the disks'
    [cap] fields. *)
val plan_reconfiguration : t -> target:Placement.t -> job

(** [apply_transfer t job edge] moves one item to its target disk. *)
val apply_transfer : t -> job -> int -> unit

(** True when the cluster's placement equals [target]. *)
val reached : t -> target:Placement.t -> bool
