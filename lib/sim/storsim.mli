(** Umbrella module for the storage-cluster simulator. *)

module Disk = Disk
module Network = Network
module Placement = Placement
module Cluster = Cluster
module Bandwidth = Bandwidth
module Simulator = Simulator
module Fault = Fault
module Async_exec = Async_exec
module Online = Online
module Size_balance = Size_balance
module Trace = Trace
