(** Network fabric models.

    The paper assumes "a very fast network connection dedicated to
    support a storage system" where "any two disks can send data to
    each other directly" (Section II) — i.e. a full-bisection fabric
    whose core never throttles the disks.  This module makes that
    assumption a first-class, falsifiable parameter:

    - {!full_bisection} — the paper's model: the core sustains any
      number of concurrent streams at full per-stream rate;
    - {!oversubscribed} — the core saturates at [core_streams]
      concurrent full-rate streams; beyond that, every active stream's
      rate scales by [core_streams / active].

    Benchmark E20 sweeps the core capacity to show where the paper's
    speedups survive oversubscription and where migration becomes
    core-bound (at which point extra per-disk parallelism buys
    nothing). *)

type t

(** The paper's assumption: no core limit. *)
val full_bisection : t

(** [oversubscribed ~core_streams] — fabric saturating at
    [core_streams] concurrent full-rate streams.
    @raise Invalid_argument if [core_streams <= 0]. *)
val oversubscribed : core_streams:float -> t

(** Rate multiplier when [active] streams are in flight: [1.0] under
    full bisection, [min 1 (core/active)] otherwise. *)
val throttle : t -> active:int -> float

val pp : Format.formatter -> t -> unit
