type t = {
  caps : int array;
  counts : int array array;     (* round -> disk -> streams *)
  durations : float array;
}

let capture ~disks ?sizes (job : Cluster.job) sched =
  let n = Array.length disks in
  let rounds = Migration.Schedule.rounds sched in
  let counts =
    Array.map
      (fun edges ->
        let c = Array.make n 0 in
        List.iter
          (fun e ->
            c.(job.Cluster.sources.(e)) <- c.(job.Cluster.sources.(e)) + 1;
            c.(job.Cluster.targets.(e)) <- c.(job.Cluster.targets.(e)) + 1)
          edges;
        c)
      rounds
  in
  {
    caps = Array.map (fun (d : Disk.t) -> d.Disk.cap) disks;
    counts;
    durations = Bandwidth.round_durations ~disks ?sizes job sched;
  }

let capture_execution ~disks ?sizes (job : Cluster.job)
    (x : Migration.Certify.execution) =
  (* attempted transfers per executed round: failed transfers held
     their streams for the full round, so that is what the chart (and
     the duration model) must show *)
  let pseudo =
    Migration.Schedule.of_rounds
      (Array.of_list
         (List.map (fun r -> r.Migration.Certify.attempted) x.Migration.Certify.log))
  in
  capture ~disks ?sizes job pseudo

let n_rounds t = Array.length t.counts
let n_disks t = Array.length t.caps

let streams t ~round ~disk =
  if round < 0 || round >= n_rounds t then invalid_arg "Trace.streams";
  if disk < 0 || disk >= n_disks t then invalid_arg "Trace.streams";
  t.counts.(round).(disk)

let utilization_by_disk t =
  let n = n_disks t and k = n_rounds t in
  Array.init n (fun d ->
      if k = 0 || t.caps.(d) = 0 then 0.0
      else begin
        let used = ref 0 in
        for r = 0 to k - 1 do
          used := !used + t.counts.(r).(d)
        done;
        float_of_int !used /. float_of_int (t.caps.(d) * k)
      end)

let glyph ~used ~cap =
  if used = 0 then ' '
  else if used >= cap then '#'
  else if 2 * used > cap then '+'
  else '.'

let render ?(max_columns = 72) t =
  let k = n_rounds t and n = n_disks t in
  let buf = Buffer.create 1024 in
  if k = 0 then Buffer.add_string buf "(empty schedule)\n"
  else begin
    (* re-bin long schedules: each column covers [per] rounds and shows
       the mean load *)
    let per = (k + max_columns - 1) / max_columns in
    let cols = (k + per - 1) / per in
    Buffer.add_string buf
      (Printf.sprintf "rounds: %d   (one column = %d round%s)\n" k per
         (if per > 1 then "s" else ""));
    for d = 0 to n - 1 do
      Buffer.add_string buf (Printf.sprintf "disk %3d c=%d |" d t.caps.(d));
      for col = 0 to cols - 1 do
        let lo = col * per and hi = min k ((col + 1) * per) in
        let used = ref 0 in
        for r = lo to hi - 1 do
          used := !used + t.counts.(r).(d)
        done;
        let avg =
          int_of_float
            (Float.round (float_of_int !used /. float_of_int (hi - lo)))
        in
        Buffer.add_char buf (glyph ~used:avg ~cap:t.caps.(d))
      done;
      Buffer.add_string buf "|\n"
    done;
    let total = Array.fold_left ( +. ) 0.0 t.durations in
    Buffer.add_string buf (Printf.sprintf "wall time: %.1f\n" total)
  end;
  Buffer.contents buf
