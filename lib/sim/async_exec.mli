(** Work-conserving (round-free) execution of migrations.

    The paper's model — and {!Simulator} — executes schedules in
    lock-step rounds: a round ends only when its slowest transfer
    finishes.  Real data paths are work-conserving: a transfer starts
    the moment both endpoints have a free stream slot.  This module is
    a fluid-flow discrete-event engine for that regime, used to
    quantify what the round abstraction costs (benchmark E15):

    - every disk [v] runs at most [c_v] concurrent streams and divides
      its bandwidth evenly among them;
    - a transfer's instantaneous rate is the minimum of its endpoints'
      per-stream rates; rates are recomputed whenever any transfer
      starts or finishes;
    - admission is greedy in a caller-chosen priority order
      (work-conserving: a blocked transfer never blocks a later one
      that could run).

    Executing a planner's schedule with {!By_schedule} keeps the
    planner's intent (earlier rounds first) but drops the barriers;
    comparing it against {!Simulator.execute} isolates the barrier
    cost, while {!Fifo} shows what no planning at all achieves. *)

type policy =
  | Fifo  (** admit in edge-id order *)
  | Ordered of int array
      (** explicit priority per edge id; smaller runs earlier *)
  | By_schedule of Migration.Schedule.t
      (** priority = round index in the given schedule *)

type event = { item : int; start : float; finish : float }

type report = {
  makespan : float;
  events : event array;      (** indexed by edge id *)
  mean_active : float;       (** time-averaged concurrent transfers *)
  max_active : int;
}

(** [run ~disks ?sizes ?network job policy] simulates until every item
    is transferred.  [sizes] maps edge ids to item sizes (default 1.0);
    [network] defaults to the paper's full-bisection fabric.
    @raise Invalid_argument if a schedule policy does not cover the
    job's edges, or a size is non-positive. *)
val run :
  disks:Disk.t array -> ?sizes:float array -> ?network:Network.t ->
  Cluster.job -> policy -> report
