module Multigraph = Mgraph.Multigraph

type t = { disks : Disk.t array; placement : Placement.t }

type job = {
  instance : Migration.Instance.t;
  items : int array;
  sources : int array;
  targets : int array;
}

let create ~disks ~placement =
  Array.iteri
    (fun i (d : Disk.t) ->
      if d.Disk.id <> i then
        invalid_arg "Cluster.create: disk ids must be 0..n-1 in order")
    disks;
  let n = Array.length disks in
  Array.iter
    (fun d ->
      if d < 0 || d >= n then
        invalid_arg "Cluster.create: placement references unknown disk")
    (Placement.to_array placement);
  { disks; placement = Placement.copy placement }

let disks t = t.disks

let disk t i =
  if i < 0 || i >= Array.length t.disks then invalid_arg "Cluster.disk";
  t.disks.(i)

let n_disks t = Array.length t.disks
let placement t = t.placement
let load t = Placement.load t.placement ~n_disks:(n_disks t)

let plan_reconfiguration t ~target =
  let moves = Placement.diff t.placement target in
  let g = Multigraph.create ~n:(n_disks t) () in
  let items = Array.make (List.length moves) (-1) in
  let sources = Array.make (List.length moves) (-1) in
  let targets = Array.make (List.length moves) (-1) in
  List.iter
    (fun (item, src, dst) ->
      let e = Multigraph.add_edge g src dst in
      items.(e) <- item;
      sources.(e) <- src;
      targets.(e) <- dst)
    moves;
  let caps = Array.map (fun (d : Disk.t) -> d.Disk.cap) t.disks in
  { instance = Migration.Instance.create g ~caps; items; sources; targets }

let apply_transfer t job edge =
  if edge < 0 || edge >= Array.length job.items then
    invalid_arg "Cluster.apply_transfer";
  Placement.move t.placement ~item:job.items.(edge) ~target:job.targets.(edge)

let reached t ~target = Placement.equal t.placement target
