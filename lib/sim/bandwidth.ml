let round_duration_sized ~disks ?(network = Network.full_bisection)
    ~transfers () =
  match transfers with
  | [] -> 0.0
  | _ ->
      let throttle =
        Network.throttle network ~active:(List.length transfers)
      in
      let n = Array.length disks in
      let streams = Array.make n 0 in
      List.iter
        (fun (u, v, size) ->
          if u < 0 || u >= n || v < 0 || v >= n then
            invalid_arg "Bandwidth.round_duration: disk out of range";
          if size <= 0.0 then
            invalid_arg "Bandwidth.round_duration: sizes must be positive";
          streams.(u) <- streams.(u) + 1;
          streams.(v) <- streams.(v) + 1)
        transfers;
      List.fold_left
        (fun acc (u, v, size) ->
          let rate =
            throttle
            *. min
                 (Disk.stream_rate disks.(u) ~streams:streams.(u))
                 (Disk.stream_rate disks.(v) ~streams:streams.(v))
          in
          max acc (size /. rate))
        0.0 transfers

let round_duration ~disks ?network ~transfers () =
  round_duration_sized ~disks ?network
    ~transfers:(List.map (fun (u, v) -> (u, v, 1.0)) transfers)
    ()

let size_of sizes e =
  match sizes with
  | None -> 1.0
  | Some a ->
      if e < 0 || e >= Array.length a then
        invalid_arg "Bandwidth: size array does not cover every edge";
      a.(e)

let transfers_of_round ?sizes (job : Cluster.job) edges =
  List.map
    (fun e ->
      (job.Cluster.sources.(e), job.Cluster.targets.(e), size_of sizes e))
    edges

let round_durations ~disks ?sizes ?network job sched =
  Array.map
    (fun edges ->
      round_duration_sized ~disks ?network
        ~transfers:(transfers_of_round ?sizes job edges)
        ())
    (Migration.Schedule.rounds sched)

let schedule_duration ~disks ?sizes ?network job sched =
  Array.fold_left ( +. ) 0.0 (round_durations ~disks ?sizes ?network job sched)
