(** Storage devices.

    A disk has a transfer constraint [cap] (the paper's [c_v]: how many
    simultaneous migration streams it sustains) and a [bandwidth] in
    items per time unit when running a single stream.  Running [k]
    streams splits the bandwidth [k] ways — the cost model behind the
    paper's Figure 2 example, where three disks with [c_v = 2] finish a
    [3M]-item triangle in [2M] time units instead of [3M]. *)

type t = {
  id : int;
  bandwidth : float;  (** items per time unit at one stream *)
  cap : int;          (** transfer constraint [c_v >= 1] *)
}

(** @raise Invalid_argument on non-positive bandwidth or capacity. *)
val make : id:int -> ?bandwidth:float -> cap:int -> unit -> t

(** Bandwidth available per stream when [streams] run at once. *)
val stream_rate : t -> streams:int -> float

val pp : Format.formatter -> t -> unit
