(** Online migration: reconfiguration requests arriving mid-flight.

    The paper's Section I motivates migration with layouts that "need
    to be changed over time according to changes of user demand
    patterns" — in production those changes do not wait for the
    previous migration to finish.  This driver executes a migration
    round by round and accepts new retargeting requests between
    rounds; each arrival updates the desired placement and triggers a
    replan of everything still outstanding (the schedules themselves
    come from any planner, so the paper's algorithms are reused
    unchanged).

    Reported per request: how many rounds after its arrival the
    cluster fully reflected it (superseded items count as satisfied —
    a newer request took them over). *)

type request = {
  at_round : int;             (** arrives before this round executes *)
  moves : (int * int) list;   (** (item, new target disk) *)
}

type report = {
  rounds : int;               (** total rounds executed *)
  replans : int;
  items_moved : int;          (** transfers performed (incl. superseded work) *)
  latencies : int array;      (** per request: completion round - arrival *)
}

(** [run cluster ~requests ~plan] mutates [cluster] to the final
    desired placement.  Requests must be sorted by [at_round]; equal
    rounds are legal and absorb together into a single replan.  A
    request arriving beyond the current work horizon extends the run
    (idle time fast-forwards to its arrival).  A request whose moves
    are already in effect — or superseded — at absorption settles at
    its arrival round with latency [0].
    @raise Invalid_argument on unsorted requests or bad item/disk ids. *)
val run :
  Cluster.t ->
  requests:request list ->
  plan:(Migration.Instance.t -> Migration.Schedule.t) ->
  report
