type stats = {
  duration_before : float;
  duration_after : float;
  swaps : int;
}

let optimize ~disks ~sizes (job : Cluster.job) sched =
  let rounds = Array.map Array.of_list (Migration.Schedule.rounds sched) in
  let to_sched () =
    Migration.Schedule.of_rounds (Array.map Array.to_list rounds)
  in
  let duration_of r =
    Bandwidth.round_duration_sized ~disks
      ~transfers:
        (Array.to_list rounds.(r)
        |> List.map (fun e ->
               (job.Cluster.sources.(e), job.Cluster.targets.(e), sizes.(e))))
      ()
  in
  let durations = Array.init (Array.length rounds) duration_of in
  let duration_before = Array.fold_left ( +. ) 0.0 durations in
  (* index every edge's (round, slot) and group by disk pair *)
  let groups = Hashtbl.create 64 in
  Array.iteri
    (fun r edges ->
      Array.iteri
        (fun slot e ->
          let u = job.Cluster.sources.(e) and v = job.Cluster.targets.(e) in
          let key = if u <= v then (u, v) else (v, u) in
          Hashtbl.replace groups key
            ((r, slot) :: (try Hashtbl.find groups key with Not_found -> [])))
        edges)
    rounds;
  let swaps = ref 0 in
  let improved = ref true in
  let passes = ref 0 in
  while !improved && !passes < 8 do
    improved := false;
    incr passes;
    Hashtbl.iter
      (fun _ slots ->
        match slots with
        | [] | [ _ ] -> ()
        | slots ->
            let arr = Array.of_list slots in
            let k = Array.length arr in
            for i = 0 to k - 1 do
              for j = i + 1 to k - 1 do
                let ri, si = arr.(i) and rj, sj = arr.(j) in
                if ri <> rj then begin
                  let before = durations.(ri) +. durations.(rj) in
                  (* swap the two items *)
                  let e = rounds.(ri).(si) in
                  rounds.(ri).(si) <- rounds.(rj).(sj);
                  rounds.(rj).(sj) <- e;
                  let di = duration_of ri and dj = duration_of rj in
                  if di +. dj < before -. 1e-12 then begin
                    durations.(ri) <- di;
                    durations.(rj) <- dj;
                    incr swaps;
                    improved := true
                  end
                  else begin
                    (* revert *)
                    let e = rounds.(ri).(si) in
                    rounds.(ri).(si) <- rounds.(rj).(sj);
                    rounds.(rj).(sj) <- e
                  end
                end
              done
            done)
      groups
  done;
  let duration_after = Array.fold_left ( +. ) 0.0 durations in
  (to_sched (), { duration_before; duration_after; swaps = !swaps })
