(** Item-to-disk placements.

    A placement maps every data item to the disk currently holding it.
    Migration moves a cluster from one placement to another; the
    transfer graph is exactly the item-wise difference of two
    placements. *)

type t

(** [create n_items f] places item [i] on disk [f i]. *)
val create : n_items:int -> (int -> int) -> t

val of_array : int array -> t
val to_array : t -> int array
val n_items : t -> int
val disk_of : t -> int -> int

(** [move p ~item ~target] relocates one item (in place). *)
val move : t -> item:int -> target:int -> unit

(** Items currently on [disk], ascending. *)
val items_on : t -> disk:int -> int list

(** Number of items per disk, for [n_disks] disks. *)
val load : t -> n_disks:int -> int array

(** [diff a b] is the list of [(item, src, dst)] moves taking [a] to
    [b] (items placed identically are skipped).
    @raise Invalid_argument if sizes differ. *)
val diff : t -> t -> (int * int * int) list

val equal : t -> t -> bool
val copy : t -> t
