type t = { id : int; bandwidth : float; cap : int }

let make ~id ?(bandwidth = 1.0) ~cap () =
  if bandwidth <= 0.0 then invalid_arg "Disk.make: bandwidth must be positive";
  if cap < 1 then invalid_arg "Disk.make: capacity must be >= 1";
  { id; bandwidth; cap }

let stream_rate t ~streams =
  if streams < 1 then invalid_arg "Disk.stream_rate";
  t.bandwidth /. float_of_int streams

let pp ppf t =
  Format.fprintf ppf "disk %d (bw %.2f, c=%d)" t.id t.bandwidth t.cap
