type change = { after_round : int; disk : int; new_cap : int }

type report = {
  before : Simulator.report;
  after : Simulator.report;
  total_rounds : int;
  total_wall_time : float;
}

let truncate_schedule sched k =
  let rounds = Migration.Schedule.rounds sched in
  let k = min k (Array.length rounds) in
  Migration.Schedule.of_rounds (Array.sub rounds 0 k)

let run_with_change cluster ~target ~plan change =
  if change.new_cap < 1 then invalid_arg "Fault: capacity must stay >= 1";
  if change.disk < 0 || change.disk >= Cluster.n_disks cluster then
    invalid_arg "Fault: unknown disk";
  let job = Cluster.plan_reconfiguration cluster ~target in
  let sched = plan job.Cluster.instance in
  let prefix = truncate_schedule sched change.after_round in
  (* executing a prefix is feasible iff the whole schedule is; validate
     against a sub-instance containing only the prefix items *)
  let before =
    if Migration.Schedule.n_rounds prefix = 0 then
      {
        Simulator.rounds = 0;
        wall_time = 0.0;
        per_round = [||];
        items_moved = 0;
        max_streams = 0;
        mean_utilization = 1.0;
      }
    else begin
      (* Build a job restricted to the prefix's edges so validation
         passes (all items scheduled exactly once). *)
      let g = Migration.Instance.graph job.Cluster.instance in
      let keep = Hashtbl.create 64 in
      Array.iter
        (fun edges -> List.iter (fun e -> Hashtbl.add keep e ()) edges)
        (Migration.Schedule.rounds prefix);
      let sub, mapping = Mgraph.Multigraph.sub g (Hashtbl.mem keep) in
      let caps = Migration.Instance.caps job.Cluster.instance in
      let sub_inst = Migration.Instance.create sub ~caps in
      let old_of_new = mapping in
      let new_of_old = Hashtbl.create 64 in
      Array.iteri (fun nw od -> Hashtbl.add new_of_old od nw) old_of_new;
      let sub_rounds =
        Array.map
          (fun edges -> List.map (Hashtbl.find new_of_old) edges)
          (Migration.Schedule.rounds prefix)
      in
      let sub_job =
        {
          Cluster.instance = sub_inst;
          items = Array.map (fun od -> job.Cluster.items.(od)) old_of_new;
          sources = Array.map (fun od -> job.Cluster.sources.(od)) old_of_new;
          targets = Array.map (fun od -> job.Cluster.targets.(od)) old_of_new;
        }
      in
      Simulator.execute cluster sub_job
        (Migration.Schedule.of_rounds sub_rounds)
    end
  in
  (* apply the capability change *)
  let disks = Cluster.disks cluster in
  let changed =
    Array.map
      (fun (d : Disk.t) ->
        if d.Disk.id = change.disk then { d with Disk.cap = change.new_cap }
        else d)
      disks
  in
  let cluster' =
    Cluster.create ~disks:changed ~placement:(Cluster.placement cluster)
  in
  let after = Simulator.run cluster' ~target ~plan in
  (* fold the final placement back into the caller's cluster *)
  let final = Cluster.placement cluster' in
  Array.iteri
    (fun item d -> Placement.move (Cluster.placement cluster) ~item ~target:d)
    (Placement.to_array final);
  assert (Cluster.reached cluster ~target);
  {
    before;
    after;
    total_rounds = before.Simulator.rounds + after.Simulator.rounds;
    total_wall_time = before.Simulator.wall_time +. after.Simulator.wall_time;
  }

(* ------------------------------------------------------------------ *)
(* Seeded fault policies for the execution engine                      *)

let engine_policy ?(fault_rate = 0.0) ?(crashes = []) ?(slowdowns = []) ~seed
    () =
  if fault_rate < 0.0 || fault_rate >= 1.0 then
    invalid_arg "Fault.engine_policy: fault_rate must be in [0, 1)";
  List.iter
    (fun (r, _) ->
      if r < 0 then invalid_arg "Fault.engine_policy: negative round")
    (crashes @ slowdowns);
  (* one private RNG per policy value: the engine consults the policy
     in a deterministic sequence, so the decisions are a pure function
     of (seed, execution history) *)
  let rng = Random.State.make [| seed; 0xfa17 |] in
  let decide ~round ~attempted =
    let scheduled =
      List.filter_map
        (fun (r, d) ->
          if r = round then Some (Migration.Engine.Crash_disk d) else None)
        crashes
      @ List.filter_map
          (fun (r, d) ->
            if r = round then Some (Migration.Engine.Slow_disk d) else None)
          slowdowns
    in
    let transient =
      if fault_rate = 0.0 then []
      else
        List.filter_map
          (fun e ->
            if Random.State.float rng 1.0 < fault_rate then
              Some (Migration.Engine.Fail_transfer e)
            else None)
          attempted
    in
    scheduled @ transient
  in
  {
    Migration.Engine.policy_name =
      Printf.sprintf "seeded(rate=%g crashes=%d slowdowns=%d seed=%d)"
        fault_rate (List.length crashes) (List.length slowdowns) seed;
    decide;
  }

let random_calamities rng ~n_disks ~horizon ~crashes ~slowdowns =
  if crashes + slowdowns > n_disks then
    invalid_arg "Fault.random_calamities: more events than disks";
  let horizon = max 1 horizon in
  (* distinct disks so a slowdown never races its own crash *)
  let chosen = Hashtbl.create 8 in
  let pick_disk () =
    let rec go budget =
      let d = Random.State.int rng n_disks in
      if Hashtbl.mem chosen d && budget > 0 then go (budget - 1) else d
    in
    let d = go (8 * n_disks) in
    Hashtbl.replace chosen d ();
    d
  in
  let event () = (Random.State.int rng horizon, pick_disk ()) in
  let crash_events = List.init crashes (fun _ -> event ()) in
  let slow_events = List.init slowdowns (fun _ -> event ()) in
  (crash_events, slow_events)

(* ------------------------------------------------------------------ *)
(* Flaky transport                                                     *)

type flaky = { failure_rate : float; max_attempt_passes : int }

type flaky_report = {
  passes : int;
  total_rounds : int;
  wall_time : float;
  failed_transfers : int;
}

exception Too_flaky of flaky_report

let run_with_transfer_failures rng cluster ~target ~plan flaky =
  if flaky.failure_rate < 0.0 || flaky.failure_rate >= 1.0 then
    invalid_arg "Fault: failure_rate must be in [0, 1)";
  if flaky.max_attempt_passes < 1 then
    invalid_arg "Fault: need at least one pass";
  let disks = Cluster.disks cluster in
  let passes = ref 0 in
  let total_rounds = ref 0 in
  let wall_time = ref 0.0 in
  let failed_transfers = ref 0 in
  let report () =
    {
      passes = !passes;
      total_rounds = !total_rounds;
      wall_time = !wall_time;
      failed_transfers = !failed_transfers;
    }
  in
  while not (Cluster.reached cluster ~target) do
    if !passes >= flaky.max_attempt_passes then raise (Too_flaky (report ()));
    incr passes;
    let job = Cluster.plan_reconfiguration cluster ~target in
    let sched = plan job.Cluster.instance in
    (match Migration.Schedule.validate job.Cluster.instance sched with
    | Ok () -> ()
    | Error msg -> raise (Simulator.Infeasible msg));
    Array.iter
      (fun edges ->
        (* the round runs in full — failures waste their streams *)
        incr total_rounds;
        wall_time :=
          !wall_time
          +. Bandwidth.round_duration ~disks
               ~transfers:
                 (List.map
                    (fun e -> (job.Cluster.sources.(e), job.Cluster.targets.(e)))
                    edges)
               ();
        List.iter
          (fun e ->
            if Random.State.float rng 1.0 < flaky.failure_rate then
              incr failed_transfers
            else Cluster.apply_transfer cluster job e)
          edges)
      (Migration.Schedule.rounds sched)
  done;
  report ()
