type policy =
  | Fifo
  | Ordered of int array
  | By_schedule of Migration.Schedule.t

type event = { item : int; start : float; finish : float }

type report = {
  makespan : float;
  events : event array;
  mean_active : float;
  max_active : int;
}

type active = { edge : int; mutable remaining : float; started : float }

let priorities_of_policy policy m =
  match policy with
  | Fifo -> Array.init m Fun.id
  | Ordered p ->
      if Array.length p <> m then
        invalid_arg "Async_exec: priority array must cover every edge";
      Array.copy p
  | By_schedule sched ->
      let p = Array.make m max_int in
      Array.iteri
        (fun round edges -> List.iter (fun e -> p.(e) <- round) edges)
        (Migration.Schedule.rounds sched);
      Array.iteri
        (fun e pr ->
          if pr = max_int then
            invalid_arg
              (Printf.sprintf "Async_exec: edge %d missing from schedule" e))
        p;
      p

let run ~disks ?sizes ?(network = Network.full_bisection)
    (job : Cluster.job) policy =
  let m = Array.length job.Cluster.items in
  let n = Array.length disks in
  let size_of e =
    match sizes with
    | None -> 1.0
    | Some a ->
        if Array.length a <> m then
          invalid_arg "Async_exec: size array must cover every edge";
        if a.(e) <= 0.0 then invalid_arg "Async_exec: sizes must be positive";
        a.(e)
  in
  let prio = priorities_of_policy policy m in
  (* pending edges, cheapest priority first (ties: edge id) *)
  let pending =
    let order = Array.init m Fun.id in
    Array.sort (fun a b -> compare (prio.(a), a) (prio.(b), b)) order;
    ref (Array.to_list order)
  in
  let streams = Array.make n 0 in
  let active : active list ref = ref [] in
  let events = Array.make m { item = -1; start = 0.0; finish = 0.0 } in
  let now = ref 0.0 in
  let active_time_integral = ref 0.0 in
  let max_active = ref 0 in
  let src e = job.Cluster.sources.(e) and dst e = job.Cluster.targets.(e) in
  let admit () =
    (* work-conserving greedy in priority order *)
    let blocked = ref [] in
    List.iter
      (fun e ->
        let u = src e and v = dst e in
        if
          streams.(u) < disks.(u).Disk.cap
          && streams.(v) < disks.(v).Disk.cap
        then begin
          streams.(u) <- streams.(u) + 1;
          streams.(v) <- streams.(v) + 1;
          active := { edge = e; remaining = size_of e; started = !now } :: !active
        end
        else blocked := e :: !blocked)
      !pending;
    pending := List.rev !blocked
  in
  let rate ~active a =
    let u = src a.edge and v = dst a.edge in
    Network.throttle network ~active
    *. min
         (Disk.stream_rate disks.(u) ~streams:streams.(u))
         (Disk.stream_rate disks.(v) ~streams:streams.(v))
  in
  admit ();
  while !active <> [] do
    let count = List.length !active in
    if count > !max_active then max_active := count;
    (* time until the next completion at current rates *)
    let dt =
      List.fold_left
        (fun acc a -> min acc (a.remaining /. rate ~active:count a))
        infinity !active
    in
    assert (dt > 0.0 && dt < infinity);
    List.iter
      (fun a -> a.remaining <- a.remaining -. (rate ~active:count a *. dt))
      !active;
    active_time_integral := !active_time_integral +. (float_of_int count *. dt);
    now := !now +. dt;
    let eps = 1e-9 in
    let finished, running =
      List.partition (fun a -> a.remaining <= eps) !active
    in
    assert (finished <> []);
    List.iter
      (fun a ->
        streams.(src a.edge) <- streams.(src a.edge) - 1;
        streams.(dst a.edge) <- streams.(dst a.edge) - 1;
        events.(a.edge) <- { item = a.edge; start = a.started; finish = !now })
      finished;
    active := running;
    admit ()
  done;
  assert (!pending = []);
  {
    makespan = !now;
    events;
    mean_active =
      (if !now > 0.0 then !active_time_integral /. !now else 0.0);
    max_active = !max_active;
  }
