type request = { at_round : int; moves : (int * int) list }

type report = {
  rounds : int;
  replans : int;
  items_moved : int;
  latencies : int array;
}

(* A request is satisfied once each of its moves is either in effect or
   superseded by a newer request for the same item. *)
type tracked = {
  idx : int;
  arrived : int;
  mutable absorbed : bool;  (* false until the request actually arrives *)
  mutable outstanding : (int * int) list;  (* (item, disk) still owed *)
  mutable completed_at : int option;
}

let run cluster ~requests ~plan =
  let n_items = Placement.n_items (Cluster.placement cluster) in
  let n_disks = Cluster.n_disks cluster in
  let rec check_sorted last = function
    | [] -> ()
    | r :: rest ->
        if r.at_round < last then
          invalid_arg "Online.run: requests must be sorted by at_round";
        List.iter
          (fun (item, disk) ->
            if item < 0 || item >= n_items then invalid_arg "Online.run: bad item";
            if disk < 0 || disk >= n_disks then invalid_arg "Online.run: bad disk")
          r.moves;
        check_sorted r.at_round rest
  in
  check_sorted 0 requests;
  let desired = Placement.copy (Cluster.placement cluster) in
  (* who owns each item's latest retarget, for supersession *)
  let owner = Array.make n_items (-1) in
  let tracked =
    List.mapi
      (fun idx r ->
        {
          idx;
          arrived = r.at_round;
          absorbed = false;
          outstanding = r.moves;
          completed_at = None;
        })
      requests
  in
  let incoming = ref (List.combine requests tracked) in
  let replans = ref 0 and items_moved = ref 0 in
  let round = ref 0 in
  let active : Migration.Schedule.t option ref = ref None in
  let active_job : Cluster.job option ref = ref None in
  let active_pos = ref 0 in
  let update_tracking () =
    List.iter
      (fun t ->
        if t.absorbed && t.completed_at = None then begin
          t.outstanding <-
            List.filter
              (fun (item, disk) ->
                owner.(item) = t.idx
                && Placement.disk_of (Cluster.placement cluster) item <> disk)
              t.outstanding;
          if t.outstanding = [] then t.completed_at <- Some !round
        end)
      tracked
  in
  let finished () =
    !incoming = []
    && Placement.equal (Cluster.placement cluster) desired
  in
  while not (finished ()) do
    (* absorb arrivals due before this round *)
    let arrived, later =
      List.partition (fun (r, _) -> r.at_round <= !round) !incoming
    in
    if arrived <> [] then begin
      List.iter
        (fun (r, (t : tracked)) ->
          t.absorbed <- true;
          List.iter
            (fun (item, disk) ->
              owner.(item) <- t.idx;
              Placement.move desired ~item ~target:disk)
            r.moves)
        arrived;
      incoming := later;
      (* outstanding work changed: replan from the current state *)
      active := None;
      (* settle immediately: a request whose moves are already in
         effect (or all superseded at absorption) completes at its
         arrival round with latency 0, not after a phantom round *)
      update_tracking ()
    end;
    (match !active with
    | Some _ -> ()
    | None ->
        if not (Placement.equal (Cluster.placement cluster) desired) then begin
          incr replans;
          let job = Cluster.plan_reconfiguration cluster ~target:desired in
          let sched = plan job.Cluster.instance in
          active := Some sched;
          active_job := Some job;
          active_pos := 0
        end);
    (match (!active, !active_job) with
    | Some sched, Some job ->
        let rounds = Migration.Schedule.rounds sched in
        if !active_pos < Array.length rounds then begin
          List.iter
            (fun e ->
              Cluster.apply_transfer cluster job e;
              incr items_moved)
            rounds.(!active_pos);
          incr active_pos;
          if !active_pos >= Array.length rounds then active := None
        end
        else active := None
    | _ ->
        (* idle round while waiting for the next request *)
        ());
    incr round;
    update_tracking ();
    (* safety: there is always a next arrival or active work *)
    if !active = None && !incoming <> []
       && Placement.equal (Cluster.placement cluster) desired
    then begin
      (* fast-forward idle time to the next arrival *)
      match !incoming with
      | (r, _) :: _ -> if r.at_round > !round then round := r.at_round
      | [] -> ()
    end
  done;
  update_tracking ();
  let latencies =
    tracked
    |> List.map (fun t ->
           match t.completed_at with
           | Some c -> max 0 (c - t.arrived)
           | None ->
               (* the loop only exits once every request is absorbed
                  and the placement matches the desired map, so an
                  unsettled request here is a tracking bug — name it
                  instead of dying on an anonymous assert *)
               failwith
                 (Printf.sprintf
                    "Online.run: request %d (arrived round %d) never \
                     settled: %d move(s) still outstanding"
                    t.idx t.arrived
                    (List.length t.outstanding)))
    |> Array.of_list
  in
  { rounds = !round; replans = !replans; items_moved = !items_moved; latencies }
