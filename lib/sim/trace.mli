(** Execution traces and ASCII Gantt rendering.

    Records which disk runs how many streams in every round of a
    schedule, and renders the matrix as a terminal chart — one row per
    disk, one column per round, glyph by how much of the disk's
    transfer constraint the round uses.  Used by the examples and
    handy when eyeballing why a schedule has the length it has (the
    busiest row is the [LB1] bottleneck; a column of saturated rows is
    a [Γ]-tight round). *)

type t

(** [capture ~disks job sched] — per-round stream counts and durations
    under the bandwidth-splitting model. *)
val capture :
  disks:Disk.t array -> ?sizes:float array -> Cluster.job ->
  Migration.Schedule.t -> t

(** [capture_execution ~disks job x] charts an {e executed} migration
    ({!Migration.Engine.run}'s flight log) instead of a plan: one
    column per executed round, counting every {e attempted} transfer —
    failed attempts held their streams for the whole round, which is
    exactly the congestion the chart should show.  Retried transfers
    appear in every round they were attempted. *)
val capture_execution :
  disks:Disk.t array -> ?sizes:float array -> Cluster.job ->
  Migration.Certify.execution -> t

val n_rounds : t -> int
val n_disks : t -> int

(** [streams t ~round ~disk]. *)
val streams : t -> round:int -> disk:int -> int

(** Fraction of disk [d]'s total stream-slots the schedule uses. *)
val utilization_by_disk : t -> float array

(** ASCII chart.  Glyphs per cell: ['#'] saturated ([streams = c_v]),
    ['+'] more than half, ['.'] active, [' '] idle.  At most
    [max_columns] (default 72) round columns are shown; longer
    schedules are re-binned. *)
val render : ?max_columns:int -> t -> string
