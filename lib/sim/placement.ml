type t = int array

let create ~n_items f =
  if n_items < 0 then invalid_arg "Placement.create";
  Array.init n_items f

let of_array a = Array.copy a
let to_array t = Array.copy t
let n_items t = Array.length t

let disk_of t item =
  if item < 0 || item >= Array.length t then invalid_arg "Placement.disk_of";
  t.(item)

let move t ~item ~target =
  if item < 0 || item >= Array.length t then invalid_arg "Placement.move";
  t.(item) <- target

let items_on t ~disk =
  let acc = ref [] in
  for i = Array.length t - 1 downto 0 do
    if t.(i) = disk then acc := i :: !acc
  done;
  !acc

let load t ~n_disks =
  let counts = Array.make n_disks 0 in
  Array.iter
    (fun d ->
      if d < 0 || d >= n_disks then invalid_arg "Placement.load: disk out of range";
      counts.(d) <- counts.(d) + 1)
    t;
  counts

let diff a b =
  if Array.length a <> Array.length b then
    invalid_arg "Placement.diff: different item counts";
  let acc = ref [] in
  for i = Array.length a - 1 downto 0 do
    if a.(i) <> b.(i) then acc := (i, a.(i), b.(i)) :: !acc
  done;
  !acc

let equal a b = a = b
let copy = Array.copy
