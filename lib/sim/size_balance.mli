(** Size-aware round rebalancing.

    The paper assumes unit-size items, under which all schedules with
    the same round count cost the same wall-clock time.  With
    non-uniform sizes a new degree of freedom appears: parallel items
    (same source and target disks) are interchangeable between the
    rounds that carry edges of that disk pair, and the choice changes
    each round's duration (a round lasts until its largest transfer
    finishes).

    This optimizer hill-climbs over such swaps: exchanging two
    same-pair items between two rounds preserves feasibility trivially
    (identical endpoints), so only the two rounds' durations change.
    Concentrating large items into the same rounds shortens the
    schedule — spreading them means every round waits for a big one.

    The round structure (and hence the paper's optimality/approximation
    guarantees on the round count) is untouched; only the item-to-slot
    assignment within parallel classes moves. *)

type stats = {
  duration_before : float;
  duration_after : float;
  swaps : int;
}

(** [optimize ~disks ~sizes job sched] — a schedule with the same
    rounds structure and (weakly) smaller total duration under the
    bandwidth-splitting model, plus what changed.  Deterministic. *)
val optimize :
  disks:Disk.t array ->
  sizes:float array ->
  Cluster.job ->
  Migration.Schedule.t ->
  Migration.Schedule.t * stats
