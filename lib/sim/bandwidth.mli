(** The bandwidth-splitting cost model.

    Within a round every disk divides its bandwidth evenly among its
    active streams; a transfer's rate is the minimum of its two
    endpoints' per-stream allocations; the round lasts until its
    slowest transfer finishes (rounds are barriers, as in the paper's
    model where a round is one "color class").

    This reproduces the accounting of the paper's Figure 2: three
    disks, [M] parallel items per pair, unit bandwidth.  With
    [c_v = 1] a round is one matching edge (rate 1, duration 1) and
    [3M] rounds are needed; with [c_v = 2] each round moves one full
    triangle at rate 1/2 (duration 2) and [M] rounds suffice — [2M]
    total time versus [3M]. *)

(** [round_duration ~disks ?network ~transfers ()] where each transfer
    is [(src, dst)] with unit item size.  Zero transfers take zero
    time.  [network] (default {!Network.full_bisection}, the paper's
    assumption) additionally throttles every stream when the core is
    oversubscribed.
    @raise Invalid_argument if a disk index is out of range. *)
val round_duration :
  disks:Disk.t array -> ?network:Network.t -> transfers:(int * int) list ->
  unit -> float

(** Like {!round_duration} with an explicit size per transfer
    ([(src, dst, size)]); the paper's unit-size assumption is the
    special case [size = 1.0].
    @raise Invalid_argument on a non-positive size. *)
val round_duration_sized :
  disks:Disk.t array -> ?network:Network.t ->
  transfers:(int * int * float) list -> unit -> float

(** Total duration of a schedule's rounds for a given job.  [sizes]
    maps edge ids to item sizes (default: all 1.0). *)
val schedule_duration :
  disks:Disk.t array -> ?sizes:float array -> ?network:Network.t ->
  Cluster.job -> Migration.Schedule.t -> float

(** Per-round durations, same convention. *)
val round_durations :
  disks:Disk.t array -> ?sizes:float array -> ?network:Network.t ->
  Cluster.job -> Migration.Schedule.t -> float array
