let log_src =
  Logs.Src.create "storsim.simulator" ~doc:"round-by-round execution"

module Log = (val Logs.src_log log_src : Logs.LOG)

type report = {
  rounds : int;
  wall_time : float;
  per_round : float array;
  items_moved : int;
  max_streams : int;
  mean_utilization : float;
}

exception Infeasible of string

let execute cluster (job : Cluster.job) sched =
  (match Migration.Schedule.validate job.Cluster.instance sched with
  | Ok () -> ()
  | Error msg -> raise (Infeasible msg));
  let disks = Cluster.disks cluster in
  let n = Array.length disks in
  let total_cap =
    Array.fold_left (fun acc (d : Disk.t) -> acc + d.Disk.cap) 0 disks
  in
  let rounds = Migration.Schedule.rounds sched in
  let per_round = Array.make (Array.length rounds) 0.0 in
  let items_moved = ref 0 in
  let max_streams = ref 0 in
  let util_sum = ref 0.0 in
  Array.iteri
    (fun r edges ->
      let streams = Array.make n 0 in
      List.iter
        (fun e ->
          let src = job.Cluster.sources.(e) in
          let item = job.Cluster.items.(e) in
          if Placement.disk_of (Cluster.placement cluster) item <> src then
            raise
              (Infeasible
                 (Printf.sprintf "round %d: item %d is not on disk %d" r item
                    src));
          streams.(src) <- streams.(src) + 1;
          streams.(job.Cluster.targets.(e)) <-
            streams.(job.Cluster.targets.(e)) + 1)
        edges;
      Array.iteri
        (fun v s ->
          if s > disks.(v).Disk.cap then
            raise
              (Infeasible
                 (Printf.sprintf "round %d: disk %d runs %d streams (c=%d)" r v
                    s disks.(v).Disk.cap));
          if s > !max_streams then max_streams := s)
        streams;
      per_round.(r) <-
        Bandwidth.round_duration ~disks
          ~transfers:
            (List.map
               (fun e -> (job.Cluster.sources.(e), job.Cluster.targets.(e)))
               edges)
          ();
      if total_cap > 0 then
        util_sum :=
          !util_sum
          +. (float_of_int (Array.fold_left ( + ) 0 streams)
             /. float_of_int total_cap);
      List.iter
        (fun e ->
          Cluster.apply_transfer cluster job e;
          incr items_moved)
        edges)
    rounds;
  {
    rounds = Array.length rounds;
    wall_time = Array.fold_left ( +. ) 0.0 per_round;
    per_round;
    items_moved = !items_moved;
    max_streams = !max_streams;
    mean_utilization =
      (if Array.length rounds = 0 then 1.0
       else !util_sum /. float_of_int (Array.length rounds));
  }

let run cluster ~target ~plan =
  let job = Cluster.plan_reconfiguration cluster ~target in
  let sched = plan job.Cluster.instance in
  Log.info (fun m ->
      m "migrating %d items in %d rounds"
        (Array.length job.Cluster.items)
        (Migration.Schedule.n_rounds sched));
  let report = execute cluster job sched in
  assert (Cluster.reached cluster ~target);
  Log.info (fun m -> m "done: wall time %.2f" report.wall_time);
  report

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>rounds: %d@,wall time: %.2f@,items moved: %d@,max streams: %d@,mean utilization: %.2f@]"
    r.rounds r.wall_time r.items_moved r.max_streams r.mean_utilization
