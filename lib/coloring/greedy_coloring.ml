module Multigraph = Mgraph.Multigraph

let color ?order g ~cap =
  let t = Edge_coloring.create g ~cap ~colors:0 in
  let order =
    match order with
    | Some o -> o
    | None -> List.init (Multigraph.n_edges g) Fun.id
  in
  List.iter
    (fun e ->
      match Edge_coloring.common_missing t e with
      | Some c -> Edge_coloring.assign t e c
      | None ->
          let c = Edge_coloring.add_color t in
          Edge_coloring.assign t e c)
    order;
  t
