(** First-fit greedy capacitated edge coloring.

    The naive baseline: color edges in order with the smallest color
    missing at both endpoints, growing the palette when none fits.
    Uses at most [max_v ceil(d_v/c_v) * 2 - 1] colors in the worst
    case; serves as the starting partial coloring for smarter
    algorithms and as the weakest baseline in benchmarks. *)

(** [color ?order g ~cap] colors every edge.  [order] (default: edge id
    order) lets callers try heuristics such as heaviest-node-first. *)
val color :
  ?order:int list -> Mgraph.Multigraph.t -> cap:(int -> int) -> Edge_coloring.t
