(** Capacitated alternating-path recoloring (Kempe chains).

    In classic edge coloring, an [ab]-alternating path can be flipped
    to move a missing color from one node to another.  With transfer
    constraints [c_v > 1] the paper observes (Section V-B) that these
    paths "may not be simple": a node can carry up to [c_v] edges of
    each color, so the alternating structure is a walk that may revisit
    nodes.  This module implements the sound generalization: it grows
    an alternating walk edge by edge, tracking the net count change the
    pending flip would cause at every touched node, and only commits a
    flip whose end state satisfies every capacity — which is exactly
    the flip the paper's orbit lemmas (5.1, 5.2) need to exist.

    All operations either mutate the coloring into another valid state
    or leave it untouched and return [false]. *)

(** Reusable walk scratch sized to the coloring's graph.  All entries
    are epoch-stamped, so reuse across walks costs nothing and needs
    no clearing; create one {!make_ctx} per coloring run and thread it
    through every call.  A ctx holds no cross-call state — snapshots
    and restores of the coloring never involve it — but it must stay
    on the domain that created it (its buffers are unsynchronized). *)
type ctx

val make_ctx : Edge_coloring.t -> ctx

(** [try_free t ?rng ~v ~a ~b] attempts to make color [a] missing at
    [v] by flipping an [a]/[b]-alternating walk that starts at [v]
    along an [a]-colored edge.  Preconditions checked: [a <> b] and
    [b] missing at [v] (otherwise [Invalid_argument]).  If [a] is
    already missing at [v], returns [true] without touching anything.
    [rng] randomizes tie-breaking among parallel continuation edges so
    that callers can retry with different walks. *)
val try_free :
  Edge_coloring.t -> ?rng:Random.State.t -> v:int -> a:int -> b:int -> unit -> bool

(** {!try_free} with caller-provided scratch — the steady-state entry
    point: no allocation beyond the committed color changes. *)
val try_free_ctx :
  Edge_coloring.t ->
  ctx ->
  ?rng:Random.State.t ->
  v:int ->
  a:int ->
  b:int ->
  unit ->
  bool

(** [try_color_edge t ?rng ?flip_attempts e] tries to color the
    uncolored edge [e] within the current palette:
    first with a color missing at both endpoints, then by Kempe flips
    that make some color common (trying up to [flip_attempts]
    endpoint/color-pair combinations, default 32).  Returns [true] on
    success; on [false] the coloring may have been perturbed by
    partial flips but is still valid and [e] is still uncolored.
    @raise Invalid_argument if [e] is already colored. *)
val try_color_edge :
  Edge_coloring.t -> ?rng:Random.State.t -> ?flip_attempts:int -> int -> bool

(** {!try_color_edge} with caller-provided scratch. *)
val try_color_edge_ctx :
  Edge_coloring.t ->
  ctx ->
  ?rng:Random.State.t ->
  ?flip_attempts:int ->
  int ->
  bool
