module Multigraph = Mgraph.Multigraph
module Ec = Edge_coloring

let bound g = 3 * Multigraph.max_degree g / 2

let color ?rng g =
  let delta = Multigraph.max_degree g in
  let t = Ec.create g ~cap:(fun _ -> 1) ~colors:(max 1 delta) in
  let retries = 8 in
  Multigraph.iter_edges g (fun { Multigraph.id = e; _ } ->
      let rec attempt k =
        if Recolor.try_color_edge t ?rng e then ()
        else if k > 0 then attempt (k - 1)
        else begin
          let c = Ec.add_color t in
          Ec.assign t e c
        end
      in
      attempt retries);
  t
