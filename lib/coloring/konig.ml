module Multigraph = Mgraph.Multigraph

let sides g =
  let n = Multigraph.n_nodes g in
  let side = Array.make n (-1) in
  let ok = ref true in
  for start = 0 to n - 1 do
    if side.(start) < 0 then begin
      side.(start) <- 0;
      let queue = Queue.create () in
      Queue.add start queue;
      while not (Queue.is_empty queue) do
        let u = Queue.take queue in
        Multigraph.iter_incident g u (fun e ->
            let w = Multigraph.other_endpoint g e u in
            if w = u then ok := false
            else if side.(w) < 0 then begin
              side.(w) <- 1 - side.(u);
              Queue.add w queue
            end
            else if side.(w) = side.(u) then ok := false)
      done
    end
  done;
  if !ok then Some (Array.map (fun s -> s = 1) side) else None

let color g =
  let side =
    match sides g with
    | Some s -> s
    | None -> invalid_arg "Konig.color: graph is not bipartite"
  in
  let delta = Multigraph.max_degree g in
  let t = Edge_coloring.create g ~cap:(fun _ -> 1) ~colors:delta in
  if delta > 0 then begin
    (* local index per side; sides are padded to equal size *)
    let n = Multigraph.n_nodes g in
    let left = ref [] and right = ref [] in
    for v = n - 1 downto 0 do
      if side.(v) then right := v :: !right else left := v :: !left
    done;
    let left = Array.of_list !left and right = Array.of_list !right in
    let size = max (Array.length left) (Array.length right) in
    let lidx = Hashtbl.create 16 and ridx = Hashtbl.create 16 in
    Array.iteri (fun i v -> Hashtbl.add lidx v i) left;
    Array.iteri (fun i v -> Hashtbl.add ridx v i) right;
    (* padded edge list: real edges keep their graph ids in [ids] *)
    let edges = ref [] and ids = ref [] in
    Multigraph.iter_edges g (fun { Multigraph.id; u; v } ->
        let l, r = if side.(u) then (v, u) else (u, v) in
        edges := (Hashtbl.find lidx l, Hashtbl.find ridx r) :: !edges;
        ids := id :: !ids);
    let ldeg = Array.make size 0 and rdeg = Array.make size 0 in
    List.iter
      (fun (l, r) ->
        ldeg.(l) <- ldeg.(l) + 1;
        rdeg.(r) <- rdeg.(r) + 1)
      !edges;
    (* dummy edges joining under-full nodes until delta-regular *)
    let lpos = ref 0 and rpos = ref 0 in
    let total = ref (List.length !edges) in
    while !total < size * delta do
      while ldeg.(!lpos) >= delta do
        incr lpos
      done;
      while rdeg.(!rpos) >= delta do
        incr rpos
      done;
      edges := (!lpos, !rpos) :: !edges;
      ids := -1 :: !ids;
      ldeg.(!lpos) <- ldeg.(!lpos) + 1;
      rdeg.(!rpos) <- rdeg.(!rpos) + 1;
      incr total
    done;
    let edges = ref (Array.of_list !edges) and ids = ref (Array.of_list !ids) in
    (* delta successive perfect matchings *)
    for c = 0 to delta - 1 do
      let caps = Array.make size 1 in
      let problem =
        {
          Netflow.Bmatching.n_left = size;
          n_right = size;
          left_cap = caps;
          right_cap = caps;
          edges = !edges;
        }
      in
      match Netflow.Bmatching.solve_exact problem with
      | None ->
          (* contradicts Hall's condition on a regular bipartite graph *)
          assert false
      | Some sel ->
          let rest_edges = ref [] and rest_ids = ref [] in
          Array.iteri
            (fun i pair ->
              if sel.(i) then begin
                if !ids.(i) >= 0 then Edge_coloring.assign t !ids.(i) c
              end
              else begin
                rest_edges := pair :: !rest_edges;
                rest_ids := !ids.(i) :: !rest_ids
              end)
            !edges;
          edges := Array.of_list !rest_edges;
          ids := Array.of_list !rest_ids
    done
  end;
  t
