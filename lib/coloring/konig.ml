module Multigraph = Mgraph.Multigraph
module Csr = Mgraph.Multigraph.Csr
module Arena = Mgraph.Arena

let sides g =
  let n = Multigraph.n_nodes g in
  let csr = Multigraph.freeze g in
  let arena = Arena.local () in
  let qbuf = Arena.ints arena ~len:(max n 1) ~fill:0 in
  let q = Arena.arr qbuf in
  let side = Array.make n (-1) in
  let ok = ref true in
  for start = 0 to n - 1 do
    if side.(start) < 0 then begin
      side.(start) <- 0;
      let head = ref 0 and tail = ref 0 in
      q.(!tail) <- start;
      incr tail;
      while !head < !tail do
        let u = q.(!head) in
        incr head;
        for p = Csr.row_start csr u to Csr.row_stop csr u - 1 do
          let w = csr.Csr.neighbors.(p) in
          if w = u then ok := false
          else if side.(w) < 0 then begin
            side.(w) <- 1 - side.(u);
            q.(!tail) <- w;
            incr tail
          end
          else if side.(w) = side.(u) then ok := false
        done
      done
    end
  done;
  Arena.release arena qbuf;
  if !ok then Some (Array.map (fun s -> s = 1) side) else None

let color ?pool g =
  let side =
    match sides g with
    | Some s -> s
    | None -> invalid_arg "Konig.color: graph is not bipartite"
  in
  let delta = Multigraph.max_degree g in
  let t = Edge_coloring.create g ~cap:(fun _ -> 1) ~colors:delta in
  if delta > 0 then begin
    (* local index per side; sides are padded to equal size *)
    let n = Multigraph.n_nodes g in
    let n_right = ref 0 in
    Array.iter (fun s -> if s then incr n_right) side;
    let left = Array.make (max (n - !n_right) 1) 0
    and right = Array.make (max !n_right 1) 0 in
    let li = ref 0 and ri = ref 0 in
    for v = 0 to n - 1 do
      if side.(v) then begin
        right.(!ri) <- v;
        incr ri
      end
      else begin
        left.(!li) <- v;
        incr li
      end
    done;
    let size = max !li !ri in
    let lidx = Array.make n 0 and ridx = Array.make n 0 in
    for i = 0 to !li - 1 do
      lidx.(left.(i)) <- i
    done;
    for i = 0 to !ri - 1 do
      ridx.(right.(i)) <- i
    done;
    (* Padded edge array, canonically ordered: dummies first in reverse
       creation order, then real edges in reverse id order.  (The order
       is pinned by the golden schedules: each round's matching depends
       on it.)  Real edges keep their graph ids in [ids]; dummies get
       [-1]. *)
    let m = Multigraph.n_edges g in
    let padded = size * delta in
    let n_dummy = padded - m in
    let edges = Array.make (max padded 1) (0, 0) in
    let ids = Array.make (max padded 1) (-1) in
    Multigraph.iter_edges g (fun { Multigraph.id; u; v } ->
        let l, r = if side.(u) then (v, u) else (u, v) in
        let i = padded - 1 - id in
        edges.(i) <- (lidx.(l), ridx.(r));
        ids.(i) <- id);
    let ldeg = Array.make size 0 and rdeg = Array.make size 0 in
    for i = n_dummy to padded - 1 do
      let l, r = edges.(i) in
      ldeg.(l) <- ldeg.(l) + 1;
      rdeg.(r) <- rdeg.(r) + 1
    done;
    (* dummy edges joining under-full nodes until delta-regular *)
    let lpos = ref 0 and rpos = ref 0 in
    for k = 0 to n_dummy - 1 do
      while ldeg.(!lpos) >= delta do
        incr lpos
      done;
      while rdeg.(!rpos) >= delta do
        incr rpos
      done;
      edges.(n_dummy - 1 - k) <- (!lpos, !rpos);
      ldeg.(!lpos) <- ldeg.(!lpos) + 1;
      rdeg.(!rpos) <- rdeg.(!rpos) + 1
    done;
    (* delta successive perfect matchings; each round keeps the
       non-selected edges in reverse index order (again pinned) *)
    let edges = ref edges and ids = ref ids and len = ref padded in
    for c = 0 to delta - 1 do
      let caps = Array.make size 1 in
      let problem =
        {
          Netflow.Bmatching.n_left = size;
          n_right = size;
          left_cap = caps;
          right_cap = caps;
          edges = (if !len = Array.length !edges then !edges
                   else Array.sub !edges 0 !len);
        }
      in
      match Netflow.Bmatching.solve_exact ?pool problem with
      | None ->
          (* contradicts Hall's condition on a regular bipartite graph *)
          assert false
      | Some sel ->
          let kept = ref 0 in
          Array.iter (fun b -> if not b then incr kept) sel;
          let next_edges = Array.make (max !kept 1) (0, 0) in
          let next_ids = Array.make (max !kept 1) (-1) in
          let j = ref 0 in
          for i = !len - 1 downto 0 do
            if sel.(i) then begin
              if !ids.(i) >= 0 then Edge_coloring.assign t !ids.(i) c
            end
            else begin
              next_edges.(!j) <- !edges.(i);
              next_ids.(!j) <- !ids.(i);
              incr j
            end
          done;
          edges := next_edges;
          ids := next_ids;
          len := !kept
    done
  end;
  t
