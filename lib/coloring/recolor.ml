module Multigraph = Mgraph.Multigraph
module Csr = Mgraph.Multigraph.Csr
module Ec = Edge_coloring

let other a b x = if x = a then b else a

(* Kempe-walk observability: walks committed, individual edge flips
   inside committed walks, and walks abandoned without progress. *)
let c_walks = Probes.counter "recolor.kempe_walks"
let c_flips = Probes.counter "recolor.kempe_flips"
let c_failed = Probes.counter "recolor.failed_walks"

(* Reusable walk scratch, checked out of the coloring's graph shape
   once and reused across every walk of a run.  All per-node/per-edge
   state is epoch-stamped: bumping [epoch] invalidates the whole
   scratch in O(1), so a walk touches only the entries it visits and
   never pays a clearing pass.

   [da]/[db] hold the net count change the pending flip would cause at
   a node for the walk's two colors (the paper's capacity-tracking
   generalization of Kempe chains); [stamp] guards both. *)
type ctx = {
  used_stamp : int array;  (* per edge: stamp of the walk it is on *)
  da : int array;  (* per node: pending delta for color [a] *)
  db : int array;  (* per node: pending delta for color [b] *)
  stamp : int array;
  walk_e : int array;  (* edges of the pending walk, in growth order *)
  walk_c : int array;  (* the color each edge flips to *)
  mutable mu : int array;  (* captured missing palettes, candidate loop *)
  mutable mv : int array;
  mutable epoch : int;
}

let make_ctx t =
  let g = Ec.graph t in
  let n = Multigraph.n_nodes g and m = Multigraph.n_edges g in
  {
    used_stamp = Array.make (max m 1) 0;
    da = Array.make (max n 1) 0;
    db = Array.make (max n 1) 0;
    stamp = Array.make (max n 1) 0;
    walk_e = Array.make ((2 * m) + 2) 0;
    walk_c = Array.make ((2 * m) + 2) 0;
    mu = Array.make (max (Ec.n_colors t) 1) 0;
    mv = Array.make (max (Ec.n_colors t) 1) 0;
    epoch = 0;
  }

let delta_get ctx w ~a color =
  if ctx.stamp.(w) <> ctx.epoch then 0
  else if color = a then ctx.da.(w)
  else ctx.db.(w)

let delta_bump ctx w ~a color x =
  if ctx.stamp.(w) <> ctx.epoch then begin
    ctx.stamp.(w) <- ctx.epoch;
    ctx.da.(w) <- 0;
    ctx.db.(w) <- 0
  end;
  if color = a then ctx.da.(w) <- ctx.da.(w) + x
  else ctx.db.(w) <- ctx.db.(w) + x

(* Continuations are the unused edges of color [want] at [w], in
   canonical incidence order.  [count]/[nth] split lets [pick] consume
   the RNG exactly as the historical list code did: no draw for zero
   or one continuation, one draw otherwise. *)
let count_continuations ctx colors (csr : Csr.t) w want =
  let count = ref 0 in
  for p = Csr.row_start csr w to Csr.row_stop csr w - 1 do
    let e = csr.Csr.edge_ids.(p) in
    if ctx.used_stamp.(e) <> ctx.epoch && colors.(e) = want then incr count
  done;
  !count

let nth_continuation ctx colors (csr : Csr.t) w want k =
  let seen = ref 0 and found = ref (-1) in
  let p = ref (Csr.row_start csr w) in
  let stop = Csr.row_stop csr w in
  while !found < 0 && !p < stop do
    let e = csr.Csr.edge_ids.(!p) in
    if ctx.used_stamp.(e) <> ctx.epoch && colors.(e) = want then begin
      if !seen = k then found := e;
      incr seen
    end;
    incr p
  done;
  !found

(* Would flipping the pending walk leave a valid state, and would it
   achieve the goal (color [a] missing at [v])?  Only the start node
   and the current end can carry a non-zero net change. *)
let acceptable t ctx ~v ~a ~b ~here =
  let ok_at w =
    Ec.count t w a + delta_get ctx w ~a a <= Ec.cap t w
    && Ec.count t w b + delta_get ctx w ~a b <= Ec.cap t w
  in
  ok_at v && ok_at here
  && Ec.count t v a + delta_get ctx v ~a a < Ec.cap t v

let commit t ctx len =
  Probes.bump c_walks;
  Probes.bump ~by:len c_flips;
  (* Unassign everything first so the reassignments never transiently
     overflow: counts only grow towards the (valid) final state. *)
  for i = len - 1 downto 0 do
    Ec.unassign t ctx.walk_e.(i)
  done;
  for i = len - 1 downto 0 do
    Ec.assign t ctx.walk_e.(i) ctx.walk_c.(i)
  done

let try_free_ctx t ctx ?rng ~v ~a ~b () =
  if a = b then invalid_arg "Recolor.try_free: a = b";
  if not (Ec.missing t v b) then
    invalid_arg "Recolor.try_free: b must be missing at v";
  if Ec.missing t v a then true
  else begin
    ctx.epoch <- ctx.epoch + 1;
    let g = Ec.graph t in
    let csr = Multigraph.freeze g in
    let colors = Ec.raw_colors t in
    let max_steps = 2 * Multigraph.n_edges g in
    let len = ref 0 in
    (* the walk grows one edge at a time; [here]/[want] track the
       frontier, mirroring the historical recursive [grow] *)
    let here = ref v and want = ref a and steps = ref 0 in
    (* 0 = walking, 1 = failed, 2 = committed *)
    let result = ref 0 in
    while !result = 0 do
      if !steps > max_steps then result := 1
      else begin
        let cnt = count_continuations ctx colors csr !here !want in
        let e =
          if cnt = 0 then -1
          else if cnt = 1 then nth_continuation ctx colors csr !here !want 0
          else
            match rng with
            | None -> nth_continuation ctx colors csr !here !want 0
            | Some rng ->
                nth_continuation ctx colors csr !here !want
                  (Random.State.int rng cnt)
        in
        if e < 0 then result := 1
        else begin
          ctx.used_stamp.(e) <- ctx.epoch;
          let next = Multigraph.other_endpoint g e !here in
          let flip_to = other a b !want in
          delta_bump ctx !here ~a !want (-1);
          delta_bump ctx !here ~a flip_to 1;
          delta_bump ctx next ~a !want (-1);
          delta_bump ctx next ~a flip_to 1;
          ctx.walk_e.(!len) <- e;
          ctx.walk_c.(!len) <- flip_to;
          incr len;
          if acceptable t ctx ~v ~a ~b ~here:next then begin
            commit t ctx !len;
            result := 2
          end
          else begin
            here := next;
            want := other a b !want;
            incr steps
          end
        end
      end
    done;
    let freed = !result = 2 in
    if not freed then Probes.bump c_failed;
    freed
  end

let try_free t ?rng ~v ~a ~b () = try_free_ctx t (make_ctx t) ?rng ~v ~a ~b ()

(* Capture the missing palette of [w] (ascending colors) into [buf],
   returning how many entries were written. *)
let capture_missing t w buf =
  let k = ref 0 in
  for c = 0 to Ec.n_colors t - 1 do
    if Ec.missing t w c then begin
      buf.(!k) <- c;
      incr k
    end
  done;
  !k

let try_color_edge_ctx t ctx ?rng ?(flip_attempts = 32) e =
  (match Ec.color_of t e with
  | Some _ -> invalid_arg "Recolor.try_color_edge: edge already colored"
  | None -> ());
  match Ec.common_missing t e with
  | Some c ->
      Ec.assign t e c;
      true
  | None ->
      let u, v = Multigraph.endpoints (Ec.graph t) e in
      if Array.length ctx.mu < Ec.n_colors t then begin
        ctx.mu <- Array.make (Ec.n_colors t) 0;
        ctx.mv <- Array.make (Ec.n_colors t) 0
      end;
      (* candidate pairs are fixed by the palette at entry, exactly as
         the historical snapshot of missing colors was *)
      let nu = capture_missing t u ctx.mu in
      let nv = capture_missing t v ctx.mv in
      let budget = ref flip_attempts in
      let colored = ref false in
      (* [a] is missing at one endpoint; try to free it at the other by
         flipping away from there along an a/b walk.  The flip (if any)
         may change the landscape, so a common color can appear for
         free after a failed attempt. *)
      let attempt target place walk_b =
        decr budget;
        let flipped =
          Ec.missing t target walk_b
          && (not (Ec.missing t target place))
          && try_free_ctx t ctx ?rng ~v:target ~a:place ~b:walk_b ()
        in
        if flipped && Ec.missing t u place && Ec.missing t v place then begin
          Ec.assign t e place;
          colored := true
        end
        else
          match Ec.common_missing t e with
          | Some c ->
              Ec.assign t e c;
              colored := true
          | None -> ()
      in
      let i = ref 0 in
      while (not !colored) && !budget > 0 && !i < nu do
        let a = ctx.mu.(!i) in
        let j = ref 0 in
        while (not !colored) && !budget > 0 && !j < nv do
          let b = ctx.mv.(!j) in
          if a <> b then begin
            attempt u b a;
            if (not !colored) && !budget > 0 then attempt v a b
          end;
          incr j
        done;
        incr i
      done;
      !colored

let try_color_edge t ?rng ?flip_attempts e =
  try_color_edge_ctx t (make_ctx t) ?rng ?flip_attempts e
