module Multigraph = Mgraph.Multigraph
module Ec = Edge_coloring

(* Net count changes a pending flip would cause, keyed by (node, color).
   Only walk endpoints can end up with a non-zero net change, but
   intermediate bookkeeping is simplest kept uniformly. *)
module Delta = struct
  type t = (int * int, int) Hashtbl.t

  let create () : t = Hashtbl.create 16
  let get d k = try Hashtbl.find d k with Not_found -> 0
  let bump d k x = Hashtbl.replace d k (get d k + x)
end

let other a b x = if x = a then b else a

(* Kempe-walk observability: walks committed, individual edge flips
   inside committed walks, and walks abandoned without progress. *)
let c_walks = Probes.counter "recolor.kempe_walks"
let c_flips = Probes.counter "recolor.kempe_flips"
let c_failed = Probes.counter "recolor.failed_walks"

(* Unused edges of color [want] at [w].  [used] marks edges already on
   the walk. *)
let continuations t used w want =
  List.filter
    (fun e -> (not (Hashtbl.mem used e)) && Ec.color_of t e = Some want)
    (Multigraph.incident (Ec.graph t) w)

let pick rng = function
  | [] -> None
  | [ e ] -> Some e
  | es -> (
      match rng with
      | None -> Some (List.hd es)
      | Some rng -> Some (List.nth es (Random.State.int rng (List.length es))))

(* Would flipping the pending walk leave a valid state, and would it
   achieve the goal (color [a] missing at [v])?  Only the start node
   and the current end can carry a non-zero net change. *)
let acceptable t delta ~v ~a ~b ~here =
  let ok_at w =
    Ec.count t w a + Delta.get delta (w, a) <= Ec.cap t w
    && Ec.count t w b + Delta.get delta (w, b) <= Ec.cap t w
  in
  ok_at v && ok_at here
  && Ec.count t v a + Delta.get delta (v, a) < Ec.cap t v

let commit t walk =
  Probes.bump c_walks;
  Probes.bump ~by:(List.length walk) c_flips;
  (* Unassign everything first so the reassignments never transiently
     overflow: counts only grow towards the (valid) final state. *)
  let flipped =
    List.map
      (fun (e, c) ->
        Ec.unassign t e;
        (e, c))
      walk
  in
  List.iter (fun (e, c) -> Ec.assign t e c) flipped

let try_free t ?rng ~v ~a ~b () =
  if a = b then invalid_arg "Recolor.try_free: a = b";
  if not (Ec.missing t v b) then
    invalid_arg "Recolor.try_free: b must be missing at v";
  if Ec.missing t v a then true
  else begin
    let used = Hashtbl.create 16 in
    let delta = Delta.create () in
    let max_steps = 2 * Multigraph.n_edges (Ec.graph t) in
    (* walk accumulates (edge, new color) pairs *)
    let rec grow here want walk steps =
      if steps > max_steps then false
      else
        match pick rng (continuations t used here want) with
        | None -> false
        | Some e ->
            Hashtbl.add used e ();
            let next = Multigraph.other_endpoint (Ec.graph t) e here in
            let flip_to = other a b want in
            Delta.bump delta (here, want) (-1);
            Delta.bump delta (here, flip_to) 1;
            Delta.bump delta (next, want) (-1);
            Delta.bump delta (next, flip_to) 1;
            let walk = (e, flip_to) :: walk in
            if acceptable t delta ~v ~a ~b ~here:next then begin
              commit t walk;
              true
            end
            else grow next (other a b want) walk (steps + 1)
    in
    let freed = grow v a [] 0 in
    if not freed then Probes.bump c_failed;
    freed
  end

(* Cartesian pairs (a, b) with a missing at one endpoint and b at the
   other, capped to keep attempts bounded on large palettes. *)
let candidate_pairs t e limit =
  let u, v = Multigraph.endpoints (Ec.graph t) e in
  let mu = Ec.missing_colors t u and mv = Ec.missing_colors t v in
  let pairs = ref [] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a <> b then begin
            (* free a at v (walk from v), or free b at u (walk from u) *)
            pairs := (`At_v, a, b) :: (`At_u, b, a) :: !pairs
          end)
        mv)
    mu;
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  take limit (List.rev !pairs)

let try_color_edge t ?rng ?(flip_attempts = 32) e =
  (match Ec.color_of t e with
  | Some _ -> invalid_arg "Recolor.try_color_edge: edge already colored"
  | None -> ());
  match Ec.common_missing t e with
  | Some c ->
      Ec.assign t e c;
      true
  | None ->
      let u, v = Multigraph.endpoints (Ec.graph t) e in
      let rec attempt = function
        | [] -> false
        | (site, a, b) :: rest ->
            (* [a] is missing at one endpoint; try to free it at the
               other by flipping away from there along an a/b walk. *)
            let target = match site with `At_v -> v | `At_u -> u in
            let flipped =
              Ec.missing t target b
              && (not (Ec.missing t target a))
              && try_free t ?rng ~v:target ~a ~b ()
            in
            if flipped && Ec.missing t u a && Ec.missing t v a then begin
              Ec.assign t e a;
              true
            end
            else
              (* the flip (if any) may have changed the landscape; a
                 common color can appear for free *)
              (match Ec.common_missing t e with
              | Some c ->
                  Ec.assign t e c;
                  true
              | None -> attempt rest)
      in
      attempt (candidate_pairs t e flip_attempts)
