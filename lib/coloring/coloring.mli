(** Umbrella module for the edge-coloring substrate. *)

module Edge_coloring = Edge_coloring
module Recolor = Recolor
module Greedy_coloring = Greedy_coloring
module Vizing = Vizing
module Shannon = Shannon
module Konig = Konig
