(** Optimal edge coloring of bipartite multigraphs (König's theorem).

    Every bipartite multigraph can be edge-colored with exactly [Δ]
    colors.  This is the combinatorial heart of the paper's Section IV:
    the Euler-oriented graph [H] on [v_out]/[v_in] copies is bipartite,
    and the repeated [c_v/2]-matchings are König color classes in
    disguise.  The implementation makes the connection concrete:

    + pad the graph to a [Δ]-regular bipartite multigraph (equalize
      side sizes with virtual nodes, then join under-full nodes with
      dummy edges);
    + extract a perfect matching by max-flow ([Δ] times) — each
      matching drops every degree by one, so regularity is preserved
      and Hall's condition keeps the next matching feasible;
    + color the real edges of the [i]-th matching with color [i].

    Compare {!Vizing} ([Δ+1] on simple graphs) and {!Shannon}
    ([3Δ/2] on general multigraphs): bipartiteness buys exactness. *)

(** [sides g] is [Some side] with a 2-coloring of the nodes if [g] is
    bipartite (isolated nodes go to side [false]), [None] otherwise
    (including any self-loop). *)
val sides : Mgraph.Multigraph.t -> bool array option

(** [color ?pool g] — complete unit-capacity coloring with exactly
    [max_degree g] colors (0 colors for an edgeless graph).  [pool]
    parallelizes the per-matching flow solves across connected
    components (see {!Netflow.Bmatching.solve_max}); the coloring is
    bit-identical at any pool size.
    @raise Invalid_argument if [g] is not bipartite. *)
val color : ?pool:Exec.pool -> Mgraph.Multigraph.t -> Edge_coloring.t
