(** Capacitated partial edge colorings.

    A coloring state tracks, for a loop-free multigraph [g] and a
    per-node capacity [c_v], a partial assignment of palette colors to
    edges under the invariant [E_c(v) <= c_v] for every node [v] and
    color [c] — the paper's notion of a valid migration coloring, where
    each color class is one round and [E_c(v)] is the number of
    transfers disk [v] performs in round [c] (Section III).

    Classic edge coloring is the special case [c_v = 1].

    All mutating operations maintain the invariant and raise
    [Invalid_argument] on violations, so algorithm bugs surface at the
    faulty operation rather than in a corrupted result. *)

type t

(** [create g ~cap ~colors] starts with all edges uncolored and a
    palette of [colors] colors named [0 .. colors-1].
    @raise Invalid_argument if [g] has a self-loop, or some
    [cap v <= 0]. *)
val create : Mgraph.Multigraph.t -> cap:(int -> int) -> colors:int -> t

val graph : t -> Mgraph.Multigraph.t
val cap : t -> int -> int
val n_colors : t -> int

(** Extends the palette by one color; returns the new color. *)
val add_color : t -> int

val color_of : t -> int -> int option

(** [assign t e c] colors edge [e] with [c].
    @raise Invalid_argument if [e] is already colored, [c] is not in
    the palette, or the assignment would overflow a capacity. *)
val assign : t -> int -> int -> unit

(** [unassign t e] removes [e]'s color.
    @raise Invalid_argument if [e] is uncolored. *)
val unassign : t -> int -> unit

(** [count t v c] is [E_c(v)], the number of [c]-colored edges at [v]. *)
val count : t -> int -> int -> int

(** [missing t v c] iff [E_c(v) < c_v] (the paper's Definition 5.1). *)
val missing : t -> int -> int -> bool

(** [strongly_missing t v c] iff [E_c(v) <= c_v - 2]. *)
val strongly_missing : t -> int -> int -> bool

(** [lightly_missing t v c] iff [E_c(v) = c_v - 1]. *)
val lightly_missing : t -> int -> int -> bool

(** Smallest color missing at both endpoints of edge [e], if any. *)
val common_missing : t -> int -> int option

(** All palette colors missing at [v], ascending. *)
val missing_colors : t -> int -> int list

(** Smallest missing color at [v]; a valid state with palette
    [>= ceil(d_v / c_v)]... may still have none if the node is
    saturated in every color. *)
val first_missing : t -> int -> int option

val n_uncolored : t -> int
val uncolored : t -> int list
val is_complete : t -> bool

(** Edges of each color class, indexed by color. *)
val classes : t -> int list array

(** Edges colored [c] incident to [v]. *)
val incident_with_color : t -> int -> int -> int list

(** First edge colored [c] incident to [v], in canonical incidence
    order; [-1] if none.  The allocation-free hot-kernel counterpart
    of {!incident_with_color}. *)
val find_incident_with_color : t -> int -> int -> int

(** The live per-edge color array ([-1] = uncolored).  Hot kernels
    read it directly; writing it outside {!assign}/{!unassign} would
    corrupt the per-node counts. *)
val raw_colors : t -> int array

(** Re-checks every invariant from scratch; [Ok ()] or a description
    of the first violation.  Meant for tests and post-run audits. *)
val validate : t -> (unit, string) result

val copy : t -> t

(** [restore ~snapshot t] rolls [t] back to the state captured by
    [snapshot = copy t] earlier.  Both must stem from the same graph.
    Used to make speculative multi-step recolorings transactional. *)
val restore : snapshot:t -> t -> unit
