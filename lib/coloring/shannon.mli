(** Multigraph edge coloring within Shannon's bound.

    Shannon's theorem: any loop-free multigraph can be edge-colored
    with at most [floor(3Δ/2)] colors.  This is what Saia's
    1.5-approximation (the paper's main baseline, Section I) applies
    after splitting nodes, and the homogeneous [c_v = 1] migration
    baseline of Hall et al.

    The implementation is greedy coloring with capacitated Kempe-walk
    repair ({!Recolor}), starting from a palette of [Δ] and escalating
    one color at a time only when an edge survives every repair
    attempt.  The palette never needs to pass [floor(3Δ/2)] in theory;
    the test suite asserts the bound holds on randomized instances and
    {!last_palette} exposes the achieved size. *)

(** Shannon's bound [floor(3Δ/2)] for [g] (at least 1 when [g] has an
    edge). *)
val bound : Mgraph.Multigraph.t -> int

(** [color ?rng g] is a complete unit-capacity coloring of [g].
    @raise Invalid_argument if [g] has a self-loop. *)
val color : ?rng:Random.State.t -> Mgraph.Multigraph.t -> Edge_coloring.t
