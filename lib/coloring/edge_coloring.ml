module Multigraph = Mgraph.Multigraph
module Vec = Mgraph.Vec

type t = {
  g : Multigraph.t;
  caps : int array;
  color : int array;            (* per edge; -1 = uncolored *)
  counts : int Vec.t array;     (* per node, indexed by color *)
  mutable colors : int;
  mutable n_uncolored : int;
}

let create g ~cap ~colors =
  if colors < 0 then invalid_arg "Edge_coloring.create: negative palette";
  let n = Multigraph.n_nodes g in
  Multigraph.iter_edges g (fun { Multigraph.u; v; _ } ->
      if u = v then invalid_arg "Edge_coloring.create: graph has a self-loop");
  let caps =
    Array.init n (fun v ->
        let c = cap v in
        if c <= 0 then invalid_arg "Edge_coloring.create: capacity must be positive";
        c)
  in
  {
    g;
    caps;
    color = Array.make (Multigraph.n_edges g) (-1);
    counts = Array.init n (fun _ -> Vec.make ~dummy:0 colors 0);
    colors;
    n_uncolored = Multigraph.n_edges g;
  }

let graph t = t.g
let cap t v = t.caps.(v)
let n_colors t = t.colors

let add_color t =
  let c = t.colors in
  t.colors <- t.colors + 1;
  Array.iter (fun counts -> ignore (Vec.push counts 0)) t.counts;
  c

let check_edge t e =
  if e < 0 || e >= Array.length t.color then invalid_arg "Edge_coloring: bad edge"

let check_color t c =
  if c < 0 || c >= t.colors then invalid_arg "Edge_coloring: color not in palette"

let color_of t e =
  check_edge t e;
  if t.color.(e) < 0 then None else Some t.color.(e)

let count t v c =
  check_color t c;
  Vec.get t.counts.(v) c

let missing t v c = count t v c < t.caps.(v)
let strongly_missing t v c = count t v c <= t.caps.(v) - 2
let lightly_missing t v c = count t v c = t.caps.(v) - 1

let bump t v c d = Vec.set t.counts.(v) c (Vec.get t.counts.(v) c + d)

let assign t e c =
  check_edge t e;
  check_color t c;
  if t.color.(e) >= 0 then invalid_arg "Edge_coloring.assign: edge already colored";
  let u, v = Multigraph.endpoints t.g e in
  if not (missing t u c) then
    invalid_arg "Edge_coloring.assign: capacity overflow at first endpoint";
  if not (missing t v c) then
    invalid_arg "Edge_coloring.assign: capacity overflow at second endpoint";
  t.color.(e) <- c;
  bump t u c 1;
  bump t v c 1;
  t.n_uncolored <- t.n_uncolored - 1

let unassign t e =
  check_edge t e;
  let c = t.color.(e) in
  if c < 0 then invalid_arg "Edge_coloring.unassign: edge not colored";
  let u, v = Multigraph.endpoints t.g e in
  t.color.(e) <- -1;
  bump t u c (-1);
  bump t v c (-1);
  t.n_uncolored <- t.n_uncolored + 1

let common_missing t e =
  check_edge t e;
  let u, v = Multigraph.endpoints t.g e in
  let rec loop c =
    if c >= t.colors then None
    else if missing t u c && missing t v c then Some c
    else loop (c + 1)
  in
  loop 0

let missing_colors t v =
  let rec loop c acc =
    if c < 0 then acc
    else loop (c - 1) (if missing t v c then c :: acc else acc)
  in
  loop (t.colors - 1) []

let first_missing t v =
  let rec loop c =
    if c >= t.colors then None else if missing t v c then Some c else loop (c + 1)
  in
  loop 0

let n_uncolored t = t.n_uncolored

let uncolored t =
  let acc = ref [] in
  for e = Array.length t.color - 1 downto 0 do
    if t.color.(e) < 0 then acc := e :: !acc
  done;
  !acc

let is_complete t = t.n_uncolored = 0

let classes t =
  let cls = Array.make t.colors [] in
  for e = Array.length t.color - 1 downto 0 do
    let c = t.color.(e) in
    if c >= 0 then cls.(c) <- e :: cls.(c)
  done;
  cls

let incident_with_color t v c =
  check_color t c;
  List.filter (fun e -> t.color.(e) = c) (Multigraph.incident t.g v)

let raw_colors t = t.color

let find_incident_with_color t v c =
  check_color t c;
  let csr = Multigraph.freeze t.g in
  let stop = Multigraph.Csr.row_stop csr v in
  let rec loop p =
    if p >= stop then -1
    else
      let e = csr.Multigraph.Csr.edge_ids.(p) in
      if t.color.(e) = c then e else loop (p + 1)
  in
  loop (Multigraph.Csr.row_start csr v)

let validate t =
  let n = Multigraph.n_nodes t.g in
  let fresh = Array.init n (fun _ -> Array.make t.colors 0) in
  let bad = ref None in
  Array.iteri
    (fun e c ->
      if c >= t.colors then
        bad := Some (Printf.sprintf "edge %d colored outside palette" e)
      else if c >= 0 then begin
        let u, v = Multigraph.endpoints t.g e in
        fresh.(u).(c) <- fresh.(u).(c) + 1;
        fresh.(v).(c) <- fresh.(v).(c) + 1
      end)
    t.color;
  for v = 0 to n - 1 do
    for c = 0 to t.colors - 1 do
      if fresh.(v).(c) <> Vec.get t.counts.(v) c then
        bad :=
          Some (Printf.sprintf "stale count at node %d color %d" v c)
      else if fresh.(v).(c) > t.caps.(v) then
        bad :=
          Some
            (Printf.sprintf "capacity violated at node %d color %d (%d > %d)" v
               c fresh.(v).(c) t.caps.(v))
    done
  done;
  let counted = Array.fold_left (fun acc c -> if c < 0 then acc + 1 else acc) 0 t.color in
  if counted <> t.n_uncolored then bad := Some "stale uncolored counter";
  match !bad with None -> Ok () | Some msg -> Error msg

let copy t =
  {
    g = t.g;
    caps = Array.copy t.caps;
    color = Array.copy t.color;
    counts = Array.map Vec.copy t.counts;
    colors = t.colors;
    n_uncolored = t.n_uncolored;
  }

let restore ~snapshot t =
  if snapshot.g != t.g then
    invalid_arg "Edge_coloring.restore: snapshot of a different graph";
  Array.blit snapshot.color 0 t.color 0 (Array.length t.color);
  Array.iteri (fun v counts -> t.counts.(v) <- Vec.copy counts) snapshot.counts;
  t.colors <- snapshot.colors;
  t.n_uncolored <- snapshot.n_uncolored
