(** Vizing edge coloring of simple graphs (Misra–Gries).

    Colors any simple graph with at most [Δ + 1] colors in
    O(V E) time.  This is the Phase-2 workhorse of the paper's general
    algorithm (Section V-C3): after splitting each node into [c_v]
    copies, the residual simple graph [G0] is Vizing-colored and the
    copies are contracted back. *)

(** [color g] is a complete coloring of the simple graph [g] (all
    capacities 1) using at most [max_degree g + 1] colors.
    @raise Invalid_argument if [g] is not simple. *)
val color : Mgraph.Multigraph.t -> Edge_coloring.t

(** Number of times the defensive fallback path (palette extension
    beyond [Δ + 1]) fired during the last {!color} call.  Always [0]
    if the Misra–Gries invariants hold; exposed so the test suite can
    assert exactly that. *)
val last_fallbacks : unit -> int
