module Multigraph = Mgraph.Multigraph
module Csr = Mgraph.Multigraph.Csr
module Ec = Edge_coloring

(* Atomic: Vizing runs inside parallel Pipeline component solves, so
   concurrent colorings may bump this concurrently.  The value is a
   per-[color]-call diagnostic; tests that read it run sequentially. *)
let fallbacks = Atomic.make 0
let last_fallbacks () = Atomic.get fallbacks

(* With palette Δ+1 and unit capacities every node always has a free
   color. *)
let free t v =
  match Ec.first_missing t v with
  | Some c -> c
  | None -> invalid_arg "Vizing: node saturated in every color"

(* Per-run scratch: the fan as parallel arrays (entry 0 is the
   uncolored edge's endpoint with no fan edge), the cd-path as edge /
   new-color arrays, and an epoch-stamped fan-membership mark.  One
   record per [color] call, reused across every edge. *)
type scratch = {
  fan_w : int array;  (* fan vertices *)
  fan_e : int array;  (* fan edges; -1 for entry 0 *)
  in_fan : int array;  (* per node, epoch stamp *)
  path_e : int array;  (* cd-path edges *)
  path_c : int array;  (* color each path edge flips to *)
  mutable epoch : int;
}

let make_scratch g =
  let n = Multigraph.n_nodes g and m = Multigraph.n_edges g in
  {
    fan_w = Array.make (max n 1) 0;
    fan_e = Array.make (max n 1) 0;
    in_fan = Array.make (max n 1) 0;
    path_e = Array.make (max m 1) 0;
    path_c = Array.make (max m 1) 0;
    epoch = 0;
  }

(* Maximal fan of [u] starting at [x]: a sequence of distinct neighbors
   [f0 = x, f1, ...] such that edge (u, f_{i+1}) is colored and its
   color is missing at [f_i].  Fills [sc.fan_*], returns the length. *)
let build_fan t sc (csr : Csr.t) u x =
  sc.epoch <- sc.epoch + 1;
  sc.in_fan.(x) <- sc.epoch;
  sc.fan_w.(0) <- x;
  sc.fan_e.(0) <- -1;
  let colors = Ec.raw_colors t in
  let len = ref 1 in
  let growing = ref true in
  let stop = Csr.row_stop csr u in
  while !growing do
    (* first incident edge (canonical order) extending the fan *)
    let last = sc.fan_w.(!len - 1) in
    let p = ref (Csr.row_start csr u) in
    let found = ref (-1) in
    while !found < 0 && !p < stop do
      let e = csr.Csr.edge_ids.(!p) in
      let c = colors.(e) in
      (if c >= 0 then
         let w = csr.Csr.neighbors.(!p) in
         if sc.in_fan.(w) <> sc.epoch && Ec.missing t last c then found := e);
      incr p
    done;
    if !found < 0 then growing := false
    else begin
      let e = !found in
      let w = csr.Csr.neighbors.(!p - 1) in
      sc.in_fan.(w) <- sc.epoch;
      sc.fan_w.(!len) <- w;
      sc.fan_e.(!len) <- e;
      incr len
    end
  done;
  !len

(* Rotate the fan prefix [f0 .. fj]: shift each fan edge's color one
   step towards [u]'s uncolored edge, leaving (u, fj) uncolored.
   Returns the edge left uncolored. *)
let rotate t sc e0 j =
  let colors = Ec.raw_colors t in
  let prev = ref e0 in
  for i = 1 to j do
    let e = sc.fan_e.(i) in
    let c = colors.(e) in
    Ec.unassign t e;
    Ec.assign t !prev c;
    prev := e
  done;
  !prev

(* Flip the cd-path starting at [u]: [c] is free at [u], so the
   component of [u] in the {c, d}-subgraph is a path beginning with a
   d-edge (if any).  Swapping colors along it frees [d] at [u]. *)
let invert_cd_path t sc u c d =
  let g = Ec.graph t in
  let len = ref 0 in
  let v = ref u and want = ref d in
  let walking = ref true in
  while !walking do
    let e = Ec.find_incident_with_color t !v !want in
    if e < 0 then walking := false
    else begin
      let flip = if !want = c then d else c in
      sc.path_e.(!len) <- e;
      sc.path_c.(!len) <- flip;
      incr len;
      v := Multigraph.other_endpoint g e !v;
      want := flip
    end
  done;
  for i = !len - 1 downto 0 do
    Ec.unassign t sc.path_e.(i)
  done;
  for i = !len - 1 downto 0 do
    Ec.assign t sc.path_e.(i) sc.path_c.(i)
  done

(* Longest prefix of the fan that is still a fan under the current
   coloring (colors may have changed after the path inversion). *)
let valid_prefix t sc fan_len =
  let colors = Ec.raw_colors t in
  let k = ref 1 in
  let ok = ref true in
  while !ok && !k < fan_len do
    let c = colors.(sc.fan_e.(!k)) in
    if c >= 0 && Ec.missing t sc.fan_w.(!k - 1) c then incr k else ok := false
  done;
  !k

let color_edge t sc csr u e0 =
  let g = Ec.graph t in
  let x = Multigraph.other_endpoint g e0 u in
  let fan_len = build_fan t sc csr u x in
  let last = sc.fan_w.(fan_len - 1) in
  let c = free t u in
  let d = free t last in
  if Ec.missing t u d then begin
    (* rotate the whole fan and finish with d *)
    let e_last = rotate t sc e0 (fan_len - 1) in
    Ec.assign t e_last d
  end
  else begin
    invert_cd_path t sc u c d;
    (* after inversion d is free at u; find a fan vertex where d is
       free and whose prefix survived the recoloring *)
    let prefix_len = valid_prefix t sc fan_len in
    let s = ref 0 in
    while !s < prefix_len && not (Ec.missing t sc.fan_w.(!s) d) do
      incr s
    done;
    if !s < prefix_len then begin
      let e_last = rotate t sc e0 !s in
      Ec.assign t e_last d
    end
    else begin
      (* Should be unreachable by the Misra–Gries invariant; recover
         soundly rather than crash. *)
      Atomic.incr fallbacks;
      if not (Recolor.try_color_edge t e0) then begin
        let c' = Ec.add_color t in
        Ec.assign t e0 c'
      end
    end
  end

let color g =
  if not (Multigraph.is_simple g) then
    invalid_arg "Vizing.color: graph must be simple";
  Atomic.set fallbacks 0;
  let palette = Multigraph.max_degree g + 1 in
  let t = Ec.create g ~cap:(fun _ -> 1) ~colors:(max 1 palette) in
  let sc = make_scratch g in
  let csr = Multigraph.freeze g in
  Multigraph.iter_edges g (fun { Multigraph.id; u; _ } ->
      color_edge t sc csr u id);
  t
