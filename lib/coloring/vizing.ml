module Multigraph = Mgraph.Multigraph
module Ec = Edge_coloring

(* Atomic: Vizing runs inside parallel Pipeline component solves, so
   concurrent colorings may bump this concurrently.  The value is a
   per-[color]-call diagnostic; tests that read it run sequentially. *)
let fallbacks = Atomic.make 0
let last_fallbacks () = Atomic.get fallbacks

(* With palette Δ+1 and unit capacities every node always has a free
   color. *)
let free t v =
  match Ec.first_missing t v with
  | Some c -> c
  | None -> invalid_arg "Vizing: node saturated in every color"

(* The unique edge at [v] colored [c] (unit capacities), if any. *)
let edge_with_color t v c =
  match Ec.incident_with_color t v c with
  | [] -> None
  | e :: _ -> Some e

(* Maximal fan of [u] starting at [x]: a sequence of distinct neighbors
   [f0 = x, f1, ...] such that edge (u, f_{i+1}) is colored and its
   color is missing at [f_i]. *)
let build_fan t u x =
  let g = Ec.graph t in
  let in_fan = Hashtbl.create 8 in
  Hashtbl.add in_fan x ();
  let rec extend last acc =
    let next =
      List.find_map
        (fun e ->
          match Ec.color_of t e with
          | None -> None
          | Some c ->
              let w = Multigraph.other_endpoint g e u in
              if (not (Hashtbl.mem in_fan w)) && Ec.missing t last c then
                Some (w, e)
              else None)
        (Multigraph.incident g u)
    in
    match next with
    | None -> List.rev acc
    | Some (w, e) ->
        Hashtbl.add in_fan w ();
        extend w ((w, Some e) :: acc)
  in
  extend x [ (x, None) ]

(* Rotate the fan prefix [f0 .. fj]: shift each fan edge's color one
   step towards [u]'s uncolored edge, leaving (u, fj) uncolored. *)
let rotate t e0 fan_prefix =
  let rec loop prev_edge = function
    | [] -> prev_edge
    | (_, Some e) :: rest ->
        let c = Option.get (Ec.color_of t e) in
        Ec.unassign t e;
        Ec.assign t prev_edge c;
        loop e rest
    | (_, None) :: _ -> invalid_arg "Vizing.rotate: uncolored fan edge"
  in
  match fan_prefix with
  | [] -> e0
  | (_, None) :: rest -> loop e0 rest
  | _ -> invalid_arg "Vizing.rotate: fan must start at the uncolored edge"

(* Flip the cd-path starting at [u]: [c] is free at [u], so the
   component of [u] in the {c, d}-subgraph is a path beginning with a
   d-edge (if any).  Swapping colors along it frees [d] at [u]. *)
let invert_cd_path t u c d =
  let g = Ec.graph t in
  let rec collect v want acc =
    match edge_with_color t v want with
    | None -> acc
    | Some e ->
        let w = Multigraph.other_endpoint g e v in
        collect w (if want = c then d else c) ((e, if want = c then d else c) :: acc)
  in
  let path = collect u d [] in
  List.iter (fun (e, _) -> Ec.unassign t e) path;
  List.iter (fun (e, c') -> Ec.assign t e c') path

(* Longest prefix of [fan] that is still a fan under the current
   coloring (colors may have changed after the path inversion). *)
let valid_prefix t fan =
  let rec loop acc last = function
    | [] -> List.rev acc
    | ((w, Some e) as entry) :: rest -> (
        match Ec.color_of t e with
        | Some c when Ec.missing t last c -> loop (entry :: acc) w rest
        | _ -> List.rev acc)
    | (_, None) :: _ -> List.rev acc
  in
  match fan with
  | [] -> []
  | ((x, None) as first) :: rest -> loop [ first ] x rest
  | _ -> invalid_arg "Vizing.valid_prefix"

let color_edge t u e0 =
  let g = Ec.graph t in
  let x = Multigraph.other_endpoint g e0 u in
  let fan = build_fan t u x in
  let last, _ = List.nth fan (List.length fan - 1) in
  let c = free t u in
  let d = free t last in
  if Ec.missing t u d then begin
    (* rotate the whole fan and finish with d *)
    let e_last = rotate t e0 fan in
    Ec.assign t e_last d
  end
  else begin
    invert_cd_path t u c d;
    (* after inversion d is free at u; find a fan vertex where d is
       free and whose prefix survived the recoloring *)
    let prefix = valid_prefix t fan in
    let rec split acc = function
      | [] -> None
      | ((w, _) as entry) :: rest ->
          if Ec.missing t w d then Some (List.rev (entry :: acc)) else split (entry :: acc) rest
    in
    match split [] prefix with
    | Some sub_fan ->
        let e_last = rotate t e0 sub_fan in
        Ec.assign t e_last d
    | None ->
        (* Should be unreachable by the Misra–Gries invariant; recover
           soundly rather than crash. *)
        Atomic.incr fallbacks;
        if not (Recolor.try_color_edge t e0) then begin
          let c' = Ec.add_color t in
          Ec.assign t e0 c'
        end
  end

let color g =
  if not (Multigraph.is_simple g) then
    invalid_arg "Vizing.color: graph must be simple";
  Atomic.set fallbacks 0;
  let palette = Multigraph.max_degree g + 1 in
  let t = Ec.create g ~cap:(fun _ -> 1) ~colors:(max 1 palette) in
  Multigraph.iter_edges g (fun { Multigraph.id; u; _ } -> color_edge t u id);
  t
