(** Named random-instance families for the adversarial harness.

    Each family is a seeded generator of migration instances designed
    to stress one regime of the planners:

    - ["uniform"] — G(n, m) multigraph, mixed constraints: the
      unstructured baseline.
    - ["powerlaw"] — preferential-attachment degrees, mixed
      constraints: hot-spot disks with [d_v >> c_v].
    - ["even"] — all-even constraints: Theorem 4.1 territory, where
      ["even-opt"] must tie [LB1] exactly.
    - ["unit"] — [c_v = 1] everywhere: multigraph chromatic index, the
      NP-hard core and Saia/Shannon territory.
    - ["parallel"] — few disks, heavy parallel-edge multiplicities:
      Figure 2 style, maximal stress on orbit moves.
    - ["bottleneck"] — an odd clique of [c_v = 1] disks stacked with
      parallel edges plus high-capacity satellite leaves: [Γ] strictly
      exceeds [LB1] by construction, so the combined bound and the
      {!Migration.Lower_bounds.lb2_witness} subset are load-bearing.
    - ["multipool"] — disjoint pools with clashing capacity styles
      (all-even, unit, mixed): exercises decompose/merge and
      per-component solver selection.
    - ["huge"] — perf-scale all-even [G(n, m)] with [~8*size^2] edges
      ([size] is quadratic here so fuzz-range sizes stay cheap while
      bench sizes reach [1e5..1e6] edges): the flat-core allocation
      and wall-time regime of experiment E11.
    - ["tenants"] — tenant-tagged [G(n, m)] with skewed group
      ownership and priority weights 1..8: the SLA-objective regime
      ({!Migration.Objective}), differential fuel for the reordering
      post-pass and {!Migration.Certify.check_sla}.

    All generators are deterministic functions of an explicit RNG
    state; {!instance} fixes the standard seeding so a printed
    [(family, seed, size)] triple is a complete reproducer. *)

type family = {
  name : string;
  doc : string;  (** one line, for CLI listings *)
  build : Random.State.t -> size:int -> Migration.Instance.t;
}

(** All families, in the documented order. *)
val all : family list

val names : string list

val family_of_string : string -> family option

(** [instance fam ~seed ~size] builds the family's instance for a
    reproducer triple: the RNG is derived from [seed] and [fam.name]
    only.  [size] scales disk/item counts; values in [4 .. 64] are the
    tested range, and anything below is clamped up to the family's
    minimum viable size. *)
val instance : family -> seed:int -> size:int -> Migration.Instance.t
