(** The differential fuzz loop.

    For every generated instance, run each applicable registered
    solver through {!Migration.Pipeline}, certify the result with
    {!Migration.Certify} (independent re-check plus the solver's
    stated guarantee), and cross-check solvers against each other:

    - on small instances, {!Migration.Exact} provides ground truth —
      no solver may use fewer rounds than the proven optimum, and the
      optimum itself must certify;
    - ["even-opt"] must tie [LB1] exactly on all-even instances (part
      of its certified guarantee);
    - the forwarding planner must validate and never use more rounds
      than the direct schedule it starts from.

    A failing case is shrunk with {!Migration.Shrink} against the same
    deterministic check, so the reported reproducer is locally minimal
    and regenerable from its [(family, seed, size)] triple.

    Instrumentation ({!Migration.Instr}): per-solver wall time under
    ["fuzz.solve.<solver>"], instance/run/violation counters under
    ["fuzz.*"], and the per-solver certified-gap totals under
    ["fuzz.gap.<solver>"]. *)

type failure = {
  family : string;
  seed : int;  (** derived per-instance seed: regenerate with
                   [Families.instance ~seed ~size] *)
  size : int;
  solver : string;
  messages : string list;  (** rendered violations, first one primary *)
  instance : Migration.Instance.t;
  shrunk : Migration.Instance.t;
}

(** Gap histogram of one solver over one family; [gap] is
    [rounds - lb], the certified optimality gap. *)
type solver_stats = {
  solver : string;
  runs : int;
  certified : int;
  max_gap : int;
  gaps : (int * int) list;  (** (gap, occurrences), ascending by gap *)
}

type family_report = {
  family : string;
  instances : int;
  per_solver : solver_stats list;  (** registry order, applicable only *)
}

type report = {
  family_reports : family_report list;
  total_instances : int;
  total_runs : int;
  failures : failure list;
}

(** [derived_seed ~base ~index] is the per-instance seed the loop uses
    — exposed so a printed reproducer can also be regenerated through
    the CLI's [generate --family]. *)
val derived_seed : base:int -> index:int -> int

(** [run ~families ~count ~seed ()] fuzzes [count] instances per
    family.  [size] (default 12) scales the instances;
    [solvers] (default: every registered solver) restricts the
    differential set; [exact_budget] (default [300_000] nodes) bounds
    the ground-truth search, which only runs on instances with at most
    [exact_max_items] (default 10) items.

    [jobs] (default [1]) sets the {!Exec} worker-domain budget:
    instance generation and the (instance x solver) cells run on the
    pool, while the failure merge and the shrinker stay sequential.
    {b Determinism contract}: the report is byte-identical for every
    [jobs] value — every cell derives its RNGs from its own
    [(seed, solver)] pair, cells share no mutable state, and tallies,
    failure ordering, and {!Migration.Instr} accounting happen in the
    sequential merge in the same (family, index, solver) order the
    all-sequential loop used.  Deterministic for fixed arguments. *)
val run :
  ?size:int ->
  ?solvers:string list ->
  ?exact_budget:int ->
  ?exact_max_items:int ->
  ?jobs:int ->
  families:Families.family list ->
  count:int ->
  seed:int ->
  unit ->
  report

(** {1 Fault-injection fuzzing}

    Instead of certifying {e plans}, drive {!Migration.Engine.run} over
    generated instances under an injected fault policy and certify
    every {e execution} with {!Migration.Certify.certify_execution}:
    exactly-once completion modulo the quarantine, per-round loads
    under the degraded capacities in force, no traffic through crashed
    disks, executed rounds within the certified replan budget. *)

type engine_failure = {
  ef_family : string;
  ef_seed : int;   (** regenerate with [Families.instance ~seed ~size] *)
  ef_size : int;
  ef_messages : string list;
}

type engine_totals = {
  eng_instances : int;
  eng_completed : int;     (** items completed across all executions *)
  eng_quarantined : int;
  eng_replans : int;
  eng_retries : int;
  eng_rounds : int;        (** executed (non-idle) rounds *)
  eng_idle_rounds : int;
}

type engine_report = {
  eng_per_family : (string * engine_totals) list;  (** input order *)
  eng_totals : engine_totals;
  eng_failures : engine_failure list;
}

(** [run_engine ~policy ~families ~count ~seed ()] runs the engine on
    [count] instances per family.  [policy ~inst ~seed] builds the
    fault policy for one cell — pass
    [Storsim.Fault.engine_policy]-based closures from callers that
    link the simulation layer (this library deliberately does not).
    The constructor must be deterministic in [(inst, seed)].

    [jobs] parallelizes at cell granularity on an {!Exec} pool (each
    cell runs the engine with its internal [jobs = 1]); the merge is
    sequential in (family, index) submission order, so the report is
    byte-identical for every [jobs] value. *)
val run_engine :
  ?size:int ->
  ?jobs:int ->
  policy:(inst:Migration.Instance.t -> seed:int -> Migration.Engine.policy) ->
  families:Families.family list ->
  count:int ->
  seed:int ->
  unit ->
  engine_report

(** {1 Service soak fuzzing}

    One level up again from {!run_engine}: drive the whole streaming
    {e service} — admission, epoching, warm re-planning, faulted
    execution, patch repairs — over generated instances and certify
    the concatenated flight log with
    {!Migration.Certify.certify_service}.  The driver comes in as a
    closure (build it from [Service.soak]) because the service library
    sits above this one in the layering DAG. *)

(** Accumulated run statistics, as reported back by the driver. *)
type service_stats = {
  ss_epochs : int;
  ss_rounds : int;      (** global rounds, idle included *)
  ss_transfers : int;
  ss_completed : int;   (** requests completed *)
  ss_abandoned : int;
  ss_rejected : int;
}

type service_failure = {
  sf_family : string;
  sf_seed : int;   (** regenerate with [Families.instance ~seed ~size] *)
  sf_size : int;
  sf_messages : string list;
  sf_instance : Migration.Instance.t;
  sf_shrunk : Migration.Instance.t;
      (** delta-debugged against the same driver *)
}

type service_report = {
  svc_per_family : (string * service_stats) list;  (** input order *)
  svc_totals : service_stats;
  svc_instances : int;
  svc_failures : service_failure list;
}

(** [run_service ~drive ~families ~count ~seed ()] soaks the service
    on [count] instances per family.  [drive ~inst ~seed] runs one
    full service loop and returns its stats, or the violation messages
    on a certification/accounting failure; it must be deterministic in
    [(inst, seed)].  A failing instance is shrunk with
    {!Migration.Shrink} against [Result.is_error (drive ...)], so the
    reproducer in [sf_shrunk] is locally minimal.

    [jobs] parallelizes at cell granularity on an {!Exec} pool; the
    merge and the shrinker stay sequential in (family, index)
    submission order, so the report is byte-identical for every [jobs]
    value. *)
val run_service :
  ?size:int ->
  ?jobs:int ->
  drive:
    (inst:Migration.Instance.t ->
    seed:int ->
    (service_stats, string list) result) ->
  families:Families.family list ->
  count:int ->
  seed:int ->
  unit ->
  service_report

(** {1 Distributed crash-recovery soak}

    One level sideways from {!run_service}: drive the {e distributed}
    coordinator/worker runner over generated instances with scripted
    random kills, resume after every interruption, and require the
    converged flight log to certify and to byte-match the in-process
    engine's.  The driver comes in as a closure (build it from
    [Distproto.Runner.run]) because the distributed control plane
    links process machinery outside this library's layering cone. *)

type dist_stats = {
  dd_runs : int;       (** run invocations, resumes included *)
  dd_rounds : int;     (** rounds committed *)
  dd_transfers : int;  (** items migrated *)
  dd_kills : int;      (** scripted kills injected *)
  dd_resumes : int;    (** coordinator resumes needed to converge *)
}

type dist_failure = {
  df_family : string;
  df_seed : int;  (** regenerate with [Families.instance ~seed ~size] *)
  df_size : int;
  df_messages : string list;
  df_instance : Migration.Instance.t;
  df_shrunk : Migration.Instance.t;
      (** delta-debugged against the same driver *)
}

type dist_report = {
  dist_per_family : (string * dist_stats) list;  (** input order *)
  dist_totals : dist_stats;
  dist_instances : int;
  dist_failures : dist_failure list;
}

(** [run_distributed ~drive ~families ~count ~seed ()] soaks the
    distributed runner on [count] instances per family ([size]
    defaults to 8 — each cell forks a process tree, so cells are
    smaller than the other loops').  [drive ~inst ~seed] runs one
    kill/resume/converge cycle and must be deterministic in
    [(inst, seed)]; a failing instance is shrunk against
    [Result.is_error (drive ...)].  Strictly sequential — no [jobs]
    knob — because the driver forks, which is unsafe with live worker
    domains. *)
val run_distributed :
  ?size:int ->
  drive:
    (inst:Migration.Instance.t ->
    seed:int ->
    (dist_stats, string list) result) ->
  families:Families.family list ->
  count:int ->
  seed:int ->
  unit ->
  dist_report
