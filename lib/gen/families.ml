module Multigraph = Mgraph.Multigraph
module Graph_gen = Mgraph.Graph_gen
module Instance = Migration.Instance

type family = {
  name : string;
  doc : string;
  build : Random.State.t -> size:int -> Instance.t;
}

let mixed_menu = [ 1; 2; 3; 4; 5 ]

let uniform rng ~size =
  let n = max 4 size in
  let m = 3 * n in
  Instance.random_caps rng (Graph_gen.gnm rng ~n ~m) ~choices:mixed_menu

let powerlaw rng ~size =
  let n = max 4 size in
  let m = 3 * n in
  Instance.random_caps rng (Graph_gen.power_law rng ~n ~m) ~choices:mixed_menu

let even rng ~size =
  let n = max 4 size in
  let m = 3 * n in
  Instance.random_caps rng (Graph_gen.gnm rng ~n ~m) ~choices:[ 2; 4; 6 ]

let unit rng ~size =
  let n = max 4 size in
  (* sparser than the mixed families: with c_v = 1 every extra edge is
     a whole extra round on its endpoints *)
  let m = 2 * n in
  Instance.uniform (Graph_gen.gnm rng ~n ~m) ~cap:1

let parallel rng ~size =
  let k = 3 + Random.State.int rng 3 in
  let g = Multigraph.create ~n:k () in
  let target = max 6 (2 * size) in
  let added = ref 0 in
  while !added < target do
    let u = Random.State.int rng k in
    let v = Random.State.int rng k in
    if u <> v then begin
      (* a burst of parallel copies of the same pair *)
      let burst = min (target - !added) (1 + Random.State.int rng 6) in
      for _ = 1 to burst do
        ignore (Multigraph.add_edge g u v)
      done;
      added := !added + burst
    end
  done;
  Instance.random_caps rng g ~choices:[ 1; 2; 3 ]

(* Odd clique of unit-capacity disks with every pair stacked [q] deep:
   LB1 = 2kq but Gamma = (2k+1)q (cap sum 2k+1 gives only k edge slots
   per round), so the subset bound strictly binds.  High-capacity
   leaves hang off the clique to keep the witness a proper subset. *)
let bottleneck rng ~size =
  let k = 1 + Random.State.int rng 2 in
  let core = (2 * k) + 1 in
  let q = max 1 (size / core) in
  let leaves = 1 + Random.State.int rng (max 1 (size / 4)) in
  let g = Multigraph.create ~n:(core + leaves) () in
  for u = 0 to core - 1 do
    for v = u + 1 to core - 1 do
      for _ = 1 to q do
        ignore (Multigraph.add_edge g u v)
      done
    done
  done;
  for l = 0 to leaves - 1 do
    (* spread leaves over the clique so no core disk's LB1 term
       catches up with the subset bound *)
    ignore (Multigraph.add_edge g (l mod core) (core + l))
  done;
  let caps =
    Array.init (core + leaves) (fun v ->
        if v < core then 1 else 4 + (2 * Random.State.int rng 3))
  in
  Instance.create g ~caps

let multipool rng ~size =
  let pool = max 4 (size / 2) in
  let specs =
    [
      ((fun rng -> Graph_gen.gnm rng ~n:pool ~m:(2 * pool)), [ 2; 4 ]);
      ((fun rng -> Graph_gen.gnm rng ~n:pool ~m:(2 * pool)), [ 1 ]);
      ((fun rng -> Graph_gen.power_law rng ~n:pool ~m:(2 * pool)), mixed_menu);
    ]
  in
  let parts =
    List.map
      (fun (build, menu) -> Instance.random_caps rng (build rng) ~choices:menu)
      specs
  in
  let n = List.fold_left (fun acc p -> acc + Instance.n_disks p) 0 parts in
  let g = Multigraph.create ~n () in
  let caps = Array.make n 1 in
  let off = ref 0 in
  List.iter
    (fun p ->
      let base = !off in
      Multigraph.iter_edges (Instance.graph p) (fun { Multigraph.u; v; _ } ->
          ignore (Multigraph.add_edge g (base + u) (base + v)));
      Array.iteri (fun v c -> caps.(base + v) <- c) (Instance.caps p);
      off := base + Instance.n_disks p)
    parts;
  Instance.create g ~caps

(* Perf-scale family: [size] is interpreted quadratically so that the
   fuzz-range sizes stay cheap (size 10 -> 800 edges) while bench
   sizes reach the flat-core targets (size 112 -> ~1e5 edges,
   size 354 -> ~1e6; experiment E11).  All-even capacities keep every
   solver, even-opt included, applicable. *)
let huge rng ~size =
  let n = max 16 (size * size) in
  let m = 8 * n in
  Instance.random_caps rng (Graph_gen.gnm rng ~n ~m) ~choices:[ 2; 4 ]

(* SLA regime: a mixed G(n,m) whose edges carry tenant/group tags.
   Ownership is skewed (a min-of-two draw: a few big tenants own most
   items) and priority weights are drawn 1..8, so weighted-completion
   planners and the certifier's inversion check both get exercised. *)
let tenants rng ~size =
  let n = max 4 size in
  let m = 3 * n in
  let g = Graph_gen.gnm rng ~n ~m in
  let k = 2 + Random.State.int rng 6 in
  let weights = Array.init k (fun _ -> 1 + Random.State.int rng 8) in
  let groups =
    Array.init (Multigraph.n_edges g) (fun _ ->
        let a = Random.State.int rng k and b = Random.State.int rng k in
        min a b)
  in
  let menu = Array.of_list mixed_menu in
  let caps =
    Array.init n (fun _ -> menu.(Random.State.int rng (Array.length menu)))
  in
  Instance.create g ~caps ~groups ~weights

let all =
  [
    { name = "uniform"; doc = "G(n,m) multigraph, mixed constraints"; build = uniform };
    { name = "powerlaw"; doc = "preferential-attachment hot spots"; build = powerlaw };
    { name = "even"; doc = "all-even constraints (Theorem 4.1 regime)"; build = even };
    { name = "unit"; doc = "c_v = 1 everywhere (chromatic index)"; build = unit };
    { name = "parallel"; doc = "few disks, deep parallel-edge stacks"; build = parallel };
    { name = "bottleneck"; doc = "unit-cap odd clique: Gamma > LB1"; build = bottleneck };
    { name = "multipool"; doc = "disjoint pools, clashing cap styles"; build = multipool };
    { name = "huge"; doc = "perf-scale all-even G(n,m): ~8*size^2 edges"; build = huge };
    { name = "tenants"; doc = "tenant-tagged G(n,m): skewed groups, SLA weights"; build = tenants };
  ]

let names = List.map (fun f -> f.name) all
let family_of_string s = List.find_opt (fun f -> f.name = s) all

let instance fam ~seed ~size =
  let rng = Random.State.make [| 0x6e57; Hashtbl.hash fam.name; seed |] in
  fam.build rng ~size
