(** Adversarial instance generation and the differential fuzz loop.

    [Gen] itself is the family surface ({!Families} included
    directly, so callers write [Gen.family_of_string]); the harness
    lives under {!Gen.Fuzz}. *)

include module type of struct
  include Families
end

module Fuzz = Fuzz
