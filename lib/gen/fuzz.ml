module M = Migration

type failure = {
  family : string;
  seed : int;
  size : int;
  solver : string;
  messages : string list;
  instance : M.Instance.t;
  shrunk : M.Instance.t;
}

type solver_stats = {
  solver : string;
  runs : int;
  certified : int;
  max_gap : int;
  gaps : (int * int) list;
}

type family_report = {
  family : string;
  instances : int;
  per_solver : solver_stats list;
}

type report = {
  family_reports : family_report list;
  total_instances : int;
  total_runs : int;
  failures : failure list;
}

let derived_seed ~base ~index = (base * 1000) + index

(* instrumentation cells; per-solver cells register on first use *)
let c_instances = M.Instr.counter "fuzz.instances"
let c_runs = M.Instr.counter "fuzz.runs"
let c_violations = M.Instr.counter "fuzz.violations"
let solve_timer name = M.Instr.timer ("fuzz.solve." ^ name)
let gap_counter name = M.Instr.counter ("fuzz.gap." ^ name)

let run_rng seed name = Random.State.make [| seed; Hashtbl.hash name; 0xf0 |]

(* Deterministic solver run through the pipeline; [None] when the
   solver is unknown or cannot solve this instance. *)
let run_solver name ~seed inst =
  match M.Solver.find name with
  | None -> None
  | Some s ->
      if not (s.M.Solver.can_solve inst) then None
      else
        let rng = run_rng seed name in
        Some
          (M.Instr.time (solve_timer name) (fun () ->
               match M.Pipeline.plan_report ~rng name inst with
               | Some (sched, _) -> sched
               | None -> assert false))

let lb_of ~seed inst =
  M.Lower_bounds.lower_bound ~rng:(run_rng seed "lb") inst

let exact_opt ~budget ~max_items inst =
  if M.Instance.n_items inst > max_items || M.Instance.n_disks inst > 10 then
    None
  else
    match M.Exact.solve ~node_budget:budget inst with
    | M.Exact.Optimal sched -> Some sched
    | M.Exact.Gave_up -> None

(* The deterministic re-checks shrinking minimizes against.  Each
   returns true when the instance still exhibits the failure. *)
let fails_certification name ~seed inst' =
  match run_solver name ~seed inst' with
  | None -> false
  | Some sched ->
      let lb = lb_of ~seed inst' in
      not (M.Certify.ok (M.Certify.check ~lb ~solver:name inst' sched))

let fails_beating_exact name ~seed ~budget ~max_items inst' =
  match run_solver name ~seed inst' with
  | None -> false
  | Some sched -> (
      match exact_opt ~budget ~max_items inst' with
      | None -> false
      | Some opt ->
          M.Schedule.n_rounds sched < M.Schedule.n_rounds opt)

let fails_forwarding ~seed inst' =
  let rng = run_rng seed "forwarding" in
  match M.Forwarding.plan_with_helpers ~rng inst' with
  | exception _ -> true
  | plan, stats ->
      M.Forwarding.validate inst' plan <> Ok ()
      || stats.M.Forwarding.rounds > stats.M.Forwarding.direct_rounds

let shrink ~fails inst =
  if fails inst then M.Shrink.minimize ~fails inst else inst

(* ------------------------------------------------------------------ *)

type tally = {
  mutable t_runs : int;
  mutable t_certified : int;
  mutable t_gaps : (int, int) Hashtbl.t;
}

let tally_gap t gap =
  t.t_runs <- t.t_runs + 1;
  let h = t.t_gaps in
  Hashtbl.replace h gap (1 + Option.value ~default:0 (Hashtbl.find_opt h gap))

let stats_of_tally solver t =
  let gaps =
    Hashtbl.fold (fun g c acc -> (g, c) :: acc) t.t_gaps []
    |> List.sort compare
  in
  {
    solver;
    runs = t.t_runs;
    certified = t.t_certified;
    max_gap = List.fold_left (fun acc (g, _) -> max acc g) 0 gaps;
    gaps;
  }

let run ?(size = 12) ?solvers ?(exact_budget = 300_000) ?(exact_max_items = 10)
    ~families ~count ~seed () =
  let solver_list =
    match solvers with
    | Some l -> l
    | None -> M.Solver.names () @ [ "forwarding" ]
  in
  let failures = ref [] in
  let total_instances = ref 0 and total_runs = ref 0 in
  let fail ~family ~iseed ~solver ~messages ~instance ~shrunk =
    M.Instr.bump c_violations;
    failures :=
      { family; seed = iseed; size; solver; messages; instance; shrunk }
      :: !failures
  in
  let family_reports =
    List.map
      (fun fam ->
        let name = fam.Families.name in
        let tallies = Hashtbl.create 8 in
        let tally s =
          match Hashtbl.find_opt tallies s with
          | Some t -> t
          | None ->
              let t =
                { t_runs = 0; t_certified = 0; t_gaps = Hashtbl.create 8 }
              in
              Hashtbl.add tallies s t;
              t
        in
        for index = 0 to count - 1 do
          let iseed = derived_seed ~base:seed ~index in
          let inst = Families.instance fam ~seed:iseed ~size in
          M.Instr.bump c_instances;
          incr total_instances;
          let lb = lb_of ~seed:iseed inst in
          let opt =
            exact_opt ~budget:exact_budget ~max_items:exact_max_items inst
          in
          (* the proven optimum is itself a schedule under audit *)
          (match opt with
          | Some sched ->
              let v = M.Certify.check ~lb inst sched in
              if not (M.Certify.ok v) then
                fail ~family:name ~iseed ~solver:"exact"
                  ~messages:
                    (List.map M.Certify.violation_to_string
                       v.M.Certify.violations)
                  ~instance:inst ~shrunk:inst
          | None -> ());
          List.iter
            (fun sname ->
              if sname = "forwarding" then begin
                let rng = run_rng iseed "forwarding" in
                match M.Forwarding.plan_with_helpers ~rng inst with
                | exception e ->
                    fail ~family:name ~iseed ~solver:"forwarding"
                      ~messages:
                        [ "raised " ^ Printexc.to_string e ]
                      ~instance:inst
                      ~shrunk:(shrink ~fails:(fails_forwarding ~seed:iseed) inst)
                | plan, stats ->
                    M.Instr.bump c_runs;
                    incr total_runs;
                    let t = tally "forwarding" in
                    let rounds = stats.M.Forwarding.rounds in
                    tally_gap t (max 0 (rounds - lb));
                    let bad_validate =
                      match M.Forwarding.validate inst plan with
                      | Ok () -> None
                      | Error msg -> Some ("plan invalid: " ^ msg)
                    in
                    let bad_rounds =
                      if rounds > stats.M.Forwarding.direct_rounds then
                        Some
                          (Printf.sprintf
                             "forwarding used %d rounds > %d direct" rounds
                             stats.M.Forwarding.direct_rounds)
                      else None
                    in
                    (match List.filter_map Fun.id [ bad_validate; bad_rounds ] with
                    | [] -> t.t_certified <- t.t_certified + 1
                    | messages ->
                        fail ~family:name ~iseed ~solver:"forwarding" ~messages
                          ~instance:inst
                          ~shrunk:
                            (shrink ~fails:(fails_forwarding ~seed:iseed) inst))
              end
              else
                match run_solver sname ~seed:iseed inst with
                | None -> ()
                | Some sched ->
                    M.Instr.bump c_runs;
                    incr total_runs;
                    let t = tally sname in
                    let rounds = M.Schedule.n_rounds sched in
                    let gap = max 0 (rounds - lb) in
                    tally_gap t gap;
                    M.Instr.bump ~by:gap (gap_counter sname);
                    let v = M.Certify.check ~lb ~solver:sname inst sched in
                    if not (M.Certify.ok v) then
                      fail ~family:name ~iseed ~solver:sname
                        ~messages:
                          (List.map M.Certify.violation_to_string
                             v.M.Certify.violations)
                        ~instance:inst
                        ~shrunk:
                          (shrink
                             ~fails:(fails_certification sname ~seed:iseed)
                             inst)
                    else begin
                      (match opt with
                      | Some o when rounds < M.Schedule.n_rounds o ->
                          fail ~family:name ~iseed ~solver:sname
                            ~messages:
                              [
                                Printf.sprintf
                                  "beat the proven optimum: %d rounds < OPT = %d"
                                  rounds (M.Schedule.n_rounds o);
                              ]
                            ~instance:inst
                            ~shrunk:
                              (shrink
                                 ~fails:
                                   (fails_beating_exact sname ~seed:iseed
                                      ~budget:exact_budget
                                      ~max_items:exact_max_items)
                                 inst)
                      | _ -> t.t_certified <- t.t_certified + 1)
                    end)
            solver_list
        done;
        let per_solver =
          List.filter_map
            (fun s ->
              Option.map (stats_of_tally s) (Hashtbl.find_opt tallies s))
            solver_list
        in
        { family = name; instances = count; per_solver })
      families
  in
  {
    family_reports;
    total_instances = !total_instances;
    total_runs = !total_runs;
    failures = List.rev !failures;
  }
