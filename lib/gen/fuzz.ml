module M = Migration

type failure = {
  family : string;
  seed : int;
  size : int;
  solver : string;
  messages : string list;
  instance : M.Instance.t;
  shrunk : M.Instance.t;
}

type solver_stats = {
  solver : string;
  runs : int;
  certified : int;
  max_gap : int;
  gaps : (int * int) list;
}

type family_report = {
  family : string;
  instances : int;
  per_solver : solver_stats list;
}

type report = {
  family_reports : family_report list;
  total_instances : int;
  total_runs : int;
  failures : failure list;
}

let derived_seed ~base ~index = (base * 1000) + index

(* instrumentation cells; per-solver cells register on first use *)
let c_instances = M.Instr.counter "fuzz.instances"
let c_runs = M.Instr.counter "fuzz.runs"
let c_violations = M.Instr.counter "fuzz.violations"
let solve_timer name =
  (M.Instr.timer ("fuzz.solve." ^ name)
  [@lint.allow "probes: per-solver cells are parameterized by solver name"])

let gap_counter name =
  (M.Instr.counter ("fuzz.gap." ^ name)
  [@lint.allow "probes: per-solver cells are parameterized by solver name"])

let run_rng seed name = Random.State.make [| seed; Hashtbl.hash name; 0xf0 |]

(* Deterministic solver run through the pipeline; [None] when the
   solver is unknown or cannot solve this instance. *)
let run_solver name ~seed inst =
  match M.Solver.find name with
  | None -> None
  | Some s ->
      if not (s.M.Solver.can_solve inst) then None
      else
        let rng = run_rng seed name in
        Some
          (match M.Pipeline.plan_report ~rng name inst with
          | Some (sched, _) -> sched
          | None -> assert false)

let lb_of ~seed inst =
  M.Lower_bounds.lower_bound ~rng:(run_rng seed "lb") inst

let exact_opt ~budget ~max_items inst =
  if M.Instance.n_items inst > max_items || M.Instance.n_disks inst > 10 then
    None
  else
    match M.Exact.solve ~node_budget:budget inst with
    | M.Exact.Optimal sched -> Some sched
    | M.Exact.Gave_up -> None

(* The deterministic re-checks shrinking minimizes against.  Each
   returns true when the instance still exhibits the failure. *)
let fails_certification name ~seed inst' =
  match run_solver name ~seed inst' with
  | None -> false
  | Some sched ->
      let lb = lb_of ~seed inst' in
      not (M.Certify.ok (M.Certify.check ~lb ~solver:name inst' sched))

let fails_beating_exact name ~seed ~budget ~max_items inst' =
  match run_solver name ~seed inst' with
  | None -> false
  | Some sched -> (
      match exact_opt ~budget ~max_items inst' with
      | None -> false
      | Some opt ->
          M.Schedule.n_rounds sched < M.Schedule.n_rounds opt)

let fails_forwarding ~seed inst' =
  let rng = run_rng seed "forwarding" in
  match M.Forwarding.plan_with_helpers ~rng inst' with
  | exception _ -> true
  | plan, stats ->
      M.Forwarding.validate inst' plan <> Ok ()
      || stats.M.Forwarding.rounds > stats.M.Forwarding.direct_rounds
[@@lint.allow
  "exception: any raise at all is the failure this shrinking oracle \
   reproduces, so the catch-all maps it to true rather than swallowing it"]

(* The SLA reorder differential: the priority post-pass must keep the
   makespan (it only permutes rounds), the permuted schedule must
   still certify on tagged instances, and its own completion claim
   must survive [Certify.check_sla] — including the no-inversion
   invariant the reordering promises. *)
let reorder_messages ~lb inst sched =
  let reordered = M.Objective.reorder inst sched in
  let bad_makespan =
    if M.Schedule.n_rounds reordered <> M.Schedule.n_rounds sched then
      [
        Printf.sprintf "reorder changed makespan: %d -> %d rounds"
          (M.Schedule.n_rounds sched)
          (M.Schedule.n_rounds reordered);
      ]
    else []
  in
  let bad_cert =
    if M.Instance.tagged inst then begin
      let v = M.Certify.check ~lb inst reordered in
      if M.Certify.ok v then []
      else
        List.map
          (fun x -> "reordered: " ^ M.Certify.violation_to_string x)
          v.M.Certify.violations
    end
    else []
  in
  let bad_sla =
    let claim = M.Objective.claim ~reordered:true inst reordered in
    let v = M.Certify.check_sla inst reordered claim in
    if M.Certify.sla_ok v then []
    else
      List.map
        (fun x -> "sla: " ^ M.Certify.sla_violation_to_string x)
        v.M.Certify.sla_violations
  in
  bad_makespan @ bad_cert @ bad_sla

let fails_reorder name ~seed inst' =
  match run_solver name ~seed inst' with
  | None -> false
  | Some sched -> reorder_messages ~lb:(lb_of ~seed inst') inst' sched <> []

let shrink ~fails inst =
  if fails inst then M.Shrink.minimize ~fails inst else inst

(* ------------------------------------------------------------------ *)

type tally = {
  mutable t_runs : int;
  mutable t_certified : int;
  mutable t_gaps : (int, int) Hashtbl.t;
}

let tally_gap t gap =
  t.t_runs <- t.t_runs + 1;
  let h = t.t_gaps in
  Hashtbl.replace h gap (1 + Option.value ~default:0 (Hashtbl.find_opt h gap))

let stats_of_tally solver t =
  let gaps =
    Hashtbl.fold (fun g c acc -> (g, c) :: acc) t.t_gaps []
    |> List.sort compare
  in
  {
    solver;
    runs = t.t_runs;
    certified = t.t_certified;
    max_gap = List.fold_left (fun acc (g, _) -> max acc g) 0 gaps;
    gaps;
  }

(* ------------------------------------------------------------------ *)
(* Parallel evaluation plan.

   The loop splits into three stages so that the expensive work — the
   solver runs — parallelizes at (instance x solver) granularity while
   the report stays byte-identical for every [jobs] value:

   1. per instance (parallel): generate, lower-bound, exact ground
      truth;
   2. per (instance x solver) cell (parallel): run the solver, certify,
      cross-check — pure w.r.t. shared state, all RNGs derived from
      the cell's own seed;
   3. merge (sequential, submission order): tallies, failure list, and
      Instr accounting — then shrink each failure, also sequentially,
      so delta-debugging replays identically run to run. *)

(* which deterministic re-check the (sequential) shrinker replays *)
type shrink_kind =
  | Shrink_cert
  | Shrink_beats_exact
  | Shrink_forwarding
  | Shrink_reorder

type cell_outcome = {
  co_solver : string;
  co_ran : bool;  (* false: solver inapplicable — no tally *)
  co_gap : int;   (* meaningful when co_ran *)
  co_elapsed : float;  (* solve seconds, recorded under fuzz.solve.* *)
  co_messages : string list;  (* nonempty iff the cell failed *)
  co_shrink : shrink_kind option;
}

type inst_eval = {
  ie_seed : int;
  ie_inst : M.Instance.t;
  ie_lb : int;
  ie_opt : M.Schedule.t option;
  ie_exact_messages : string list;  (* the optimum itself under audit *)
}

let cell ~solver messages =
  {
    co_solver = solver;
    co_ran = true;
    co_gap = 0;
    co_elapsed = 0.0;
    co_messages = messages;
    co_shrink = None;
  }

let eval_instance ~family ~size ~iseed ~budget ~max_items () =
  let inst = Families.instance family ~seed:iseed ~size in
  let lb = lb_of ~seed:iseed inst in
  let opt = exact_opt ~budget ~max_items inst in
  let exact_messages =
    match opt with
    | None -> []
    | Some sched ->
        let v = M.Certify.check ~lb inst sched in
        if M.Certify.ok v then []
        else List.map M.Certify.violation_to_string v.M.Certify.violations
  in
  { ie_seed = iseed; ie_inst = inst; ie_lb = lb; ie_opt = opt;
    ie_exact_messages = exact_messages }

let eval_cell ~sname ie =
  let inst = ie.ie_inst and lb = ie.ie_lb and iseed = ie.ie_seed in
  if sname = "forwarding" then begin
    let rng = run_rng iseed "forwarding" in
    match M.Forwarding.plan_with_helpers ~rng inst with
    | exception e ->
        {
          (cell ~solver:"forwarding" [ "raised " ^ Printexc.to_string e ]) with
          co_ran = false;
          co_shrink = Some Shrink_forwarding;
        }
    | plan, stats ->
        let rounds = stats.M.Forwarding.rounds in
        let bad_validate =
          match M.Forwarding.validate inst plan with
          | Ok () -> None
          | Error msg -> Some ("plan invalid: " ^ msg)
        in
        let bad_rounds =
          if rounds > stats.M.Forwarding.direct_rounds then
            Some
              (Printf.sprintf "forwarding used %d rounds > %d direct" rounds
                 stats.M.Forwarding.direct_rounds)
          else None
        in
        let messages = List.filter_map Fun.id [ bad_validate; bad_rounds ] in
        {
          (cell ~solver:"forwarding" messages) with
          co_gap = max 0 (rounds - lb);
          co_shrink = (if messages = [] then None else Some Shrink_forwarding);
        }
  end
  else
    let t0 = M.Instr.now_s () in
    match run_solver sname ~seed:iseed inst with
    | None -> { (cell ~solver:sname []) with co_ran = false }
    | Some sched ->
        let elapsed = M.Instr.now_s () -. t0 in
        let rounds = M.Schedule.n_rounds sched in
        let gap = max 0 (rounds - lb) in
        let v = M.Certify.check ~lb ~solver:sname inst sched in
        if not (M.Certify.ok v) then
          {
            (cell ~solver:sname
               (List.map M.Certify.violation_to_string v.M.Certify.violations))
            with
            co_gap = gap;
            co_elapsed = elapsed;
            co_shrink = Some Shrink_cert;
          }
        else
          let beats =
            match ie.ie_opt with
            | Some o when rounds < M.Schedule.n_rounds o ->
                Some
                  (Printf.sprintf "beat the proven optimum: %d rounds < OPT = %d"
                     rounds (M.Schedule.n_rounds o))
            | _ -> None
          in
          let reorder_msgs = reorder_messages ~lb inst sched in
          {
            (cell ~solver:sname (Option.to_list beats @ reorder_msgs)) with
            co_gap = gap;
            co_elapsed = elapsed;
            co_shrink =
              (if beats <> None then Some Shrink_beats_exact
               else if reorder_msgs <> [] then Some Shrink_reorder
               else None);
          }

let run ?(size = 12) ?solvers ?(exact_budget = 300_000) ?(exact_max_items = 10)
    ?(jobs = 1) ~families ~count ~seed () =
  let solver_list =
    match solvers with
    | Some l -> l
    | None -> M.Solver.names () @ [ "forwarding" ]
  in
  let pool = if jobs > 1 then Some (Exec.create ~jobs) else None in
  Fun.protect ~finally:(fun () -> Option.iter Exec.shutdown pool)
  @@ fun () ->
  (* stage 1: instances (parallel, submission order preserved) *)
  let inst_specs =
    List.concat_map
      (fun fam -> List.init count (fun index -> (fam, index)))
      families
  in
  let evals =
    Exec.map ?pool
      (fun (fam, index) ->
        eval_instance ~family:fam ~size
          ~iseed:(derived_seed ~base:seed ~index)
          ~budget:exact_budget ~max_items:exact_max_items ())
      inst_specs
  in
  let eval_tbl = Hashtbl.create 64 in
  List.iter2
    (fun (fam, index) ie -> Hashtbl.add eval_tbl (fam.Families.name, index) ie)
    inst_specs evals;
  (* stage 2: (instance x solver) cells (parallel) *)
  let cell_specs =
    List.concat_map
      (fun (fam, index) ->
        List.map (fun sname -> (fam, index, sname)) solver_list)
      inst_specs
  in
  let cells =
    Exec.map ?pool
      (fun (fam, index, sname) ->
        eval_cell ~sname (Hashtbl.find eval_tbl (fam.Families.name, index)))
      cell_specs
  in
  let cell_tbl = Hashtbl.create 256 in
  List.iter2
    (fun (fam, index, sname) co ->
      Hashtbl.add cell_tbl (fam.Families.name, index, sname) co)
    cell_specs cells;
  (* stage 3: sequential merge in (family, index, solver) order — the
     exact traversal the all-sequential loop used, so reports are
     byte-identical at every [jobs]; shrinking stays sequential too *)
  let failures = ref [] in
  let total_instances = ref 0 and total_runs = ref 0 in
  let fail ~family ~iseed ~solver ~messages ~instance ~shrunk =
    M.Instr.bump c_violations;
    failures :=
      { family; seed = iseed; size; solver; messages; instance; shrunk }
      :: !failures
  in
  let shrinker_of kind ~sname ~iseed =
    match kind with
    | None -> fun inst -> inst
    | Some Shrink_cert ->
        fun inst -> shrink ~fails:(fails_certification sname ~seed:iseed) inst
    | Some Shrink_beats_exact ->
        fun inst ->
          shrink
            ~fails:
              (fails_beating_exact sname ~seed:iseed ~budget:exact_budget
                 ~max_items:exact_max_items)
            inst
    | Some Shrink_forwarding ->
        fun inst -> shrink ~fails:(fails_forwarding ~seed:iseed) inst
    | Some Shrink_reorder ->
        fun inst -> shrink ~fails:(fails_reorder sname ~seed:iseed) inst
  in
  let family_reports =
    List.map
      (fun fam ->
        let name = fam.Families.name in
        let tallies = Hashtbl.create 8 in
        let tally s =
          match Hashtbl.find_opt tallies s with
          | Some t -> t
          | None ->
              let t =
                { t_runs = 0; t_certified = 0; t_gaps = Hashtbl.create 8 }
              in
              Hashtbl.add tallies s t;
              t
        in
        for index = 0 to count - 1 do
          let ie = Hashtbl.find eval_tbl (name, index) in
          let iseed = ie.ie_seed and inst = ie.ie_inst in
          M.Instr.bump c_instances;
          incr total_instances;
          if ie.ie_exact_messages <> [] then
            fail ~family:name ~iseed ~solver:"exact"
              ~messages:ie.ie_exact_messages ~instance:inst ~shrunk:inst;
          List.iter
            (fun sname ->
              let co = Hashtbl.find cell_tbl (name, index, sname) in
              if co.co_ran then begin
                M.Instr.bump c_runs;
                incr total_runs;
                let t = tally sname in
                tally_gap t co.co_gap;
                if sname <> "forwarding" then begin
                  M.Instr.bump ~by:co.co_gap (gap_counter sname);
                  M.Instr.record (solve_timer sname) co.co_elapsed
                end;
                if co.co_messages = [] then
                  t.t_certified <- t.t_certified + 1
              end;
              if co.co_messages <> [] then
                fail ~family:name ~iseed ~solver:sname
                  ~messages:co.co_messages ~instance:inst
                  ~shrunk:(shrinker_of co.co_shrink ~sname ~iseed inst))
            solver_list
        done;
        let per_solver =
          List.filter_map
            (fun s ->
              Option.map (stats_of_tally s) (Hashtbl.find_opt tallies s))
            solver_list
        in
        { family = name; instances = count; per_solver })
      families
  in
  {
    family_reports;
    total_instances = !total_instances;
    total_runs = !total_runs;
    failures = List.rev !failures;
  }

(* ------------------------------------------------------------------ *)
(* Fault-injection fuzzing: drive the execution engine over generated
   instances and certify every execution with
   [Certify.certify_execution].  The fault policy constructor comes in
   as a parameter — the seeded implementation lives in the simulation
   layer ([Storsim.Fault.engine_policy]), which depends on this
   library's host and must not be depended on back. *)

type engine_failure = {
  ef_family : string;
  ef_seed : int;
  ef_size : int;
  ef_messages : string list;
}

type engine_totals = {
  eng_instances : int;
  eng_completed : int;
  eng_quarantined : int;
  eng_replans : int;
  eng_retries : int;
  eng_rounds : int;
  eng_idle_rounds : int;
}

type engine_report = {
  eng_per_family : (string * engine_totals) list;
  eng_totals : engine_totals;
  eng_failures : engine_failure list;
}

let zero_totals =
  {
    eng_instances = 0;
    eng_completed = 0;
    eng_quarantined = 0;
    eng_replans = 0;
    eng_retries = 0;
    eng_rounds = 0;
    eng_idle_rounds = 0;
  }

let add_totals t (o : M.Engine.outcome) =
  {
    eng_instances = t.eng_instances + 1;
    eng_completed = t.eng_completed + o.M.Engine.completed;
    eng_quarantined = t.eng_quarantined + List.length o.M.Engine.quarantined;
    eng_replans = t.eng_replans + o.M.Engine.replans;
    eng_retries = t.eng_retries + o.M.Engine.retries;
    eng_rounds = t.eng_rounds + o.M.Engine.total_rounds;
    eng_idle_rounds = t.eng_idle_rounds + o.M.Engine.idle_rounds;
  }

let c_executions = M.Instr.counter "fuzz.engine.executions"
let c_exec_violations = M.Instr.counter "fuzz.engine.violations"

(* one engine run, executed on the pool: generate, run, certify.
   Pure w.r.t. shared state — the engine RNG and the policy are both
   derived from the cell's own seed — so evaluation order is free. *)
let eval_engine_cell ~size ~policy (fam, iseed) =
  let inst = Families.instance fam ~seed:iseed ~size in
  let n_items = M.Instance.n_items inst in
  match
    M.Engine.run ~rng:(run_rng iseed "engine")
      ~policy:(policy ~inst ~seed:iseed) inst
  with
  | exception M.Engine.Plan_rejected msg ->
      Error [ "replan rejected mid-flight: " ^ msg ]
  | (o : M.Engine.outcome) ->
      let v = M.Certify.certify_execution o.M.Engine.execution in
      let messages =
        List.map M.Certify.exec_violation_to_string v.M.Certify.exec_violations
      in
      let accounting =
        let q = List.length o.M.Engine.quarantined in
        if o.M.Engine.completed + q <> n_items then
          [
            Printf.sprintf
              "accounting broken: %d completed + %d quarantined <> %d items"
              o.M.Engine.completed q n_items;
          ]
        else []
      in
      (match messages @ accounting with [] -> Ok o | msgs -> Error msgs)

(* ------------------------------------------------------------------ *)
(* Service soak fuzzing: drive the full streaming service over
   generated instances and certify the concatenated flight log with
   [Certify.certify_service].  Like the fault policies above, the
   driver comes in as a closure ([Service.soak]-based) — the service
   library sits above this one in the layering DAG and must not be
   depended on back. *)

type service_stats = {
  ss_epochs : int;
  ss_rounds : int;
  ss_transfers : int;
  ss_completed : int;
  ss_abandoned : int;
  ss_rejected : int;
}

type service_failure = {
  sf_family : string;
  sf_seed : int;
  sf_size : int;
  sf_messages : string list;
  sf_instance : M.Instance.t;
  sf_shrunk : M.Instance.t;
}

type service_report = {
  svc_per_family : (string * service_stats) list;
  svc_totals : service_stats;
  svc_instances : int;
  svc_failures : service_failure list;
}

let zero_service_stats =
  {
    ss_epochs = 0;
    ss_rounds = 0;
    ss_transfers = 0;
    ss_completed = 0;
    ss_abandoned = 0;
    ss_rejected = 0;
  }

let add_service_stats a b =
  {
    ss_epochs = a.ss_epochs + b.ss_epochs;
    ss_rounds = a.ss_rounds + b.ss_rounds;
    ss_transfers = a.ss_transfers + b.ss_transfers;
    ss_completed = a.ss_completed + b.ss_completed;
    ss_abandoned = a.ss_abandoned + b.ss_abandoned;
    ss_rejected = a.ss_rejected + b.ss_rejected;
  }

let c_soaks = M.Instr.counter "fuzz.service.soaks"
let c_soak_violations = M.Instr.counter "fuzz.service.violations"

let run_service ?(size = 10) ?(jobs = 1) ~drive ~families ~count ~seed () =
  let pool = if jobs > 1 then Some (Exec.create ~jobs) else None in
  Fun.protect ~finally:(fun () -> Option.iter Exec.shutdown pool)
  @@ fun () ->
  let specs =
    List.concat_map
      (fun fam ->
        List.init count (fun index -> (fam, derived_seed ~base:seed ~index)))
      families
  in
  (* parallel stage: each cell generates its instance and runs the
     whole service loop (the service's own [jobs] is the closure's
     business — parallelism here lives at cell granularity); the merge
     and the shrinker stay sequential in submission order, so the
     report is byte-identical at every [jobs] *)
  let outcomes =
    Exec.map ?pool
      (fun (fam, iseed) ->
        let inst = Families.instance fam ~seed:iseed ~size in
        (inst, drive ~inst ~seed:iseed))
      specs
  in
  let failures = ref [] in
  let totals = ref zero_service_stats in
  let instances = ref 0 in
  let svc_per_family =
    List.map
      (fun fam ->
        let t = ref zero_service_stats in
        List.iter2
          (fun (fam', iseed) (inst, outcome) ->
            if fam'.Families.name = fam.Families.name then begin
              M.Instr.bump c_soaks;
              incr instances;
              match outcome with
              | Ok s ->
                  t := add_service_stats !t s;
                  totals := add_service_stats !totals s
              | Error msgs ->
                  M.Instr.bump c_soak_violations;
                  let shrunk =
                    shrink
                      ~fails:(fun i ->
                        Result.is_error (drive ~inst:i ~seed:iseed))
                      inst
                  in
                  failures :=
                    {
                      sf_family = fam.Families.name;
                      sf_seed = iseed;
                      sf_size = size;
                      sf_messages = msgs;
                      sf_instance = inst;
                      sf_shrunk = shrunk;
                    }
                    :: !failures
            end)
          specs outcomes;
        (fam.Families.name, !t))
      families
  in
  {
    svc_per_family;
    svc_totals = !totals;
    svc_instances = !instances;
    svc_failures = List.rev !failures;
  }

let run_engine ?(size = 12) ?(jobs = 1) ~policy ~families ~count ~seed () =
  let pool = if jobs > 1 then Some (Exec.create ~jobs) else None in
  Fun.protect ~finally:(fun () -> Option.iter Exec.shutdown pool)
  @@ fun () ->
  let specs =
    List.concat_map
      (fun fam ->
        List.init count (fun index -> (fam, derived_seed ~base:seed ~index)))
      families
  in
  (* parallel stage: each cell runs the engine sequentially (the
     engine's own [jobs] stays 1 — parallelism lives at cell
     granularity here); merge below is sequential in submission order,
     so the report is byte-identical at every [jobs] *)
  let outcomes = Exec.map ?pool (eval_engine_cell ~size ~policy) specs in
  let failures = ref [] in
  let totals = ref zero_totals in
  let eng_per_family =
    List.map
      (fun fam ->
        let t = ref zero_totals in
        List.iter2
          (fun (fam', iseed) outcome ->
            if fam'.Families.name = fam.Families.name then begin
              M.Instr.bump c_executions;
              match outcome with
              | Ok o ->
                  t := add_totals !t o;
                  totals := add_totals !totals o
              | Error msgs ->
                  M.Instr.bump c_exec_violations;
                  t := { !t with eng_instances = !t.eng_instances + 1 };
                  totals :=
                    { !totals with eng_instances = !totals.eng_instances + 1 };
                  failures :=
                    {
                      ef_family = fam.Families.name;
                      ef_seed = iseed;
                      ef_size = size;
                      ef_messages = msgs;
                    }
                    :: !failures
            end)
          specs outcomes;
        (fam.Families.name, !t))
      families
  in
  {
    eng_per_family;
    eng_totals = !totals;
    eng_failures = List.rev !failures;
  }

(* ------------------------------------------------------------------ *)
(* Distributed crash-recovery soak: drive the coordinator/worker
   runner — with scripted random kills — over generated instances,
   resume after every interruption, and certify + byte-compare the
   converged flight log.  The driver comes in as a closure (build it
   from [Distproto.Runner.run]): the distributed control plane sits
   outside this library's layering cone.  Strictly sequential, no
   [jobs] knob by design — the driver forks processes, and forking
   with live worker domains is unsafe in OCaml 5. *)

type dist_stats = {
  dd_runs : int;       (* run invocations, resumes included *)
  dd_rounds : int;     (* rounds committed *)
  dd_transfers : int;  (* items migrated *)
  dd_kills : int;      (* scripted kills injected *)
  dd_resumes : int;    (* coordinator resumes needed to converge *)
}

type dist_failure = {
  df_family : string;
  df_seed : int;
  df_size : int;
  df_messages : string list;
  df_instance : M.Instance.t;
  df_shrunk : M.Instance.t;
}

type dist_report = {
  dist_per_family : (string * dist_stats) list;
  dist_totals : dist_stats;
  dist_instances : int;
  dist_failures : dist_failure list;
}

let zero_dist_stats =
  { dd_runs = 0; dd_rounds = 0; dd_transfers = 0; dd_kills = 0; dd_resumes = 0 }

let add_dist_stats a b =
  {
    dd_runs = a.dd_runs + b.dd_runs;
    dd_rounds = a.dd_rounds + b.dd_rounds;
    dd_transfers = a.dd_transfers + b.dd_transfers;
    dd_kills = a.dd_kills + b.dd_kills;
    dd_resumes = a.dd_resumes + b.dd_resumes;
  }

let c_dist_runs = M.Instr.counter "fuzz.dist.runs"
let c_dist_violations = M.Instr.counter "fuzz.dist.violations"

let run_distributed ?(size = 8) ~drive ~families ~count ~seed () =
  let specs =
    List.concat_map
      (fun fam ->
        List.init count (fun index -> (fam, derived_seed ~base:seed ~index)))
      families
  in
  (* sequential by necessity (the driver forks); merge order matches
     run_service so reports stay byte-stable across refactors *)
  let outcomes =
    List.map
      (fun (fam, iseed) ->
        let inst = Families.instance fam ~seed:iseed ~size in
        (inst, drive ~inst ~seed:iseed))
      specs
  in
  let failures = ref [] in
  let totals = ref zero_dist_stats in
  let instances = ref 0 in
  let dist_per_family =
    List.map
      (fun fam ->
        let t = ref zero_dist_stats in
        List.iter2
          (fun (fam', iseed) (inst, outcome) ->
            if fam'.Families.name = fam.Families.name then begin
              M.Instr.bump c_dist_runs;
              incr instances;
              match outcome with
              | Ok s ->
                  t := add_dist_stats !t s;
                  totals := add_dist_stats !totals s
              | Error msgs ->
                  M.Instr.bump c_dist_violations;
                  let shrunk =
                    shrink
                      ~fails:(fun i ->
                        Result.is_error (drive ~inst:i ~seed:iseed))
                      inst
                  in
                  failures :=
                    {
                      df_family = fam.Families.name;
                      df_seed = iseed;
                      df_size = size;
                      df_messages = msgs;
                      df_instance = inst;
                      df_shrunk = shrunk;
                    }
                    :: !failures
            end)
          specs outcomes;
        (fam.Families.name, !t))
      families
  in
  {
    dist_per_family;
    dist_totals = !totals;
    dist_instances = !instances;
    dist_failures = List.rev !failures;
  }
