(** Deterministic domain-parallel execution.

    A small fixed worker pool on stdlib [Domain] with one entry point
    that matters: {!map}, an order-preserving parallel [List.map].
    The design goal is {e determinism}, not raw throughput — callers
    (the planning pipeline, the fuzz loop, the benchmarks) must
    produce bit-identical output whether a computation ran on one
    domain or eight:

    - results are returned in submission order, whatever order the
      chunks actually ran in;
    - an exception raised by a task is captured on the worker and
      re-raised on the {e caller} domain (with its backtrace), picking
      the {b first failing element in submission order} when several
      fail — again independent of scheduling;
    - a failed {!map} poisons nothing: the pool survives and later
      submissions run normally.

    Tasks must be safe to run on another domain: no unsynchronized
    shared mutation beyond what the caller arranges.  The planners
    qualify — every solver is a pure function of the instance and an
    explicit RNG state ({!Migration.Solver.ctx}); the always-on
    metrics cells ({!Probes}) are the one shared surface, and worker
    writes to them may lose increments (they are never read for
    control flow).

    Instrumentation: ["exec.tasks"] (elements submitted),
    ["exec.chunks"] (work-queue chunks, i.e. units of stealing), and a
    per-worker ["exec.domain<i>.busy"] timer recording each worker's
    busy spans — registered at pool creation so the key set is stable
    for a given [jobs]. *)

type pool

(** The default for every [--jobs] flag in the repo: the
    [MIGRATE_JOBS] environment variable when set to a positive
    integer, else [Domain.recommended_domain_count ()].  The override
    exists because containerized CI runners routinely clamp the
    cpuset the runtime sees below the machine's real core count.

    The environment is consulted once per process and the answer
    memoized: a worker process that mutates [MIGRATE_JOBS] mid-run
    cannot make two calls observe different (torn) job counts. *)
val default_jobs : unit -> int

(** [create ~jobs] starts [jobs] worker domains ([jobs >= 1]; [1]
    starts none — every {!map} then runs inline on the caller).
    @raise Invalid_argument if [jobs < 1]. *)
val create : jobs:int -> pool

val jobs : pool -> int

(** Stop the workers and join their domains.  Idempotent: repeated
    calls (from the owning domain) return immediately.  A {!map} on a
    shut-down pool degrades to the sequential inline path rather than
    raising. *)
val shutdown : pool -> unit

(** [with_pool ~jobs f] is [f] applied to a fresh pool, with
    {!shutdown} guaranteed on every exit path. *)
val with_pool : jobs:int -> (pool -> 'a) -> 'a

(** [map ?pool f xs] is [List.map f xs] — same order, same content,
    same (first, in submission order) exception — computed on the
    pool's workers when one with [jobs > 1] is given, inline
    otherwise.  The input is split into contiguous chunks pulled from
    a shared queue, so uneven task costs balance across workers. *)
val map : ?pool:pool -> ('a -> 'b) -> 'a list -> 'b list

(** Seconds each worker spent running tasks since {!create}, indexed
    by worker.  Length [0] for a sequential ([jobs = 1]) pool.  Meant
    for reporting after the pool is idle; concurrent readers see
    slightly stale values. *)
val busy_times : pool -> float array
