(* Fixed worker pool over stdlib Domain.

   Work sharing, not stealing deques: a map call splits its input into
   contiguous chunks and pushes closures onto one mutex-protected
   queue; idle workers pull ("steal") chunks until the queue drains.
   Each chunk writes only its own slice of a preallocated result
   array, so result assembly needs no synchronization beyond batch
   completion — and submission order is trivially preserved. *)

let c_tasks = Probes.counter "exec.tasks"
let c_chunks = Probes.counter "exec.chunks"

type pool = {
  n_workers : int;
  mutable domains : unit Domain.t array;
  tasks : (unit -> unit) Queue.t;  (* closures never raise *)
  mu : Mutex.t;
  cond : Condition.t;  (* "queue non-empty or stopping" *)
  mutable stopped : bool;
  busy : float array;  (* per-worker busy seconds; single writer each *)
  busy_timers : Probes.timer array;  (* exec.domain<i>.busy, one writer each *)
}

(* [Domain.recommended_domain_count] reports the cpuset the runtime
   sees, which inside CI containers is routinely clamped below the
   machine's real core count.  MIGRATE_JOBS lets the runner (or a
   developer) assert the true count; anything unparsable falls back to
   the runtime's view.

   The environment is read exactly once per process: distributed
   worker processes mutate the env mid-run (and putenv itself is not
   thread-safe), so re-reading on every call could hand two pool
   creations in one run different job counts.  0 means "not yet
   computed"; the first caller publishes via compare-and-set, racing
   domains all settle on the single published value. *)
let default_jobs_memo = Atomic.make 0

let default_jobs () =
  match Atomic.get default_jobs_memo with
  | 0 ->
      let j =
        match Sys.getenv_opt "MIGRATE_JOBS" with
        | Some s -> (
            match int_of_string_opt (String.trim s) with
            | Some j when j > 0 -> j
            | Some _ | None -> Domain.recommended_domain_count ())
        | None -> Domain.recommended_domain_count ()
      in
      ignore (Atomic.compare_and_set default_jobs_memo 0 j);
      Atomic.get default_jobs_memo
  | j -> j
let jobs p = p.n_workers
let busy_times p = Array.copy p.busy

let rec worker_loop p w =
  Mutex.lock p.mu;
  let rec next () =
    if not (Queue.is_empty p.tasks) then Some (Queue.pop p.tasks)
    else if p.stopped then None
    else begin
      Condition.wait p.cond p.mu;
      next ()
    end
  in
  match next () with
  | None -> Mutex.unlock p.mu
  | Some task ->
      Mutex.unlock p.mu;
      let t0 = Probes.now_s () in
      task ();
      let dt = Probes.now_s () -. t0 in
      p.busy.(w) <- p.busy.(w) +. dt;
      Probes.record p.busy_timers.(w) dt;
      worker_loop p w

let create ~jobs =
  if jobs < 1 then invalid_arg "Exec.create: jobs must be >= 1";
  let workers = if jobs > 1 then jobs else 0 in
  let p =
    {
      n_workers = jobs;
      domains = [||];
      tasks = Queue.create ();
      mu = Mutex.create ();
      cond = Condition.create ();
      stopped = false;
      busy = Array.make workers 0.0;
      busy_timers =
        (* registered here, on the caller domain: workers only ever
           Probes.record into their own preexisting cell *)
        Array.init workers (fun w ->
            (Probes.timer
               (Printf.sprintf "exec.domain%d.busy" w)
            [@lint.allow
              "probes: per-domain cells are parameterized by worker index"]));
    }
  in
  if workers > 0 then
    p.domains <- Array.init workers (fun w -> Domain.spawn (fun () -> worker_loop p w));
  p

let shutdown p =
  Mutex.lock p.mu;
  if p.stopped then Mutex.unlock p.mu
  else begin
    p.stopped <- true;
    Condition.broadcast p.cond;
    Mutex.unlock p.mu;
    Array.iter Domain.join p.domains;
    p.domains <- [||]
  end

let with_pool ~jobs f =
  let p = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)

(* One parallel batch.  [results] slots are written exactly once, each
   by exactly one chunk; the batch mutex only guards the completion
   count. *)
let parallel_map p f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    Probes.bump ~by:n c_tasks;
    let results = Array.make n None in
    let chunk = max 1 (n / (p.n_workers * 4)) in
    let n_chunks = (n + chunk - 1) / chunk in
    Probes.bump ~by:n_chunks c_chunks;
    let bmu = Mutex.create () in
    let bcond = Condition.create () in
    let remaining = ref n_chunks in
    let run_chunk lo () =
      let hi = min n (lo + chunk) in
      for i = lo to hi - 1 do
        results.(i) <-
          Some
            (match f arr.(i) with
            | v -> Ok v
            | exception e -> Error (e, Printexc.get_raw_backtrace ()))
      done;
      Mutex.lock bmu;
      decr remaining;
      if !remaining = 0 then Condition.broadcast bcond;
      Mutex.unlock bmu
    in
    Mutex.lock p.mu;
    let lo = ref 0 in
    while !lo < n do
      Queue.add (run_chunk !lo) p.tasks;
      lo := !lo + chunk
    done;
    Condition.broadcast p.cond;
    Mutex.unlock p.mu;
    Mutex.lock bmu;
    while !remaining > 0 do
      Condition.wait bcond bmu
    done;
    Mutex.unlock bmu;
    (* deterministic failure choice: first failing element in
       submission order, regardless of which chunk ran first *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | _ -> ())
      results;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error _) | None -> assert false)
         results)
  end

let map ?pool f xs =
  match pool with
  | None -> List.map f xs
  | Some p ->
      let sequential =
        p.n_workers <= 1
        ||
        (Mutex.lock p.mu;
         let s = p.stopped in
         Mutex.unlock p.mu;
         s)
      in
      if sequential then List.map f xs else parallel_map p f xs
[@@lint.allow
  "hotpath-deep: Exec.map's list API is the once-per-solve fan-out \
   boundary — the sequential fallback maps the submission list once per \
   call, never inside a kernel's per-edge loop"]
