type report = {
  rounds : int;
  wall_time : float;
  messages_offered : int;
  messages_dropped : int;
  retransmissions : int;
  items_delivered : int;
  failovers : int;
}

exception Protocol_stuck of string

type mode =
  | Up
  | Down of float  (* stand-by takes over at this time *)
  | Recovering

type coordinator = {
  schedule : (int * int * int) list array;  (* per round: item, src, dst *)
  mutable round : int;
  outstanding : (int, unit) Hashtbl.t;      (* items awaiting ack *)
  mutable retransmissions : int;
  mutable next_timeout : float;
  mutable mode : mode;
  reports : (int, int list) Hashtbl.t;      (* disk -> installed items *)
  mutable failovers : int;
}

let run ?(timeout = 6.0) ?crash net (job : Storsim.Cluster.job) sched =
  let m = Array.length job.Storsim.Cluster.items in
  let n_disks = Migration.Instance.n_disks job.Storsim.Cluster.instance in
  let rounds = Migration.Schedule.rounds sched in
  let coord =
    {
      schedule =
        Array.map
          (fun edges ->
            List.map
              (fun e ->
                ( e,
                  job.Storsim.Cluster.sources.(e),
                  job.Storsim.Cluster.targets.(e) ))
              edges)
          rounds;
      round = 0;
      outstanding = Hashtbl.create 64;
      retransmissions = 0;
      next_timeout = infinity;
      mode = Up;
      reports = Hashtbl.create 16;
      failovers = 0;
    }
  in
  let crash_pending = ref crash in
  (* per-item protocol state (ground truth held by the disks) *)
  let installed = Array.make m false in
  let items_delivered = ref 0 in
  let now = ref 0.0 in
  let send_prepare ~only_missing =
    if coord.round < Array.length coord.schedule then begin
      let transfers =
        List.filter
          (fun (item, _, _) ->
            (not only_missing) || Hashtbl.mem coord.outstanding item)
          coord.schedule.(coord.round)
      in
      let by_src = Hashtbl.create 16 in
      List.iter
        (fun ((_, src, _) as tr) ->
          Hashtbl.replace by_src src
            (tr :: (try Hashtbl.find by_src src with Not_found -> [])))
        transfers;
      Hashtbl.iter
        (fun src trs ->
          Net.send net ~now:!now
            {
              Message.from_node = Message.coordinator;
              to_node = src;
              sent_at = !now;
              payload = Message.Prepare { round = coord.round; transfers = trs };
            })
        by_src;
      coord.next_timeout <- !now +. timeout
    end
  in
  let start_round () =
    if coord.round < Array.length coord.schedule then begin
      Hashtbl.reset coord.outstanding;
      List.iter
        (fun (item, _, _) -> Hashtbl.replace coord.outstanding item ())
        coord.schedule.(coord.round);
      if Hashtbl.length coord.outstanding = 0 then begin
        (* empty round: skip *)
        coord.round <- coord.round + 1;
        coord.next_timeout <- infinity
      end
      else send_prepare ~only_missing:false
    end
    else coord.next_timeout <- infinity
  in
  let rec advance_if_empty () =
    if
      coord.round < Array.length coord.schedule
      && Hashtbl.length coord.outstanding = 0
    then begin
      (* barrier released: tell the round's participants *)
      let participants =
        List.concat_map
          (fun (_, src, dst) -> [ src; dst ])
          coord.schedule.(coord.round)
        |> List.sort_uniq compare
      in
      List.iter
        (fun node ->
          Net.send net ~now:!now
            {
              Message.from_node = Message.coordinator;
              to_node = node;
              sent_at = !now;
              payload = Message.Round_done { round = coord.round };
            })
        participants;
      coord.round <- coord.round + 1;
      coord.next_timeout <- infinity;
      start_round ();
      advance_if_empty ()
    end
  in
  let broadcast_query () =
    for d = 0 to n_disks - 1 do
      if not (Hashtbl.mem coord.reports d) then
        Net.send net ~now:!now
          {
            Message.from_node = Message.coordinator;
            to_node = d;
            sent_at = !now;
            payload = Message.Status_query;
          }
    done;
    coord.next_timeout <- !now +. timeout
  in
  let finish_recovery () =
    (* resume from the first round with an unconfirmed item *)
    let confirmed = Hashtbl.create 64 in
    Hashtbl.iter
      (fun _ items -> List.iter (fun i -> Hashtbl.replace confirmed i ()) items)
      coord.reports;
    let rec find r =
      if r >= Array.length coord.schedule then r
      else if
        List.exists
          (fun (item, _, _) -> not (Hashtbl.mem confirmed item))
          coord.schedule.(r)
      then r
      else find (r + 1)
    in
    coord.round <- find 0;
    coord.mode <- Up;
    if coord.round < Array.length coord.schedule then begin
      Hashtbl.reset coord.outstanding;
      List.iter
        (fun (item, _, _) ->
          if not (Hashtbl.mem confirmed item) then
            Hashtbl.replace coord.outstanding item ())
        coord.schedule.(coord.round);
      if Hashtbl.length coord.outstanding = 0 then advance_if_empty ()
      else send_prepare ~only_missing:true
    end
    else coord.next_timeout <- infinity
  in
  let handle (msg : Message.t) =
    match msg.Message.payload with
    | Message.Prepare { round; transfers } ->
        (* sources act on any Prepare for the round they believe is
           live; a stale one (late retransmission of an older round)
           only re-pushes items whose duplicates are ignored *)
        if round <= coord.round || coord.mode <> Up then
          List.iter
            (fun (item, _src, dst) ->
              Net.send net ~now:!now
                {
                  Message.from_node = msg.Message.to_node;
                  to_node = dst;
                  sent_at = !now;
                  payload = Message.Transfer { round; item; dst };
                })
            transfers
    | Message.Transfer { round; item; _ } ->
        (* install (idempotent) and ack *)
        if not installed.(item) then begin
          installed.(item) <- true;
          incr items_delivered
        end;
        Net.send net ~now:!now
          {
            Message.from_node = msg.Message.to_node;
            to_node = Message.coordinator;
            sent_at = !now;
            payload = Message.Item_ack { round; item };
          }
    | Message.Item_ack { round; item } -> (
        match coord.mode with
        | Up ->
            if round = coord.round then begin
              Hashtbl.remove coord.outstanding item;
              advance_if_empty ()
            end
        | Down _ | Recovering -> (* the crashed coordinator lost it *) ())
    | Message.Round_done _ -> ()
    | Message.Status_query ->
        (* the queried disk reports the scheduled items it holds *)
        let disk = msg.Message.to_node in
        let held =
          List.init m Fun.id
          |> List.filter (fun item ->
                 installed.(item) && job.Storsim.Cluster.targets.(item) = disk)
        in
        Net.send net ~now:!now
          {
            Message.from_node = disk;
            to_node = Message.coordinator;
            sent_at = !now;
            payload = Message.Status_report { holder = disk; items = held };
          }
    | Message.Status_report { holder; items } -> (
        match coord.mode with
        | Recovering ->
            Hashtbl.replace coord.reports holder items;
            if Hashtbl.length coord.reports = n_disks then finish_recovery ()
        | Up | Down _ -> ())
  in
  let maybe_crash at =
    match !crash_pending with
    | Some (crash_at, delay) when at >= crash_at ->
        crash_pending := None;
        coord.failovers <- coord.failovers + 1;
        coord.mode <- Down (crash_at +. delay);
        Hashtbl.reset coord.outstanding;
        Hashtbl.reset coord.reports;
        coord.next_timeout <- crash_at +. delay
    | _ -> ()
  in
  let on_timeout () =
    coord.retransmissions <- coord.retransmissions + 1;
    if coord.retransmissions > 10_000 then
      raise (Protocol_stuck "retransmission budget exhausted");
    match coord.mode with
    | Up -> send_prepare ~only_missing:true
    | Down takeover_at ->
        if !now >= takeover_at then begin
          coord.mode <- Recovering;
          broadcast_query ()
        end
        else coord.next_timeout <- takeover_at
    | Recovering -> broadcast_query () (* re-query the silent disks *)
  in
  start_round ();
  advance_if_empty ();
  while coord.round < Array.length coord.schedule do
    (* next event: delivery or coordinator timeout *)
    match Net.next_delivery net with
    | Some (at, msg) when at <= coord.next_timeout ->
        now := at;
        maybe_crash at;
        handle msg
    | other ->
        (* the timeout fires first: put any popped delivery back *)
        (match other with
        | Some (at, msg) -> Net.requeue net at msg
        | None ->
            if coord.next_timeout = infinity then
              raise (Protocol_stuck "quiescent network with rounds remaining"));
        now := coord.next_timeout;
        maybe_crash !now;
        on_timeout ()
  done;
  (* every scheduled item must have been installed *)
  Array.iter
    (fun edges -> List.iter (fun (item, _, _) -> assert installed.(item)) edges)
    coord.schedule;
  {
    rounds = Array.length coord.schedule;
    wall_time = !now;
    messages_offered = Net.offered net;
    messages_dropped = Net.dropped net;
    retransmissions = coord.retransmissions;
    items_delivered = !items_delivered;
    failovers = coord.failovers;
  }
