(* Coordinator/worker execution of a certified plan, over real
   processes.

   Process tree: the caller (supervisor) forks a coordinator; the
   coordinator plans (jobs:1 — forking with live domains is unsafe in
   OCaml 5, and the plan must be byte-identical to the in-process
   engine's anyway), certifies, journals, forks N workers over
   socketpairs and drives the plan round by round.  Children always
   leave through [Unix._exit] so at-exit machinery never runs twice.

   Durability: every phase transition lands in the fsync'd journal
   before the effects it describes are acted on (write-ahead), so a
   kill -9 of the coordinator leaves a valid prefix from which a fresh
   run resumes — committed rounds are skipped, the one possibly
   in-flight round is re-issued.  Worker death is handled below the
   journal: the coordinator reaps the corpse, respawns the index
   (without any scripted kill — respawn specs are one-shot) and
   re-sends the current round's shard unless that worker already
   reported it.

   Determinism: the flight log reconstructed from the journal is
   byte-identical (Certify.execution_to_string) to the in-process
   engine's fault-free run seeded with [plan_rng seed], at any worker
   count and under any crash schedule — rounds are committed in plan
   order carrying the plan's own edge order, regardless of which
   worker reported what when. *)

module M = Migration

let c_rounds = Probes.counter "dist.rounds"
let c_commits = Probes.counter "dist.commits"
let c_respawns = Probes.counter "dist.respawns"
let c_resumes = Probes.counter "dist.resumes"
let c_messages = Probes.counter "dist.messages"
let c_transfers = Probes.counter "dist.transfers"
let t_round = Probes.timer "dist.round"

type kill_point =
  | Worker_pre_round
  | Worker_mid_round
  | Worker_post_report
  | Coord_pre_commit
  | Coord_post_commit

type kill_role = [ `Worker of int | `Coordinator ]
type kill_spec = { kill_role : kill_role; kill_point : kill_point; kill_round : int }

type outcome = {
  execution : M.Certify.execution;
  rounds : int;
  workers : int;
  respawns : int;
  skipped : int;
  resumed : bool;
}

type result =
  | Completed of outcome
  | Interrupted of { phase : Journal.phase; signal : int }

let plan_rng seed = Random.State.make [| 0xd157; seed |]

let kill_point_to_string = function
  | Worker_pre_round -> "pre-round"
  | Worker_mid_round -> "mid-round"
  | Worker_post_report -> "post-report"
  | Coord_pre_commit -> "pre-commit"
  | Coord_post_commit -> "post-commit"

let journal_path state_dir = Filename.concat state_dir "journal.log"
let metrics_path state_dir = Filename.concat state_dir "coord.metrics"

let run_digest inst ~seed =
  Digest.to_hex
    (Digest.string (Printf.sprintf "%d#%s" seed (M.Instance.to_string inst)))

(* Scripted crash injection: the process SIGKILLs itself, exactly what
   an external kill -9 delivers (no cleanup, no flush, no unwind). *)
let maybe_kill kill ~role ~point ~round =
  match kill with
  | Some k when k.kill_role = role && k.kill_point = point && k.kill_round = round
    ->
      Unix.kill (Unix.getpid ()) Sys.sigkill
  | _ -> ()

let rec waitpid_retry pid =
  try snd (Unix.waitpid [] pid)
  with Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

(* ------------------------------------------------------------------ *)
(* Worker process                                                      *)

let worker_main ?kill ~worker:w conn =
  Probes.reset ();
  (match Net.recv conn with
  | Some (Message.Hello _) ->
      Probes.bump c_messages;
      Net.send conn (Message.Ready { worker = w })
  | Some _ | None -> raise Net.Closed);
  let role = `Worker w in
  let rec loop () =
    match Net.recv conn with
    | None -> loop ()
    | Some (Message.Round_start { round; edges }) ->
        Probes.bump c_messages;
        maybe_kill kill ~role ~point:Worker_pre_round ~round;
        let n = List.length edges in
        if n = 0 then maybe_kill kill ~role ~point:Worker_mid_round ~round
        else
          List.iteri
            (fun i _e ->
              if i = n / 2 then
                maybe_kill kill ~role ~point:Worker_mid_round ~round;
              Probes.bump c_transfers)
            edges;
        Net.send conn (Message.Round_done { worker = w; round; edges });
        maybe_kill kill ~role ~point:Worker_post_report ~round;
        loop ()
    | Some (Message.Commit _) ->
        Probes.bump c_messages;
        loop ()
    | Some Message.Finish ->
        Probes.bump c_messages;
        let metrics = Probes.marshal_snapshot (Probes.snapshot ()) in
        Net.send conn (Message.Bye { worker = w; metrics })
    | Some (Message.Hello _ | Message.Ready _ | Message.Round_done _
           | Message.Bye _) ->
        loop () (* not addressed to a worker; ignore *)
  in
  try loop () with Net.Closed -> () (* orphaned by a dead coordinator *)

(* ------------------------------------------------------------------ *)
(* Coordinator process                                                 *)

let coordinator_main ?kill ~workers ~seed ~state_dir ~round_timeout_s inst =
  Probes.reset ();
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let journal, entries0 = Journal.open_ (journal_path state_dir) in
  let digest = run_digest inst ~seed in
  let sched, _report =
    M.Pipeline.solve ~rng:(plan_rng seed) ~jobs:1 ~choose:M.Pipeline.auto_choose
      inst
  in
  let plan_md5 = Digest.to_hex (Digest.string (M.Schedule.to_string sched)) in
  let rounds = M.Schedule.rounds sched in
  let n_rounds = Array.length rounds in
  if entries0 <> [] then Probes.bump c_resumes;
  (match Journal.planned entries0 with
  | Some (d, r, pm) ->
      if d <> digest || r <> n_rounds || pm <> plan_md5 then begin
        Printf.eprintf
          "coordinator: journal does not match this instance/seed/plan\n%!";
        Unix._exit 4
      end
  | None ->
      let verdict = M.Certify.check ~lb:(M.Lower_bounds.lb1 inst) inst sched in
      if not (M.Certify.ok verdict) then begin
        Printf.eprintf "coordinator: plan rejected by certifier:\n%s%!"
          (String.concat ""
             (List.map
                (fun v -> "  " ^ M.Certify.violation_to_string v ^ "\n")
                verdict.M.Certify.violations));
        Unix._exit 5
      end;
      Journal.append journal
        (Journal.Planned { digest; rounds = n_rounds; plan_md5 }));
  let phase0 = Journal.phase_of entries0 in
  if Journal.compare_phase phase0 Journal.Sharded_phase < 0 then
    Journal.append journal (Journal.Sharded { workers });
  (* one-shot kill wiring: only the FIRST spawn of a worker index gets
     the scripted kill, so a respawned worker cannot crash-loop *)
  let first_spawn = Array.make workers true in
  let conns = Array.make workers None in
  let pids = Array.make workers (-1) in
  let respawn_budget = ref ((workers * 4) + 8) in
  let spawn w =
    let wkill =
      match kill with
      | Some { kill_role = `Worker i; _ } when i = w && first_spawn.(w) -> kill
      | _ -> None
    in
    first_spawn.(w) <- false;
    let parent_fd, child_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 -> (
        Unix.close parent_fd;
        Array.iter
          (function Some c -> Net.close c | None -> ())
          conns;
        Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
        let conn = Net.of_fd child_fd in
        match worker_main ?kill:wkill ~worker:w conn with
        | () -> Unix._exit 0
        | exception Net.Closed -> Unix._exit 0
        | exception e ->
            Printf.eprintf "worker %d: %s\n%!" w (Printexc.to_string e);
            Unix._exit 10)
    | pid -> (
        Unix.close child_fd;
        let conn = Net.of_fd parent_fd in
        pids.(w) <- pid;
        conns.(w) <- Some conn;
        Net.send conn (Message.Hello { worker = w; workers; rounds = n_rounds });
        Probes.bump c_messages;
        match Net.recv ~timeout_s:round_timeout_s conn with
        | Some (Message.Ready { worker }) when worker = w ->
            Probes.bump c_messages
        | Some _ | None ->
            Printf.eprintf "coordinator: worker %d failed its handshake\n%!" w;
            Unix._exit 7
        | exception Net.Closed ->
            Printf.eprintf "coordinator: worker %d died in its handshake\n%!" w;
            Unix._exit 7)
  in
  let conn_of w =
    match conns.(w) with Some c -> c | None -> assert false
  in
  let respawn w =
    (match conns.(w) with Some c -> Net.close c | None -> ());
    if pids.(w) > 0 then ignore (waitpid_retry pids.(w));
    decr respawn_budget;
    if !respawn_budget < 0 then begin
      Printf.eprintf "coordinator: worker respawn storm, giving up\n%!";
      Unix._exit 7
    end;
    Probes.bump c_respawns;
    spawn w
  in
  (* send with transparent respawn: a dead worker is revived and the
     message redelivered (all protocol messages are idempotent) *)
  let rec send_to w msg =
    match Net.send (conn_of w) msg with
    | () -> Probes.bump c_messages
    | exception Net.Closed ->
        respawn w;
        send_to w msg
  in
  for w = 0 to workers - 1 do
    spawn w
  done;
  let committed0 = Journal.committed entries0 in
  let start = List.length committed0 in
  for k = start to n_rounds - 1 do
    let t0 = Probes.now_s () in
    if Journal.compare_phase phase0 (Journal.Executing_round k) < 0 then
      Journal.append journal (Journal.Round_started { round = k });
    Probes.bump c_rounds;
    let shards = M.Engine.shard_round inst ~workers rounds.(k) in
    let reported = Array.make workers false in
    let outstanding = ref workers in
    for w = 0 to workers - 1 do
      send_to w (Message.Round_start { round = k; edges = shards.(w) })
    done;
    while !outstanding > 0 do
      let tagged =
        List.filter_map
          (fun w -> Option.map (fun c -> (w, c)) conns.(w))
          (List.init workers Fun.id)
      in
      match Net.next ~timeout_s:round_timeout_s tagged with
      | Net.Msg (w, Message.Round_done { worker; round; edges }) ->
          Probes.bump c_messages;
          if worker = w && round = k && not reported.(w) then begin
            (* a shard is all-or-nothing: partial completion means the
               worker died mid-shard and never reported *)
            if List.sort compare edges <> List.sort compare shards.(w) then begin
              Printf.eprintf
                "coordinator: worker %d reported a wrong shard for round %d\n%!"
                w k;
              Unix._exit 6
            end;
            reported.(w) <- true;
            decr outstanding
          end
      | Net.Msg (_, _) -> Probes.bump c_messages (* stray frame; ignore *)
      | Net.Eof w ->
          respawn w;
          if not reported.(w) then
            send_to w (Message.Round_start { round = k; edges = shards.(w) })
      | Net.Timeout ->
          Printf.eprintf "coordinator: round %d stalled (timeout)\n%!" k;
          Unix._exit 7
    done;
    maybe_kill kill ~role:`Coordinator ~point:Coord_pre_commit ~round:k;
    (* the barrier: this fsync makes round k durable, in plan order *)
    Journal.append journal
      (Journal.Round_committed { round = k; edges = rounds.(k) });
    Probes.bump c_commits;
    maybe_kill kill ~role:`Coordinator ~point:Coord_post_commit ~round:k;
    for w = 0 to workers - 1 do
      send_to w (Message.Commit { round = k })
    done;
    Probes.record t_round (Probes.now_s () -. t0)
  done;
  if Journal.compare_phase phase0 Journal.All_certified < 0 then
    Journal.append journal Journal.Certified;
  (* farewell: collect each worker's probe snapshot so the metrics
     file covers the whole process tree *)
  for w = 0 to workers - 1 do
    (try
       send_to w Message.Finish;
       let rec collect () =
         match Net.recv ~timeout_s:round_timeout_s (conn_of w) with
         | Some (Message.Bye { metrics; _ }) -> (
             Probes.bump c_messages;
             match Probes.unmarshal_snapshot metrics with
             | Some snap -> Probes.absorb snap
             | None -> ())
         | Some _ ->
             Probes.bump c_messages;
             collect ()
         | None -> ()
       in
       collect ()
     with Net.Closed -> ());
    (match conns.(w) with Some c -> Net.close c | None -> ());
    if pids.(w) > 0 then ignore (waitpid_retry pids.(w))
  done;
  let oc = open_out (metrics_path state_dir) in
  output_string oc (Probes.marshal_snapshot (Probes.snapshot ()));
  output_char oc '\n';
  close_out oc;
  Journal.close journal

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)

let absorb_metrics state_dir =
  let path = metrics_path state_dir in
  if not (Sys.file_exists path) then 0
  else begin
    let ic = open_in path in
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    match Probes.unmarshal_snapshot line with
    | None -> 0
    | Some snap ->
        Probes.absorb snap;
        Option.value ~default:0 (List.assoc_opt "dist.respawns" snap.counters)
  end

let run ?kill ?(round_timeout_s = 30.0) ~workers ~seed ~state_dir inst =
  if workers < 1 then invalid_arg "Runner.run: workers must be >= 1";
  (try Unix.mkdir state_dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let jpath = journal_path state_dir in
  let entries0 = Journal.replay jpath in
  let digest = run_digest inst ~seed in
  match Journal.planned entries0 with
  | Some (d, _, _) when d <> digest ->
      Error
        (Printf.sprintf
           "state dir %s holds the journal of a different run (instance/seed \
            mismatch)"
           state_dir)
  | _ -> (
      let resumed = entries0 <> [] in
      flush stdout;
      flush stderr;
      match Unix.fork () with
      | 0 -> (
          match
            coordinator_main ?kill ~workers ~seed ~state_dir ~round_timeout_s
              inst
          with
          | () -> Unix._exit 0
          | exception e ->
              Printf.eprintf "coordinator: %s\n%!" (Printexc.to_string e);
              Unix._exit 9)
      | pid -> (
          let status = waitpid_retry pid in
          let entries = Journal.replay jpath in
          match status with
          | Unix.WEXITED 0 -> (
              let respawns = absorb_metrics state_dir in
              match Journal.planned entries with
              | None ->
                  Error "journal holds no plan record after a successful run"
              | Some (_, n_rounds, _) ->
                  let committed = Journal.committed entries in
                  let log =
                    List.map
                      (fun (_, edges) ->
                        {
                          M.Certify.attempted = edges;
                          completed = edges;
                          crashed = [];
                          slowed = [];
                        })
                      committed
                  in
                  let execution =
                    {
                      M.Certify.instance = inst;
                      log;
                      idle_rounds = 0;
                      quarantined = [];
                      replan_bounds = [ n_rounds ];
                    }
                  in
                  Ok
                    (Completed
                       {
                         execution;
                         rounds = List.length committed;
                         workers;
                         respawns;
                         skipped = List.length (Journal.committed entries0);
                         resumed;
                       }))
          | Unix.WEXITED 4 ->
              Error "journal does not match this instance/seed/plan"
          | Unix.WEXITED 5 -> Error "plan rejected by certifier"
          | Unix.WEXITED 6 ->
              Error "protocol error: a worker reported a wrong shard"
          | Unix.WEXITED 7 ->
              Error "protocol stall: handshake/timeout/respawn storm"
          | Unix.WEXITED n ->
              Error (Printf.sprintf "coordinator exited with status %d" n)
          | Unix.WSIGNALED s ->
              Ok (Interrupted { phase = Journal.phase_of entries; signal = s })
          | Unix.WSTOPPED _ -> Error "coordinator stopped unexpectedly"))
