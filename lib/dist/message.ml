(* Wire messages of the coordinator/worker protocol.

   One message per line: a lowercase tag followed by space-separated
   integer fields; edge lists are comma-separated ("-" when empty) so
   a field never holds spaces.  The one exception is the farewell
   metrics payload, which is the frame's final field and consumes the
   rest of the line.  [decode] is total — a malformed frame is an
   [Error], never an exception — because the bytes cross a process
   boundary and the peer may have died mid-write. *)

type t =
  | Hello of { worker : int; workers : int; rounds : int }
  | Ready of { worker : int }
  | Round_start of { round : int; edges : int list }
  | Round_done of { worker : int; round : int; edges : int list }
  | Commit of { round : int }
  | Finish
  | Bye of { worker : int; metrics : string }

let encode_edges = function
  | [] -> "-"
  | es -> String.concat "," (List.map string_of_int es)

let decode_edges = function
  | "-" -> Some []
  | s ->
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | p :: tl -> (
            match int_of_string_opt p with
            | Some v -> go (v :: acc) tl
            | None -> None)
      in
      go [] (String.split_on_char ',' s)

let encode = function
  | Hello { worker; workers; rounds } ->
      Printf.sprintf "hello %d %d %d" worker workers rounds
  | Ready { worker } -> Printf.sprintf "ready %d" worker
  | Round_start { round; edges } ->
      Printf.sprintf "round %d %s" round (encode_edges edges)
  | Round_done { worker; round; edges } ->
      Printf.sprintf "done %d %d %s" worker round (encode_edges edges)
  | Commit { round } -> Printf.sprintf "commit %d" round
  | Finish -> "finish"
  | Bye { worker; metrics } ->
      Printf.sprintf "bye %d %s" worker (if metrics = "" then "-" else metrics)

let decode line =
  let fail () = Error (Printf.sprintf "unparseable frame %S" line) in
  let int s k =
    match int_of_string_opt s with Some v -> k v | None -> fail ()
  in
  let edges s k = match decode_edges s with Some es -> k es | None -> fail () in
  match String.split_on_char ' ' line with
  | [ "hello"; w; n; r ] ->
      int w (fun worker ->
          int n (fun workers ->
              int r (fun rounds -> Ok (Hello { worker; workers; rounds }))))
  | [ "ready"; w ] -> int w (fun worker -> Ok (Ready { worker }))
  | [ "round"; r; es ] ->
      int r (fun round ->
          edges es (fun edges -> Ok (Round_start { round; edges })))
  | [ "done"; w; r; es ] ->
      int w (fun worker ->
          int r (fun round ->
              edges es (fun edges -> Ok (Round_done { worker; round; edges }))))
  | [ "commit"; r ] -> int r (fun round -> Ok (Commit { round }))
  | [ "finish" ] -> Ok Finish
  | "bye" :: w :: rest ->
      int w (fun worker ->
          let metrics =
            match rest with [ "-" ] -> "" | _ -> String.concat " " rest
          in
          Ok (Bye { worker; metrics }))
  | _ -> fail ()

let pp ppf m =
  match m with
  | Hello { worker; workers; rounds } ->
      Format.fprintf ppf "Hello(w%d of %d, %d rounds)" worker workers rounds
  | Ready { worker } -> Format.fprintf ppf "Ready(w%d)" worker
  | Round_start { round; edges } ->
      Format.fprintf ppf "RoundStart(r%d, %d edges)" round (List.length edges)
  | Round_done { worker; round; edges } ->
      Format.fprintf ppf "RoundDone(w%d, r%d, %d edges)" worker round
        (List.length edges)
  | Commit { round } -> Format.fprintf ppf "Commit(r%d)" round
  | Finish -> Format.fprintf ppf "Finish"
  | Bye { worker; _ } -> Format.fprintf ppf "Bye(w%d)" worker
