let coordinator = -1

type payload =
  | Prepare of { round : int; transfers : (int * int * int) list }
  | Transfer of { round : int; item : int; dst : int }
  | Item_ack of { round : int; item : int }
  | Round_done of { round : int }
  | Status_query
  | Status_report of { holder : int; items : int list }

type t = {
  from_node : int;
  to_node : int;
  sent_at : float;
  payload : payload;
}

let pp_payload ppf = function
  | Prepare { round; transfers } ->
      Format.fprintf ppf "Prepare(r%d, %d transfers)" round
        (List.length transfers)
  | Transfer { round; item; dst } ->
      Format.fprintf ppf "Transfer(r%d, item %d -> disk %d)" round item dst
  | Item_ack { round; item } -> Format.fprintf ppf "ItemAck(r%d, item %d)" round item
  | Round_done { round } -> Format.fprintf ppf "RoundDone(r%d)" round
  | Status_query -> Format.fprintf ppf "StatusQuery"
  | Status_report { holder; items } ->
      Format.fprintf ppf "StatusReport(disk %d, %d items)" holder
        (List.length items)

let pp ppf m =
  Format.fprintf ppf "%d -> %d @%.2f: %a" m.from_node m.to_node m.sent_at
    pp_payload m.payload
