(** Umbrella module for the distributed control plane. *)

module Message = Message
module Net = Net
module Journal = Journal
module Runner = Runner
