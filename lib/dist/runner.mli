(** Distributed plan execution: real processes, durable rounds.

    [run ~workers:n] forks a coordinator which plans (byte-identically
    to {!Migration.Engine.run} seeded with {!plan_rng}), certifies,
    and drives the plan round by round across [n] worker processes
    over local socketpairs.  Progress is a phase machine — [Planned →
    Sharded → round k executing → round k committed → … → Certified] —
    persisted write-ahead in the state dir's fsync'd {!Journal}, so
    the run is durable and resumable:

    - [kill -9] of a {e worker} is absorbed within the run: the
      coordinator reaps it, respawns the index and re-issues the
      current round's shard unless that worker already reported it;
    - [kill -9] of the {e coordinator} surfaces as [Ok (Interrupted
      _)]; calling [run] again with the same arguments resumes from
      the journal — committed rounds are skipped ([skipped] counts
      them), the one possibly in-flight round is re-issued exactly
      once, and a journal already at [Certified] makes the re-run a
      reporting no-op.

    {b Determinism contract}: for a fixed instance and [seed], the
    completed [outcome.execution] renders
    ({!Migration.Certify.execution_to_string}) byte-identically to
    [Engine.run ~rng:(plan_rng seed) ~policy:Engine.no_faults] — at
    any [workers], across any crash/resume schedule.  Rounds commit in
    plan order carrying the plan's own edge order, so worker count and
    report interleaving never leak into the flight log.

    Instrumentation: ["dist.rounds"], ["dist.commits"],
    ["dist.respawns"], ["dist.resumes"], ["dist.messages"],
    ["dist.transfers"] (worker-side, shipped home in [Bye]) and the
    ["dist.round"] timer.  Child processes report their snapshots up
    the tree, so the caller's {!Migration.Instr.snapshot} after [run]
    covers coordinator and workers too.

    Forking caveat: [run] forks, which is only safe while no other
    domains are live — callers must not hold an {!Exec} pool open
    across it (the library itself plans with [jobs:1]). *)

(** Scripted crash injection, for the crash-recovery battery and the
    fuzz soak: the matching process SIGKILLs itself at the named
    point of the named round — indistinguishable from an external
    [kill -9].  Specs are one-shot: respawned workers and resumed
    coordinators never re-arm them. *)
type kill_point =
  | Worker_pre_round  (** shard received, nothing executed *)
  | Worker_mid_round  (** half the shard executed *)
  | Worker_post_report  (** report sent, ack never seen *)
  | Coord_pre_commit  (** all reports in, commit record not yet durable *)
  | Coord_post_commit  (** commit durable, barrier release never sent *)

type kill_role = [ `Worker of int | `Coordinator ]
type kill_spec = { kill_role : kill_role; kill_point : kill_point; kill_round : int }

val kill_point_to_string : kill_point -> string

type outcome = {
  execution : Migration.Certify.execution;
      (** reconstructed from the journal's committed rounds; passes
          {!Migration.Certify.certify_execution} and byte-matches the
          in-process engine *)
  rounds : int;  (** rounds committed, ever (including prior runs) *)
  workers : int;
  respawns : int;  (** workers revived during this run *)
  skipped : int;  (** rounds already committed when this run started *)
  resumed : bool;  (** the journal was non-empty at start *)
}

type result =
  | Completed of outcome
  | Interrupted of { phase : Journal.phase; signal : int }
      (** the coordinator died; the journal holds [phase] — call [run]
          again to resume *)

val plan_rng : int -> Random.State.t
(** The planning RNG for [seed] — pass the same to
    {!Migration.Engine.run} when byte-comparing flight logs. *)

val run :
  ?kill:kill_spec ->
  ?round_timeout_s:float ->
  workers:int ->
  seed:int ->
  state_dir:string ->
  Migration.Instance.t ->
  (result, string) Stdlib.result
(** Execute (or resume) the migration of the instance.  [state_dir]
    is created if missing and owns the journal and the metrics file; a
    journal written by a different instance/seed is refused with
    [Error].  [round_timeout_s] (default 30s) bounds every protocol
    wait — a stall is an [Error], never a hang.
    @raise Invalid_argument on [workers < 1]. *)
