(** The distributed migration protocol, executed.

    A coordinator drives a {!Migration.Schedule.t} round by round over
    a lossy network:

    + broadcast {!Message.Prepare} with the round's transfer list to
      every source disk;
    + source disks emit {!Message.Transfer} data messages; destination
      disks install the item and send {!Message.Item_ack} to the
      coordinator (installation is idempotent, so duplicates from
      retransmissions are harmless);
    + the round barrier is "every item of the round acked"; on a
      timeout the coordinator re-broadcasts a Prepare containing only
      the still-missing transfers;
    + when the barrier releases, {!Message.Round_done} is broadcast
      and the next round starts.

    The run is a deterministic discrete-event simulation (fixed seed);
    the report exposes what an operator would meter: virtual wall
    time, message and retransmission counts, drops.

    This realizes the paper's synchronous-round abstraction on an
    asynchronous fault-prone substrate — the gap between "a schedule
    exists" and "a cluster executed it". *)

type report = {
  rounds : int;
  wall_time : float;           (** virtual time until the last barrier *)
  messages_offered : int;
  messages_dropped : int;
  retransmissions : int;       (** Prepare re-broadcasts and re-queries *)
  items_delivered : int;
  failovers : int;             (** coordinator crashes recovered from *)
}

exception Protocol_stuck of string

(** [run ?timeout ?crash net job sched] executes [sched]; mutates
    nothing (the job is read-only; final placement correctness is
    checked internally and asserted).  [timeout] is the coordinator's
    retransmit timer (default 6.0).

    [crash = (at, recovery_delay)] kills the coordinator at virtual
    time [at], losing all its round state; a stand-by takes over after
    [recovery_delay], reconstructs progress by broadcasting
    {!Message.Status_query} and collecting {!Message.Status_report}s,
    then resumes from the first incomplete round.  In-flight transfers
    keep landing during the outage — the disks never stop.
    @raise Protocol_stuck if progress stalls beyond the retransmission
    budget (only possible at extreme loss rates). *)
val run :
  ?timeout:float -> ?crash:float * float -> Net.t -> Storsim.Cluster.job ->
  Migration.Schedule.t -> report
