(** Wire messages of the coordinator/worker protocol.

    The paper schedules rounds; this layer is how separate {e
    processes} actually run them.  A coordinator owns the certified
    plan, shards each round across N workers, and advances the round
    barrier only after every shard reports back; workers execute their
    shard of transfers and report completions.  Frames are
    line-oriented text — one message per line, integer fields, edge
    lists comma-separated — so the protocol is greppable in a pipe
    trace and a torn frame (the peer died mid-write) is cheap to
    reject.

    Every message is idempotent at the receiver: a respawned worker
    re-sent its [Round_start] simply redoes the shard, and a
    coordinator that already marked a shard reported ignores the
    duplicate [Round_done] — the durability story (journal commits)
    never depends on a frame arriving exactly once. *)

type t =
  | Hello of { worker : int; workers : int; rounds : int }
      (** coordinator → worker: your identity and the plan shape *)
  | Ready of { worker : int }  (** worker → coordinator: handshake ack *)
  | Round_start of { round : int; edges : int list }
      (** coordinator → worker: execute this shard of [round] *)
  | Round_done of { worker : int; round : int; edges : int list }
      (** worker → coordinator: shard done, completions attached *)
  | Commit of { round : int }
      (** coordinator → worker: barrier release — [round] is durable *)
  | Finish  (** coordinator → worker: no more rounds *)
  | Bye of { worker : int; metrics : string }
      (** worker → coordinator: farewell carrying the worker's probe
          snapshot ({!Instr.Probes.marshal_snapshot}); the metrics
          field is the rest of the line and may contain spaces *)

val encode : t -> string
(** One line, no trailing newline. *)

val decode : string -> (t, string) result
(** Total: a malformed frame is [Error], never an exception. *)

val pp : Format.formatter -> t -> unit
