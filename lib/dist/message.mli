(** Protocol messages for distributed migration orchestration.

    The paper schedules rounds; this layer is how a cluster actually
    runs them: a coordinator broadcasts each round's transfer list,
    source disks push the data, destination disks acknowledge to the
    coordinator, and the round barrier is "all acks received".  All
    messages are idempotent so the coordinator can retransmit on
    timeout over lossy links.

    Node addressing: disks are [0 .. n-1]; the coordinator is the
    distinguished id {!coordinator}. *)

(** The coordinator's node id (disks are [>= 0]). *)
val coordinator : int

type payload =
  | Prepare of { round : int; transfers : (int * int * int) list }
      (** [(item, src, dst)] — the round's transfer list, broadcast to
          every disk that sources a transfer (idempotent: re-received
          transfers already performed are ignored) *)
  | Transfer of { round : int; item : int; dst : int }
      (** the data message, source disk → destination disk *)
  | Item_ack of { round : int; item : int }
      (** destination disk → coordinator: item installed *)
  | Round_done of { round : int }
      (** coordinator → all participants: barrier released *)
  | Status_query
      (** recovering coordinator → disk: which scheduled items do you
          hold? *)
  | Status_report of { holder : int; items : int list }
      (** disk → coordinator: installed items (among those the
          schedule targets at this disk) *)

type t = {
  from_node : int;
  to_node : int;
  sent_at : float;
  payload : payload;
}

val pp : Format.formatter -> t -> unit
