(** Line-framed messaging over real file descriptors.

    The transport under the coordinator/worker protocol: one
    {!Message.t} per '\n'-terminated line, over whatever fd pair the
    runner set up (socketpairs for local workers).  The design centers
    on surviving [kill -9] of the peer — every failure mode funnels
    into {!Closed} (on send: EPIPE/ECONNRESET; on receive: EOF with
    nothing buffered), and a torn final frame from a peer that died
    mid-write is discarded, never delivered as a message.

    {!next} is the coordinator's multiplexer: it drains
    already-buffered frames without a syscall first (scanning
    connections in caller order, which keeps the event sequence
    deterministic for a fixed message arrival order), then selects on
    the live fds.  A connection that hits EOF or produces a torn frame
    surfaces as {!Eof} of its tag so one dying worker never crashes the
    loop; the caller must drop the connection from its list after an
    [Eof], or [next] will keep returning it. *)

exception Closed
(** The peer is gone: write to a broken pipe, or end-of-stream with no
    complete frame buffered. *)

type conn

val of_fd : Unix.file_descr -> conn
val fd : conn -> Unix.file_descr

val close : conn -> unit
(** Close the fd; idempotent, never raises. *)

val send : conn -> Message.t -> unit
(** Write one framed message, retrying short writes.
    @raise Closed if the peer is gone. *)

val recv : ?timeout_s:float -> conn -> Message.t option
(** Next message from this connection; blocks (up to [timeout_s] when
    given — [None] on timeout).
    @raise Closed on EOF or a torn frame. *)

type 'a event =
  | Msg of 'a * Message.t
  | Eof of 'a  (** that connection is dead (EOF or torn frame) *)
  | Timeout

val next : ?timeout_s:float -> ('a * conn) list -> 'a event
(** One event from any of the tagged connections (default timeout
    30s).  Buffered frames win without a syscall; otherwise selects.
    Remove a connection after its [Eof] — it is reported again until
    dropped. *)
