(** Lossy, delayed message delivery.

    Control messages take [latency] (± uniform [jitter]); data messages
    ({!Message.Transfer}) additionally pay [per_item] transfer time.
    Every message is independently dropped with probability [loss].
    Deterministic for a fixed seed.

    The network owns the global event queue: components call
    {!send}, the {!Runner} pops deliveries in timestamp order. *)

type t

(** Defaults: [latency = 0.1], [jitter = 0.02], [per_item = 1.0] (data
    transfer service time), [loss = 0.0].
    @raise Invalid_argument on negative latency/jitter/per_item or
    [loss] outside [0, 1). *)
val create :
  ?latency:float ->
  ?jitter:float ->
  ?per_item:float ->
  ?loss:float ->
  seed:int ->
  unit ->
  t

(** [send net ~now msg] enqueues [msg] for future delivery (or drops
    it). *)
val send : t -> now:float -> Message.t -> unit

(** Earliest undelivered message, removed from the queue; [None] when
    the network is quiet. *)
val next_delivery : t -> (float * Message.t) option

(** [requeue net at msg] puts a popped delivery back unchanged (no
    extra latency, no loss) — used by the runner when a timer fires
    before the next delivery. *)
val requeue : t -> float -> Message.t -> unit

(** Statistics: messages offered, dropped, delivered so far. *)
val offered : t -> int

val dropped : t -> int
