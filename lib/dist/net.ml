type t = {
  latency : float;
  jitter : float;
  per_item : float;
  loss : float;
  rng : Random.State.t;
  queue : (float * Message.t) Mgraph.Heap.t;
  mutable offered : int;
  mutable dropped : int;
}

let create ?(latency = 0.1) ?(jitter = 0.02) ?(per_item = 1.0) ?(loss = 0.0)
    ~seed () =
  if latency < 0.0 || jitter < 0.0 || per_item < 0.0 then
    invalid_arg "Net.create: negative timing";
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Net.create: loss in [0, 1)";
  {
    latency;
    jitter;
    per_item;
    loss;
    rng = Random.State.make [| seed; 0xd157 |];
    queue = Mgraph.Heap.create ~leq:(fun (a, _) (b, _) -> a <= b) ();
    offered = 0;
    dropped = 0;
  }

let send net ~now msg =
  net.offered <- net.offered + 1;
  if Random.State.float net.rng 1.0 < net.loss then
    net.dropped <- net.dropped + 1
  else begin
    let base =
      net.latency
      +. (if net.jitter > 0.0 then Random.State.float net.rng net.jitter
          else 0.0)
    in
    let service =
      match msg.Message.payload with
      | Message.Transfer _ -> net.per_item
      | _ -> 0.0
    in
    Mgraph.Heap.push net.queue (now +. base +. service, msg)
  end

let next_delivery net = Mgraph.Heap.pop_opt net.queue
let requeue net at msg = Mgraph.Heap.push net.queue (at, msg)
let offered net = net.offered
let dropped net = net.dropped
