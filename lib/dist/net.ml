(* Line-framed messaging over real file descriptors.

   Each connection buffers raw bytes and splits complete '\n'-framed
   lines; a partial tail stays in the buffer until the next read.  All
   the failure modes of a kill -9'd peer funnel into two outcomes: a
   send raises [Closed] (EPIPE & friends), and a recv raises [Closed]
   once the read side hits EOF with nothing buffered — a torn final
   frame (peer died mid-write) is discarded, never delivered.  The
   coordinator's event loop multiplexes many connections with [next],
   which prefers already-buffered frames (no syscall) before falling
   back to Unix.select; there a torn frame surfaces as that
   connection's [Eof], so one dying worker can never crash the loop. *)

exception Closed

type conn = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;  (* raw bytes, possibly a partial frame at the tail *)
  mutable lines : string list;  (* complete frames, oldest first *)
  mutable eof : bool;
}

let of_fd fd = { fd; rbuf = Buffer.create 256; lines = []; eof = false }
let fd c = c.fd

let close c =
  c.eof <- true;
  try Unix.close c.fd
  with Unix.Unix_error (_, _, _) -> ()

let send c msg =
  let line = Message.encode msg ^ "\n" in
  let bytes = Bytes.of_string line in
  let len = Bytes.length bytes in
  let rec write_all off =
    if off < len then begin
      let n =
        try Unix.write c.fd bytes off (len - off) with
        | Unix.Unix_error (Unix.EINTR, _, _) -> 0
        | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
          ->
            raise Closed
      in
      write_all (off + n)
    end
  in
  write_all 0

(* Split the complete frames out of [rbuf], leaving any partial tail. *)
let harvest c =
  let s = Buffer.contents c.rbuf in
  match String.rindex_opt s '\n' with
  | None -> ()
  | Some last ->
      let complete = String.sub s 0 last in
      let tail = String.sub s (last + 1) (String.length s - last - 1) in
      Buffer.clear c.rbuf;
      Buffer.add_string c.rbuf tail;
      let frames = String.split_on_char '\n' complete in
      c.lines <- c.lines @ frames

(* Pull more bytes; true if any may follow, false on EOF. *)
let refill c =
  let buf = Bytes.create 4096 in
  let n =
    try Unix.read c.fd buf 0 4096 with
    | Unix.Unix_error (Unix.EINTR, _, _) -> -1
    | Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF), _, _) -> 0
  in
  if n < 0 then true (* interrupted; caller loops *)
  else if n = 0 then begin
    c.eof <- true;
    false
  end
  else begin
    Buffer.add_subbytes c.rbuf buf 0 n;
    harvest c;
    true
  end

let pop_line c =
  match c.lines with
  | l :: tl ->
      c.lines <- tl;
      Some l
  | [] -> None

exception Recv_timeout

let rec recv_loop timeout_s c =
  match pop_line c with
  | Some l -> (
      match Message.decode l with
      | Ok m -> m
      | Error _ -> raise Closed (* torn frame: the peer is gone *))
  | None ->
      if c.eof then raise Closed;
      (match timeout_s with
      | None -> ()
      | Some t ->
          let r, _, _ =
            try Unix.select [ c.fd ] [] [] t
            with Unix.Unix_error (Unix.EINTR, _, _) -> ([ c.fd ], [], [])
          in
          if r = [] then raise Recv_timeout);
      if not (refill c) then raise Closed;
      recv_loop timeout_s c

let recv ?timeout_s c =
  try Some (recv_loop timeout_s c) with Recv_timeout -> None

type 'a event = Msg of 'a * Message.t | Eof of 'a | Timeout

let rec next ?(timeout_s = 30.0) conns =
  (* buffered frames first: no syscall, deterministic caller order *)
  let rec buffered = function
    | [] -> None
    | (tag, c) :: tl -> (
        match pop_line c with
        | Some l -> (
            match Message.decode l with
            | Ok m -> Some (Msg (tag, m))
            | Error _ ->
                c.eof <- true;
                Some (Eof tag))
        | None -> buffered tl)
  in
  match buffered conns with
  | Some ev -> ev
  | None -> (
      match List.find_opt (fun (_, c) -> c.eof) conns with
      | Some (tag, _) -> Eof tag
      | None -> (
          let fds = List.map (fun (_, c) -> c.fd) conns in
          let ready, _, _ =
            try Unix.select fds [] [] timeout_s
            with Unix.Unix_error (Unix.EINTR, _, _) -> (fds, [], [])
          in
          match ready with
          | [] -> Timeout
          | rd :: _ -> (
              let tag, c = List.find (fun (_, c) -> c.fd = rd) conns in
              if not (refill c) then Eof tag
              else
                match pop_line c with
                | Some l -> (
                    match Message.decode l with
                    | Ok m -> Msg (tag, m)
                    | Error _ ->
                        c.eof <- true;
                        Eof tag)
                | None ->
                    (* partial frame only: keep waiting for the rest *)
                    next ~timeout_s conns)))
