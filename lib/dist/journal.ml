(* Append-only, fsync'd progress log.

   One record per line: "<seq>\t<payload>\t<md5hex(seq TAB payload)>".
   Records are appended with a single write(2) followed by fsync, so a
   crash leaves at worst one torn record at the tail; [replay]
   tolerates exactly that — it stops at the first record that fails
   the checksum, the sequence check, or the parse, and returns the
   valid prefix.  Idempotent resume is built on the phase order:
   committed phases are skipped, the one in-flight round is re-issued. *)

type entry =
  | Planned of { digest : string; rounds : int; plan_md5 : string }
  | Sharded of { workers : int }
  | Round_started of { round : int }
  | Round_committed of { round : int; edges : int list }
  | Certified

type phase =
  | Empty
  | Planned_phase
  | Sharded_phase
  | Executing_round of int
  | Committed_round of int
  | All_certified

let phase_rank = function
  | Empty -> 0
  | Planned_phase -> 1
  | Sharded_phase -> 2
  | Executing_round k -> 3 + (2 * k)
  | Committed_round k -> 4 + (2 * k)
  | All_certified -> max_int

let compare_phase a b = compare (phase_rank a) (phase_rank b)

let phase_to_string = function
  | Empty -> "empty"
  | Planned_phase -> "planned"
  | Sharded_phase -> "sharded"
  | Executing_round k -> Printf.sprintf "round %d executing" k
  | Committed_round k -> Printf.sprintf "round %d committed" k
  | All_certified -> "certified"

let edges_field = function
  | [] -> "-"
  | es -> String.concat "," (List.map string_of_int es)

let payload_of_entry = function
  | Planned { digest; rounds; plan_md5 } ->
      Printf.sprintf "planned %s %d %s" digest rounds plan_md5
  | Sharded { workers } -> Printf.sprintf "sharded %d" workers
  | Round_started { round } -> Printf.sprintf "started %d" round
  | Round_committed { round; edges } ->
      Printf.sprintf "committed %d %s" round (edges_field edges)
  | Certified -> "certified"

let entry_of_payload s =
  let int v = int_of_string_opt v in
  match String.split_on_char ' ' s with
  | [ "planned"; digest; r; plan_md5 ] ->
      Option.map (fun rounds -> Planned { digest; rounds; plan_md5 }) (int r)
  | [ "sharded"; w ] -> Option.map (fun workers -> Sharded { workers }) (int w)
  | [ "started"; r ] -> Option.map (fun round -> Round_started { round }) (int r)
  | [ "committed"; r; "-" ] ->
      Option.map (fun round -> Round_committed { round; edges = [] }) (int r)
  | [ "committed"; r; es ] -> (
      match int r with
      | None -> None
      | Some round ->
          let parts = String.split_on_char ',' es in
          let rec go acc = function
            | [] -> Some (Round_committed { round; edges = List.rev acc })
            | p :: tl -> (
                match int p with Some v -> go (v :: acc) tl | None -> None)
          in
          go [] parts)
  | [ "certified" ] -> Some Certified
  | _ -> None

let checksum seq payload =
  Digest.to_hex (Digest.string (string_of_int seq ^ "\t" ^ payload))

type t = { jfd : Unix.file_descr; mutable next_seq : int }

(* [replay_prefix] also returns the byte length of the valid prefix so
   [open_] can truncate a torn tail away before appending: an O_APPEND
   write after a torn partial line would glue the new record onto the
   damaged bytes and corrupt it too.  A final line with no trailing
   newline is itself a torn record — the '\n' is the commit point of
   the single write(2) — so it is rejected even if its checksum holds. *)
let replay_prefix path =
  if not (Sys.file_exists path) then ([], 0)
  else begin
    let ic = open_in_bin path in
    let entries = ref [] in
    let seq = ref 0 in
    let valid = ref 0 in
    (try
       let stop = ref false in
       while not !stop do
         let start = pos_in ic in
         match input_line ic with
         | exception End_of_file -> stop := true
         | line ->
             let terminated =
               pos_in ic = start + String.length line + 1
             in
             if not terminated then stop := true
             else begin
               match String.split_on_char '\t' line with
               | [ s; payload; sum ] -> (
                   match int_of_string_opt s with
                   | Some n
                     when n = !seq
                          && String.lowercase_ascii sum = checksum n payload
                     -> (
                       match entry_of_payload payload with
                       | Some e ->
                           entries := e :: !entries;
                           incr seq;
                           valid := pos_in ic
                       | None -> stop := true)
                   | Some _ | None -> stop := true)
               | _ -> stop := true
             end
       done
     with e ->
       close_in_noerr ic;
       raise e);
    close_in ic;
    (List.rev !entries, !valid)
  end

let replay path = fst (replay_prefix path)

let open_ path =
  let existing, valid_len = replay_prefix path in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  in
  Unix.ftruncate fd valid_len;
  ({ jfd = fd; next_seq = List.length existing }, existing)

let append t entry =
  let payload = payload_of_entry entry in
  let seq = t.next_seq in
  let line =
    Printf.sprintf "%d\t%s\t%s\n" seq payload (checksum seq payload)
  in
  let bytes = Bytes.of_string line in
  let len = Bytes.length bytes in
  let rec write_all off =
    if off < len then
      let n =
        try Unix.write t.jfd bytes off (len - off)
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      write_all (off + n)
  in
  write_all 0;
  Unix.fsync t.jfd;
  t.next_seq <- seq + 1

let close t = try Unix.close t.jfd with Unix.Unix_error (_, _, _) -> ()

let phase_of entries =
  List.fold_left
    (fun ph e ->
      let p =
        match e with
        | Planned _ -> Planned_phase
        | Sharded _ -> Sharded_phase
        | Round_started { round } -> Executing_round round
        | Round_committed { round; _ } -> Committed_round round
        | Certified -> All_certified
      in
      if compare_phase p ph > 0 then p else ph)
    Empty entries

let committed entries =
  List.rev
    (List.fold_left
       (fun acc e ->
         match e with
         | Round_committed { round; edges } ->
             if List.mem_assoc round acc then acc else (round, edges) :: acc
         | _ -> acc)
       [] entries)

let planned entries =
  List.find_map
    (function
      | Planned { digest; rounds; plan_md5 } -> Some (digest, rounds, plan_md5)
      | _ -> None)
    entries
