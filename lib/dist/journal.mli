(** Durable, resumable coordinator state: an append-only progress log.

    The coordinator's phase machine — [Planned → Sharded → round k
    executing → round k committed → … → Certified] — is persisted one
    phase transition per record, each a single [write(2)] followed by
    [fsync], so a [kill -9] at any instant leaves at worst one torn
    record at the file's tail.  {!replay} is torn-tail tolerant by
    construction: every record carries an MD5 checksum over its
    sequence number and payload, and replay stops at the first record
    failing the checksum, the dense sequence check, or the parse,
    returning the valid prefix.

    Resume is idempotent on this prefix: phases at or below the
    replayed high-water mark are skipped (their records are never
    re-appended), the single possibly-in-flight round — [Round_started
    k] without a matching [Round_committed k] — is re-issued exactly
    once, and a journal already at [Certified] makes the whole run a
    no-op that reports the same outcome. *)

type entry =
  | Planned of { digest : string; rounds : int; plan_md5 : string }
      (** instance+seed digest, plan shape, and the plan's own md5 —
          enough to refuse resuming against the wrong instance or a
          non-reproducible plan *)
  | Sharded of { workers : int }
  | Round_started of { round : int }
  | Round_committed of { round : int; edges : int list }
      (** the barrier: [edges] is the full round in plan order *)
  | Certified

(** Phases in execution order; {!compare_phase} orders them
    [Empty < Planned < Sharded < Executing 0 < Committed 0 <
    Executing 1 < … < All_certified]. *)
type phase =
  | Empty
  | Planned_phase
  | Sharded_phase
  | Executing_round of int
  | Committed_round of int
  | All_certified

val compare_phase : phase -> phase -> int
val phase_to_string : phase -> string

type t
(** An open journal handle (write side). *)

val open_ : string -> t * entry list
(** Open (creating if absent) and replay: the returned entries are the
    valid prefix already on disk; appends continue after it. *)

val append : t -> entry -> unit
(** Append one record: a single write followed by [fsync]. *)

val close : t -> unit

val replay : string -> entry list
(** Read-only replay of the valid prefix; [[]] when the file does not
    exist.  Stops silently at the first torn or corrupt record. *)

val phase_of : entry list -> phase
(** The high-water phase of a replayed prefix. *)

val committed : entry list -> (int * int list) list
(** The committed rounds, in round order, first record winning —
    replaying a journal twice yields the same list. *)

val planned : entry list -> (string * int * string) option
(** The [Planned] record's [(digest, rounds, plan_md5)], if present. *)
