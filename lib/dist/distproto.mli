(** Umbrella module for the distributed orchestration protocol. *)

module Message = Message
module Net = Net
module Runner = Runner
