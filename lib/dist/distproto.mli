(** Umbrella module for the distributed control plane.

    {!Runner} forks a coordinator and N worker processes that execute
    a certified plan round by round; {!Message}/{!Net} are the
    line-framed protocol between them; {!Journal} is the coordinator's
    durable phase log that makes every run resumable after [kill -9]. *)

module Message = Message
module Net = Net
module Journal = Journal
module Runner = Runner
