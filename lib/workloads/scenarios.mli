(** End-to-end migration scenarios.

    Each scenario builds a cluster in some "before" state and a target
    placement for the "after" state — the three operational stories the
    paper's introduction motivates: demand-driven rebalancing, disk
    additions, and disk removals/decommissioning.  Feed the result to
    {!Storsim.Simulator.run} with a planner of your choice. *)

type t = {
  name : string;
  cluster : Storsim.Cluster.t;
  target : Storsim.Placement.t;
  demands : float array;
}

(** Demand shift between epochs forces a new balanced layout.
    [caps] is cycled over disks (heterogeneous device generations);
    [shift_fraction] of items change popularity rank. *)
val rebalance :
  Random.State.t ->
  n_disks:int ->
  n_items:int ->
  ?zipf_s:float ->
  ?shift_fraction:float ->
  ?caps:int list ->
  unit ->
  t

(** [n_new] empty disks join; enough items move onto them to even out
    item counts (minimal-movement retarget, old data mostly stays). *)
val disk_addition :
  Random.State.t ->
  n_old:int ->
  n_new:int ->
  n_items:int ->
  ?old_cap:int ->
  ?new_cap:int ->
  unit ->
  t

(** The last [n_remove] disks are decommissioned: their items evacuate
    to the survivors, which may not exceed their fair share. *)
val disk_removal :
  Random.State.t ->
  n_disks:int ->
  n_remove:int ->
  n_items:int ->
  ?caps:int list ->
  unit ->
  t

(** A disk dies outright: like removal, but the evacuating transfers
    are re-sourced from the replica disk (next disk in ring order) —
    modelling re-replication from surviving copies. *)
val failure_recovery :
  Random.State.t -> n_disks:int -> failed:int -> n_items:int ->
  ?caps:int list -> unit -> t

(** Restriping after expansion: a striped multimedia array
    ({!Layout.striped}) grows from [n_old] to [n_old + n_new] disks.
    [`Full] recomputes the stripe over the new width (the classic
    approach — it relocates almost every block); [`Minimal] moves only
    enough blocks to even out the load.  The pair quantifies what
    stripe-purity costs in migration volume. *)
val restripe :
  Random.State.t ->
  n_old:int ->
  n_new:int ->
  n_objects:int ->
  blocks_per_object:int ->
  ?cap:int ->
  mode:[ `Full | `Minimal ] ->
  unit ->
  t
