(** Item popularity models.

    Storage workloads are skewed: a few hot items draw most of the
    traffic (the video-on-demand and search-cluster workloads the
    paper's introduction cites).  Demands here follow a Zipf law with
    exponent [s]; layouts are computed from demands, and demand {e
    shifts} between two epochs are what force data migration. *)

(** [zipf_weights ~n ~s] is the normalized popularity vector
    [w_i ∝ 1/(i+1)^s], summing to 1.
    @raise Invalid_argument if [n <= 0] or [s < 0]. *)
val zipf_weights : n:int -> s:float -> float array

(** [demands rng ~n ~s] is a Zipf popularity vector over items in a
    {e random} rank order (so hot items land on random ids). *)
val demands : Random.State.t -> n:int -> s:float -> float array

(** [shift rng ~fraction d] re-ranks a random [fraction] of items —
    the epoch-over-epoch popularity churn that triggers rebalancing. *)
val shift : Random.State.t -> fraction:float -> float array -> float array

(** [sizes rng ~n ~alpha] draws heavy-tailed item sizes (Pareto with
    shape [alpha], scale 1): most items are near 1, a few are large —
    the usual object-store profile.  All sizes are positive.
    @raise Invalid_argument if [alpha <= 0]. *)
val sizes : Random.State.t -> n:int -> alpha:float -> float array
