(** Demand-driven data layouts.

    A layout assigns items to disks so that demand is balanced in
    proportion to disk service weights — the load-balancing objective
    whose reconfiguration over time is the paper's first motivating
    scenario.  The greedy LPT heuristic (heaviest item to the
    relatively least-loaded disk) is the standard practical choice. *)

(** [balance ~demands ~weights] places each item on a disk; disk [d]
    aims to carry a demand share proportional to [weights.(d)].
    @raise Invalid_argument on empty or non-positive weights. *)
val balance : demands:float array -> weights:float array -> Storsim.Placement.t

(** Demand carried per disk under a placement. *)
val disk_demand :
  demands:float array -> Storsim.Placement.t -> n_disks:int -> float array

(** Max over disks of (carried demand / weight share), a load-balance
    quality measure ([1.0] = perfect). *)
val imbalance :
  demands:float array -> weights:float array -> Storsim.Placement.t -> float

(** Striped layouts (staggered striping, Berson et al., cited as the
    multimedia-placement reference in the paper's related work):
    object [o]'s block [b] — item id [o * blocks_per_object + b] —
    lands on disk [(o * stagger + b) mod n_disks].  Sequential reads
    of an object then fan across disks, and consecutive objects start
    on staggered offsets.
    @raise Invalid_argument on non-positive dimensions. *)
val striped :
  n_objects:int -> blocks_per_object:int -> n_disks:int -> ?stagger:int ->
  unit -> Storsim.Placement.t

(** Migration-aware rebalancing: starting from [current], move items
    {e only} off disks that exceed [(1 + tolerance)] times their fair
    demand share, onto the relatively least-loaded disks, until every
    disk is within tolerance (or no single move helps).  Trades a
    bounded residual imbalance for far fewer items migrated than a
    from-scratch {!balance} — the knob benchmark E17 sweeps.
    @raise Invalid_argument if [tolerance < 0]. *)
val rebalance_incremental :
  demands:float array ->
  weights:float array ->
  current:Storsim.Placement.t ->
  tolerance:float ->
  Storsim.Placement.t
