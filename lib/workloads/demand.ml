let zipf_weights ~n ~s =
  if n <= 0 then invalid_arg "Demand.zipf_weights: n must be positive";
  if s < 0.0 then invalid_arg "Demand.zipf_weights: s must be >= 0";
  let raw = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 raw in
  Array.map (fun w -> w /. total) raw

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

let demands rng ~n ~s =
  let w = zipf_weights ~n ~s in
  shuffle rng w;
  w

let sizes rng ~n ~alpha =
  if alpha <= 0.0 then invalid_arg "Demand.sizes: alpha must be positive";
  Array.init n (fun _ ->
      let u = 1.0 -. Random.State.float rng 1.0 (* (0, 1] *) in
      u ** (-1.0 /. alpha))

let shift rng ~fraction d =
  if fraction < 0.0 || fraction > 1.0 then invalid_arg "Demand.shift";
  let n = Array.length d in
  let d' = Array.copy d in
  let k = int_of_float (ceil (fraction *. float_of_int n)) in
  (* pick k random positions and permute their demands *)
  let picked = Array.init n Fun.id in
  shuffle rng picked;
  let chosen = Array.sub picked 0 k in
  let values = Array.map (fun i -> d'.(i)) chosen in
  shuffle rng values;
  Array.iteri (fun j i -> d'.(i) <- values.(j)) chosen;
  d'
