(** Umbrella module for workload generation. *)

module Demand = Demand
module Layout = Layout
module Scenarios = Scenarios
