let check_weights weights =
  if Array.length weights = 0 then invalid_arg "Layout: no disks";
  Array.iter
    (fun w -> if w <= 0.0 then invalid_arg "Layout: weights must be positive")
    weights

let balance ~demands ~weights =
  check_weights weights;
  let n_disks = Array.length weights in
  let carried = Array.make n_disks 0.0 in
  let order = Array.init (Array.length demands) Fun.id in
  Array.sort (fun i j -> compare demands.(j) demands.(i)) order;
  let assignment = Array.make (Array.length demands) 0 in
  Array.iter
    (fun item ->
      (* disk with the smallest relative load *)
      let best = ref 0 in
      for d = 1 to n_disks - 1 do
        if carried.(d) /. weights.(d) < carried.(!best) /. weights.(!best) then
          best := d
      done;
      assignment.(item) <- !best;
      carried.(!best) <- carried.(!best) +. demands.(item))
    order;
  Storsim.Placement.of_array assignment

let disk_demand ~demands placement ~n_disks =
  let carried = Array.make n_disks 0.0 in
  Array.iteri
    (fun item d -> carried.(d) <- carried.(d) +. demands.(item))
    (Storsim.Placement.to_array placement);
  carried

let striped ~n_objects ~blocks_per_object ~n_disks ?(stagger = 1) () =
  if n_objects < 1 || blocks_per_object < 1 || n_disks < 1 then
    invalid_arg "Layout.striped";
  Storsim.Placement.create ~n_items:(n_objects * blocks_per_object) (fun item ->
      let o = item / blocks_per_object and b = item mod blocks_per_object in
      ((o * stagger) + b) mod n_disks)

let rebalance_incremental ~demands ~weights ~current ~tolerance =
  check_weights weights;
  if tolerance < 0.0 then invalid_arg "Layout.rebalance_incremental";
  let n_disks = Array.length weights in
  let p = Storsim.Placement.to_array current in
  let carried = Array.make n_disks 0.0 in
  Array.iteri (fun item d -> carried.(d) <- carried.(d) +. demands.(item)) p;
  let total_demand = Array.fold_left ( +. ) 0.0 demands in
  let total_weight = Array.fold_left ( +. ) 0.0 weights in
  let fair d = total_demand *. weights.(d) /. total_weight in
  let limit d = (1.0 +. tolerance) *. fair d in
  (* items per disk, heaviest first, so one move sheds the most load *)
  let items_of = Array.make n_disks [] in
  Array.iteri (fun item d -> items_of.(d) <- item :: items_of.(d)) p;
  Array.iteri
    (fun d items ->
      items_of.(d) <-
        List.sort (fun a b -> compare demands.(b) demands.(a)) items)
    items_of;
  let relative d = carried.(d) /. weights.(d) in
  let most_underloaded () =
    let best = ref 0 in
    for d = 1 to n_disks - 1 do
      if relative d < relative !best then best := d
    done;
    !best
  in
  let progress = ref true in
  while !progress do
    progress := false;
    for d = 0 to n_disks - 1 do
      (* shed the heaviest items of over-limit disks one at a time *)
      if carried.(d) > limit d then begin
        match items_of.(d) with
        | [] -> ()
        | item :: rest ->
            let target = most_underloaded () in
            if target <> d && carried.(target) +. demands.(item) <= limit target
            then begin
              items_of.(d) <- rest;
              items_of.(target) <- item :: items_of.(target);
              carried.(d) <- carried.(d) -. demands.(item);
              carried.(target) <- carried.(target) +. demands.(item);
              p.(item) <- target;
              progress := true
            end
            else begin
              (* the heaviest item fits nowhere: try the lightest *)
              match List.rev items_of.(d) with
              | lightest :: _
                when target <> d
                     && carried.(target) +. demands.(lightest)
                        <= limit target ->
                  items_of.(d) <-
                    List.filter (fun i -> i <> lightest) items_of.(d);
                  items_of.(target) <- lightest :: items_of.(target);
                  carried.(d) <- carried.(d) -. demands.(lightest);
                  carried.(target) <- carried.(target) +. demands.(lightest);
                  p.(lightest) <- target;
                  progress := true
              | _ -> ()
            end
      end
    done
  done;
  Storsim.Placement.of_array p

let imbalance ~demands ~weights placement =
  check_weights weights;
  let n_disks = Array.length weights in
  let carried = disk_demand ~demands placement ~n_disks in
  let total_demand = Array.fold_left ( +. ) 0.0 demands in
  let total_weight = Array.fold_left ( +. ) 0.0 weights in
  if total_demand <= 0.0 then 1.0
  else begin
    let worst = ref 0.0 in
    for d = 0 to n_disks - 1 do
      let fair = total_demand *. weights.(d) /. total_weight in
      if fair > 0.0 then worst := max !worst (carried.(d) /. fair)
    done;
    !worst
  end
