module Placement = Storsim.Placement
module Disk = Storsim.Disk
module Cluster = Storsim.Cluster

type t = {
  name : string;
  cluster : Cluster.t;
  target : Placement.t;
  demands : float array;
}

let cycle_caps caps n =
  let caps = Array.of_list caps in
  if Array.length caps = 0 then invalid_arg "Scenarios: empty capacity list";
  Array.init n (fun i -> caps.(i mod Array.length caps))

let make_disks ?(bandwidth = fun _ -> 1.0) caps =
  Array.mapi (fun id cap -> Disk.make ~id ~bandwidth:(bandwidth id) ~cap ()) caps

(* Move items from over-full to under-full disks until every disk holds
   its desired count; items already in place stay put. *)
let retarget_to_counts rng placement ~desired =
  let n_disks = Array.length desired in
  let p = Placement.to_array placement in
  let load = Array.make n_disks 0 in
  Array.iter (fun d -> load.(d) <- load.(d) + 1) p;
  let surplus = ref [] in
  Array.iteri
    (fun item d -> if load.(d) > desired.(d) then begin
         surplus := item :: !surplus;
         load.(d) <- load.(d) - 1
       end)
    p;
  (* shuffle surplus so moves are not biased toward low item ids *)
  let surplus = Array.of_list !surplus in
  for i = Array.length surplus - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = surplus.(i) in
    surplus.(i) <- surplus.(j);
    surplus.(j) <- t
  done;
  let cursor = ref 0 in
  Array.iter
    (fun item ->
      while !cursor < n_disks && load.(!cursor) >= desired.(!cursor) do
        incr cursor
      done;
      if !cursor >= n_disks then
        invalid_arg "Scenarios.retarget_to_counts: desired counts too small";
      p.(item) <- !cursor;
      load.(!cursor) <- load.(!cursor) + 1)
    surplus;
  Placement.of_array p

let fair_counts ~n_items ~weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  let raw = Array.map (fun w -> w /. total *. float_of_int n_items) weights in
  let counts = Array.map int_of_float raw in
  (* distribute the rounding remainder to the largest fractional parts *)
  let assigned = Array.fold_left ( + ) 0 counts in
  let order = Array.init (Array.length weights) Fun.id in
  Array.sort
    (fun a b ->
      compare
        (raw.(b) -. Float.of_int counts.(b))
        (raw.(a) -. Float.of_int counts.(a)))
    order;
  for i = 0 to n_items - assigned - 1 do
    let d = order.(i mod Array.length order) in
    counts.(d) <- counts.(d) + 1
  done;
  counts

let rebalance rng ~n_disks ~n_items ?(zipf_s = 0.9) ?(shift_fraction = 0.3)
    ?(caps = [ 1; 2; 3; 4 ]) () =
  let caps = cycle_caps caps n_disks in
  let weights = Array.map float_of_int caps in
  let demands = Demand.demands rng ~n:n_items ~s:zipf_s in
  let before = Layout.balance ~demands ~weights in
  let demands' = Demand.shift rng ~fraction:shift_fraction demands in
  let target = Layout.balance ~demands:demands' ~weights in
  let cluster = Cluster.create ~disks:(make_disks caps) ~placement:before in
  { name = "rebalance"; cluster; target; demands = demands' }

let disk_addition rng ~n_old ~n_new ~n_items ?(old_cap = 2) ?(new_cap = 4) () =
  if n_old < 1 || n_new < 1 then invalid_arg "Scenarios.disk_addition";
  let n = n_old + n_new in
  let caps = Array.init n (fun i -> if i < n_old then old_cap else new_cap) in
  let demands = Demand.demands rng ~n:n_items ~s:0.9 in
  (* everything starts on the old disks *)
  let before =
    Placement.create ~n_items (fun i -> i mod n_old)
  in
  let weights = Array.map float_of_int caps in
  let desired = fair_counts ~n_items ~weights in
  let target = retarget_to_counts rng before ~desired in
  let cluster = Cluster.create ~disks:(make_disks caps) ~placement:before in
  { name = "disk-addition"; cluster; target; demands }

let disk_removal rng ~n_disks ~n_remove ~n_items ?(caps = [ 2; 3 ]) () =
  if n_remove < 1 || n_remove >= n_disks then
    invalid_arg "Scenarios.disk_removal";
  let caps = cycle_caps caps n_disks in
  let demands = Demand.demands rng ~n:n_items ~s:0.9 in
  let before = Placement.create ~n_items (fun i -> i mod n_disks) in
  let survivors = n_disks - n_remove in
  let weights =
    Array.init n_disks (fun d ->
        if d < survivors then float_of_int caps.(d) else 0.0)
  in
  (* evacuated disks get zero items; survivors share by capacity *)
  let positive = Array.sub weights 0 survivors in
  let desired_survivors = fair_counts ~n_items ~weights:positive in
  let desired =
    Array.init n_disks (fun d ->
        if d < survivors then desired_survivors.(d) else 0)
  in
  let target = retarget_to_counts rng before ~desired in
  let cluster = Cluster.create ~disks:(make_disks caps) ~placement:before in
  { name = "disk-removal"; cluster; target; demands }

let failure_recovery rng ~n_disks ~failed ~n_items ?(caps = [ 2; 2; 4 ]) () =
  if n_disks < 3 then invalid_arg "Scenarios.failure_recovery: need >= 3 disks";
  if failed < 0 || failed >= n_disks then
    invalid_arg "Scenarios.failure_recovery: bad disk";
  let caps = cycle_caps caps n_disks in
  let demands = Demand.demands rng ~n:n_items ~s:0.9 in
  let primary = Array.init n_items (fun i -> i mod n_disks) in
  (* replica of item i: a deterministic other disk *)
  let replica i =
    let r = (primary.(i) + 1 + (i mod (n_disks - 1))) mod n_disks in
    if r = primary.(i) then (r + 1) mod n_disks else r
  in
  (* post-failure state: lost items are served from their replicas *)
  let before =
    Placement.create ~n_items (fun i ->
        if primary.(i) = failed then begin
          let r = replica i in
          if r = failed then (r + 1) mod n_disks else r
        end
        else primary.(i))
  in
  (* target: spread the failed disk's items across survivors evenly *)
  let weights =
    Array.init n_disks (fun d -> if d = failed then 0.0 else float_of_int caps.(d))
  in
  let positive = Array.of_list (List.filter (fun w -> w > 0.0) (Array.to_list weights)) in
  let counts_pos = fair_counts ~n_items ~weights:positive in
  let desired = Array.make n_disks 0 in
  let j = ref 0 in
  for d = 0 to n_disks - 1 do
    if weights.(d) > 0.0 then begin
      desired.(d) <- counts_pos.(!j);
      incr j
    end
  done;
  let target = retarget_to_counts rng before ~desired in
  let cluster = Cluster.create ~disks:(make_disks caps) ~placement:before in
  { name = "failure-recovery"; cluster; target; demands }

let restripe rng ~n_old ~n_new ~n_objects ~blocks_per_object ?(cap = 2) ~mode
    () =
  if n_old < 1 || n_new < 1 then invalid_arg "Scenarios.restripe";
  let n = n_old + n_new in
  let n_items = n_objects * blocks_per_object in
  let before =
    Layout.striped ~n_objects ~blocks_per_object ~n_disks:n_old ()
  in
  let target =
    match mode with
    | `Full -> Layout.striped ~n_objects ~blocks_per_object ~n_disks:n ()
    | `Minimal ->
        let weights = Array.make n 1.0 in
        let desired = fair_counts ~n_items ~weights in
        retarget_to_counts rng before ~desired
  in
  let caps = Array.make n cap in
  let demands = Demand.demands rng ~n:n_items ~s:0.8 in
  let cluster = Cluster.create ~disks:(make_disks caps) ~placement:before in
  { name = "restripe"; cluster; target; demands }
