module Arena = Mgraph.Arena

(* Dinic-level observability: one "phase" per BFS level graph, one
   "augmenting path" per saturating DFS probe inside a blocking flow. *)
let c_phases = Probes.counter "flow.bfs_phases"
let c_paths = Probes.counter "flow.augmenting_paths"

(* Dinic over the frozen adjacency.  All scratch (levels, BFS queue,
   DFS cursors) lives in the calling domain's arena; the residual
   state is updated in place through [Flow_network.raw], so the
   steady-state path allocates nothing. *)
let max_flow net ~s ~t =
  if s = t then invalid_arg "Max_flow.max_flow: s = t";
  let n = Flow_network.n_nodes net in
  let adj = Flow_network.freeze net in
  let offsets = adj.Flow_network.offsets and arc_ids = adj.Flow_network.arc_ids in
  let dsts, caps = Flow_network.raw net in
  let arena = Arena.local () in
  let hl = Arena.ints arena ~len:n ~fill:(-1) in
  let hq = Arena.ints arena ~len:n ~fill:0 in
  let hc = Arena.ints arena ~len:n ~fill:0 in
  let level = Arena.arr hl and q = Arena.arr hq and cursor = Arena.arr hc in
  let total = ref 0 in
  (* blocking-flow DFS with per-node cursors (absolute indices into the
     flat rows); recursion depth is bounded by the level of [t] *)
  let rec dfs u limit =
    if u = t then limit
    else begin
      let pushed = ref 0 in
      let continue = ref true in
      while !continue && cursor.(u) < offsets.(u + 1) do
        let a = arc_ids.(cursor.(u)) in
        let v = dsts.(a) in
        let r = caps.(a) in
        if r > 0 && level.(v) = level.(u) + 1 then begin
          let got = dfs v (min (limit - !pushed) r) in
          if got > 0 then begin
            caps.(a) <- caps.(a) - got;
            caps.(a lxor 1) <- caps.(a lxor 1) + got;
            pushed := !pushed + got;
            if !pushed = limit then continue := false
          end
          else cursor.(u) <- cursor.(u) + 1
        end
        else cursor.(u) <- cursor.(u) + 1
      done;
      !pushed
    end
  in
  let continue = ref true in
  while !continue do
    (* BFS level graph *)
    Array.fill level 0 n (-1);
    level.(s) <- 0;
    q.(0) <- s;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let u = q.(!head) in
      incr head;
      for p = offsets.(u) to offsets.(u + 1) - 1 do
        let a = arc_ids.(p) in
        let v = dsts.(a) in
        if level.(v) < 0 && caps.(a) > 0 then begin
          level.(v) <- level.(u) + 1;
          q.(!tail) <- v;
          incr tail
        end
      done
    done;
    if level.(t) < 0 then continue := false
    else begin
      Probes.bump c_phases;
      Array.blit offsets 0 cursor 0 n;
      let augmenting = ref true in
      while !augmenting do
        let got = dfs s max_int in
        if got > 0 then begin
          Probes.bump c_paths;
          total := !total + got
        end
        else augmenting := false
      done
    end
  done;
  Arena.release arena hc;
  Arena.release arena hq;
  Arena.release arena hl;
  !total

let min_cut net ~s =
  let n = Flow_network.n_nodes net in
  let adj = Flow_network.freeze net in
  let offsets = adj.Flow_network.offsets and arc_ids = adj.Flow_network.arc_ids in
  let dsts, caps = Flow_network.raw net in
  let seen = Array.make n false in
  let arena = Arena.local () in
  let hq = Arena.ints arena ~len:n ~fill:0 in
  let q = Arena.arr hq in
  seen.(s) <- true;
  q.(0) <- s;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let u = q.(!head) in
    incr head;
    for p = offsets.(u) to offsets.(u + 1) - 1 do
      let a = arc_ids.(p) in
      let v = dsts.(a) in
      if (not seen.(v)) && caps.(a) > 0 then begin
        seen.(v) <- true;
        q.(!tail) <- v;
        incr tail
      end
    done
  done;
  Arena.release arena hq;
  seen

let conservation_ok net ~s ~t =
  let n = Flow_network.n_nodes net in
  let balance = Array.make n 0 in
  (* forward arcs are the even-indexed ones *)
  let a = ref 0 in
  let ok = ref true in
  while !a < Flow_network.n_arcs net do
    let f = Flow_network.flow net !a in
    if f < 0 then ok := false;
    balance.(Flow_network.src net !a) <- balance.(Flow_network.src net !a) - f;
    balance.(Flow_network.dst net !a) <- balance.(Flow_network.dst net !a) + f;
    a := !a + 2
  done;
  for v = 0 to n - 1 do
    if v <> s && v <> t && balance.(v) <> 0 then ok := false
  done;
  !ok
