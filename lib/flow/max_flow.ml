(* Dinic-level observability: one "phase" per BFS level graph, one
   "augmenting path" per saturating DFS probe inside a blocking flow. *)
let c_phases = Probes.counter "flow.bfs_phases"
let c_paths = Probes.counter "flow.augmenting_paths"

let bfs_levels net ~s ~t =
  let n = Flow_network.n_nodes net in
  let level = Array.make n (-1) in
  let queue = Queue.create () in
  level.(s) <- 0;
  Queue.add s queue;
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    Array.iter
      (fun a ->
        let v = Flow_network.dst net a in
        if level.(v) < 0 && Flow_network.residual net a > 0 then begin
          level.(v) <- level.(u) + 1;
          Queue.add v queue
        end)
      (Flow_network.out_arcs net u)
  done;
  if level.(t) < 0 then None else Some level

(* Dinic blocking flow by DFS with per-node arc cursors. *)
let blocking_flow net ~s ~t level =
  let n = Flow_network.n_nodes net in
  let arcs = Array.init n (fun v -> Flow_network.out_arcs net v) in
  let cursor = Array.make n 0 in
  let total = ref 0 in
  let rec dfs u limit =
    if u = t then limit
    else begin
      let pushed = ref 0 in
      let continue = ref true in
      while !continue && cursor.(u) < Array.length arcs.(u) do
        let a = arcs.(u).(cursor.(u)) in
        let v = Flow_network.dst net a in
        let r = Flow_network.residual net a in
        if r > 0 && level.(v) = level.(u) + 1 then begin
          let got = dfs v (min (limit - !pushed) r) in
          if got > 0 then begin
            Flow_network.push net a got;
            pushed := !pushed + got;
            if !pushed = limit then continue := false
          end
          else cursor.(u) <- cursor.(u) + 1
        end
        else cursor.(u) <- cursor.(u) + 1
      done;
      !pushed
    end
  in
  let rec loop () =
    let got = dfs s max_int in
    if got > 0 then begin
      Probes.bump c_paths;
      total := !total + got;
      loop ()
    end
  in
  loop ();
  !total

let max_flow net ~s ~t =
  if s = t then invalid_arg "Max_flow.max_flow: s = t";
  let total = ref 0 in
  let continue = ref true in
  while !continue do
    match bfs_levels net ~s ~t with
    | None -> continue := false
    | Some level ->
        Probes.bump c_phases;
        total := !total + blocking_flow net ~s ~t level
  done;
  !total

let min_cut net ~s =
  let n = Flow_network.n_nodes net in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(s) <- true;
  Queue.add s queue;
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    Array.iter
      (fun a ->
        let v = Flow_network.dst net a in
        if (not seen.(v)) && Flow_network.residual net a > 0 then begin
          seen.(v) <- true;
          Queue.add v queue
        end)
      (Flow_network.out_arcs net u)
  done;
  seen

let conservation_ok net ~s ~t =
  let n = Flow_network.n_nodes net in
  let balance = Array.make n 0 in
  (* forward arcs are the even-indexed ones *)
  let a = ref 0 in
  let ok = ref true in
  while !a < Flow_network.n_arcs net do
    let f = Flow_network.flow net !a in
    if f < 0 then ok := false;
    balance.(Flow_network.src net !a) <- balance.(Flow_network.src net !a) - f;
    balance.(Flow_network.dst net !a) <- balance.(Flow_network.dst net !a) + f;
    a := !a + 2
  done;
  for v = 0 to n - 1 do
    if v <> s && v <> t && balance.(v) <> 0 then ok := false
  done;
  !ok
