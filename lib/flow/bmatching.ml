type problem = {
  n_left : int;
  n_right : int;
  left_cap : int array;
  right_cap : int array;
  edges : (int * int) array;
}

let check p =
  if Array.length p.left_cap <> p.n_left || Array.length p.right_cap <> p.n_right
  then invalid_arg "Bmatching: capacity vector length mismatch";
  Array.iter
    (fun (l, r) ->
      if l < 0 || l >= p.n_left || r < 0 || r >= p.n_right then
        invalid_arg "Bmatching: edge endpoint out of range")
    p.edges

(* Network layout: 0 = source, 1 = sink, 2..2+nl-1 = left,
   2+nl.. = right.  Edge arcs are added last, in edge order, so the
   forward arc of edge i has id [first_edge_arc + 2*i]. *)
let build p =
  let net = Flow_network.create ~n:(2 + p.n_left + p.n_right) in
  let left v = 2 + v and right v = 2 + p.n_left + v in
  for l = 0 to p.n_left - 1 do
    ignore (Flow_network.add_arc net ~src:0 ~dst:(left l) ~cap:p.left_cap.(l))
  done;
  for r = 0 to p.n_right - 1 do
    ignore (Flow_network.add_arc net ~src:(right r) ~dst:1 ~cap:p.right_cap.(r))
  done;
  let first = Flow_network.n_arcs net in
  Array.iter
    (fun (l, r) ->
      ignore (Flow_network.add_arc net ~src:(left l) ~dst:(right r) ~cap:1))
    p.edges;
  (net, first)

let selection p net first =
  Array.init (Array.length p.edges) (fun i ->
      Flow_network.flow net (first + (2 * i)) = 1)

let solve_max p =
  check p;
  let net, first = build p in
  let value = Max_flow.max_flow net ~s:0 ~t:1 in
  (selection p net first, value)

let solve_exact p =
  check p;
  let sum a = Array.fold_left ( + ) 0 a in
  let target = sum p.left_cap in
  if target <> sum p.right_cap then None
  else
    let sel, value = solve_max p in
    if value = target then Some sel else None

let degrees p sel =
  let ld = Array.make p.n_left 0 and rd = Array.make p.n_right 0 in
  Array.iteri
    (fun i (l, r) ->
      if sel.(i) then begin
        ld.(l) <- ld.(l) + 1;
        rd.(r) <- rd.(r) + 1
      end)
    p.edges;
  (ld, rd)
