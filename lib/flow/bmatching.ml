module Arena = Mgraph.Arena

type problem = {
  n_left : int;
  n_right : int;
  left_cap : int array;
  right_cap : int array;
  edges : (int * int) array;
}

let check p =
  if Array.length p.left_cap <> p.n_left || Array.length p.right_cap <> p.n_right
  then invalid_arg "Bmatching: capacity vector length mismatch";
  Array.iter
    (fun (l, r) ->
      if l < 0 || l >= p.n_left || r < 0 || r >= p.n_right then
        invalid_arg "Bmatching: edge endpoint out of range")
    p.edges

(* Network layout: 0 = source, 1 = sink, 2..2+nl-1 = left,
   2+nl.. = right.  Edge arcs are added last, in edge order, so the
   forward arc of edge i has id [first_edge_arc + 2*i]. *)
let build p =
  let net = Flow_network.create ~n:(2 + p.n_left + p.n_right) in
  let left v = 2 + v and right v = 2 + p.n_left + v in
  for l = 0 to p.n_left - 1 do
    ignore (Flow_network.add_arc net ~src:0 ~dst:(left l) ~cap:p.left_cap.(l))
  done;
  for r = 0 to p.n_right - 1 do
    ignore (Flow_network.add_arc net ~src:(right r) ~dst:1 ~cap:p.right_cap.(r))
  done;
  let first = Flow_network.n_arcs net in
  Array.iter
    (fun (l, r) ->
      ignore (Flow_network.add_arc net ~src:(left l) ~dst:(right r) ~cap:1))
    p.edges;
  (net, first)

let selection p net first =
  Array.init (Array.length p.edges) (fun i ->
      Flow_network.flow net (first + (2 * i)) = 1)

(* One monolithic Dinic run over the whole problem. *)
let solve_joint p =
  let net, first = build p in
  let value = Max_flow.max_flow net ~s:0 ~t:1 in
  (selection p net first, value)

(* Component decomposition.  The flow network is the disjoint union of
   the bipartite components glued only at source and sink, and every
   augmenting path stays inside one component (Dinic's DFS never
   passes through the sink mid-path).  Restricted to one component,
   the joint run's level functions, cursor dynamics and augmentations
   coincide with a solo run on the (order-preserving) subproblem, so
   merging per-component selections reproduces the joint selection
   bit for bit — which is what lets the per-round matching subproblems
   run on worker domains without touching the schedule.  The golden
   corpus (test/test_flatcore.ml) pins this equivalence. *)

type component = {
  lefts : int array;  (* original left indices, increasing *)
  rights : int array;  (* original right indices, increasing *)
  edge_idx : int array;  (* original edge indices, increasing *)
  sub : problem;
}

let split p =
  let nl = p.n_left and nr = p.n_right in
  let total = nl + nr in
  let arena = Arena.local () in
  let hparent = Arena.ints arena ~len:total ~fill:0 in
  let parent = Arena.arr hparent in
  for i = 0 to total - 1 do
    parent.(i) <- i
  done;
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  Array.iter
    (fun (l, r) ->
      let a = find l and b = find (nl + r) in
      if a <> b then parent.(max a b) <- min a b)
    p.edges;
  (* canonical component ids, in order of first appearance *)
  let hcomp = Arena.ints arena ~len:total ~fill:(-1) in
  let comp = Arena.arr hcomp in
  let k = ref 0 in
  for i = 0 to total - 1 do
    let root = find i in
    if comp.(root) < 0 then begin
      comp.(root) <- !k;
      incr k
    end;
    comp.(i) <- comp.(root)
  done;
  let k = !k in
  let count_l = Array.make k 0
  and count_r = Array.make k 0
  and count_e = Array.make k 0 in
  for l = 0 to nl - 1 do
    count_l.(comp.(l)) <- count_l.(comp.(l)) + 1
  done;
  for r = 0 to nr - 1 do
    count_r.(comp.(nl + r)) <- count_r.(comp.(nl + r)) + 1
  done;
  Array.iter (fun (l, _) -> count_e.(comp.(l)) <- count_e.(comp.(l)) + 1) p.edges;
  let comps =
    Array.init k (fun c ->
        {
          lefts = Array.make count_l.(c) 0;
          rights = Array.make count_r.(c) 0;
          edge_idx = Array.make count_e.(c) 0;
          sub =
            {
              n_left = count_l.(c);
              n_right = count_r.(c);
              left_cap = Array.make count_l.(c) 0;
              right_cap = Array.make count_r.(c) 0;
              edges = Array.make count_e.(c) (0, 0);
            };
        })
  in
  (* local index of each original node, monotone per component *)
  let hloc = Arena.ints arena ~len:total ~fill:(-1) in
  let loc = Arena.arr hloc in
  Array.fill count_l 0 k 0;
  Array.fill count_r 0 k 0;
  Array.fill count_e 0 k 0;
  for l = 0 to nl - 1 do
    let c = comp.(l) in
    let i = count_l.(c) in
    count_l.(c) <- i + 1;
    loc.(l) <- i;
    comps.(c).lefts.(i) <- l;
    comps.(c).sub.left_cap.(i) <- p.left_cap.(l)
  done;
  for r = 0 to nr - 1 do
    let c = comp.(nl + r) in
    let i = count_r.(c) in
    count_r.(c) <- i + 1;
    loc.(nl + r) <- i;
    comps.(c).rights.(i) <- r;
    comps.(c).sub.right_cap.(i) <- p.right_cap.(r)
  done;
  Array.iteri
    (fun e (l, r) ->
      let c = comp.(l) in
      let i = count_e.(c) in
      count_e.(c) <- i + 1;
      comps.(c).edge_idx.(i) <- e;
      comps.(c).sub.edges.(i) <- (loc.(l), loc.(nl + r)))
    p.edges;
  Arena.release arena hloc;
  Arena.release arena hcomp;
  Arena.release arena hparent;
  comps

let c_components = Probes.counter "bmatch.components"

let solve_max ?pool p =
  check p;
  let comps = split p in
  Probes.bump ~by:(Array.length comps) c_components;
  let active =
    Array.to_list comps
    |> (List.filter [@lint.allow
         "hotpath: once per solve over the component list (Exec.map \
          consumes a list), not per edge — the per-edge work is in \
          solve_joint's arrays"]) (fun c -> Array.length c.edge_idx > 0)
  in
  match active with
  | [] -> (Array.make (Array.length p.edges) false, 0)
  | [ c ] when Array.length c.edge_idx = Array.length p.edges ->
      solve_joint p
  | _ ->
      let solved =
        Exec.map ?pool (fun c -> (c, solve_joint c.sub)) active
      in
      let sel = Array.make (Array.length p.edges) false in
      let value = ref 0 in
      (List.iter [@lint.allow
        "hotpath: merges per-component selections once per solve; the \
         inner Array.iteri does the per-edge writes"])
        (fun (c, (sub_sel, sub_value)) ->
          value := !value + sub_value;
          Array.iteri (fun i e -> sel.(e) <- sub_sel.(i)) c.edge_idx)
        solved;
      (sel, !value)

let solve_exact ?pool p =
  check p;
  let sum a = Array.fold_left ( + ) 0 a in
  let target = sum p.left_cap in
  if target <> sum p.right_cap then None
  else
    let sel, value = solve_max ?pool p in
    if value = target then Some sel else None

let degrees p sel =
  let ld = Array.make p.n_left 0 and rd = Array.make p.n_right 0 in
  Array.iteri
    (fun i (l, r) ->
      if sel.(i) then begin
        ld.(l) <- ld.(l) + 1;
        rd.(r) <- rd.(r) + 1
      end)
    p.edges;
  (ld, rd)
