(** Maximum flow (Dinic's algorithm).

    Used by the even-capacity scheduler to extract the exact
    [c_v/2]-matchings of the paper's Figure 3 flow network, and by the
    degree-constrained-subgraph helper {!Bmatching}. *)

(** [max_flow net ~s ~t] augments [net] in place to a maximum [s]-[t]
    flow and returns its value.  Complexity O(V^2 E); O(E sqrt V) on
    unit-capacity bipartite networks, the case this repo exercises. *)
val max_flow : Flow_network.t -> s:int -> t:int -> int

(** [min_cut net ~s] after a {!max_flow} run: the set of nodes residual-
    reachable from [s].  Arcs leaving the set certify optimality. *)
val min_cut : Flow_network.t -> s:int -> bool array

(** Checks flow conservation at every node except [s] and [t]; exposed
    for tests. *)
val conservation_ok : Flow_network.t -> s:int -> t:int -> bool
