(** Degree-constrained subgraphs of bipartite graphs via max-flow.

    This is the workhorse of the paper's Section IV, step 4: given the
    Euler-oriented bipartite graph [H] on [v_out]/[v_in] copies, extract
    a subgraph in which node [v] has degree exactly [c_v / 2] on both
    sides (a "[c_v/2]-matching").  The reduction is the flow network of
    the paper's Figure 3: source → left nodes with capacity [left_cap],
    unit-capacity arcs for edges, right nodes → sink with capacity
    [right_cap]. *)

type problem = {
  n_left : int;
  n_right : int;
  left_cap : int array;   (** length [n_left] *)
  right_cap : int array;  (** length [n_right] *)
  edges : (int * int) array;
      (** [(l, r)] pairs; parallel pairs are distinct edges *)
}

(** Largest subgraph respecting both capacity vectors.  Returns the
    selection mask (indexed like [edges]) and its size.

    The problem is decomposed into connected components of the
    bipartite graph and each component is solved independently —
    on [pool]'s worker domains when one is given, inline otherwise.
    Augmenting paths never cross components, so the merged selection
    is bit-identical to a monolithic solve at any [pool] size; the
    golden corpus pins this. *)
val solve_max : ?pool:Exec.pool -> problem -> bool array * int

(** A subgraph in which every left node [l] has degree exactly
    [left_cap.(l)] and every right node [r] exactly [right_cap.(r)];
    [None] if no such subgraph exists (requires
    [sum left_cap = sum right_cap]).  [pool] as in {!solve_max}. *)
val solve_exact : ?pool:Exec.pool -> problem -> bool array option

(** Degrees induced by a selection mask; exposed for tests. *)
val degrees : problem -> bool array -> int array * int array
