(** Directed flow networks with integer capacities.

    Arcs are created in pairs: adding an arc also adds its residual
    reverse arc of capacity 0.  Arc [a] and its reverse [a lxor 1]
    always live at adjacent indices, the classic residual-graph
    encoding. *)

type t

val create : n:int -> t
val n_nodes : t -> int

(** Adds one more node, returns its id. *)
val add_node : t -> int

(** [add_arc net ~src ~dst ~cap] returns the id of the forward arc.
    @raise Invalid_argument on a negative capacity or bad endpoint. *)
val add_arc : t -> src:int -> dst:int -> cap:int -> int

val n_arcs : t -> int
(** Counts both forward and residual arcs (always even). *)

val src : t -> int -> int
val dst : t -> int -> int

(** Remaining capacity of an arc (forward or residual). *)
val residual : t -> int -> int

(** Flow currently pushed through a {e forward} arc: the capacity of
    its reverse arc. *)
val flow : t -> int -> int

(** [push net a x] moves [x] units along arc [a] (decreasing its
    residual, increasing the reverse arc's).
    @raise Invalid_argument if [x] exceeds the residual. *)
val push : t -> int -> int -> unit

(** Arc ids leaving a node (forward and residual alike). *)
val out_arcs : t -> int -> int array

(** Flat adjacency: row [v] is
    [arc_ids.(offsets.(v)) .. arc_ids.(offsets.(v+1) - 1)], in the
    order {!out_arcs} returns.  [offsets] has length [n+1]. *)
type adj = { offsets : int array; arc_ids : int array }

(** The flat adjacency view, built once and cached; {!add_arc} and
    {!add_node} drop the cache.  The arrays must not be written. *)
val freeze : t -> adj

(** [(dsts, caps)] backing arrays for hot kernels: index by arc id,
    valid below {!n_arcs}.  [caps] is the live residual state — a
    kernel writing [caps.(a)]/[caps.(a lxor 1)] performs an unchecked
    {!push}.  Both arrays are invalidated by the next {!add_arc};
    capture them per call. *)
val raw : t -> int array * int array

(** Resets all flow to zero. *)
val reset : t -> unit
