(** Umbrella module for the max-flow substrate. *)

module Flow_network = Flow_network
module Max_flow = Max_flow
module Bmatching = Bmatching
