type adj = { offsets : int array; arc_ids : int array }

type t = {
  mutable n : int;
  dsts : int Mgraph.Vec.t;          (* per arc *)
  caps : int Mgraph.Vec.t;          (* residual capacity, mutated by push *)
  caps0 : int Mgraph.Vec.t;         (* original capacity, for reset *)
  mutable adj : int Mgraph.Vec.t array;  (* outgoing arc ids per node *)
  srcs : int Mgraph.Vec.t;          (* per arc *)
  mutable frozen : adj option;      (* flat adjacency cache, see freeze *)
}

module Vec = Mgraph.Vec

let create ~n =
  if n < 0 then invalid_arg "Flow_network.create";
  {
    n;
    dsts = Vec.create ~dummy:(-1) ();
    caps = Vec.create ~dummy:0 ();
    caps0 = Vec.create ~dummy:0 ();
    adj = Array.init (max n 1) (fun _ -> Vec.create ~dummy:(-1) ());
    srcs = Vec.create ~dummy:(-1) ();
    frozen = None;
  }

let n_nodes net = net.n

let add_node net =
  let id = net.n in
  net.n <- net.n + 1;
  net.frozen <- None;
  let cap = Array.length net.adj in
  if net.n > cap then begin
    let adj =
      Array.init (max (2 * cap) net.n) (fun i ->
          if i < cap then net.adj.(i) else Vec.create ~dummy:(-1) ())
    in
    net.adj <- adj
  end;
  id

let check_node net v = if v < 0 || v >= net.n then invalid_arg "Flow_network: bad node"

let add_half net ~src ~dst ~cap =
  let a = Vec.length net.dsts in
  ignore (Vec.push net.dsts dst);
  ignore (Vec.push net.srcs src);
  ignore (Vec.push net.caps cap);
  ignore (Vec.push net.caps0 cap);
  ignore (Vec.push net.adj.(src) a);
  a

let add_arc net ~src ~dst ~cap =
  check_node net src;
  check_node net dst;
  if cap < 0 then invalid_arg "Flow_network.add_arc: negative capacity";
  let a = add_half net ~src ~dst ~cap in
  ignore (add_half net ~src:dst ~dst:src ~cap:0);
  net.frozen <- None;
  a

let n_arcs net = Vec.length net.dsts
let src net a = Vec.get net.srcs a
let dst net a = Vec.get net.dsts a
let residual net a = Vec.get net.caps a
let flow net a = Vec.get net.caps (a lxor 1)

let push net a x =
  let r = residual net a in
  if x < 0 || x > r then invalid_arg "Flow_network.push";
  Vec.set net.caps a (r - x);
  Vec.set net.caps (a lxor 1) (Vec.get net.caps (a lxor 1) + x)

let out_arcs net v =
  check_node net v;
  Vec.to_array net.adj.(v)

(* Arc ids per row appear in insertion order, matching [out_arcs]. *)
let freeze net =
  match net.frozen with
  | Some a -> a
  | None ->
      let n = net.n in
      let offsets = Array.make (n + 1) 0 in
      let total = ref 0 in
      for v = 0 to n - 1 do
        offsets.(v) <- !total;
        total := !total + Vec.length net.adj.(v)
      done;
      offsets.(n) <- !total;
      let arc_ids = Array.make !total (-1) in
      for v = 0 to n - 1 do
        let row = net.adj.(v) in
        let base = offsets.(v) in
        for k = 0 to Vec.length row - 1 do
          arc_ids.(base + k) <- Vec.get row k
        done
      done;
      let a = { offsets; arc_ids } in
      net.frozen <- Some a;
      a

let raw net = (Vec.unsafe_data net.dsts, Vec.unsafe_data net.caps)

let reset net =
  for a = 0 to n_arcs net - 1 do
    Vec.set net.caps a (Vec.get net.caps0 a)
  done
