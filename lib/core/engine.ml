module Multigraph = Mgraph.Multigraph

type fault =
  | Fail_transfer of int
  | Crash_disk of int
  | Slow_disk of int

type policy = {
  policy_name : string;
  decide : round:int -> attempted:int list -> fault list;
}

let no_faults =
  { policy_name = "none"; decide = (fun ~round:_ ~attempted:_ -> []) }

type quarantine_reason =
  | Crashed of int
  | Retries_exhausted of int
  | Round_budget_exhausted

let quarantine_reason_to_string = function
  | Crashed d -> Printf.sprintf "disk %d crashed" d
  | Retries_exhausted n -> Printf.sprintf "%d failed attempts" n
  | Round_budget_exhausted -> "round budget exhausted"

type outcome = {
  execution : Certify.execution;
  schedule : Schedule.t;
  completed : int;
  quarantined : (int * quarantine_reason) list;
  crashed : int list;
  degraded : (int * int) list;
  replans : int;
  retries : int;
  total_rounds : int;
  idle_rounds : int;
  rounds_lost : int;
  residual : int list;
  remaining_plan : int list array;
}

exception Plan_rejected of string

(* instrumentation: the engine's always-on flight counters *)
let c_plans = Instr.counter "engine.plans"
let c_replans = Instr.counter "engine.replans"
let c_rounds = Instr.counter "engine.rounds"
let c_idle = Instr.counter "engine.idle_rounds"
let c_retries = Instr.counter "engine.retried_edges"
let c_quarantined = Instr.counter "engine.quarantined_edges"
let c_crashes = Instr.counter "engine.crashes"
let c_slowdowns = Instr.counter "engine.slowdowns"
let c_lost = Instr.counter "engine.rounds_lost"
let t_plan = Instr.timer "engine.plan"
let t_run = Instr.timer "engine.run"

(* Pending-edge status.  [eligible_at] implements the exponential
   round-backoff: a transiently failed transfer is withheld from
   re-planning until its window expires. *)

let run ?rng ?(jobs = 1) ?(max_retries = 5) ?(backoff_base = 1)
    ?round_budget ?stop_after ?(incremental = true) ?(warm = [||])
    ?(dirty_disks = []) ?(choose = Pipeline.auto_choose) ~policy inst =
  if max_retries < 0 then invalid_arg "Engine.run: max_retries must be >= 0";
  if backoff_base < 1 then invalid_arg "Engine.run: backoff_base must be >= 1";
  (match stop_after with
  | Some s when s < 1 -> invalid_arg "Engine.run: stop_after must be >= 1"
  | _ -> ());
  let g = Instance.graph inst in
  let n = Instance.n_disks inst and m = Instance.n_items inst in
  let round_budget =
    match round_budget with
    | Some b ->
        if b < 1 then invalid_arg "Engine.run: round_budget must be >= 1";
        b
    | None -> (16 * m) + 64
  in
  let rng = match rng with Some r -> r | None -> Random.State.make [| 0x0e17 |] in
  (* mutable execution state *)
  let caps = Array.copy (Instance.caps inst) in
  let alive = Array.make n true in
  let completed = Array.make m false in
  let quarantined : quarantine_reason option array = Array.make m None in
  let attempts = Array.make m 0 in
  let eligible_at = Array.make m 0 in
  let pending = ref m in
  let quarantine_log = ref [] (* reverse event order *) in
  let pending_edge e = not completed.(e) && quarantined.(e) = None in
  let quarantine e reason =
    if pending_edge e then begin
      quarantined.(e) <- Some reason;
      quarantine_log := (e, reason) :: !quarantine_log;
      Instr.bump c_quarantined;
      decr pending
    end
  in
  (* disks whose capacity changed, or that lost quarantined edges,
     since the plan currently executing was produced: their components
     must re-solve, everything else warm-starts *)
  let dirty = Array.make n false in
  List.iter
    (fun d ->
      if d < 0 || d >= n then
        invalid_arg "Engine.run: dirty_disks out of range";
      dirty.(d) <- true)
    dirty_disks;
  let clock = ref 0 in
  let idle = ref 0 in
  let lost = ref 0 in
  let retries = ref 0 in
  let replans = ref 0 in
  let plans = ref 0 in
  let replan_bounds = ref [] (* reverse order *) in
  let log = ref [] (* reverse order of executed rounds *) in
  (* a warm start seeds the plan cursor: the first [make_plan] treats
     these rounds as the currently executing plan, so components they
     still cover project verbatim instead of re-solving *)
  let future =
    ref (Array.map (List.filter (fun e -> e >= 0 && e < m)) warm)
  in
  let fp = ref 0 in
  let needs_replan = ref true in
  let crash_list = ref [] in

  let make_plan () =
    let eligible = Array.make m false in
    let any = ref false in
    for e = 0 to m - 1 do
      if pending_edge e && eligible_at.(e) <= !clock then begin
        eligible.(e) <- true;
        any := true
      end
    done;
    if not !any then None
    else begin
      let sub_g, sub_map = Multigraph.sub g (fun e -> eligible.(e)) in
      let sub_inst = Instance.create sub_g ~caps:(Array.copy caps) in
      (* which eligible edges the currently executing plan still
         covers: those components can keep their rounds verbatim *)
      let in_old = Array.make m false in
      let old_rounds =
        let len = Array.length !future in
        if !fp >= len then [||]
        else
          Array.map
            (List.filter (fun e -> eligible.(e)))
            (Array.sub !future !fp (len - !fp))
      in
      Array.iter (List.iter (fun e -> in_old.(e) <- true)) old_rounds;
      let comps =
        List.filter
          (fun c -> Instance.n_items c.Instance.instance > 0)
          (Instance.decompose sub_inst)
      in
      (* component id per global eligible edge, and the dirty test:
         a component re-solves when a disk of its changed (capacity,
         crash fallout) or when it holds an edge the old plan no
         longer schedules (a retry coming out of backoff) *)
      let comp_of = Array.make m (-1) in
      List.iteri
        (fun ci c ->
          Array.iter (fun se -> comp_of.(sub_map.(se)) <- ci) c.Instance.edges)
        comps;
      let comp_dirty =
        List.map
          (fun c ->
            (not incremental)
            || Array.exists (fun v -> dirty.(v)) c.Instance.nodes
            || Array.exists (fun se -> not in_old.(sub_map.(se))) c.Instance.edges)
          comps
      in
      let n_comps = List.length comps in
      let dirty_of_comp = Array.of_list comp_dirty in
      (* clean components: project the old plan's remaining rounds *)
      let projections = Array.make n_comps [] (* reverse round lists *) in
      Array.iter
        (fun round ->
          let per_comp = Array.make n_comps [] in
          List.iter
            (fun e ->
              let ci = comp_of.(e) in
              if ci >= 0 && not dirty_of_comp.(ci) then
                per_comp.(ci) <- e :: per_comp.(ci))
            round;
          for ci = 0 to n_comps - 1 do
            if per_comp.(ci) <> [] then
              projections.(ci) <- List.rev per_comp.(ci) :: projections.(ci)
          done)
        old_rounds;
      let clean_parts =
        List.filteri (fun ci _ -> not dirty_of_comp.(ci)) (List.init n_comps Fun.id)
        |> List.map (fun ci -> Array.of_list (List.rev projections.(ci)))
      in
      (* dirty components: one sub-instance, re-solved through the
         pipeline (multi-component => parallel across [jobs]) *)
      let any_dirty = List.exists Fun.id comp_dirty in
      let dirty_part =
        if not any_dirty then None
        else begin
          let dirty_edge = Array.make m false in
          List.iteri
            (fun ci c ->
              if dirty_of_comp.(ci) then
                Array.iter
                  (fun se -> dirty_edge.(sub_map.(se)) <- true)
                  c.Instance.edges)
            comps;
          let d_g, d_map = Multigraph.sub g (fun e -> dirty_edge.(e)) in
          let d_inst = Instance.create d_g ~caps:(Array.copy caps) in
          let sched, _report = Pipeline.solve ~rng ~jobs ~choose d_inst in
          incr plans;
          Instr.bump c_plans;
          if !plans > 1 then begin
            incr replans;
            Instr.bump c_replans
          end;
          Some
            (Array.map
               (fun round -> List.map (fun se -> d_map.(se)) round)
               (Schedule.rounds sched))
        end
      in
      (* merge round-wise: the parts live on disjoint disks, so the
         union of their i-th rounds is feasible *)
      let parts =
        clean_parts @ (match dirty_part with None -> [] | Some p -> [ p ])
      in
      let len = List.fold_left (fun acc p -> max acc (Array.length p)) 0 parts in
      let merged =
        Array.init len (fun i ->
            List.concat_map
              (fun p -> if i < Array.length p then p.(i) else [])
              parts)
      in
      (* certify the merged plan against the eligible residual before
         trusting it with real transfers; its certified length funds
         the execution's round budget *)
      let inv = Array.make m (-1) in
      Array.iteri (fun se e -> inv.(e) <- se) sub_map;
      let sub_sched =
        Schedule.of_rounds
          (Array.map (fun round -> List.map (fun e -> inv.(e)) round) merged)
      in
      let verdict =
        Certify.check ~lb:(Lower_bounds.lb1 sub_inst) sub_inst sub_sched
      in
      if not (Certify.ok verdict) then
        raise
          (Plan_rejected
             (String.concat "; "
                (List.map Certify.violation_to_string
                   verdict.Certify.violations)));
      replan_bounds := Array.length merged :: !replan_bounds;
      Array.fill dirty 0 n false;
      Some merged
    end
  in

  let stopped () =
    match stop_after with Some s -> !clock >= s | None -> false
  in
  Instr.time t_run (fun () ->
      while !pending > 0 && !clock < round_budget && not (stopped ()) do
        if !needs_replan || !fp >= Array.length !future then begin
          match Instr.time t_plan make_plan with
          | None ->
              (* everything pending is backing off: burn an idle round *)
              incr clock;
              incr idle;
              Instr.bump c_idle
          | Some rounds ->
              future := rounds;
              fp := 0;
              needs_replan := false
        end
        else begin
          let attempted = List.filter pending_edge (!future).(!fp) in
          incr fp;
          if attempted = [] then begin
            incr clock;
            incr idle;
            Instr.bump c_idle
          end
          else begin
            let faults = policy.decide ~round:!clock ~attempted in
            let in_attempt = Hashtbl.create 16 in
            List.iter (fun e -> Hashtbl.replace in_attempt e ()) attempted;
            let crashes = ref [] and slows = ref [] in
            let failed = Hashtbl.create 8 in
            List.iter
              (fun f ->
                match f with
                | Crash_disk d ->
                    if d >= 0 && d < n && alive.(d)
                       && not (List.mem d !crashes)
                    then crashes := d :: !crashes
                | Slow_disk d ->
                    if d >= 0 && d < n && alive.(d) && not (List.mem d !slows)
                    then slows := d :: !slows
                | Fail_transfer e ->
                    if Hashtbl.mem in_attempt e then Hashtbl.replace failed e ())
              faults;
            let crashes = List.rev !crashes and slows = List.rev !slows in
            let crashed_now = Array.make n false in
            List.iter (fun d -> crashed_now.(d) <- true) crashes;
            let touches_crash e =
              let u, v = Multigraph.endpoints g e in
              crashed_now.(u) || crashed_now.(v)
            in
            let done_now =
              List.filter
                (fun e -> not (Hashtbl.mem failed e) && not (touches_crash e))
                attempted
            in
            List.iter
              (fun e ->
                completed.(e) <- true;
                decr pending)
              done_now;
            let wasted = List.length attempted - List.length done_now in
            lost := !lost + wasted;
            Instr.bump ~by:wasted c_lost;
            (* record the round before mutating disk state: the crash
               and slowdown land after it *)
            let slowed =
              List.map (fun d -> (d, max 1 (caps.(d) / 2))) slows
            in
            log :=
              {
                Certify.attempted;
                completed = done_now;
                crashed = crashes;
                slowed;
              }
              :: !log;
            Instr.bump c_rounds;
            (* crashes: the disk is gone — everything still pending on
               it is quarantined, and its neighbors' components must
               re-plan *)
            List.iter
              (fun d ->
                alive.(d) <- false;
                crash_list := d :: !crash_list;
                Instr.bump c_crashes;
                Multigraph.iter_incident g d (fun e ->
                    if pending_edge e then begin
                      let u, v = Multigraph.endpoints g e in
                      dirty.(u) <- true;
                      dirty.(v) <- true;
                      quarantine e (Crashed d)
                    end);
                needs_replan := true)
              crashes;
            (* slowdowns: halve the constraint (>= 1); the remaining
               plan may now overload the disk, so its component is
               dirty *)
            List.iter
              (fun (d, c) ->
                if c < caps.(d) then begin
                  caps.(d) <- c;
                  dirty.(d) <- true;
                  needs_replan := true;
                  Instr.bump c_slowdowns
                end)
              slowed;
            (* transient failures: bounded retry with exponential
               round-backoff, then quarantine *)
            List.iter
              (fun e ->
                if pending_edge e then begin
                  attempts.(e) <- attempts.(e) + 1;
                  if attempts.(e) > max_retries then
                    quarantine e (Retries_exhausted attempts.(e))
                  else begin
                    incr retries;
                    Instr.bump c_retries;
                    eligible_at.(e) <-
                      !clock + 1
                      + (backoff_base * (1 lsl min 20 (attempts.(e) - 1)))
                  end
                end)
              (List.filter (Hashtbl.mem failed) attempted);
            incr clock
          end
        end
      done;
      (* graceful degradation: a run that exhausts its round budget
         reports the leftovers instead of spinning — unless the caller
         asked to stop after an epoch, in which case the leftovers are
         the residual it will hand to the next epoch *)
      if not (stopped ()) then
        for e = 0 to m - 1 do
          if pending_edge e then quarantine e Round_budget_exhausted
        done);
  let residual = List.filter pending_edge (List.init m Fun.id) in
  let remaining_plan =
    let len = Array.length !future in
    if !fp >= len then [||]
    else Array.map (List.filter pending_edge) (Array.sub !future !fp (len - !fp))
  in
  let log = List.rev !log in
  let quarantine_list = List.rev !quarantine_log in
  let execution =
    {
      Certify.instance = inst;
      log;
      idle_rounds = !idle;
      quarantined = List.map fst quarantine_list;
      replan_bounds = List.rev !replan_bounds;
    }
  in
  let schedule =
    Schedule.of_rounds
      (Array.of_list (List.map (fun r -> r.Certify.completed) log))
  in
  let degraded =
    List.filter_map
      (fun d ->
        if caps.(d) < Instance.cap inst d then Some (d, caps.(d)) else None)
      (List.init n Fun.id)
  in
  {
    execution;
    schedule;
    completed = m - List.length quarantine_list - List.length residual;
    quarantined = quarantine_list;
    crashed = List.rev !crash_list;
    degraded;
    replans = !replans;
    retries = !retries;
    total_rounds = !clock;
    idle_rounds = !idle;
    rounds_lost = !lost;
    residual;
    remaining_plan;
  }

(* ------------------------------------------------------------------ *)
(* Sharding hooks for the distributed control plane (lib/dist): a
   pure partition of disks — and thus edges — across N workers.
   Contiguous disk ranges keep a worker's traffic local to its
   partition; an edge belongs to the worker owning its lower endpoint,
   so every edge has exactly one owner and a resumed coordinator
   re-derives the same split from (instance, workers) alone. *)

let shard_of inst ~workers e =
  if workers < 1 then invalid_arg "Engine.shard_of: workers must be >= 1";
  let n = Instance.n_disks inst in
  let m = Instance.n_items inst in
  if e < 0 || e >= m then invalid_arg "Engine.shard_of: edge out of range";
  let u, v = Multigraph.endpoints (Instance.graph inst) e in
  let d = min u v in
  min (workers - 1) (d * workers / n)

let shard_round inst ~workers round =
  let parts = Array.make workers [] in
  List.iter
    (fun e ->
      let w = shard_of inst ~workers e in
      parts.(w) <- e :: parts.(w))
    round;
  Array.map List.rev parts

let pp_outcome ppf o =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "rounds:      %d (%d idle, %d transfers lost to faults)@,\
     completed:   %d/%d items@,\
     replans:     %d (retries %d)"
    o.total_rounds o.idle_rounds o.rounds_lost o.completed
    (Instance.n_items o.execution.Certify.instance)
    o.replans o.retries;
  if o.crashed <> [] then
    Format.fprintf ppf "@,crashed:     %s"
      (String.concat ", " (List.map string_of_int o.crashed));
  if o.degraded <> [] then
    Format.fprintf ppf "@,degraded:    %s"
      (String.concat ", "
         (List.map
            (fun (d, c) -> Printf.sprintf "disk %d -> c=%d" d c)
            o.degraded));
  if o.residual <> [] then
    Format.fprintf ppf "@,residual:    %d item(s) left for the next epoch"
      (List.length o.residual);
  if o.quarantined <> [] then begin
    Format.fprintf ppf "@,quarantined: %d item(s)" (List.length o.quarantined);
    List.iter
      (fun (e, reason) ->
        Format.fprintf ppf "@,  - item %d: %s" e
          (quarantine_reason_to_string reason))
      o.quarantined
  end;
  Format.fprintf ppf "@]"
