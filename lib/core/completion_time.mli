(** Completion-time objectives over migration schedules.

    The paper minimizes the makespan (number of rounds).  Its related
    work (Section II) discusses two other objectives from the data
    migration literature:

    - the sum of (weighted) {e item} completion times — an item
      finishing in round [r] has completion time [r] (1-based); Kim's
      LP-based 9-approximation and the 5.06 of Gandhi et al. target
      this;
    - the sum of (weighted) {e disk} completion times — a disk is
      "degraded while it is involved in the migration" and completes
      at its last busy round; Kim's 10-approximation, improved to 7.68.

    Given a fixed set of rounds (color classes), both objectives
    depend only on the {e order} of the rounds.  This module evaluates
    them and optimizes the round order:

    - for items, placing larger rounds first is exactly optimal (an
      exchange argument: swapping a smaller-earlier/larger-later pair
      never increases the sum);
    - for disks, ordering is NP-hard in general; a backward greedy
      (schedule last the round whose disks weigh least) plus an exact
      permutation search for few rounds are provided. *)

(** Sum of item completion times; [weights] maps item (edge id) to its
    weight (default all 1). *)
val item_completion_sum :
  ?weights:(int -> float) -> Schedule.t -> float

(** Sum of disk completion times: each disk contributes its last busy
    round (disks never scheduled contribute 0). *)
val disk_completion_sum :
  ?weights:(int -> float) -> Instance.t -> Schedule.t -> float

(** Reorders rounds by decreasing size — provably optimal for the
    unweighted item objective among reorderings. *)
val reorder_for_items : Schedule.t -> Schedule.t

(** Backward-greedy reordering for the disk objective; falls back to
    exact permutation search when the schedule has at most
    [exact_limit] rounds (default 7). *)
val reorder_for_disks :
  ?weights:(int -> float) -> ?exact_limit:int -> Instance.t -> Schedule.t ->
  Schedule.t
