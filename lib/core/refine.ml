module Multigraph = Mgraph.Multigraph

type stats = { rounds_before : int; rounds_after : int; moves : int }

let refine inst sched =
  let g = Instance.graph inst in
  let n = Instance.n_disks inst in
  let rounds =
    Array.to_list (Schedule.rounds sched) |> List.map (fun r -> ref r)
  in
  let rounds = Array.of_list rounds in
  let k = Array.length rounds in
  (* per-round per-disk load *)
  let load = Array.init k (fun _ -> Array.make n 0) in
  Array.iteri
    (fun r edges ->
      List.iter
        (fun e ->
          let u, v = Multigraph.endpoints g e in
          load.(r).(u) <- load.(r).(u) + 1;
          load.(r).(v) <- load.(r).(v) + 1)
        !edges)
    rounds;
  let fits r e =
    let u, v = Multigraph.endpoints g e in
    load.(r).(u) < Instance.cap inst u && load.(r).(v) < Instance.cap inst v
  in
  let alive = Array.make k true in
  let moves = ref 0 in
  let try_dissolve victim =
    (* find a home for every edge of the victim round, transactionally *)
    let placed = ref [] in
    let ok =
      List.for_all
        (fun e ->
          let home = ref (-1) in
          for r = 0 to k - 1 do
            if !home < 0 && r <> victim && alive.(r) && fits r e then home := r
          done;
          if !home < 0 then false
          else begin
            let u, v = Multigraph.endpoints g e in
            load.(!home).(u) <- load.(!home).(u) + 1;
            load.(!home).(v) <- load.(!home).(v) + 1;
            placed := (e, !home) :: !placed;
            true
          end)
        !(rounds.(victim))
    in
    if ok then begin
      List.iter
        (fun (e, r) ->
          rounds.(r) := e :: !(rounds.(r));
          incr moves)
        !placed;
      rounds.(victim) := [];
      alive.(victim) <- false;
      true
    end
    else begin
      (* roll the tentative placements back *)
      List.iter
        (fun (e, r) ->
          let u, v = Multigraph.endpoints g e in
          load.(r).(u) <- load.(r).(u) - 1;
          load.(r).(v) <- load.(r).(v) - 1)
        !placed;
      false
    end
  in
  (* attack rounds smallest-first until no round dissolves *)
  let progress = ref true in
  while !progress do
    progress := false;
    let candidates =
      List.init k Fun.id
      |> List.filter (fun r -> alive.(r) && !(rounds.(r)) <> [])
      |> List.sort (fun a b ->
             compare (List.length !(rounds.(a))) (List.length !(rounds.(b))))
    in
    List.iter
      (fun r -> if alive.(r) && try_dissolve r then progress := true)
      candidates
  done;
  let surviving =
    Array.to_list rounds
    |> List.filter_map (fun r -> if !r = [] then None else Some !r)
  in
  let out = Schedule.of_rounds (Array.of_list surviving) in
  ( out,
    {
      rounds_before = Schedule.n_rounds sched;
      rounds_after = Schedule.n_rounds out;
      moves = !moves;
    } )
