module Multigraph = Mgraph.Multigraph

type violation =
  | Missing_item of { item : int }
  | Duplicate_item of { item : int; first_round : int; round : int }
  | Unknown_item of { item : int; round : int }
  | Overload of { round : int; disk : int; load : int; cap : int }
  | Beats_lower_bound of { rounds : int; lb : int }
  | Guarantee_broken of {
      solver : string;
      guarantee : string;
      rounds : int;
      bound : int;
    }

type verdict = {
  solver : string option;
  rounds : int;
  lb : int;
  violations : violation list;
}

let ok v = v.violations = []

let hetero_budget lb =
  int_of_float (ceil (2.0 *. sqrt (float_of_int lb))) + 2

let guarantee ?lb solver inst =
  let lb () =
    match lb with Some lb -> lb | None -> Lower_bounds.lower_bound inst
  in
  match solver with
  | "even-opt" when Instance.all_caps_even inst ->
      let lb1 = Lower_bounds.lb1 inst in
      Some (Printf.sprintf "= LB1 = %d (Theorem 4.1)" lb1, lb1, fun r -> r = lb1)
  | "saia" ->
      let b = Saia.round_bound inst in
      Some
        (Printf.sprintf "<= floor(3*split-degree/2) = %d" b, b, fun r -> r <= b)
  | "hetero" | "orbits" | "auto" ->
      (* the O(sqrt OPT) budget is audited against the certified
         combined bound max(LB1, Γ): a valid lower bound on OPT, so
         the audited inequality is implied by the paper's *)
      let lb = lb () in
      let b = lb + hetero_budget lb in
      Some
        (Printf.sprintf "<= lb + 2*sqrt(lb) + 2 = %d" b, b, fun r -> r <= b)
  | _ -> None

let check ?rng ?lb ?solver inst sched =
  let n = Instance.n_disks inst and m = Instance.n_items inst in
  let g = Instance.graph inst in
  let rounds = Schedule.rounds sched in
  let n_rounds = Array.length rounds in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  (* scheduled exactly once, only real ids *)
  let seen_in = Array.make m (-1) in
  Array.iteri
    (fun r items ->
      List.iter
        (fun e ->
          if e < 0 || e >= m then add (Unknown_item { item = e; round = r })
          else if seen_in.(e) >= 0 then
            add (Duplicate_item { item = e; first_round = seen_in.(e); round = r })
          else seen_in.(e) <- r)
        items)
    rounds;
  for e = 0 to m - 1 do
    if seen_in.(e) < 0 then add (Missing_item { item = e })
  done;
  (* per-round per-disk load, counted endpoint by endpoint *)
  let load = Array.make n 0 in
  Array.iteri
    (fun r items ->
      List.iter
        (fun e ->
          if e >= 0 && e < m then begin
            let u, v = Multigraph.endpoints g e in
            load.(u) <- load.(u) + 1;
            if v <> u then load.(v) <- load.(v) + 1
          end)
        items;
      for disk = 0 to n - 1 do
        if load.(disk) > Instance.cap inst disk then
          add
            (Overload { round = r; disk; load = load.(disk); cap = Instance.cap inst disk });
        load.(disk) <- 0
      done)
    rounds;
  (* round count vs the certified lower bound *)
  let lb =
    match lb with Some lb -> lb | None -> Lower_bounds.lower_bound ?rng inst
  in
  if n_rounds < lb then add (Beats_lower_bound { rounds = n_rounds; lb });
  (* the producing solver's stated guarantee *)
  (match solver with
  | None -> ()
  | Some name -> (
      match guarantee ~lb name inst with
      | None -> ()
      | Some (stmt, bound, holds) ->
          if not (holds n_rounds) then
            add
              (Guarantee_broken
                 { solver = name; guarantee = stmt; rounds = n_rounds; bound })));
  { solver; rounds = n_rounds; lb; violations = List.rev !violations }

let violation_to_string = function
  | Missing_item { item } -> Printf.sprintf "item %d never scheduled" item
  | Duplicate_item { item; first_round; round } ->
      Printf.sprintf "item %d scheduled twice (rounds %d and %d)" item
        first_round round
  | Unknown_item { item; round } ->
      Printf.sprintf "round %d schedules unknown item %d" round item
  | Overload { round; disk; load; cap } ->
      Printf.sprintf "round %d overloads disk %d: %d transfers > c_v = %d"
        round disk load cap
  | Beats_lower_bound { rounds; lb } ->
      Printf.sprintf "%d rounds beat the certified lower bound %d" rounds lb
  | Guarantee_broken { solver; guarantee; rounds; _ } ->
      Printf.sprintf "%s broke its guarantee %s with %d rounds" solver
        guarantee rounds

let pp ppf v =
  match v.violations with
  | [] ->
      Format.fprintf ppf "certified: %d rounds (lower bound %d)" v.rounds v.lb
  | vs ->
      Format.fprintf ppf "@[<v>REJECTED: %d rounds (lower bound %d)"
        v.rounds v.lb;
      List.iter
        (fun x -> Format.fprintf ppf "@,  - %s" (violation_to_string x))
        vs;
      Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Execution certification: auditing what the engine actually ran,
   fault by fault, rather than what a planner promised to run. *)

type exec_round = {
  attempted : int list;
  completed : int list;
  crashed : int list;
  slowed : (int * int) list;
}

type execution = {
  instance : Instance.t;
  log : exec_round list;
  idle_rounds : int;
  quarantined : int list;
  replan_bounds : int list;
}

type exec_violation =
  | Exec_missing of { item : int }
  | Exec_duplicate of { item : int; first_round : int; round : int }
  | Exec_unknown of { item : int; round : int }
  | Exec_overload of { round : int; disk : int; load : int; cap : int }
  | Exec_not_attempted of { item : int; round : int }
  | Exec_uses_crashed_disk of { item : int; round : int; disk : int }
  | Exec_quarantine_overlap of { item : int; round : int }
  | Exec_rounds_exceed_bounds of { rounds : int; bound_sum : int }

type exec_verdict = {
  exec_rounds : int;       (** executed (non-idle) rounds audited *)
  completed_items : int;
  exec_violations : exec_violation list;
}

let exec_ok v = v.exec_violations = []

let certify_execution x =
  let inst = x.instance in
  let n = Instance.n_disks inst and m = Instance.n_items inst in
  let g = Instance.graph inst in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  (* replayed disk state: capacities degrade, crashed disks die *)
  let caps = Array.copy (Instance.caps inst) in
  let dead = Array.make n false in
  let completed_in = Array.make m (-1) in
  let quarantined = Array.make m false in
  List.iter
    (fun e -> if e >= 0 && e < m then quarantined.(e) <- true)
    x.quarantined;
  let load = Array.make n 0 in
  let completed_items = ref 0 in
  List.iteri
    (fun r round ->
      (* the load of a round counts every attempted transfer — failed
         transfers held their streams for the full round *)
      List.iter
        (fun e ->
          if e < 0 || e >= m then add (Exec_unknown { item = e; round = r })
          else begin
            let u, v = Multigraph.endpoints g e in
            load.(u) <- load.(u) + 1;
            if v <> u then load.(v) <- load.(v) + 1;
            if dead.(u) then
              add (Exec_uses_crashed_disk { item = e; round = r; disk = u });
            if dead.(v) && v <> u then
              add (Exec_uses_crashed_disk { item = e; round = r; disk = v })
          end)
        round.attempted;
      for disk = 0 to n - 1 do
        if load.(disk) > caps.(disk) then
          add (Exec_overload { round = r; disk; load = load.(disk); cap = caps.(disk) });
        load.(disk) <- 0
      done;
      (* completions: a subset of the attempt, exactly once overall,
         never on a disk that crashed this round, never a quarantined
         item *)
      let attempted = Hashtbl.create 16 in
      List.iter (fun e -> Hashtbl.replace attempted e ()) round.attempted;
      let crashed_now = Hashtbl.create 4 in
      List.iter (fun d -> Hashtbl.replace crashed_now d ()) round.crashed;
      List.iter
        (fun e ->
          if e < 0 || e >= m then add (Exec_unknown { item = e; round = r })
          else begin
            if not (Hashtbl.mem attempted e) then
              add (Exec_not_attempted { item = e; round = r });
            if completed_in.(e) >= 0 then
              add
                (Exec_duplicate
                   { item = e; first_round = completed_in.(e); round = r })
            else begin
              completed_in.(e) <- r;
              incr completed_items
            end;
            if quarantined.(e) then
              add (Exec_quarantine_overlap { item = e; round = r });
            let u, v = Multigraph.endpoints g e in
            if Hashtbl.mem crashed_now u then
              add (Exec_uses_crashed_disk { item = e; round = r; disk = u });
            if Hashtbl.mem crashed_now v && v <> u then
              add (Exec_uses_crashed_disk { item = e; round = r; disk = v })
          end)
        round.completed;
      (* state changes land after the round that suffered them *)
      List.iter
        (fun d -> if d >= 0 && d < n then dead.(d) <- true)
        round.crashed;
      List.iter
        (fun (d, c) -> if d >= 0 && d < n && c >= 1 then caps.(d) <- c)
        round.slowed)
    x.log;
  (* exactly-once over the whole execution: every item either completed
     or quarantined, never both (the both case is flagged above) *)
  for e = 0 to m - 1 do
    if completed_in.(e) < 0 && not quarantined.(e) then
      add (Exec_missing { item = e })
  done;
  (* progress bound: the executed rounds must stay within the budget
     the replans certified, or the engine lost rounds it cannot
     account for *)
  let bound_sum = List.fold_left ( + ) 0 x.replan_bounds in
  let exec_rounds = List.length x.log in
  if exec_rounds > bound_sum then
    add (Exec_rounds_exceed_bounds { rounds = exec_rounds; bound_sum });
  {
    exec_rounds;
    completed_items = !completed_items;
    exec_violations = List.rev !violations;
  }

let exec_violation_to_string = function
  | Exec_missing { item } ->
      Printf.sprintf "item %d neither completed nor quarantined" item
  | Exec_duplicate { item; first_round; round } ->
      Printf.sprintf "item %d completed twice (rounds %d and %d)" item
        first_round round
  | Exec_unknown { item; round } ->
      Printf.sprintf "round %d references unknown item %d" round item
  | Exec_overload { round; disk; load; cap } ->
      Printf.sprintf
        "round %d overloads disk %d: %d transfers > degraded c_v = %d" round
        disk load cap
  | Exec_not_attempted { item; round } ->
      Printf.sprintf "round %d completes item %d it never attempted" round item
  | Exec_uses_crashed_disk { item; round; disk } ->
      Printf.sprintf "round %d moves item %d through crashed disk %d" round
        item disk
  | Exec_quarantine_overlap { item; round } ->
      Printf.sprintf "round %d completes quarantined item %d" round item
  | Exec_rounds_exceed_bounds { rounds; bound_sum } ->
      Printf.sprintf
        "%d executed rounds exceed the %d rounds the replans certified" rounds
        bound_sum

let pp_exec ppf v =
  match v.exec_violations with
  | [] ->
      Format.fprintf ppf "execution certified: %d rounds, %d items completed"
        v.exec_rounds v.completed_items
  | vs ->
      Format.fprintf ppf
        "@[<v>EXECUTION REJECTED: %d rounds, %d items completed" v.exec_rounds
        v.completed_items;
      List.iter
        (fun x -> Format.fprintf ppf "@,  - %s" (exec_violation_to_string x))
        vs;
      Format.fprintf ppf "@]"
