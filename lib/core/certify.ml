module Multigraph = Mgraph.Multigraph

type violation =
  | Missing_item of { item : int }
  | Duplicate_item of { item : int; first_round : int; round : int }
  | Unknown_item of { item : int; round : int }
  | Overload of { round : int; disk : int; load : int; cap : int }
  | Beats_lower_bound of { rounds : int; lb : int }
  | Guarantee_broken of {
      solver : string;
      guarantee : string;
      rounds : int;
      bound : int;
    }

type verdict = {
  solver : string option;
  rounds : int;
  lb : int;
  violations : violation list;
}

let ok v = v.violations = []

let hetero_budget lb =
  int_of_float (ceil (2.0 *. sqrt (float_of_int lb))) + 2

let guarantee ?lb solver inst =
  let lb () =
    match lb with Some lb -> lb | None -> Lower_bounds.lower_bound inst
  in
  match solver with
  | "even-opt" when Instance.all_caps_even inst ->
      let lb1 = Lower_bounds.lb1 inst in
      Some (Printf.sprintf "= LB1 = %d (Theorem 4.1)" lb1, lb1, fun r -> r = lb1)
  | "saia" ->
      let b = Saia.round_bound inst in
      Some
        (Printf.sprintf "<= floor(3*split-degree/2) = %d" b, b, fun r -> r <= b)
  | "hetero" | "orbits" | "auto" ->
      (* the O(sqrt OPT) budget is audited against the certified
         combined bound max(LB1, Γ): a valid lower bound on OPT, so
         the audited inequality is implied by the paper's *)
      let lb = lb () in
      let b = lb + hetero_budget lb in
      Some
        (Printf.sprintf "<= lb + 2*sqrt(lb) + 2 = %d" b, b, fun r -> r <= b)
  | _ -> None

let check ?rng ?lb ?solver inst sched =
  let n = Instance.n_disks inst and m = Instance.n_items inst in
  let g = Instance.graph inst in
  let rounds = Schedule.rounds sched in
  let n_rounds = Array.length rounds in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  (* scheduled exactly once, only real ids *)
  let seen_in = Array.make m (-1) in
  Array.iteri
    (fun r items ->
      List.iter
        (fun e ->
          if e < 0 || e >= m then add (Unknown_item { item = e; round = r })
          else if seen_in.(e) >= 0 then
            add (Duplicate_item { item = e; first_round = seen_in.(e); round = r })
          else seen_in.(e) <- r)
        items)
    rounds;
  for e = 0 to m - 1 do
    if seen_in.(e) < 0 then add (Missing_item { item = e })
  done;
  (* per-round per-disk load, counted endpoint by endpoint *)
  let load = Array.make n 0 in
  Array.iteri
    (fun r items ->
      List.iter
        (fun e ->
          if e >= 0 && e < m then begin
            let u, v = Multigraph.endpoints g e in
            load.(u) <- load.(u) + 1;
            if v <> u then load.(v) <- load.(v) + 1
          end)
        items;
      for disk = 0 to n - 1 do
        if load.(disk) > Instance.cap inst disk then
          add
            (Overload { round = r; disk; load = load.(disk); cap = Instance.cap inst disk });
        load.(disk) <- 0
      done)
    rounds;
  (* round count vs the certified lower bound *)
  let lb =
    match lb with Some lb -> lb | None -> Lower_bounds.lower_bound ?rng inst
  in
  if n_rounds < lb then add (Beats_lower_bound { rounds = n_rounds; lb });
  (* the producing solver's stated guarantee *)
  (match solver with
  | None -> ()
  | Some name -> (
      match guarantee ~lb name inst with
      | None -> ()
      | Some (stmt, bound, holds) ->
          if not (holds n_rounds) then
            add
              (Guarantee_broken
                 { solver = name; guarantee = stmt; rounds = n_rounds; bound })));
  { solver; rounds = n_rounds; lb; violations = List.rev !violations }

let violation_to_string = function
  | Missing_item { item } -> Printf.sprintf "item %d never scheduled" item
  | Duplicate_item { item; first_round; round } ->
      Printf.sprintf "item %d scheduled twice (rounds %d and %d)" item
        first_round round
  | Unknown_item { item; round } ->
      Printf.sprintf "round %d schedules unknown item %d" round item
  | Overload { round; disk; load; cap } ->
      Printf.sprintf "round %d overloads disk %d: %d transfers > c_v = %d"
        round disk load cap
  | Beats_lower_bound { rounds; lb } ->
      Printf.sprintf "%d rounds beat the certified lower bound %d" rounds lb
  | Guarantee_broken { solver; guarantee; rounds; _ } ->
      Printf.sprintf "%s broke its guarantee %s with %d rounds" solver
        guarantee rounds

let pp ppf v =
  match v.violations with
  | [] ->
      Format.fprintf ppf "certified: %d rounds (lower bound %d)" v.rounds v.lb
  | vs ->
      Format.fprintf ppf "@[<v>REJECTED: %d rounds (lower bound %d)"
        v.rounds v.lb;
      List.iter
        (fun x -> Format.fprintf ppf "@,  - %s" (violation_to_string x))
        vs;
      Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Execution certification: auditing what the engine actually ran,
   fault by fault, rather than what a planner promised to run. *)

type exec_round = {
  attempted : int list;
  completed : int list;
  crashed : int list;
  slowed : (int * int) list;
}

type execution = {
  instance : Instance.t;
  log : exec_round list;
  idle_rounds : int;
  quarantined : int list;
  replan_bounds : int list;
}

type exec_violation =
  | Exec_missing of { item : int }
  | Exec_duplicate of { item : int; first_round : int; round : int }
  | Exec_unknown of { item : int; round : int }
  | Exec_overload of { round : int; disk : int; load : int; cap : int }
  | Exec_not_attempted of { item : int; round : int }
  | Exec_uses_crashed_disk of { item : int; round : int; disk : int }
  | Exec_quarantine_overlap of { item : int; round : int }
  | Exec_rounds_exceed_bounds of { rounds : int; bound_sum : int }

type exec_verdict = {
  exec_rounds : int;       (** executed (non-idle) rounds audited *)
  completed_items : int;
  exec_violations : exec_violation list;
}

let exec_ok v = v.exec_violations = []

let certify_execution x =
  let inst = x.instance in
  let n = Instance.n_disks inst and m = Instance.n_items inst in
  let g = Instance.graph inst in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  (* replayed disk state: capacities degrade, crashed disks die *)
  let caps = Array.copy (Instance.caps inst) in
  let dead = Array.make n false in
  let completed_in = Array.make m (-1) in
  let quarantined = Array.make m false in
  List.iter
    (fun e -> if e >= 0 && e < m then quarantined.(e) <- true)
    x.quarantined;
  let load = Array.make n 0 in
  let completed_items = ref 0 in
  List.iteri
    (fun r round ->
      (* the load of a round counts every attempted transfer — failed
         transfers held their streams for the full round *)
      List.iter
        (fun e ->
          if e < 0 || e >= m then add (Exec_unknown { item = e; round = r })
          else begin
            let u, v = Multigraph.endpoints g e in
            load.(u) <- load.(u) + 1;
            if v <> u then load.(v) <- load.(v) + 1;
            if dead.(u) then
              add (Exec_uses_crashed_disk { item = e; round = r; disk = u });
            if dead.(v) && v <> u then
              add (Exec_uses_crashed_disk { item = e; round = r; disk = v })
          end)
        round.attempted;
      for disk = 0 to n - 1 do
        if load.(disk) > caps.(disk) then
          add (Exec_overload { round = r; disk; load = load.(disk); cap = caps.(disk) });
        load.(disk) <- 0
      done;
      (* completions: a subset of the attempt, exactly once overall,
         never on a disk that crashed this round, never a quarantined
         item *)
      let attempted = Hashtbl.create 16 in
      List.iter (fun e -> Hashtbl.replace attempted e ()) round.attempted;
      let crashed_now = Hashtbl.create 4 in
      List.iter (fun d -> Hashtbl.replace crashed_now d ()) round.crashed;
      List.iter
        (fun e ->
          if e < 0 || e >= m then add (Exec_unknown { item = e; round = r })
          else begin
            if not (Hashtbl.mem attempted e) then
              add (Exec_not_attempted { item = e; round = r });
            if completed_in.(e) >= 0 then
              add
                (Exec_duplicate
                   { item = e; first_round = completed_in.(e); round = r })
            else begin
              completed_in.(e) <- r;
              incr completed_items
            end;
            if quarantined.(e) then
              add (Exec_quarantine_overlap { item = e; round = r });
            let u, v = Multigraph.endpoints g e in
            if Hashtbl.mem crashed_now u then
              add (Exec_uses_crashed_disk { item = e; round = r; disk = u });
            if Hashtbl.mem crashed_now v && v <> u then
              add (Exec_uses_crashed_disk { item = e; round = r; disk = v })
          end)
        round.completed;
      (* state changes land after the round that suffered them *)
      List.iter
        (fun d -> if d >= 0 && d < n then dead.(d) <- true)
        round.crashed;
      List.iter
        (fun (d, c) -> if d >= 0 && d < n && c >= 1 then caps.(d) <- c)
        round.slowed)
    x.log;
  (* exactly-once over the whole execution: every item either completed
     or quarantined, never both (the both case is flagged above) *)
  for e = 0 to m - 1 do
    if completed_in.(e) < 0 && not quarantined.(e) then
      add (Exec_missing { item = e })
  done;
  (* progress bound: the executed rounds must stay within the budget
     the replans certified, or the engine lost rounds it cannot
     account for *)
  let bound_sum = List.fold_left ( + ) 0 x.replan_bounds in
  let exec_rounds = List.length x.log in
  if exec_rounds > bound_sum then
    add (Exec_rounds_exceed_bounds { rounds = exec_rounds; bound_sum });
  {
    exec_rounds;
    completed_items = !completed_items;
    exec_violations = List.rev !violations;
  }

let exec_violation_to_string = function
  | Exec_missing { item } ->
      Printf.sprintf "item %d neither completed nor quarantined" item
  | Exec_duplicate { item; first_round; round } ->
      Printf.sprintf "item %d completed twice (rounds %d and %d)" item
        first_round round
  | Exec_unknown { item; round } ->
      Printf.sprintf "round %d references unknown item %d" round item
  | Exec_overload { round; disk; load; cap } ->
      Printf.sprintf
        "round %d overloads disk %d: %d transfers > degraded c_v = %d" round
        disk load cap
  | Exec_not_attempted { item; round } ->
      Printf.sprintf "round %d completes item %d it never attempted" round item
  | Exec_uses_crashed_disk { item; round; disk } ->
      Printf.sprintf "round %d moves item %d through crashed disk %d" round
        item disk
  | Exec_quarantine_overlap { item; round } ->
      Printf.sprintf "round %d completes quarantined item %d" round item
  | Exec_rounds_exceed_bounds { rounds; bound_sum } ->
      Printf.sprintf
        "%d executed rounds exceed the %d rounds the replans certified" rounds
        bound_sum

(* ------------------------------------------------------------------ *)
(* Service certification: auditing a whole streaming run — the
   concatenation of per-epoch flight logs — against the request stream
   the service claims to have served. *)

type service_epoch = {
  se_base : int;
  se_instance : Instance.t;
  se_items : int array;
  se_sources : int array;
  se_targets : int array;
  se_absorbed : int list;
  se_retired : int list;
  se_patches : (int * int) list;
  se_log : exec_round list;
  se_idle : int;
  se_quarantined : int list;
  se_residual : int list;
  se_bounds : int list;
}

type service_request_status =
  | Sreq_rejected of string
  | Sreq_completed of { absorbed : int; completed : int }
  | Sreq_abandoned of { absorbed : int }

type service_request = {
  sreq_at : int;
  sreq_moves : (int * int) list;
  sreq_status : service_request_status;
}

type service_execution = {
  svc_initial : int array;
  svc_final : int array;
  svc_epochs : service_epoch list;
  svc_requests : service_request array;
}

type service_violation =
  | Svc_epoch of { epoch : int; violation : exec_violation }
  | Svc_malformed of { epoch : int; what : string }
  | Svc_bad_base of { epoch : int; base : int; min_base : int }
  | Svc_bad_absorption of { request : int; epoch : int; base : int; at : int }
  | Svc_wrong_source of {
      epoch : int;
      edge : int;
      item : int;
      expected : int;
      actual : int;
    }
  | Svc_item_double_booked of { epoch : int; item : int }
  | Svc_unrequested_transfer of { epoch : int; edge : int; item : int }
  | Svc_uses_dead_disk of { epoch : int; disk : int }
  | Svc_final_mismatch of { item : int; reported : int; replayed : int }
  | Svc_status_mismatch of {
      request : int;
      reported : string;
      replayed : string;
    }

type service_verdict = {
  svc_epoch_count : int;
  svc_rounds : int;
  svc_transfers : int;
  svc_violations : service_violation list;
}

let service_ok v = v.svc_violations = []

let service_request_status_to_string = function
  | Sreq_rejected reason -> Printf.sprintf "rejected (%s)" reason
  | Sreq_completed { absorbed; completed } ->
      Printf.sprintf "completed@%d (absorbed@%d)" completed absorbed
  | Sreq_abandoned { absorbed } ->
      if absorbed < 0 then "abandoned (never absorbed)"
      else Printf.sprintf "abandoned (absorbed@%d)" absorbed

(* [last_move_target req item] — within one request a later retarget of
   the same item wins, mirroring the service's admission dedupe. *)
let last_move_target req item =
  List.fold_left
    (fun acc (i, t) -> if i = item then Some t else acc)
    None req.sreq_moves

let certify_service x =
  let m_items = Array.length x.svc_initial in
  let n_requests = Array.length x.svc_requests in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let placement = Array.copy x.svc_initial in
  let owner = Array.make m_items (-1) in
  let absorbed_at = Array.make n_requests (-1) in
  let done_at = Array.make n_requests (-1) in
  let abandoned = Array.make n_requests false in
  let outstanding = Array.make n_requests [] in
  let dead : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let transfers = ref 0 in
  (* a request is discharged move by move: a move is settled once it is
     superseded (the item has a newer owner) or in effect (the item
     sits on its target) — re-checked after every event that can
     change either *)
  let live = ref [] (* absorbed, not yet completed/abandoned *) in
  let discharge_live ~round =
    live :=
      List.filter
        (fun k ->
          if abandoned.(k) then false
          else begin
            outstanding.(k) <-
              List.filter
                (fun (item, target) ->
                  owner.(item) = k && placement.(item) <> target)
                outstanding.(k);
            if outstanding.(k) = [] then begin
              done_at.(k) <- round;
              false
            end
            else true
          end)
        !live
  in
  let next_absorb = ref 0 (* next non-rejected request index expected *) in
  let skip_rejected () =
    while
      !next_absorb < n_requests
      && (match x.svc_requests.(!next_absorb).sreq_status with
         | Sreq_rejected _ -> true
         | _ -> false)
    do
      incr next_absorb
    done
  in
  let prev_end = ref 0 in
  List.iteri
    (fun ei ep ->
      if ep.se_base < !prev_end then
        add (Svc_bad_base { epoch = ei; base = ep.se_base; min_base = !prev_end });
      (* --- trigger fallout, part 1: disks retired at this boundary
         (before absorption — a request arriving alongside the failure
         must have been admission-checked against the post-failure
         state) --- *)
      List.iter (fun d -> Hashtbl.replace dead d ()) ep.se_retired;
      (* --- absorption: in arrival order, never early, never twice --- *)
      List.iter
        (fun k ->
          if k < 0 || k >= n_requests then
            add
              (Svc_malformed
                 { epoch = ei; what = Printf.sprintf "absorbs unknown request %d" k })
          else begin
            skip_rejected ();
            let req = x.svc_requests.(k) in
            if k <> !next_absorb || req.sreq_at > ep.se_base then
              add
                (Svc_bad_absorption
                   { request = k; epoch = ei; base = ep.se_base; at = req.sreq_at })
            else begin
              next_absorb := k + 1;
              absorbed_at.(k) <- ep.se_base;
              let moves = ref [] in
              List.iter
                (fun (item, target) ->
                  if item < 0 || item >= m_items then
                    add
                      (Svc_malformed
                         {
                           epoch = ei;
                           what =
                             Printf.sprintf "request %d moves unknown item %d" k
                               item;
                         })
                  else begin
                    owner.(item) <- k;
                    moves := (item, target) :: List.remove_assoc item !moves
                  end)
                req.sreq_moves;
              outstanding.(k) <- List.rev !moves;
              live := k :: !live
            end
          end)
        ep.se_absorbed;
      (* --- trigger fallout, part 2: placement repairs off dead disks --- *)
      List.iter
        (fun (item, disk) ->
          if item < 0 || item >= m_items then
            add
              (Svc_malformed
                 { epoch = ei; what = Printf.sprintf "patch of unknown item %d" item })
          else begin
            if Hashtbl.mem dead disk then
              add (Svc_uses_dead_disk { epoch = ei; disk });
            placement.(item) <- disk
          end)
        ep.se_patches;
      (* a still-owed move targeting a dead disk can never be served:
         its request is abandoned, stickily — later supersession does
         not resurrect it (mirrors the service's reconciliation) *)
      List.iter
        (fun k ->
          if
            (not abandoned.(k))
            && done_at.(k) < 0
            && List.exists
                 (fun (item, target) ->
                   owner.(item) = k
                   && placement.(item) <> target
                   && Hashtbl.mem dead target)
                 outstanding.(k)
          then abandoned.(k) <- true)
        !live;
      (* supersession and no-op moves settle at the epoch boundary *)
      discharge_live ~round:ep.se_base;
      (* --- the epoch instance must be exactly the outstanding work --- *)
      let m_e = Instance.n_items ep.se_instance in
      let g_e = Instance.graph ep.se_instance in
      if
        Array.length ep.se_items <> m_e
        || Array.length ep.se_sources <> m_e
        || Array.length ep.se_targets <> m_e
      then
        add
          (Svc_malformed
             { epoch = ei; what = "edge maps do not match the instance" })
      else begin
        let item_booked = Hashtbl.create 16 in
        for e = 0 to m_e - 1 do
          let item = ep.se_items.(e) in
          let src = ep.se_sources.(e) and dst = ep.se_targets.(e) in
          if item < 0 || item >= m_items then
            add
              (Svc_malformed
                 { epoch = ei; what = Printf.sprintf "edge %d moves unknown item %d" e item })
          else begin
            if Hashtbl.mem item_booked item then
              add (Svc_item_double_booked { epoch = ei; item })
            else Hashtbl.replace item_booked item ();
            let u, v = Multigraph.endpoints g_e e in
            if not ((u = src && v = dst) || (u = dst && v = src)) then
              add
                (Svc_malformed
                   {
                     epoch = ei;
                     what =
                       Printf.sprintf
                         "edge %d endpoints (%d,%d) disagree with maps (%d,%d)" e
                         u v src dst;
                   });
            if placement.(item) <> src then
              add
                (Svc_wrong_source
                   { epoch = ei; edge = e; item; expected = placement.(item); actual = src });
            if Hashtbl.mem dead src then
              add (Svc_uses_dead_disk { epoch = ei; disk = src });
            if Hashtbl.mem dead dst then
              add (Svc_uses_dead_disk { epoch = ei; disk = dst });
            (let k = owner.(item) in
             if
               k < 0 || abandoned.(k)
               || last_move_target x.svc_requests.(k) item <> Some dst
             then add (Svc_unrequested_transfer { epoch = ei; edge = e; item }))
          end
        done
      end;
      (* --- the epoch flight log, under the engine's own certifier ---
         residual edges are accounted like the quarantine: present,
         not completed, carried into the next epoch *)
      let exec =
        {
          instance = ep.se_instance;
          log = ep.se_log;
          idle_rounds = ep.se_idle;
          quarantined = ep.se_quarantined @ ep.se_residual;
          replan_bounds = ep.se_bounds;
        }
      in
      let ev = certify_execution exec in
      List.iter
        (fun v -> add (Svc_epoch { epoch = ei; violation = v }))
        ev.exec_violations;
      List.iter
        (fun e ->
          if List.mem e ep.se_quarantined then
            add
              (Svc_malformed
                 { epoch = ei; what = Printf.sprintf "edge %d both quarantined and residual" e }))
        ep.se_residual;
      (* --- replay completions; a transfer is in effect from the next
         round --- *)
      List.iteri
        (fun r round ->
          let moved = ref false in
          List.iter
            (fun e ->
              if e >= 0 && e < m_e then begin
                let item = ep.se_items.(e) in
                if item >= 0 && item < m_items then begin
                  placement.(item) <- ep.se_targets.(e);
                  incr transfers;
                  moved := true
                end
              end)
            round.completed;
          if !moved then discharge_live ~round:(ep.se_base + r + 1))
        ep.se_log;
      let epoch_end = ep.se_base + List.length ep.se_log + ep.se_idle in
      (* --- quarantined edges abandon their owning request --- *)
      List.iter
        (fun e ->
          if e >= 0 && e < m_e then begin
            let item = ep.se_items.(e) in
            if item >= 0 && item < m_items then begin
              let k = owner.(item) in
              if k >= 0 && done_at.(k) < 0 && not abandoned.(k) then
                abandoned.(k) <- true
            end
          end)
        ep.se_quarantined;
      (* disks crashed mid-epoch are dead from here on: the next
         boundary's patches and dead-target abandonment scan, and every
         later epoch's edge endpoints, must see them *)
      List.iter
        (fun (round : exec_round) ->
          List.iter (fun d -> Hashtbl.replace dead d ()) round.crashed)
        ep.se_log;
      prev_end := epoch_end)
    x.svc_epochs;
  (* --- terminal accounting: statuses and the final placement --- *)
  Array.iteri
    (fun k (req : service_request) ->
      let replayed =
        match req.sreq_status with
        | Sreq_rejected _ when absorbed_at.(k) < 0 -> req.sreq_status
        | Sreq_rejected reason ->
            (* a rejected request must never be absorbed *)
            Sreq_rejected (reason ^ ", yet absorbed")
        | _ ->
            if done_at.(k) >= 0 && not abandoned.(k) then
              Sreq_completed { absorbed = absorbed_at.(k); completed = done_at.(k) }
            else Sreq_abandoned { absorbed = absorbed_at.(k) }
      in
      if replayed <> req.sreq_status then
        add
          (Svc_status_mismatch
             {
               request = k;
               reported = service_request_status_to_string req.sreq_status;
               replayed = service_request_status_to_string replayed;
             }))
    x.svc_requests;
  if Array.length x.svc_final <> m_items then
    add (Svc_malformed { epoch = -1; what = "final placement length mismatch" })
  else
    Array.iteri
      (fun item d ->
        if placement.(item) <> d then
          add
            (Svc_final_mismatch
               { item; reported = d; replayed = placement.(item) }))
      x.svc_final;
  {
    svc_epoch_count = List.length x.svc_epochs;
    svc_rounds = !prev_end;
    svc_transfers = !transfers;
    svc_violations = List.rev !violations;
  }

let service_violation_to_string = function
  | Svc_epoch { epoch; violation } ->
      Printf.sprintf "epoch %d: %s" epoch (exec_violation_to_string violation)
  | Svc_malformed { epoch; what } ->
      if epoch < 0 then Printf.sprintf "malformed record: %s" what
      else Printf.sprintf "epoch %d: malformed record: %s" epoch what
  | Svc_bad_base { epoch; base; min_base } ->
      Printf.sprintf
        "epoch %d starts at round %d before the previous epoch ended (%d)"
        epoch base min_base
  | Svc_bad_absorption { request; epoch; base; at } ->
      Printf.sprintf
        "epoch %d (round %d) absorbs request %d out of order or before its \
         arrival at round %d"
        epoch base request at
  | Svc_wrong_source { epoch; edge; item; expected; actual } ->
      Printf.sprintf
        "epoch %d: edge %d moves item %d from disk %d but it sits on disk %d"
        epoch edge item actual expected
  | Svc_item_double_booked { epoch; item } ->
      Printf.sprintf "epoch %d: item %d booked on two edges" epoch item
  | Svc_unrequested_transfer { epoch; edge; item } ->
      Printf.sprintf
        "epoch %d: edge %d moves item %d nowhere any live request asked" epoch
        edge item
  | Svc_uses_dead_disk { epoch; disk } ->
      Printf.sprintf "epoch %d: traffic through dead disk %d" epoch disk
  | Svc_final_mismatch { item; reported; replayed } ->
      Printf.sprintf
        "final placement puts item %d on disk %d but the replay lands it on %d"
        item reported replayed
  | Svc_status_mismatch { request; reported; replayed } ->
      Printf.sprintf "request %d reported %s but the replay says %s" request
        reported replayed

let pp_service ppf v =
  match v.svc_violations with
  | [] ->
      Format.fprintf ppf
        "service certified: %d epochs, %d rounds, %d transfers"
        v.svc_epoch_count v.svc_rounds v.svc_transfers
  | vs ->
      Format.fprintf ppf
        "@[<v>SERVICE REJECTED: %d epochs, %d rounds, %d transfers"
        v.svc_epoch_count v.svc_rounds v.svc_transfers;
      List.iter
        (fun x -> Format.fprintf ppf "@,  - %s" (service_violation_to_string x))
        vs;
      Format.fprintf ppf "@]"

(* Canonical flight-log rendering: one line per record, fixed field
   order, integers only — two executions are equal iff their
   renderings are byte-equal.  The distributed runner's determinism
   contract ("same bytes as the in-process engine at any worker count
   and any crash schedule") is checked on exactly this string. *)
let execution_to_string x =
  let buf = Buffer.create 1024 in
  let ints l = String.concat "," (List.map string_of_int l) in
  Buffer.add_string buf
    (Printf.sprintf "instance %s\n"
       (Digest.to_hex (Digest.string (Instance.to_string x.instance))));
  Buffer.add_string buf (Printf.sprintf "rounds %d\n" (List.length x.log));
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "round %d attempted=%s completed=%s crashed=%s slowed=%s\n" i
           (ints r.attempted) (ints r.completed) (ints r.crashed)
           (String.concat ","
              (List.map (fun (d, c) -> Printf.sprintf "%d:%d" d c) r.slowed))))
    x.log;
  Buffer.add_string buf (Printf.sprintf "idle %d\n" x.idle_rounds);
  Buffer.add_string buf (Printf.sprintf "quarantined %s\n" (ints x.quarantined));
  Buffer.add_string buf
    (Printf.sprintf "replan_bounds %s\n" (ints x.replan_bounds));
  Buffer.contents buf

let pp_exec ppf v =
  match v.exec_violations with
  | [] ->
      Format.fprintf ppf "execution certified: %d rounds, %d items completed"
        v.exec_rounds v.completed_items
  | vs ->
      Format.fprintf ppf
        "@[<v>EXECUTION REJECTED: %d rounds, %d items completed" v.exec_rounds
        v.completed_items;
      List.iter
        (fun x -> Format.fprintf ppf "@,  - %s" (exec_violation_to_string x))
        vs;
      Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* SLA certification: auditing a planner's per-group completion
   claims.  Everything is re-derived from the (instance, schedule)
   pair with no code shared with [Objective] — a planner cannot
   certify its own completion table. *)

type sla_claim = {
  sla_solver : string option;
  sla_reordered : bool;
  sla_completions : (int * int) list;
  sla_weighted_sum : int;
}

type sla_violation =
  | Sla_completion_mismatch of { group : int; claimed : int; derived : int }
  | Sla_weighted_sum_mismatch of { claimed : int; derived : int }
  | Sla_priority_inversion of { group : int; late : int; tolerance : int }

type sla_verdict = {
  sla_groups : int;
  sla_derived_sum : int;
  sla_violations : sla_violation list;
}

let sla_ok v = v.sla_violations = []

let check_sla ?(tolerance = 0) inst sched claim =
  let k = Instance.n_groups inst in
  let rounds = Schedule.rounds sched in
  (* independent re-derivation of every group's completion round *)
  let derived = Array.make k 0 in
  Array.iteri
    (fun i items ->
      List.iter
        (fun e ->
          let g = Instance.group inst e in
          if g >= 0 && g < k then derived.(g) <- i + 1)
        items)
    rounds;
  let violations = ref [] in
  let add v = violations := v :: !violations in
  List.iter
    (fun (g, c) ->
      let d = if g >= 0 && g < k then derived.(g) else 0 in
      if c <> d then
        add (Sla_completion_mismatch { group = g; claimed = c; derived = d }))
    claim.sla_completions;
  let derived_sum = ref 0 in
  Array.iteri
    (fun g c -> derived_sum := !derived_sum + (Instance.weight inst g * c))
    derived;
  if claim.sla_weighted_sum <> !derived_sum then
    add
      (Sla_weighted_sum_mismatch
         { claimed = claim.sla_weighted_sum; derived = !derived_sum });
  (* A priority-reordered schedule never makes a group wait on rounds
     that serve only strictly lower-priority groups; [tolerance] rounds
     of such delay are forgiven per group. *)
  if claim.sla_reordered then begin
    let rank = Array.make k 0 in
    let order = Array.init k Fun.id in
    Array.sort
      (fun a b ->
        match compare (Instance.weight inst b) (Instance.weight inst a) with
        | 0 -> compare a b
        | c -> c)
      order;
    Array.iteri (fun i g -> rank.(g) <- i) order;
    let best =
      Array.map
        (fun items ->
          List.fold_left
            (fun acc e -> min acc rank.(Instance.group inst e))
            max_int items)
        rounds
    in
    Array.iteri
      (fun g c ->
        if c > 0 then begin
          let late = ref 0 in
          for i = 0 to c - 1 do
            if best.(i) > rank.(g) then incr late
          done;
          if !late > tolerance then
            add (Sla_priority_inversion { group = g; late = !late; tolerance })
        end)
      derived
  end;
  {
    sla_groups = k;
    sla_derived_sum = !derived_sum;
    sla_violations = List.rev !violations;
  }

let sla_violation_to_string = function
  | Sla_completion_mismatch { group; claimed; derived } ->
      Printf.sprintf
        "group %d: claimed completion round %d, flight log says %d" group
        claimed derived
  | Sla_weighted_sum_mismatch { claimed; derived } ->
      Printf.sprintf "claimed weighted sum %d, flight log says %d" claimed
        derived
  | Sla_priority_inversion { group; late; tolerance } ->
      Printf.sprintf
        "group %d delayed by %d lower-priority round(s) (tolerance %d)" group
        late tolerance

let pp_sla ppf v =
  match v.sla_violations with
  | [] ->
      Format.fprintf ppf "sla certified: %d groups, weighted sum %d"
        v.sla_groups v.sla_derived_sum
  | vs ->
      Format.fprintf ppf "@[<v>SLA REJECTED: %d groups, weighted sum %d"
        v.sla_groups v.sla_derived_sum;
      List.iter
        (fun x -> Format.fprintf ppf "@,  - %s" (sla_violation_to_string x))
        vs;
      Format.fprintf ppf "@]"
