module Multigraph = Mgraph.Multigraph

type violation =
  | Missing_item of { item : int }
  | Duplicate_item of { item : int; first_round : int; round : int }
  | Unknown_item of { item : int; round : int }
  | Overload of { round : int; disk : int; load : int; cap : int }
  | Beats_lower_bound of { rounds : int; lb : int }
  | Guarantee_broken of {
      solver : string;
      guarantee : string;
      rounds : int;
      bound : int;
    }

type verdict = {
  solver : string option;
  rounds : int;
  lb : int;
  violations : violation list;
}

let ok v = v.violations = []

let hetero_budget lb =
  int_of_float (ceil (2.0 *. sqrt (float_of_int lb))) + 2

let guarantee ?lb solver inst =
  let lb () =
    match lb with Some lb -> lb | None -> Lower_bounds.lower_bound inst
  in
  match solver with
  | "even-opt" when Instance.all_caps_even inst ->
      let lb1 = Lower_bounds.lb1 inst in
      Some (Printf.sprintf "= LB1 = %d (Theorem 4.1)" lb1, lb1, fun r -> r = lb1)
  | "saia" ->
      let b = Saia.round_bound inst in
      Some
        (Printf.sprintf "<= floor(3*split-degree/2) = %d" b, b, fun r -> r <= b)
  | "hetero" | "orbits" | "auto" ->
      (* the O(sqrt OPT) budget is audited against the certified
         combined bound max(LB1, Γ): a valid lower bound on OPT, so
         the audited inequality is implied by the paper's *)
      let lb = lb () in
      let b = lb + hetero_budget lb in
      Some
        (Printf.sprintf "<= lb + 2*sqrt(lb) + 2 = %d" b, b, fun r -> r <= b)
  | _ -> None

let check ?rng ?lb ?solver inst sched =
  let n = Instance.n_disks inst and m = Instance.n_items inst in
  let g = Instance.graph inst in
  let rounds = Schedule.rounds sched in
  let n_rounds = Array.length rounds in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  (* scheduled exactly once, only real ids *)
  let seen_in = Array.make m (-1) in
  Array.iteri
    (fun r items ->
      List.iter
        (fun e ->
          if e < 0 || e >= m then add (Unknown_item { item = e; round = r })
          else if seen_in.(e) >= 0 then
            add (Duplicate_item { item = e; first_round = seen_in.(e); round = r })
          else seen_in.(e) <- r)
        items)
    rounds;
  for e = 0 to m - 1 do
    if seen_in.(e) < 0 then add (Missing_item { item = e })
  done;
  (* per-round per-disk load, counted endpoint by endpoint *)
  let load = Array.make n 0 in
  Array.iteri
    (fun r items ->
      List.iter
        (fun e ->
          if e >= 0 && e < m then begin
            let u, v = Multigraph.endpoints g e in
            load.(u) <- load.(u) + 1;
            if v <> u then load.(v) <- load.(v) + 1
          end)
        items;
      for disk = 0 to n - 1 do
        if load.(disk) > Instance.cap inst disk then
          add
            (Overload { round = r; disk; load = load.(disk); cap = Instance.cap inst disk });
        load.(disk) <- 0
      done)
    rounds;
  (* round count vs the certified lower bound *)
  let lb =
    match lb with Some lb -> lb | None -> Lower_bounds.lower_bound ?rng inst
  in
  if n_rounds < lb then add (Beats_lower_bound { rounds = n_rounds; lb });
  (* the producing solver's stated guarantee *)
  (match solver with
  | None -> ()
  | Some name -> (
      match guarantee ~lb name inst with
      | None -> ()
      | Some (stmt, bound, holds) ->
          if not (holds n_rounds) then
            add
              (Guarantee_broken
                 { solver = name; guarantee = stmt; rounds = n_rounds; bound })));
  { solver; rounds = n_rounds; lb; violations = List.rev !violations }

let violation_to_string = function
  | Missing_item { item } -> Printf.sprintf "item %d never scheduled" item
  | Duplicate_item { item; first_round; round } ->
      Printf.sprintf "item %d scheduled twice (rounds %d and %d)" item
        first_round round
  | Unknown_item { item; round } ->
      Printf.sprintf "round %d schedules unknown item %d" round item
  | Overload { round; disk; load; cap } ->
      Printf.sprintf "round %d overloads disk %d: %d transfers > c_v = %d"
        round disk load cap
  | Beats_lower_bound { rounds; lb } ->
      Printf.sprintf "%d rounds beat the certified lower bound %d" rounds lb
  | Guarantee_broken { solver; guarantee; rounds; _ } ->
      Printf.sprintf "%s broke its guarantee %s with %d rounds" solver
        guarantee rounds

let pp ppf v =
  match v.violations with
  | [] ->
      Format.fprintf ppf "certified: %d rounds (lower bound %d)" v.rounds v.lb
  | vs ->
      Format.fprintf ppf "@[<v>REJECTED: %d rounds (lower bound %d)"
        v.rounds v.lb;
      List.iter
        (fun x -> Format.fprintf ppf "@,  - %s" (violation_to_string x))
        vs;
      Format.fprintf ppf "@]"
