(** Migration schedules.

    A schedule partitions the items (edges) of an instance into
    rounds; it is feasible when, in every round, each disk [v] is an
    endpoint of at most [c_v] scheduled transfers.  The number of
    rounds is the objective the paper minimizes. *)

type t

(** [of_rounds rounds] packs round lists (edge ids per round).  No
    feasibility checking here — see {!validate}. *)
val of_rounds : int list array -> t

(** [of_coloring ec] converts a complete capacitated coloring: color
    class [i] becomes round [i]; empty classes are dropped.
    @raise Invalid_argument if the coloring is incomplete. *)
val of_coloring : Coloring.Edge_coloring.t -> t

val n_rounds : t -> int
val round : t -> int -> int list
val rounds : t -> int list array
val n_items : t -> int

(** [validate inst sched] checks that every item of [inst] is scheduled
    exactly once and that every round respects every transfer
    constraint.  [Ok ()] or a description of the first violation. *)
val validate : Instance.t -> t -> (unit, string) result

(** Per-round transfer counts of the busiest disk, for reporting. *)
val max_parallelism : Instance.t -> t -> int array

(** Fraction of capacity [Σ c_v] actually used, averaged over rounds —
    how well the schedule packs transfers.  "Used" counts occupied
    endpoint slots per round, the same accounting {!validate} applies:
    an ordinary edge occupies one slot at each of its two endpoints; a
    (hypothetical) self-loop would occupy two slots on its single
    node.  Instances reject self-loops at construction, so for
    instance edges this totals [2 * n_items] — but the per-endpoint
    definition is the semantic one.  Empty schedules report [1.0]. *)
val utilization : Instance.t -> t -> float

(** [merge parts] unions schedules round-wise: round [i] of the result
    is the concatenation of each part's round [i] with edge ids
    remapped through the part's map ([map.(local_edge) = global_edge],
    as produced by {!Instance.decompose}).  The result has
    [max_i n_rounds] rounds.  Feasible whenever the parts occupy
    disjoint node sets.
    @raise Invalid_argument if a part schedules an edge id outside its
    map. *)
val merge : (t * int array) list -> t

val pp : Format.formatter -> t -> unit

(** Serialization: header ["rounds k"], then one line per round of
    space-separated edge ids.  [of_string (to_string t)] round-trips
    exactly. *)
val to_string : t -> string

(** @raise Failure on malformed input, including non-blank trailing
    lines after the declared [k] rounds (a truncated or corrupted
    header must not silently drop transfers). *)
val of_string : string -> t
