(** Migration schedules.

    A schedule partitions the items (edges) of an instance into
    rounds; it is feasible when, in every round, each disk [v] is an
    endpoint of at most [c_v] scheduled transfers.  The number of
    rounds is the objective the paper minimizes. *)

type t

(** [of_rounds rounds] packs round lists (edge ids per round).  No
    feasibility checking here — see {!validate}. *)
val of_rounds : int list array -> t

(** [of_coloring ec] converts a complete capacitated coloring: color
    class [i] becomes round [i]; empty classes are dropped.
    @raise Invalid_argument if the coloring is incomplete. *)
val of_coloring : Coloring.Edge_coloring.t -> t

val n_rounds : t -> int
val round : t -> int -> int list
val rounds : t -> int list array
val n_items : t -> int

(** [validate inst sched] checks that every item of [inst] is scheduled
    exactly once and that every round respects every transfer
    constraint.  [Ok ()] or a description of the first violation. *)
val validate : Instance.t -> t -> (unit, string) result

(** Per-round transfer counts of the busiest disk, for reporting. *)
val max_parallelism : Instance.t -> t -> int array

(** Fraction of capacity Σc_v actually used, averaged over rounds —
    how well the schedule packs transfers. *)
val utilization : Instance.t -> t -> float

val pp : Format.formatter -> t -> unit

(** Serialization: header ["rounds k"], then one line per round of
    space-separated edge ids.  Round-trips exactly. *)
val to_string : t -> string

(** @raise Failure on malformed input. *)
val of_string : string -> t
