type ctx = { rng : Random.State.t option; jobs : int }

type t = {
  name : string;
  doc : string;
  can_solve : Instance.t -> bool;
  solve : ctx -> Instance.t -> Schedule.t;
}

(* Registration order is the presentation order (CLI listings), so
   keep a list rather than a table; the registry stays tiny. *)
let registry : t list ref = ref []
[@@lint.domain_safe
  "mutated only by [register] at module-initialization time, before any \
   worker domain exists; read-only during solves"]

let register s =
  registry := List.filter (fun s' -> s'.name <> s.name) !registry @ [ s ]

let find name = List.find_opt (fun s -> s.name = name) !registry
let all () = !registry
let names () = List.map (fun s -> s.name) !registry
let solve ?rng ?(jobs = 1) s inst = s.solve { rng; jobs } inst

(* ------------------------------------------------------------------ *)
(* built-ins *)

let any _ = true

let even_opt =
  {
    name = "even-opt";
    doc = "optimal for all-even transfer constraints (Theorem 4.1)";
    can_solve = Instance.all_caps_even;
    solve = (fun ctx inst -> Even_optimal.schedule ~jobs:ctx.jobs inst);
  }

let hetero =
  {
    name = "hetero";
    doc = "the paper's general (1+o(1))-approximation (Section V)";
    can_solve = any;
    solve = (fun ctx inst -> Hetero_coloring.schedule ?rng:ctx.rng inst);
  }

let saia =
  {
    name = "saia";
    doc = "Saia split-graph 1.5-approximation baseline";
    can_solve = any;
    solve = (fun ctx inst -> Saia.schedule ?rng:ctx.rng inst);
  }

let greedy =
  {
    name = "greedy";
    doc = "first-fit capacitated coloring baseline";
    can_solve = any;
    solve =
      (fun _ctx inst ->
        let ec =
          Coloring.Greedy_coloring.color (Instance.graph inst)
            ~cap:(Instance.cap inst)
        in
        Schedule.of_coloring ec);
  }

let orbits =
  {
    name = "orbits";
    doc = "orbit/witness realization of Phase 1 (Section V-C1)";
    can_solve = any;
    solve =
      (fun ctx inst ->
        let ec, _ = Orbits.color_via_orbits ?rng:ctx.rng inst in
        Schedule.of_coloring ec);
  }

let () = List.iter register [ even_opt; hetero; saia; greedy; orbits ]
