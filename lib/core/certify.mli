(** Independent schedule certification.

    {!Schedule.validate} is the planners' own feasibility check; this
    module is the adversarial second opinion the fuzz harness trusts
    instead.  It re-derives every invariant from the raw
    [Instance.t]/[Schedule.t] pair — sharing no traversal code with the
    planners or with [Schedule.validate] — and returns a {e structured}
    verdict rather than a bool, so a failure names the violated
    invariant, the round, and the disk involved.

    Checked invariants:

    - every item (edge) is scheduled exactly once, and only real edge
      ids appear;
    - in every round, each disk [v] is an endpoint of at most [c_v]
      scheduled transfers;
    - the round count is at least the certified lower bound
      ({!Lower_bounds.lower_bound}) — fewer rounds would disprove
      Lemma 3.1, so it indicts either the schedule decoder or the
      bound itself;
    - when the producing solver is named, the round count respects
      that solver's stated guarantee: exactly [Δ̄ = LB1] for
      ["even-opt"] (Theorem 4.1), at most {!Saia.round_bound} for
      ["saia"], and at most [lb + O(sqrt lb)] (see {!hetero_budget})
      for ["hetero"], ["orbits"] and ["auto"]. *)

type violation =
  | Missing_item of { item : int }
      (** never scheduled *)
  | Duplicate_item of { item : int; first_round : int; round : int }
      (** scheduled a second time in [round] *)
  | Unknown_item of { item : int; round : int }
      (** edge id outside the instance *)
  | Overload of { round : int; disk : int; load : int; cap : int }
      (** transfer constraint broken: [load > cap] *)
  | Beats_lower_bound of { rounds : int; lb : int }
      (** fewer rounds than a certified lower bound — a library bug *)
  | Guarantee_broken of {
      solver : string;
      guarantee : string;  (** human-readable statement, e.g. ["= LB1"] *)
      rounds : int;
      bound : int;
    }

type verdict = {
  solver : string option;  (** solver the guarantee check used, if any *)
  rounds : int;
  lb : int;                (** certified lower bound the check used *)
  violations : violation list;  (** empty iff the schedule certifies *)
}

val ok : verdict -> bool

(** [hetero_budget lb] is the additive slack the certifier grants the
    [OPT + O(sqrt OPT)] planners: [ceil (2 sqrt lb) + 2].  Exposed so
    tests and docs state the exact audited bound. *)
val hetero_budget : int -> int

(** [guarantee ?lb solver inst] is the certifiable round bound for
    [solver] on [inst], as [(statement, bound, check)] where
    [check rounds] is true iff the guarantee holds ([bound] is the
    numeric round bound the statement quotes).  [lb] is the certified
    combined lower bound the [O(sqrt)] budgets are anchored to
    (recomputed, without the randomized search, when absent).  [None]
    for solvers with no stated bound (e.g. ["greedy"]) or when the
    guarantee's precondition fails (["even-opt"] on odd
    constraints). *)
val guarantee :
  ?lb:int -> string -> Instance.t -> (string * int * (int -> bool)) option

(** [check ?rng ?lb ?solver inst sched] certifies [sched] against
    [inst] from scratch.  [lb] overrides the lower bound (pass one to
    avoid recomputing it across solvers on the same instance); [rng]
    feeds the lower-bound search otherwise.  [solver] enables the
    per-solver guarantee check. *)
val check :
  ?rng:Random.State.t ->
  ?lb:int ->
  ?solver:string ->
  Instance.t ->
  Schedule.t ->
  verdict

val violation_to_string : violation -> string
val pp : Format.formatter -> verdict -> unit

(** {1 Execution certification}

    {!Engine.run} drives a schedule through faults: transfers fail and
    retry, disks crash or degrade, and the engine re-plans the
    residual.  The types below are the engine's tamper-evident flight
    recorder, and {!certify_execution} audits the {e concatenated
    executed rounds} from scratch — sharing no state with the engine —
    so a buggy engine cannot certify its own mistakes. *)

(** One executed (non-idle) round.  [attempted] is what the round
    tried to move (failed transfers still hold their streams, so the
    load check counts them); [completed] is the subset that survived;
    [crashed]/[slowed] are the disk events suffered {e during} the
    round — they take effect from the next round on. *)
type exec_round = {
  attempted : int list;
  completed : int list;
  crashed : int list;           (** disks lost during this round *)
  slowed : (int * int) list;    (** (disk, degraded [c_v]) from next round *)
}

type execution = {
  instance : Instance.t;
  log : exec_round list;        (** executed rounds, in order *)
  idle_rounds : int;            (** backoff gaps with nothing eligible *)
  quarantined : int list;       (** items dropped instead of completed *)
  replan_bounds : int list;     (** certified round bound of each (re)plan *)
}

type exec_violation =
  | Exec_missing of { item : int }
      (** neither completed nor quarantined *)
  | Exec_duplicate of { item : int; first_round : int; round : int }
      (** completed a second time — exactly-once broken *)
  | Exec_unknown of { item : int; round : int }
  | Exec_overload of { round : int; disk : int; load : int; cap : int }
      (** attempted load beats the capacity {e in force} that round,
          degradations replayed *)
  | Exec_not_attempted of { item : int; round : int }
      (** completion without an attempt *)
  | Exec_uses_crashed_disk of { item : int; round : int; disk : int }
  | Exec_quarantine_overlap of { item : int; round : int }
      (** an item both quarantined and completed *)
  | Exec_rounds_exceed_bounds of { rounds : int; bound_sum : int }
      (** executed rounds exceed the sum of per-replan certified
          bounds *)

type exec_verdict = {
  exec_rounds : int;
  completed_items : int;
  exec_violations : exec_violation list;  (** empty iff certified *)
}

val exec_ok : exec_verdict -> bool

(** [certify_execution x] replays [x.log] against [x.instance]:
    exactly-once completion (modulo the quarantine), per-round loads
    under the degraded capacities in force, no traffic through crashed
    disks, and total executed rounds within the certified replan
    budget. *)
val certify_execution : execution -> exec_verdict

val exec_violation_to_string : exec_violation -> string
val pp_exec : Format.formatter -> exec_verdict -> unit

(** [execution_to_string x] is the canonical byte-comparable rendering
    of a flight log: one line per executed round with fixed field
    order, plus the instance digest, idle count, quarantine and replan
    bounds.  Two executions are equal iff their renderings are
    byte-equal — the distributed runner's determinism contract (same
    bytes as the in-process engine at any worker count and any crash
    schedule) is checked on exactly this string. *)
val execution_to_string : execution -> string

(** {1 Service certification}

    A streaming service run is a sequence of {e epochs}: at each epoch
    boundary the service absorbs the requests that have arrived, turns
    their triggers into outstanding [(item, target)] moves, plans the
    outstanding diff as a migration instance, and executes it through
    {!Engine.run} for a bounded number of rounds.  The types below are
    the concatenated flight recorder; {!certify_service} replays the
    whole stream from the initial placement with no state shared with
    the service: per-epoch {!certify_execution} (loads under the
    capacities in force, exactly-once within the epoch), cross-epoch
    placement continuity (every edge's source is where the replay left
    the item), absorption order and timing, supersession-aware
    request accounting (a request completes when each of its moves is
    in effect or superseded; latencies are re-derived and compared
    against the reported statuses), no traffic through failed disks,
    and the final placement.

    Round convention: executed rounds are numbered consecutively from
    the epoch base ([se_base]); idle (backoff) rounds are accounted at
    the epoch tail; a transfer completing in executed round [r] is in
    effect from global round [se_base + r + 1]. *)

type service_epoch = {
  se_base : int;  (** global round the epoch starts at *)
  se_instance : Instance.t;     (** the outstanding diff, as planned *)
  se_items : int array;         (** edge -> item moved *)
  se_sources : int array;       (** edge -> source disk *)
  se_targets : int array;       (** edge -> target disk *)
  se_absorbed : int list;       (** request indices absorbed at [se_base] *)
  se_retired : int list;        (** disks failed by triggers at [se_base] *)
  se_patches : (int * int) list;
      (** [(item, disk)] re-replication repairs applied at [se_base] *)
  se_log : exec_round list;     (** the epoch's executed rounds *)
  se_idle : int;
  se_quarantined : int list;    (** edges dropped — owner abandoned *)
  se_residual : int list;       (** edges carried into the next epoch *)
  se_bounds : int list;         (** certified bounds of the epoch's (re)plans *)
}

type service_request_status =
  | Sreq_rejected of string     (** failed admission control *)
  | Sreq_completed of { absorbed : int; completed : int }
      (** global rounds; latency is [completed - arrival] *)
  | Sreq_abandoned of { absorbed : int }
      (** a move was quarantined, or the run was truncated
          ([absorbed = -1] when never absorbed) *)

type service_request = {
  sreq_at : int;                 (** arrival round *)
  sreq_moves : (int * int) list;
      (** [(item, target)] owed at absorption ([[]] for pure state
          triggers); within a request, the last retarget of an item
          wins *)
  sreq_status : service_request_status;
}

type service_execution = {
  svc_initial : int array;       (** item -> disk at service start *)
  svc_final : int array;         (** reported final placement *)
  svc_epochs : service_epoch list;
  svc_requests : service_request array;  (** arrival order *)
}

type service_violation =
  | Svc_epoch of { epoch : int; violation : exec_violation }
      (** the epoch's own flight log failed {!certify_execution} *)
  | Svc_malformed of { epoch : int; what : string }
      (** structurally broken record ([epoch = -1]: run-level) *)
  | Svc_bad_base of { epoch : int; base : int; min_base : int }
      (** epochs must not overlap *)
  | Svc_bad_absorption of { request : int; epoch : int; base : int; at : int }
      (** absorbed out of order, twice, or before arrival *)
  | Svc_wrong_source of {
      epoch : int;
      edge : int;
      item : int;
      expected : int;
      actual : int;
    }  (** cross-epoch placement continuity broken *)
  | Svc_item_double_booked of { epoch : int; item : int }
      (** one item on two edges of the same epoch *)
  | Svc_unrequested_transfer of { epoch : int; edge : int; item : int }
      (** a move no live request's current retarget asks for *)
  | Svc_uses_dead_disk of { epoch : int; disk : int }
      (** an edge or patch touches a failed disk *)
  | Svc_final_mismatch of { item : int; reported : int; replayed : int }
  | Svc_status_mismatch of {
      request : int;
      reported : string;
      replayed : string;
    }  (** completion/abandonment/latency accounting disagrees *)

type service_verdict = {
  svc_epoch_count : int;
  svc_rounds : int;      (** global rounds: end of the last epoch *)
  svc_transfers : int;   (** transfers completed across all epochs *)
  svc_violations : service_violation list;  (** empty iff certified *)
}

val service_ok : service_verdict -> bool

(** [certify_service x] replays the concatenated flight log from
    [x.svc_initial] and audits every invariant listed above. *)
val certify_service : service_execution -> service_verdict

val service_request_status_to_string : service_request_status -> string
val service_violation_to_string : service_violation -> string
val pp_service : Format.formatter -> service_verdict -> unit

(** {1 SLA certification}

    When an instance is tenant-tagged, a planner (or the
    {!Objective.reorder} post-pass) claims a completion round [C_g]
    per group and the weighted sum [sum_g w_g * C_g].
    {!check_sla} audits the claim against the actual rounds — every
    [C_g] re-derived from scratch, sharing no code with [Objective] —
    and, for schedules claiming the priority reordering, the
    no-inversion invariant: no group waits on rounds that serve only
    strictly lower-priority groups (priority = weight descending,
    group id ascending). *)

type sla_claim = {
  sla_solver : string option;  (** planner that produced the schedule *)
  sla_reordered : bool;
      (** claim the priority-reordering invariant (audited when set) *)
  sla_completions : (int * int) list;  (** [(group, claimed C_g)] *)
  sla_weighted_sum : int;              (** claimed [sum_g w_g * C_g] *)
}

type sla_violation =
  | Sla_completion_mismatch of { group : int; claimed : int; derived : int }
      (** claimed [C_g] disagrees with the flight log (out-of-range
          group ids derive [0]) *)
  | Sla_weighted_sum_mismatch of { claimed : int; derived : int }
  | Sla_priority_inversion of { group : int; late : int; tolerance : int }
      (** a reordered-claiming schedule delayed [group] behind [late]
          rounds serving only strictly lower-priority groups *)

type sla_verdict = {
  sla_groups : int;
  sla_derived_sum : int;       (** re-derived [sum_g w_g * C_g] *)
  sla_violations : sla_violation list;  (** empty iff certified *)
}

val sla_ok : sla_verdict -> bool

(** [check_sla ?tolerance inst sched claim] audits [claim] against
    [sched]'s rounds.  [tolerance] (default [0]) forgives that many
    lower-priority-only rounds per group in the inversion check, which
    runs only when [claim.sla_reordered] is set. *)
val check_sla :
  ?tolerance:int -> Instance.t -> Schedule.t -> sla_claim -> sla_verdict

val sla_violation_to_string : sla_violation -> string
val pp_sla : Format.formatter -> sla_verdict -> unit
