(** Schedule refinement: round elimination by redistribution.

    A post-pass over any feasible schedule: repeatedly try to dissolve
    the smallest round by moving each of its transfers into some other
    round with spare constraint room at both endpoints.  If every
    transfer of the round relocates, the schedule shrinks by one round
    — turning "lower bound + 1" outputs into optimal ones when the
    slack exists, at zero risk (relocation is validated move by move,
    and a round that cannot fully dissolve is left untouched).

    This is a pure improvement pass: output rounds <= input rounds and
    validity is preserved (asserted by construction: every move keeps
    all per-disk per-round counts within [c_v]). *)

type stats = {
  rounds_before : int;
  rounds_after : int;
  moves : int;  (** transfers relocated *)
}

val refine : Instance.t -> Schedule.t -> Schedule.t * stats
