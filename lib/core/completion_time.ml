module Multigraph = Mgraph.Multigraph

let item_completion_sum ?(weights = fun _ -> 1.0) sched =
  let total = ref 0.0 in
  Array.iteri
    (fun i items ->
      List.iter
        (fun e -> total := !total +. (weights e *. float_of_int (i + 1)))
        items)
    (Schedule.rounds sched);
  !total

let disks_of_round g items =
  List.concat_map
    (fun e ->
      let u, v = Multigraph.endpoints g e in
      [ u; v ])
    items
  |> List.sort_uniq compare

let disk_completion_sum ?(weights = fun _ -> 1.0) inst sched =
  let g = Instance.graph inst in
  let last = Array.make (Instance.n_disks inst) 0 in
  Array.iteri
    (fun i items ->
      List.iter (fun d -> last.(d) <- i + 1) (disks_of_round g items))
    (Schedule.rounds sched);
  let total = ref 0.0 in
  Array.iteri
    (fun d l -> if l > 0 then total := !total +. (weights d *. float_of_int l))
    last;
  !total

let reorder_for_items sched =
  let rounds = Schedule.rounds sched in
  let order = Array.init (Array.length rounds) Fun.id in
  Array.sort
    (fun a b -> compare (List.length rounds.(b)) (List.length rounds.(a)))
    order;
  Schedule.of_rounds (Array.map (fun i -> rounds.(i)) order)

(* exact search over round permutations, for small schedules *)
let exact_disk_order weights inst rounds =
  let k = Array.length rounds in
  let best_cost = ref infinity and best = ref (Array.init k Fun.id) in
  let perm = Array.init k Fun.id in
  let rec permute i =
    if i = k then begin
      let sched = Schedule.of_rounds (Array.map (fun j -> rounds.(j)) perm) in
      let cost = disk_completion_sum ~weights inst sched in
      if cost < !best_cost then begin
        best_cost := cost;
        best := Array.copy perm
      end
    end
    else
      for j = i to k - 1 do
        let t = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- t;
        permute (i + 1);
        let t = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- t
      done
  in
  permute 0;
  Array.map (fun j -> rounds.(j)) !best

(* backward greedy: repeatedly move to the last remaining slot the
   round whose disk-weight is smallest — those disks pay the late
   completion no matter what, so spend the cheap ones there *)
let greedy_disk_order weights inst rounds =
  let g = Instance.graph inst in
  let k = Array.length rounds in
  let weight_of r =
    List.fold_left (fun acc d -> acc +. weights d) 0.0 (disks_of_round g rounds.(r))
  in
  let remaining = ref (List.init k Fun.id) in
  let result = Array.make k [] in
  for slot = k - 1 downto 0 do
    match !remaining with
    | [] -> assert false
    | first :: _ ->
        let pick =
          List.fold_left
            (fun acc r -> if weight_of r < weight_of acc then r else acc)
            first !remaining
        in
        result.(slot) <- rounds.(pick);
        remaining := List.filter (fun r -> r <> pick) !remaining
  done;
  result

let reorder_for_disks ?(weights = fun _ -> 1.0) ?(exact_limit = 7) inst sched =
  let rounds = Schedule.rounds sched in
  let rounds' =
    if Array.length rounds <= exact_limit then
      exact_disk_order weights inst rounds
    else greedy_disk_order weights inst rounds
  in
  (* the greedy path carries no guarantee; never return a worse order *)
  let candidate = Schedule.of_rounds rounds' in
  if
    disk_completion_sum ~weights inst candidate
    <= disk_completion_sum ~weights inst sched
  then candidate
  else sched
