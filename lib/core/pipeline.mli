(** The planning pipeline: decompose → solve → merge.

    Connected components of the transfer graph are independent
    scheduling problems — no edge crosses components, so per-component
    schedules merged round-wise ({!Schedule.merge}) stay feasible and
    the merged round count is the maximum over components.  Solving
    per component lets the selector pick a {e different} algorithm for
    each one: on a mixed instance whose all-even components sit apart
    from its odd-cap components, ["auto"] runs the provably-optimal
    even solver where it applies and the general algorithm elsewhere,
    which can strictly reduce total rounds versus any single
    monolithic planner.

    Every stage records spans and counters in {!Instr}
    (["pipeline.decompose"], ["pipeline.solve"], ["pipeline.merge"],
    ["pipeline.components"], ["pipeline.mixed_selection"]). *)

(** What the pipeline did for one component. *)
type selection = {
  component : int;   (** component index, as in {!Instance.decompose} *)
  n_disks : int;
  n_items : int;
  solver : string;   (** name of the solver that ran *)
  rounds : int;
}

type report = {
  components : int;      (** total components, including isolated disks *)
  selections : selection list;
      (** one entry per component with at least one item *)
}

(** [solve ?rng ?jobs ~choose inst] runs the full pipeline, picking
    [choose component_instance] for every non-empty component.  A
    connected instance (single non-empty component) is solved
    monolithically on [inst] itself — bit-for-bit the same behavior
    (and RNG consumption) as calling the chosen solver directly.

    [jobs] (default [1]) is the worker-domain budget: with [jobs > 1]
    a multi-component instance solves its components on an {!Exec}
    pool.  {b Determinism contract}: the schedule and report are
    bit-identical for every [jobs] value, because each component's
    RNG seed is drawn from [rng] in component order before any
    solving, component solves share no state, and the merge consumes
    results in submission order.  [jobs <= 1] never touches the pool
    (no domains are spawned).  [choose] may run on worker domains
    when [jobs > 1], so it should be a pure function of the component
    instance. *)
val solve :
  ?rng:Random.State.t ->
  ?jobs:int ->
  choose:(Instance.t -> Solver.t) ->
  Instance.t ->
  Schedule.t * report

(** The ["auto"] selection rule: {!Solver.even_opt} when the
    (component) instance has all-even constraints, {!Solver.hetero}
    otherwise. *)
val auto_choose : Instance.t -> Solver.t

(** The ["auto"] solver — the pipeline with {!auto_choose} — also
    added to the {!Solver} registry at load time. *)
val auto : Solver.t

(** [plan_report ?rng name inst] resolves [name] in the registry and
    runs it through the pipeline ([choose = const]), returning the
    per-component report.  ["auto"] uses {!auto_choose}.  [None] if
    the name is unknown. *)
val plan_report :
  ?rng:Random.State.t ->
  ?jobs:int ->
  string ->
  Instance.t ->
  (Schedule.t * report) option
