(* Re-export of the base instrumentation library under the migration
   namespace, so planner users write [Migration.Instr] and never
   depend on [Probes] directly. *)
include Probes
