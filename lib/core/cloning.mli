(** Data migration with cloning (the model of Khuller, Kim & Wan,
    discussed in the paper's Section II), generalized to heterogeneous
    transfer constraints.

    Each data item [i] starts on a {e source set} [S_i] of disks and
    must end up on a {e destination set} [D_i] as well (copies are
    created, not moved — the fault-tolerance and hot-item use case).
    Any disk holding a copy can serve it to others in later rounds, so
    the copy count of an item can grow like a broadcast tree.  A disk
    [v] takes part in at most [c_v] transfers per round, sending or
    receiving.

    Two lower bounds generalize the paper's Section III to cloning:

    - doubling: an item held by [s] disks reaches at most [2s] holders
      per round (with [c_v = 1]); it needs at least
      [ceil(log2((s + unmet)/s))] rounds;
    - receiver load: disk [v] must receive one copy of every item with
      [v] in its destination set, at most [c_v] per round.

    The planner is a greedy round-builder: each round matches free
    holders to unmet destinations, most-starved items first.  It is
    guaranteed to terminate (every round serves at least one unmet
    destination) and its output always passes {!validate}. *)

type demand = {
  sources : int list;       (** disks already holding the item *)
  destinations : int list;  (** disks that must hold it at the end *)
}

type t

type transfer = { item : int; src : int; dst : int }

(** @raise Invalid_argument on empty source sets, out-of-range disks,
    duplicate entries, or non-positive capacities. *)
val create : n_disks:int -> caps:int array -> demand array -> t

val n_disks : t -> int
val n_items : t -> int
val demand : t -> int -> demand

(** [max] of the doubling and receiver-load bounds. *)
val lower_bound : t -> int

(** Rounds of transfers. *)
val plan : ?rng:Random.State.t -> t -> transfer list array

(** Checks transfer constraints, that every transfer's source holds a
    copy when the round starts, and that every destination is served. *)
val validate : t -> transfer list array -> (unit, string) result
