(** Exact optimal schedules by branch and bound.

    The problem is NP-hard (it contains multigraph chromatic index,
    [c_v = 1]), so this solver is for small instances only: it gives
    experiments a ground-truth [OPT] to measure approximation ratios
    against (EXPERIMENTS.md, E4), and validates that the even-case
    algorithm and the lower bounds agree with reality.

    Strategy: iterative deepening on the round count [q], starting at
    the certified lower bound; for each [q], a DFS assigns rounds to
    items hardest-first with capacity propagation and symmetry
    breaking (item [i] may only open round [max-used + 1]).  A node
    budget bounds the search. *)

type outcome =
  | Optimal of Schedule.t  (** provably minimum rounds *)
  | Gave_up                (** node budget exhausted before proving *)

(** [solve ?node_budget inst] (default budget [2_000_000] DFS nodes). *)
val solve : ?node_budget:int -> Instance.t -> outcome

(** Convenience: number of rounds of the optimal schedule, if proven. *)
val opt_rounds : ?node_budget:int -> Instance.t -> int option
