(** Data migration with forwarding (helpers).

    The paper assumes direct transfers ("we assume disks send data to
    each other directly", Section II) but surveys the alternative:
    Coffman et al. and Sanders & Solis-Oba study migration where an
    item may be {e forwarded} through an intermediate disk, and
    Whitehead shows scheduling becomes NP-complete when forwarding is
    forced by missing interconnect edges.  This module implements the
    optional extension: relaying through idle disks to break the
    [Γ]-bound of Lemma 3.1.

    When a node subset [S] is the bottleneck ([Γ(S) > LB1]), every
    transfer with both endpoints inside [S] consumes one of [S]'s
    scarce edge slots.  Routing such an item via a helper [w ∉ S]
    replaces the inside edge by two outside edges [(u, w)], [(w, v)] —
    invisible to [Γ(S)] — at the price of moving the item twice.  The
    planner reroutes greedily onto the least-loaded helpers while the
    projected bound improves, then schedules hop-1 and hop-2 graphs
    back to back (hop 2 starts only after hop 1 finishes, so every
    relayed item is at its helper when the second leg runs).

    A relayed plan is no longer a {!Schedule.t} over the original
    edges — items move twice — so this module has its own plan type
    and validator. *)

type hop = {
  item : int;  (** edge id in the original instance *)
  src : int;
  dst : int;
}

type plan

type stats = {
  rounds : int;
  relayed : int;         (** items routed through a helper *)
  direct_rounds : int;   (** rounds the best direct schedule needs *)
  bound_before : int;    (** certified lower bound without forwarding *)
}

val rounds : plan -> hop list array
val n_rounds : plan -> int

(** Wraps a direct schedule as a (relay-free) plan. *)
val of_schedule : Instance.t -> Schedule.t -> plan

(** Packs explicit hop rounds (no checking — see {!validate}).  Used
    by planners that construct relayed rounds themselves, e.g.
    {!Space.plan}. *)
val of_rounds : hop list array -> plan

(** [plan_with_helpers ?rng inst] — forwarding-enabled plan plus
    stats.  Falls back to the direct schedule when no rerouting
    helps, so the result never has more rounds than the direct plan
    it compares against. *)
val plan_with_helpers : ?rng:Random.State.t -> Instance.t -> plan * stats

(** Full check: transfer constraints per round, every item delivered
    from its source to its target along a connected hop path in round
    order, no item moved after delivery. *)
val validate : Instance.t -> plan -> (unit, string) result
