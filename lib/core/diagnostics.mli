(** Instance analysis: what shape is this migration problem?

    One call summarizing everything an operator wants to know before
    planning: size, connectivity, degree and constraint distributions,
    parallel-edge structure, the two lower bounds and which one binds,
    and which algorithm the planner would pick.  Backs the CLI's
    [analyze] command. *)

type report = {
  disks : int;
  items : int;
  components : int;            (** connected components with edges count toward planning independence *)
  degrees : Mgraph.Stats.summary;
  degree_ratios : Mgraph.Stats.summary;  (** per-disk ⌈d_v/c_v⌉ *)
  cap_histogram : (int * int) list;      (** (capacity, disk count), ascending *)
  max_multiplicity : int;
  all_caps_even : bool;
  lb1 : int;
  lb2 : int;
  binding_bound : [ `Degree | `Gamma | `Tie ];
  suggested_algorithm : string;          (** planner the [Auto] dispatch picks *)
}

val analyze : ?rng:Random.State.t -> Instance.t -> report
val pp : Format.formatter -> report -> unit
