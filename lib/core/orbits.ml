module Multigraph = Mgraph.Multigraph
module Csr = Mgraph.Multigraph.Csr
module Arena = Mgraph.Arena
module Ec = Coloring.Edge_coloring

type orbit = { nodes : int list; uncolored_edges : int list }

type classification =
  | Balancing of { node : int; color : int }
  | Color_orbit of { node_a : int; node_b : int; color : int }
  | Tight

let orbits t =
  let g = Ec.graph t in
  let n = Multigraph.n_nodes g in
  let csr = Multigraph.freeze g in
  let colors = Ec.raw_colors t in
  let comp = Array.make n (-1) in
  let next = ref 0 in
  let uncolored e = colors.(e) < 0 in
  let arena = Arena.local () in
  let qbuf = Arena.ints arena ~len:(max n 1) ~fill:0 in
  let q = Arena.arr qbuf in
  for start = 0 to n - 1 do
    if comp.(start) < 0 then begin
      let id = !next in
      incr next;
      comp.(start) <- id;
      let head = ref 0 and tail = ref 0 in
      q.(!tail) <- start;
      incr tail;
      while !head < !tail do
        let u = q.(!head) in
        incr head;
        for p = Csr.row_start csr u to Csr.row_stop csr u - 1 do
          let e = csr.Csr.edge_ids.(p) in
          if uncolored e then begin
            let w = Multigraph.other_endpoint g e u in
            if comp.(w) < 0 then begin
              comp.(w) <- id;
              q.(!tail) <- w;
              incr tail
            end
          end
        done
      done
    end
  done;
  Arena.release arena qbuf;
  let members = Array.make !next [] in
  for v = n - 1 downto 0 do
    members.(comp.(v)) <- v :: members.(comp.(v))
  done;
  let edges_of = Array.make !next [] in
  Multigraph.iter_edges g (fun { Multigraph.id; u; _ } ->
      if uncolored id then edges_of.(comp.(u)) <- id :: edges_of.(comp.(u)));
  Array.to_list
    (Array.init !next (fun i ->
         { nodes = members.(i); uncolored_edges = edges_of.(i) }))
  |> List.filter (fun o -> o.uncolored_edges <> [])

let classify t orbit =
  (* Definition 5.3 first: any node strongly missing any color *)
  let strongly =
    List.find_map
      (fun v ->
        let rec scan c =
          if c >= Ec.n_colors t then None
          else if Ec.strongly_missing t v c then Some (Balancing { node = v; color = c })
          else scan (c + 1)
        in
        scan 0)
      orbit.nodes
  in
  match strongly with
  | Some k -> k
  | None -> (
      (* Definition 5.4: two nodes lightly missing the same color *)
      let holder = Hashtbl.create 16 in
      let found = ref None in
      List.iter
        (fun v ->
          for c = 0 to Ec.n_colors t - 1 do
            if !found = None && Ec.lightly_missing t v c then begin
              match Hashtbl.find_opt holder c with
              | Some u when u <> v ->
                  found := Some (Color_orbit { node_a = u; node_b = v; color = c })
              | Some _ -> ()
              | None -> Hashtbl.add holder c v
            end
          done)
        orbit.nodes;
      match !found with Some k -> k | None -> Tight)

let bad_edges t =
  let g = Ec.graph t in
  let by_pair = Hashtbl.create 32 in
  Multigraph.iter_edges g (fun { Multigraph.id; u; v } ->
      if Ec.color_of t id = None then begin
        let key = if u <= v then (u, v) else (v, u) in
        Hashtbl.replace by_pair key
          (id :: (try Hashtbl.find by_pair key with Not_found -> []))
      end);
  Hashtbl.fold
    (fun _ edges acc -> if List.length edges >= 2 then edges @ acc else acc)
    by_pair []
  |> List.sort compare

(* Try to color [e]: direct common color, else free [color] at the
   endpoint where it is saturated via a capacitated Kempe walk. *)
let try_edge t ?rng e color =
  match Ec.common_missing t e with
  | Some c ->
      Ec.assign t e c;
      true
  | None ->
      let g = Ec.graph t in
      let u, v = Multigraph.endpoints g e in
      let free_at target =
        (not (Ec.missing t target color))
        && List.exists
             (fun b ->
               b <> color && Ec.missing t target b
               && Coloring.Recolor.try_free t ?rng ~v:target ~a:color ~b ())
             (List.init (Ec.n_colors t) Fun.id)
      in
      let attempt () =
        if Ec.missing t u color && Ec.missing t v color then begin
          Ec.assign t e color;
          true
        end
        else false
      in
      if attempt () then true
      else begin
        if not (Ec.missing t u color) then ignore (free_at u);
        if not (Ec.missing t v color) then ignore (free_at v);
        attempt () || Coloring.Recolor.try_color_edge t ?rng e
      end

let make_progress ?rng t orbit =
  match classify t orbit with
  | Tight -> None
  | Balancing { node; color } ->
      (* an uncolored edge at [node] can take [color] once the other
         endpoint frees it; strong missingness keeps [node] safe even
         if the walk ends there (the paper's Figure 4 case) *)
      let g = Ec.graph t in
      let candidates =
        List.filter
          (fun e ->
            Ec.color_of t e = None
            && (let u, v = Multigraph.endpoints g e in
                u = node || v = node))
          orbit.uncolored_edges
      in
      List.find_opt (fun e -> try_edge t ?rng e color)
        (if candidates = [] then orbit.uncolored_edges else candidates)
  | Color_orbit { node_a; node_b; color } ->
      let g = Ec.graph t in
      let touches w e =
        let u, v = Multigraph.endpoints g e in
        u = w || v = w
      in
      let candidates =
        List.filter
          (fun e -> touches node_a e || touches node_b e)
          orbit.uncolored_edges
      in
      List.find_opt (fun e -> try_edge t ?rng e color)
        (if candidates = [] then orbit.uncolored_edges else candidates)

(* ------------------------------------------------------------------ *)
(* Edge orbits and witnesses (Definitions 5.6, 5.7)                    *)

type edge_orbit = {
  seed : int list;
  vertices : int list;
  used_colors : int list;
}

type growth = Grew of edge_orbit | Delta_witness of int | Gamma_witness

let seed_orbit t e =
  let u, v = Multigraph.endpoints (Ec.graph t) e in
  { seed = [ e ]; vertices = List.sort_uniq compare [ u; v ]; used_colors = [] }

let free_colors t orbit =
  List.init (Ec.n_colors t) Fun.id
  |> List.filter (fun c -> not (List.mem c orbit.used_colors))

(* Trace (without flipping) a maximal ab-alternating walk from [x]
   starting with color [a]; returns the vertices reached. *)
let trace_walk t x a b =
  let g = Ec.graph t in
  let csr = Multigraph.freeze g in
  let colors = Ec.raw_colors t in
  let m = Multigraph.n_edges g in
  let arena = Arena.local () in
  let ubuf = Arena.ints arena ~len:(max m 1) ~fill:0 in
  let used = Arena.arr ubuf in
  let first_unused here want =
    let stop = Csr.row_stop csr here in
    let rec scan p =
      if p >= stop then -1
      else
        let e = csr.Csr.edge_ids.(p) in
        if used.(e) = 0 && colors.(e) = want then e else scan (p + 1)
    in
    scan (Csr.row_start csr here)
  in
  let rec go here want acc steps =
    if steps > 2 * m then acc
    else begin
      let e = first_unused here want in
      if e < 0 then acc
      else begin
        used.(e) <- 1;
        let w = Multigraph.other_endpoint g e here in
        go w (if want = a then b else a) (w :: acc) (steps + 1)
      end
    end
  in
  let reached = go x a [] 0 in
  Arena.release arena ubuf;
  reached

(* A color is full in the orbit when no vertex strongly misses it and
   at most one vertex lightly misses it (Section V-B3). *)
let full_in_orbit t orbit c =
  let lightly = ref 0 and strongly = ref false in
  List.iter
    (fun v ->
      if Ec.strongly_missing t v c then strongly := true
      else if Ec.lightly_missing t v c then incr lightly)
    orbit.vertices;
  (not !strongly) && !lightly <= 1

let grow t orbit =
  let free = free_colors t orbit in
  (* Delta-witness: a vertex none of whose missing colors is free *)
  let delta =
    List.find_opt
      (fun v ->
        let missing =
          List.init (Ec.n_colors t) Fun.id
          |> List.filter (fun c -> Ec.missing t v c)
        in
        missing <> [] && List.for_all (fun c -> not (List.mem c free)) missing)
      orbit.vertices
  in
  match delta with
  | Some v -> Delta_witness v
  | None ->
      if List.for_all (full_in_orbit t orbit) free then Gamma_witness
      else begin
        (* try to extend: a vertex x with a free missing color a, paired
           with another free color b, whose walk reaches a new vertex *)
        let in_orbit = Hashtbl.create 16 in
        List.iter (fun v -> Hashtbl.add in_orbit v ()) orbit.vertices;
        let extension =
          List.find_map
            (fun x ->
              let missing_free =
                List.filter (fun c -> Ec.missing t x c) free
              in
              List.find_map
                (fun a ->
                  List.find_map
                    (fun b ->
                      if b = a then None
                      else begin
                        let reached = trace_walk t x b a in
                        let fresh =
                          List.filter
                            (fun w -> not (Hashtbl.mem in_orbit w))
                            reached
                        in
                        if fresh = [] then None else Some (a, b, fresh)
                      end)
                    free)
                missing_free)
            orbit.vertices
        in
        match extension with
        | Some (a, b, fresh) ->
            Grew
              {
                orbit with
                vertices = List.sort_uniq compare (fresh @ orbit.vertices);
                used_colors =
                  List.sort_uniq compare (a :: b :: orbit.used_colors);
              }
        | None ->
            (* no free-colored structure to follow: the orbit cannot be
               grown; treat as Γ-tight (the conservative witness) *)
            Gamma_witness
      end

type engine_stats = {
  palette : int;
  witnesses_delta : int;
  witnesses_gamma : int;
  orbit_growths : int;
  largest_orbit : int;
}

let t_engine = Probes.timer "orbits.engine"
let c_growths = Probes.counter "orbits.growths"
let c_witnesses = Probes.counter "orbits.witnesses"

let color_via_orbits ?rng inst =
  Probes.time t_engine @@ fun () ->
  let g = Instance.graph inst in
  let q0 = max 1 (Lower_bounds.lower_bound ?rng inst) in
  let t = Ec.create g ~cap:(Instance.cap inst) ~colors:q0 in
  let wd = ref 0 and wg = ref 0 and growths = ref 0 and largest = ref 0 in
  (* naive partial coloring: first-fit within the palette *)
  Multigraph.iter_edges g (fun { Multigraph.id; _ } ->
      match Ec.common_missing t id with
      | Some c -> Ec.assign t id c
      | None -> ());
  let guard = ref (4 * Multigraph.n_edges g) in
  while Ec.n_uncolored t > 0 && !guard > 0 do
    decr guard;
    let before = Ec.n_uncolored t in
    (* Lemmas 5.1/5.2 wherever they fire *)
    List.iter
      (fun orbit ->
        match classify t orbit with
        | Tight -> ()
        | Balancing _ | Color_orbit _ -> ignore (make_progress ?rng t orbit))
      (orbits t);
    if Ec.n_uncolored t = before then begin
      (* all remaining components are tight: drive one seed through the
         grow-or-witness loop (Section V-C1 step 3) *)
      match Ec.uncolored t with
      | [] -> ()
      | e :: _ ->
          let rec drive orbit steps =
            largest := max !largest (List.length orbit.vertices);
            if steps > Multigraph.n_nodes g then begin
              incr wg;
              let c = Ec.add_color t in
              Ec.assign t e c
            end
            else
              match grow t orbit with
              | Grew orbit' ->
                  incr growths;
                  (* a grown orbit may have turned easy: retry lemmas *)
                  let comp =
                    List.find_opt
                      (fun o -> List.mem e o.uncolored_edges)
                      (orbits t)
                  in
                  let progressed =
                    match comp with
                    | Some o -> (
                        match classify t o with
                        | Tight -> false
                        | _ -> make_progress ?rng t o <> None)
                    | None -> true (* e got colored meanwhile *)
                  in
                  if not progressed then drive orbit' (steps + 1)
              | Delta_witness _ ->
                  incr wd;
                  let c = Ec.add_color t in
                  Ec.assign t e c
              | Gamma_witness ->
                  incr wg;
                  let c = Ec.add_color t in
                  Ec.assign t e c
          in
          drive (seed_orbit t e) 0
    end
  done;
  (* safety net: color any stragglers with fresh colors *)
  List.iter
    (fun e ->
      match Ec.common_missing t e with
      | Some c -> Ec.assign t e c
      | None ->
          let c = Ec.add_color t in
          Ec.assign t e c)
    (Ec.uncolored t);
  Probes.bump ~by:!growths c_growths;
  Probes.bump ~by:(!wd + !wg) c_witnesses;
  let stats =
    {
      palette = Ec.n_colors t;
      witnesses_delta = !wd;
      witnesses_gamma = !wg;
      orbit_growths = !growths;
      largest_orbit = !largest;
    }
  in
  (t, stats)
