(** First-class planning algorithms.

    A solver packages one scheduling algorithm behind a uniform
    interface: a stable [name] (the CLI string), a capability
    predicate, and the solving function itself.  All built-in
    algorithms are registered here at load time; {!Pipeline} registers
    ["auto"] on top and {!Migration.plan} is a thin shim over the
    registry, so the set of planners is extensible without touching
    the dispatch sites. *)

(** Per-call context threaded through every solver.  Carries the RNG
    and the worker-domain budget today; anything else a solver may
    need later (deadlines, budgets) belongs here rather than in
    ad-hoc optional arguments. *)
type ctx = {
  rng : Random.State.t option;
  jobs : int;
      (** worker domains a composite solver (the pipeline) may use;
          [1] means fully sequential.  Monolithic solvers ignore it.
          Never changes the produced schedule — see
          {!Pipeline.solve}'s determinism contract. *)
}

type t = {
  name : string;  (** registry key and CLI spelling, e.g. ["hetero"] *)
  doc : string;   (** one-line description for listings *)
  can_solve : Instance.t -> bool;
      (** capability predicate — e.g. ["even-opt"] requires all-even
          constraints.  [solve] on an unsupported instance may raise. *)
  solve : ctx -> Instance.t -> Schedule.t;
}

(** [register s] adds [s] to the registry, replacing any previous
    solver of the same name. *)
val register : t -> unit

val find : string -> t option

(** All registered solvers, in registration order. *)
val all : unit -> t list

val names : unit -> string list

(** [solve ?rng ?jobs s inst] is [s.solve { rng; jobs } inst] — the
    convenience entry point.  [jobs] defaults to [1] (sequential). *)
val solve :
  ?rng:Random.State.t -> ?jobs:int -> t -> Instance.t -> Schedule.t

(** {1 Built-ins}

    Registered at load time; exposed directly so callers (notably
    {!Pipeline}'s per-component selection) need no registry lookup. *)

val even_opt : t  (** Section IV, optimal; requires all-even caps *)

val hetero : t    (** Section V general algorithm *)

val saia : t      (** Saia split 1.5-approximation baseline *)

val greedy : t    (** first-fit baseline *)

val orbits : t    (** Section V-C1 via explicit orbit structures *)
