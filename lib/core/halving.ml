module Multigraph = Mgraph.Multigraph

type stats = { rounds : int; levels : int; base_edges : int }

(* Group the edges of [g] by endpoint pair: for each pair with
   multiplicity [k], emit floor(k/2) disjoint (e, e') couples and, if
   [k] is odd, one leftover edge. *)
let pair_up g =
  let groups = Hashtbl.create 64 in
  Multigraph.iter_edges g (fun { Multigraph.id; u; v } ->
      let key = if u <= v then (u, v) else (v, u) in
      Hashtbl.replace groups key
        (id :: (try Hashtbl.find groups key with Not_found -> [])));
  let couples = ref [] and leftovers = ref [] in
  Hashtbl.iter
    (fun _ edges ->
      let rec chop = function
        | e :: e' :: rest ->
            couples := (e, e') :: !couples;
            chop rest
        | [ e ] -> leftovers := e :: !leftovers
        | [] -> ()
      in
      chop edges)
    groups;
  (!couples, !leftovers)

let base_plan ?rng inst =
  if Instance.all_caps_even inst then Even_optimal.schedule inst
  else Hetero_coloring.schedule ?rng inst

let rec plan ?rng ~threshold inst level =
  let g = Instance.graph inst in
  if Multigraph.max_multiplicity g <= threshold then
    (base_plan ?rng inst, level, Multigraph.n_edges g)
  else begin
    let couples, leftovers = pair_up g in
    (* half graph: one representative edge per couple *)
    let half = Multigraph.create ~n:(Multigraph.n_nodes g) () in
    let couple_of_half = Array.of_list couples in
    Array.iter
      (fun (e, _) ->
        let u, v = Multigraph.endpoints g e in
        ignore (Multigraph.add_edge half u v))
      couple_of_half;
    let half_inst = Instance.create half ~caps:(Instance.caps inst) in
    let half_sched, lvl, base = plan ?rng ~threshold half_inst (level + 1) in
    (* expand: each half round becomes two rounds over the couples *)
    let doubled =
      Array.concat
        (Array.to_list
           (Array.map
              (fun half_edges ->
                let firsts =
                  List.map (fun he -> fst couple_of_half.(he)) half_edges
                and seconds =
                  List.map (fun he -> snd couple_of_half.(he)) half_edges
                in
                [| firsts; seconds |])
              (Schedule.rounds half_sched)))
    in
    (* leftovers: multiplicity 1 per pair, scheduled directly *)
    let rest_rounds =
      if leftovers = [] then [||]
      else begin
        let keep = Hashtbl.create 16 in
        List.iter (fun e -> Hashtbl.add keep e ()) leftovers;
        let rest, mapping = Multigraph.sub g (Hashtbl.mem keep) in
        let rest_inst = Instance.create rest ~caps:(Instance.caps inst) in
        let rest_sched = base_plan ?rng rest_inst in
        Array.map
          (fun edges -> List.map (fun e -> mapping.(e)) edges)
          (Schedule.rounds rest_sched)
      end
    in
    (Schedule.of_rounds (Array.append doubled rest_rounds), lvl, base)
  end

let schedule_stats ?rng ?(threshold = 4) inst =
  if threshold < 1 then invalid_arg "Halving.schedule: threshold must be >= 1";
  let sched, levels, base_edges = plan ?rng ~threshold inst 0 in
  (sched, { rounds = Schedule.n_rounds sched; levels; base_edges })

let schedule ?rng ?threshold inst = fst (schedule_stats ?rng ?threshold inst)
