(** Saia's 1.5-approximation baseline (cited as [9] in the paper).

    Split each disk [v] into [c_v] static copies, distribute its edges
    evenly (copy degree at most [ceil(d_v/c_v) = Δ̄]-ish), and
    Shannon-color the resulting multigraph with at most [floor(3Δ'/2)]
    colors.  Contracting copies yields a feasible schedule of at most
    [1.5 · Δ̄ + O(1)] rounds — the guarantee the paper's general
    algorithm improves to [OPT + O(sqrt OPT)].

    The static split is what loses the factor 1.5: it fixes the
    edge-to-copy assignment up front, whereas the paper's algorithm in
    effect re-balances copies during coloring. *)

(** [schedule ?rng inst] — feasible schedule with at most
    [floor(3 Δ̄' / 2)] rounds where [Δ̄'] is the split-graph degree. *)
val schedule : ?rng:Random.State.t -> Instance.t -> Schedule.t

(** The theoretical round bound for this instance,
    [floor(3 * split-degree / 2)], for test assertions. *)
val round_bound : Instance.t -> int
