module Multigraph = Mgraph.Multigraph

let lb1 inst =
  let best = ref 0 in
  for v = 0 to Instance.n_disks inst - 1 do
    let r = Instance.degree_ratio inst v in
    if r > !best then best := r
  done;
  !best

let ceil_div a b = (a + b - 1) / b

let gamma_of ~edges_inside ~cap_sum =
  if edges_inside = 0 then 0
  else begin
    let slots = cap_sum / 2 in
    if slots = 0 then max_int (* a single disk cannot transfer to itself *)
    else ceil_div edges_inside slots
  end

let gamma_term inst s =
  let g = Instance.graph inst in
  let members = Hashtbl.create 16 in
  List.iter
    (fun v ->
      if Hashtbl.mem members v then invalid_arg "Lower_bounds.gamma_term: duplicate node";
      Hashtbl.add members v ())
    s;
  let edges_inside =
    Multigraph.fold_edges
      (fun { Multigraph.u; v; _ } acc ->
        if Hashtbl.mem members u && Hashtbl.mem members v then acc + 1 else acc)
      g 0
  in
  let cap_sum = List.fold_left (fun acc v -> acc + Instance.cap inst v) 0 s in
  gamma_of ~edges_inside ~cap_sum

(* Exact max over all subsets of [nodes] by subset DP:
   E(mask) = E(mask minus lowest bit v) + (edges from v into the rest).
   Returns the best term and its witness subset. *)
let exact_on_nodes inst nodes =
  let g = Instance.graph inst in
  let k = Array.length nodes in
  if k = 0 || k > 24 then invalid_arg "Lower_bounds.exact_on_nodes";
  let index = Hashtbl.create k in
  Array.iteri (fun i v -> Hashtbl.add index v i) nodes;
  (* multiplicity between local indices, as a flat matrix *)
  let mult = Array.make (k * k) 0 in
  Multigraph.iter_edges g (fun { Multigraph.u; v; _ } ->
      match (Hashtbl.find_opt index u, Hashtbl.find_opt index v) with
      | Some i, Some j ->
          mult.((i * k) + j) <- mult.((i * k) + j) + 1;
          if i <> j then mult.((j * k) + i) <- mult.((j * k) + i) + 1
      | _ -> ());
  let size = 1 lsl k in
  let inside = Array.make size 0 in
  let capsum = Array.make size 0 in
  let best = ref 0 and best_mask = ref 0 in
  for mask = 1 to size - 1 do
    let i =
      (* index of lowest set bit *)
      let rec find b = if mask land (1 lsl b) <> 0 then b else find (b + 1) in
      find 0
    in
    let rest = mask land lnot (1 lsl i) in
    let added = ref 0 in
    for j = 0 to k - 1 do
      if rest land (1 lsl j) <> 0 then added := !added + mult.((i * k) + j)
    done;
    inside.(mask) <- inside.(rest) + !added;
    capsum.(mask) <- capsum.(rest) + Instance.cap inst nodes.(i);
    if inside.(mask) > 0 then begin
      let t = gamma_of ~edges_inside:inside.(mask) ~cap_sum:capsum.(mask) in
      if t > !best && t < max_int then begin
        best := t;
        best_mask := mask
      end
    end
  done;
  let witness = ref [] in
  for j = k - 1 downto 0 do
    if !best_mask land (1 lsl j) <> 0 then witness := nodes.(j) :: !witness
  done;
  (!best, !witness)

(* Randomized greedy: grow a subset from a seed edge, at each step
   adding the neighbor with the most edges into the current set,
   keeping the best Γ-term seen. *)
let local_search inst rng iters =
  let g = Instance.graph inst in
  let n = Multigraph.n_nodes g and m = Multigraph.n_edges g in
  if m = 0 then (0, [])
  else begin
    let best = ref 0 and best_set = ref [] in
    let consider members inside capsum =
      let t = gamma_of ~edges_inside:inside ~cap_sum:capsum in
      if t > !best && t < max_int then begin
        best := t;
        best_set := Hashtbl.fold (fun v () acc -> v :: acc) members []
      end
    in
    for _ = 1 to iters do
      let e = Random.State.int rng m in
      let u, v = Multigraph.endpoints g e in
      let members = Hashtbl.create 16 in
      Hashtbl.add members u ();
      if not (Hashtbl.mem members v) then Hashtbl.add members v ();
      let inside = ref (Multigraph.multiplicity g u v) in
      let capsum = ref (Instance.cap inst u + if u <> v then Instance.cap inst v else 0) in
      consider members !inside !capsum;
      let steps = min n 40 in
      for _ = 1 to steps do
        (* candidate frontier: neighbors of current members *)
        let gain = Hashtbl.create 16 in
        Hashtbl.iter
          (fun w () ->
            Multigraph.iter_incident g w (fun e ->
                let x = Multigraph.other_endpoint g e w in
                if not (Hashtbl.mem members x) then
                  Hashtbl.replace gain x
                    ((try Hashtbl.find gain x with Not_found -> 0) + 1)))
          members;
        let pick =
          Hashtbl.fold
            (fun x gx acc ->
              match acc with
              | None -> Some (x, gx)
              | Some (_, gbest) -> if gx > gbest then Some (x, gx) else acc)
            gain None
        in
        match pick with
        | None -> ()
        | Some (x, gx) ->
            Hashtbl.add members x ();
            inside := !inside + gx;
            capsum := !capsum + Instance.cap inst x;
            consider members !inside !capsum
      done
    done;
    (!best, !best_set)
  end

let lb2_witness ?rng ?(exact_limit = 14) ?(search_iters = 32) inst =
  let g = Instance.graph inst in
  let all_nodes = List.init (Multigraph.n_nodes g) Fun.id in
  let whole =
    let t =
      gamma_of
        ~edges_inside:(Multigraph.n_edges g)
        ~cap_sum:(Array.fold_left ( + ) 0 (Instance.caps inst))
    in
    if t = max_int then (0, []) else (t, all_nodes)
  in
  let members = Mgraph.Traversal.component_members g in
  let comp_best = ref (0, []) in
  Array.iter
    (fun nodes ->
      let nodes = Array.of_list nodes in
      let t =
        if Array.length nodes >= 2 && Array.length nodes <= exact_limit then
          exact_on_nodes inst nodes
        else begin
          let t = gamma_term inst (Array.to_list nodes) in
          if t = max_int then (0, []) else (t, Array.to_list nodes)
        end
      in
      if fst t > fst !comp_best then comp_best := t)
    members;
  let searched =
    match rng with
    | Some rng when Multigraph.n_nodes g > exact_limit ->
        local_search inst rng search_iters
    | _ -> (0, [])
  in
  List.fold_left
    (fun acc cand -> if fst cand > fst acc then cand else acc)
    whole
    [ !comp_best; searched ]

let lb2 ?rng ?exact_limit ?search_iters inst =
  fst (lb2_witness ?rng ?exact_limit ?search_iters inst)

let lower_bound ?rng ?exact_limit ?search_iters inst =
  max (lb1 inst) (lb2 ?rng ?exact_limit ?search_iters inst)
