(** Migration under disk-space constraints (the model of Hall et al.,
    discussed in the paper's Section II).

    The core algorithms treat disks as having unlimited room for
    arriving items.  In reality a disk holds at most [space_v] items;
    Hall et al. showed that with one spare unit per disk good
    schedules still exist, and introduced {e bypass nodes} — disks
    used as temporary holding points — to break the deadlocks that
    arise when the disks along a cyclic move are all full.

    This module adds both notions on top of the transfer-constraint
    model:

    - {!check} audits an ordinary {!Schedule.t} against space: within
      a round, arrivals are conservatively charged before departures
      free anything (receive-before-free), so a disk needs
      [load + arrivals <= space] every round;
    - {!plan} builds a space-feasible plan directly.  Items hop toward
      their targets greedily; an item whose target is full may relay
      through a disk with spare room (preferring the configured bypass
      disks), which makes the result a {!Forwarding.plan} — the same
      two-hop machinery, reused.  Planning raises {!Stuck} when no
      progress is possible (e.g. zero free units anywhere). *)

type config = {
  space : int array;         (** per-disk capacity, in items *)
  initial_load : int array;  (** items on each disk before migration,
                                 including the ones about to move *)
  bypass : int list;         (** preferred relay disks, may be empty *)
}

exception Stuck of string

(** @raise Invalid_argument on inconsistent sizes, negative loads, or
    a disk that starts above its capacity. *)
val validate_config : Instance.t -> config -> unit

(** Space audit of a direct schedule (no relays). *)
val check : Instance.t -> config -> Schedule.t -> (unit, string) result

(** Space audit of a forwarding plan (relays allowed). *)
val check_plan : Instance.t -> config -> Forwarding.plan -> (unit, string) result

(** Space- and constraint-feasible plan; relays only when a target is
    full.  @raise Stuck when deadlocked. *)
val plan : ?rng:Random.State.t -> Instance.t -> config -> Forwarding.plan
