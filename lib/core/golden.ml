(* Golden schedule fingerprints.

   One fingerprint pins one planner run: the solver is looked up in the
   registry, seeded with an RNG derived from [seed] alone, and the
   resulting schedule is hashed through its canonical wire form
   ([Schedule.to_string]).  Anything that changes the schedule — edge
   iteration order, RNG consumption, matching extraction order —
   changes the digest, which is exactly what the flat-core refactor
   must not do (doc/ALGORITHMS.md, "Flat core & memory discipline"). *)

type fp = { rounds : int; digest : string }

(* Force [Pipeline] to link: its module initializer registers the
   "auto" solver, and fingerprint rows name it.  Without this a binary
   that only touches [Golden] would see a registry missing "auto". *)
let () = ignore (Pipeline.auto : Solver.t)

let header = "# family\tseed\tsize\tsolver\trounds\tmd5\n"

let rng_for seed = Random.State.make [| 0x601d; seed; 0x5eed |]

let fingerprint inst ~solver ~seed =
  match Solver.find solver with
  | None -> invalid_arg ("Golden.fingerprint: unknown solver " ^ solver)
  | Some s ->
      if not (s.Solver.can_solve inst) then None
      else
        let rng = rng_for seed in
        let sched = Solver.solve ~rng s inst in
        let wire = Schedule.to_string sched in
        Some
          {
            rounds = Schedule.n_rounds sched;
            digest = Digest.to_hex (Digest.string wire);
          }

type row = {
  family : string;
  seed : int;
  size : int;
  solver : string;
  rounds : int;
  digest : string;
}

let parse_rows text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.split_on_char '\t' line with
           | [ family; seed; size; solver; rounds; digest ] ->
               Some
                 {
                   family;
                   seed = int_of_string seed;
                   size = int_of_string size;
                   solver;
                   rounds = int_of_string rounds;
                   digest;
                 }
           | _ -> failwith ("Golden.parse_rows: malformed line: " ^ line))
