module Multigraph = Mgraph.Multigraph

(* SLA tagging: [groups.(e)] is the tenant/group id of edge [e];
   [weights.(g)] is group [g]'s priority weight.  Untagged instances
   carry no [sla] record and behave as one implicit group of weight
   one, so the common path pays nothing. *)
type sla = { groups : int array; weights : int array }
type t = { graph : Multigraph.t; caps : int array; sla : sla option }

let create ?groups ?weights g ~caps =
  if Array.length caps <> Multigraph.n_nodes g then
    invalid_arg "Instance.create: one capacity per node required";
  Array.iter
    (fun c ->
      if c < 1 then invalid_arg "Instance.create: capacities must be >= 1")
    caps;
  Multigraph.iter_edges g (fun { Multigraph.u; v; _ } ->
      if u = v then
        invalid_arg "Instance.create: self-loop (item already at target)");
  let sla =
    match (groups, weights) with
    | None, None -> None
    | None, Some _ ->
        invalid_arg "Instance.create: weights require groups"
    | Some groups, weights ->
        if Array.length groups <> Multigraph.n_edges g then
          invalid_arg "Instance.create: one group per edge required";
        let k =
          match weights with
          | Some w -> Array.length w
          | None -> 1 + Array.fold_left max (-1) groups
        in
        if k < 1 then invalid_arg "Instance.create: at least one group";
        Array.iter
          (fun gid ->
            if gid < 0 || gid >= k then
              invalid_arg "Instance.create: group id out of range")
          groups;
        let weights =
          match weights with
          | Some w ->
              Array.iter
                (fun w ->
                  if w < 1 then
                    invalid_arg "Instance.create: weights must be >= 1")
                w;
              Array.copy w
          | None -> Array.make k 1
        in
        Some { groups = Array.copy groups; weights }
  in
  { graph = g; caps = Array.copy caps; sla }

let uniform g ~cap =
  create g ~caps:(Array.make (Multigraph.n_nodes g) cap)

let random_caps rng g ~choices =
  let choices = Array.of_list choices in
  if Array.length choices = 0 then invalid_arg "Instance.random_caps";
  let caps =
    Array.init (Multigraph.n_nodes g) (fun _ ->
        choices.(Random.State.int rng (Array.length choices)))
  in
  create g ~caps

let graph t = t.graph
let cap t v = t.caps.(v)
let caps t = Array.copy t.caps
let n_disks t = Multigraph.n_nodes t.graph
let n_items t = Multigraph.n_edges t.graph
let tagged t = t.sla <> None
let n_groups t = match t.sla with None -> 1 | Some s -> Array.length s.weights
let group t e = match t.sla with None -> 0 | Some s -> s.groups.(e)
let weight t g = match t.sla with None -> 1 | Some s -> s.weights.(g)

let groups t =
  match t.sla with
  | None -> Array.make (n_items t) 0
  | Some s -> Array.copy s.groups

let weights t =
  match t.sla with None -> [| 1 |] | Some s -> Array.copy s.weights

let all_caps_even t = Array.for_all (fun c -> c mod 2 = 0) t.caps

let degree_ratio t v =
  let d = Multigraph.degree t.graph v in
  (d + t.caps.(v) - 1) / t.caps.(v)

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%d %d\n" (n_disks t) (n_items t));
  Array.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int c))
    t.caps;
  Buffer.add_char buf '\n';
  (match t.sla with
  | None ->
      Multigraph.iter_edges t.graph (fun { Multigraph.u; v; _ } ->
          Buffer.add_string buf (Printf.sprintf "%d %d\n" u v))
  | Some { groups; weights } ->
      Buffer.add_string buf
        (Printf.sprintf "groups %d\n" (Array.length weights));
      Array.iteri
        (fun i w ->
          if i > 0 then Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int w))
        weights;
      Buffer.add_char buf '\n';
      Multigraph.iter_edges t.graph (fun { Multigraph.id; u; v } ->
          Buffer.add_string buf (Printf.sprintf "%d %d %d\n" u v groups.(id))));
  Buffer.contents buf

let of_string s =
  let fail msg = failwith ("Instance.of_string: " ^ msg) in
  let toks =
    String.split_on_char '\n' s
    |> List.concat_map (String.split_on_char ' ')
    |> List.filter (fun t -> t <> "")
  in
  let int_of tok =
    match int_of_string_opt tok with
    | Some i -> i
    | None -> fail ("not an integer: " ^ tok)
  in
  match toks with
  | n :: m :: rest ->
      let n = int_of n and m = int_of m in
      if n < 0 || m < 0 then fail "negative header";
      let rec split_caps k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> fail "missing capacities"
        | c :: rest -> split_caps (k - 1) (int_of c :: acc) rest
      in
      let caps, rest = split_caps n [] rest in
      let g = Multigraph.create ~n () in
      (* Optional SLA block: a literal "groups k" after the capacities,
         then k weights, then 3-token "u v g" edge lines instead of
         pairs.  Legacy untagged inputs parse exactly as before. *)
      let weights, rest =
        match rest with
        | "groups" :: k :: rest ->
            let k = int_of k in
            if k < 1 then fail "at least one group required";
            let rec split_w k acc = function
              | rest when k = 0 -> (List.rev acc, rest)
              | [] -> fail "missing group weights"
              | w :: rest -> split_w (k - 1) (int_of w :: acc) rest
            in
            let ws, rest = split_w k [] rest in
            (Some (Array.of_list ws), rest)
        | rest -> (None, rest)
      in
      (match weights with
      | None ->
          let rec edges k = function
            | [] -> if k <> m then fail "fewer edges than declared"
            | u :: v :: rest ->
                if k >= m then fail "more edges than declared";
                ignore (Multigraph.add_edge g (int_of u) (int_of v));
                edges (k + 1) rest
            | [ _ ] -> fail "dangling endpoint"
          in
          edges 0 rest;
          create g ~caps:(Array.of_list caps)
      | Some weights ->
          let groups = Array.make m 0 in
          let rec edges k = function
            | [] -> if k <> m then fail "fewer edges than declared"
            | u :: v :: gid :: rest ->
                if k >= m then fail "more edges than declared";
                ignore (Multigraph.add_edge g (int_of u) (int_of v));
                groups.(k) <- int_of gid;
                edges (k + 1) rest
            | _ -> fail "dangling tagged edge"
          in
          edges 0 rest;
          create g ~caps:(Array.of_list caps) ~groups ~weights)
  | _ -> fail "missing header"

type component = { instance : t; nodes : int array; edges : int array }

let decompose t =
  let g = t.graph in
  let n = Multigraph.n_nodes g in
  let comp, k = Mgraph.Traversal.components g in
  if k <= 1 then
    [
      {
        instance = t;
        nodes = Array.init n Fun.id;
        edges = Array.init (Multigraph.n_edges g) Fun.id;
      };
    ]
  else begin
    (* local node ids follow the original node order within each
       component, so the mapping arrays are monotone — easier to test
       and stable across runs *)
    let local = Array.make n (-1) in
    let sizes = Array.make k 0 in
    for v = 0 to n - 1 do
      local.(v) <- sizes.(comp.(v));
      sizes.(comp.(v)) <- sizes.(comp.(v)) + 1
    done;
    let graphs = Array.init k (fun c -> Multigraph.create ~n:sizes.(c) ()) in
    let nodes = Array.init k (fun c -> Array.make sizes.(c) (-1)) in
    for v = 0 to n - 1 do
      nodes.(comp.(v)).(local.(v)) <- v
    done;
    let edges = Array.make k [] in
    (* iter_edges visits in increasing id order; accumulate reversed *)
    Multigraph.iter_edges g (fun { Multigraph.id; u; v } ->
        let c = comp.(u) in
        ignore (Multigraph.add_edge graphs.(c) local.(u) local.(v));
        edges.(c) <- id :: edges.(c));
    List.init k (fun c ->
        let caps =
          Array.map (fun v -> t.caps.(v)) nodes.(c)
        in
        let edges = Array.of_list (List.rev edges.(c)) in
        let instance =
          match t.sla with
          | None -> create graphs.(c) ~caps
          | Some { groups; weights } ->
              (* group ids stay global: every component keeps the full
                 weight table so per-group claims merge trivially *)
              create graphs.(c) ~caps
                ~groups:(Array.map (fun e -> groups.(e)) edges)
                ~weights
        in
        { instance; nodes = nodes.(c); edges })
  end

let pp ppf t =
  Format.fprintf ppf "@[<v>instance: %d disks, %d items%s@," (n_disks t)
    (n_items t)
    (match t.sla with
    | None -> ""
    | Some s -> Printf.sprintf ", %d groups" (Array.length s.weights));
  Format.fprintf ppf "caps: @[%a@]@,"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_int)
    (Array.to_list t.caps);
  Format.fprintf ppf "%a@]" Multigraph.pp t.graph
