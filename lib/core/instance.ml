module Multigraph = Mgraph.Multigraph

type t = { graph : Multigraph.t; caps : int array }

let create g ~caps =
  if Array.length caps <> Multigraph.n_nodes g then
    invalid_arg "Instance.create: one capacity per node required";
  Array.iter
    (fun c ->
      if c < 1 then invalid_arg "Instance.create: capacities must be >= 1")
    caps;
  Multigraph.iter_edges g (fun { Multigraph.u; v; _ } ->
      if u = v then
        invalid_arg "Instance.create: self-loop (item already at target)");
  { graph = g; caps = Array.copy caps }

let uniform g ~cap =
  create g ~caps:(Array.make (Multigraph.n_nodes g) cap)

let random_caps rng g ~choices =
  let choices = Array.of_list choices in
  if Array.length choices = 0 then invalid_arg "Instance.random_caps";
  let caps =
    Array.init (Multigraph.n_nodes g) (fun _ ->
        choices.(Random.State.int rng (Array.length choices)))
  in
  create g ~caps

let graph t = t.graph
let cap t v = t.caps.(v)
let caps t = Array.copy t.caps
let n_disks t = Multigraph.n_nodes t.graph
let n_items t = Multigraph.n_edges t.graph

let all_caps_even t = Array.for_all (fun c -> c mod 2 = 0) t.caps

let degree_ratio t v =
  let d = Multigraph.degree t.graph v in
  (d + t.caps.(v) - 1) / t.caps.(v)

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%d %d\n" (n_disks t) (n_items t));
  Array.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int c))
    t.caps;
  Buffer.add_char buf '\n';
  Multigraph.iter_edges t.graph (fun { Multigraph.u; v; _ } ->
      Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

let of_string s =
  let fail msg = failwith ("Instance.of_string: " ^ msg) in
  let toks =
    String.split_on_char '\n' s
    |> List.concat_map (String.split_on_char ' ')
    |> List.filter (fun t -> t <> "")
  in
  let int_of tok =
    match int_of_string_opt tok with
    | Some i -> i
    | None -> fail ("not an integer: " ^ tok)
  in
  match toks with
  | n :: m :: rest ->
      let n = int_of n and m = int_of m in
      if n < 0 || m < 0 then fail "negative header";
      let rec split_caps k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> fail "missing capacities"
        | c :: rest -> split_caps (k - 1) (int_of c :: acc) rest
      in
      let caps, rest = split_caps n [] rest in
      let g = Multigraph.create ~n () in
      let rec edges k = function
        | [] -> if k <> m then fail "fewer edges than declared"
        | u :: v :: rest ->
            if k >= m then fail "more edges than declared";
            ignore (Multigraph.add_edge g (int_of u) (int_of v));
            edges (k + 1) rest
        | [ _ ] -> fail "dangling endpoint"
      in
      edges 0 rest;
      create g ~caps:(Array.of_list caps)
  | _ -> fail "missing header"

type component = { instance : t; nodes : int array; edges : int array }

let decompose t =
  let g = t.graph in
  let n = Multigraph.n_nodes g in
  let comp, k = Mgraph.Traversal.components g in
  if k <= 1 then
    [
      {
        instance = t;
        nodes = Array.init n Fun.id;
        edges = Array.init (Multigraph.n_edges g) Fun.id;
      };
    ]
  else begin
    (* local node ids follow the original node order within each
       component, so the mapping arrays are monotone — easier to test
       and stable across runs *)
    let local = Array.make n (-1) in
    let sizes = Array.make k 0 in
    for v = 0 to n - 1 do
      local.(v) <- sizes.(comp.(v));
      sizes.(comp.(v)) <- sizes.(comp.(v)) + 1
    done;
    let graphs = Array.init k (fun c -> Multigraph.create ~n:sizes.(c) ()) in
    let nodes = Array.init k (fun c -> Array.make sizes.(c) (-1)) in
    for v = 0 to n - 1 do
      nodes.(comp.(v)).(local.(v)) <- v
    done;
    let edges = Array.make k [] in
    (* iter_edges visits in increasing id order; accumulate reversed *)
    Multigraph.iter_edges g (fun { Multigraph.id; u; v } ->
        let c = comp.(u) in
        ignore (Multigraph.add_edge graphs.(c) local.(u) local.(v));
        edges.(c) <- id :: edges.(c));
    List.init k (fun c ->
        let caps =
          Array.map (fun v -> t.caps.(v)) nodes.(c)
        in
        {
          instance = create graphs.(c) ~caps;
          nodes = nodes.(c);
          edges = Array.of_list (List.rev edges.(c));
        })
  end

let pp ppf t =
  Format.fprintf ppf "@[<v>instance: %d disks, %d items@," (n_disks t)
    (n_items t);
  Format.fprintf ppf "caps: @[%a@]@,"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_int)
    (Array.to_list t.caps);
  Format.fprintf ppf "%a@]" Multigraph.pp t.graph
