(** Multiplicity halving (the closing remark of the paper's Section V).

    "A graph with even edge multiplicities can be colored by coloring a
    graph with halved edge multiplicities and then using each color
    twice" — which turns any coloring algorithm that is polynomial in
    [|E|] into one polynomial in [|V|] and the {e bits} of the edge
    multiplicities.  Transfer graphs with huge parallel classes (many
    items moving between the same disk pair, the common case in bulk
    migration) plan exponentially faster this way.

    Given an instance, this wrapper:
    + pairs up parallel edges, leaving at most one {e odd leftover}
      edge per disk pair;
    + recursively schedules the half instance (one edge per pair);
    + expands each half-round into two real rounds (one edge of every
      pair each — same per-disk footprint, hence feasible);
    + schedules the leftover simple-ish graph directly and appends it.

    The recursion bottoms out at {!Hetero_coloring} (or
    {!Even_optimal} when all constraints are even) once the maximum
    multiplicity is small.

    Rounds used: [2 * R(G/2) + R(odd leftovers)] — within a factor
    matching the underlying algorithm's guarantee (the doubling step
    loses at most one round per recursion level versus the bound,
    which is the loss the paper's analysis accounts for). *)

type stats = {
  rounds : int;
  levels : int;        (** recursion depth taken *)
  base_edges : int;    (** edges scheduled by the base algorithm *)
}

(** [schedule ?rng ?threshold inst] — feasible schedule for any
    instance.  Recursion applies while the maximum multiplicity
    exceeds [threshold] (default 4). *)
val schedule :
  ?rng:Random.State.t -> ?threshold:int -> Instance.t -> Schedule.t

val schedule_stats :
  ?rng:Random.State.t -> ?threshold:int -> Instance.t -> Schedule.t * stats
