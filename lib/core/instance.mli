(** Heterogeneous data-migration instances (the paper's Section III).

    An instance is a transfer multigraph [G = (V, E)] — nodes are
    disks, each edge one unit-size item to move between two disks —
    together with a transfer constraint [c_v >= 1] per disk: the number
    of simultaneous transfers disk [v] can take part in.  Self-loops
    are meaningless (an item already on its target) and rejected. *)

type t

(** [create g ~caps] validates and packs an instance.
    @raise Invalid_argument if [caps] has wrong length, some capacity
    is [< 1], or [g] contains a self-loop. *)
val create : Mgraph.Multigraph.t -> caps:int array -> t

(** All disks share one constraint — the homogeneous special case. *)
val uniform : Mgraph.Multigraph.t -> cap:int -> t

(** Random capacities drawn uniformly from [choices] (device
    generations of a grown cluster). *)
val random_caps :
  Random.State.t -> Mgraph.Multigraph.t -> choices:int list -> t

val graph : t -> Mgraph.Multigraph.t
val cap : t -> int -> int
val caps : t -> int array
val n_disks : t -> int
val n_items : t -> int

(** True iff every [c_v] is even — the polynomially-optimal case of
    the paper's Section IV. *)
val all_caps_even : t -> bool

(** [degree_ratio t v] is [ceil (d_v / c_v)], node [v]'s term of the
    paper's first lower bound. *)
val degree_ratio : t -> int -> int

(** Serialization: header ["n m"], a line of [n] capacities, then [m]
    edge lines — the format the CLI reads and writes. *)
val to_string : t -> string

(** @raise Failure on malformed input. *)
val of_string : string -> t

(** One connected component of an instance, with the index maps back
    into the parent: [nodes.(v')] ([edges.(e')]) is the parent node
    (edge) id of component node [v'] (edge [e']).  Both maps are
    strictly increasing. *)
type component = {
  instance : t;
  nodes : int array;
  edges : int array;
}

(** [decompose t] splits [t] into its connected components — the
    pipeline's unit of solving.  Isolated disks form single-node,
    zero-item components (planners skip them, but the caps survive the
    round trip).  A connected instance decomposes into one component
    whose [instance] is [t] itself and whose maps are the identity.
    Order follows {!Mgraph.Traversal.components} (discovery order by
    node id). *)
val decompose : t -> component list

val pp : Format.formatter -> t -> unit
