(** Heterogeneous data-migration instances (the paper's Section III).

    An instance is a transfer multigraph [G = (V, E)] — nodes are
    disks, each edge one unit-size item to move between two disks —
    together with a transfer constraint [c_v >= 1] per disk: the number
    of simultaneous transfers disk [v] can take part in.  Self-loops
    are meaningless (an item already on its target) and rejected. *)

type t

(** [create g ~caps] validates and packs an instance.

    [?groups] tags edge [e] with tenant/group id [groups.(e)];
    [?weights] gives each group's SLA priority weight ([>= 1], length
    = number of groups).  Omitting [weights] defaults every group to
    weight one; omitting both yields an untagged instance (one
    implicit group of weight one).
    @raise Invalid_argument if [caps] has wrong length, some capacity
    is [< 1], [g] contains a self-loop, [groups]/[weights] have wrong
    lengths or out-of-range values, or [weights] is given without
    [groups]. *)
val create :
  ?groups:int array ->
  ?weights:int array ->
  Mgraph.Multigraph.t ->
  caps:int array ->
  t

(** All disks share one constraint — the homogeneous special case. *)
val uniform : Mgraph.Multigraph.t -> cap:int -> t

(** Random capacities drawn uniformly from [choices] (device
    generations of a grown cluster). *)
val random_caps :
  Random.State.t -> Mgraph.Multigraph.t -> choices:int list -> t

val graph : t -> Mgraph.Multigraph.t
val cap : t -> int -> int
val caps : t -> int array
val n_disks : t -> int
val n_items : t -> int

(** True iff the instance carries explicit tenant/group tags. *)
val tagged : t -> bool

(** Number of tenant groups; [1] for untagged instances. *)
val n_groups : t -> int

(** [group t e] is edge [e]'s group id ([0] when untagged). *)
val group : t -> int -> int

(** [weight t g] is group [g]'s SLA weight ([1] when untagged). *)
val weight : t -> int -> int

(** Per-edge group ids, length {!n_items} (all zero when untagged). *)
val groups : t -> int array

(** Per-group weights, length {!n_groups} ([[|1|]] when untagged). *)
val weights : t -> int array

(** True iff every [c_v] is even — the polynomially-optimal case of
    the paper's Section IV. *)
val all_caps_even : t -> bool

(** [degree_ratio t v] is [ceil (d_v / c_v)], node [v]'s term of the
    paper's first lower bound. *)
val degree_ratio : t -> int -> int

(** Serialization: header ["n m"], a line of [n] capacities, then [m]
    edge lines — the format the CLI reads and writes.  Untagged
    instances render byte-identically to the legacy format.  Tagged
    instances insert ["groups k"] plus a line of [k] weights after the
    capacities and emit ["u v g"] edge triples. *)
val to_string : t -> string

(** @raise Failure on malformed input. *)
val of_string : string -> t

(** One connected component of an instance, with the index maps back
    into the parent: [nodes.(v')] ([edges.(e')]) is the parent node
    (edge) id of component node [v'] (edge [e']).  Both maps are
    strictly increasing. *)
type component = {
  instance : t;
  nodes : int array;
  edges : int array;
}

(** [decompose t] splits [t] into its connected components — the
    pipeline's unit of solving.  Isolated disks form single-node,
    zero-item components (planners skip them, but the caps survive the
    round trip).  A connected instance decomposes into one component
    whose [instance] is [t] itself and whose maps are the identity.
    Order follows {!Mgraph.Traversal.components} (discovery order by
    node id).  Group tags survive: each component keeps its edges'
    global group ids and the full weight table. *)
val decompose : t -> component list

val pp : Format.formatter -> t -> unit
