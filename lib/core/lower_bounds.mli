(** Lower bounds on the optimal number of migration rounds
    (the paper's Section III-A).

    [LB1 = max_v ceil(d_v / c_v)]: disk [v] needs at least
    [d_v / c_v] rounds for its own transfers.

    [LB2 = Γ = max_S ceil(|E(S)| / floor(Σ_{v∈S} c_v / 2))]
    (Lemma 3.1): the transfers inside a node set [S] can consume at
    most [floor(Σ c_v / 2)] edge slots per round.

    Maximizing over all [2^|V|] subsets is intractable in general, so
    [lb2] combines: the whole graph and every connected component
    (always), exact subset enumeration on components of at most
    [exact_limit] nodes (subset-DP, [O(2^k k)]), and randomized greedy
    local search elsewhere.  Every value returned is a {e certified}
    lower bound — it is the [Γ]-term of some concrete subset — only
    its tightness is best-effort. *)

val lb1 : Instance.t -> int

(** [gamma_term inst s] is [ceil(|E(S)| / floor(Σ c_v / 2))] for the
    explicit node list [s] (no duplicates; at least one node with an
    incident edge inside [s] for a nonzero value). *)
val gamma_term : Instance.t -> int list -> int

(** Best [Γ]-term found; see module doc for the search strategy. *)
val lb2 :
  ?rng:Random.State.t -> ?exact_limit:int -> ?search_iters:int ->
  Instance.t -> int

(** Like {!lb2}, but also returns the witness subset achieving the
    bound (empty when the bound is 0).  The witness is what the
    forwarding planner targets: transfers inside it are the bottleneck
    that relaying through outside disks can relieve. *)
val lb2_witness :
  ?rng:Random.State.t -> ?exact_limit:int -> ?search_iters:int ->
  Instance.t -> int * int list

(** [max (lb1 inst) (lb2 inst)] — the bound every experiment reports
    ratios against. *)
val lower_bound :
  ?rng:Random.State.t -> ?exact_limit:int -> ?search_iters:int ->
  Instance.t -> int
