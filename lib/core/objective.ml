(* SLA-aware objectives over tenant-tagged instances: weighted group
   completion times (sum of w_g * C_g), per-group completion
   percentiles, a priority reordering post-pass applicable to any
   feasible schedule, and a greedy priority-order planner. *)

let c_reorders = Instr.counter "sla.reorders"
let c_groups = Instr.counter "sla.groups"
let c_weighted_sum = Instr.counter "sla.weighted_sum"
let c_p50 = Instr.counter "sla.p50_completion"
let c_p99 = Instr.counter "sla.p99_completion"

let completion_rounds inst sched =
  let last = Array.make (Instance.n_groups inst) 0 in
  Array.iteri
    (fun i items ->
      List.iter (fun e -> last.(Instance.group inst e) <- i + 1) items)
    (Schedule.rounds sched);
  last

let weighted_sum inst sched =
  let total = ref 0 in
  Array.iteri
    (fun g c -> total := !total + (Instance.weight inst g * c))
    (completion_rounds inst sched);
  !total

(* nearest-rank percentile, the same convention [Service] reports for
   request latencies, so the two metric families compare directly *)
let percentile sorted q =
  let len = Array.length sorted in
  if len = 0 then 0
  else begin
    let rank = int_of_float (ceil (q /. 100.0 *. float_of_int len)) in
    sorted.(max 0 (min (len - 1) (rank - 1)))
  end

let completion_percentiles inst sched =
  let cs =
    completion_rounds inst sched |> Array.to_seq
    |> Seq.filter (fun c -> c > 0)
    |> Array.of_seq
  in
  Array.sort compare cs;
  (percentile cs 50.0, percentile cs 99.0)

let priority_order inst =
  let order = Array.init (Instance.n_groups inst) Fun.id in
  Array.sort
    (fun a b ->
      match compare (Instance.weight inst b) (Instance.weight inst a) with
      | 0 -> compare a b
      | c -> c)
    order;
  order

let reorder inst sched =
  let rounds = Schedule.rounds sched in
  let r = Array.length rounds in
  Instr.bump c_reorders;
  if r <= 1 then sched
  else begin
    (* rounds touched by each group, ascending (built backwards so the
       consecutive-duplicate check keeps each list sorted and unique) *)
    let by_group = Array.make (Instance.n_groups inst) [] in
    for i = r - 1 downto 0 do
      List.iter
        (fun e ->
          let g = Instance.group inst e in
          match by_group.(g) with
          | i' :: _ when i' = i -> ()
          | l -> by_group.(g) <- i :: l)
        rounds.(i)
    done;
    let emitted = Array.make r false in
    let perm = Array.make r (-1) in
    let next = ref 0 in
    let emit i =
      if not emitted.(i) then begin
        emitted.(i) <- true;
        perm.(!next) <- i;
        incr next
      end
    in
    Array.iter (fun g -> List.iter emit by_group.(g)) (priority_order inst);
    (* empty rounds, if the producer left any, sink to the tail *)
    for i = 0 to r - 1 do
      emit i
    done;
    Schedule.of_rounds (Array.map (fun i -> rounds.(i)) perm)
  end

let claim ?solver ~reordered inst sched =
  let completions =
    completion_rounds inst sched
    |> Array.to_list
    |> List.mapi (fun g c -> (g, c))
  in
  {
    Certify.sla_solver = solver;
    sla_reordered = reordered;
    sla_completions = completions;
    sla_weighted_sum = weighted_sum inst sched;
  }

let observe inst sched =
  let p50, p99 = completion_percentiles inst sched in
  Instr.bump ~by:(Instance.n_groups inst) c_groups;
  Instr.bump ~by:(weighted_sum inst sched) c_weighted_sum;
  Instr.bump ~by:p50 c_p50;
  Instr.bump ~by:p99 c_p99

let sla_greedy =
  {
    Solver.name = "sla-greedy";
    doc = "first-fit in weighted-group priority order (sum w_g*C_g heuristic)";
    can_solve = (fun _ -> true);
    solve =
      (fun _ctx inst ->
        let rank = Array.make (Instance.n_groups inst) 0 in
        Array.iteri (fun i g -> rank.(g) <- i) (priority_order inst);
        let order =
          List.stable_sort
            (fun a b ->
              compare rank.(Instance.group inst a) rank.(Instance.group inst b))
            (List.init (Instance.n_items inst) Fun.id)
        in
        let ec =
          Coloring.Greedy_coloring.color ~order (Instance.graph inst)
            ~cap:(Instance.cap inst)
        in
        Schedule.of_coloring ec);
  }

let () = Solver.register sla_greedy
