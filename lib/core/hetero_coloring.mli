(** The paper's general algorithm (Section V): capacitated
    multigraph edge coloring with a [(1 + o(1))]-approximation target.

    The NP-hard arbitrary-[c_v] case is solved in two phases mirroring
    the paper's structure:

    {b Phase 1} starts from a palette of [Δ̄ = LB1] colors and colors
    edges using the moves the paper's orbit lemmas prove available:
    a color missing at both endpoints (trivial progress), capacitated
    Kempe-walk flips that free a color at one endpoint (Lemmas 5.1/5.2
    — the balancing-orbit and color-orbit moves; see
    {!Coloring.Recolor} for why the walks need not be simple), and the
    weak-edge-orbit move of Lemma 5.3 — uncolor an adjacent "lean"
    edge, color the stuck edge, recolor the lean edge.  An edge that
    survives every move is the practical analogue of a hard orbit with
    a witness (Lemma 5.4): it either joins the residual graph [G0]
    (kept simple, as Phase 1 guarantees in the paper) or, if that
    would break [G0]'s simplicity, forces a palette escalation — the
    paper's "increase [q] by one and color the seed" step.

    {b Phase 2} (Section V-C3) splits each node of [G0] into [c_v]
    copies, Vizing-colors the resulting simple graph with at most
    [max_v ceil(d_{G0}(v)/c_v) + 1] fresh colors, and contracts.

    The paper proves palette [<= OPT + O(sqrt OPT)]; this
    implementation reports the achieved palette so experiments measure
    the additive gap directly (EXPERIMENTS.md, E4). *)

type stats = {
  palette : int;      (** total colors = rounds used *)
  lb : int;           (** [max lb1 lb2] certified lower bound *)
  phase2_edges : int; (** edges deferred to the residual graph [G0] *)
  escalations : int;  (** witness-style palette escalations in Phase 1 *)
  swaps : int;        (** successful lean-edge (weak-orbit) moves *)
}

(** [color ?rng inst] is a complete valid capacitated coloring together
    with run statistics.  Deterministic for a fixed [rng] seed. *)
val color :
  ?rng:Random.State.t -> Instance.t -> Coloring.Edge_coloring.t * stats

val schedule : ?rng:Random.State.t -> Instance.t -> Schedule.t
val schedule_stats : ?rng:Random.State.t -> Instance.t -> Schedule.t * stats
