module Multigraph = Mgraph.Multigraph

let t_orient = Probes.timer "even_opt.pad_orient"
let t_decompose = Probes.timer "even_opt.decompose"

(* Steps 1-3: pad to degree exactly c_v * delta and Euler-orient.
   Returns the padded graph (edges 0..m-1 are the real transfers) and
   the orientation as parallel src/dst arrays. *)
let padded_orientation inst delta =
  let g = Instance.graph inst in
  let n = Multigraph.n_nodes g in
  let g' = Multigraph.create ~n () in
  Multigraph.iter_edges g (fun { Multigraph.u; v; _ } ->
      ignore (Multigraph.add_edge g' u v));
  let target v = Instance.cap inst v * delta in
  for v = 0 to n - 1 do
    while Multigraph.degree g' v <= target v - 2 do
      ignore (Multigraph.add_edge g' v v)
    done
  done;
  (* nodes still one short have odd original degree; they are even in
     number (handshake) — pair them with dummy edges *)
  let deficient = ref [] in
  for v = n - 1 downto 0 do
    if Multigraph.degree g' v = target v - 1 then deficient := v :: !deficient
  done;
  let rec pair = function
    | [] -> ()
    | [ _ ] -> assert false (* impossible by parity *)
    | a :: b :: rest ->
        ignore (Multigraph.add_edge g' a b);
        pair rest
  in
  pair !deficient;
  for v = 0 to n - 1 do
    assert (Multigraph.degree g' v = target v)
  done;
  let srcs, dsts = Mgraph.Euler.orient g' in
  (g', srcs, dsts)

(* Step 4, the paper's version: delta successive exact c_v/2-degree
   subgraphs of H extracted by max-flow (Figure 3).  Each round keeps
   the non-selected edges in reverse index order (pinned by the golden
   schedules: the next round's matching depends on it). *)
let decompose_by_flows ?pool inst delta g' srcs dsts m =
  let n = Instance.n_disks inst in
  let half v = Instance.cap inst v / 2 in
  let caps_half = Array.init n half in
  let m' = Multigraph.n_edges g' in
  let remaining = Array.init m' Fun.id in
  let len = ref m' in
  let rounds = Array.make delta [] in
  for r = 0 to delta - 1 do
    (* a copy: the reverse-order compaction below writes back into
       [remaining] while this round's indices are still being read *)
    let edges = Array.sub remaining 0 !len in
    let problem =
      {
        Netflow.Bmatching.n_left = n;
        n_right = n;
        left_cap = caps_half;
        right_cap = caps_half;
        edges = Array.map (fun e -> (srcs.(e), dsts.(e))) edges;
      }
    in
    match Netflow.Bmatching.solve_exact ?pool problem with
    | None ->
        (* contradicts Lemma 4.1/4.2 — would be an implementation bug *)
        assert false
    | Some sel ->
        for i = 0 to !len - 1 do
          let e = edges.(i) in
          if sel.(i) && e < m then rounds.(r) <- e :: rounds.(r)
        done;
        let j = ref 0 in
        for i = !len - 1 downto 0 do
          if not sel.(i) then begin
            remaining.(!j) <- edges.(i);
            incr j
          end
        done;
        len := !j
  done;
  assert (!len = 0);
  rounds

(* Step 4, alternative: split each H-side of [v] into c_v/2 unit
   copies (evenly, so every copy has degree exactly delta) and
   König-color the delta-regular bipartite multigraph. *)
let decompose_by_konig ?pool inst delta g' srcs dsts m =
  let n = Instance.n_disks inst in
  let half = Array.init n (fun v -> Instance.cap inst v / 2) in
  let off = Split_graph.offsets half in
  let copies = off.(n) in
  (* out-copies are 0..copies-1, in-copies are copies..2*copies-1 *)
  let h = Multigraph.create ~n:(2 * copies) () in
  let out_cursor = Array.make n 0 and in_cursor = Array.make n 0 in
  let out_copy v =
    let c = off.(v) + out_cursor.(v) in
    out_cursor.(v) <- (out_cursor.(v) + 1) mod half.(v);
    c
  in
  let in_copy v =
    let c = copies + off.(v) + in_cursor.(v) in
    in_cursor.(v) <- (in_cursor.(v) + 1) mod half.(v);
    c
  in
  let m' = Multigraph.n_edges g' in
  let h_edge_of = Array.make m' (-1) in
  for e = 0 to m' - 1 do
    let he = Multigraph.add_edge h (out_copy srcs.(e)) (in_copy dsts.(e)) in
    h_edge_of.(e) <- he
  done;
  (* round-robin over a degree divisible by c_v/2 gives every copy
     degree exactly delta *)
  assert (Multigraph.max_degree h = delta);
  let coloring = Coloring.Konig.color ?pool h in
  let rounds = Array.make delta [] in
  for e = 0 to m - 1 do
    match Coloring.Edge_coloring.color_of coloring h_edge_of.(e) with
    | Some c -> rounds.(c) <- e :: rounds.(c)
    | None -> assert false
  done;
  rounds

let schedule ?(method_ = `Flows) ?(jobs = 1) inst =
  if not (Instance.all_caps_even inst) then
    invalid_arg "Even_optimal.schedule: all transfer constraints must be even";
  let g = Instance.graph inst in
  let m = Multigraph.n_edges g in
  if m = 0 then Schedule.of_rounds [||]
  else begin
    let delta = Lower_bounds.lb1 inst in
    let g', srcs, dsts =
      Probes.time t_orient (fun () -> padded_orientation inst delta)
    in
    let decompose pool =
      Probes.time t_decompose (fun () ->
          match method_ with
          | `Flows -> decompose_by_flows ?pool inst delta g' srcs dsts m
          | `Konig -> decompose_by_konig ?pool inst delta g' srcs dsts m)
    in
    let rounds =
      (* the per-round matchings split into independent per-component
         flow subproblems; a pool solves those in parallel without
         changing a bit of the result (see Netflow.Bmatching) *)
      if jobs <= 1 then decompose None
      else Exec.with_pool ~jobs (fun pool -> decompose (Some pool))
    in
    (* drop padding-only rounds *)
    let nonempty = Array.to_list rounds |> List.filter (fun r -> r <> []) in
    Schedule.of_rounds (Array.of_list nonempty)
  end
