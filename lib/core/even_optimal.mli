(** Optimal migration scheduling for even transfer constraints
    (the paper's Section IV, Theorem 4.1).

    When every [c_v] is even, a schedule using exactly
    [Δ̄ = max_v ceil(d_v / c_v)] rounds — the first lower bound, hence
    optimal — always exists and is computable in polynomial time:

    + pad the transfer graph with self-loops and dummy edges until
      every node has degree exactly [c_v * Δ̄] (even);
    + orient all edges along Euler circuits;
    + form the bipartite graph [H] on [v_out]/[v_in] copies, where both
      copies of [v] have degree [c_v * Δ̄ / 2];
    + decompose [H] into [Δ̄] spanning sub-graphs in which [v] appears
      exactly [c_v] times — each is one feasible round.

    Two decompositions of [H] are implemented:

    - [`Flows] — the paper's Step 4 verbatim: extract [Δ̄] successive
      exact [c_v/2]-degree subgraphs by max-flow (the Figure 3
      network).  Feasibility at every iteration is the paper's
      Lemma 4.1/4.2, asserted at runtime.
    - [`Konig] — split each [H]-copy into [c_v/2] unit nodes (evenly,
      so each split node has degree exactly [Δ̄]) and König-color the
      resulting [Δ̄]-regular bipartite multigraph with [Δ̄] colors.

    Both produce exactly [Δ̄] rounds; benchmark E14 compares their
    planning cost. *)

(** [schedule ?method_ ?jobs inst] is an optimal schedule:
    [n_rounds <= lb1 inst], with equality whenever the instance has
    items (trailing padding-only rounds are dropped).
    Default method: [`Flows].

    [jobs > 1] solves each round's independent per-component flow
    subproblems on a worker pool (see {!Netflow.Bmatching.solve_max});
    the schedule is bit-identical at any [jobs].
    @raise Invalid_argument if some [c_v] is odd. *)
val schedule :
  ?method_:[ `Flows | `Konig ] -> ?jobs:int -> Instance.t -> Schedule.t
