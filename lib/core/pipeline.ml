type selection = {
  component : int;
  n_disks : int;
  n_items : int;
  solver : string;
  rounds : int;
}

type report = { components : int; selections : selection list }

let t_decompose = Instr.timer "pipeline.decompose"
let t_solve = Instr.timer "pipeline.solve"
let t_merge = Instr.timer "pipeline.merge"
let c_components = Instr.counter "pipeline.components"

(* components whose solver differed from at least one sibling's — the
   pipeline's reason to exist, so make it observable *)
let c_mixed = Instr.counter "pipeline.mixed_selection"

let selection_of ~component ~solver inst sched =
  {
    component;
    n_disks = Instance.n_disks inst;
    n_items = Instance.n_items inst;
    solver;
    rounds = Schedule.n_rounds sched;
  }

let solve ?rng ?(jobs = 1) ~choose inst =
  let comps = Instr.time t_decompose (fun () -> Instance.decompose inst) in
  Instr.bump ~by:(List.length comps) c_components;
  let active =
    List.mapi (fun i c -> (i, c)) comps
    |> List.filter (fun (_, c) -> Instance.n_items c.Instance.instance > 0)
  in
  match active with
  | [] ->
      (Schedule.of_rounds [||], { components = List.length comps; selections = [] })
  | [ (i, _) ] ->
      (* one real component: solve the original instance monolithically
         so behavior (including RNG consumption) is identical to
         calling the solver directly.  [jobs] passes through so a
         solver with intra-component parallelism (even-opt's per-round
         matchings) still gets its pool. *)
      let s = choose inst in
      let sched = Instr.time t_solve (fun () -> Solver.solve ?rng ~jobs s inst) in
      ( sched,
        {
          components = List.length comps;
          selections = [ selection_of ~component:i ~solver:s.Solver.name inst sched ];
        } )
  | _ ->
      (* Determinism contract: every component gets an independent RNG
         whose seed is drawn from the caller's [rng] in component
         order, before any solving.  Component solves then share no
         mutable state, so the result is bit-identical whatever [jobs]
         is and however the domains interleave. *)
      let tagged =
        List.map
          (fun (i, c) ->
            let comp_rng =
              Option.map
                (fun r -> Random.State.make [| Random.State.bits r; i; 0xc09e |])
                rng
            in
            (i, c, comp_rng))
          active
      in
      let solve_one (i, c, comp_rng) =
        let ci = c.Instance.instance in
        let s = choose ci in
        let sched = Solver.solve ?rng:comp_rng s ci in
        ( (sched, c.Instance.edges),
          selection_of ~component:i ~solver:s.Solver.name ci sched )
      in
      let parts =
        Instr.time t_solve (fun () ->
            if jobs <= 1 then List.map solve_one tagged
            else Exec.with_pool ~jobs (fun pool -> Exec.map ~pool solve_one tagged))
      in
      let selections = List.map snd parts in
      (match selections with
      | { solver = first; _ } :: rest ->
          if List.exists (fun sel -> sel.solver <> first) rest then
            Instr.bump c_mixed
      | [] -> ());
      let merged =
        Instr.time t_merge (fun () -> Schedule.merge (List.map fst parts))
      in
      (merged, { components = List.length comps; selections })

let auto_choose inst =
  if Instance.all_caps_even inst then Solver.even_opt else Solver.hetero

let auto =
  {
    Solver.name = "auto";
    doc =
      "per-component pipeline: even-opt on all-even components, hetero \
       elsewhere";
    can_solve = (fun _ -> true);
    solve =
      (fun ctx inst ->
        fst
          (solve ?rng:ctx.Solver.rng ~jobs:ctx.Solver.jobs ~choose:auto_choose
             inst));
  }

let () = Solver.register auto

let plan_report ?rng ?jobs name inst =
  match name with
  | "auto" -> Some (solve ?rng ?jobs ~choose:auto_choose inst)
  | _ ->
      Solver.find name
      |> Option.map (fun s -> solve ?rng ?jobs ~choose:(fun _ -> s) inst)
