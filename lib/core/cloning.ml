type demand = { sources : int list; destinations : int list }
type t = { n : int; caps : int array; demands : demand array }
type transfer = { item : int; src : int; dst : int }

let create ~n_disks ~caps demands =
  if Array.length caps <> n_disks then
    invalid_arg "Cloning.create: one capacity per disk";
  Array.iter
    (fun c -> if c < 1 then invalid_arg "Cloning.create: capacity must be >= 1")
    caps;
  Array.iter
    (fun d ->
      if d.sources = [] then invalid_arg "Cloning.create: empty source set";
      let check_set name set =
        let seen = Hashtbl.create 8 in
        List.iter
          (fun v ->
            if v < 0 || v >= n_disks then
              invalid_arg ("Cloning.create: bad disk in " ^ name);
            if Hashtbl.mem seen v then
              invalid_arg ("Cloning.create: duplicate disk in " ^ name);
            Hashtbl.add seen v ())
          set
      in
      check_set "sources" d.sources;
      check_set "destinations" d.destinations)
    demands;
  { n = n_disks; caps; demands }

let n_disks t = t.n
let n_items t = Array.length t.demands
let demand t i =
  if i < 0 || i >= n_items t then invalid_arg "Cloning.demand";
  t.demands.(i)

let ceil_div a b = (a + b - 1) / b

let lower_bound t =
  (* doubling bound per item (holders at most double per round even
     with large capacities only when... with c_v >= 1 each holder can
     spawn c_v copies, so growth is by factor (1 + min caps observed);
     we use the conservative doubling bound with the max cap) *)
  let cmax = Array.fold_left max 1 t.caps in
  let doubling =
    Array.fold_left
      (fun acc d ->
        let s = List.length d.sources in
        let unmet =
          List.length
            (List.filter (fun v -> not (List.mem v d.sources)) d.destinations)
        in
        if unmet = 0 then acc
        else
          (* holders grow at most (1 + cmax)x per round *)
          let growth = 1 + cmax in
          let rec rounds k have =
            if have >= s + unmet then k else rounds (k + 1) (have * growth)
          in
          max acc (max 1 (rounds 0 s))
        )
      0 t.demands
  in
  (* receiver load bound *)
  let incoming = Array.make t.n 0 in
  Array.iter
    (fun d ->
      List.iter
        (fun v ->
          if not (List.mem v d.sources) then incoming.(v) <- incoming.(v) + 1)
        d.destinations)
    t.demands;
  let receiver =
    let best = ref 0 in
    for v = 0 to t.n - 1 do
      best := max !best (ceil_div incoming.(v) t.caps.(v))
    done;
    !best
  in
  max doubling receiver

let plan ?rng t =
  ignore rng;
  let m = n_items t in
  let holders = Array.map (fun _ -> Hashtbl.create 8) t.demands in
  Array.iteri
    (fun i d -> List.iter (fun v -> Hashtbl.replace holders.(i) v ()) d.sources)
    t.demands;
  let unmet =
    Array.mapi
      (fun i d ->
        ref
          (List.filter (fun v -> not (Hashtbl.mem holders.(i) v)) d.destinations))
      t.demands
  in
  let pending = ref 0 in
  Array.iter (fun u -> pending := !pending + List.length !u) unmet;
  (* receiver pressure: how many unmet arrivals each disk still owes;
     the receiver-load lower bound says the hottest disk dictates the
     round count, so those disks must be served every single round *)
  let in_demand = Array.make t.n 0 in
  Array.iter
    (fun u -> List.iter (fun d -> in_demand.(d) <- in_demand.(d) + 1) !u)
    unmet;
  let rounds = ref [] in
  while !pending > 0 do
    let streams = Array.make t.n 0 in
    let free v = streams.(v) < t.caps.(v) in
    let transfers = ref [] in
    (* repeatedly serve the hottest receiver that still has a
       (free destination slot, unmet item with a free holder) pair *)
    let progress = ref true in
    while !progress do
      progress := false;
      (* candidate items, most starved first (many unmet, few holders) *)
      let items =
        List.init m Fun.id
        |> List.filter (fun i -> !(unmet.(i)) <> [])
        |> List.sort (fun a b ->
               let key i =
                 (List.length !(unmet.(i)), -Hashtbl.length holders.(i))
               in
               compare (key b) (key a))
      in
      List.iter
        (fun i ->
          (* among this item's free unmet destinations, serve the one
             under the most remaining pressure *)
          let free_dests = List.filter free !(unmet.(i)) in
          match
            List.fold_left
              (fun acc d ->
                match acc with
                | None -> Some d
                | Some b -> if in_demand.(d) > in_demand.(b) then Some d else acc)
              None free_dests
          with
          | None -> ()
          | Some dst ->
              let src =
                Hashtbl.fold
                  (fun v () acc ->
                    match acc with
                    | Some _ -> acc
                    | None -> if free v then Some v else None)
                  holders.(i) None
              in
              (match src with
              | None -> ()
              | Some src ->
                  streams.(src) <- streams.(src) + 1;
                  streams.(dst) <- streams.(dst) + 1;
                  transfers := { item = i; src; dst } :: !transfers;
                  unmet.(i) := List.filter (fun d -> d <> dst) !(unmet.(i));
                  in_demand.(dst) <- in_demand.(dst) - 1;
                  decr pending;
                  progress := true))
        items
    done;
    (* a round always serves someone: take any unmet destination; its
       target and some holder are stream-free at round start *)
    assert (!transfers <> [] || !pending = 0);
    if !transfers <> [] then begin
      (* new copies become holders only after the round ends *)
      List.iter
        (fun tr -> Hashtbl.replace holders.(tr.item) tr.dst ())
        !transfers;
      rounds := List.rev !transfers :: !rounds
    end
  done;
  Array.of_list (List.rev !rounds)

let validate t plan =
  let holders = Array.map (fun _ -> Hashtbl.create 8) t.demands in
  Array.iteri
    (fun i d -> List.iter (fun v -> Hashtbl.replace holders.(i) v ()) d.sources)
    t.demands;
  let err = ref None in
  let set_err msg = if !err = None then err := Some msg in
  Array.iteri
    (fun r transfers ->
      let streams = Array.make t.n 0 in
      List.iter
        (fun tr ->
          if tr.item < 0 || tr.item >= n_items t then
            set_err (Printf.sprintf "round %d: unknown item %d" r tr.item)
          else begin
            if not (Hashtbl.mem holders.(tr.item) tr.src) then
              set_err
                (Printf.sprintf "round %d: disk %d does not hold item %d" r
                   tr.src tr.item);
            streams.(tr.src) <- streams.(tr.src) + 1;
            streams.(tr.dst) <- streams.(tr.dst) + 1
          end)
        transfers;
      Array.iteri
        (fun v s ->
          if s > t.caps.(v) then
            set_err
              (Printf.sprintf "round %d: disk %d runs %d transfers (c=%d)" r v
                 s t.caps.(v)))
        streams;
      (* copies land at the end of the round *)
      List.iter
        (fun tr -> Hashtbl.replace holders.(tr.item) tr.dst ())
        transfers)
    plan;
  Array.iteri
    (fun i d ->
      List.iter
        (fun v ->
          if not (Hashtbl.mem holders.(i) v) then
            set_err (Printf.sprintf "item %d never reaches disk %d" i v))
        d.destinations)
    t.demands;
  match !err with None -> Ok () | Some msg -> Error msg
