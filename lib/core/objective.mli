(** SLA-aware objectives: weighted group completion times.

    Rounds-to-finish (the paper's makespan) treats all items alike;
    when edges carry tenant/group tags ({!Instance.create}[ ?groups]),
    what each tenant observes is its own {e completion round}
    [C_g] — the 1-based index of the last round moving one of its
    items.  Following the graph-scheduling-with-group-completion-times
    line, this module evaluates and optimizes the weighted sum
    [sum_g w_g * C_g]:

    - {!reorder} is a post-pass on {e any} feasible schedule: it
      permutes whole rounds (feasibility and makespan are untouched)
      so groups complete in priority order — weight descending, group
      id ascending — each group's rounds appended earliest-first.
      The result satisfies the no-inversion invariant
      {!Certify.check_sla} audits: every round before [C_g] serves at
      least one group of equal-or-higher priority.
    - {!sla_greedy} plans first-fit over edges sorted by group
      priority — a [sum w_g * C_g] heuristic that may pay extra
      rounds (the price of fairness the bench quantifies).

    Untagged instances behave as one group of weight one: every
    function below degrades to the makespan view. *)

(** [completion_rounds inst sched] is [C_g] per group id (1-based
    round index; [0] for a group with no items). *)
val completion_rounds : Instance.t -> Schedule.t -> int array

(** [sum_g w_g * C_g] — the SLA objective. *)
val weighted_sum : Instance.t -> Schedule.t -> int

(** Nearest-rank (p50, p99) over the non-empty groups' completion
    rounds — the same percentile convention {!Service} reports for
    request latencies. *)
val completion_percentiles : Instance.t -> Schedule.t -> int * int

(** Group ids sorted by priority: weight descending, id ascending. *)
val priority_order : Instance.t -> int array

(** Priority reordering post-pass.  Pure round permutation: the edge
    multiset of every round and the round count are preserved, so a
    feasible input stays feasible with the {e same makespan} — the
    post-pass can never pay rounds for fairness.  The highest-priority
    group always completes as early as any round permutation allows;
    lower-priority groups inherit whatever the nesting leaves. *)
val reorder : Instance.t -> Schedule.t -> Schedule.t

(** [claim ?solver ~reordered inst sched] packages the planner's SLA
    assertions for {!Certify.check_sla} to audit independently. *)
val claim :
  ?solver:string -> reordered:bool -> Instance.t -> Schedule.t ->
  Certify.sla_claim

(** Record the SLA metrics of a planned schedule on the [sla.*]
    instrumentation cells ([sla.groups], [sla.weighted_sum],
    [sla.p50_completion], [sla.p99_completion]) so they surface in
    [--metrics-json]. *)
val observe : Instance.t -> Schedule.t -> unit

(** The ["sla-greedy"] registry entry (also registered at module
    initialization, like the other built-ins). *)
val sla_greedy : Solver.t
