module Multigraph = Mgraph.Multigraph
module Ec = Coloring.Edge_coloring

type t = { rounds : int list array }

let of_rounds rounds = { rounds = Array.copy rounds }

let of_coloring ec =
  if not (Ec.is_complete ec) then
    invalid_arg "Schedule.of_coloring: coloring incomplete";
  let classes = Ec.classes ec in
  let nonempty = Array.to_list classes |> List.filter (fun c -> c <> []) in
  { rounds = Array.of_list nonempty }

let n_rounds t = Array.length t.rounds

let round t i =
  if i < 0 || i >= n_rounds t then invalid_arg "Schedule.round";
  t.rounds.(i)

let rounds t = Array.copy t.rounds

let n_items t =
  Array.fold_left (fun acc r -> acc + List.length r) 0 t.rounds

let validate inst t =
  let g = Instance.graph inst in
  let m = Multigraph.n_edges g in
  let seen = Array.make m false in
  let err = ref None in
  let set_err msg = if !err = None then err := Some msg in
  Array.iteri
    (fun i items ->
      let load = Hashtbl.create 16 in
      let bump v =
        let c = (try Hashtbl.find load v with Not_found -> 0) + 1 in
        Hashtbl.replace load v c;
        if c > Instance.cap inst v then
          set_err
            (Printf.sprintf "round %d: disk %d exceeds its constraint %d" i v
               (Instance.cap inst v))
      in
      List.iter
        (fun e ->
          if e < 0 || e >= m then set_err (Printf.sprintf "unknown item %d" e)
          else begin
            if seen.(e) then
              set_err (Printf.sprintf "item %d scheduled twice" e);
            seen.(e) <- true;
            let u, v = Multigraph.endpoints g e in
            bump u;
            bump v
          end)
        items)
    t.rounds;
  Array.iteri
    (fun e s ->
      if not s then set_err (Printf.sprintf "item %d never scheduled" e))
    seen;
  match !err with None -> Ok () | Some msg -> Error msg

let max_parallelism inst t =
  let g = Instance.graph inst in
  Array.map
    (fun items ->
      let load = Hashtbl.create 16 in
      let bump v =
        Hashtbl.replace load v ((try Hashtbl.find load v with Not_found -> 0) + 1)
      in
      List.iter
        (fun e ->
          let u, v = Multigraph.endpoints g e in
          bump u;
          bump v)
        items;
      Hashtbl.fold (fun _ c acc -> max c acc) load 0)
    t.rounds

(* Utilization counts occupied endpoint slots with the same accounting
   [validate] applies: per round, disk [v] has [c_v] slots and every
   scheduled edge occupies one slot per endpoint incidence.  Summing
   the per-disk loads (rather than [2 * |round|] directly) keeps the
   semantics explicit: a self-loop contributes both of its incidences
   to one disk — it does not silently count as two distinct endpoints.
   [Instance.create] rejects self-loops, so for instance edges the two
   formulas agree (the test suite checks exactly that). *)
let utilization inst t =
  if n_rounds t = 0 then 1.0
  else begin
    let g = Instance.graph inst in
    let total_cap =
      Array.fold_left ( + ) 0 (Instance.caps inst) |> float_of_int
    in
    if total_cap = 0.0 then 1.0
    else begin
      let load = Array.make (Instance.n_disks inst) 0 in
      Array.iter
        (List.iter (fun e ->
             let u, v = Multigraph.endpoints g e in
             load.(u) <- load.(u) + 1;
             load.(v) <- load.(v) + 1))
        t.rounds;
      let used = Array.fold_left ( + ) 0 load in
      float_of_int used /. (total_cap *. float_of_int (n_rounds t))
    end
  end

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "rounds %d\n" (n_rounds t));
  Array.iter
    (fun items ->
      Buffer.add_string buf
        (String.concat " " (List.map string_of_int items));
      Buffer.add_char buf '\n')
    t.rounds;
  Buffer.contents buf

let of_string s =
  let fail msg = failwith ("Schedule.of_string: " ^ msg) in
  match String.split_on_char '\n' s with
  | header :: rest -> (
      match String.split_on_char ' ' (String.trim header) with
      | [ "rounds"; k ] -> (
          match int_of_string_opt k with
          | None -> fail "bad round count"
          | Some k ->
              if k < 0 then fail "negative round count";
              let lines = Array.of_list rest in
              if Array.length lines < k then fail "missing round lines";
              (* only blank lines may follow the declared rounds:
                 silently dropping extra lines would make a truncated
                 header masquerade as a valid (shorter) schedule *)
              for i = k to Array.length lines - 1 do
                if String.trim lines.(i) <> "" then
                  fail
                    (Printf.sprintf "trailing garbage after round %d: %S" k
                       lines.(i))
              done;
              let parse_round line =
                String.split_on_char ' ' (String.trim line)
                |> List.filter (fun tok -> tok <> "")
                |> List.map (fun tok ->
                       match int_of_string_opt tok with
                       | Some e when e >= 0 -> e
                       | _ -> fail ("bad edge id: " ^ tok))
              in
              { rounds = Array.init k (fun i -> parse_round lines.(i)) })
      | _ -> fail "missing header")
  | [] -> fail "empty input"

(* Round-wise union: round [i] of the result is the concatenation of
   every part's round [i], remapped through its edge map.  Feasibility
   is preserved when the parts live on disjoint node sets (the
   pipeline's case: one part per connected component). *)
let merge parts =
  let k =
    List.fold_left (fun acc (s, _) -> max acc (n_rounds s)) 0 parts
  in
  let rounds = Array.make k [] in
  List.iter
    (fun (s, edge_map) ->
      Array.iteri
        (fun i items ->
          let remapped =
            List.map
              (fun e ->
                if e < 0 || e >= Array.length edge_map then
                  invalid_arg "Schedule.merge: edge id outside its map"
                else edge_map.(e))
              items
          in
          rounds.(i) <- List.rev_append remapped rounds.(i))
        s.rounds)
    parts;
  { rounds }

let pp ppf t =
  let pp_items ppf items =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
      Format.pp_print_int ppf items
  in
  Format.fprintf ppf "@[<v>schedule: %d rounds@," (n_rounds t);
  Array.iteri
    (fun i items -> Format.fprintf ppf "  round %d: @[<h>%a@]@," i pp_items items)
    t.rounds;
  Format.fprintf ppf "@]"
