(** Fault-tolerant execution: simulate, detect, incrementally re-plan.

    Planners promise a schedule; production disks break it.  The
    engine drives a plan round by round against a fault {!policy}
    (transient transfer failures, disk crashes, slowdowns that halve
    [c_v]), collects the surviving residual edges, and re-plans {e
    only what changed}: the residual decomposes into connected
    components, components untouched by any fault keep their remaining
    rounds verbatim (warm start), and the affected components are
    re-solved through {!Pipeline.solve} — so a single flaky transfer
    never pays for a full re-solve of the cluster.

    Failure handling is graceful throughout: transiently failed
    transfers retry up to [max_retries] times under an exponential
    round-backoff ([backoff_base * 2^(attempts-1)] rounds), edges on a
    crashed disk are dropped into a quarantine report instead of
    aborting the migration, and a run that somehow exhausts its round
    budget quarantines the leftovers rather than spinning.

    Every (re)plan is certified with {!Certify.check} before a single
    transfer runs, and the full execution log is replayable through
    {!Certify.certify_execution} — exactly-once completion, per-round
    loads under the degraded capacities actually in force, and total
    executed rounds within the summed certified plan bounds.

    {b Determinism}: for a fixed [rng], [policy] and instance the
    outcome is bit-identical at every [jobs] value — the loop is
    sequential, and {!Pipeline.solve} carries its own determinism
    contract.

    Instrumentation ({!Instr}): ["engine.plans"], ["engine.replans"],
    ["engine.rounds"], ["engine.idle_rounds"], ["engine.retried_edges"],
    ["engine.quarantined_edges"], ["engine.crashes"],
    ["engine.slowdowns"], ["engine.rounds_lost"], and timers
    ["engine.plan"] / ["engine.run"]. *)

(** One injected fault.  Unknown disks, dead disks and edges not in
    the attempted round are ignored, so policies can be sloppy. *)
type fault =
  | Fail_transfer of int  (** this round's attempt of the edge fails *)
  | Crash_disk of int     (** permanent: pending edges quarantined *)
  | Slow_disk of int      (** [c_v <- max 1 (c_v / 2)] from next round *)

(** A fault policy is consulted once per executed round, with the
    transfers about to run.  {!Sim.Fault.engine_policy} builds the
    seeded stochastic one; tests inject hand-written scripts. *)
type policy = {
  policy_name : string;
  decide : round:int -> attempted:int list -> fault list;
}

(** The fault-free policy: every transfer succeeds. *)
val no_faults : policy

type quarantine_reason =
  | Crashed of int              (** the disk that took the edge down *)
  | Retries_exhausted of int    (** attempts made *)
  | Round_budget_exhausted

val quarantine_reason_to_string : quarantine_reason -> string

type outcome = {
  execution : Certify.execution;
      (** the flight recorder {!Certify.certify_execution} audits *)
  schedule : Schedule.t;
      (** completed transfers per executed round (informational; it
          only validates against the instance when nothing was
          quarantined) *)
  completed : int;
  quarantined : (int * quarantine_reason) list;  (** event order *)
  crashed : int list;
  degraded : (int * int) list;  (** (disk, final degraded [c_v]) *)
  replans : int;   (** re-solve events after the initial plan *)
  retries : int;   (** transient failures that were re-queued *)
  total_rounds : int;  (** executed + idle *)
  idle_rounds : int;   (** rounds where everything was backing off *)
  rounds_lost : int;   (** attempted transfers that did not complete *)
  residual : int list;
      (** still-pending edges when [stop_after] ended the run early
          (ascending; empty on a run-to-completion) *)
  remaining_plan : int list array;
      (** the unexecuted suffix of the plan in force at stop time,
          filtered to pending edges — feed it back as [warm] to resume
          without re-solving untouched components *)
}

exception Plan_rejected of string
(** A (re)plan failed its own certification — a planner bug, never a
    fault-injection outcome. *)

(** [run ~policy inst] migrates [inst] to completion (or quarantine).
    [rng] seeds the planners (default: a fixed state — pass one for
    independent runs); [jobs] is {!Pipeline.solve}'s worker-domain
    budget; [choose] the per-component selection rule (default
    {!Pipeline.auto_choose}); [round_budget] caps total rounds
    (default [16 * items + 64]).  [incremental] (default [true])
    enables the warm start: components untouched by faults keep their
    projected rounds and only dirty ones re-solve — pass [false] to
    re-solve the whole residual at every replan (the oracle baseline
    the benchmarks compare against).

    Epoch mode, for {e streaming} callers (the online service):
    [stop_after] ends the run cleanly once the round clock reaches it —
    still-pending edges land in [outcome.residual] (not the quarantine)
    and the plan suffix in [outcome.remaining_plan].  [warm] seeds the
    initial plan cursor with a previous epoch's [remaining_plan] (edge
    ids of {e this} instance): components it fully covers keep those
    rounds verbatim.  [dirty_disks] forces the components of the named
    disks to re-solve regardless — pass disks whose capacities changed
    between epochs.  Note {!Certify.certify_execution} flags residual
    edges as missing unless the caller accounts for them (the service
    certifier appends them to the quarantine before replay).
    @raise Invalid_argument on a negative retry/backoff/budget, a
    non-positive [stop_after], or an out-of-range dirty disk. *)
val run :
  ?rng:Random.State.t ->
  ?jobs:int ->
  ?max_retries:int ->
  ?backoff_base:int ->
  ?round_budget:int ->
  ?stop_after:int ->
  ?incremental:bool ->
  ?warm:int list array ->
  ?dirty_disks:int list ->
  ?choose:(Instance.t -> Solver.t) ->
  policy:policy ->
  Instance.t ->
  outcome

val pp_outcome : Format.formatter -> outcome -> unit

(** {1 Sharding hooks}

    The distributed control plane (lib/dist) partitions each plan
    round across N worker processes by contiguous disk range: disk [d]
    belongs to worker [d * N / n_disks], and an edge to the worker
    owning its lower endpoint.  Both are pure functions of the
    instance, so a coordinator resuming from its journal re-derives
    exactly the same shards — no shard table needs to be persisted. *)

(** [shard_of inst ~workers e] is the owning worker (in [0 ..
    workers-1]) of edge [e].
    @raise Invalid_argument on [workers < 1] or an out-of-range edge. *)
val shard_of : Instance.t -> workers:int -> int -> int

(** [shard_round inst ~workers round] splits one plan round into per-
    worker shards; each edge lands in exactly one shard and relative
    order within a shard follows the round. *)
val shard_round : Instance.t -> workers:int -> int list -> int list array
