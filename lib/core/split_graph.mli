(** Node splitting for capacitated coloring.

    Splitting disk [v] into [c_v] copies and distributing its incident
    edges evenly turns a transfer-constraint instance into a plain
    edge-coloring instance: any proper coloring of the split graph
    contracts back to a coloring where [v] sees at most [c_v] edges per
    color.  This is Saia's reduction (the 1.5-approximation baseline)
    and the paper's Phase-2 device for the residual graph [G0]
    (Section V-C3). *)

(** [offsets caps] maps node [v] to the id of its first copy; copies of
    [v] are [offsets.(v) .. offsets.(v) + caps.(v) - 1], and the total
    copy count is [offsets.(n)] (the array has [n + 1] entries). *)
val offsets : int array -> int array

(** [split g ~caps] distributes each node's edge endpoints round-robin
    over its copies, so copy degrees are at most [ceil(d_v / c_v)].
    Returns the split graph (edge ids preserved: split edge [i]
    corresponds to edge [i] of [g]). *)
val split : Mgraph.Multigraph.t -> caps:int array -> Mgraph.Multigraph.t

(** Max copy degree after splitting, [max_v ceil(d_v / c_v)] or less;
    exposed for tests asserting the even-distribution property. *)
val split_degree_bound : Mgraph.Multigraph.t -> caps:int array -> int
