module Multigraph = Mgraph.Multigraph

(* Rebuild an instance from an explicit edge list, dropping nodes that
   end up isolated (their caps vanish with them).  Node ids compact
   downward, preserving relative order, so shrunk instances stay in
   canonical dense form. *)
let rebuild inst keep_edge =
  let g = Instance.graph inst in
  let n = Multigraph.n_nodes g in
  let used = Array.make n false in
  Multigraph.iter_edges g (fun { Multigraph.id; u; v } ->
      if keep_edge id then begin
        used.(u) <- true;
        used.(v) <- true
      end);
  let remap = Array.make n (-1) in
  let n' = ref 0 in
  for v = 0 to n - 1 do
    if used.(v) then begin
      remap.(v) <- !n';
      incr n'
    end
  done;
  if !n' = 0 then None
  else begin
    let g' = Multigraph.create ~n:!n' () in
    let kept_groups = ref [] in
    Multigraph.iter_edges g (fun { Multigraph.id; u; v } ->
        if keep_edge id then begin
          ignore (Multigraph.add_edge g' remap.(u) remap.(v));
          kept_groups := Instance.group inst id :: !kept_groups
        end);
    let caps = Array.make !n' 1 in
    for v = 0 to n - 1 do
      if used.(v) then caps.(remap.(v)) <- Instance.cap inst v
    done;
    (* group tags ride along so a shrunk SLA reproducer still fails
       for the same reason; group ids (and the weight table) stay
       global to keep the tags comparable with the original *)
    if Instance.tagged inst then
      Some
        (Instance.create g' ~caps
           ~groups:(Array.of_list (List.rev !kept_groups))
           ~weights:(Instance.weights inst))
    else Some (Instance.create g' ~caps)
  end

let with_caps inst caps =
  let g = Multigraph.copy (Instance.graph inst) in
  if Instance.tagged inst then
    Instance.create g ~caps ~groups:(Instance.groups inst)
      ~weights:(Instance.weights inst)
  else Instance.create g ~caps

(* One pass of candidate reductions, largest first: delta-debugging
   style edge-chunk removal, then capacity halving (global, then per
   disk), then single-edge removal.  Returns the first candidate that
   still fails, or None at a local minimum. *)
let step ~fails inst =
  let m = Instance.n_items inst in
  let try_edges keep =
    match rebuild inst keep with
    | Some inst' when Instance.n_items inst' < m && fails inst' -> Some inst'
    | _ -> None
  in
  let rec chunks size =
    if size < 1 then None
    else begin
      let rec windows start =
        if start >= m then None
        else
          let stop = min m (start + size) in
          match try_edges (fun e -> e < start || e >= stop) with
          | Some _ as r -> r
          | None -> windows stop
      in
      match windows 0 with Some _ as r -> r | None -> chunks (size / 2)
    end
  in
  let halve_caps () =
    let caps = Instance.caps inst in
    let halved = Array.map (fun c -> max 1 (c / 2)) caps in
    if halved = caps then None
    else begin
      let inst' = with_caps inst halved in
      if fails inst' then Some inst'
      else begin
        (* per-disk halving; keep the first reduction that still fails *)
        let found = ref None in
        let v = ref 0 in
        while !found = None && !v < Array.length caps do
          if halved.(!v) < caps.(!v) then begin
            let caps' = Array.copy caps in
            caps'.(!v) <- halved.(!v);
            let inst' = with_caps inst caps' in
            if fails inst' then found := Some inst'
          end;
          incr v
        done;
        !found
      end
    end
  in
  match chunks (max 1 (m / 2)) with Some _ as r -> r | None -> halve_caps ()

let minimize ?(max_steps = 400) ~fails inst =
  if not (fails inst) then
    invalid_arg "Shrink.minimize: instance does not fail";
  let rec go inst steps =
    if steps >= max_steps then inst
    else
      match step ~fails inst with
      | None -> inst
      | Some inst' -> go inst' (steps + 1)
  in
  go inst 0
