(** Heterogeneous data migration — the paper's primary contribution.

    Umbrella module re-exporting the library and providing the
    top-level planner API: build an {!Instance}, pick an algorithm,
    get a validated {!Schedule}. *)

module Instance = Instance
module Schedule = Schedule
module Lower_bounds = Lower_bounds
module Even_optimal = Even_optimal
module Split_graph = Split_graph
module Hetero_coloring = Hetero_coloring
module Saia = Saia
module Exact = Exact
module Halving = Halving
module Completion_time = Completion_time
module Forwarding = Forwarding
module Space = Space
module Cloning = Cloning
module Refine = Refine
module Orbits = Orbits
module Diagnostics = Diagnostics
module Deadline = Deadline
module Solver = Solver
module Objective = Objective
module Pipeline = Pipeline
module Instr = Instr
module Certify = Certify
module Shrink = Shrink
module Engine = Engine
module Golden = Golden

(** Planner selection. *)
type algorithm =
  | Auto
      (** {!Even_opt} when every constraint is even (optimal,
          Theorem 4.1), {!Hetero} otherwise. *)
  | Even_opt  (** Section IV; requires all-even constraints. *)
  | Hetero    (** Section V general algorithm. *)
  | Saia_split  (** 1.5-approximation baseline. *)
  | Greedy    (** first-fit baseline. *)
  | Orbit_driven
      (** Section V-C1 realized through the explicit orbit/witness
          structures ({!Orbits.color_via_orbits}); structurally
          faithful, slower than {!Hetero}. *)
  | Sla_greedy
      (** first-fit in weighted-group priority order — the
          [sum w_g * C_g] heuristic of {!Objective}. *)

let algorithm_to_string = function
  | Auto -> "auto"
  | Even_opt -> "even-opt"
  | Hetero -> "hetero"
  | Saia_split -> "saia"
  | Greedy -> "greedy"
  | Orbit_driven -> "orbits"
  | Sla_greedy -> "sla-greedy"

let algorithm_of_string = function
  | "auto" -> Some Auto
  | "even-opt" -> Some Even_opt
  | "hetero" -> Some Hetero
  | "saia" -> Some Saia_split
  | "greedy" -> Some Greedy
  | "orbits" -> Some Orbit_driven
  | "sla-greedy" -> Some Sla_greedy
  | _ -> None

let all_algorithms =
  [ Auto; Even_opt; Hetero; Saia_split; Greedy; Orbit_driven; Sla_greedy ]

(** The {!Solver.t} behind each legacy variant.  [Auto] is the
    decompose/solve/merge pipeline ({!Pipeline.auto}); the others are
    the registered built-ins. *)
let solver_of_algorithm = function
  | Auto -> Pipeline.auto
  | Even_opt -> Solver.even_opt
  | Hetero -> Solver.hetero
  | Saia_split -> Solver.saia
  | Greedy -> Solver.greedy
  | Orbit_driven -> Solver.orbits
  | Sla_greedy -> Objective.sla_greedy

(** [plan ?rng alg inst] computes a feasible schedule.  Every algorithm
    returns a schedule that passes {!Schedule.validate}; they differ
    in how close to the optimum round count they land (see
    EXPERIMENTS.md).

    Thin compatibility shim over the {!Solver} registry: new code
    should resolve a {!Solver.t} (or call {!Pipeline.solve}) directly. *)
let plan ?rng ?jobs alg inst =
  Solver.solve ?rng ?jobs (solver_of_algorithm alg) inst
