module Multigraph = Mgraph.Multigraph

let offsets caps =
  let n = Array.length caps in
  let off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    off.(v + 1) <- off.(v) + caps.(v)
  done;
  off

let split g ~caps =
  let n = Multigraph.n_nodes g in
  if Array.length caps <> n then invalid_arg "Split_graph.split";
  let off = offsets caps in
  let cursor = Array.make n 0 in
  let copy_of v =
    let c = off.(v) + cursor.(v) in
    cursor.(v) <- (cursor.(v) + 1) mod caps.(v);
    c
  in
  let sg = Multigraph.create ~n:off.(n) () in
  Multigraph.iter_edges g (fun { Multigraph.u; v; _ } ->
      ignore (Multigraph.add_edge sg (copy_of u) (copy_of v)));
  sg

let split_degree_bound g ~caps =
  Multigraph.max_degree (split g ~caps)
