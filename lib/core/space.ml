module Multigraph = Mgraph.Multigraph

type config = {
  space : int array;
  initial_load : int array;
  bypass : int list;
}

exception Stuck of string

let validate_config inst cfg =
  let n = Instance.n_disks inst in
  if Array.length cfg.space <> n || Array.length cfg.initial_load <> n then
    invalid_arg "Space: config arrays must have one entry per disk";
  Array.iteri
    (fun d s ->
      if s < 0 then invalid_arg "Space: negative capacity";
      if cfg.initial_load.(d) < 0 then invalid_arg "Space: negative load";
      if cfg.initial_load.(d) > s then
        invalid_arg
          (Printf.sprintf "Space: disk %d starts above capacity (%d > %d)" d
             cfg.initial_load.(d) s))
    cfg.space;
  List.iter
    (fun d -> if d < 0 || d >= n then invalid_arg "Space: bad bypass disk")
    cfg.bypass

(* Shared audit over (src, dst) moves per round: receive-before-free. *)
let audit_rounds n cfg rounds_moves =
  let load = Array.copy cfg.initial_load in
  let err = ref None in
  let set_err msg = if !err = None then err := Some msg in
  List.iteri
    (fun i moves ->
      let arrivals = Array.make n 0 in
      List.iter (fun (_, dst) -> arrivals.(dst) <- arrivals.(dst) + 1) moves;
      for d = 0 to n - 1 do
        if load.(d) + arrivals.(d) > cfg.space.(d) then
          set_err
            (Printf.sprintf
               "round %d: disk %d needs %d units but has capacity %d" i d
               (load.(d) + arrivals.(d))
               cfg.space.(d))
      done;
      List.iter
        (fun (src, dst) ->
          load.(src) <- load.(src) - 1;
          load.(dst) <- load.(dst) + 1)
        moves)
    rounds_moves;
  match !err with None -> Ok () | Some msg -> Error msg

let check inst cfg sched =
  validate_config inst cfg;
  let g = Instance.graph inst in
  let rounds_moves =
    Array.to_list (Schedule.rounds sched)
    |> List.map (List.map (fun e -> Multigraph.endpoints g e))
  in
  audit_rounds (Instance.n_disks inst) cfg rounds_moves

let check_plan inst cfg plan =
  validate_config inst cfg;
  let rounds_moves =
    Array.to_list (Forwarding.rounds plan)
    |> List.map
         (List.map (fun h -> (h.Forwarding.src, h.Forwarding.dst)))
  in
  audit_rounds (Instance.n_disks inst) cfg rounds_moves

(* ------------------------------------------------------------------ *)
(* Space-aware planning                                                 *)

let plan ?rng inst cfg =
  validate_config inst cfg;
  ignore rng;
  let g = Instance.graph inst in
  let n = Instance.n_disks inst in
  let m = Multigraph.n_edges g in
  if m = 0 then Forwarding.of_rounds [||]
  else begin
    let pos = Array.init m (fun e -> fst (Multigraph.endpoints g e)) in
    let target = Array.init m (fun e -> snd (Multigraph.endpoints g e)) in
    let delivered = Array.make m false in
    let pending = ref m in
    let load = Array.copy cfg.initial_load in
    let relay_budget = Array.make m (2 * n) in
    let is_bypass = Array.make n false in
    List.iter (fun d -> is_bypass.(d) <- true) cfg.bypass;
    let rounds = ref [] in
    let max_rounds = (10 * m) + 10 in
    let round_no = ref 0 in
    while !pending > 0 do
      incr round_no;
      if !round_no > max_rounds then
        raise (Stuck "no progress within the round budget");
      let streams = Array.make n 0 in
      let arrivals = Array.make n 0 in
      let hops = ref [] in
      let can_stream d = streams.(d) < Instance.cap inst d in
      let has_room d = load.(d) + arrivals.(d) + 1 <= cfg.space.(d) in
      let take item dst =
        let src = pos.(item) in
        streams.(src) <- streams.(src) + 1;
        streams.(dst) <- streams.(dst) + 1;
        arrivals.(dst) <- arrivals.(dst) + 1;
        hops := { Forwarding.item; src; dst } :: !hops
      in
      let moved = Array.make m false in
      (* items waiting on the fullest disks go first: moving them is
         what frees space elsewhere *)
      let order =
        List.init m Fun.id
        |> List.filter (fun e -> not delivered.(e))
        |> List.sort (fun a b ->
               compare
                 (cfg.space.(pos.(b)) - load.(pos.(b)))
                 (cfg.space.(pos.(a)) - load.(pos.(a))))
      in
      (* pass 1: direct deliveries *)
      List.iter
        (fun item ->
          let src = pos.(item) and dst = target.(item) in
          if
            (not moved.(item))
            && can_stream src && can_stream dst && has_room dst
          then begin
            moved.(item) <- true;
            take item dst
          end)
        order;
      (* pass 2: relays, only for items whose target has no room *)
      List.iter
        (fun item ->
          let src = pos.(item) and dst = target.(item) in
          if
            (not moved.(item))
            && (not (has_room dst))
            && can_stream src
            && relay_budget.(item) > 0
          then begin
            (* pick a relay: prefer bypass disks, then most free room *)
            let candidates =
              List.init n Fun.id
              |> List.filter (fun d ->
                     d <> src && d <> dst && can_stream d && has_room d)
            in
            let score d =
              ( (if is_bypass.(d) then 1 else 0),
                cfg.space.(d) - load.(d) - arrivals.(d) )
            in
            match
              List.fold_left
                (fun acc d ->
                  match acc with
                  | None -> Some d
                  | Some b -> if score d > score b then Some d else acc)
                None candidates
            with
            | None -> ()
            | Some r ->
                moved.(item) <- true;
                relay_budget.(item) <- relay_budget.(item) - 1;
                take item r
          end)
        order;
      (match !hops with
      | [] ->
          raise
            (Stuck
               (Printf.sprintf
                  "deadlock with %d items pending: every target and relay is \
                   full or saturated"
                  !pending))
      | hs ->
          (* apply moves *)
          List.iter
            (fun h ->
              load.(h.Forwarding.src) <- load.(h.Forwarding.src) - 1;
              load.(h.Forwarding.dst) <- load.(h.Forwarding.dst) + 1;
              pos.(h.Forwarding.item) <- h.Forwarding.dst;
              if h.Forwarding.dst = target.(h.Forwarding.item) then begin
                delivered.(h.Forwarding.item) <- true;
                decr pending
              end)
            hs;
          rounds := List.rev hs :: !rounds)
    done;
    Forwarding.of_rounds (Array.of_list (List.rev !rounds))
  end
