type result = {
  schedule : Schedule.t;
  moved : int list;
  deferred : int list;
  moved_weight : float;
  total_weight : float;
}

let base_plan ?rng inst =
  if Instance.all_caps_even inst then Even_optimal.schedule inst
  else Hetero_coloring.schedule ?rng inst

let plan_window ?rng ?(weights = fun _ -> 1.0) inst ~budget =
  if budget < 0 then invalid_arg "Deadline.plan_window: negative budget";
  let full = base_plan ?rng inst in
  let rounds = Schedule.rounds full in
  let weight_of edges = List.fold_left (fun acc e -> acc +. weights e) 0.0 edges in
  let order = Array.init (Array.length rounds) Fun.id in
  Array.sort
    (fun a b -> compare (weight_of rounds.(b)) (weight_of rounds.(a)))
    order;
  let keep = Array.make (Array.length rounds) false in
  Array.iteri (fun rank r -> if rank < budget then keep.(r) <- true) order;
  let kept = ref [] and moved = ref [] and deferred = ref [] in
  Array.iteri
    (fun r edges ->
      if keep.(r) then begin
        kept := edges :: !kept;
        moved := edges @ !moved
      end
      else deferred := edges @ !deferred)
    rounds;
  (* keep the heaviest-first execution order inside the window, so an
     early abort still moved the most valuable items *)
  let kept_rounds =
    List.sort (fun a b -> compare (weight_of b) (weight_of a)) !kept
  in
  {
    schedule = Schedule.of_rounds (Array.of_list kept_rounds);
    moved = List.sort compare !moved;
    deferred = List.sort compare !deferred;
    moved_weight = weight_of !moved;
    total_weight =
      Array.fold_left (fun acc edges -> acc +. weight_of edges) 0.0 rounds;
  }
