module Multigraph = Mgraph.Multigraph

type hop = { item : int; src : int; dst : int }
type plan = { rounds : hop list array }

type stats = {
  rounds : int;
  relayed : int;
  direct_rounds : int;
  bound_before : int;
}

let rounds (p : plan) = Array.copy p.rounds
let n_rounds (p : plan) = Array.length p.rounds
let of_rounds rounds = { rounds = Array.copy rounds }

let base_plan ?rng inst =
  if Instance.all_caps_even inst then Even_optimal.schedule inst
  else Hetero_coloring.schedule ?rng inst

let of_schedule inst sched =
  let g = Instance.graph inst in
  let rounds =
    Array.map
      (fun edges ->
        List.map
          (fun e ->
            let src, dst = Multigraph.endpoints g e in
            { item = e; src; dst })
          edges)
      (Schedule.rounds sched)
  in
  { rounds }

(* Schedule a hop graph and translate edge-id rounds into hop rounds. *)
let schedule_hops ?rng inst hops =
  if Array.length hops = 0 then [||]
  else begin
    let g = Multigraph.create ~n:(Instance.n_disks inst) () in
    Array.iter (fun h -> ignore (Multigraph.add_edge g h.src h.dst)) hops;
    let hop_inst = Instance.create g ~caps:(Instance.caps inst) in
    let sched = base_plan ?rng hop_inst in
    Array.map (fun edges -> List.map (fun e -> hops.(e)) edges)
      (Schedule.rounds sched)
  end

let ceil_div a b = (a + b - 1) / b

let plan_with_helpers ?rng inst =
  let g = Instance.graph inst in
  let n = Instance.n_disks inst in
  let direct_sched = base_plan ?rng inst in
  let direct_rounds = Schedule.n_rounds direct_sched in
  let bound_before = Lower_bounds.lower_bound ?rng inst in
  let fallback () =
    ( of_schedule inst direct_sched,
      {
        rounds = direct_rounds;
        relayed = 0;
        direct_rounds;
        bound_before;
      } )
  in
  let gamma, s = Lower_bounds.lb2_witness ?rng inst in
  if gamma <= Lower_bounds.lb1 inst || s = [] || List.length s = n then
    fallback ()
  else begin
    let in_s = Array.make n false in
    List.iter (fun v -> in_s.(v) <- true) s;
    let slots =
      max 1 (List.fold_left (fun acc v -> acc + Instance.cap inst v) 0 s / 2)
    in
    (* per-phase degree trackers for the projection *)
    let d1 = Array.init n (Multigraph.degree g) in
    let d2 = Array.make n 0 in
    let inside =
      Multigraph.fold_edges
        (fun e acc -> if in_s.(e.Multigraph.u) && in_s.(e.Multigraph.v) then e :: acc else acc)
        g []
    in
    let e_s = ref (List.length inside) in
    let phase1_cost () =
      let lb1' = ref 0 in
      for v = 0 to n - 1 do
        lb1' := max !lb1' (ceil_div d1.(v) (Instance.cap inst v))
      done;
      max !lb1' (if !e_s = 0 then 0 else ceil_div !e_s slots)
    in
    let phase2_cost () =
      let c = ref 0 in
      for v = 0 to n - 1 do
        if d2.(v) > 0 then c := max !c (ceil_div d2.(v) (Instance.cap inst v))
      done;
      !c
    in
    let helpers =
      List.init n Fun.id |> List.filter (fun v -> not in_s.(v))
    in
    let best_helper () =
      List.fold_left
        (fun acc w ->
          let load w =
            float_of_int (d1.(w) + d2.(w)) /. float_of_int (Instance.cap inst w)
          in
          match acc with
          | None -> Some w
          | Some b -> if load w < load b then Some w else acc)
        None helpers
    in
    (* Candidate order: interleave edges across their target disks, so
       the hop-2 receivers spread instead of piling on one node. *)
    let interleaved =
      let by_target = Hashtbl.create 8 in
      List.iter
        (fun (e : Multigraph.edge) ->
          Hashtbl.replace by_target e.Multigraph.v
            (e
            :: (try Hashtbl.find by_target e.Multigraph.v with Not_found -> [])))
        inside;
      let queues = Hashtbl.fold (fun _ es acc -> ref es :: acc) by_target [] in
      let out = ref [] in
      let continue = ref true in
      while !continue do
        continue := false;
        List.iter
          (fun q ->
            match !q with
            | [] -> ()
            | e :: rest ->
                q := rest;
                out := e :: !out;
                continue := true)
          queues
      done;
      List.rev !out
    in
    (* Sweep every reroute-prefix, tracking the projected cost; keep
       the argmin prefix.  Projection: phase-1 rounds bounded by the
       larger of its degree bound and the relieved Γ-term, plus the
       phase-2 degree bound. *)
    let applied = ref [] and n_applied = ref 0 in
    let best_cost = ref (phase1_cost () + phase2_cost ()) in
    let best_k = ref 0 in
    List.iter
      (fun (e : Multigraph.edge) ->
        match best_helper () with
        | None -> ()
        | Some w ->
            d1.(e.Multigraph.v) <- d1.(e.Multigraph.v) - 1;
            d1.(w) <- d1.(w) + 1;
            d2.(w) <- d2.(w) + 1;
            d2.(e.Multigraph.v) <- d2.(e.Multigraph.v) + 1;
            e_s := !e_s - 1;
            applied := (e.Multigraph.id, w) :: !applied;
            incr n_applied;
            let cost = phase1_cost () + phase2_cost () in
            if cost < !best_cost then begin
              best_cost := cost;
              best_k := !n_applied
            end)
      interleaved;
    let relay = Hashtbl.create 16 in
    List.iteri
      (fun i (e, w) ->
        (* applied is newest-first; keep the first best_k reroutes *)
        if !n_applied - i <= !best_k then Hashtbl.replace relay e w)
      !applied;
    if Hashtbl.length relay = 0 then fallback ()
    else begin
      let hop1 = ref [] and hop2 = ref [] in
      Multigraph.iter_edges g (fun { Multigraph.id; u; v } ->
          match Hashtbl.find_opt relay id with
          | Some w ->
              hop1 := { item = id; src = u; dst = w } :: !hop1;
              hop2 := { item = id; src = w; dst = v } :: !hop2
          | None -> hop1 := { item = id; src = u; dst = v } :: !hop1);
      let r1 = schedule_hops ?rng inst (Array.of_list !hop1) in
      let r2 = schedule_hops ?rng inst (Array.of_list !hop2) in
      let forwarded = { rounds = Array.append r1 r2 } in
      if n_rounds forwarded >= direct_rounds then fallback ()
      else
        ( forwarded,
          {
            rounds = n_rounds forwarded;
            relayed = Hashtbl.length relay;
            direct_rounds;
            bound_before;
          } )
    end
  end

let validate inst (p : plan) =
  let g = Instance.graph inst in
  let m = Multigraph.n_edges g in
  let pos = Array.init m (fun e -> fst (Multigraph.endpoints g e)) in
  let target = Array.init m (fun e -> snd (Multigraph.endpoints g e)) in
  let delivered = Array.make m false in
  let err = ref None in
  let set_err msg = if !err = None then err := Some msg in
  Array.iteri
    (fun i hops ->
      let load = Hashtbl.create 16 in
      let moved = Hashtbl.create 16 in
      let bump v =
        let c = (try Hashtbl.find load v with Not_found -> 0) + 1 in
        Hashtbl.replace load v c;
        if c > Instance.cap inst v then
          set_err (Printf.sprintf "round %d: disk %d over its constraint" i v)
      in
      List.iter
        (fun h ->
          if h.item < 0 || h.item >= m then
            set_err (Printf.sprintf "round %d: unknown item %d" i h.item)
          else begin
            if Hashtbl.mem moved h.item then
              set_err
                (Printf.sprintf "round %d: item %d moved twice in one round" i
                   h.item);
            Hashtbl.add moved h.item ();
            if delivered.(h.item) then
              set_err (Printf.sprintf "item %d moved after delivery" h.item);
            if pos.(h.item) <> h.src then
              set_err
                (Printf.sprintf "round %d: item %d is on disk %d, not %d" i
                   h.item pos.(h.item) h.src);
            bump h.src;
            bump h.dst;
            pos.(h.item) <- h.dst;
            if h.dst = target.(h.item) then delivered.(h.item) <- true
          end)
        hops)
    p.rounds;
  Array.iteri
    (fun e d -> if not d then set_err (Printf.sprintf "item %d never delivered" e))
    delivered;
  match !err with None -> Ok () | Some msg -> Error msg
