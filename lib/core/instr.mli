(** Structured instrumentation for the planner pipeline.

    Process-wide counters and timers recorded by every stage of the
    planning stack — Kempe flips in {!Coloring.Recolor}
    (["recolor.kempe_flips"]), augmenting paths in Dinic max-flow
    (["flow.augmenting_paths"]), phase timings in
    {!Hetero_coloring} / {!Even_optimal} / {!Saia} / {!Orbits}, and
    the decompose/solve/merge spans of {!Pipeline}.

    Typical per-run use:
    {[
      Migration.Instr.reset ();
      let sched = Migration.plan ~rng Migration.Auto inst in
      let snap = Migration.Instr.snapshot () in
      print_string (Migration.Instr.to_json snap)
    ]}

    This is {!Probes} re-exported; see that interface for the cell
    semantics (cheap, always-on, schema stable across {!reset}). *)

include module type of Probes
