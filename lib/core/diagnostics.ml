module Multigraph = Mgraph.Multigraph
module Stats = Mgraph.Stats

type report = {
  disks : int;
  items : int;
  components : int;
  degrees : Stats.summary;
  degree_ratios : Stats.summary;
  cap_histogram : (int * int) list;
  max_multiplicity : int;
  all_caps_even : bool;
  lb1 : int;
  lb2 : int;
  binding_bound : [ `Degree | `Gamma | `Tie ];
  suggested_algorithm : string;
}

let analyze ?rng inst =
  let g = Instance.graph inst in
  let n = Instance.n_disks inst in
  let degrees =
    Stats.summarize
      (List.init (max n 1) (fun v ->
           if v < n then float_of_int (Multigraph.degree g v) else 0.0))
  in
  let degree_ratios =
    Stats.summarize
      (List.init (max n 1) (fun v ->
           if v < n then float_of_int (Instance.degree_ratio inst v) else 0.0))
  in
  let hist = Hashtbl.create 8 in
  Array.iter
    (fun c -> Hashtbl.replace hist c (1 + (try Hashtbl.find hist c with Not_found -> 0)))
    (Instance.caps inst);
  let cap_histogram =
    Hashtbl.fold (fun c k acc -> (c, k) :: acc) hist [] |> List.sort compare
  in
  let lb1 = Lower_bounds.lb1 inst in
  let lb2 = Lower_bounds.lb2 ?rng inst in
  {
    disks = n;
    items = Instance.n_items inst;
    components = Mgraph.Traversal.n_components g;
    degrees;
    degree_ratios;
    cap_histogram;
    max_multiplicity = Multigraph.max_multiplicity g;
    all_caps_even = Instance.all_caps_even inst;
    lb1;
    lb2;
    binding_bound =
      (if lb1 > lb2 then `Degree else if lb2 > lb1 then `Gamma else `Tie);
    suggested_algorithm =
      (if Instance.all_caps_even inst then "even-opt (provably optimal)"
       else "hetero ((1+o(1))-approximation)");
  }

let pp ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "disks:            %d (%d components)@," r.disks
    r.components;
  Format.fprintf ppf "items:            %d (max multiplicity %d)@," r.items
    r.max_multiplicity;
  Format.fprintf ppf "degrees:          %a@," Stats.pp_summary r.degrees;
  Format.fprintf ppf "degree ratios:    %a@," Stats.pp_summary r.degree_ratios;
  Format.fprintf ppf "constraints:      %s%s@,"
    (String.concat ", "
       (List.map
          (fun (c, k) -> Printf.sprintf "c=%d x%d" c k)
          r.cap_histogram))
    (if r.all_caps_even then "  (all even)" else "");
  Format.fprintf ppf "LB1 / Γ:          %d / %d (%s binds)@," r.lb1 r.lb2
    (match r.binding_bound with
    | `Degree -> "degree bound"
    | `Gamma -> "Γ"
    | `Tie -> "tie");
  Format.fprintf ppf "suggested:        %s@]" r.suggested_algorithm
