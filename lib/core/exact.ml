module Multigraph = Mgraph.Multigraph

type outcome = Optimal of Schedule.t | Gave_up

exception Budget

(* DFS feasibility for a fixed number of rounds [q]. *)
let feasible inst q order budget =
  let g = Instance.graph inst in
  let n = Multigraph.n_nodes g in
  let m = Array.length order in
  let counts = Array.make_matrix n q 0 in
  let assignment = Array.make (Multigraph.n_edges g) (-1) in
  let nodes = ref 0 in
  let rec dfs i max_used =
    incr nodes;
    if !nodes > budget then raise Budget;
    if i = m then true
    else begin
      let e = order.(i) in
      let u, v = Multigraph.endpoints g e in
      (* symmetry breaking: opening a fresh round is only allowed for
         the next unused round index *)
      let limit = min (q - 1) (max_used + 1) in
      let rec try_color c =
        if c > limit then false
        else if
          counts.(u).(c) < Instance.cap inst u
          && counts.(v).(c) < Instance.cap inst v
        then begin
          counts.(u).(c) <- counts.(u).(c) + 1;
          counts.(v).(c) <- counts.(v).(c) + 1;
          assignment.(e) <- c;
          if dfs (i + 1) (max max_used c) then true
          else begin
            counts.(u).(c) <- counts.(u).(c) - 1;
            counts.(v).(c) <- counts.(v).(c) - 1;
            assignment.(e) <- -1;
            try_color (c + 1)
          end
        end
        else try_color (c + 1)
      in
      try_color 0
    end
  in
  if dfs 0 (-1) then Some assignment else None

let solve ?(node_budget = 2_000_000) inst =
  let g = Instance.graph inst in
  let m = Multigraph.n_edges g in
  if m = 0 then Optimal (Schedule.of_rounds [||])
  else begin
    let order =
      (* hardest endpoints first for early pruning *)
      let weight e =
        let u, v = Multigraph.endpoints g e in
        Instance.degree_ratio inst u + Instance.degree_ratio inst v
      in
      let a = Array.init m Fun.id in
      Array.sort (fun e f -> compare (weight f) (weight e)) a;
      a
    in
    let lb = Lower_bounds.lower_bound inst in
    let rec deepen q =
      if q > m then Gave_up
      else
        match feasible inst q order node_budget with
        | Some assignment ->
            let rounds = Array.make q [] in
            Array.iteri
              (fun e c -> if c >= 0 then rounds.(c) <- e :: rounds.(c))
              assignment;
            let nonempty =
              Array.to_list rounds |> List.filter (fun r -> r <> [])
            in
            Optimal (Schedule.of_rounds (Array.of_list nonempty))
        | None -> deepen (q + 1)
        | exception Budget -> Gave_up
    in
    deepen (max 1 lb)
  end

let opt_rounds ?node_budget inst =
  match solve ?node_budget inst with
  | Optimal s -> Some (Schedule.n_rounds s)
  | Gave_up -> None
