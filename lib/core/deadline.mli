(** Deadline-constrained (partial) migration.

    The paper's motivation is that "the storage system will perform
    sub-optimally until migrations are finished" — but operators often
    have the dual problem: a fixed maintenance window of [budget]
    rounds, and the question of {e which} items to move inside it to
    recover the most performance.

    Strategy: plan a full schedule with the usual machinery, then keep
    the [budget] rounds of largest total weight.  Rounds are mutually
    independent (each is feasible on its own), so any subset of rounds
    is a feasible partial migration; choosing the heaviest subset is
    optimal {e relative to the computed schedule}.  Items in dropped
    rounds are reported as deferred, ready to seed the next window. *)

type result = {
  schedule : Schedule.t;   (** at most [budget] rounds, feasible *)
  moved : int list;        (** edge ids migrated inside the window *)
  deferred : int list;     (** edge ids left for a later window *)
  moved_weight : float;
  total_weight : float;
}

(** [plan_window ?rng ?weights inst ~budget] — [weights] maps edge ids
    to importance (default 1.0, i.e. maximize item count).
    @raise Invalid_argument if [budget < 0]. *)
val plan_window :
  ?rng:Random.State.t -> ?weights:(int -> float) -> Instance.t ->
  budget:int -> result
