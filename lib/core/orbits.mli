(** The paper's orbit structures (Section V-B), executable.

    The general algorithm's progress arguments are phrased through
    subgraph structures over a partial coloring:

    - a {e balancing orbit} (Definition 5.3): a component of the
      uncolored subgraph containing a node that {e strongly} misses a
      color ([E_c(v) <= c_v - 2]).  Lemma 5.1: an uncolored edge can
      then always be colored.
    - a {e color orbit} (Definition 5.4): such a component with two
      nodes {e lightly} missing the same color.  Lemma 5.2: same
      conclusion.
    - a {e tight} orbit: neither — the paper's hard case, handled by
      growing edge orbits until a witness forces a new color.
    - {e bad edges} (Definition 5.5): uncolored edges with an
      uncolored parallel partner — what Phase 1 eliminates so the
      residual graph [G0] is simple.

    {!Hetero_coloring} does not pattern-match on these structures —
    its Kempe walks and lean-edge moves realize the same progress
    directly — but this module makes the paper's case analysis
    observable: classify a partial coloring, then check the lemmas'
    conclusions hold (the test suite does exactly that on random
    partial colorings).  It is also a planning diagnostic: a run that
    stalls with only tight orbits left is in the paper's
    witness/escalation regime. *)

type orbit = {
  nodes : int list;           (** component of the uncolored subgraph *)
  uncolored_edges : int list; (** its uncolored edges *)
}

type classification =
  | Balancing of { node : int; color : int }
      (** [node] strongly misses [color] (Definition 5.3) *)
  | Color_orbit of { node_a : int; node_b : int; color : int }
      (** both lightly miss [color] (Definition 5.4) *)
  | Tight  (** a hard orbit candidate *)

(** Components of the subgraph induced by uncolored edges; singletons
    without uncolored edges are skipped. *)
val orbits : Coloring.Edge_coloring.t -> orbit list

val classify : Coloring.Edge_coloring.t -> orbit -> classification

(** Uncolored edges with an uncolored parallel partner
    (Definition 5.5). *)
val bad_edges : Coloring.Edge_coloring.t -> int list

(** Realize the progress the lemmas promise: color one uncolored edge
    of the orbit, using the classification's move ({!Balancing}: free
    the strongly-missing color at the other endpoint via a Kempe walk;
    {!Color_orbit}: same from either lightly-missing node).  Returns
    the colored edge, or [None] for a tight orbit or when every move
    fails (which the lemmas say cannot happen when the palette is at
    least the classification's implicit bound — the test suite
    measures exactly this). *)
val make_progress :
  ?rng:Random.State.t -> Coloring.Edge_coloring.t -> orbit -> int option

(** {1 Edge orbits and witnesses (Definitions 5.6, 5.7)} *)

(** A grown edge orbit: the node set reached so far and the colors its
    alternating paths consumed (a color is {e free} for the orbit if
    no path used it). *)
type edge_orbit = {
  seed : int list;       (** the uncolored seed edges *)
  vertices : int list;
  used_colors : int list;
}

type growth =
  | Grew of edge_orbit
      (** Lemma 5.4: a larger orbit (at least one new vertex) *)
  | Delta_witness of int
      (** some orbit node misses only non-free colors — the palette is
          degree-bound-tight (Lemma 5.5) *)
  | Gamma_witness
      (** every free color is full on the orbit — Γ-tight
          (Lemma 5.6) *)

(** Seed orbit for an uncolored edge: its endpoints, no used colors. *)
val seed_orbit : Coloring.Edge_coloring.t -> int -> edge_orbit

(** One step of the paper's grow-or-witness alternative (Lemma 5.4):
    either extend the orbit along an alternating path whose two colors
    are free for the orbit, or report why no such extension exists. *)
val grow : Coloring.Edge_coloring.t -> edge_orbit -> growth

(** Orbit-driven coloring engine — the paper's Phase 1 realized
    through these structures rather than through direct Kempe search:
    repeatedly classify the uncolored components, apply Lemmas 5.1/5.2
    where they fire, and drive tight components through the
    grow-or-witness loop, escalating the palette exactly when a
    witness appears.  Slower than {!Hetero_coloring} but structurally
    faithful to Section V-C1; benchmark E22 compares the two. *)
type engine_stats = {
  palette : int;
  witnesses_delta : int;
  witnesses_gamma : int;
  orbit_growths : int;
  largest_orbit : int;
}

val color_via_orbits :
  ?rng:Random.State.t -> Instance.t -> Coloring.Edge_coloring.t * engine_stats
