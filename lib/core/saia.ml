module Multigraph = Mgraph.Multigraph
module Ec = Coloring.Edge_coloring

let round_bound inst =
  let d =
    Split_graph.split_degree_bound (Instance.graph inst)
      ~caps:(Instance.caps inst)
  in
  max 1 (3 * d / 2)

let t_split = Probes.timer "saia.split"
let t_shannon = Probes.timer "saia.shannon"

let schedule ?rng inst =
  let g = Instance.graph inst in
  if Multigraph.n_edges g = 0 then Schedule.of_rounds [||]
  else begin
    let sg =
      Probes.time t_split (fun () ->
          Split_graph.split g ~caps:(Instance.caps inst))
    in
    let ec = Probes.time t_shannon (fun () -> Coloring.Shannon.color ?rng sg) in
    (* split edge ids coincide with original edge ids *)
    let rounds = Array.make (Ec.n_colors ec) [] in
    Multigraph.iter_edges sg (fun { Multigraph.id; _ } ->
        match Ec.color_of ec id with
        | Some c -> rounds.(c) <- id :: rounds.(c)
        | None -> assert false);
    let nonempty = Array.to_list rounds |> List.filter (fun r -> r <> []) in
    Schedule.of_rounds (Array.of_list nonempty)
  end
