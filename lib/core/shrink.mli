(** Greedy instance minimization for failing fuzz cases.

    Given an instance on which a property fails (the fuzz harness
    passes "this solver's schedule does not certify"), {!minimize}
    searches for a smaller instance that still fails, so the printed
    reproducer is readable: delta-debugging-style edge-chunk removal
    (halving window sizes down to single edges), then capacity halving
    (whole instance, then disk by disk), iterated to a local minimum.
    Nodes isolated by edge removal are dropped and ids compacted, so a
    shrunk reproducer round-trips through {!Instance.to_string}.

    The predicate must be deterministic (re-seed any solver run inside
    it): shrinking re-evaluates it on every candidate. *)

(** [minimize ?max_steps ~fails inst] is a locally-minimal instance on
    which [fails] still holds.  Each accepted reduction counts as one
    step; [max_steps] (default 400) bounds the total work.
    @raise Invalid_argument if [fails inst] is already false. *)
val minimize :
  ?max_steps:int -> fails:(Instance.t -> bool) -> Instance.t -> Instance.t
