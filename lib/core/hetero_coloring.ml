module Multigraph = Mgraph.Multigraph
module Ec = Coloring.Edge_coloring
module Recolor = Coloring.Recolor

let log_src =
  Logs.Src.create "migration.hetero"
    ~doc:"Section V general algorithm: phases, flips, escalations"

module Log = (val Logs.src_log log_src : Logs.LOG)

type stats = {
  palette : int;
  lb : int;
  phase2_edges : int;
  escalations : int;
  swaps : int;
}

(* Structured instrumentation (Migration.Instr): phase spans plus the
   counters the per-run [stats] record already tracks, so metrics
   aggregate across pipeline components and repeated runs. *)
let t_phase1 = Probes.timer "hetero.phase1"
let t_phase2 = Probes.timer "hetero.phase2"
let t_refine = Probes.timer "hetero.refine"
let c_swaps = Probes.counter "hetero.lean_swaps"
let c_escalations = Probes.counter "hetero.escalations"
let c_phase2_edges = Probes.counter "hetero.phase2_edges"

(* Lemma 5.3 move: uncolor a colored ("lean") edge adjacent to the
   stuck edge, color the stuck edge, then recolor the lean edge.  All
   or nothing: reverts on failure. *)
let try_lean_swap t ctx ?rng e =
  let g = Ec.graph t in
  let u, v = Multigraph.endpoints g e in
  let neighbors =
    List.filter
      (fun f -> f <> e && Ec.color_of t f <> None)
      (Multigraph.incident g u @ Multigraph.incident g v)
  in
  let rec loop k = function
    | [] -> false
    | _ when k = 0 -> false
    | f :: rest ->
        (* speculative: the failed attempts below may leave flips
           behind that invalidate f's old color, so roll back wholesale *)
        let snapshot = Ec.copy t in
        Ec.unassign t f;
        if
          Recolor.try_color_edge_ctx t ctx ?rng e
          && Recolor.try_color_edge_ctx t ctx ?rng f
        then true
        else begin
          Ec.restore ~snapshot t;
          loop (k - 1) rest
        end
  in
  loop 16 neighbors

(* Edge order heuristic: hardest first — endpoints with the largest
   degree-to-capacity ratio get first pick of the palette. *)
let edge_order inst =
  let g = Instance.graph inst in
  let weight e =
    let u, v = Multigraph.endpoints g e in
    Instance.degree_ratio inst u + Instance.degree_ratio inst v
  in
  let keyed = Array.init (Multigraph.n_edges g) (fun e -> (weight e, e)) in
  (* descending weight, ties by ascending edge id — the order the old
     stable list sort produced; a total order, so sort instability
     cannot show *)
  Array.sort
    (fun ((aw : int), (ae : int)) (bw, be) ->
      if bw <> aw then compare bw aw else compare ae be)
    keyed;
  Array.map snd keyed

let phase1 t ctx ?rng order =
  let stuck = ref [] in
  Array.iter
    (fun e ->
      if not (Recolor.try_color_edge_ctx t ctx ?rng ~flip_attempts:48 e) then
        stuck := e :: !stuck)
    order;
  (* retry passes: earlier flips keep reshaping the landscape *)
  let rec retry passes stuck =
    if passes = 0 || stuck = [] then stuck
    else
      retry (passes - 1)
        (List.filter
           (fun e ->
             not (Recolor.try_color_edge_ctx t ctx ?rng ~flip_attempts:48 e))
           stuck)
  in
  retry 2 (List.rev !stuck)

(* Phase 2: color the residual simple graph G0 with fresh colors via
   node splitting + Vizing (Section V-C3). *)
let phase2 t inst g0_edges =
  if g0_edges <> [] then begin
    let g = Instance.graph inst in
    let keep = Hashtbl.create 16 in
    List.iter (fun e -> Hashtbl.add keep e ()) g0_edges;
    let g0, mapping = Multigraph.sub g (Hashtbl.mem keep) in
    let sg0 = Split_graph.split g0 ~caps:(Instance.caps inst) in
    let vc = Coloring.Vizing.color sg0 in
    let base = Ec.n_colors t in
    let needed = Ec.n_colors vc in
    for _ = 1 to needed do
      ignore (Ec.add_color t)
    done;
    Multigraph.iter_edges sg0 (fun { Multigraph.id; _ } ->
        match Ec.color_of vc id with
        | Some c -> Ec.assign t mapping.(id) (base + c)
        | None -> assert false)
  end

let color ?rng inst =
  let g = Instance.graph inst in
  (* start from the strongest certified lower bound: any smaller palette
     is provably infeasible, so escalations below lb would be wasted *)
  let lb = Lower_bounds.lower_bound ?rng inst in
  let q0 = max 1 lb in
  let t = Ec.create g ~cap:(Instance.cap inst) ~colors:q0 in
  (* one walk scratch for the whole run: phase 1, the retry passes and
     the lean swaps all share it (it carries no cross-call state) *)
  let ctx = Recolor.make_ctx t in
  let swaps = ref 0 and escalations = ref 0 in
  Log.debug (fun m ->
      m "start: %d items, %d disks, palette %d (lb1 %d, lb %d)"
        (Instance.n_items inst) (Instance.n_disks inst) q0
        (Lower_bounds.lb1 inst) lb);
  let stuck =
    Probes.time t_phase1 (fun () -> phase1 t ctx ?rng (edge_order inst))
  in
  Log.debug (fun m -> m "phase 1 left %d stuck edges" (List.length stuck));
  (* lean-edge moves on the survivors *)
  let stuck =
    List.filter
      (fun e ->
        if try_lean_swap t ctx ?rng e then begin
          incr swaps;
          Probes.bump c_swaps;
          false
        end
        else true)
      stuck
  in
  (* G0 must stay simple (no two residual edges in parallel); parallel
     survivors trigger the witness escalation instead *)
  let seen_pairs = Hashtbl.create 16 in
  let g0 =
    List.filter
      (fun e ->
        let u, v = Multigraph.endpoints g e in
        let key = if u <= v then (u, v) else (v, u) in
        if Hashtbl.mem seen_pairs key then begin
          incr escalations;
          Probes.bump c_escalations;
          let c = Ec.add_color t in
          Ec.assign t e c;
          false
        end
        else begin
          Hashtbl.add seen_pairs key ();
          true
        end)
      stuck
  in
  Log.debug (fun m ->
      m "after lean swaps: %d edges to G0, %d escalations, %d swaps"
        (List.length g0) !escalations !swaps);
  Probes.bump ~by:(List.length g0) c_phase2_edges;
  Probes.time t_phase2 (fun () -> phase2 t inst g0);
  (* drop any colors that ended up unused before reporting the palette *)
  let used = Array.make (Ec.n_colors t) false in
  Multigraph.iter_edges g (fun { Multigraph.id; _ } ->
      match Ec.color_of t id with
      | Some c -> used.(c) <- true
      | None -> assert false);
  let palette = Array.fold_left (fun acc u -> if u then acc + 1 else acc) 0 used in
  let stats =
    {
      palette;
      lb;
      phase2_edges = List.length g0;
      escalations = !escalations;
      swaps = !swaps;
    }
  in
  (t, stats)

let schedule_stats ?rng inst =
  let t, stats = color ?rng inst in
  let sched = Schedule.of_coloring t in
  (* a palette above the certified bound sometimes carries slack the
     witness escalations left behind; the refine post-pass dissolves
     such rounds when possible (never worse, validated move by move) *)
  if Schedule.n_rounds sched > stats.lb then begin
    let sched', r = Probes.time t_refine (fun () -> Refine.refine inst sched) in
    if r.Refine.rounds_after < r.Refine.rounds_before then begin
      Log.debug (fun m ->
          m "refine reclaimed %d round(s)"
            (r.Refine.rounds_before - r.Refine.rounds_after));
      ({ stats with palette = Schedule.n_rounds sched' } |> fun stats ->
       (sched', stats))
    end
    else (sched, stats)
  end
  else (sched, stats)

let schedule ?rng inst = fst (schedule_stats ?rng inst)
