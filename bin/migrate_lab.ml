(* migrate-lab — parameter sweeps with CSV output.

   Companion to the interactive `migrate` CLI: runs a named sweep over
   instance families and writes one CSV per sweep, for plotting or
   regression tracking.  Sweeps:

     approx    rounds vs lower bound as instances scale (Theorem 5.1)
     runtime   planning seconds vs instance size
     caps      round count vs a uniform capacity multiplier
     speedup   Figure 2's time vs M for c = 1 and c = 2

   Usage:  dune exec bin/migrate_lab.exe -- [--out DIR] [sweep ...]   *)

module M = Migration

let rng_of seed = Random.State.make [| seed; 0x1ab |]

let write_csv dir name header rows =
  let path = Filename.concat dir (name ^ ".csv") in
  let oc = open_out path in
  output_string oc (String.concat "," header);
  output_char oc '\n';
  List.iter
    (fun row ->
      output_string oc (String.concat "," row);
      output_char oc '\n')
    rows;
  close_out oc;
  Printf.printf "wrote %s (%d rows)\n%!" path (List.length rows)

(* ------------------------------------------------------------------ *)

let sweep_approx dir =
  let rows = ref [] in
  List.iter
    (fun (n, m) ->
      for seed = 1 to 5 do
        let rng = rng_of ((n * 131) + seed) in
        let g = Mgraph.Graph_gen.gnm rng ~n ~m in
        let inst = M.Instance.random_caps rng g ~choices:[ 1; 2; 3; 5 ] in
        let sched, stats = M.Hetero_coloring.schedule_stats ~rng inst in
        rows :=
          [
            string_of_int n;
            string_of_int m;
            string_of_int seed;
            string_of_int stats.M.Hetero_coloring.lb;
            string_of_int (M.Schedule.n_rounds sched);
            string_of_int stats.M.Hetero_coloring.phase2_edges;
            string_of_int stats.M.Hetero_coloring.escalations;
          ]
          :: !rows
      done)
    [ (8, 40); (16, 160); (32, 640); (48, 1500); (64, 3000) ];
  write_csv dir "approx"
    [ "disks"; "items"; "seed"; "lower_bound"; "rounds"; "g0_edges"; "escalations" ]
    (List.rev !rows)

let sweep_runtime dir =
  let rows = ref [] in
  List.iter
    (fun (n, m) ->
      let rng = rng_of (n + m) in
      let g = Mgraph.Graph_gen.gnm rng ~n ~m in
      let mixed = M.Instance.random_caps rng g ~choices:[ 1; 2; 3 ] in
      let even = M.Instance.random_caps rng g ~choices:[ 2; 4 ] in
      let time f =
        let t0 = Sys.time () in
        ignore (f ());
        Sys.time () -. t0
      in
      rows :=
        [
          string_of_int n;
          string_of_int m;
          Printf.sprintf "%.4f"
            (time (fun () -> M.Hetero_coloring.schedule ~rng:(rng_of 1) mixed));
          Printf.sprintf "%.4f" (time (fun () -> M.Even_optimal.schedule even));
          Printf.sprintf "%.4f"
            (time (fun () -> M.Saia.schedule ~rng:(rng_of 2) mixed));
        ]
        :: !rows)
    [ (16, 200); (32, 800); (64, 3000); (128, 10000) ];
  write_csv dir "runtime"
    [ "disks"; "items"; "hetero_s"; "even_opt_s"; "saia_s" ]
    (List.rev !rows)

let sweep_caps dir =
  (* fixed transfer graph; how do rounds shrink as every disk gets
     more parallel streams? *)
  let rng = rng_of 77 in
  let g = Mgraph.Graph_gen.power_law rng ~n:24 ~m:800 in
  let rows = ref [] in
  List.iter
    (fun cap ->
      let inst = M.Instance.uniform g ~cap in
      let sched = M.plan ~rng:(rng_of cap) M.Auto inst in
      rows :=
        [
          string_of_int cap;
          string_of_int (M.Lower_bounds.lower_bound ~rng:(rng_of 3) inst);
          string_of_int (M.Schedule.n_rounds sched);
        ]
        :: !rows)
    [ 1; 2; 3; 4; 6; 8; 12; 16 ];
  write_csv dir "caps" [ "cap"; "lower_bound"; "rounds" ] (List.rev !rows)

let sweep_speedup dir =
  let rows = ref [] in
  List.iter
    (fun m ->
      let g = Mgraph.Graph_gen.triangle_stack m in
      let time cap =
        let inst = M.Instance.uniform g ~cap in
        let sched = M.plan ~rng:(rng_of m) M.Auto inst in
        let disks = Array.init 3 (fun id -> Storsim.Disk.make ~id ~cap ()) in
        let job =
          {
            Storsim.Cluster.instance = inst;
            items = Array.init (3 * m) Fun.id;
            sources =
              Array.init (3 * m) (fun e ->
                  fst (Mgraph.Multigraph.endpoints g e));
            targets =
              Array.init (3 * m) (fun e ->
                  snd (Mgraph.Multigraph.endpoints g e));
          }
        in
        Storsim.Bandwidth.schedule_duration ~disks job sched
      in
      rows :=
        [
          string_of_int m;
          Printf.sprintf "%.1f" (time 1);
          Printf.sprintf "%.1f" (time 2);
        ]
        :: !rows)
    [ 1; 2; 4; 8; 16; 32 ];
  write_csv dir "speedup" [ "M"; "c1_time"; "c2_time" ] (List.rev !rows)

(* ------------------------------------------------------------------ *)

let sweeps =
  [
    ("approx", sweep_approx);
    ("runtime", sweep_runtime);
    ("caps", sweep_caps);
    ("speedup", sweep_speedup);
  ]

let () =
  let out = ref "." in
  let selected = ref [] in
  let rec parse = function
    | [] -> ()
    | "--out" :: dir :: rest ->
        out := dir;
        parse rest
    | name :: rest ->
        selected := name :: !selected;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let selected =
    if !selected = [] then List.map fst sweeps else List.rev !selected
  in
  if not (Sys.file_exists !out) then Sys.mkdir !out 0o755;
  List.iter
    (fun name ->
      match List.assoc_opt name sweeps with
      | Some f -> f !out
      | None ->
          Printf.eprintf "unknown sweep %S; available: %s\n" name
            (String.concat " " (List.map fst sweeps));
          exit 2)
    selected
