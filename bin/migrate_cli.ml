(* migrate — command-line front end for the heterogeneous data
   migration library.

   Subcommands:
     generate   write a random migration instance to stdout/file
     bounds     print the lower bounds of an instance
     plan       compute and print a migration schedule
     compare    run every algorithm on an instance and tabulate
     simulate   run a full cluster scenario through the simulator

   Instances use the text format of [Migration.Instance.to_string]:
   "n m" header, a line of n capacities, then m "src dst" edge lines. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* shared helpers *)

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  let doc = "Enable debug logging of the planners and simulator." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_instance path =
  let contents =
    match path with
    | "-" ->
        let buf = Buffer.create 4096 in
        (try
           while true do
             Buffer.add_channel buf stdin 1
           done
         with End_of_file -> ());
        Buffer.contents buf
    | path -> (
        try read_file path
        with Sys_error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 2)
  in
  try Migration.Instance.of_string contents
  with Failure msg | Invalid_argument msg ->
    Printf.eprintf "error: not a valid instance: %s\n" msg;
    exit 2

let rng_of_seed seed = Random.State.make [| seed; 0xda7a |]

let seed_arg =
  let doc = "Random seed (reproducible runs)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for parallel solving (default: the machine's \
     recommended domain count).  Output is bit-identical for every \
     value; 1 runs fully sequential with no domains spawned."
  in
  Arg.(
    value
    & opt int (Exec.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let instance_arg =
  let doc = "Instance file ('-' for stdin)." in
  Arg.(value & pos 0 string "-" & info [] ~docv:"INSTANCE" ~doc)

(* generated from [all_algorithms], so it cannot go stale *)
let algorithm_names =
  List.map Migration.algorithm_to_string Migration.all_algorithms

let algorithm_conv =
  let parse s =
    match Migration.algorithm_of_string s with
    | Some a -> Ok a
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown algorithm %S (%s)" s
               (String.concat "|" algorithm_names)))
  in
  Arg.conv (parse, fun ppf a -> Format.pp_print_string ppf (Migration.algorithm_to_string a))

let algorithm_arg =
  let doc =
    Printf.sprintf "Scheduling algorithm: %s."
      (String.concat ", " algorithm_names)
  in
  Arg.(value & opt algorithm_conv Migration.Auto & info [ "a"; "algorithm" ] ~docv:"ALG" ~doc)

(* Structured instrumentation (Migration.Instr): reset before planning,
   report after.  Counters are registered at module load, so the JSON
   key set is stable run to run (zero, never missing). *)
let metrics_arg =
  let doc = "Print the planner metrics table (counters and phase timings)." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let metrics_json_arg =
  let doc = "Print the planner metrics as a single JSON object." in
  Arg.(value & flag & info [ "metrics-json" ] ~doc)

let report_metrics ~metrics ~metrics_json =
  let snap = Migration.Instr.snapshot () in
  if metrics then Format.printf "@.%a@." Migration.Instr.pp_table snap;
  if metrics_json then print_endline (Migration.Instr.to_json snap)

(* ------------------------------------------------------------------ *)
(* generate *)

(* a proper converter so a typo'd family name fails at parse time and
   the error lists every valid family *)
let family_conv =
  let parse s =
    match Gen.family_of_string s with
    | Some f -> Ok f
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown family %S (expected one of %s)" s
               (String.concat "|" Gen.names)))
  in
  Arg.conv (parse, fun ppf f -> Format.pp_print_string ppf f.Gen.name)

let generate kind family size n m caps seed =
  let inst =
    match family with
    | Some fam -> Gen.instance fam ~seed ~size
    | None ->
        let rng = rng_of_seed seed in
        let g =
          match kind with
          | "gnm" -> Mgraph.Graph_gen.gnm rng ~n ~m
          | "power-law" -> Mgraph.Graph_gen.power_law rng ~n ~m
          | "clustered" ->
              let k = max 2 (n / 8) in
              Mgraph.Graph_gen.clustered rng ~k ~size:(max 2 (n / k))
                ~intra:(m / (k + 1)) ~inter:(m / (k + 1))
          | "triangle" -> Mgraph.Graph_gen.triangle_stack (max 1 (m / 3))
          | "fig1" -> Mgraph.Graph_gen.example_fig1 ()
          | other ->
              Printf.eprintf "unknown kind %S\n" other;
              exit 2
        in
        Migration.Instance.random_caps rng g ~choices:caps
  in
  print_string (Migration.Instance.to_string inst)

let size_arg =
  let doc = "Size parameter of a fuzz family (scales disks and items)." in
  Arg.(value & opt int 12 & info [ "size" ] ~docv:"SIZE" ~doc)

let family_arg =
  (* the list is generated, not typed out, so it cannot go stale when
     a family is added *)
  let doc =
    Printf.sprintf
      "Fuzz-family generator (%s); overrides $(b,--kind).  The (family, \
       seed, size) triple reproduces the exact instance a fuzz failure \
       names."
      (String.concat ", " Gen.names)
  in
  Arg.(
    value & opt (some family_conv) None & info [ "family" ] ~docv:"FAMILY" ~doc)

let generate_cmd =
  let kind =
    let doc = "Graph family: gnm, power-law, clustered, triangle, fig1." in
    Arg.(value & opt string "gnm" & info [ "kind" ] ~docv:"KIND" ~doc)
  in
  let n =
    let doc = "Number of disks." in
    Arg.(value & opt int 16 & info [ "disks" ] ~docv:"N" ~doc)
  in
  let m =
    let doc = "Number of items (edges)." in
    Arg.(value & opt int 100 & info [ "items" ] ~docv:"M" ~doc)
  in
  let caps =
    let doc = "Transfer-constraint menu, sampled per disk." in
    Arg.(value & opt (list int) [ 1; 2; 4 ] & info [ "caps" ] ~docv:"C1,C2,..." ~doc)
  in
  let doc = "Generate a random migration instance." in
  Cmd.v (Cmd.info "generate" ~doc)
    Term.(
      const generate $ kind $ family_arg $ size_arg $ n $ m $ caps $ seed_arg)

(* ------------------------------------------------------------------ *)
(* bounds *)

let bounds path seed =
  let inst = read_instance path in
  let rng = rng_of_seed seed in
  Printf.printf "disks:       %d\n" (Migration.Instance.n_disks inst);
  Printf.printf "items:       %d\n" (Migration.Instance.n_items inst);
  Printf.printf "LB1:         %d\n" (Migration.Lower_bounds.lb1 inst);
  Printf.printf "LB2 (gamma): %d\n" (Migration.Lower_bounds.lb2 ~rng inst);
  Printf.printf "lower bound: %d\n" (Migration.Lower_bounds.lower_bound ~rng inst)

let bounds_cmd =
  let doc = "Print the paper's lower bounds for an instance." in
  Cmd.v (Cmd.info "bounds" ~doc) Term.(const bounds $ instance_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* plan *)

let plan path alg objective seed jobs quiet save metrics metrics_json verbose =
  setup_logs verbose;
  let inst = read_instance path in
  let rng = rng_of_seed seed in
  Migration.Instr.reset ();
  let sched = Migration.plan ~rng ~jobs alg inst in
  (match Migration.Schedule.validate inst sched with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "internal error: invalid schedule: %s\n" msg;
      exit 1);
  (* group-ct: permute rounds so groups complete in priority order —
     the makespan (and hence every line below) is unchanged *)
  let sched =
    match objective with
    | `Makespan -> sched
    | `Group_ct -> Migration.Objective.reorder inst sched
  in
  Printf.printf "algorithm:   %s\n" (Migration.algorithm_to_string alg);
  Printf.printf "objective:   %s\n"
    (match objective with `Makespan -> "makespan" | `Group_ct -> "group-ct");
  Printf.printf "rounds:      %d\n" (Migration.Schedule.n_rounds sched);
  Printf.printf "lower bound: %d\n"
    (Migration.Lower_bounds.lower_bound ~rng inst);
  Printf.printf "utilization: %.2f\n"
    (Migration.Schedule.utilization inst sched);
  (match objective with
  | `Makespan -> ()
  | `Group_ct ->
      let module O = Migration.Objective in
      let completions = O.completion_rounds inst sched in
      Array.iter
        (fun g ->
          Printf.printf "group %d:     w=%d C=%d\n" g
            (Migration.Instance.weight inst g)
            completions.(g))
        (O.priority_order inst);
      Printf.printf "weighted sum: %d\n" (O.weighted_sum inst sched);
      let p50, p99 = O.completion_percentiles inst sched in
      Printf.printf "completion:  p50=%d p99=%d rounds\n" p50 p99;
      O.observe inst sched;
      (* audit our own claim with the independent certifier, exactly
         as the fuzz loop would *)
      let claim =
        O.claim
          ~solver:(Migration.algorithm_to_string alg)
          ~reordered:true inst sched
      in
      let v = Migration.Certify.check_sla inst sched claim in
      Format.printf "%a@." Migration.Certify.pp_sla v;
      if not (Migration.Certify.sla_ok v) then exit 1);
  (match save with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Migration.Schedule.to_string sched);
      close_out oc;
      Printf.printf "saved to %s\n" path);
  if not quiet then Format.printf "%a@." Migration.Schedule.pp sched;
  report_metrics ~metrics ~metrics_json

let objective_arg =
  let doc =
    "Planning objective: $(b,makespan) (the paper's rounds-to-finish) or \
     $(b,group-ct) (SLA view: apply the priority reordering post-pass, \
     report per-group completion rounds, the weighted sum w_g*C_g and \
     p50/p99, and audit the claim with the independent SLA certifier)."
  in
  Arg.(
    value
    & opt (enum [ ("makespan", `Makespan); ("group-ct", `Group_ct) ]) `Makespan
    & info [ "objective" ] ~docv:"OBJ" ~doc)

let plan_cmd =
  let quiet =
    let doc = "Suppress the round-by-round listing." in
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc)
  in
  let save =
    let doc = "Write the schedule to a file (see the 'check' command)." in
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)
  in
  let doc = "Compute a migration schedule for an instance." in
  Cmd.v (Cmd.info "plan" ~doc)
    Term.(
      const plan $ instance_arg $ algorithm_arg $ objective_arg $ seed_arg
      $ jobs_arg $ quiet $ save $ metrics_arg $ metrics_json_arg $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* compare *)

let compare_algs path seed metrics metrics_json =
  let inst = read_instance path in
  let rng () = rng_of_seed seed in
  Migration.Instr.reset ();
  let lb = Migration.Lower_bounds.lower_bound ~rng:(rng ()) inst in
  Printf.printf "%d disks, %d items, lower bound %d\n\n"
    (Migration.Instance.n_disks inst)
    (Migration.Instance.n_items inst)
    lb;
  Printf.printf "%-10s %8s %8s %12s\n" "algorithm" "rounds" "vs LB" "utilization";
  List.iter
    (fun alg ->
      match
        if alg = Migration.Even_opt && not (Migration.Instance.all_caps_even inst)
        then None
        else Some (Migration.plan ~rng:(rng ()) alg inst)
      with
      | None -> Printf.printf "%-10s %8s\n" (Migration.algorithm_to_string alg) "n/a"
      | Some sched ->
          let r = Migration.Schedule.n_rounds sched in
          Printf.printf "%-10s %8d %7.2fx %12.2f\n"
            (Migration.algorithm_to_string alg)
            r
            (if lb = 0 then 1.0 else float_of_int r /. float_of_int lb)
            (Migration.Schedule.utilization inst sched))
    [ Migration.Even_opt; Migration.Hetero; Migration.Saia_split; Migration.Greedy ];
  (* the pipeline run: decompose, pick a solver per component, merge *)
  (match Migration.Pipeline.plan_report ~rng:(rng ()) "auto" inst with
  | None -> ()
  | Some (sched, report) ->
      Printf.printf "\npipeline auto: %d rounds over %d component(s)\n"
        (Migration.Schedule.n_rounds sched)
        report.Migration.Pipeline.components;
      List.iter
        (fun s ->
          Printf.printf
            "  component %d: %d disks, %d items -> %s (%d rounds)\n"
            s.Migration.Pipeline.component s.Migration.Pipeline.n_disks
            s.Migration.Pipeline.n_items s.Migration.Pipeline.solver
            s.Migration.Pipeline.rounds)
        report.Migration.Pipeline.selections);
  report_metrics ~metrics ~metrics_json

let compare_cmd =
  let doc = "Run every algorithm on an instance and tabulate the results." in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(
      const compare_algs $ instance_arg $ seed_arg $ metrics_arg
      $ metrics_json_arg)

(* ------------------------------------------------------------------ *)
(* simulate *)

(* --inject-tamper: corrupt the flight recorder before certification
   (drop the first completed transfer), so the test suite can prove
   the certifier rejects a doctored log and the exit code goes
   non-zero. *)
let tamper_execution (x : Migration.Certify.execution) =
  let rec drop_first = function
    | ({ Migration.Certify.completed = _ :: rest; _ } as r) :: tl ->
        { r with Migration.Certify.completed = rest } :: tl
    | r :: tl -> r :: drop_first tl
    | [] -> []
  in
  { x with Migration.Certify.log = drop_first x.Migration.Certify.log }

(* fault mode: drive the reconfiguration through the closed-loop
   execution engine under an injected fault policy, then certify the
   executed rounds independently *)
let simulate_engine sc ~fault_rate ~crashes ~slows ~seed ~jobs ~trace
    ~inject_tamper ~metrics ~metrics_json =
  let cluster = sc.Workloads.Scenarios.cluster in
  let job =
    Storsim.Cluster.plan_reconfiguration cluster
      ~target:sc.Workloads.Scenarios.target
  in
  let inst = job.Storsim.Cluster.instance in
  (* calamities land inside the fault-free horizon so they actually
     bite; LB1 is a cheap deterministic proxy for it *)
  let horizon = max 1 (Migration.Lower_bounds.lb1 inst) in
  let crash_events, slow_events =
    Storsim.Fault.random_calamities
      (rng_of_seed (seed + 0x0ca1))
      ~n_disks:(Migration.Instance.n_disks inst)
      ~horizon ~crashes ~slowdowns:slows
  in
  let policy =
    Storsim.Fault.engine_policy ~fault_rate ~crashes:crash_events
      ~slowdowns:slow_events ~seed ()
  in
  Migration.Instr.reset ();
  Printf.printf "scenario:  %s\n" sc.Workloads.Scenarios.name;
  Printf.printf "policy:    %s\n" policy.Migration.Engine.policy_name;
  match
    Migration.Engine.run ~rng:(rng_of_seed seed) ~jobs ~policy inst
  with
  | exception Migration.Engine.Plan_rejected msg ->
      Printf.eprintf "error: replan rejected mid-flight: %s\n" msg;
      exit 1
  | o ->
      Format.printf "%a@." Migration.Engine.pp_outcome o;
      if trace then
        print_string
          (Storsim.Trace.render
             (Storsim.Trace.capture_execution
                ~disks:(Storsim.Cluster.disks cluster) job
                o.Migration.Engine.execution));
      let x =
        if inject_tamper then tamper_execution o.Migration.Engine.execution
        else o.Migration.Engine.execution
      in
      let v = Migration.Certify.certify_execution x in
      Format.printf "%a@." Migration.Certify.pp_exec v;
      report_metrics ~metrics ~metrics_json;
      if not (Migration.Certify.exec_ok v) then exit 1

(* distributed mode: fork a coordinator and N worker processes, drive
   the certified plan round by round over the protocol with a durable
   journal in --state-dir, then certify the reconstructed flight log
   AND require it byte-identical to the in-process engine's *)
let parse_kill_spec s =
  let open Distproto.Runner in
  match String.split_on_char ':' s with
  | [ role; point; round ] -> (
      match int_of_string_opt round with
      | None -> None
      | Some kill_round -> (
          let mk kill_role kill_point =
            Some { kill_role; kill_point; kill_round }
          in
          match (role, point) with
          | "coord", "pre-commit" -> mk `Coordinator Coord_pre_commit
          | "coord", "post-commit" -> mk `Coordinator Coord_post_commit
          | w, _ when String.length w > 6 && String.sub w 0 6 = "worker" -> (
              match
                int_of_string_opt (String.sub w 6 (String.length w - 6))
              with
              | Some i when i >= 0 -> (
                  match point with
                  | "pre-round" -> mk (`Worker i) Worker_pre_round
                  | "mid-round" -> mk (`Worker i) Worker_mid_round
                  | "post-report" -> mk (`Worker i) Worker_post_report
                  | _ -> None)
              | Some _ | None -> None)
          | _ -> None))
  | _ -> None

let simulate_distributed sc ~workers ~seed ~state_dir ~kill ~metrics
    ~metrics_json =
  let job =
    Storsim.Cluster.plan_reconfiguration sc.Workloads.Scenarios.cluster
      ~target:sc.Workloads.Scenarios.target
  in
  let inst = job.Storsim.Cluster.instance in
  Migration.Instr.reset ();
  Printf.printf "scenario:  %s\n" sc.Workloads.Scenarios.name;
  Printf.printf "mode:      distributed, %d workers\n" workers;
  match Distproto.Runner.run ?kill ~workers ~seed ~state_dir inst with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2
  | Ok (Distproto.Runner.Interrupted { phase; signal }) ->
      Printf.printf "interrupted: coordinator killed (%s)\n"
        (if signal = Sys.sigkill then "SIGKILL"
         else Printf.sprintf "signal %d" signal);
      Printf.printf "journal:   %s\n" (Distproto.Journal.phase_to_string phase);
      Printf.printf "resume:    re-run the same command to continue\n";
      exit 137
  | Ok (Distproto.Runner.Completed o) ->
      Printf.printf "rounds:    %d committed, %d skipped (already durable)%s\n"
        o.Distproto.Runner.rounds o.Distproto.Runner.skipped
        (if o.Distproto.Runner.resumed then ", resumed from journal" else "");
      Printf.printf "workers:   %d, respawns: %d\n" o.Distproto.Runner.workers
        o.Distproto.Runner.respawns;
      let v =
        Migration.Certify.certify_execution o.Distproto.Runner.execution
      in
      Format.printf "%a@." Migration.Certify.pp_exec v;
      let reference =
        Migration.Engine.run
          ~rng:(Distproto.Runner.plan_rng seed)
          ~policy:Migration.Engine.no_faults inst
      in
      let identical =
        Migration.Certify.execution_to_string o.Distproto.Runner.execution
        = Migration.Certify.execution_to_string
            reference.Migration.Engine.execution
      in
      Printf.printf "flight log identical to in-process engine: %s\n"
        (if identical then "yes" else "NO");
      report_metrics ~metrics ~metrics_json;
      if (not (Migration.Certify.exec_ok v)) || not identical then exit 1

let simulate scenario n_disks n_items alg seed jobs verbose trace fault_rate
    crashes slows inject_tamper distributed state_dir kill_at metrics
    metrics_json =
  setup_logs verbose;
  if fault_rate < 0.0 || fault_rate >= 1.0 then begin
    Printf.eprintf "error: --fault-rate must be in [0, 1)\n";
    exit 2
  end;
  if crashes < 0 || slows < 0 then begin
    Printf.eprintf "error: --crash/--slow counts must be >= 0\n";
    exit 2
  end;
  if distributed = None && (state_dir <> None || kill_at <> None) then begin
    Printf.eprintf
      "error: --state-dir/--kill-at only make sense with --distributed\n";
    exit 2
  end;
  (match distributed with
  | Some n when n < 1 ->
      Printf.eprintf "error: --distributed needs at least 1 worker\n";
      exit 2
  | Some _
    when fault_rate > 0.0 || crashes > 0 || slows > 0 || inject_tamper ->
      Printf.eprintf
        "error: --distributed executes fault-free; fault options are not \
         supported\n";
      exit 2
  | Some _ | None -> ());
  let rng = rng_of_seed seed in
  let sc =
    match scenario with
    | "rebalance" -> Workloads.Scenarios.rebalance rng ~n_disks ~n_items ()
    | "add" ->
        Workloads.Scenarios.disk_addition rng ~n_old:(max 1 (n_disks * 3 / 4))
          ~n_new:(max 1 (n_disks / 4)) ~n_items ()
    | "remove" ->
        Workloads.Scenarios.disk_removal rng ~n_disks
          ~n_remove:(max 1 (n_disks / 4)) ~n_items ()
    | "failure" ->
        Workloads.Scenarios.failure_recovery rng ~n_disks ~failed:0 ~n_items ()
    | other ->
        Printf.eprintf "unknown scenario %S (rebalance|add|remove|failure)\n" other;
        exit 2
  in
  match distributed with
  | Some workers ->
      let state_dir =
        match state_dir with
        | Some d -> d
        | None ->
            Printf.eprintf "error: --distributed requires --state-dir\n";
            exit 2
      in
      let kill =
        match kill_at with
        | None -> None
        | Some spec -> (
            match parse_kill_spec spec with
            | Some k -> Some k
            | None ->
                Printf.eprintf
                  "error: bad --kill-at %S (want \
                   coord:pre-commit|post-commit:K or \
                   worker<i>:pre-round|mid-round|post-report:K)\n"
                  spec;
                exit 2)
      in
      simulate_distributed sc ~workers ~seed ~state_dir ~kill ~metrics
        ~metrics_json
  | None ->
  if fault_rate > 0.0 || crashes > 0 || slows > 0 || inject_tamper then
    simulate_engine sc ~fault_rate ~crashes ~slows ~seed ~jobs ~trace
      ~inject_tamper ~metrics ~metrics_json
  else begin
    (if trace then begin
       let job =
         Storsim.Cluster.plan_reconfiguration sc.Workloads.Scenarios.cluster
           ~target:sc.Workloads.Scenarios.target
       in
       let sched =
         Migration.plan ~rng:(rng_of_seed seed) alg job.Storsim.Cluster.instance
       in
       print_string
         (Storsim.Trace.render
            (Storsim.Trace.capture
               ~disks:(Storsim.Cluster.disks sc.Workloads.Scenarios.cluster)
               job sched))
     end);
    let report =
      Storsim.Simulator.run sc.Workloads.Scenarios.cluster
        ~target:sc.Workloads.Scenarios.target
        ~plan:(Migration.plan ~rng:(rng_of_seed seed) alg)
    in
    Printf.printf "scenario:  %s\n" sc.Workloads.Scenarios.name;
    Printf.printf "algorithm: %s\n" (Migration.algorithm_to_string alg);
    Format.printf "%a@." Storsim.Simulator.pp_report report;
    report_metrics ~metrics ~metrics_json
  end

let simulate_cmd =
  let scenario =
    let doc = "Scenario: rebalance, add, remove or failure." in
    Arg.(value & pos 0 string "rebalance" & info [] ~docv:"SCENARIO" ~doc)
  in
  let n_disks =
    let doc = "Number of disks." in
    Arg.(value & opt int 12 & info [ "disks" ] ~docv:"N" ~doc)
  in
  let n_items =
    let doc = "Number of items." in
    Arg.(value & opt int 400 & info [ "items" ] ~docv:"M" ~doc)
  in
  let trace =
    let doc =
      "Print a per-disk Gantt trace (of the plan, or of the executed rounds \
       in fault mode) first."
    in
    Arg.(value & flag & info [ "trace" ] ~doc)
  in
  let fault_rate =
    let doc =
      "Per-transfer failure probability in [0, 1).  Any fault option \
       switches the command into engine mode: the closed-loop \
       simulate/detect/re-plan executor drives the migration, and every \
       executed round is independently certified (non-zero exit when \
       certification fails)."
    in
    Arg.(value & opt float 0.0 & info [ "fault-rate" ] ~docv:"P" ~doc)
  in
  let crashes =
    let doc = "Disks to crash permanently at seeded random rounds." in
    Arg.(value & opt int 0 & info [ "crash" ] ~docv:"N" ~doc)
  in
  let slows =
    let doc = "Disks to degrade (transfer constraint halved) at seeded rounds." in
    Arg.(value & opt int 0 & info [ "slow" ] ~docv:"N" ~doc)
  in
  let inject_tamper =
    let doc =
      "Corrupt the execution log before certification (testing hook: proves \
       the certifier catches a doctored log and exits non-zero)."
    in
    Arg.(value & flag & info [ "inject-tamper" ] ~doc)
  in
  let distributed =
    let doc =
      "Execute the certified plan across $(docv) worker processes under a \
       durable coordinator: rounds are sharded by disk range, committed to \
       an fsync'd journal in $(b,--state-dir), and the run survives \
       $(b,kill -9) of any worker (respawned in-flight) or of the \
       coordinator (re-run the command to resume).  The reconstructed \
       flight log must certify and byte-match the in-process engine's."
    in
    Arg.(
      value & opt (some int) None & info [ "distributed" ] ~docv:"N" ~doc)
  in
  let state_dir =
    let doc =
      "Directory holding the distributed run's journal and metrics \
       (created if missing; required with $(b,--distributed))."
    in
    Arg.(
      value & opt (some string) None & info [ "state-dir" ] ~docv:"DIR" ~doc)
  in
  let kill_at =
    let doc =
      "Crash-injection script (testing hook): SIGKILL the named process at \
       a phase transition of round K.  Formats: \
       $(b,coord:pre-commit:K), $(b,coord:post-commit:K), \
       $(b,worker<i>:pre-round:K), $(b,worker<i>:mid-round:K), \
       $(b,worker<i>:post-report:K).  One-shot: respawns and resumes do \
       not re-arm it."
    in
    Arg.(
      value & opt (some string) None & info [ "kill-at" ] ~docv:"SPEC" ~doc)
  in
  let doc =
    "Run a cluster scenario end-to-end through the simulator, with \
     $(b,--fault-rate)/$(b,--crash)/$(b,--slow) through the fault-tolerant \
     execution engine, or with $(b,--distributed) across real coordinator \
     and worker processes with durable, resumable state."
  in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const simulate $ scenario $ n_disks $ n_items $ algorithm_arg $ seed_arg
      $ jobs_arg $ verbose_arg $ trace $ fault_rate $ crashes $ slows
      $ inject_tamper $ distributed $ state_dir $ kill_at $ metrics_arg
      $ metrics_json_arg)

(* ------------------------------------------------------------------ *)
(* exact *)

let exact path budget =
  let inst = read_instance path in
  match Migration.Exact.solve ~node_budget:budget inst with
  | Migration.Exact.Optimal sched ->
      Printf.printf "optimal rounds: %d\n" (Migration.Schedule.n_rounds sched);
      Format.printf "%a@." Migration.Schedule.pp sched
  | Migration.Exact.Gave_up ->
      Printf.printf "gave up (raise --budget, or shrink the instance)\n";
      exit 1

let exact_cmd =
  let budget =
    let doc = "Branch-and-bound node budget." in
    Arg.(value & opt int 2_000_000 & info [ "budget" ] ~docv:"NODES" ~doc)
  in
  let doc = "Prove the optimal round count of a small instance." in
  Cmd.v (Cmd.info "exact" ~doc) Term.(const exact $ instance_arg $ budget)

(* ------------------------------------------------------------------ *)
(* forward *)

let forward path seed =
  let inst = read_instance path in
  let rng = rng_of_seed seed in
  let plan, stats = Migration.Forwarding.plan_with_helpers ~rng inst in
  (match Migration.Forwarding.validate inst plan with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "internal error: invalid plan: %s\n" msg;
      exit 1);
  Printf.printf "direct rounds:    %d\n" stats.Migration.Forwarding.direct_rounds;
  Printf.printf "forwarded rounds: %d\n" stats.Migration.Forwarding.rounds;
  Printf.printf "items relayed:    %d\n" stats.Migration.Forwarding.relayed;
  Printf.printf "direct bound:     %d\n" stats.Migration.Forwarding.bound_before

let forward_cmd =
  let doc =
    "Plan with forwarding through helper disks (beats the direct-transfer \
     Γ bound when idle disks exist)."
  in
  Cmd.v (Cmd.info "forward" ~doc) Term.(const forward $ instance_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* check *)

let check_cmd_impl inst_path sched_path =
  let inst = read_instance inst_path in
  let sched =
    try Migration.Schedule.of_string (read_file sched_path)
    with Failure msg | Invalid_argument msg ->
      Printf.eprintf "error: not a valid schedule: %s\n" msg;
      exit 2
  in
  match Migration.Schedule.validate inst sched with
  | Ok () ->
      Printf.printf "valid: %d rounds, %d items\n"
        (Migration.Schedule.n_rounds sched)
        (Migration.Schedule.n_items sched)
  | Error msg ->
      Printf.printf "INVALID: %s\n" msg;
      exit 1

let check_cmd =
  let sched_path =
    let doc = "Schedule file (as produced by 'plan --save')." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"SCHEDULE" ~doc)
  in
  let doc = "Validate a schedule file against an instance." in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(const check_cmd_impl $ instance_arg $ sched_path)

(* ------------------------------------------------------------------ *)
(* analyze *)

let analyze path seed =
  let inst = read_instance path in
  let rng = rng_of_seed seed in
  Format.printf "%a@." Migration.Diagnostics.pp
    (Migration.Diagnostics.analyze ~rng inst)

let analyze_cmd =
  let doc = "Summarize an instance: structure, bounds, suggested planner." in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const analyze $ instance_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* fuzz *)

(* --inject-broken: a deliberately invalid planner (rounds 0 and 1
   collapsed), used by the test suite to prove the fuzz loop's exit
   code stays non-zero when the violating cell runs on a worker
   domain. *)
let broken_solver =
  {
    Migration.Solver.name = "broken";
    doc = "hetero with rounds 0 and 1 collapsed (deliberately invalid)";
    can_solve = (fun _ -> true);
    solve =
      (fun ctx inst ->
        let sched = Migration.Solver.hetero.Migration.Solver.solve ctx inst in
        let rounds = Migration.Schedule.rounds sched in
        if Array.length rounds < 2 then sched
        else
          Migration.Schedule.of_rounds
            (Array.append
               [| rounds.(0) @ rounds.(1) |]
               (Array.sub rounds 2 (Array.length rounds - 2))));
  }

(* fault-injection fuzzing: run the execution engine over every
   generated instance and certify each execution end to end *)
let fuzz_engine ~families ~count ~seed ~size ~jobs ~fault_rate ~metrics
    ~metrics_json =
  let policy ~inst:_ ~seed =
    Storsim.Fault.engine_policy ~fault_rate ~seed ()
  in
  let report = Gen.Fuzz.run_engine ~size ~jobs ~policy ~families ~count ~seed () in
  Printf.printf
    "engine fuzz: %d families x %d instances, size %d, fault rate %g, seed %d\n\n"
    (List.length families) count size fault_rate seed;
  Printf.printf "%-12s %5s %9s %11s %7s %7s %6s %5s\n" "family" "runs"
    "completed" "quarantined" "replans" "retries" "rounds" "idle";
  List.iter
    (fun (name, (t : Gen.Fuzz.engine_totals)) ->
      Printf.printf "%-12s %5d %9d %11d %7d %7d %6d %5d\n" name
        t.Gen.Fuzz.eng_instances t.Gen.Fuzz.eng_completed
        t.Gen.Fuzz.eng_quarantined t.Gen.Fuzz.eng_replans
        t.Gen.Fuzz.eng_retries t.Gen.Fuzz.eng_rounds
        t.Gen.Fuzz.eng_idle_rounds)
    report.Gen.Fuzz.eng_per_family;
  Printf.printf "\ntotal: %d executions, all certified: %s, %d failures\n"
    report.Gen.Fuzz.eng_totals.Gen.Fuzz.eng_instances
    (if report.Gen.Fuzz.eng_failures = [] then "yes" else "NO")
    (List.length report.Gen.Fuzz.eng_failures);
  List.iter
    (fun (f : Gen.Fuzz.engine_failure) ->
      Printf.printf "\nFAILURE family=%s seed=%d size=%d\n" f.Gen.Fuzz.ef_family
        f.Gen.Fuzz.ef_seed f.Gen.Fuzz.ef_size;
      List.iter (fun m -> Printf.printf "  - %s\n" m) f.Gen.Fuzz.ef_messages;
      Printf.printf
        "  reproduce: migrate generate --family %s --seed %d --size %d > bad.inst\n"
        f.Gen.Fuzz.ef_family f.Gen.Fuzz.ef_seed f.Gen.Fuzz.ef_size)
    report.Gen.Fuzz.eng_failures;
  report_metrics ~metrics ~metrics_json;
  if report.Gen.Fuzz.eng_failures <> [] then exit 1

(* service soak fuzzing: drive the whole streaming daemon over every
   generated instance and certify each concatenated flight log *)
let fuzz_service ~families ~count ~seed ~size ~jobs ~fault_rate ~regress_dir
    ~metrics ~metrics_json =
  let drive ~inst ~seed =
    match Service.soak ~epoch_rounds:4 ~fault_rate ~inst ~seed () with
    | Ok (s : Service.soak_stats) ->
        Ok
          {
            Gen.Fuzz.ss_epochs = s.Service.soak_epochs;
            ss_rounds = s.Service.soak_rounds;
            ss_transfers = s.Service.soak_transfers;
            ss_completed = s.Service.soak_completed;
            ss_abandoned = s.Service.soak_abandoned;
            ss_rejected = s.Service.soak_rejected;
          }
    | Error msgs -> Error msgs
  in
  let report =
    Gen.Fuzz.run_service ~size ~jobs ~drive ~families ~count ~seed ()
  in
  Printf.printf
    "service fuzz: %d families x %d instances, size %d, fault rate %g, seed %d\n\n"
    (List.length families) count size fault_rate seed;
  Printf.printf "%-12s %6s %6s %9s %9s %9s %8s\n" "family" "epochs" "rounds"
    "transfers" "completed" "abandoned" "rejected";
  List.iter
    (fun (name, (t : Gen.Fuzz.service_stats)) ->
      Printf.printf "%-12s %6d %6d %9d %9d %9d %8d\n" name
        t.Gen.Fuzz.ss_epochs t.Gen.Fuzz.ss_rounds t.Gen.Fuzz.ss_transfers
        t.Gen.Fuzz.ss_completed t.Gen.Fuzz.ss_abandoned
        t.Gen.Fuzz.ss_rejected)
    report.Gen.Fuzz.svc_per_family;
  Printf.printf "\ntotal: %d soaks, all certified: %s, %d failures\n"
    report.Gen.Fuzz.svc_instances
    (if report.Gen.Fuzz.svc_failures = [] then "yes" else "NO")
    (List.length report.Gen.Fuzz.svc_failures);
  let regress_dir =
    match regress_dir with
    | Some d -> if Sys.file_exists d then Some d else None
    | None ->
        if Sys.file_exists "data/regressions" then Some "data/regressions"
        else None
  in
  List.iter
    (fun (f : Gen.Fuzz.service_failure) ->
      Printf.printf "\nFAILURE family=%s seed=%d size=%d\n" f.Gen.Fuzz.sf_family
        f.Gen.Fuzz.sf_seed f.Gen.Fuzz.sf_size;
      List.iter (fun m -> Printf.printf "  - %s\n" m) f.Gen.Fuzz.sf_messages;
      Printf.printf
        "  reproduce: migrate generate --family %s --seed %d --size %d > bad.inst\n"
        f.Gen.Fuzz.sf_family f.Gen.Fuzz.sf_seed f.Gen.Fuzz.sf_size;
      let shrunk = f.Gen.Fuzz.sf_shrunk in
      Printf.printf "  shrunk reproducer (%d disks, %d items):\n"
        (Migration.Instance.n_disks shrunk)
        (Migration.Instance.n_items shrunk);
      String.split_on_char '\n' (Migration.Instance.to_string shrunk)
      |> List.iter (fun line -> if line <> "" then Printf.printf "    %s\n" line);
      match regress_dir with
      | None -> ()
      | Some dir ->
          (* test_corpus.ml replays every .inst in the regressions
             corpus through the planners AND a fault-free service soak,
             so the shrunk reproducer becomes a pinned test *)
          let path =
            Filename.concat dir
              (Printf.sprintf "%s_s%d_service.inst" f.Gen.Fuzz.sf_family
                 f.Gen.Fuzz.sf_seed)
          in
          let oc = open_out path in
          output_string oc (Migration.Instance.to_string shrunk);
          close_out oc;
          Printf.printf "  written to %s\n" path)
    report.Gen.Fuzz.svc_failures;
  report_metrics ~metrics ~metrics_json;
  if report.Gen.Fuzz.svc_failures <> [] then exit 1

(* distributed soak fuzzing: run the coordinator/worker runner over
   generated instances with a random scripted kill per cell, resume
   until converged, and require the flight log to certify AND to
   byte-match the in-process engine's *)
let temp_state_dir () =
  let f = Filename.temp_file "migrate_dist_" "" in
  Sys.remove f;
  Unix.mkdir f 0o700;
  f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let fuzz_distributed ~families ~count ~seed ~size ~regress_dir ~metrics
    ~metrics_json =
  let drive ~inst ~seed:iseed =
    let rng = rng_of_seed (iseed lxor 0x0d15) in
    let workers = 1 + Random.State.int rng 3 in
    let kill =
      let open Distproto.Runner in
      let kill_round = Random.State.int rng 4 in
      match Random.State.int rng 5 with
      | 0 ->
          {
            kill_role = `Worker (Random.State.int rng workers);
            kill_point = Worker_pre_round;
            kill_round;
          }
      | 1 ->
          {
            kill_role = `Worker (Random.State.int rng workers);
            kill_point = Worker_mid_round;
            kill_round;
          }
      | 2 ->
          {
            kill_role = `Worker (Random.State.int rng workers);
            kill_point = Worker_post_report;
            kill_round;
          }
      | 3 -> { kill_role = `Coordinator; kill_point = Coord_pre_commit; kill_round }
      | _ ->
          { kill_role = `Coordinator; kill_point = Coord_post_commit; kill_round }
    in
    let reference =
      Migration.Engine.run
        ~rng:(Distproto.Runner.plan_rng iseed)
        ~policy:Migration.Engine.no_faults inst
    in
    let ref_str =
      Migration.Certify.execution_to_string
        reference.Migration.Engine.execution
    in
    let state_dir = temp_state_dir () in
    Fun.protect ~finally:(fun () -> rm_rf state_dir) @@ fun () ->
    let rec converge attempts kill =
      if attempts > 8 then
        Error [ "distributed run did not converge within 8 resumes" ]
      else
        match
          Distproto.Runner.run ?kill ~workers ~seed:iseed ~state_dir inst
        with
        | Error msg -> Error [ msg ]
        | Ok (Distproto.Runner.Interrupted _) ->
            (* kill specs are one-shot: resume without it *)
            converge (attempts + 1) None
        | Ok (Distproto.Runner.Completed o) ->
            let v =
              Migration.Certify.certify_execution o.Distproto.Runner.execution
            in
            let msgs =
              List.map Migration.Certify.exec_violation_to_string
                v.Migration.Certify.exec_violations
            in
            let msgs =
              if
                Migration.Certify.execution_to_string
                  o.Distproto.Runner.execution
                = ref_str
              then msgs
              else msgs @ [ "flight log differs from the in-process engine" ]
            in
            if msgs <> [] then Error msgs
            else
              Ok
                {
                  Gen.Fuzz.dd_runs = attempts + 1;
                  dd_rounds = o.Distproto.Runner.rounds;
                  dd_transfers = Migration.Instance.n_items inst;
                  dd_kills = 1;
                  dd_resumes = attempts;
                }
    in
    converge 0 (Some kill)
  in
  let report = Gen.Fuzz.run_distributed ~size ~drive ~families ~count ~seed () in
  Printf.printf
    "distributed fuzz: %d families x %d instances, size %d, seed %d\n\n"
    (List.length families) count size seed;
  Printf.printf "%-12s %5s %6s %9s %5s %7s\n" "family" "runs" "rounds"
    "transfers" "kills" "resumes";
  List.iter
    (fun (name, (t : Gen.Fuzz.dist_stats)) ->
      Printf.printf "%-12s %5d %6d %9d %5d %7d\n" name t.Gen.Fuzz.dd_runs
        t.Gen.Fuzz.dd_rounds t.Gen.Fuzz.dd_transfers t.Gen.Fuzz.dd_kills
        t.Gen.Fuzz.dd_resumes)
    report.Gen.Fuzz.dist_per_family;
  Printf.printf "\ntotal: %d soaks, all converged & identical: %s, %d failures\n"
    report.Gen.Fuzz.dist_instances
    (if report.Gen.Fuzz.dist_failures = [] then "yes" else "NO")
    (List.length report.Gen.Fuzz.dist_failures);
  let regress_dir =
    match regress_dir with
    | Some d -> if Sys.file_exists d then Some d else None
    | None ->
        if Sys.file_exists "data/regressions" then Some "data/regressions"
        else None
  in
  List.iter
    (fun (f : Gen.Fuzz.dist_failure) ->
      Printf.printf "\nFAILURE family=%s seed=%d size=%d\n" f.Gen.Fuzz.df_family
        f.Gen.Fuzz.df_seed f.Gen.Fuzz.df_size;
      List.iter (fun m -> Printf.printf "  - %s\n" m) f.Gen.Fuzz.df_messages;
      Printf.printf
        "  reproduce: migrate generate --family %s --seed %d --size %d > bad.inst\n"
        f.Gen.Fuzz.df_family f.Gen.Fuzz.df_seed f.Gen.Fuzz.df_size;
      let shrunk = f.Gen.Fuzz.df_shrunk in
      Printf.printf "  shrunk reproducer (%d disks, %d items):\n"
        (Migration.Instance.n_disks shrunk)
        (Migration.Instance.n_items shrunk);
      String.split_on_char '\n' (Migration.Instance.to_string shrunk)
      |> List.iter (fun line -> if line <> "" then Printf.printf "    %s\n" line);
      match regress_dir with
      | None -> ()
      | Some dir ->
          (* test_corpus.ml replays every *_dist.inst through the
             distributed runner and byte-compares against the engine,
             so the shrunk reproducer becomes a pinned test *)
          let path =
            Filename.concat dir
              (Printf.sprintf "%s_s%d_dist.inst" f.Gen.Fuzz.df_family
                 f.Gen.Fuzz.df_seed)
          in
          let oc = open_out path in
          output_string oc (Migration.Instance.to_string shrunk);
          close_out oc;
          Printf.printf "  written to %s\n" path)
    report.Gen.Fuzz.dist_failures;
  report_metrics ~metrics ~metrics_json;
  if report.Gen.Fuzz.dist_failures <> [] then exit 1

let fuzz families count seed size jobs fault_rate service distributed
    inject_broken regress_dir metrics metrics_json =
  if fault_rate < 0.0 || fault_rate >= 1.0 then begin
    Printf.eprintf "error: --fault-rate must be in [0, 1)\n";
    exit 2
  end;
  if distributed && service then begin
    Printf.eprintf "error: --distributed and --service are exclusive\n";
    exit 2
  end;
  let families = match families with [] -> Gen.all | fams -> fams in
  Migration.Instr.reset ();
  if distributed then
    fuzz_distributed ~families ~count ~seed ~size ~regress_dir ~metrics
      ~metrics_json
  else if service then
    fuzz_service ~families ~count ~seed ~size ~jobs ~fault_rate ~regress_dir
      ~metrics ~metrics_json
  else if fault_rate > 0.0 then
    fuzz_engine ~families ~count ~seed ~size ~jobs ~fault_rate ~metrics
      ~metrics_json
  else begin
  if inject_broken then Migration.Solver.register broken_solver;
  let report = Gen.Fuzz.run ~size ~jobs ~families ~count ~seed () in
  Printf.printf "fuzz: %d families x %d instances, size %d, seed %d\n\n"
    (List.length families) count size seed;
  Printf.printf "%-12s %-12s %5s %5s %8s  %s\n" "family" "solver" "runs" "ok"
    "max-gap" "gap histogram";
  List.iter
    (fun (fr : Gen.Fuzz.family_report) ->
      List.iter
        (fun (s : Gen.Fuzz.solver_stats) ->
          Printf.printf "%-12s %-12s %5d %5d %8d  %s\n"
            fr.Gen.Fuzz.family s.Gen.Fuzz.solver s.Gen.Fuzz.runs
            s.Gen.Fuzz.certified s.Gen.Fuzz.max_gap
            (String.concat " "
               (List.map
                  (fun (g, c) -> Printf.sprintf "%d:%d" g c)
                  s.Gen.Fuzz.gaps)))
        fr.Gen.Fuzz.per_solver)
    report.Gen.Fuzz.family_reports;
  Printf.printf "\ntotal: %d instances, %d solver runs, %d failures\n"
    report.Gen.Fuzz.total_instances report.Gen.Fuzz.total_runs
    (List.length report.Gen.Fuzz.failures);
  let regress_dir =
    match regress_dir with
    | Some d -> if Sys.file_exists d then Some d else None
    | None -> if Sys.file_exists "data/regressions" then Some "data/regressions" else None
  in
  List.iter
    (fun (f : Gen.Fuzz.failure) ->
      Printf.printf
        "\nFAILURE family=%s seed=%d size=%d solver=%s\n"
        f.Gen.Fuzz.family f.Gen.Fuzz.seed f.Gen.Fuzz.size f.Gen.Fuzz.solver;
      List.iter (fun m -> Printf.printf "  - %s\n" m) f.Gen.Fuzz.messages;
      Printf.printf
        "  reproduce: migrate generate --family %s --seed %d --size %d | \
         migrate plan -a %s -\n"
        f.Gen.Fuzz.family f.Gen.Fuzz.seed f.Gen.Fuzz.size f.Gen.Fuzz.solver;
      let shrunk = f.Gen.Fuzz.shrunk in
      Printf.printf "  shrunk reproducer (%d disks, %d items):\n"
        (Migration.Instance.n_disks shrunk)
        (Migration.Instance.n_items shrunk);
      String.split_on_char '\n' (Migration.Instance.to_string shrunk)
      |> List.iter (fun line ->
             if line <> "" then Printf.printf "    %s\n" line);
      match regress_dir with
      | None -> ()
      | Some dir ->
          let path =
            Filename.concat dir
              (Printf.sprintf "%s_s%d_%s.inst" f.Gen.Fuzz.family
                 f.Gen.Fuzz.seed f.Gen.Fuzz.solver)
          in
          let oc = open_out path in
          output_string oc (Migration.Instance.to_string shrunk);
          close_out oc;
          Printf.printf "  written to %s\n" path)
    report.Gen.Fuzz.failures;
  report_metrics ~metrics ~metrics_json;
  if report.Gen.Fuzz.failures <> [] then exit 1
  end

let fuzz_cmd =
  let families =
    let doc =
      Printf.sprintf
        "Comma-separated families to fuzz (default: all of %s).  An unknown \
         name is a parse error listing the valid families."
        (String.concat ", " Gen.names)
    in
    Arg.(
      value
      & opt (list family_conv) []
      & info [ "families" ] ~docv:"F1,F2,..." ~doc)
  in
  let count =
    let doc = "Instances per family." in
    Arg.(value & opt int 20 & info [ "count" ] ~docv:"N" ~doc)
  in
  let regress =
    let doc =
      "Directory for shrunk failing reproducers (default: data/regressions \
       when it exists; the regression corpus test_corpus.ml replays it)."
    in
    Arg.(value & opt (some string) None & info [ "regress-dir" ] ~docv:"DIR" ~doc)
  in
  let doc =
    "Differential fuzz loop: generate seeded instances per family, run every \
     applicable planner through the pipeline, certify each schedule \
     independently, cross-check against the exact solver, and shrink any \
     failure to a minimal reproducer."
  in
  let inject_broken =
    let doc =
      "Also register a deliberately broken planner (testing hook: \
       exercises failure reporting and the non-zero exit code)."
    in
    Arg.(value & flag & info [ "inject-broken" ] ~doc)
  in
  let fault_rate =
    let doc =
      "Switch to fault-injection fuzzing: drive the execution engine over \
       every generated instance with this per-transfer failure probability \
       and certify each execution end to end."
    in
    Arg.(value & opt float 0.0 & info [ "fault-rate" ] ~docv:"P" ~doc)
  in
  let service =
    let doc =
      "Switch to service soak fuzzing: drive the full streaming service \
       (admission, epoching, warm re-planning, faulted execution) over every \
       generated instance, certify each concatenated flight log with the \
       service certifier, and shrink failures to minimal reproducers.  \
       Combines with $(b,--fault-rate)."
    in
    Arg.(value & flag & info [ "service" ] ~doc)
  in
  let distributed =
    let doc =
      "Switch to distributed crash-recovery fuzzing: run the \
       coordinator/worker runner over every generated instance with a \
       seeded random kill -9 (role x phase x round), resume until \
       converged, certify the flight log, and require it byte-identical \
       to the in-process engine's.  Failures are shrunk into \
       data/regressions/<family>_s<seed>_dist.inst reproducers."
    in
    Arg.(value & flag & info [ "distributed" ] ~doc)
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const fuzz $ families $ count $ seed_arg $ size_arg $ jobs_arg
      $ fault_rate $ service $ distributed $ inject_broken $ regress
      $ metrics_arg $ metrics_json_arg)

(* ------------------------------------------------------------------ *)
(* serve *)

(* --inject-tamper: corrupt the concatenated flight log before
   certification (testing hook, mirrors --inject-broken above): the
   first completed transfer is duplicated in its round, breaking
   exactly-once; a run with no transfers gets its reported final
   placement flipped instead.  Either way certify_service must reject
   and the exit code goes non-zero. *)
let tamper_execution (x : Migration.Certify.service_execution) =
  let open Migration.Certify in
  let tampered = ref false in
  let epochs =
    List.map
      (fun ep ->
        if !tampered then ep
        else
          let log =
            List.map
              (fun (r : exec_round) ->
                if (not !tampered) && r.completed <> [] then begin
                  tampered := true;
                  { r with completed = List.hd r.completed :: r.completed }
                end
                else r)
              ep.se_log
          in
          { ep with se_log = log })
      x.svc_epochs
  in
  if !tampered then { x with svc_epochs = epochs }
  else { x with svc_final = Array.map (fun d -> d + 1) x.svc_final }

let serve trace_path epoch_rounds fault_rate seed jobs inject_tamper metrics
    metrics_json =
  if epoch_rounds < 1 then begin
    Printf.eprintf "error: --epoch-rounds must be >= 1\n";
    exit 2
  end;
  if fault_rate < 0.0 || fault_rate >= 1.0 then begin
    Printf.eprintf "error: --fault-rate must be in [0, 1)\n";
    exit 2
  end;
  let contents =
    try read_file trace_path
    with Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2
  in
  let lines = String.split_on_char '\n' contents in
  match Service.parse_trace lines with
  | Error msg ->
      Printf.eprintf "error: bad trace: %s\n" msg;
      exit 2
  | Ok (cluster, requests) ->
      Migration.Instr.reset ();
      let policy ~epoch =
        Storsim.Fault.engine_policy ~fault_rate ~seed:((seed * 31) + epoch) ()
      in
      let report =
        Service.run ~jobs ~epoch_rounds ~rng_seed:seed ~policy cluster
          ~requests ()
      in
      Format.printf "%a@.%a@." Service.pp_report report Service.pp_statuses
        report;
      let execution =
        if inject_tamper then tamper_execution report.Service.execution
        else report.Service.execution
      in
      let v = Migration.Certify.certify_service execution in
      Format.printf "%a@." Migration.Certify.pp_service v;
      report_metrics ~metrics ~metrics_json;
      if report.Service.truncated then begin
        Printf.eprintf "error: run truncated with work left\n";
        exit 1
      end;
      if not (Migration.Certify.service_ok v) then exit 1

let serve_cmd =
  let trace =
    let doc =
      "Trace file: an 'init ...' line followed by 'at R ...' trigger lines \
       (see the Service library docs for the format)."
    in
    Arg.(
      required & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let epoch_rounds =
    let doc = "Executed rounds per epoch before re-admitting arrivals." in
    Arg.(value & opt int 16 & info [ "epoch-rounds" ] ~docv:"N" ~doc)
  in
  let fault_rate =
    let doc =
      "Per-transfer failure probability injected into every epoch's \
       execution."
    in
    Arg.(value & opt float 0.0 & info [ "fault-rate" ] ~docv:"P" ~doc)
  in
  let inject_tamper =
    let doc =
      "Corrupt the flight log before certification (testing hook: proves \
       the certifier rejects a tampered log with a non-zero exit)."
    in
    Arg.(value & flag & info [ "inject-tamper" ] ~doc)
  in
  let doc =
    "Run the streaming migration service over a trigger trace: \
     admission-control each trigger, batch arrivals into bounded epochs, \
     warm-replan only dirtied components, execute under the fault policy, \
     and certify the concatenated flight log end to end."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const serve $ trace $ epoch_rounds $ fault_rate $ seed_arg $ jobs_arg
      $ inject_tamper $ metrics_arg $ metrics_json_arg)

(* ------------------------------------------------------------------ *)
(* dot *)

let dot path =
  let inst = read_instance path in
  print_string (Mgraph.Graph_io.to_dot (Migration.Instance.graph inst))

let dot_cmd =
  let doc = "Export the transfer graph as GraphViz dot." in
  Cmd.v (Cmd.info "dot" ~doc) Term.(const dot $ instance_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "heterogeneous data migration planner (ICDCS 2011 reproduction)" in
  let info = Cmd.info "migrate" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd; bounds_cmd; plan_cmd; compare_cmd; simulate_cmd;
            exact_cmd; forward_cmd; check_cmd; dot_cmd; analyze_cmd; fuzz_cmd;
            serve_cmd;
          ]))
