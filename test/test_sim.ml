(* Tests for the storage simulator: Disk, Placement, Cluster,
   Bandwidth (the Figure 2 cost model), Simulator, Fault. *)

module S = Storsim
module M = Migration
open Test_util

let rng () = rng_of_int 2024

(* ------------------------------------------------------------------ *)
(* Disk *)

let test_disk () =
  let d = S.Disk.make ~id:3 ~bandwidth:2.0 ~cap:4 () in
  Alcotest.(check (float 1e-9)) "one stream" 2.0 (S.Disk.stream_rate d ~streams:1);
  Alcotest.(check (float 1e-9)) "four streams" 0.5 (S.Disk.stream_rate d ~streams:4);
  Alcotest.check_raises "bad cap" (Invalid_argument "Disk.make: capacity must be >= 1")
    (fun () -> ignore (S.Disk.make ~id:0 ~cap:0 ()));
  Alcotest.check_raises "bad bw"
    (Invalid_argument "Disk.make: bandwidth must be positive") (fun () ->
      ignore (S.Disk.make ~id:0 ~bandwidth:0.0 ~cap:1 ()))

(* ------------------------------------------------------------------ *)
(* Placement *)

let test_placement () =
  let p = S.Placement.create ~n_items:6 (fun i -> i mod 3) in
  Alcotest.(check int) "disk of" 2 (S.Placement.disk_of p 2);
  Alcotest.(check (list int)) "items on 0" [ 0; 3 ] (S.Placement.items_on p ~disk:0);
  Alcotest.(check (array int)) "load" [| 2; 2; 2 |] (S.Placement.load p ~n_disks:3);
  S.Placement.move p ~item:0 ~target:1;
  Alcotest.(check int) "after move" 1 (S.Placement.disk_of p 0);
  let q = S.Placement.create ~n_items:6 (fun i -> i mod 3) in
  let moves = S.Placement.diff p q in
  Alcotest.(check (list (triple int int int))) "diff" [ (0, 1, 0) ] moves;
  Alcotest.(check bool) "equal after replay" true
    (let p' = S.Placement.copy p in
     List.iter (fun (i, _, d) -> S.Placement.move p' ~item:i ~target:d) moves;
     S.Placement.equal p' q)

(* ------------------------------------------------------------------ *)
(* Cluster *)

let mk_cluster ?(caps = [| 2; 2; 2 |]) ?(bw = fun _ -> 1.0) placement =
  let disks =
    Array.mapi (fun id cap -> S.Disk.make ~id ~bandwidth:(bw id) ~cap ()) caps
  in
  S.Cluster.create ~disks ~placement

let test_cluster_plan () =
  let before = S.Placement.of_array [| 0; 0; 1; 2 |] in
  let target = S.Placement.of_array [| 1; 0; 1; 0 |] in
  let c = mk_cluster before in
  let job = S.Cluster.plan_reconfiguration c ~target in
  let inst = job.S.Cluster.instance in
  Alcotest.(check int) "two moves" 2 (M.Instance.n_items inst);
  (* edge for item 0: 0 -> 1; edge for item 3: 2 -> 0 *)
  let by_item = Hashtbl.create 4 in
  Array.iteri (fun e item -> Hashtbl.add by_item item e) job.S.Cluster.items;
  let e0 = Hashtbl.find by_item 0 and e3 = Hashtbl.find by_item 3 in
  Alcotest.(check (pair int int)) "item 0 edge" (0, 1)
    (job.S.Cluster.sources.(e0), job.S.Cluster.targets.(e0));
  Alcotest.(check (pair int int)) "item 3 edge" (2, 0)
    (job.S.Cluster.sources.(e3), job.S.Cluster.targets.(e3));
  S.Cluster.apply_transfer c job e0;
  Alcotest.(check int) "applied" 1
    (S.Placement.disk_of (S.Cluster.placement c) 0)

let test_cluster_guards () =
  let p = S.Placement.of_array [| 0; 5 |] in
  Alcotest.check_raises "bad placement"
    (Invalid_argument "Cluster.create: placement references unknown disk")
    (fun () -> ignore (mk_cluster p))

(* ------------------------------------------------------------------ *)
(* Bandwidth: the Figure 2 accounting *)

let fig2_job m cap =
  let g = Mgraph.Graph_gen.triangle_stack m in
  let inst = M.Instance.uniform g ~cap in
  let disks = Array.init 3 (fun id -> S.Disk.make ~id ~cap ()) in
  let mg = Mgraph.Multigraph.endpoints g in
  let job =
    {
      S.Cluster.instance = inst;
      items = Array.init (3 * m) Fun.id;
      sources = Array.init (3 * m) (fun e -> fst (mg e));
      targets = Array.init (3 * m) (fun e -> snd (mg e));
    }
  in
  (disks, inst, job)

let test_fig2_homogeneous () =
  (* c = 1: only one edge of the triangle can move per round; 3M rounds
     of duration 1 -> total 3M *)
  let m = 5 in
  let disks, inst, job = fig2_job m 1 in
  let s = M.plan ~rng:(rng ()) M.Hetero inst in
  check_valid_schedule inst s "fig2 c1";
  Alcotest.(check int) "3M rounds" (3 * m) (M.Schedule.n_rounds s);
  Alcotest.(check (float 1e-9)) "3M time" (float_of_int (3 * m))
    (S.Bandwidth.schedule_duration ~disks job s)

let test_fig2_parallel () =
  (* c = 2: M rounds, each moving a full triangle at half bandwidth
     (duration 2) -> total 2M, the paper's improvement *)
  let m = 5 in
  let disks, inst, job = fig2_job m 2 in
  let s = M.plan M.Even_opt inst in
  check_valid_schedule inst s "fig2 c2";
  Alcotest.(check int) "M rounds" m (M.Schedule.n_rounds s);
  Alcotest.(check (float 1e-9)) "2M time" (float_of_int (2 * m))
    (S.Bandwidth.schedule_duration ~disks job s)

let test_round_duration_cases () =
  let disks = Array.init 4 (fun id -> S.Disk.make ~id ~cap:4 ()) in
  Alcotest.(check (float 1e-9)) "empty round" 0.0
    (S.Bandwidth.round_duration ~disks ~transfers:[] ());
  Alcotest.(check (float 1e-9)) "single transfer" 1.0
    (S.Bandwidth.round_duration ~disks ~transfers:[ (0, 1) ] ());
  (* node 0 runs two streams: each at rate 1/2 *)
  Alcotest.(check (float 1e-9)) "fan out" 2.0
    (S.Bandwidth.round_duration ~disks ~transfers:[ (0, 1); (0, 2) ] ());
  (* disjoint transfers stay at full rate *)
  Alcotest.(check (float 1e-9)) "disjoint" 1.0
    (S.Bandwidth.round_duration ~disks ~transfers:[ (0, 1); (2, 3) ] ());
  (* heterogeneous bandwidth: the slow disk dominates *)
  let disks2 =
    [|
      S.Disk.make ~id:0 ~bandwidth:0.5 ~cap:2 ();
      S.Disk.make ~id:1 ~bandwidth:4.0 ~cap:2 ();
    |]
  in
  Alcotest.(check (float 1e-9)) "slow disk dominates" 2.0
    (S.Bandwidth.round_duration ~disks:disks2 ~transfers:[ (0, 1) ] ())

(* ------------------------------------------------------------------ *)
(* Simulator *)

let simulator_reaches_target =
  qtest "simulator: run reaches the target placement" ~count:40
    QCheck2.Gen.(
      let* seed = int_bound 100_000 in
      let* n_disks = int_range 3 10 in
      let* n_items = int_range 1 60 in
      return (seed, n_disks, n_items))
    (fun (seed, n_disks, n_items) ->
      let rng = rng_of_int seed in
      let caps = Array.init n_disks (fun i -> 1 + (i mod 4)) in
      let before =
        S.Placement.create ~n_items (fun _ -> Random.State.int rng n_disks)
      in
      let target =
        S.Placement.create ~n_items (fun _ -> Random.State.int rng n_disks)
      in
      let disks = Array.mapi (fun id cap -> S.Disk.make ~id ~cap ()) caps in
      let c = S.Cluster.create ~disks ~placement:before in
      let report = S.Simulator.run c ~target ~plan:(M.plan ~rng M.Auto) in
      S.Cluster.reached c ~target
      && report.S.Simulator.items_moved
         = List.length (S.Placement.diff before target))

let test_simulator_infeasible_detected () =
  let before = S.Placement.of_array [| 0; 0 |] in
  let target = S.Placement.of_array [| 1; 1 |] in
  let c = mk_cluster ~caps:[| 1; 1 |] before in
  let job = S.Cluster.plan_reconfiguration c ~target in
  (* both transfers in one round exceed c = 1 at both disks *)
  let bad = M.Schedule.of_rounds [| [ 0; 1 ] |] in
  (try
     ignore (S.Simulator.execute c job bad);
     Alcotest.fail "expected Infeasible"
   with S.Simulator.Infeasible _ -> ());
  (* a schedule moving an item from the wrong disk must also fail:
     item 0 moves twice *)
  let job2 =
    { job with S.Cluster.sources = [| 1; 0 |] (* claims item 0 is on 1 *) }
  in
  try
    ignore (S.Simulator.execute c job2 (M.Schedule.of_rounds [| [ 0 ]; [ 1 ] |]));
    Alcotest.fail "expected Infeasible for wrong source"
  with S.Simulator.Infeasible _ -> ()

let test_simulator_report () =
  let before = S.Placement.of_array [| 0; 0; 1 |] in
  let target = S.Placement.of_array [| 1; 2; 1 |] in
  let c = mk_cluster before in
  let report = S.Simulator.run c ~target ~plan:(M.plan M.Greedy) in
  Alcotest.(check int) "moved" 2 report.S.Simulator.items_moved;
  Alcotest.(check bool) "positive time" true (report.S.Simulator.wall_time > 0.0);
  Alcotest.(check bool) "utilization sane" true
    (report.S.Simulator.mean_utilization > 0.0
    && report.S.Simulator.mean_utilization <= 1.0)

(* ------------------------------------------------------------------ *)
(* Fault *)

let test_fault_degrade () =
  let rng = rng () in
  let sc =
    Workloads.Scenarios.rebalance rng ~n_disks:8 ~n_items:200 ~caps:[ 2; 4 ] ()
  in
  let target = sc.Workloads.Scenarios.target in
  let cluster = sc.Workloads.Scenarios.cluster in
  let rep =
    S.Fault.run_with_change cluster ~target ~plan:(M.plan ~rng M.Auto)
      { S.Fault.after_round = 2; disk = 1; new_cap = 1 }
  in
  Alcotest.(check bool) "reached" true (S.Cluster.reached cluster ~target);
  Alcotest.(check bool) "rounds add up" true
    (rep.S.Fault.total_rounds
    = rep.S.Fault.before.S.Simulator.rounds
      + rep.S.Fault.after.S.Simulator.rounds)

let test_fault_immediate () =
  (* change before anything ran: everything is replanned *)
  let rng = rng () in
  let sc =
    Workloads.Scenarios.rebalance rng ~n_disks:6 ~n_items:100 ~caps:[ 3 ] ()
  in
  let rep =
    S.Fault.run_with_change sc.Workloads.Scenarios.cluster
      ~target:sc.Workloads.Scenarios.target ~plan:(M.plan ~rng M.Auto)
      { S.Fault.after_round = 0; disk = 0; new_cap = 1 }
  in
  Alcotest.(check int) "nothing before" 0 rep.S.Fault.before.S.Simulator.rounds

let test_fault_guards () =
  let rng = rng () in
  let sc =
    Workloads.Scenarios.rebalance rng ~n_disks:4 ~n_items:20 ~caps:[ 2 ] ()
  in
  Alcotest.check_raises "cap 0" (Invalid_argument "Fault: capacity must stay >= 1")
    (fun () ->
      ignore
        (S.Fault.run_with_change sc.Workloads.Scenarios.cluster
           ~target:sc.Workloads.Scenarios.target ~plan:(M.plan M.Greedy)
           { S.Fault.after_round = 0; disk = 0; new_cap = 0 }))

(* ------------------------------------------------------------------ *)
(* Engine fault policies *)

let decisions policy ~rounds ~attempted =
  List.init rounds (fun r -> policy.M.Engine.decide ~round:r ~attempted)

let test_engine_policy_deterministic () =
  (* decisions are a pure function of (seed, consultation history):
     two policies from the same seed, consulted identically, must agree
     on every draw *)
  let mk seed =
    S.Fault.engine_policy ~fault_rate:0.3 ~crashes:[ (4, 2) ]
      ~slowdowns:[ (2, 5) ] ~seed ()
  in
  let attempted = List.init 10 Fun.id in
  let a = decisions (mk 99) ~rounds:8 ~attempted in
  let b = decisions (mk 99) ~rounds:8 ~attempted in
  Alcotest.(check bool) "same seed, same decisions" true (a = b);
  let c = decisions (mk 100) ~rounds:8 ~attempted in
  Alcotest.(check bool) "different seed, different draws" true (a <> c)

let test_engine_policy_scheduled_events () =
  (* with rate 0 the policy is exactly its event script *)
  let p =
    S.Fault.engine_policy ~crashes:[ (3, 1) ] ~slowdowns:[ (5, 2) ] ~seed:1 ()
  in
  for r = 0 to 7 do
    let faults = p.M.Engine.decide ~round:r ~attempted:[ 0; 1 ] in
    let expected =
      if r = 3 then [ M.Engine.Crash_disk 1 ]
      else if r = 5 then [ M.Engine.Slow_disk 2 ]
      else []
    in
    Alcotest.(check bool) (Printf.sprintf "round %d" r) true (faults = expected)
  done

let test_engine_policy_rate () =
  (* rate 0: silent forever *)
  let quiet = S.Fault.engine_policy ~seed:5 () in
  for r = 0 to 20 do
    Alcotest.(check bool) "no faults at rate 0" true
      (quiet.M.Engine.decide ~round:r ~attempted:(List.init 6 Fun.id) = [])
  done;
  (* high rate: failures happen, and only ever name attempted edges *)
  let p = S.Fault.engine_policy ~fault_rate:0.9 ~seed:3 () in
  let attempted = [ 2; 7; 11 ] in
  let all =
    List.concat (List.init 30 (fun r -> p.M.Engine.decide ~round:r ~attempted))
  in
  Alcotest.(check bool) "some failures at rate 0.9" true (all <> []);
  Alcotest.(check bool) "only attempted edges fail" true
    (List.for_all
       (function
         | M.Engine.Fail_transfer e -> List.mem e attempted
         | _ -> false)
       all)

let test_engine_policy_guards () =
  Alcotest.check_raises "rate 1"
    (Invalid_argument "Fault.engine_policy: fault_rate must be in [0, 1)")
    (fun () -> ignore (S.Fault.engine_policy ~fault_rate:1.0 ~seed:0 ()));
  Alcotest.check_raises "negative round"
    (Invalid_argument "Fault.engine_policy: negative round") (fun () ->
      ignore (S.Fault.engine_policy ~crashes:[ (-1, 0) ] ~seed:0 ()))

let test_random_calamities () =
  let draw seed =
    S.Fault.random_calamities (rng_of_int seed) ~n_disks:10 ~horizon:6
      ~crashes:3 ~slowdowns:4
  in
  let crashes, slows = draw 11 in
  Alcotest.(check int) "crash count" 3 (List.length crashes);
  Alcotest.(check int) "slowdown count" 4 (List.length slows);
  let disks = List.map snd (crashes @ slows) in
  Alcotest.(check int) "distinct disks" 7
    (List.length (List.sort_uniq compare disks));
  List.iter
    (fun (r, d) ->
      Alcotest.(check bool) "round in [0, horizon)" true (r >= 0 && r < 6);
      Alcotest.(check bool) "disk in range" true (d >= 0 && d < 10))
    (crashes @ slows);
  Alcotest.(check bool) "deterministic under the rng seed" true
    (draw 11 = draw 11);
  Alcotest.check_raises "too many events"
    (Invalid_argument "Fault.random_calamities: more events than disks")
    (fun () ->
      ignore
        (S.Fault.random_calamities (rng_of_int 0) ~n_disks:2 ~horizon:4
           ~crashes:2 ~slowdowns:1))

let test_trace_capture_execution () =
  (* an executed (faulty) migration charts like a plan: one column per
     executed round, streams counted from the attempted lists *)
  let caps = Array.init 6 (fun i -> 1 + (i mod 3)) in
  let disks = Array.mapi (fun id cap -> S.Disk.make ~id ~cap ()) caps in
  let g = Mgraph.Multigraph.create ~n:6 () in
  let n_items = 30 in
  let rng = rng_of_int 41 in
  let items = Array.init n_items Fun.id in
  let sources = Array.make n_items 0 and targets = Array.make n_items 0 in
  for e = 0 to n_items - 1 do
    let u = Random.State.int rng 6 in
    let v = (u + 1 + Random.State.int rng 5) mod 6 in
    ignore (Mgraph.Multigraph.add_edge g u v);
    sources.(e) <- u;
    targets.(e) <- v
  done;
  let inst = M.Instance.create g ~caps in
  let job = { S.Cluster.instance = inst; items; sources; targets } in
  let policy = S.Fault.engine_policy ~fault_rate:0.2 ~seed:17 () in
  let outcome = M.Engine.run ~rng:(rng_of_int 41) ~policy inst in
  let exec = outcome.M.Engine.execution in
  Alcotest.(check bool) "execution certifies" true
    (M.Certify.exec_ok (M.Certify.certify_execution exec));
  let t = S.Trace.capture_execution ~disks job exec in
  Alcotest.(check int) "one column per executed round"
    (List.length exec.M.Certify.log)
    (S.Trace.n_rounds t);
  Alcotest.(check int) "disks" 6 (S.Trace.n_disks t);
  Array.iter
    (fun u ->
      Alcotest.(check bool) "utilization in [0,1]" true
        (u >= 0.0 && u <= 1.0 +. 1e-9))
    (S.Trace.utilization_by_disk t);
  Alcotest.(check bool) "renders" true (String.length (S.Trace.render t) > 0)

(* ------------------------------------------------------------------ *)
(* Async_exec *)

let random_job seed n_disks n_items =
  let rng = rng_of_int seed in
  let caps = Array.init n_disks (fun i -> 1 + (i mod 3)) in
  let disks = Array.mapi (fun id cap -> S.Disk.make ~id ~cap ()) caps in
  let g = Mgraph.Multigraph.create ~n:n_disks () in
  let items = Array.init n_items Fun.id in
  let sources = Array.make n_items 0 and targets = Array.make n_items 0 in
  for e = 0 to n_items - 1 do
    let u = Random.State.int rng n_disks in
    let rec pick () =
      let v = Random.State.int rng n_disks in
      if v = u then pick () else v
    in
    let v = pick () in
    ignore (Mgraph.Multigraph.add_edge g u v);
    sources.(e) <- u;
    targets.(e) <- v
  done;
  let inst = M.Instance.create g ~caps in
  (disks, { S.Cluster.instance = inst; items; sources; targets })

let test_async_single_transfer () =
  let disks = Array.init 2 (fun id -> S.Disk.make ~id ~cap:1 ()) in
  let g = Mgraph.Multigraph.create ~n:2 () in
  ignore (Mgraph.Multigraph.add_edge g 0 1);
  let job =
    {
      S.Cluster.instance = M.Instance.create g ~caps:[| 1; 1 |];
      items = [| 0 |];
      sources = [| 0 |];
      targets = [| 1 |];
    }
  in
  let r = S.Async_exec.run ~disks job S.Async_exec.Fifo in
  Alcotest.(check (float 1e-9)) "unit transfer" 1.0 r.S.Async_exec.makespan;
  Alcotest.(check int) "max active" 1 r.S.Async_exec.max_active

let test_async_contention () =
  (* two transfers out of one cap-1 disk must serialize *)
  let disks = Array.init 3 (fun id -> S.Disk.make ~id ~cap:1 ()) in
  let g = Mgraph.Multigraph.create ~n:3 () in
  ignore (Mgraph.Multigraph.add_edge g 0 1);
  ignore (Mgraph.Multigraph.add_edge g 0 2);
  let job =
    {
      S.Cluster.instance = M.Instance.create g ~caps:[| 1; 1; 1 |];
      items = [| 0; 1 |];
      sources = [| 0; 0 |];
      targets = [| 1; 2 |];
    }
  in
  let r = S.Async_exec.run ~disks job S.Async_exec.Fifo in
  Alcotest.(check (float 1e-9)) "serialized" 2.0 r.S.Async_exec.makespan

let async_completes_everything =
  qtest "async: all items transferred, makespan sane" ~count:40
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let disks, job = random_job seed 8 40 in
      let r = S.Async_exec.run ~disks job S.Async_exec.Fifo in
      Array.for_all (fun (e : S.Async_exec.event) -> e.S.Async_exec.finish > 0.0)
        r.S.Async_exec.events
      && r.S.Async_exec.makespan > 0.0
      && Array.for_all
           (fun (e : S.Async_exec.event) ->
             e.S.Async_exec.finish <= r.S.Async_exec.makespan +. 1e-6)
           r.S.Async_exec.events)

(* Dropping barriers is usually faster but not always: greedy
   work-conserving admission has Graham-style anomalies under
   bandwidth splitting.  The sound property is the 2x list-scheduling
   bound; the typical-case advantage is measured in benchmark E15. *)
let async_within_list_scheduling_bound =
  qtest "async: within 2x of the barrier execution either way" ~count:25
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let disks, job = random_job seed 8 50 in
      let sched = M.plan ~rng:(rng_of_int seed) M.Hetero job.S.Cluster.instance in
      let barrier = S.Bandwidth.schedule_duration ~disks job sched in
      let async =
        S.Async_exec.run ~disks job (S.Async_exec.By_schedule sched)
      in
      async.S.Async_exec.makespan <= (2.0 *. barrier) +. 1e-6
      && barrier <= (2.0 *. async.S.Async_exec.makespan) +. 1e-6)

let test_async_beats_barriers_on_stragglers () =
  (* two disjoint transfers plus one conflicting with the first: with
     barriers the round structure forces idle waiting; asynchronously
     the third transfer starts the moment its disk frees up *)
  let disks = Array.init 4 (fun id -> S.Disk.make ~id ~cap:1 ()) in
  let g = Mgraph.Multigraph.create ~n:4 () in
  ignore (Mgraph.Multigraph.add_edge g 0 1);
  ignore (Mgraph.Multigraph.add_edge g 2 3);
  ignore (Mgraph.Multigraph.add_edge g 2 1);
  let job =
    {
      S.Cluster.instance = M.Instance.create g ~caps:[| 1; 1; 1; 1 |];
      items = [| 0; 1; 2 |];
      sources = [| 0; 2; 2 |];
      targets = [| 1; 3; 1 |];
    }
  in
  let r = S.Async_exec.run ~disks job S.Async_exec.Fifo in
  Alcotest.(check (float 1e-9)) "two units" 2.0 r.S.Async_exec.makespan

let test_async_bad_schedule_policy () =
  let disks, job = random_job 1 4 6 in
  let partial = M.Schedule.of_rounds [| [ 0 ] |] in
  Alcotest.check_raises "missing edges"
    (Invalid_argument "Async_exec: edge 1 missing from schedule") (fun () ->
      ignore (S.Async_exec.run ~disks job (S.Async_exec.By_schedule partial)))

(* ------------------------------------------------------------------ *)
(* sized transfers *)

let test_sized_round_duration () =
  let disks = Array.init 2 (fun id -> S.Disk.make ~id ~cap:2 ()) in
  (* one transfer of size 3 at rate 1 *)
  Alcotest.(check (float 1e-9)) "size 3" 3.0
    (S.Bandwidth.round_duration_sized ~disks ~transfers:[ (0, 1, 3.0) ] ());
  (* two parallel transfers, sizes 1 and 4, each at rate 1/2 *)
  Alcotest.(check (float 1e-9)) "max dominates" 8.0
    (S.Bandwidth.round_duration_sized ~disks
       ~transfers:[ (0, 1, 1.0); (0, 1, 4.0) ]
       ());
  Alcotest.check_raises "bad size"
    (Invalid_argument "Bandwidth.round_duration: sizes must be positive")
    (fun () ->
      ignore
        (S.Bandwidth.round_duration_sized ~disks ~transfers:[ (0, 1, 0.0) ] ()))

let test_async_sized () =
  let disks = Array.init 2 (fun id -> S.Disk.make ~id ~cap:1 ()) in
  let g = Mgraph.Multigraph.create ~n:2 () in
  ignore (Mgraph.Multigraph.add_edge g 0 1);
  ignore (Mgraph.Multigraph.add_edge g 0 1);
  let job =
    {
      S.Cluster.instance = M.Instance.create g ~caps:[| 1; 1 |];
      items = [| 0; 1 |];
      sources = [| 0; 0 |];
      targets = [| 1; 1 |];
    }
  in
  let r = S.Async_exec.run ~disks ~sizes:[| 2.0; 5.0 |] job S.Async_exec.Fifo in
  Alcotest.(check (float 1e-9)) "sequential sized" 7.0 r.S.Async_exec.makespan

let size_balance_improves =
  qtest "size balance: never worse, same rounds, still valid" ~count:30
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let disks, job = random_job seed 6 60 in
      let rng = rng_of_int seed in
      let sizes = Workloads.Demand.sizes rng ~n:60 ~alpha:1.2 in
      let sched = M.plan ~rng M.Hetero job.S.Cluster.instance in
      let sched', st = S.Size_balance.optimize ~disks ~sizes job sched in
      M.Schedule.validate job.S.Cluster.instance sched' = Ok ()
      && M.Schedule.n_rounds sched' = M.Schedule.n_rounds sched
      && st.S.Size_balance.duration_after
         <= st.S.Size_balance.duration_before +. 1e-9
      && Float.abs
           (st.S.Size_balance.duration_after
           -. S.Bandwidth.schedule_duration ~disks ~sizes job sched')
         < 1e-6)

let test_size_balance_concentrates () =
  (* two rounds each holding one slot of the pair (0,1); items sized 1
     and 9; a second pair (2,3) contributes a size-9 transfer to round
     0 only.  Optimal: put the big (0,1) item alongside the other big
     one. *)
  let disks = Array.init 4 (fun id -> S.Disk.make ~id ~cap:1 ()) in
  let g = Mgraph.Multigraph.create ~n:4 () in
  ignore (Mgraph.Multigraph.add_edge g 0 1);
  ignore (Mgraph.Multigraph.add_edge g 0 1);
  ignore (Mgraph.Multigraph.add_edge g 2 3);
  let job =
    {
      S.Cluster.instance = M.Instance.create g ~caps:[| 1; 1; 1; 1 |];
      items = [| 0; 1; 2 |];
      sources = [| 0; 0; 2 |];
      targets = [| 1; 1; 3 |];
    }
  in
  let sizes = [| 1.0; 9.0; 9.0 |] in
  (* bad assignment: small item with the big (2,3) one *)
  let sched = M.Schedule.of_rounds [| [ 0; 2 ]; [ 1 ] |] in
  Alcotest.(check (float 1e-9)) "before" 18.0
    (S.Bandwidth.schedule_duration ~disks ~sizes job sched);
  let sched', st = S.Size_balance.optimize ~disks ~sizes job sched in
  Alcotest.(check (float 1e-9)) "after" 10.0
    st.S.Size_balance.duration_after;
  Alcotest.(check bool) "valid" true
    (M.Schedule.validate job.S.Cluster.instance sched' = Ok ())

(* ------------------------------------------------------------------ *)
(* Online *)

let test_online_single_request () =
  let before = S.Placement.of_array [| 0; 0; 1 |] in
  let c = mk_cluster before in
  let report =
    S.Online.run c
      ~requests:[ { S.Online.at_round = 0; moves = [ (0, 2); (2, 0) ] } ]
      ~plan:(M.plan M.Greedy)
  in
  Alcotest.(check int) "one replan" 1 report.S.Online.replans;
  Alcotest.(check int) "moved" 2 report.S.Online.items_moved;
  Alcotest.(check int) "item 0 at 2" 2
    (S.Placement.disk_of (S.Cluster.placement c) 0);
  Alcotest.(check bool) "real work has latency >= 1" true
    (report.S.Online.latencies.(0) >= 1)

let test_online_supersession () =
  (* a later request retargets the same item; the earlier one counts as
     satisfied once superseded *)
  let before = S.Placement.of_array [| 0 |] in
  let c = mk_cluster ~caps:[| 1; 1; 1 |] before in
  let report =
    S.Online.run c
      ~requests:
        [
          { S.Online.at_round = 0; moves = [ (0, 1) ] };
          { S.Online.at_round = 1; moves = [ (0, 2) ] };
        ]
      ~plan:(M.plan M.Greedy)
  in
  Alcotest.(check int) "final placement" 2
    (S.Placement.disk_of (S.Cluster.placement c) 0);
  Alcotest.(check int) "two latencies" 2
    (Array.length report.S.Online.latencies)

let test_online_guards () =
  let c = mk_cluster (S.Placement.of_array [| 0 |]) in
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Online.run: requests must be sorted by at_round")
    (fun () ->
      ignore
        (S.Online.run c
           ~requests:
             [
               { S.Online.at_round = 3; moves = [] };
               { S.Online.at_round = 1; moves = [] };
             ]
           ~plan:(M.plan M.Greedy)))

let test_online_beyond_horizon () =
  (* a request arriving after all earlier work has drained must extend
     the run: idle time fast-forwards to its arrival and the move still
     executes *)
  let before = S.Placement.of_array [| 0; 1 |] in
  let c = mk_cluster before in
  let report =
    S.Online.run c
      ~requests:
        [
          { S.Online.at_round = 0; moves = [ (0, 1) ] };
          { S.Online.at_round = 50; moves = [ (1, 2) ] };
        ]
      ~plan:(M.plan M.Greedy)
  in
  Alcotest.(check int) "run extended past the horizon" 51
    report.S.Online.rounds;
  Alcotest.(check int) "late move executed" 2
    (S.Placement.disk_of (S.Cluster.placement c) 1);
  Alcotest.(check int) "two replans (work drained between)" 2
    report.S.Online.replans

let test_online_equal_rounds_merge () =
  (* equal [at_round] is legal (sortedness is non-strict) and both
     requests absorb into one epoch: a single replan serves them *)
  let before = S.Placement.of_array [| 0; 0 |] in
  let c = mk_cluster before in
  let report =
    S.Online.run c
      ~requests:
        [
          { S.Online.at_round = 2; moves = [ (0, 1) ] };
          { S.Online.at_round = 2; moves = [ (1, 2) ] };
        ]
      ~plan:(M.plan M.Greedy)
  in
  Alcotest.(check int) "one merged replan" 1 report.S.Online.replans;
  Alcotest.(check int) "both moves in effect" 1
    (S.Placement.disk_of (S.Cluster.placement c) 0);
  Alcotest.(check int) "both moves in effect (2)" 2
    (S.Placement.disk_of (S.Cluster.placement c) 1)

let test_online_noop_latency_zero () =
  (* a request whose moves are already in effect settles at absorption
     with latency 0 — no phantom round *)
  let before = S.Placement.of_array [| 2; 0 |] in
  let c = mk_cluster before in
  let report =
    S.Online.run c
      ~requests:
        [
          { S.Online.at_round = 0; moves = [ (1, 1) ] };
          { S.Online.at_round = 4; moves = [ (0, 2) ] };
        ]
      ~plan:(M.plan M.Greedy)
  in
  Alcotest.(check int) "no-op settles with latency 0" 0
    report.S.Online.latencies.(1);
  Alcotest.(check bool) "real work still costs rounds" true
    (report.S.Online.latencies.(0) >= 1)

let online_converges =
  qtest "online: random request streams converge to the final target"
    ~count:25
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let rng = rng_of_int seed in
      let n_disks = 4 + Random.State.int rng 6 in
      let n_items = 10 + Random.State.int rng 40 in
      let caps = Array.init n_disks (fun i -> 1 + (i mod 3)) in
      let disks = Array.mapi (fun id cap -> S.Disk.make ~id ~cap ()) caps in
      let before =
        S.Placement.create ~n_items (fun _ -> Random.State.int rng n_disks)
      in
      let c = S.Cluster.create ~disks ~placement:before in
      let n_requests = 1 + Random.State.int rng 5 in
      let requests =
        List.init n_requests (fun k ->
            let moves =
              List.init
                (1 + Random.State.int rng 8)
                (fun _ ->
                  (Random.State.int rng n_items, Random.State.int rng n_disks))
              (* dedupe items within one request: later entry wins *)
              |> List.fold_left
                   (fun acc (i, d) ->
                     (i, d) :: List.filter (fun (j, _) -> j <> i) acc)
                   []
            in
            { S.Online.at_round = 2 * k; moves })
      in
      (* reference: the final desired placement is the requests
         replayed in order *)
      let reference = S.Placement.copy before in
      List.iter
        (fun r ->
          List.iter
            (fun (item, target) -> S.Placement.move reference ~item ~target)
            r.S.Online.moves)
        requests;
      let report = S.Online.run c ~requests ~plan:(M.plan ~rng M.Auto) in
      S.Placement.equal (S.Cluster.placement c) reference
      && Array.for_all (fun l -> l >= 0) report.S.Online.latencies
      && Array.length report.S.Online.latencies = n_requests)

let () =
  Alcotest.run "storsim"
    [
      ("disk", [ Alcotest.test_case "rates and guards" `Quick test_disk ]);
      ("placement", [ Alcotest.test_case "ops" `Quick test_placement ]);
      ( "cluster",
        [
          Alcotest.test_case "plan reconfiguration" `Quick test_cluster_plan;
          Alcotest.test_case "guards" `Quick test_cluster_guards;
        ] );
      ( "bandwidth",
        [
          Alcotest.test_case "fig2 homogeneous 3M" `Quick test_fig2_homogeneous;
          Alcotest.test_case "fig2 parallel 2M" `Quick test_fig2_parallel;
          Alcotest.test_case "round duration cases" `Quick
            test_round_duration_cases;
        ] );
      ( "simulator",
        [
          simulator_reaches_target;
          Alcotest.test_case "infeasible detected" `Quick
            test_simulator_infeasible_detected;
          Alcotest.test_case "report" `Quick test_simulator_report;
        ] );
      ( "fault",
        [
          Alcotest.test_case "degrade mid-flight" `Quick test_fault_degrade;
          Alcotest.test_case "immediate change" `Quick test_fault_immediate;
          Alcotest.test_case "guards" `Quick test_fault_guards;
        ] );
      ( "engine-policy",
        [
          Alcotest.test_case "deterministic under seed" `Quick
            test_engine_policy_deterministic;
          Alcotest.test_case "scheduled events" `Quick
            test_engine_policy_scheduled_events;
          Alcotest.test_case "transient rate" `Quick test_engine_policy_rate;
          Alcotest.test_case "guards" `Quick test_engine_policy_guards;
          Alcotest.test_case "random calamities" `Quick test_random_calamities;
          Alcotest.test_case "capture_execution" `Quick
            test_trace_capture_execution;
        ] );
      ( "async_exec",
        [
          Alcotest.test_case "single transfer" `Quick test_async_single_transfer;
          Alcotest.test_case "contention serializes" `Quick
            test_async_contention;
          async_completes_everything;
          async_within_list_scheduling_bound;
          Alcotest.test_case "beats barriers on stragglers" `Quick
            test_async_beats_barriers_on_stragglers;
          Alcotest.test_case "bad schedule policy" `Quick
            test_async_bad_schedule_policy;
        ] );
      ( "flaky",
        [
          Alcotest.test_case "reaches target despite failures" `Quick
            (fun () ->
              let rng = rng_of_int 31 in
              let sc =
                Workloads.Scenarios.rebalance rng ~n_disks:8 ~n_items:200
                  ~caps:[ 2; 3 ] ()
              in
              let rep =
                S.Fault.run_with_transfer_failures rng
                  sc.Workloads.Scenarios.cluster
                  ~target:sc.Workloads.Scenarios.target
                  ~plan:(M.plan ~rng M.Auto)
                  { S.Fault.failure_rate = 0.3; max_attempt_passes = 50 }
              in
              Alcotest.(check bool) "reached" true
                (S.Cluster.reached sc.Workloads.Scenarios.cluster
                   ~target:sc.Workloads.Scenarios.target);
              Alcotest.(check bool) "needed retries" true
                (rep.S.Fault.passes > 1 && rep.S.Fault.failed_transfers > 0));
          Alcotest.test_case "zero rate needs one pass" `Quick (fun () ->
              let rng = rng_of_int 32 in
              let sc =
                Workloads.Scenarios.rebalance rng ~n_disks:6 ~n_items:100 ()
              in
              let rep =
                S.Fault.run_with_transfer_failures rng
                  sc.Workloads.Scenarios.cluster
                  ~target:sc.Workloads.Scenarios.target
                  ~plan:(M.plan ~rng M.Auto)
                  { S.Fault.failure_rate = 0.0; max_attempt_passes = 2 }
              in
              Alcotest.(check int) "one pass" 1 rep.S.Fault.passes;
              Alcotest.(check int) "no failures" 0 rep.S.Fault.failed_transfers);
          Alcotest.test_case "budget exhaustion raises" `Quick (fun () ->
              let rng = rng_of_int 33 in
              let sc =
                Workloads.Scenarios.rebalance rng ~n_disks:6 ~n_items:150 ()
              in
              try
                ignore
                  (S.Fault.run_with_transfer_failures rng
                     sc.Workloads.Scenarios.cluster
                     ~target:sc.Workloads.Scenarios.target
                     ~plan:(M.plan ~rng M.Auto)
                     { S.Fault.failure_rate = 0.9; max_attempt_passes = 1 });
                Alcotest.fail "expected Too_flaky"
              with S.Fault.Too_flaky rep ->
                Alcotest.(check int) "one pass burned" 1 rep.S.Fault.passes);
          Alcotest.test_case "guards" `Quick (fun () ->
              let rng = rng_of_int 34 in
              let sc =
                Workloads.Scenarios.rebalance rng ~n_disks:4 ~n_items:20 ()
              in
              Alcotest.check_raises "bad rate"
                (Invalid_argument "Fault: failure_rate must be in [0, 1)")
                (fun () ->
                  ignore
                    (S.Fault.run_with_transfer_failures rng
                       sc.Workloads.Scenarios.cluster
                       ~target:sc.Workloads.Scenarios.target
                       ~plan:(M.plan M.Greedy)
                       { S.Fault.failure_rate = 1.0; max_attempt_passes = 3 })));
        ] );
      ( "sized",
        [
          Alcotest.test_case "round duration" `Quick test_sized_round_duration;
          Alcotest.test_case "async sized" `Quick test_async_sized;
          size_balance_improves;
          Alcotest.test_case "concentrates big items" `Quick
            test_size_balance_concentrates;
        ] );
      ( "network",
        [
          Alcotest.test_case "full bisection is free" `Quick (fun () ->
              Alcotest.(check (float 1e-9)) "throttle 1" 1.0
                (S.Network.throttle S.Network.full_bisection ~active:1000));
          Alcotest.test_case "oversubscription throttles" `Quick (fun () ->
              let net = S.Network.oversubscribed ~core_streams:4.0 in
              Alcotest.(check (float 1e-9)) "under core" 1.0
                (S.Network.throttle net ~active:3);
              Alcotest.(check (float 1e-9)) "at core" 1.0
                (S.Network.throttle net ~active:4);
              Alcotest.(check (float 1e-9)) "over core" 0.5
                (S.Network.throttle net ~active:8);
              Alcotest.check_raises "bad capacity"
                (Invalid_argument
                   "Network.oversubscribed: capacity must be positive")
                (fun () ->
                  ignore (S.Network.oversubscribed ~core_streams:0.0)));
          Alcotest.test_case "round duration under congestion" `Quick
            (fun () ->
              let disks = Array.init 4 (fun id -> S.Disk.make ~id ~cap:2 ()) in
              let net = S.Network.oversubscribed ~core_streams:1.0 in
              (* two disjoint transfers would take 1 unit each; a core
                 of 1 stream halves both rates *)
              Alcotest.(check (float 1e-9)) "congested" 2.0
                (S.Bandwidth.round_duration ~disks ~network:net
                   ~transfers:[ (0, 1); (2, 3) ]
                   ()));
          Alcotest.test_case "async respects the core" `Quick (fun () ->
              let disks, job = random_job 5 6 30 in
              let free = S.Async_exec.run ~disks job S.Async_exec.Fifo in
              let tight =
                S.Async_exec.run ~disks
                  ~network:(S.Network.oversubscribed ~core_streams:2.0)
                  job S.Async_exec.Fifo
              in
              Alcotest.(check bool) "congestion slows" true
                (tight.S.Async_exec.makespan
                > free.S.Async_exec.makespan -. 1e-9));
        ] );
      ( "trace",
        [
          Alcotest.test_case "capture and render" `Quick (fun () ->
              let disks, job = random_job 21 6 40 in
              let sched = M.plan ~rng:(rng_of_int 21) M.Hetero job.S.Cluster.instance in
              let t = S.Trace.capture ~disks job sched in
              Alcotest.(check int) "rounds" (M.Schedule.n_rounds sched)
                (S.Trace.n_rounds t);
              Alcotest.(check int) "disks" 6 (S.Trace.n_disks t);
              (* stream counts respect constraints everywhere *)
              for r = 0 to S.Trace.n_rounds t - 1 do
                for d = 0 to 5 do
                  Alcotest.(check bool) "within cap" true
                    (S.Trace.streams t ~round:r ~disk:d
                    <= (S.Cluster.disks (S.Cluster.create ~disks
                          ~placement:(S.Placement.create ~n_items:0 (fun _ -> 0)))).(d).S.Disk.cap)
                done
              done;
              let rendered = S.Trace.render t in
              Alcotest.(check bool) "mentions every disk" true
                (List.for_all
                   (fun d ->
                     let needle = Printf.sprintf "disk %3d" d in
                     let rec contains i =
                       i + String.length needle <= String.length rendered
                       && (String.sub rendered i (String.length needle) = needle
                          || contains (i + 1))
                     in
                     contains 0)
                   (List.init 6 Fun.id));
              let util = S.Trace.utilization_by_disk t in
              Array.iter
                (fun u ->
                  Alcotest.(check bool) "utilization in [0,1]" true
                    (u >= 0.0 && u <= 1.0 +. 1e-9))
                util);
          Alcotest.test_case "empty schedule" `Quick (fun () ->
              let disks, job = random_job 22 4 0 in
              let t =
                S.Trace.capture ~disks job (M.Schedule.of_rounds [||])
              in
              Alcotest.(check bool) "renders" true
                (String.length (S.Trace.render t) > 0));
          Alcotest.test_case "rebinning long schedules" `Quick (fun () ->
              let disks, job = random_job 23 4 200 in
              let sched = M.plan ~rng:(rng_of_int 23) M.Greedy job.S.Cluster.instance in
              let t = S.Trace.capture ~disks job sched in
              let rendered = S.Trace.render ~max_columns:20 t in
              (* every line stays near the column budget *)
              Alcotest.(check bool) "compact" true
                (List.for_all
                   (fun line -> String.length line < 60)
                   (String.split_on_char '\n' rendered)));
        ] );
      ( "online",
        [
          Alcotest.test_case "single request" `Quick test_online_single_request;
          Alcotest.test_case "supersession" `Quick test_online_supersession;
          Alcotest.test_case "guards" `Quick test_online_guards;
          Alcotest.test_case "beyond-horizon arrival extends run" `Quick
            test_online_beyond_horizon;
          Alcotest.test_case "equal rounds merge into one epoch" `Quick
            test_online_equal_rounds_merge;
          Alcotest.test_case "no-op request has latency 0" `Quick
            test_online_noop_latency_zero;
          online_converges;
        ] );
    ]
