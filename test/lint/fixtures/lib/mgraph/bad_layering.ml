(* layering: the multigraph substrate must not reach up into core *)
let lower_bound inst = Migration.Lower_bounds.lb1 inst
