(* probes: names must be literal "<layer>.<name>" identifiers *)
let c = Probes.counter "BadProbeName"
let t = Probes.timer "also bad"
let d = Probes.counter ("dynamic." ^ string_of_int 3)
let k = Probes.timer "core.good_name"
let k2 = Probes.counter "core.good_name"
