(* layering fixture: nothing under lib/ may reach up into the
   distributed control plane (only the service daemon, bin/ and the
   tests sit above it) *)
let phase = Distproto.Journal.Empty
