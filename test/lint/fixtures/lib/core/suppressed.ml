(* suppression semantics: a reasoned [@lint.allow] / [@@lint.domain_safe]
   silences the finding; a reasonless one is itself a finding *)
let table : (int, int) Hashtbl.t = Hashtbl.create 8
[@@lint.domain_safe "fixture: pretend a lock guards every access"]

let lucky () =
  (Random.int 10 [@lint.allow "determinism: fixture exercising suppression"])

let unlucky () = (Random.int 10 [@lint.allow "determinism"])
let mystery () = (Random.int 10 [@lint.allow "not-a-rule: nope"])
