(* domain-safety: unguarded module-level mutable state *)
let cache : (string, int) Hashtbl.t = Hashtbl.create 16
let hits = ref 0

type cell = { mutable value : int }

let shared = { value = 0 }
