(* exception: catch-alls that swallow *)
let run f = try f () with _ -> ()
let quietly f = try f () with _e -> None

let classify f =
  match f () with x -> Some x | exception _ -> None
