(* determinism: wall-clock reads outside lib/instr *)
let stamp () = Unix.gettimeofday ()
let cpu_seconds () = Sys.time ()
