(* determinism: bare global-RNG use *)
let seed_everything () = Random.self_init ()
let pick n = Random.int n
let jitter () = Random.float 1.0
let sneaky_state () = Random.State.make_self_init ()
