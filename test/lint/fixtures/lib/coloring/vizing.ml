(* hot-kernel fixture: boxed containers on the steady-state path *)
let slow_lookup tbl xs = List.map (fun x -> Hashtbl.find tbl x) xs

let cold_api xs =
  (List.length [@lint.allow "hotpath: fixture exercising suppression"]) xs
