(* Edge cases of the suppression machinery itself: each malformed
   allow is a "suppression" finding, and scoping is exact. *)

[@@@lint.allow "phantom-rule: suppressing a rule that does not exist"]

(* reasonless: still suppresses, but is itself flagged *)
let a = (Random.int [@lint.allow "determinism"]) 3

(* unknown rule on an expression: flagged, and does not suppress *)
let b = (Random.int [@lint.allow "no-such-rule: definitely"]) 5

(* a binding-level allow covers the whole body... *)
let c = 1 + Random.int 7 [@@lint.allow "determinism: reviewed — fixture"]

(* ...but does not leak to the next binding *)
let d = Random.int 9

(* an inner expression allow scopes tighter than its binding *)
let e =
  let x = (Random.int [@lint.allow "determinism: inner scope only"]) 2 in
  x + Random.int 4
