migrate-lint over the known-bad fixture corpus: each rule family must
fire on its fixture and exit non-zero.  The corpus mirrors the repo
layout (fixtures/lib/<dir>/...) so path classification works exactly as
on the real tree.

  $ alias lint=../../tools/lint/main.exe

Rule "determinism" — global RNG:

  $ lint --rules determinism fixtures/lib/core/bad_random.ml
  fixtures/lib/core/bad_random.ml:2 determinism bare Random.self_init uses the global RNG — thread an explicitly seeded Random.State instead
  fixtures/lib/core/bad_random.ml:3 determinism bare Random.int uses the global RNG — thread an explicitly seeded Random.State instead
  fixtures/lib/core/bad_random.ml:4 determinism bare Random.float uses the global RNG — thread an explicitly seeded Random.State instead
  fixtures/lib/core/bad_random.ml:5 determinism Random.State.make_self_init draws from ambient entropy — seed the state explicitly
  [1]

Rule "determinism" — wall-clock reads outside lib/instr:

  $ lint --rules determinism fixtures/lib/core/bad_clock.ml
  fixtures/lib/core/bad_clock.ml:2 determinism wall-clock call Unix.gettimeofday — timing belongs to the instrumentation layer (Probes.now_s / Probes.time)
  fixtures/lib/core/bad_clock.ml:3 determinism wall-clock call Sys.time — timing belongs to the instrumentation layer (Probes.now_s / Probes.time)
  [1]

Rule "domain-safety" — unguarded module-level mutable state:

  $ lint --rules domain-safety fixtures/lib/core/bad_state.ml
  fixtures/lib/core/bad_state.ml:2 domain-safety module-level mutable state (a Hashtbl.t) is shared across worker domains — guard it with Mutex/Atomic or annotate [@@lint.domain_safe "reason"]
  fixtures/lib/core/bad_state.ml:3 domain-safety module-level mutable state (a ref cell) is shared across worker domains — guard it with Mutex/Atomic or annotate [@@lint.domain_safe "reason"]
  fixtures/lib/core/bad_state.ml:7 domain-safety module-level mutable state (a record with mutable fields) is shared across worker domains — guard it with Mutex/Atomic or annotate [@@lint.domain_safe "reason"]
  [1]

Rule "layering" — the substrate must not reach up into core:

  $ lint --rules layering fixtures/lib/mgraph/bad_layering.ml
  fixtures/lib/mgraph/bad_layering.ml:2 layering library "mgraph" must not depend on "migration" (via module Migration) — architecture DAG violation
  [1]

Rule "layering" — the coordinator/worker split: the distributed
control plane may use core+exec, but nothing under lib/ may use it
back (only the service daemon, bin/ and the tests sit above it):

  $ lint --rules layering fixtures/lib/core/bad_dist.ml
  fixtures/lib/core/bad_dist.ml:4 layering library "migration" must not depend on "distproto" (via module Distproto) — architecture DAG violation
  [1]

Rule "exception" — catch-alls that swallow:

  $ lint --rules exception fixtures/lib/core/bad_swallow.ml
  fixtures/lib/core/bad_swallow.ml:2 exception catch-all exception handler swallows the exception — match specific exceptions, bind and report it, or re-raise
  fixtures/lib/core/bad_swallow.ml:3 exception catch-all exception handler swallows the exception — match specific exceptions, bind and report it, or re-raise
  fixtures/lib/core/bad_swallow.ml:6 exception catch-all exception handler swallows the exception — match specific exceptions, bind and report it, or re-raise
  [1]

Rule "probes" — non-literal, malformed, and colliding registrations:

  $ lint --rules probes fixtures/lib/core/bad_probe.ml
  fixtures/lib/core/bad_probe.ml:2 probes probe name "BadProbeName" does not match "<layer>.<name>" (lowercase dot-separated segments)
  fixtures/lib/core/bad_probe.ml:3 probes probe name "also bad" does not match "<layer>.<name>" (lowercase dot-separated segments)
  fixtures/lib/core/bad_probe.ml:4 probes probe name is not a string literal — the "<layer>.<name>" convention cannot be checked; extract a literal or annotate [@lint.allow "probes: ..."]
  fixtures/lib/core/bad_probe.ml:6 probes probe "core.good_name" registered as both timer and counter (first at fixtures/lib/core/bad_probe.ml:5)
  [1]

Rule "hotpath" — boxed containers in a hot-kernel module (the file
name marks it: vizing.ml is one of the seven flat-core kernels); the
reasoned suppression on the cold call produces no finding:

  $ lint --rules hotpath fixtures/lib/coloring/vizing.ml
  fixtures/lib/coloring/vizing.ml:2 hotpath Hashtbl.find in a hot kernel — steady-state loops iterate the CSR view with arena scratch; if this site is genuinely off the per-edge path, annotate it with [@lint.allow "hotpath: reason"]
  fixtures/lib/coloring/vizing.ml:2 hotpath List.map in a hot kernel — steady-state loops iterate the CSR view with arena scratch; if this site is genuinely off the per-edge path, annotate it with [@lint.allow "hotpath: reason"]
  [1]

Rule "mli-coverage" — a library module without an interface:

  $ lint --rules mli-coverage fixtures/lib/core/bad_random.ml
  fixtures/lib/core/bad_random.ml:1 mli-coverage library module has no .mli interface — declare its public surface
  [1]

Suppression semantics: a reasoned [@lint.allow "rule: reason"] (or
[@@lint.domain_safe "reason"]) silences the finding; a reasonless or
unknown-rule suppression is itself reported.  Note line 7's suppressed
Random.int and the annotated Hashtbl produce no findings:

  $ lint --rules determinism,domain-safety fixtures/lib/core/suppressed.ml
  fixtures/lib/core/suppressed.ml:9 suppression [@lint.allow "determinism"] is missing its reason — write "determinism: why this is safe"
  fixtures/lib/core/suppressed.ml:10 determinism bare Random.int uses the global RNG — thread an explicitly seeded Random.State instead
  fixtures/lib/core/suppressed.ml:10 suppression [@lint.allow] names unknown rule "not-a-rule"
  [1]

Edge cases of the suppression machinery itself: a file-wide allow of a
nonexistent rule, a reasonless allow (which still suppresses but is
flagged), an unknown rule on an expression (flagged, and does NOT
suppress — see line 10's surviving determinism finding), a
binding-level allow that covers its body but not the next binding, and
a nested expression allow that scopes tighter than its binding:

  $ lint --rules determinism fixtures/lib/edge/allow_edges.ml
  fixtures/lib/edge/allow_edges.ml:4 suppression [@lint.allow] names unknown rule "phantom-rule"
  fixtures/lib/edge/allow_edges.ml:7 suppression [@lint.allow "determinism"] is missing its reason — write "determinism: why this is safe"
  fixtures/lib/edge/allow_edges.ml:10 determinism bare Random.int uses the global RNG — thread an explicitly seeded Random.State instead
  fixtures/lib/edge/allow_edges.ml:10 suppression [@lint.allow] names unknown rule "no-such-rule"
  fixtures/lib/edge/allow_edges.ml:16 determinism bare Random.int uses the global RNG — thread an explicitly seeded Random.State instead
  fixtures/lib/edge/allow_edges.ml:21 determinism bare Random.int uses the global RNG — thread an explicitly seeded Random.State instead
  [1]

The whole corpus at once, all rules — the summary exercised by CI.
This corpus carries no .cmt artifacts, so every library file also gets
a "cmt" pseudo-finding from the interprocedural rules: a file they
cannot analyze is reported, not silently treated as clean (the typed
corpus in typed.t compiles its fixtures and exercises those rules for
real):

  $ lint fixtures | wc -l
  49
  $ lint fixtures > /dev/null
  [1]

Usage errors exit 2; the rule list comes from the registry, not a
hand-maintained string:

  $ lint --rules no-such-rule fixtures
  lint: unknown rule "no-such-rule" — known rules:
    determinism
    determinism-taint
    domain-escape
    domain-safety
    exception
    hotpath
    hotpath-deep
    layering
    mli-coverage
    probes
  [2]
  $ lint no/such/path
  lint: no such file or directory: no/such/path
  [2]
