migrate-lint over the typed fixture corpus: the interprocedural rules
(determinism-taint, domain-escape, hotpath-deep) read .cmt typed ASTs,
so each scenario is compiled here with the toolchain's ocamlc
(-bin-annot) before the tool runs.  Each bad fixture's violation is
only visible across definition boundaries — the old syntactic rules
accept the file — and each good twin is something the syntactic rules
flag (or would) but the precise analysis accepts.

  $ alias lint=../../tools/lint/main.exe
  $ alias build='ocamlc -bin-annot -w -a'

determinism-taint, known bad: the Random.int carries a reviewed
syntactic suppression, so the per-file determinism rule is silent on
this corpus — but the exported entry point Helper.jitter still reaches
the ambient generator through the private helper, and the finding
prints the witnessing call chain:

  $ build -I fixtures_typed/taintbad/lib/plan -c \
  >   fixtures_typed/taintbad/lib/plan/helper.mli \
  >   fixtures_typed/taintbad/lib/plan/helper.ml \
  >   fixtures_typed/taintbad/lib/plan/planner.mli \
  >   fixtures_typed/taintbad/lib/plan/planner.ml
  $ lint --rules determinism fixtures_typed/taintbad
  $ lint --rules determinism-taint fixtures_typed/taintbad
  fixtures_typed/taintbad/lib/plan/helper.ml:4 determinism-taint Random.int is reachable from exported entry point Helper.jitter — solver paths must be deterministic; take explicit state or seed, or suppress with [@lint.allow "determinism-taint: reason"] (via Helper.jitter -> Helper.roll -> Random.int)
  [1]

determinism-taint, known good: the interface hides [roll] and nothing
reachable calls it, so the unreachable Random.int is accepted — while
the syntactic rule still flags the file.  The exported [jitter] takes
its Random.State explicitly, which both rules accept:

  $ build -I fixtures_typed/taintgood/lib/plan -c \
  >   fixtures_typed/taintgood/lib/plan/helper.mli \
  >   fixtures_typed/taintgood/lib/plan/helper.ml
  $ lint --rules determinism-taint fixtures_typed/taintgood
  $ lint --rules determinism fixtures_typed/taintgood
  fixtures_typed/taintgood/lib/plan/helper.ml:6 determinism bare Random.int uses the global RNG — thread an explicitly seeded Random.State instead
  [1]

domain-escape, known bad: the closure passed to Exec.map calls
Tally.bump, which mutates Tally's module-level table — the escape is
invisible file-by-file (runner.ml has no mutable state, tally.ml has
no parallelism) and the finding names both the sink call site and the
chain from escape root to the shared state:

  $ build -I fixtures_typed/escbad/lib/par -c \
  >   fixtures_typed/escbad/lib/par/exec.ml \
  >   fixtures_typed/escbad/lib/par/tally.ml \
  >   fixtures_typed/escbad/lib/par/runner.ml
  $ lint --rules domain-escape fixtures_typed/escbad
  fixtures_typed/escbad/lib/par/tally.ml:1 domain-escape module-level mutable state Tally.table (a Hashtbl.t) escapes unguarded into Exec.map at fixtures_typed/escbad/lib/par/runner.ml:3 — worker domains may race on it; use Atomic/Mutex, pass state explicitly, or annotate [@@lint.domain_safe "reason"] (via Tally.bump -> Tally.table)
  [1]

domain-escape, known good twins: Cache.table is module-level mutable
state used only sequentially, and Guard.table does escape into the
pool but every accessor holds the mutex — the escape analysis accepts
both, where the old syntactic over-approximation flags each of them on
sight:

  $ build -I fixtures_typed/escgood/lib/par -c \
  >   fixtures_typed/escgood/lib/par/exec.ml \
  >   fixtures_typed/escgood/lib/par/cache.ml \
  >   fixtures_typed/escgood/lib/par/guard.ml \
  >   fixtures_typed/escgood/lib/par/runner.ml
  $ lint --rules domain-escape fixtures_typed/escgood
  $ lint --rules domain-safety fixtures_typed/escgood
  fixtures_typed/escgood/lib/par/cache.ml:4 domain-safety module-level mutable state (a Hashtbl.t) is shared across worker domains — guard it with Mutex/Atomic or annotate [@@lint.domain_safe "reason"]
  fixtures_typed/escgood/lib/par/guard.ml:5 domain-safety module-level mutable state (a Hashtbl.t) is shared across worker domains — guard it with Mutex/Atomic or annotate [@@lint.domain_safe "reason"]
  [1]

hotpath-deep, known bad: vizing.ml (a kernel file) is syntactically
spotless — the List.map sits one call away in widen.ml, a file the
syntactic hotpath rule never inspects.  The deep rule follows the call
from the exported kernel entry point:

  $ build -I fixtures_typed/hotk/lib/core -c \
  >   fixtures_typed/hotk/lib/core/widen.ml \
  >   fixtures_typed/hotk/lib/core/vizing.ml
  $ lint --rules hotpath fixtures_typed/hotk
  $ lint --rules hotpath-deep fixtures_typed/hotk
  fixtures_typed/hotk/lib/core/widen.ml:4 hotpath-deep List.map allocates on a kernel path — a hot entry point reaches this site; keep per-edge loops on the CSR view, or mark a reviewed cold path with [@lint.allow "hotpath-deep: reason"] (via Vizing.color -> Widen.grow -> List.map)
  [1]

hotpath-deep, known good: the kernel file carries a dead private List
helper that its interface does not export — the syntactic rule flags
it on file membership alone, the deep rule accepts it because no
exported kernel entry point reaches the allocation:

  $ build -I fixtures_typed/hotg/lib/core -c \
  >   fixtures_typed/hotg/lib/core/vizing.mli \
  >   fixtures_typed/hotg/lib/core/vizing.ml
  $ lint --rules hotpath-deep fixtures_typed/hotg
  $ lint --rules hotpath fixtures_typed/hotg
  fixtures_typed/hotg/lib/core/vizing.ml:5 hotpath List.map in a hot kernel — steady-state loops iterate the CSR view with arena scratch; if this site is genuinely off the per-edge path, annotate it with [@lint.allow "hotpath: reason"]
  [1]

--format json emits one object per finding (JSON Lines), with the
chain as a structured array — this is what CI converts into GitHub
annotations:

  $ lint --rules domain-escape --format json fixtures_typed/escbad
  {"file":"fixtures_typed/escbad/lib/par/tally.ml","line":1,"rule":"domain-escape","message":"module-level mutable state Tally.table (a Hashtbl.t) escapes unguarded into Exec.map at fixtures_typed/escbad/lib/par/runner.ml:3 — worker domains may race on it; use Atomic/Mutex, pass state explicitly, or annotate [@@lint.domain_safe \"reason\"]","chain":["Tally.bump","Tally.table"]}
  [1]

Ratchet mode: --write-baseline records the current findings (keyed by
file, rule, and message — line numbers and chains excluded, so
unrelated edits do not resurrect a baselined finding), --baseline then
fails only on findings not in the file:

  $ lint --rules domain-escape --write-baseline base.txt fixtures_typed/escbad
  lint: wrote 1 baseline entry to base.txt
  $ cat base.txt
  fixtures_typed/escbad/lib/par/tally.ml	domain-escape	module-level mutable state Tally.table (a Hashtbl.t) escapes unguarded into Exec.map at fixtures_typed/escbad/lib/par/runner.ml:3 — worker domains may race on it; use Atomic/Mutex, pass state explicitly, or annotate [@@lint.domain_safe "reason"]
  $ lint --rules domain-escape --baseline base.txt fixtures_typed/escbad
  lint: 1 finding(s) suppressed by baseline

A finding outside the baseline still fails the run — here the
syntactic domain-safety finding on the same table is new relative to
the escape-only baseline:

  $ lint --rules domain-escape,domain-safety --baseline base.txt fixtures_typed/escbad
  fixtures_typed/escbad/lib/par/tally.ml:1 domain-safety module-level mutable state (a Hashtbl.t) is shared across worker domains — guard it with Mutex/Atomic or annotate [@@lint.domain_safe "reason"]
  lint: 1 finding(s) suppressed by baseline
  [1]

The rule list is generated from the registry (doc/LINT.md's catalog
headings are checked against this in CI):

  $ lint --list-rules
  determinism
  determinism-taint
  domain-escape
  domain-safety
  exception
  hotpath
  hotpath-deep
  layering
  mli-coverage
  probes
