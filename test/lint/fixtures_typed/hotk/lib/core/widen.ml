(* Not a kernel file itself, so the syntactic hotpath rule never looks
   here — but Vizing.color calls into it, putting this List.map on the
   kernel's path. *)
let grow xs = List.map succ xs
