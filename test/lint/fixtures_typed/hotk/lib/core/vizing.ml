(* Syntactically spotless kernel file: no List or Hashtbl mentioned.
   The allocation happens one call away, in Widen.grow. *)
let color xs = Widen.grow xs
