(* The seed site carries a syntactic-determinism suppression, so the
   old per-file rule is silent here; only the taint analysis sees that
   an exported entry point still reaches the ambient generator. *)
let roll n = (Random.int [@lint.allow "determinism: reviewed — test-only fallback"]) n
let jitter n = n + roll n
