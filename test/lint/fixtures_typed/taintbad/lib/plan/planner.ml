let plan x = Helper.jitter (2 * x)
