val plan : int -> int
