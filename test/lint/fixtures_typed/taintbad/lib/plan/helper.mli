val jitter : int -> int
