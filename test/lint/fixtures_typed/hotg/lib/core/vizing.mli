val color : int -> int
