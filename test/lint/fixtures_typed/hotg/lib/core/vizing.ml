(* The interface exports only [color]; [scratch] is a dead private
   helper.  The syntactic hotpath rule flags its List.map on file
   membership alone, the deep rule accepts it — no exported kernel
   entry point reaches the allocation. *)
let scratch xs = List.map succ xs
let color x = x + 1
