(* Shared state that does escape into the pool, but every accessor
   takes the mutex: the lock discipline is visible to the analysis, so
   the sharing is accepted as a reviewed decision. *)
let mu = Mutex.create ()
let table : (int, int) Hashtbl.t = Hashtbl.create 16

let bump k =
  Mutex.protect mu (fun () ->
      let n = try Hashtbl.find table k with Not_found -> 0 in
      Hashtbl.replace table k (n + 1))
