let map f xs = List.map f xs
