(* Module-level mutable state used only from sequential code: the
   syntactic domain-safety rule flags it on sight, the escape analysis
   accepts it — no closure carrying it ever reaches a pool. *)
let table : (int, int) Hashtbl.t = Hashtbl.create 16

let memo f x =
  try Hashtbl.find table x
  with Not_found ->
    let y = f x in
    Hashtbl.add table x y;
    y
