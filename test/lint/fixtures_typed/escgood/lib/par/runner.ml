let run xs = Exec.map (fun x -> Guard.bump x) xs
let lookup = Cache.memo (fun x -> x * x)
