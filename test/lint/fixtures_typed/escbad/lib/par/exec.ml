(* Stand-in for the real pool dispatcher: the escape analysis keys on
   the resolved name Exec.map, not on the implementation. *)
let map f xs = List.map f xs
