let table : (int, int) Hashtbl.t = Hashtbl.create 16

let bump k =
  let n = try Hashtbl.find table k with Not_found -> 0 in
  Hashtbl.replace table k (n + 1)
