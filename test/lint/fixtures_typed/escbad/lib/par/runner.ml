(* The closure passed to the pool touches Tally's module-level table:
   that table is mutated from worker domains without a guard. *)
let run xs = Exec.map (fun x -> Tally.bump x) xs
