(* The interface does not export [roll], and nothing reachable calls
   it: the syntactic determinism rule flags the bare Random.int, but
   the taint analysis accepts the module — no exported entry point can
   observe the nondeterminism.  [jitter] takes its state explicitly,
   which both rules accept. *)
let roll n = Random.int n
let jitter st n = n + Random.State.int st n
