val jitter : Random.State.t -> int -> int
