(* Tests for the optional-extension modules: Halving (Section V's
   closing remark), Completion_time, Forwarding (helpers), Space
   (Hall et al.'s model), Cloning (Khuller-Kim-Wan's model). *)

module Multigraph = Mgraph.Multigraph
module M = Migration
open Test_util

(* random instance with inflated multiplicities *)
let fat_instance seed mult =
  let rng = rng_of_int seed in
  let base = Mgraph.Graph_gen.gnm rng ~n:8 ~m:20 in
  let g = Multigraph.create ~n:8 () in
  Multigraph.iter_edges base (fun { Multigraph.u; v; _ } ->
      for _ = 1 to mult do
        ignore (Multigraph.add_edge g u v)
      done);
  M.Instance.random_caps rng g ~choices:[ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Halving *)

let halving_valid =
  qtest "halving: valid schedule at any multiplicity" ~count:40
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 1 16))
    (fun (seed, mult) ->
      let inst = fat_instance seed mult in
      let sched = M.Halving.schedule ~rng:(rng_of_int seed) inst in
      M.Schedule.validate inst sched = Ok ())

let test_halving_recursion_depth () =
  let inst = fat_instance 3 32 in
  let _, stats = M.Halving.schedule_stats ~rng:(rng_of_int 3) inst in
  Alcotest.(check bool) "recursed" true (stats.M.Halving.levels >= 2);
  Alcotest.(check bool) "base smaller than full" true
    (stats.M.Halving.base_edges < M.Instance.n_items inst)

let test_halving_no_recursion_when_thin () =
  let rng = rng_of_int 4 in
  let g = Mgraph.Graph_gen.gnm rng ~n:10 ~m:30 in
  let inst = M.Instance.random_caps rng g ~choices:[ 2; 4 ] in
  let _, stats = M.Halving.schedule_stats ~rng inst in
  Alcotest.(check int) "no levels" 0 stats.M.Halving.levels

let halving_close_to_direct =
  qtest "halving: rounds within 2x of the direct planner" ~count:25
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 4 12))
    (fun (seed, mult) ->
      let inst = fat_instance seed mult in
      let h = M.Halving.schedule ~rng:(rng_of_int seed) inst in
      let d = M.Hetero_coloring.schedule ~rng:(rng_of_int seed) inst in
      M.Schedule.n_rounds h <= 2 * M.Schedule.n_rounds d + 2)

let test_halving_exact_on_even_powers () =
  (* triangle with 2^k parallel edges and c = 2: both the direct even
     algorithm and the halved one are optimal *)
  let g = Mgraph.Graph_gen.triangle_stack 16 in
  let inst = M.Instance.uniform g ~cap:2 in
  let sched = M.Halving.schedule inst in
  check_valid_schedule inst sched "halving triangle";
  Alcotest.(check int) "optimal" (M.Lower_bounds.lb1 inst)
    (M.Schedule.n_rounds sched)

(* ------------------------------------------------------------------ *)
(* Completion_time *)

let test_item_sum_hand () =
  (* rounds of sizes 2,1: completing at 1,1,2 -> sum 4 *)
  let sched = M.Schedule.of_rounds [| [ 0; 1 ]; [ 2 ] |] in
  Alcotest.(check (float 1e-9)) "sum" 4.0
    (M.Completion_time.item_completion_sum sched);
  (* weighted: item 2 weighs 10 -> 1 + 1 + 20 *)
  Alcotest.(check (float 1e-9)) "weighted" 22.0
    (M.Completion_time.item_completion_sum
       ~weights:(fun e -> if e = 2 then 10.0 else 1.0)
       sched)

let test_disk_sum_hand () =
  let g = Mgraph.Graph_gen.path 3 in
  let inst = M.Instance.uniform g ~cap:1 in
  (* round 0: edge (0,1); round 1: edge (1,2):
     disk 0 completes at 1, disks 1 and 2 at 2 -> 5 *)
  let sched = M.Schedule.of_rounds [| [ 0 ]; [ 1 ] |] in
  Alcotest.(check (float 1e-9)) "sum" 5.0
    (M.Completion_time.disk_completion_sum inst sched)

let reorder_items_optimal =
  qtest "completion: items reorder is sorted and never worse" ~count:60
    (instance_spec_gen ~max_n:15 ~max_m:80 ())
    (fun spec ->
      let inst = instance_of_spec spec in
      if M.Instance.n_items inst = 0 then true
      else begin
        let sched = M.Hetero_coloring.schedule ~rng:(rng_of_int 1) inst in
        let re = M.Completion_time.reorder_for_items sched in
        M.Schedule.validate inst re = Ok ()
        && M.Completion_time.item_completion_sum re
           <= M.Completion_time.item_completion_sum sched +. 1e-9
        &&
        (* sizes decreasing *)
        let sizes = Array.map List.length (M.Schedule.rounds re) in
        Array.for_all2 ( <= )
          (Array.sub sizes 1 (Array.length sizes - 1))
          (Array.sub sizes 0 (Array.length sizes - 1))
      end)

let reorder_disks_no_worse =
  qtest "completion: disks reorder is valid and never worse" ~count:40
    (instance_spec_gen ~max_n:12 ~max_m:40 ())
    (fun spec ->
      let inst = instance_of_spec spec in
      if M.Instance.n_items inst = 0 then true
      else begin
        let sched = M.Hetero_coloring.schedule ~rng:(rng_of_int 2) inst in
        let re = M.Completion_time.reorder_for_disks inst sched in
        M.Schedule.validate inst re = Ok ()
        && M.Completion_time.disk_completion_sum inst re
           <= M.Completion_time.disk_completion_sum inst sched +. 1e-9
      end)

let test_reorder_disks_exact_small () =
  (* two rounds: round A touches disks {0,1}, round B touches {2,3,4}:
     B last  -> 1+1 + 2+2+2 = 8;  A last -> 2+2 + 1+1+1 = 7: A must go
     last *)
  let g = Multigraph.create ~n:5 () in
  ignore (Multigraph.add_edge g 0 1);
  ignore (Multigraph.add_edge g 2 3);
  ignore (Multigraph.add_edge g 3 4);
  let inst = M.Instance.uniform g ~cap:1 in
  let sched = M.Schedule.of_rounds [| [ 0 ]; [ 1; 2 ] |] in
  let re = M.Completion_time.reorder_for_disks inst sched in
  Alcotest.(check (float 1e-9)) "optimal order" 7.0
    (M.Completion_time.disk_completion_sum inst re)

(* ------------------------------------------------------------------ *)
(* Forwarding *)

let triangle_with_helpers m helpers =
  let g = Multigraph.create ~n:(3 + helpers) () in
  List.iter
    (fun (u, v) ->
      for _ = 1 to m do
        ignore (Multigraph.add_edge g u v)
      done)
    [ (0, 1); (1, 2); (0, 2) ];
  M.Instance.uniform g ~cap:1

let test_forwarding_beats_gamma () =
  let inst = triangle_with_helpers 8 4 in
  let plan, stats =
    M.Forwarding.plan_with_helpers ~rng:(rng_of_int 5) inst
  in
  Alcotest.(check bool) "valid" true (M.Forwarding.validate inst plan = Ok ());
  Alcotest.(check bool) "relayed something" true (stats.M.Forwarding.relayed > 0);
  Alcotest.(check bool) "beats the direct bound" true
    (stats.M.Forwarding.rounds < stats.M.Forwarding.bound_before);
  Alcotest.(check bool) "never worse than direct" true
    (stats.M.Forwarding.rounds <= stats.M.Forwarding.direct_rounds)

let test_forwarding_falls_back () =
  (* no helpers: relaying impossible, plan must equal the direct one *)
  let inst = triangle_with_helpers 4 0 in
  let plan, stats = M.Forwarding.plan_with_helpers ~rng:(rng_of_int 6) inst in
  Alcotest.(check int) "no relays" 0 stats.M.Forwarding.relayed;
  Alcotest.(check int) "direct rounds" stats.M.Forwarding.direct_rounds
    (M.Forwarding.n_rounds plan);
  Alcotest.(check bool) "valid" true (M.Forwarding.validate inst plan = Ok ())

let forwarding_always_valid =
  qtest "forwarding: plan is valid and never worse than direct" ~count:40
    (instance_spec_gen ~max_n:14 ~max_m:80 ())
    (fun spec ->
      let inst = instance_of_spec spec in
      let plan, stats =
        M.Forwarding.plan_with_helpers ~rng:(rng_of_int spec.cap_seed) inst
      in
      M.Forwarding.validate inst plan = Ok ()
      && stats.M.Forwarding.rounds <= stats.M.Forwarding.direct_rounds)

let test_forwarding_validator_catches () =
  let g = Mgraph.Graph_gen.path 3 in
  let inst = M.Instance.uniform g ~cap:1 in
  (* item 0 = (0,1), item 1 = (1,2) *)
  let bad_source =
    M.Forwarding.of_rounds
      [| [ { M.Forwarding.item = 0; src = 2; dst = 1 } ] |]
  in
  Alcotest.(check bool) "wrong source" true
    (M.Forwarding.validate inst bad_source <> Ok ());
  let undelivered =
    M.Forwarding.of_rounds
      [| [ { M.Forwarding.item = 0; src = 0; dst = 1 } ] |]
  in
  Alcotest.(check bool) "undelivered item" true
    (M.Forwarding.validate inst undelivered <> Ok ());
  let over_cap =
    M.Forwarding.of_rounds
      [|
        [
          { M.Forwarding.item = 0; src = 0; dst = 1 };
          { M.Forwarding.item = 1; src = 1; dst = 2 };
        ];
      |]
  in
  Alcotest.(check bool) "capacity violation" true
    (M.Forwarding.validate inst over_cap <> Ok ())

(* ------------------------------------------------------------------ *)
(* Space *)

let test_space_check () =
  let g = Mgraph.Graph_gen.path 3 in
  (* edges: 0=(0,1), 1=(1,2) *)
  let inst = M.Instance.uniform g ~cap:1 in
  let sched = M.Schedule.of_rounds [| [ 0 ]; [ 1 ] |] in
  let roomy =
    {
      M.Space.space = [| 2; 2; 2 |];
      initial_load = [| 1; 1; 1 |];
      bypass = [];
    }
  in
  Alcotest.(check bool) "fits" true (M.Space.check inst roomy sched = Ok ());
  let tight =
    {
      M.Space.space = [| 1; 1; 1 |];
      initial_load = [| 1; 1; 1 |];
      bypass = [];
    }
  in
  Alcotest.(check bool) "overflow detected" true
    (M.Space.check inst tight sched <> Ok ())

let test_space_plan_direct () =
  let g = Mgraph.Graph_gen.path 3 in
  let inst = M.Instance.uniform g ~cap:1 in
  let cfg =
    {
      M.Space.space = [| 2; 2; 2 |];
      initial_load = [| 1; 1; 0 |];
      bypass = [];
    }
  in
  let plan = M.Space.plan inst cfg in
  Alcotest.(check bool) "valid hops" true
    (M.Forwarding.validate inst plan = Ok ());
  Alcotest.(check bool) "space respected" true
    (M.Space.check_plan inst cfg plan = Ok ())

let test_space_cycle_needs_spare () =
  (* 3 full disks want to rotate their items; a 4th empty disk is the
     only slack.  Direct delivery is impossible; the planner must
     relay through the spare. *)
  let g = Multigraph.create ~n:4 () in
  ignore (Multigraph.add_edge g 0 1);
  ignore (Multigraph.add_edge g 1 2);
  ignore (Multigraph.add_edge g 2 0);
  let inst = M.Instance.uniform g ~cap:1 in
  let cfg =
    {
      M.Space.space = [| 1; 1; 1; 1 |];
      initial_load = [| 1; 1; 1; 0 |];
      bypass = [ 3 ];
    }
  in
  let plan = M.Space.plan inst cfg in
  Alcotest.(check bool) "valid hops" true
    (M.Forwarding.validate inst plan = Ok ());
  Alcotest.(check bool) "space respected" true
    (M.Space.check_plan inst cfg plan = Ok ());
  (* at least one relay was necessary *)
  let hops = Array.to_list (M.Forwarding.rounds plan) |> List.concat in
  Alcotest.(check bool) "used the spare disk" true
    (List.exists (fun h -> h.M.Forwarding.dst = 3) hops)

let test_space_deadlock () =
  (* the same cycle with no spare disk at all deadlocks *)
  let g = Multigraph.create ~n:3 () in
  ignore (Multigraph.add_edge g 0 1);
  ignore (Multigraph.add_edge g 1 2);
  ignore (Multigraph.add_edge g 2 0);
  let inst = M.Instance.uniform g ~cap:1 in
  let cfg =
    {
      M.Space.space = [| 1; 1; 1 |];
      initial_load = [| 1; 1; 1 |];
      bypass = [];
    }
  in
  match M.Space.plan inst cfg with
  | _ -> Alcotest.fail "expected Stuck"
  | exception M.Space.Stuck _ -> ()

let test_space_config_guards () =
  let g = Mgraph.Graph_gen.path 2 in
  let inst = M.Instance.uniform g ~cap:1 in
  Alcotest.check_raises "overloaded start"
    (Invalid_argument "Space: disk 0 starts above capacity (2 > 1)")
    (fun () ->
      M.Space.validate_config inst
        { M.Space.space = [| 1; 5 |]; initial_load = [| 2; 0 |]; bypass = [] })

let space_plan_random =
  qtest "space: plans with one spare unit per disk always deliver" ~count:30
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let rng = rng_of_int seed in
      let n = 4 + Random.State.int rng 8 in
      let g = Mgraph.Graph_gen.gnm rng ~n ~m:(2 * n) in
      let inst = M.Instance.random_caps rng g ~choices:[ 1; 2 ] in
      (* loads: items per disk as sources; capacity leaves one spare
         above both the initial and the final occupancy (space must at
         least fit the end state, plus Hall et al.'s spare unit) *)
      let load = Array.make n 0 in
      let final = Array.make n 0 in
      Multigraph.iter_edges g (fun { Multigraph.u; v; _ } ->
          load.(u) <- load.(u) + 1;
          final.(v) <- final.(v) + 1);
      let cfg =
        {
          M.Space.space = Array.init n (fun d -> max load.(d) final.(d) + 1);
          initial_load = load;
          bypass = [];
        }
      in
      match M.Space.plan ~rng inst cfg with
      | plan ->
          M.Forwarding.validate inst plan = Ok ()
          && M.Space.check_plan inst cfg plan = Ok ()
      | exception M.Space.Stuck _ ->
          (* acceptable only if some disk really had zero slack for its
             arrivals; with +1 spare everywhere this shouldn't happen *)
          false)

(* ------------------------------------------------------------------ *)
(* Cloning *)

let test_cloning_broadcast_doubling () =
  (* 1 source, 7 destinations, c = 1 everywhere: holders double each
     round -> exactly 3 rounds *)
  let t =
    M.Cloning.create ~n_disks:8 ~caps:(Array.make 8 1)
      [| { M.Cloning.sources = [ 0 ]; destinations = [ 1; 2; 3; 4; 5; 6; 7 ] } |]
  in
  let plan = M.Cloning.plan t in
  Alcotest.(check bool) "valid" true (M.Cloning.validate t plan = Ok ());
  Alcotest.(check int) "3 rounds" 3 (Array.length plan);
  Alcotest.(check bool) "lower bound consistent" true
    (Array.length plan >= M.Cloning.lower_bound t)

let test_cloning_fast_hub () =
  (* source with c = 7 serves everyone at once *)
  let caps = Array.make 8 7 in
  let t =
    M.Cloning.create ~n_disks:8 ~caps
      [| { M.Cloning.sources = [ 0 ]; destinations = [ 1; 2; 3; 4; 5; 6; 7 ] } |]
  in
  let plan = M.Cloning.plan t in
  Alcotest.(check bool) "valid" true (M.Cloning.validate t plan = Ok ());
  Alcotest.(check int) "1 round" 1 (Array.length plan)

let test_cloning_guards () =
  Alcotest.check_raises "empty sources"
    (Invalid_argument "Cloning.create: empty source set") (fun () ->
      ignore
        (M.Cloning.create ~n_disks:2 ~caps:[| 1; 1 |]
           [| { M.Cloning.sources = []; destinations = [ 1 ] } |]));
  Alcotest.check_raises "bad disk"
    (Invalid_argument "Cloning.create: bad disk in destinations") (fun () ->
      ignore
        (M.Cloning.create ~n_disks:2 ~caps:[| 1; 1 |]
           [| { M.Cloning.sources = [ 0 ]; destinations = [ 5 ] } |]))

let test_cloning_validator_catches () =
  let t =
    M.Cloning.create ~n_disks:3 ~caps:[| 1; 1; 1 |]
      [| { M.Cloning.sources = [ 0 ]; destinations = [ 1; 2 ] } |]
  in
  (* serving from a disk that holds nothing *)
  let bad = [| [ { M.Cloning.item = 0; src = 1; dst = 2 } ] |] in
  Alcotest.(check bool) "bad source" true (M.Cloning.validate t bad <> Ok ());
  (* capacity violation *)
  let over =
    [|
      [
        { M.Cloning.item = 0; src = 0; dst = 1 };
        { M.Cloning.item = 0; src = 0; dst = 2 };
      ];
    |]
  in
  Alcotest.(check bool) "over cap" true (M.Cloning.validate t over <> Ok ());
  (* unmet destination *)
  let partial = [| [ { M.Cloning.item = 0; src = 0; dst = 1 } ] |] in
  Alcotest.(check bool) "unmet" true (M.Cloning.validate t partial <> Ok ())

let cloning_random_valid =
  qtest "cloning: random demand sets are planned validly" ~count:40
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let rng = rng_of_int seed in
      let n = 4 + Random.State.int rng 10 in
      let caps = Array.init n (fun _ -> 1 + Random.State.int rng 3) in
      let n_items = 1 + Random.State.int rng 12 in
      let demands =
        Array.init n_items (fun _ ->
            let src = Random.State.int rng n in
            let dests =
              List.init n Fun.id
              |> List.filter (fun v ->
                     v <> src && Random.State.bool rng)
            in
            { M.Cloning.sources = [ src ]; destinations = dests })
      in
      let t = M.Cloning.create ~n_disks:n ~caps demands in
      let plan = M.Cloning.plan ~rng t in
      M.Cloning.validate t plan = Ok ()
      && Array.length plan >= M.Cloning.lower_bound t
         || Array.for_all (fun d -> d.M.Cloning.destinations = []) demands)

(* ------------------------------------------------------------------ *)
(* Refine *)

let refine_never_worse =
  qtest "refine: valid, never more rounds, still covers everything" ~count:60
    (instance_spec_gen ~max_n:15 ~max_m:80 ())
    (fun spec ->
      let inst = instance_of_spec spec in
      if M.Instance.n_items inst = 0 then true
      else begin
        (* greedy often leaves slack for refine to reclaim *)
        let ec =
          Coloring.Greedy_coloring.color (M.Instance.graph inst)
            ~cap:(M.Instance.cap inst)
        in
        let sched = M.Schedule.of_coloring ec in
        let sched', st = M.Refine.refine inst sched in
        M.Schedule.validate inst sched' = Ok ()
        && st.M.Refine.rounds_after <= st.M.Refine.rounds_before
        && M.Schedule.n_rounds sched' >= M.Lower_bounds.lb1 inst
      end)

let test_refine_dissolves_slack () =
  (* two single-edge rounds that trivially fit together under c = 2 *)
  let g = Mgraph.Graph_gen.path 3 in
  let inst = M.Instance.uniform g ~cap:2 in
  let sched = M.Schedule.of_rounds [| [ 0 ]; [ 1 ] |] in
  let sched', st = M.Refine.refine inst sched in
  Alcotest.(check int) "one round" 1 (M.Schedule.n_rounds sched');
  Alcotest.(check int) "moved one edge" 1 st.M.Refine.moves;
  Alcotest.(check bool) "valid" true (M.Schedule.validate inst sched' = Ok ())

let test_refine_respects_tightness () =
  (* c = 1 on a path: the two edges share disk 1, rounds cannot merge *)
  let g = Mgraph.Graph_gen.path 3 in
  let inst = M.Instance.uniform g ~cap:1 in
  let sched = M.Schedule.of_rounds [| [ 0 ]; [ 1 ] |] in
  let sched', _ = M.Refine.refine inst sched in
  Alcotest.(check int) "still two rounds" 2 (M.Schedule.n_rounds sched')

(* ------------------------------------------------------------------ *)
(* Deadline windows *)

let deadline_properties =
  qtest "deadline: window schedules are feasible subsets" ~count:50
    (instance_spec_gen ~max_n:14 ~max_m:80 ())
    (fun spec ->
      let inst = instance_of_spec spec in
      let rng = rng_of_int spec.cap_seed in
      let budget = 1 + (spec.cap_seed mod 5) in
      let r = M.Deadline.plan_window ~rng inst ~budget in
      let m = M.Instance.n_items inst in
      (* partition *)
      List.length r.M.Deadline.moved + List.length r.M.Deadline.deferred = m
      && M.Schedule.n_rounds r.M.Deadline.schedule <= budget
      (* the window schedule is feasible for the sub-instance it moves *)
      && (let scheduled =
            Array.to_list (M.Schedule.rounds r.M.Deadline.schedule)
            |> List.concat |> List.sort compare
          in
          scheduled = r.M.Deadline.moved)
      && r.M.Deadline.moved_weight <= r.M.Deadline.total_weight +. 1e-9)

let test_deadline_prefers_heavy () =
  (* two forced rounds (c=1 path of 2 edges); weight concentrated on
     edge 1: a 1-round window must take it *)
  let g = Mgraph.Graph_gen.path 3 in
  let inst = M.Instance.uniform g ~cap:1 in
  let r =
    M.Deadline.plan_window inst ~budget:1
      ~weights:(fun e -> if e = 1 then 10.0 else 1.0)
  in
  Alcotest.(check (list int)) "moved the heavy item" [ 1 ] r.M.Deadline.moved;
  Alcotest.(check (float 1e-9)) "weight" 10.0 r.M.Deadline.moved_weight

let test_deadline_budget_extremes () =
  let g = Mgraph.Graph_gen.triangle_stack 3 in
  let inst = M.Instance.uniform g ~cap:2 in
  let zero = M.Deadline.plan_window inst ~budget:0 in
  Alcotest.(check (list int)) "nothing moves" [] zero.M.Deadline.moved;
  let plenty = M.Deadline.plan_window inst ~budget:100 in
  Alcotest.(check (list int)) "everything moves" [] plenty.M.Deadline.deferred;
  Alcotest.check_raises "negative"
    (Invalid_argument "Deadline.plan_window: negative budget") (fun () ->
      ignore (M.Deadline.plan_window inst ~budget:(-1)))

let () =
  Alcotest.run "extensions"
    [
      ( "halving",
        [
          halving_valid;
          Alcotest.test_case "recursion depth" `Quick
            test_halving_recursion_depth;
          Alcotest.test_case "thin graphs skip recursion" `Quick
            test_halving_no_recursion_when_thin;
          halving_close_to_direct;
          Alcotest.test_case "even powers optimal" `Quick
            test_halving_exact_on_even_powers;
        ] );
      ( "completion_time",
        [
          Alcotest.test_case "item sum" `Quick test_item_sum_hand;
          Alcotest.test_case "disk sum" `Quick test_disk_sum_hand;
          reorder_items_optimal;
          reorder_disks_no_worse;
          Alcotest.test_case "exact small" `Quick
            test_reorder_disks_exact_small;
        ] );
      ( "forwarding",
        [
          Alcotest.test_case "beats the Γ bound with helpers" `Quick
            test_forwarding_beats_gamma;
          Alcotest.test_case "falls back without helpers" `Quick
            test_forwarding_falls_back;
          forwarding_always_valid;
          Alcotest.test_case "validator catches" `Quick
            test_forwarding_validator_catches;
        ] );
      ( "space",
        [
          Alcotest.test_case "check" `Quick test_space_check;
          Alcotest.test_case "plan direct" `Quick test_space_plan_direct;
          Alcotest.test_case "cycle needs spare" `Quick
            test_space_cycle_needs_spare;
          Alcotest.test_case "deadlock detected" `Quick test_space_deadlock;
          Alcotest.test_case "config guards" `Quick test_space_config_guards;
          space_plan_random;
        ] );
      ( "refine",
        [
          refine_never_worse;
          Alcotest.test_case "dissolves slack" `Quick
            test_refine_dissolves_slack;
          Alcotest.test_case "respects tightness" `Quick
            test_refine_respects_tightness;
        ] );
      ( "deadline",
        [
          deadline_properties;
          Alcotest.test_case "prefers heavy" `Quick test_deadline_prefers_heavy;
          Alcotest.test_case "budget extremes" `Quick
            test_deadline_budget_extremes;
        ] );
      ( "cloning",
        [
          Alcotest.test_case "broadcast doubling" `Quick
            test_cloning_broadcast_doubling;
          Alcotest.test_case "fast hub" `Quick test_cloning_fast_hub;
          Alcotest.test_case "guards" `Quick test_cloning_guards;
          Alcotest.test_case "validator catches" `Quick
            test_cloning_validator_catches;
          cloning_random_valid;
        ] );
    ]
