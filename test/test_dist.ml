(* Crash-recovery battery for the distributed coordinator/worker
   runner.

   The contract under test: for a fixed instance and seed, the
   converged flight log is (a) clean under the independent execution
   certifier and (b) BYTE-IDENTICAL (Certify.execution_to_string) to
   the in-process engine's fault-free run — at any worker count, under
   kill -9 at any of the five phase transitions, across any number of
   crash/resume cycles, and through torn journal tails. *)

module D = Distproto
module M = Migration
open Test_util

(* ------------------------------------------------------------------ *)
(* harness *)

let temp_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "migrate_dist_test_%d_%d" (Unix.getpid ()) !ctr)
    in
    (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_state_dir f =
  let d = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let gen_inst ?(size = 8) ~family ~seed () =
  match Gen.family_of_string family with
  | Some fam -> Gen.instance fam ~seed ~size
  | None -> Alcotest.fail ("unknown family " ^ family)

(* the in-process engine run the distributed flight log must
   byte-match, seeded exactly like the coordinator's planner *)
let reference inst ~seed =
  (M.Engine.run ~rng:(D.Runner.plan_rng seed) ~policy:M.Engine.no_faults inst)
    .M.Engine.execution

let ref_rounds inst ~seed = List.length (reference inst ~seed).M.Certify.log

(* run + resume until Completed; kill specs are one-shot so resumes
   drop them.  Returns the outcome and the number of resumes. *)
let converge ?kill ~workers ~seed ~state_dir inst =
  let rec go attempts kill =
    if attempts > 10 then Alcotest.fail "runner did not converge in 10 resumes"
    else
      match D.Runner.run ?kill ~workers ~seed ~state_dir inst with
      | Error msg -> Alcotest.fail ("runner error: " ^ msg)
      | Ok (D.Runner.Interrupted _) -> go (attempts + 1) None
      | Ok (D.Runner.Completed o) -> (o, attempts)
  in
  go 0 kill

let check_converged ?kill ~workers ~seed inst =
  with_state_dir @@ fun state_dir ->
  let o, resumes = converge ?kill ~workers ~seed ~state_dir inst in
  let v = M.Certify.certify_execution o.D.Runner.execution in
  Alcotest.(check bool) "certifier clean" true (M.Certify.exec_ok v);
  Alcotest.(check string) "byte-identical to in-process engine"
    (M.Certify.execution_to_string (reference inst ~seed))
    (M.Certify.execution_to_string o.D.Runner.execution);
  (o, resumes)

(* ------------------------------------------------------------------ *)
(* message codec *)

let roundtrip m =
  match D.Message.decode (D.Message.encode m) with
  | Ok m' -> Alcotest.(check bool) "roundtrip" true (m = m')
  | Error e -> Alcotest.fail e

let test_message_roundtrip () =
  roundtrip (D.Message.Hello { worker = 2; workers = 4; rounds = 9 });
  roundtrip (D.Message.Ready { worker = 0 });
  roundtrip (D.Message.Round_start { round = 3; edges = [ 5; 1; 9 ] });
  roundtrip (D.Message.Round_start { round = 0; edges = [] });
  roundtrip (D.Message.Round_done { worker = 1; round = 7; edges = [ 0 ] });
  roundtrip (D.Message.Commit { round = 12 });
  roundtrip D.Message.Finish;
  roundtrip (D.Message.Bye { worker = 3; metrics = "" });
  (* the farewell metrics field is rest-of-line and may hold spaces *)
  roundtrip
    (D.Message.Bye { worker = 3; metrics = "c:dist.transfers=7 c:x.y=1" });
  List.iter
    (fun s ->
      match D.Message.decode s with
      | Ok _ -> Alcotest.fail ("decoded garbage: " ^ s)
      | Error _ -> ())
    [ ""; "hello"; "hello x 2 3"; "round 1"; "done 1 2"; "commitment 3" ]

(* ------------------------------------------------------------------ *)
(* sharding *)

let test_sharding_partition () =
  let inst = gen_inst ~family:"uniform" ~seed:11 () in
  let m = M.Instance.n_items inst in
  let round = List.init m Fun.id in
  List.iter
    (fun workers ->
      let shards = M.Engine.shard_round inst ~workers round in
      Alcotest.(check int) "one shard per worker" workers (Array.length shards);
      let union = List.sort compare (List.concat (Array.to_list shards)) in
      Alcotest.(check (list int)) "partition covers the round exactly" round
        union;
      Array.iteri
        (fun w shard ->
          List.iter
            (fun e ->
              Alcotest.(check int)
                (Printf.sprintf "edge %d owned by its shard" e)
                w
                (M.Engine.shard_of inst ~workers e))
            shard)
        shards)
    [ 1; 2; 3; 7 ];
  let one = M.Engine.shard_round inst ~workers:1 round in
  Alcotest.(check (list int)) "workers=1 keeps plan order" round one.(0)

let test_sharding_guards () =
  let inst = gen_inst ~family:"unit" ~seed:2 () in
  Alcotest.check_raises "workers >= 1"
    (Invalid_argument "Engine.shard_of: workers must be >= 1") (fun () ->
      ignore (M.Engine.shard_of inst ~workers:0 0));
  Alcotest.check_raises "edge range"
    (Invalid_argument "Engine.shard_of: edge out of range") (fun () ->
      ignore (M.Engine.shard_of inst ~workers:2 (M.Instance.n_items inst)))

(* ------------------------------------------------------------------ *)
(* journal *)

let test_journal_roundtrip () =
  with_state_dir @@ fun d ->
  let path = Filename.concat d "j.log" in
  let entries =
    [
      D.Journal.Planned { digest = "abc"; rounds = 3; plan_md5 = "def" };
      D.Journal.Sharded { workers = 4 };
      D.Journal.Round_started { round = 0 };
      D.Journal.Round_committed { round = 0; edges = [ 3; 1; 4 ] };
      D.Journal.Round_started { round = 1 };
      D.Journal.Round_committed { round = 1; edges = [] };
      D.Journal.Certified;
    ]
  in
  let j, prior = D.Journal.open_ path in
  Alcotest.(check int) "fresh journal" 0 (List.length prior);
  List.iter (D.Journal.append j) entries;
  D.Journal.close j;
  let replayed = D.Journal.replay path in
  Alcotest.(check bool) "replay returns every record" true
    (replayed = entries);
  Alcotest.(check bool) "phase is certified" true
    (D.Journal.phase_of replayed = D.Journal.All_certified);
  Alcotest.(check bool) "committed rounds in order" true
    (D.Journal.committed replayed = [ (0, [ 3; 1; 4 ]); (1, []) ]);
  (* reopening resumes the sequence: appended records still replay *)
  let j2, prior2 = D.Journal.open_ path in
  Alcotest.(check int) "reopen sees the prefix" 7 (List.length prior2);
  D.Journal.append j2 (D.Journal.Round_started { round = 2 });
  D.Journal.close j2;
  Alcotest.(check int) "append after reopen" 8
    (List.length (D.Journal.replay path))

let test_journal_phase_order () =
  let expected =
    [
      D.Journal.Empty;
      D.Journal.Planned_phase;
      D.Journal.Sharded_phase;
      D.Journal.Executing_round 0;
      D.Journal.Committed_round 0;
      D.Journal.Executing_round 1;
      D.Journal.Committed_round 1;
      D.Journal.Executing_round 2;
      D.Journal.All_certified;
    ]
  in
  let rec strictly_increasing = function
    | a :: (b :: _ as tl) ->
        D.Journal.compare_phase a b < 0 && strictly_increasing tl
    | _ -> true
  in
  Alcotest.(check bool) "phases are totally ordered" true
    (strictly_increasing expected)

(* a torn tail — the crash left a partial last record — must replay to
   the valid prefix, silently *)
let test_journal_torn_tail () =
  with_state_dir @@ fun d ->
  let path = Filename.concat d "j.log" in
  let j, _ = D.Journal.open_ path in
  D.Journal.append j (D.Journal.Planned { digest = "x"; rounds = 2; plan_md5 = "y" });
  D.Journal.append j (D.Journal.Round_started { round = 0 });
  D.Journal.append j (D.Journal.Round_committed { round = 0; edges = [ 1; 2 ] });
  D.Journal.close j;
  let full = D.Journal.replay path in
  Alcotest.(check int) "full replay" 3 (List.length full);
  let size = (Unix.stat path).Unix.st_size in
  (* chop 1..last-record-length bytes off the tail: every truncation
     must drop exactly the damaged record and keep the prefix *)
  let last_len =
    let ic = open_in path in
    let rec last acc =
      match input_line ic with
      | line -> last (String.length line + 1)
      | exception End_of_file -> acc
    in
    let n = last 0 in
    close_in ic;
    n
  in
  for chop = 1 to last_len do
    let copy = Filename.concat d (Printf.sprintf "torn_%d.log" chop) in
    let contents =
      let ic = open_in_bin path in
      let s = really_input_string ic (size - chop) in
      close_in ic;
      s
    in
    let oc = open_out_bin copy in
    output_string oc contents;
    close_out oc;
    let replayed = D.Journal.replay copy in
    Alcotest.(check int)
      (Printf.sprintf "chop %d drops only the torn record" chop)
      2 (List.length replayed);
    Alcotest.(check bool) "prefix intact" true
      (replayed = [ List.nth full 0; List.nth full 1 ])
  done;
  (* a corrupted byte mid-record (checksum mismatch) also truncates *)
  let corrupt = Filename.concat d "corrupt.log" in
  let contents =
    let ic = open_in_bin path in
    let s = really_input_string ic size in
    close_in ic;
    s
  in
  let b = Bytes.of_string contents in
  Bytes.set b (size - 10) 'Z';
  let oc = open_out_bin corrupt in
  output_bytes oc (Bytes.sub b 0 size);
  close_out oc;
  Alcotest.(check int) "bad checksum truncates" 2
    (List.length (D.Journal.replay corrupt))

(* ------------------------------------------------------------------ *)
(* the crash battery: one scripted kill -9 at each phase transition *)

let battery_inst () = gen_inst ~family:"uniform" ~seed:5 ()
let battery_seed = 5

let kill_round inst =
  (* land inside the plan so the kill actually fires *)
  min 1 (max 0 (ref_rounds inst ~seed:battery_seed - 1))

let test_kill_worker point () =
  let inst = battery_inst () in
  let kill =
    {
      D.Runner.kill_role = `Worker 1;
      kill_point = point;
      kill_round = kill_round inst;
    }
  in
  let o, resumes = check_converged ~kill ~workers:3 ~seed:battery_seed inst in
  (* a worker kill is absorbed inside one invocation: the coordinator
     respawns the corpse, no coordinator-level resume happens *)
  Alcotest.(check int) "no coordinator resume" 0 resumes;
  Alcotest.(check bool) "the dead worker was respawned" true
    (o.D.Runner.respawns >= 1)

let test_kill_coordinator point () =
  let inst = battery_inst () in
  let kill =
    {
      D.Runner.kill_role = `Coordinator;
      kill_point = point;
      kill_round = kill_round inst;
    }
  in
  let o, resumes = check_converged ~kill ~workers:3 ~seed:battery_seed inst in
  Alcotest.(check int) "exactly one resume" 1 resumes;
  Alcotest.(check bool) "resume observed the journal" true
    o.D.Runner.resumed;
  (* post-commit: the killed round is already durable, so the resume
     must skip it (pre-commit: it is not, so it is re-issued) *)
  let expect_skipped =
    match point with
    | D.Runner.Coord_post_commit -> kill_round inst + 1
    | _ -> kill_round inst
  in
  Alcotest.(check int) "committed rounds skipped on resume" expect_skipped
    o.D.Runner.skipped

(* interruption surfaces the journal phase truthfully *)
let test_interrupt_reports_phase () =
  let inst = battery_inst () in
  with_state_dir @@ fun state_dir ->
  let kill =
    { D.Runner.kill_role = `Coordinator; kill_point = D.Runner.Coord_pre_commit;
      kill_round = 0 }
  in
  (match D.Runner.run ~kill ~workers:2 ~seed:battery_seed ~state_dir inst with
  | Ok (D.Runner.Interrupted { phase; signal }) ->
      Alcotest.(check bool) "killed by SIGKILL" true (signal = Sys.sigkill);
      Alcotest.(check bool) "phase is round-0-executing" true
        (phase = D.Journal.Executing_round 0)
  | Ok (D.Runner.Completed _) -> Alcotest.fail "kill did not fire"
  | Error msg -> Alcotest.fail msg);
  let o, _ = converge ~workers:2 ~seed:battery_seed ~state_dir inst in
  Alcotest.(check string) "resume converges byte-identically"
    (M.Certify.execution_to_string (reference inst ~seed:battery_seed))
    (M.Certify.execution_to_string o.D.Runner.execution)

(* a journal whose tail record was torn by the crash must still resume
   to the byte-identical flight log: the torn commit is re-executed *)
let test_resume_from_torn_journal () =
  let inst = battery_inst () in
  with_state_dir @@ fun state_dir ->
  let kill =
    { D.Runner.kill_role = `Coordinator;
      kill_point = D.Runner.Coord_post_commit; kill_round = 1 }
  in
  (match D.Runner.run ~kill ~workers:2 ~seed:battery_seed ~state_dir inst with
  | Ok (D.Runner.Interrupted _) -> ()
  | _ -> Alcotest.fail "expected an interruption");
  (* tear the last record (the round-1 commit) in half *)
  let jpath = Filename.concat state_dir "journal.log" in
  let size = (Unix.stat jpath).Unix.st_size in
  let fd = Unix.openfile jpath [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd (size - 7);
  Unix.close fd;
  let entries = D.Journal.replay jpath in
  Alcotest.(check bool) "torn commit dropped from replay" true
    (D.Journal.phase_of entries = D.Journal.Executing_round 1);
  let o, _ = converge ~workers:2 ~seed:battery_seed ~state_dir inst in
  Alcotest.(check int) "only round 0 was skipped" 1 o.D.Runner.skipped;
  Alcotest.(check string) "torn resume is byte-identical"
    (M.Certify.execution_to_string (reference inst ~seed:battery_seed))
    (M.Certify.execution_to_string o.D.Runner.execution)

(* ------------------------------------------------------------------ *)
(* durability odds and ends *)

let test_rerun_is_idempotent () =
  let inst = battery_inst () in
  with_state_dir @@ fun state_dir ->
  let o1, _ = converge ~workers:2 ~seed:battery_seed ~state_dir inst in
  let o2, _ = converge ~workers:2 ~seed:battery_seed ~state_dir inst in
  Alcotest.(check bool) "second run resumed" true o2.D.Runner.resumed;
  Alcotest.(check int) "second run skipped everything" o1.D.Runner.rounds
    o2.D.Runner.skipped;
  Alcotest.(check string) "same bytes"
    (M.Certify.execution_to_string o1.D.Runner.execution)
    (M.Certify.execution_to_string o2.D.Runner.execution)

let test_state_dir_mismatch () =
  let inst = battery_inst () in
  with_state_dir @@ fun state_dir ->
  let _ = converge ~workers:2 ~seed:battery_seed ~state_dir inst in
  (match D.Runner.run ~workers:2 ~seed:(battery_seed + 1) ~state_dir inst with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a journal from a different seed");
  let other = gen_inst ~family:"parallel" ~seed:9 () in
  match D.Runner.run ~workers:2 ~seed:battery_seed ~state_dir other with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a journal from a different instance"

let test_worker_count_invariance () =
  let inst = gen_inst ~family:"multipool" ~seed:13 () in
  let strings =
    List.map
      (fun workers ->
        let o, _ = check_converged ~workers ~seed:13 inst in
        M.Certify.execution_to_string o.D.Runner.execution)
      [ 1; 2; 5 ]
  in
  match strings with
  | a :: rest ->
      List.iter (Alcotest.(check string) "same bytes at every N" a) rest
  | [] -> assert false

let test_runner_guards () =
  let inst = battery_inst () in
  Alcotest.check_raises "workers >= 1"
    (Invalid_argument "Runner.run: workers must be >= 1") (fun () ->
      ignore (D.Runner.run ~workers:0 ~seed:1 ~state_dir:"/nonexistent" inst))

(* ------------------------------------------------------------------ *)
(* randomized battery: family x kill schedule x worker count *)

let qcheck_families = [ "uniform"; "powerlaw"; "even"; "unit"; "parallel";
                        "bottleneck"; "multipool" ]

let crash_schedule_gen =
  QCheck2.Gen.(
    tup4 (int_bound (List.length qcheck_families - 1)) (int_bound 10_000)
      (int_range 1 3)
      (tup3 (int_bound 5) (int_bound 2) (int_bound 7)))

let prop_crash_recovery (fam_idx, iseed, workers, (kind, victim, round)) =
  let family = List.nth qcheck_families fam_idx in
  let inst = gen_inst ~size:6 ~family ~seed:iseed () in
  let n_rounds = ref_rounds inst ~seed:iseed in
  let kill =
    if n_rounds = 0 || kind >= 5 then None (* also exercise kill-free runs *)
    else
      let kill_round = round mod n_rounds in
      let w = victim mod workers in
      Some
        (match kind with
        | 0 ->
            { D.Runner.kill_role = `Worker w;
              kill_point = D.Runner.Worker_pre_round; kill_round }
        | 1 ->
            { D.Runner.kill_role = `Worker w;
              kill_point = D.Runner.Worker_mid_round; kill_round }
        | 2 ->
            { D.Runner.kill_role = `Worker w;
              kill_point = D.Runner.Worker_post_report; kill_round }
        | 3 ->
            { D.Runner.kill_role = `Coordinator;
              kill_point = D.Runner.Coord_pre_commit; kill_round }
        | _ ->
            { D.Runner.kill_role = `Coordinator;
              kill_point = D.Runner.Coord_post_commit; kill_round })
  in
  with_state_dir @@ fun state_dir ->
  let rec go attempts kill =
    if attempts > 10 then false
    else
      match D.Runner.run ?kill ~workers ~seed:iseed ~state_dir inst with
      | Error _ -> false
      | Ok (D.Runner.Interrupted _) -> go (attempts + 1) None
      | Ok (D.Runner.Completed o) ->
          M.Certify.exec_ok (M.Certify.certify_execution o.D.Runner.execution)
          && M.Certify.execution_to_string o.D.Runner.execution
             = M.Certify.execution_to_string (reference inst ~seed:iseed)
  in
  go 0 kill

let crash_recovery_random =
  qtest "crash recovery: random family x kill schedule x workers" ~count:200
    crash_schedule_gen prop_crash_recovery

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "distproto"
    [
      ( "protocol",
        [
          Alcotest.test_case "message roundtrip" `Quick test_message_roundtrip;
          Alcotest.test_case "shard partition" `Quick test_sharding_partition;
          Alcotest.test_case "shard guards" `Quick test_sharding_guards;
        ] );
      ( "journal",
        [
          Alcotest.test_case "roundtrip + reopen" `Quick test_journal_roundtrip;
          Alcotest.test_case "phase order" `Quick test_journal_phase_order;
          Alcotest.test_case "torn tail replay" `Quick test_journal_torn_tail;
        ] );
      ( "crash-battery",
        [
          Alcotest.test_case "worker pre-round kill" `Quick
            (test_kill_worker D.Runner.Worker_pre_round);
          Alcotest.test_case "worker mid-round kill" `Quick
            (test_kill_worker D.Runner.Worker_mid_round);
          Alcotest.test_case "worker post-report kill" `Quick
            (test_kill_worker D.Runner.Worker_post_report);
          Alcotest.test_case "coordinator pre-commit kill" `Quick
            (test_kill_coordinator D.Runner.Coord_pre_commit);
          Alcotest.test_case "coordinator post-commit kill" `Quick
            (test_kill_coordinator D.Runner.Coord_post_commit);
          Alcotest.test_case "interrupt reports the phase" `Quick
            test_interrupt_reports_phase;
          Alcotest.test_case "resume from a torn journal" `Quick
            test_resume_from_torn_journal;
        ] );
      ( "durability",
        [
          Alcotest.test_case "re-run is idempotent" `Quick
            test_rerun_is_idempotent;
          Alcotest.test_case "state-dir mismatch refused" `Quick
            test_state_dir_mismatch;
          Alcotest.test_case "worker-count invariance" `Quick
            test_worker_count_invariance;
          Alcotest.test_case "guards" `Quick test_runner_guards;
        ] );
      ("random", [ crash_recovery_random ]);
    ]
