(* Tests for the distributed orchestration protocol: Message, Net,
   Runner. *)

module D = Distproto
module S = Storsim
module M = Migration
open Test_util

let mk_job seed n_disks n_items =
  let rng = rng_of_int seed in
  let caps = Array.init n_disks (fun i -> 1 + (i mod 3)) in
  let g = Mgraph.Multigraph.create ~n:n_disks () in
  let sources = Array.make n_items 0 and targets = Array.make n_items 0 in
  for e = 0 to n_items - 1 do
    let u = Random.State.int rng n_disks in
    let rec pick () =
      let v = Random.State.int rng n_disks in
      if v = u then pick () else v
    in
    let v = pick () in
    ignore (Mgraph.Multigraph.add_edge g u v);
    sources.(e) <- u;
    targets.(e) <- v
  done;
  {
    S.Cluster.instance = M.Instance.create g ~caps;
    items = Array.init n_items Fun.id;
    sources;
    targets;
  }

(* ------------------------------------------------------------------ *)
(* Net *)

let test_net_ordering () =
  let net = D.Net.create ~latency:0.1 ~jitter:0.0 ~seed:1 () in
  let msg to_node payload =
    { D.Message.from_node = 0; to_node; sent_at = 0.0; payload }
  in
  D.Net.send net ~now:0.0 (msg 1 (D.Message.Round_done { round = 0 }));
  D.Net.send net ~now:0.0
    (msg 2 (D.Message.Transfer { round = 0; item = 0; dst = 2 }));
  (* control message (latency only) beats the data message (latency +
     service time) *)
  (match D.Net.next_delivery net with
  | Some (at, m) ->
      Alcotest.(check (float 1e-9)) "control first" 0.1 at;
      Alcotest.(check int) "to node 1" 1 m.D.Message.to_node
  | None -> Alcotest.fail "expected a delivery");
  (match D.Net.next_delivery net with
  | Some (at, _) -> Alcotest.(check (float 1e-9)) "data second" 1.1 at
  | None -> Alcotest.fail "expected the data message");
  Alcotest.(check bool) "quiet" true (D.Net.next_delivery net = None)

let test_net_loss_accounting () =
  let net = D.Net.create ~loss:0.5 ~seed:7 () in
  let msg = {
    D.Message.from_node = 0; to_node = 1; sent_at = 0.0;
    payload = D.Message.Round_done { round = 0 };
  } in
  for _ = 1 to 200 do
    D.Net.send net ~now:0.0 msg
  done;
  Alcotest.(check int) "offered" 200 (D.Net.offered net);
  let d = D.Net.dropped net in
  Alcotest.(check bool) "roughly half dropped" true (d > 60 && d < 140)

let test_net_guards () =
  Alcotest.check_raises "bad loss" (Invalid_argument "Net.create: loss in [0, 1)")
    (fun () -> ignore (D.Net.create ~loss:1.0 ~seed:1 ()));
  Alcotest.check_raises "bad latency"
    (Invalid_argument "Net.create: negative timing") (fun () ->
      ignore (D.Net.create ~latency:(-1.0) ~seed:1 ()))

(* ------------------------------------------------------------------ *)
(* Runner *)

let test_protocol_lossless () =
  let job = mk_job 3 6 40 in
  let sched = M.plan ~rng:(rng_of_int 3) M.Hetero job.S.Cluster.instance in
  let net = D.Net.create ~seed:3 () in
  let rep = D.Runner.run net job sched in
  Alcotest.(check int) "all delivered" 40 rep.D.Runner.items_delivered;
  Alcotest.(check int) "no retransmissions" 0 rep.D.Runner.retransmissions;
  Alcotest.(check int) "no drops" 0 rep.D.Runner.messages_dropped;
  Alcotest.(check int) "rounds" (M.Schedule.n_rounds sched) rep.D.Runner.rounds;
  (* message budget: per item one Transfer + one Ack; per round one
     Prepare per source + RoundDone per participant *)
  Alcotest.(check bool) "message count sane" true
    (rep.D.Runner.messages_offered >= 2 * 40
    && rep.D.Runner.messages_offered <= (2 * 40) + (4 * 6 * rep.D.Runner.rounds))

let protocol_survives_loss =
  qtest "protocol: migration completes under message loss" ~count:20
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 0 40))
    (fun (seed, loss_pct) ->
      let job = mk_job seed 6 30 in
      let sched =
        M.plan ~rng:(rng_of_int seed) M.Hetero job.S.Cluster.instance
      in
      let net =
        D.Net.create ~loss:(float_of_int loss_pct /. 100.0) ~seed ()
      in
      let rep = D.Runner.run net job sched in
      rep.D.Runner.items_delivered = 30
      && (loss_pct > 0 || rep.D.Runner.retransmissions = 0))

let test_protocol_loss_costs () =
  let run loss =
    let job = mk_job 11 8 80 in
    let sched = M.plan ~rng:(rng_of_int 11) M.Hetero job.S.Cluster.instance in
    let net = D.Net.create ~loss ~seed:11 () in
    D.Runner.run net job sched
  in
  let clean = run 0.0 and lossy = run 0.3 in
  Alcotest.(check bool) "lossy needs retransmissions" true
    (lossy.D.Runner.retransmissions > 0);
  Alcotest.(check bool) "lossy is slower" true
    (lossy.D.Runner.wall_time > clean.D.Runner.wall_time);
  Alcotest.(check bool) "lossy sends more" true
    (lossy.D.Runner.messages_offered > clean.D.Runner.messages_offered)

let test_protocol_empty_schedule () =
  let job = mk_job 5 4 0 in
  let net = D.Net.create ~seed:5 () in
  let rep = D.Runner.run net job (M.Schedule.of_rounds [||]) in
  Alcotest.(check int) "nothing" 0 rep.D.Runner.items_delivered;
  Alcotest.(check (float 1e-9)) "instant" 0.0 rep.D.Runner.wall_time

let test_protocol_barrier_ordering () =
  (* wall time of k rounds is at least k barriers' worth of latency:
     prepare + transfer + ack per round *)
  let job = mk_job 13 5 25 in
  let sched = M.plan ~rng:(rng_of_int 13) M.Hetero job.S.Cluster.instance in
  let net = D.Net.create ~latency:0.1 ~jitter:0.0 ~per_item:1.0 ~seed:13 () in
  let rep = D.Runner.run net job sched in
  let k = float_of_int rep.D.Runner.rounds in
  Alcotest.(check bool) "per-round floor" true
    (rep.D.Runner.wall_time >= k *. (0.1 +. 1.1 +. 0.1) -. 1e-6)

let test_failover_recovers () =
  let job = mk_job 17 6 60 in
  let sched = M.plan ~rng:(rng_of_int 17) M.Hetero job.S.Cluster.instance in
  let baseline =
    D.Runner.run (D.Net.create ~seed:17 ()) job sched
  in
  let rep =
    D.Runner.run
      ~crash:(baseline.D.Runner.wall_time /. 2.0, 3.0)
      (D.Net.create ~seed:17 ())
      job sched
  in
  Alcotest.(check int) "one failover" 1 rep.D.Runner.failovers;
  Alcotest.(check int) "all delivered" 60 rep.D.Runner.items_delivered;
  Alcotest.(check bool) "outage costs time" true
    (rep.D.Runner.wall_time > baseline.D.Runner.wall_time);
  Alcotest.(check bool) "query/report traffic" true
    (rep.D.Runner.messages_offered > baseline.D.Runner.messages_offered)

let test_failover_under_loss () =
  let job = mk_job 19 6 40 in
  let sched = M.plan ~rng:(rng_of_int 19) M.Hetero job.S.Cluster.instance in
  let rep =
    D.Runner.run ~crash:(5.0, 2.0)
      (D.Net.create ~loss:0.2 ~seed:19 ())
      job sched
  in
  Alcotest.(check int) "all delivered despite crash + loss" 40
    rep.D.Runner.items_delivered;
  Alcotest.(check int) "one failover" 1 rep.D.Runner.failovers

let test_failover_after_completion_is_noop () =
  let job = mk_job 23 5 20 in
  let sched = M.plan ~rng:(rng_of_int 23) M.Hetero job.S.Cluster.instance in
  let rep =
    D.Runner.run ~crash:(1.0e9, 1.0) (D.Net.create ~seed:23 ()) job sched
  in
  Alcotest.(check int) "never crashed" 0 rep.D.Runner.failovers

let () =
  Alcotest.run "distproto"
    [
      ( "net",
        [
          Alcotest.test_case "delivery ordering" `Quick test_net_ordering;
          Alcotest.test_case "loss accounting" `Quick test_net_loss_accounting;
          Alcotest.test_case "guards" `Quick test_net_guards;
        ] );
      ( "runner",
        [
          Alcotest.test_case "lossless run" `Quick test_protocol_lossless;
          protocol_survives_loss;
          Alcotest.test_case "loss costs" `Quick test_protocol_loss_costs;
          Alcotest.test_case "empty schedule" `Quick test_protocol_empty_schedule;
          Alcotest.test_case "barrier ordering" `Quick
            test_protocol_barrier_ordering;
        ] );
      ( "failover",
        [
          Alcotest.test_case "crash and recover" `Quick test_failover_recovers;
          Alcotest.test_case "crash under loss" `Quick test_failover_under_loss;
          Alcotest.test_case "late crash is a no-op" `Quick
            test_failover_after_completion_is_noop;
        ] );
    ]
