(* The online migration service: epoch batching, supersession,
   determinism across --jobs, and tamper-evidence of the flight log.

   The tests here pin the service's externally visible contract:

   - a single batch with no faults degenerates to the offline planner —
     the epoch's executed rounds ARE the offline schedule (oracle
     equivalence, the service adds no rounds and drops none);
   - the rendered report is byte-identical at --jobs 1 and --jobs 4
     over randomized trigger streams (the paper's determinism claim,
     extended to the streaming loop);
   - supersession settles the older request's move at absorption with
     latency 0 while the newer request does the physical work;
   - a tampered flight log is rejected by the independent certifier
     with the exact structured violation, not a generic failure. *)

module M = Migration
module C = M.Certify
open Test_util

let ones n = Array.make n 1.0

(* ------------------------------------------------------------------ *)
(* Offline oracle equivalence                                          *)

(* One Retarget batch at round 0, fault-free, epoch_rounds far above
   the plan length: the run must use exactly one executing epoch whose
   per-round completions equal the offline pipeline's schedule for the
   same diff instance under the same planner RNG derivation
   (Random.State.make [| rng_seed; epoch; 0xe19 |]). *)
let test_offline_oracle () =
  let seed = 11 in
  let cluster =
    {
      Service.caps = [| 3; 3; 2; 2 |];
      placement = [| 0; 0; 1; 1; 2; 2; 3; 3; 0; 1 |];
      demands = ones 10;
    }
  in
  let moves =
    [ (0, 2); (1, 3); (2, 0); (3, 2); (4, 1); (6, 0); (8, 3); (9, 2) ]
  in
  let r =
    Service.run ~jobs:1 ~epoch_rounds:64 ~rng_seed:seed cluster
      ~requests:[ { Service.at = 0; tenant = 0; trigger = Service.Retarget moves } ]
      ()
  in
  Alcotest.(check bool) "not truncated" false r.Service.truncated;
  let executing =
    List.filter
      (fun ep -> ep.C.se_log <> [])
      r.Service.execution.C.svc_epochs
  in
  let ep =
    match executing with
    | [ ep ] -> ep
    | eps -> Alcotest.failf "expected 1 executing epoch, got %d" (List.length eps)
  in
  let sched, _report =
    M.Pipeline.solve
      ~rng:(Random.State.make [| seed; 0; 0xe19 |])
      ~jobs:1 ~choose:M.Pipeline.auto_choose ep.C.se_instance
  in
  let items_of edges =
    List.sort compare (List.map (fun e -> ep.C.se_items.(e)) edges)
  in
  let oracle =
    Array.to_list (M.Schedule.rounds sched) |> List.map items_of
  in
  let got = List.map (fun rd -> items_of rd.C.completed) ep.C.se_log in
  Alcotest.(check (list (list int)))
    "epoch rounds = offline schedule" oracle got;
  Alcotest.(check int) "all moves executed" (List.length moves)
    (List.fold_left (fun acc rd -> acc + List.length rd) 0 got)

(* ------------------------------------------------------------------ *)
(* Determinism across --jobs                                           *)

(* A randomized spec realized deterministically, so qcheck shrinking
   stays meaningful.  The streams mix every trigger kind; invalid ones
   (e.g. failing an already-dead disk) exercise admission control. *)
type svc_spec = { sseed : int; ndisks : int; nitems : int; nreqs : int }

let cluster_of_spec { sseed; ndisks; nitems; _ } =
  let rng = rng_of_int sseed in
  {
    Service.caps = Array.init ndisks (fun _ -> 1 + Random.State.int rng 4);
    placement = Array.init nitems (fun _ -> Random.State.int rng ndisks);
    demands =
      Array.init nitems (fun _ -> 0.25 +. Random.State.float rng 2.0);
  }

let requests_of_spec { sseed; ndisks; nitems; nreqs } =
  let rng = rng_of_int (sseed + 7) in
  List.init nreqs (fun i ->
      let at = i * Random.State.int rng 7 in
      let trigger =
        match Random.State.int rng 6 with
        | 0 | 1 ->
            let k = 1 + Random.State.int rng 5 in
            Service.Retarget
              (List.init k (fun _ ->
                   (Random.State.int rng nitems, Random.State.int rng ndisks)))
        | 2 ->
            Service.Demand_shift
              { fraction = 0.1 +. Random.State.float rng 0.4 }
        | 3 -> Service.Add_disk { cap = 1 + Random.State.int rng 3 }
        | 4 -> Service.Remove_disk { disk = Random.State.int rng ndisks }
        | _ -> Service.Fail_disk { disk = Random.State.int rng ndisks }
      in
      { Service.at; tenant = 0; trigger })

let svc_spec_gen =
  QCheck2.Gen.(
    let* sseed = int_bound 1_000_000 in
    let* ndisks = int_range 3 6 in
    let* nitems = int_range 10 30 in
    let* nreqs = int_range 1 6 in
    return { sseed; ndisks; nitems; nreqs })

let render r =
  Format.asprintf "%a@.%a@." Service.pp_report r Service.pp_statuses r

let run_spec ~jobs spec =
  Service.run ~jobs ~epoch_rounds:8 ~rng_seed:spec.sseed
    (cluster_of_spec spec)
    ~requests:(requests_of_spec spec) ()

let prop_jobs_deterministic spec =
  let r1 = run_spec ~jobs:1 spec and r4 = run_spec ~jobs:4 spec in
  if render r1 <> render r4 then
    QCheck2.Test.fail_reportf
      "reports differ between --jobs 1 and --jobs 4 for seed=%d disks=%d \
       items=%d reqs=%d@.--- jobs 1:@.%s@.--- jobs 4:@.%s"
      spec.sseed spec.ndisks spec.nitems spec.nreqs (render r1) (render r4);
  (* and both certify: determinism of a wrong answer is no comfort *)
  C.service_ok (C.certify_service r1.Service.execution)

(* ------------------------------------------------------------------ *)
(* Supersession latency                                                *)

(* A and B arrive at the same boundary, both retargeting item 0.  B is
   newer (later in arrival order), so A's move is superseded at
   absorption: A completes at its own absorption round with latency 0
   and B pays for the physical transfer.  The final placement obeys B. *)
let test_supersession_latency () =
  let cluster =
    { Service.caps = [| 2; 2; 2 |]; placement = [| 0; 0; 1 |]; demands = ones 3 }
  in
  let requests =
    [
      { Service.at = 0; tenant = 0; trigger = Service.Retarget [ (0, 1) ] };
      { Service.at = 0; tenant = 0; trigger = Service.Retarget [ (0, 2) ] };
    ]
  in
  let r = Service.run ~epoch_rounds:8 ~rng_seed:3 cluster ~requests () in
  (match r.Service.statuses.(0) with
  | C.Sreq_completed { absorbed; completed } ->
      Alcotest.(check int) "A absorbed at its arrival boundary" 0 absorbed;
      Alcotest.(check int) "A completed by supersession, latency 0" 0 completed
  | s ->
      Alcotest.failf "request A: expected completion, got %s"
        (C.service_request_status_to_string s));
  (match r.Service.statuses.(1) with
  | C.Sreq_completed { completed; _ } ->
      Alcotest.(check bool) "B paid at least one round" true (completed >= 1)
  | s ->
      Alcotest.failf "request B: expected completion, got %s"
        (C.service_request_status_to_string s));
  Alcotest.(check int) "A's latency is 0" (Some 0 |> Option.get)
    (List.assoc 0 r.Service.latencies);
  Alcotest.(check bool) "B's latency >= 1" true
    (List.assoc 1 r.Service.latencies >= 1);
  Alcotest.(check int) "item 0 ends on B's target"
    2 r.Service.execution.C.svc_final.(0);
  Alcotest.(check bool) "flight log certifies" true
    (C.service_ok (C.certify_service r.Service.execution))

(* ------------------------------------------------------------------ *)
(* Tamper evidence                                                     *)

let clean_run () =
  let cluster =
    {
      Service.caps = [| 2; 2; 2; 2 |];
      placement = [| 0; 0; 1; 1; 2; 3 |];
      demands = ones 6;
    }
  in
  let requests =
    [
      { Service.at = 0; tenant = 0; trigger = Service.Retarget [ (0, 2); (2, 3); (4, 0) ] };
      { Service.at = 2; tenant = 0; trigger = Service.Retarget [ (1, 3); (5, 1) ] };
    ]
  in
  Service.run ~epoch_rounds:4 ~rng_seed:5 cluster ~requests ()

let test_tamper_duplicate_completion () =
  let r = clean_run () in
  let exec = r.Service.execution in
  Alcotest.(check bool) "untampered log certifies" true
    (C.service_ok (C.certify_service exec));
  let epochs =
    match exec.C.svc_epochs with
    | ep :: rest ->
        let log =
          match ep.C.se_log with
          | rd :: tl ->
              { rd with C.completed = List.hd rd.C.completed :: rd.C.completed }
              :: tl
          | [] -> Alcotest.fail "epoch 0 executed no rounds"
        in
        { ep with C.se_log = log } :: rest
    | [] -> Alcotest.fail "run produced no epochs"
  in
  let v = C.certify_service { exec with C.svc_epochs = epochs } in
  Alcotest.(check bool) "tampered log rejected" false (C.service_ok v);
  let is_duplicate = function
    | C.Svc_epoch { epoch = 0; violation = C.Exec_duplicate _ } -> true
    | _ -> false
  in
  if not (List.exists is_duplicate v.C.svc_violations) then
    Alcotest.failf
      "expected Svc_epoch {epoch=0; Exec_duplicate _}, got: %s"
      (String.concat "; "
         (List.map C.service_violation_to_string v.C.svc_violations))

let test_tamper_final_placement () =
  let r = clean_run () in
  let exec = r.Service.execution in
  let ndisks = 4 in
  let forged =
    Array.map (fun d -> (d + 1) mod ndisks) exec.C.svc_final
  in
  let v = C.certify_service { exec with C.svc_final = forged } in
  Alcotest.(check bool) "forged final rejected" false (C.service_ok v);
  let is_final = function C.Svc_final_mismatch _ -> true | _ -> false in
  if not (List.exists is_final v.C.svc_violations) then
    Alcotest.failf "expected Svc_final_mismatch, got: %s"
      (String.concat "; "
         (List.map C.service_violation_to_string v.C.svc_violations))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "service"
    [
      ( "oracle",
        [
          Alcotest.test_case "single batch = offline plan" `Quick
            test_offline_oracle;
        ] );
      ( "determinism",
        [
          qtest ~count:15 "report byte-identical at --jobs 1 and 4"
            svc_spec_gen prop_jobs_deterministic;
        ] );
      ( "supersession",
        [
          Alcotest.test_case "superseded move settles with latency 0" `Quick
            test_supersession_latency;
        ] );
      ( "tamper",
        [
          Alcotest.test_case "duplicated completion -> Exec_duplicate" `Quick
            test_tamper_duplicate_completion;
          Alcotest.test_case "forged final placement -> Svc_final_mismatch"
            `Quick test_tamper_final_placement;
        ] );
    ]
