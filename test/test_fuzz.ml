(* The adversarial harness itself: generator families, the independent
   certifier, the shrinker, and the differential fuzz loop — including
   the mutation smoke test that proves a broken planner is caught and
   shrunk to a small reproducer. *)

module M = Migration
module Multigraph = Mgraph.Multigraph
open Test_util

(* registry snapshot before any test registers a deliberately broken
   solver: the clean differential run must only audit the real ones *)
let real_solvers = M.Solver.names () @ [ "forwarding" ]

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* generator families *)

let test_families_build () =
  List.iter
    (fun fam ->
      List.iter
        (fun (seed, size) ->
          let inst = Gen.instance fam ~seed ~size in
          Alcotest.(check bool)
            (Printf.sprintf "%s seed=%d size=%d has items" fam.Gen.name seed
               size)
            true
            (M.Instance.n_items inst > 0);
          (* reproducer contract: same triple, same instance *)
          let again = Gen.instance fam ~seed ~size in
          Alcotest.(check string)
            (fam.Gen.name ^ " deterministic")
            (M.Instance.to_string inst)
            (M.Instance.to_string again);
          (* printable and parseable *)
          let rt = M.Instance.of_string (M.Instance.to_string inst) in
          Alcotest.(check int)
            (fam.Gen.name ^ " roundtrips")
            (M.Instance.n_items inst) (M.Instance.n_items rt))
        [ (0, 4); (1, 12); (2, 25) ])
    Gen.all

let test_family_lookup () =
  List.iter
    (fun name ->
      match Gen.family_of_string name with
      | Some f -> Alcotest.(check string) "name matches" name f.Gen.name
      | None -> Alcotest.failf "family %s not found" name)
    Gen.names;
  Alcotest.(check bool) "unknown family" true (Gen.family_of_string "nope" = None)

let test_family_regimes () =
  let even = Option.get (Gen.family_of_string "even") in
  let unit = Option.get (Gen.family_of_string "unit") in
  let multipool = Option.get (Gen.family_of_string "multipool") in
  for seed = 0 to 4 do
    Alcotest.(check bool) "even family is all-even" true
      (M.Instance.all_caps_even (Gen.instance even ~seed ~size:12));
    Alcotest.(check bool) "unit family is c_v = 1" true
      (Array.for_all (( = ) 1)
         (M.Instance.caps (Gen.instance unit ~seed ~size:12)));
    Alcotest.(check bool) "multipool is disconnected" true
      (List.length (M.Instance.decompose (Gen.instance multipool ~seed ~size:12))
      > 1)
  done

(* the bottleneck family must make the subset bound bind: the witness
   returned by lb2_witness actually achieves the reported Γ-term *)
let test_bottleneck_witness () =
  let fam = Option.get (Gen.family_of_string "bottleneck") in
  for seed = 0 to 9 do
    let inst = Gen.instance fam ~seed ~size:12 in
    let rng = rng_of_int seed in
    let lb2, witness = M.Lower_bounds.lb2_witness ~rng inst in
    Alcotest.(check bool) "bound is positive" true (lb2 > 0);
    Alcotest.(check int)
      (Printf.sprintf "witness achieves the bound (seed %d)" seed)
      lb2
      (M.Lower_bounds.gamma_term inst witness);
    Alcotest.(check bool)
      (Printf.sprintf "Gamma strictly beats LB1 (seed %d)" seed)
      true
      (lb2 > M.Lower_bounds.lb1 inst)
  done

(* ------------------------------------------------------------------ *)
(* the independent certifier *)

let path_c1 () =
  (* 0 - 1 - 2 with c_1 = 1: both edges collide at disk 1, lb = 2 *)
  let g = Multigraph.create ~n:3 () in
  ignore (Multigraph.add_edge g 0 1);
  ignore (Multigraph.add_edge g 1 2);
  M.Instance.create g ~caps:[| 1; 1; 1 |]

let has_violation v pred = List.exists pred v.M.Certify.violations

let test_certify_ok () =
  let inst = path_c1 () in
  let v = M.Certify.check inst (M.Schedule.of_rounds [| [ 0 ]; [ 1 ] |]) in
  Alcotest.(check bool) "certifies" true (M.Certify.ok v);
  Alcotest.(check int) "lb recorded" 2 v.M.Certify.lb

let test_certify_missing_and_duplicate () =
  let inst = path_c1 () in
  let v = M.Certify.check inst (M.Schedule.of_rounds [| [ 0 ]; [ 0 ] |]) in
  Alcotest.(check bool) "duplicate named" true
    (has_violation v (function
      | M.Certify.Duplicate_item { item = 0; _ } -> true
      | _ -> false));
  Alcotest.(check bool) "missing named" true
    (has_violation v (function
      | M.Certify.Missing_item { item = 1 } -> true
      | _ -> false))

let test_certify_overload_and_lb () =
  let inst = path_c1 () in
  let v = M.Certify.check inst (M.Schedule.of_rounds [| [ 0; 1 ] |]) in
  Alcotest.(check bool) "overload names disk and round" true
    (has_violation v (function
      | M.Certify.Overload { round = 0; disk = 1; load = 2; cap = 1 } -> true
      | _ -> false));
  Alcotest.(check bool) "beats lower bound" true
    (has_violation v (function
      | M.Certify.Beats_lower_bound { rounds = 1; lb = 2 } -> true
      | _ -> false))

let test_certify_unknown_item () =
  let inst = path_c1 () in
  let v = M.Certify.check inst (M.Schedule.of_rounds [| [ 0; 7 ]; [ 1 ] |]) in
  Alcotest.(check bool) "unknown item named" true
    (has_violation v (function
      | M.Certify.Unknown_item { item = 7; round = 0 } -> true
      | _ -> false))

let test_certify_guarantees () =
  (* even-opt must tie LB1 exactly: a 1-round-too-long schedule of an
     all-even instance certifies as a schedule but breaks the
     guarantee *)
  let g = Multigraph.create ~n:2 () in
  ignore (Multigraph.add_edge g 0 1);
  ignore (Multigraph.add_edge g 0 1);
  let inst = M.Instance.create g ~caps:[| 2; 2 |] in
  let lazy_sched = M.Schedule.of_rounds [| [ 0 ]; [ 1 ] |] in
  Alcotest.(check bool) "unattributed schedule passes" true
    (M.Certify.ok (M.Certify.check inst lazy_sched));
  let v = M.Certify.check ~solver:"even-opt" inst lazy_sched in
  Alcotest.(check bool) "even-opt guarantee broken" true
    (has_violation v (function
      | M.Certify.Guarantee_broken { solver = "even-opt"; _ } -> true
      | _ -> false));
  let tight = M.Schedule.of_rounds [| [ 0; 1 ] |] in
  Alcotest.(check bool) "tight schedule certifies for even-opt" true
    (M.Certify.ok (M.Certify.check ~solver:"even-opt" inst tight))

(* ------------------------------------------------------------------ *)
(* the shrinker *)

let test_shrink_minimizes () =
  let rng = rng_of_int 3 in
  let g = Mgraph.Graph_gen.gnm rng ~n:12 ~m:40 in
  let inst = M.Instance.random_caps rng g ~choices:[ 1; 2; 3 ] in
  let fails i = M.Instance.n_items i >= 3 in
  let shrunk = M.Shrink.minimize ~fails inst in
  Alcotest.(check int) "minimal failing size" 3 (M.Instance.n_items shrunk);
  Alcotest.(check bool) "still fails" true (fails shrunk);
  Alcotest.(check bool) "isolated disks dropped" true
    (M.Instance.n_disks shrunk <= 6)

let test_shrink_requires_failure () =
  Alcotest.check_raises "non-failing instance rejected"
    (Invalid_argument "Shrink.minimize: instance does not fail") (fun () ->
      ignore
        (M.Shrink.minimize ~fails:(fun _ -> false) (path_c1 ())))

(* ------------------------------------------------------------------ *)
(* the differential loop *)

let test_differential_clean () =
  let report =
    Gen.Fuzz.run ~size:10 ~solvers:real_solvers ~families:Gen.all ~count:4
      ~seed:99 ()
  in
  Alcotest.(check int) "instances" (4 * List.length Gen.all)
    report.Gen.Fuzz.total_instances;
  Alcotest.(check (list string)) "no failures" []
    (List.map
       (fun (f : Gen.Fuzz.failure) ->
         Printf.sprintf "%s/%s: %s" f.Gen.Fuzz.family f.Gen.Fuzz.solver
           (String.concat "; " f.Gen.Fuzz.messages))
       report.Gen.Fuzz.failures);
  (* every family exercised every requested solver it can *)
  List.iter
    (fun (fr : Gen.Fuzz.family_report) ->
      Alcotest.(check bool)
        (fr.Gen.Fuzz.family ^ " ran hetero")
        true
        (List.exists
           (fun (s : Gen.Fuzz.solver_stats) ->
             s.Gen.Fuzz.solver = "hetero" && s.Gen.Fuzz.runs = 4)
           fr.Gen.Fuzz.per_solver))
    report.Gen.Fuzz.family_reports

(* The acceptance-criterion mutation smoke test: register a planner
   that overloads disks by collapsing its first two rounds; the
   certifier must name the invariant and the shrunk reproducer must be
   small. *)
let broken_solver =
  {
    M.Solver.name = "broken";
    doc = "hetero with rounds 0 and 1 collapsed (deliberately invalid)";
    can_solve = (fun _ -> true);
    solve =
      (fun ctx inst ->
        let sched = M.Solver.hetero.M.Solver.solve ctx inst in
        let rounds = M.Schedule.rounds sched in
        if Array.length rounds < 2 then sched
        else
          M.Schedule.of_rounds
            (Array.append
               [| rounds.(0) @ rounds.(1) |]
               (Array.sub rounds 2 (Array.length rounds - 2))));
  }

let test_mutation_caught () =
  M.Solver.register broken_solver;
  let fam = Option.get (Gen.family_of_string "unit") in
  let report =
    Gen.Fuzz.run ~size:12 ~solvers:[ "broken" ] ~families:[ fam ] ~count:3
      ~seed:5 ()
  in
  Alcotest.(check bool) "at least one failure" true
    (report.Gen.Fuzz.failures <> []);
  List.iter
    (fun (f : Gen.Fuzz.failure) ->
      Alcotest.(check string) "attributed to the mutant" "broken"
        f.Gen.Fuzz.solver;
      (* the certifier names the violated invariant, not just "invalid" *)
      Alcotest.(check bool) "overload invariant named" true
        (List.exists
           (fun m -> contains m "overloads disk" || contains m "lower bound")
           f.Gen.Fuzz.messages);
      (* shrunk reproducer is small and still fails the same check *)
      Alcotest.(check bool) "reproducer <= 8 disks" true
        (M.Instance.n_disks f.Gen.Fuzz.shrunk <= 8);
      let still =
        match M.Solver.find "broken" with
        | None -> false
        | Some s ->
            let sched =
              M.Solver.solve ~rng:(rng_of_int 0) s f.Gen.Fuzz.shrunk
            in
            not
              (M.Certify.ok
                 (M.Certify.check ~solver:"broken" f.Gen.Fuzz.shrunk sched))
      in
      Alcotest.(check bool) "shrunk reproducer still fails" true still)
    report.Gen.Fuzz.failures

(* a second mutation: dropping the last round loses items — the
   certifier must name the missing item *)
let dropping_solver =
  {
    M.Solver.name = "dropper";
    doc = "hetero minus its last round (deliberately lossy)";
    can_solve = (fun _ -> true);
    solve =
      (fun ctx inst ->
        let sched = M.Solver.hetero.M.Solver.solve ctx inst in
        let rounds = M.Schedule.rounds sched in
        if Array.length rounds = 0 then sched
        else M.Schedule.of_rounds (Array.sub rounds 0 (Array.length rounds - 1)));
  }

let test_dropper_caught () =
  M.Solver.register dropping_solver;
  let fam = Option.get (Gen.family_of_string "uniform") in
  let report =
    Gen.Fuzz.run ~size:8 ~solvers:[ "dropper" ] ~families:[ fam ] ~count:2
      ~seed:11 ()
  in
  Alcotest.(check bool) "dropper caught" true (report.Gen.Fuzz.failures <> []);
  let f = List.hd report.Gen.Fuzz.failures in
  Alcotest.(check bool) "missing item named" true
    (List.exists (fun m -> contains m "never scheduled") f.Gen.Fuzz.messages)

(* ------------------------------------------------------------------ *)
(* service soak: the whole streaming daemon as the fuzz cell *)

let soak_drive ~fault_rate ~inst ~seed =
  match Service.soak ~epoch_rounds:4 ~fault_rate ~inst ~seed () with
  | Ok (s : Service.soak_stats) ->
      Ok
        {
          Gen.Fuzz.ss_epochs = s.Service.soak_epochs;
          ss_rounds = s.Service.soak_rounds;
          ss_transfers = s.Service.soak_transfers;
          ss_completed = s.Service.soak_completed;
          ss_abandoned = s.Service.soak_abandoned;
          ss_rejected = s.Service.soak_rejected;
        }
  | Error msgs -> Error msgs

(* every generator family through the service loop — the soak driver
   mixes demand-shift / disk-failure / disk-addition triggers into the
   stream — fault-free and under 10% transfer faults: every
   concatenated flight log must certify *)
let test_service_soak_clean () =
  List.iter
    (fun fault_rate ->
      let report =
        Gen.Fuzz.run_service ~size:8
          ~drive:(fun ~inst ~seed -> soak_drive ~fault_rate ~inst ~seed)
          ~families:Gen.all ~count:2 ~seed:77 ()
      in
      Alcotest.(check int)
        (Printf.sprintf "fault %.2f: every instance soaked" fault_rate)
        (2 * List.length Gen.all)
        report.Gen.Fuzz.svc_instances;
      Alcotest.(check bool)
        (Printf.sprintf "fault %.2f: transfers happened" fault_rate)
        true
        (report.Gen.Fuzz.svc_totals.Gen.Fuzz.ss_transfers > 0);
      match report.Gen.Fuzz.svc_failures with
      | [] -> ()
      | f :: _ ->
          Alcotest.failf "fault %.2f: %s seed=%d size=%d: %s" fault_rate
            f.Gen.Fuzz.sf_family f.Gen.Fuzz.sf_seed f.Gen.Fuzz.sf_size
            (String.concat "; " f.Gen.Fuzz.sf_messages))
    [ 0.0; 0.1 ]

(* shrink plumbing: an artificially failing driver must come back as a
   failure whose reproducer was delta-debugged to the boundary (the
   driver rejects anything over 3 items, so the minimum is 4) *)
let test_service_soak_shrinks () =
  let zero =
    {
      Gen.Fuzz.ss_epochs = 0;
      ss_rounds = 0;
      ss_transfers = 0;
      ss_completed = 0;
      ss_abandoned = 0;
      ss_rejected = 0;
    }
  in
  let drive ~inst ~seed:_ =
    if M.Instance.n_items inst > 3 then Error [ "too big" ] else Ok zero
  in
  let fam = Option.get (Gen.family_of_string "uniform") in
  let report =
    Gen.Fuzz.run_service ~size:10 ~drive ~families:[ fam ] ~count:1 ~seed:5 ()
  in
  let f =
    match report.Gen.Fuzz.svc_failures with
    | [ f ] -> f
    | fs -> Alcotest.failf "expected 1 failure, got %d" (List.length fs)
  in
  Alcotest.(check bool) "shrunk no bigger than original" true
    (M.Instance.n_items f.Gen.Fuzz.sf_shrunk
    <= M.Instance.n_items f.Gen.Fuzz.sf_instance);
  Alcotest.(check int) "shrunk to the boundary" 4
    (M.Instance.n_items f.Gen.Fuzz.sf_shrunk);
  Alcotest.(check bool) "shrunk reproducer still fails" true
    (Result.is_error (drive ~inst:f.Gen.Fuzz.sf_shrunk ~seed:0))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fuzz"
    [
      ( "families",
        [
          Alcotest.test_case "build, determinism, roundtrip" `Quick
            test_families_build;
          Alcotest.test_case "lookup by name" `Quick test_family_lookup;
          Alcotest.test_case "family regimes hold" `Quick test_family_regimes;
          Alcotest.test_case "bottleneck witness achieves Gamma" `Quick
            test_bottleneck_witness;
        ] );
      ( "certify",
        [
          Alcotest.test_case "valid schedule certifies" `Quick test_certify_ok;
          Alcotest.test_case "missing and duplicate items" `Quick
            test_certify_missing_and_duplicate;
          Alcotest.test_case "overload and lower bound" `Quick
            test_certify_overload_and_lb;
          Alcotest.test_case "unknown item" `Quick test_certify_unknown_item;
          Alcotest.test_case "solver guarantees" `Quick test_certify_guarantees;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "minimizes to the boundary" `Quick
            test_shrink_minimizes;
          Alcotest.test_case "rejects non-failing input" `Quick
            test_shrink_requires_failure;
        ] );
      ( "differential",
        [
          Alcotest.test_case "all families, all solvers, clean" `Slow
            test_differential_clean;
          Alcotest.test_case "mutation: overload caught and shrunk" `Quick
            test_mutation_caught;
          Alcotest.test_case "mutation: lost items caught" `Quick
            test_dropper_caught;
        ] );
      ( "service",
        [
          Alcotest.test_case "all families soak clean, 0% and 10% faults"
            `Slow test_service_soak_clean;
          Alcotest.test_case "failing driver shrunk to the boundary" `Quick
            test_service_soak_shrinks;
        ] );
    ]
