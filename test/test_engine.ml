(* The fault-tolerant execution engine: closed-loop simulate / detect /
   re-plan.  Covers the fault-free identity, retry + backoff, crash
   quarantine, capacity degradation, the determinism contract across
   --jobs, and the execution certifier's tamper detection. *)

module M = Migration
module S = Storsim
open Test_util

let rng () = rng_of_int 0xe9e

(* scripted policies: fire a fixed fault list at a given round *)
let script ?(name = "script") events =
  {
    M.Engine.policy_name = name;
    decide =
      (fun ~round ~attempted:_ ->
        List.concat_map (fun (r, fs) -> if r = round then fs else []) events);
  }

let check_certified outcome where =
  let v = M.Certify.certify_execution outcome.M.Engine.execution in
  if not (M.Certify.exec_ok v) then
    Alcotest.failf "%s: execution rejected: %s" where
      (String.concat "; "
         (List.map M.Certify.exec_violation_to_string
            v.M.Certify.exec_violations))

let small_instance seed =
  instance_of_spec
    { gspec = { seed; n = 8; m = 40 }; cap_seed = seed + 1; menu = [ 1; 2; 3 ] }

(* ------------------------------------------------------------------ *)
(* fault-free runs are exactly the plan *)

let test_no_faults_is_plan () =
  let inst = small_instance 3 in
  let sched, _ =
    M.Pipeline.solve ~rng:(rng ()) ~choose:M.Pipeline.auto_choose inst
  in
  let o = M.Engine.run ~rng:(rng ()) ~policy:M.Engine.no_faults inst in
  Alcotest.(check int) "all completed" (M.Instance.n_items inst) o.M.Engine.completed;
  Alcotest.(check int) "no replans" 0 o.M.Engine.replans;
  Alcotest.(check int) "no retries" 0 o.M.Engine.retries;
  Alcotest.(check int) "no idle rounds" 0 o.M.Engine.idle_rounds;
  Alcotest.(check (list (pair int int))) "nothing degraded" [] o.M.Engine.degraded;
  Alcotest.(check string) "executed schedule = plan"
    (M.Schedule.to_string sched)
    (M.Schedule.to_string o.M.Engine.schedule);
  check_valid_schedule inst o.M.Engine.schedule "fault-free execution";
  check_certified o "fault-free"

let engine_no_faults_prop =
  qtest "engine: fault-free run completes and certifies" ~count:50
    (instance_spec_gen ~max_n:10 ~max_m:60 ())
    (fun spec ->
      let inst = instance_of_spec spec in
      let o = M.Engine.run ~rng:(rng ()) ~policy:M.Engine.no_faults inst in
      o.M.Engine.completed = M.Instance.n_items inst
      && M.Certify.exec_ok (M.Certify.certify_execution o.M.Engine.execution))

(* ------------------------------------------------------------------ *)
(* transient failures: bounded retry with exponential backoff *)

let test_transient_retry () =
  (* fail everything attempted in round 0 once; all items must still
     complete, with retries recorded and the execution certified *)
  let inst = small_instance 7 in
  let first_round = ref None in
  let policy =
    {
      M.Engine.policy_name = "fail-round-0";
      decide =
        (fun ~round ~attempted ->
          if round = 0 then begin
            first_round := Some attempted;
            List.map (fun e -> M.Engine.Fail_transfer e) attempted
          end
          else []);
    }
  in
  let o = M.Engine.run ~rng:(rng ()) ~policy inst in
  let failed = match !first_round with Some l -> List.length l | None -> 0 in
  Alcotest.(check bool) "something was attempted" true (failed > 0);
  Alcotest.(check int) "all completed" (M.Instance.n_items inst) o.M.Engine.completed;
  Alcotest.(check int) "each failure retried" failed o.M.Engine.retries;
  Alcotest.(check int) "wasted transfers counted" failed o.M.Engine.rounds_lost;
  check_certified o "transient"

let test_retries_exhausted_quarantines () =
  (* edge 0 always fails: after max_retries + 1 attempts it must land
     in quarantine while the rest completes *)
  let g = Mgraph.Multigraph.create ~n:4 () in
  ignore (Mgraph.Multigraph.add_edge g 0 1);
  ignore (Mgraph.Multigraph.add_edge g 2 3);
  ignore (Mgraph.Multigraph.add_edge g 1 2);
  let inst = M.Instance.create g ~caps:[| 2; 2; 2; 2 |] in
  let policy =
    {
      M.Engine.policy_name = "edge-0-dead";
      decide =
        (fun ~round:_ ~attempted ->
          if List.mem 0 attempted then [ M.Engine.Fail_transfer 0 ] else []);
    }
  in
  let o = M.Engine.run ~rng:(rng ()) ~max_retries:3 ~policy inst in
  Alcotest.(check int) "others completed" 2 o.M.Engine.completed;
  (match o.M.Engine.quarantined with
  | [ (0, M.Engine.Retries_exhausted n) ] ->
      Alcotest.(check int) "attempts = max_retries + 1" 4 n
  | q ->
      Alcotest.failf "expected edge 0 quarantined for retries, got %d entries"
        (List.length q));
  Alcotest.(check bool) "backoff produced idle rounds" true
    (o.M.Engine.idle_rounds > 0);
  check_certified o "retries exhausted"

let test_backoff_is_exponential () =
  (* a single always-failing edge: attempt rounds must be spaced by at
     least 1, 2, 4, ... (the exponential backoff windows) *)
  let g = Mgraph.Multigraph.create ~n:2 () in
  ignore (Mgraph.Multigraph.add_edge g 0 1);
  let inst = M.Instance.create g ~caps:[| 1; 1 |] in
  let attempt_rounds = ref [] in
  let policy =
    {
      M.Engine.policy_name = "always-fail";
      decide =
        (fun ~round ~attempted ->
          if attempted <> [] then attempt_rounds := round :: !attempt_rounds;
          List.map (fun e -> M.Engine.Fail_transfer e) attempted);
    }
  in
  let o = M.Engine.run ~rng:(rng ()) ~max_retries:4 ~backoff_base:1 ~policy inst in
  Alcotest.(check int) "nothing completed" 0 o.M.Engine.completed;
  let rounds = List.rev !attempt_rounds in
  Alcotest.(check int) "max_retries + 1 attempts" 5 (List.length rounds);
  let rec gaps = function
    | a :: (b :: _ as rest) -> (b - a) :: gaps rest
    | _ -> []
  in
  List.iteri
    (fun i gap ->
      Alcotest.(check bool)
        (Printf.sprintf "gap %d >= backoff %d" i (1 + (1 lsl i)))
        true
        (gap >= 1 + (1 lsl i)))
    (gaps rounds);
  check_certified o "exponential backoff"

(* ------------------------------------------------------------------ *)
(* crashes and slowdowns *)

let test_crash_quarantines () =
  let inst = small_instance 11 in
  let g = M.Instance.graph inst in
  let victim =
    (* the busiest disk: maximizes quarantined edges *)
    let best = ref 0 in
    for v = 1 to M.Instance.n_disks inst - 1 do
      if Mgraph.Multigraph.degree g v > Mgraph.Multigraph.degree g !best then
        best := v
    done;
    !best
  in
  let policy = script [ (1, [ M.Engine.Crash_disk victim ]) ] in
  let o = M.Engine.run ~rng:(rng ()) ~policy inst in
  Alcotest.(check (list int)) "crash recorded" [ victim ] o.M.Engine.crashed;
  Alcotest.(check bool) "something quarantined" true
    (o.M.Engine.quarantined <> []);
  List.iter
    (fun (e, reason) ->
      (match reason with
      | M.Engine.Crashed d ->
          Alcotest.(check int) "quarantine names the crashed disk" victim d
      | r ->
          Alcotest.failf "unexpected quarantine reason: %s"
            (M.Engine.quarantine_reason_to_string r));
      let u, v = Mgraph.Multigraph.endpoints g e in
      Alcotest.(check bool) "quarantined edge touches the crash" true
        (u = victim || v = victim))
    o.M.Engine.quarantined;
  Alcotest.(check int) "completed + quarantined = items"
    (M.Instance.n_items inst)
    (o.M.Engine.completed + List.length o.M.Engine.quarantined);
  check_certified o "crash"

let test_slowdown_degrades_and_respects_caps () =
  (* slow the highest-capacity disk immediately; the execution
     certifier replays the degraded capacity, so a schedule that kept
     using the old cap would be rejected *)
  let inst = small_instance 13 in
  let victim = ref 0 in
  for v = 1 to M.Instance.n_disks inst - 1 do
    if M.Instance.cap inst v > M.Instance.cap inst !victim then victim := v
  done;
  let victim = !victim in
  let before = M.Instance.cap inst victim in
  let policy = script [ (0, [ M.Engine.Slow_disk victim ]) ] in
  let o = M.Engine.run ~rng:(rng ()) ~policy inst in
  Alcotest.(check int) "all completed" (M.Instance.n_items inst) o.M.Engine.completed;
  if before > 1 then begin
    Alcotest.(check (list (pair int int))) "degradation recorded"
      [ (victim, max 1 (before / 2)) ]
      o.M.Engine.degraded;
    Alcotest.(check bool) "the slowdown forced a replan" true
      (o.M.Engine.replans >= 1)
  end;
  check_certified o "slowdown"

(* ------------------------------------------------------------------ *)
(* seeded stochastic policy, determinism across jobs *)

let outcome_fingerprint o =
  let b = Buffer.create 256 in
  Buffer.add_string b (M.Schedule.to_string o.M.Engine.schedule);
  Buffer.add_string b (Format.asprintf "%a" M.Engine.pp_outcome o);
  List.iter
    (fun (r : M.Certify.exec_round) ->
      Buffer.add_string b
        (Printf.sprintf "|a%s|c%s|x%s|s%s"
           (String.concat "," (List.map string_of_int r.M.Certify.attempted))
           (String.concat "," (List.map string_of_int r.M.Certify.completed))
           (String.concat "," (List.map string_of_int r.M.Certify.crashed))
           (String.concat ","
              (List.map
                 (fun (d, c) -> Printf.sprintf "%d:%d" d c)
                 r.M.Certify.slowed))))
    o.M.Engine.execution.M.Certify.log;
  List.iter
    (fun bound -> Buffer.add_string b (Printf.sprintf "|b%d" bound))
    o.M.Engine.execution.M.Certify.replan_bounds;
  Buffer.contents b

let run_seeded ?(jobs = 1) ~seed ~fault_rate inst =
  M.Engine.run ~rng:(rng_of_int seed) ~jobs
    ~policy:(S.Fault.engine_policy ~fault_rate ~seed ())
    inst

let engine_faulty_certifies =
  qtest "engine: 10% fault rate still completes and certifies" ~count:40
    QCheck2.Gen.(
      let* seed = int_bound 100_000 in
      let* n = int_range 3 10 in
      let* m = int_range 1 60 in
      return (seed, n, m))
    (fun (seed, n, m) ->
      let inst =
        instance_of_spec
          { gspec = { seed; n; m }; cap_seed = seed + 7; menu = [ 1; 2; 4 ] }
      in
      let o = run_seeded ~seed ~fault_rate:0.1 inst in
      o.M.Engine.completed = M.Instance.n_items inst
      && M.Certify.exec_ok (M.Certify.certify_execution o.M.Engine.execution))

let engine_jobs_deterministic =
  let test_jobs =
    match Sys.getenv_opt "TEST_JOBS" with
    | Some s -> (try max 2 (int_of_string s) with _ -> 2)
    | None -> 2
  in
  qtest
    (Printf.sprintf "engine: jobs:%d outcome identical to jobs:1" test_jobs)
    ~count:25
    QCheck2.Gen.(
      let* seed = int_bound 100_000 in
      let* rate_pct = int_bound 15 in
      return (seed, rate_pct))
    (fun (seed, rate_pct) ->
      let fault_rate = float_of_int rate_pct /. 100.0 in
      let inst =
        instance_of_spec
          {
            gspec = { seed; n = 9; m = 50 };
            cap_seed = seed + 3;
            menu = [ 1; 2; 3; 4 ];
          }
      in
      let a = run_seeded ~jobs:1 ~seed ~fault_rate inst in
      let b = run_seeded ~jobs:test_jobs ~seed ~fault_rate inst in
      String.equal (outcome_fingerprint a) (outcome_fingerprint b))

let test_crash_and_faults_together () =
  let inst = small_instance 17 in
  let crashes, slowdowns =
    S.Fault.random_calamities (rng_of_int 99)
      ~n_disks:(M.Instance.n_disks inst) ~horizon:4 ~crashes:1 ~slowdowns:1
  in
  let o =
    M.Engine.run ~rng:(rng ())
      ~policy:
        (S.Fault.engine_policy ~fault_rate:0.05 ~crashes ~slowdowns ~seed:5 ())
      inst
  in
  Alcotest.(check int) "completed + quarantined = items"
    (M.Instance.n_items inst)
    (o.M.Engine.completed + List.length o.M.Engine.quarantined);
  check_certified o "calamities"

(* ------------------------------------------------------------------ *)
(* the certifier is genuinely adversarial: tampered logs are rejected *)

let tamper f o =
  let x = o.M.Engine.execution in
  M.Certify.certify_execution (f x)

let has pred v = List.exists pred v.M.Certify.exec_violations

let test_certifier_catches_tampering () =
  let inst = small_instance 23 in
  let o = run_seeded ~seed:23 ~fault_rate:0.08 inst in
  check_certified o "baseline";
  (* drop one completion: exactly-once must flag the missing item *)
  let dropped =
    tamper
      (fun x ->
        let rec drop_first = function
          | ({ M.Certify.completed = e :: rest; _ } as r) :: tl ->
              { r with M.Certify.completed = rest } :: tl
              |> fun l -> ignore e; l
          | r :: tl -> r :: drop_first tl
          | [] -> []
        in
        { x with M.Certify.log = drop_first x.M.Certify.log })
      o
  in
  Alcotest.(check bool) "missing item flagged" true
    (has (function M.Certify.Exec_missing _ -> true | _ -> false) dropped);
  (* duplicate a completion *)
  let duped =
    tamper
      (fun x ->
        match x.M.Certify.log with
        | ({ M.Certify.completed = e :: _; _ } as r0) :: tl ->
            {
              x with
              M.Certify.log =
                { r0 with M.Certify.completed = e :: r0.M.Certify.completed }
                :: tl;
            }
        | _ -> x)
      o
  in
  Alcotest.(check bool) "duplicate flagged" true
    (has (function M.Certify.Exec_duplicate _ -> true | _ -> false) duped);
  (* claim fewer certified replan rounds than were executed *)
  let overrun = tamper (fun x -> { x with M.Certify.replan_bounds = [ 0 ] }) o in
  Alcotest.(check bool) "round overrun flagged" true
    (has
       (function M.Certify.Exec_rounds_exceed_bounds _ -> true | _ -> false)
       overrun);
  (* complete an item that was never attempted that round *)
  let phantom =
    tamper
      (fun x ->
        match x.M.Certify.log with
        | ({ M.Certify.attempted = e :: _; _ } as r0) :: r1 :: tl ->
            let r1' =
              {
                r1 with
                M.Certify.completed = e :: r1.M.Certify.completed;
              }
            in
            { x with M.Certify.log = r0 :: r1' :: tl }
        | _ -> x)
      o
  in
  Alcotest.(check bool) "phantom completion flagged" true
    (has
       (function
         | M.Certify.Exec_not_attempted _ | M.Certify.Exec_duplicate _ -> true
         | _ -> false)
       phantom)

let test_certifier_catches_overload () =
  (* an execution round loading a disk beyond its degraded capacity *)
  let g = Mgraph.Multigraph.create ~n:3 () in
  let e0 = Mgraph.Multigraph.add_edge g 0 1 in
  let e1 = Mgraph.Multigraph.add_edge g 0 2 in
  let inst = M.Instance.create g ~caps:[| 2; 1; 1 |] in
  let round attempted completed slowed =
    { M.Certify.attempted; completed; crashed = []; slowed }
  in
  (* fine under c_0 = 2 *)
  let good =
    {
      M.Certify.instance = inst;
      log = [ round [ e0; e1 ] [ e0; e1 ] [] ];
      idle_rounds = 0;
      quarantined = [];
      replan_bounds = [ 1 ];
    }
  in
  Alcotest.(check bool) "two streams fit c=2" true
    (M.Certify.exec_ok (M.Certify.certify_execution good));
  (* same load after disk 0 degraded to c = 1 must be rejected *)
  let bad =
    {
      good with
      M.Certify.log =
        [ round [ e0 ] [] [ (0, 1) ]; round [ e0; e1 ] [ e0; e1 ] [] ];
      replan_bounds = [ 2 ];
    }
  in
  let v = M.Certify.certify_execution bad in
  Alcotest.(check bool) "degraded overload rejected" true
    (List.exists
       (function
         | M.Certify.Exec_overload { disk = 0; load = 2; cap = 1; _ } -> true
         | _ -> false)
       v.M.Certify.exec_violations)

let test_certifier_catches_crashed_disk_use () =
  let g = Mgraph.Multigraph.create ~n:2 () in
  let e0 = Mgraph.Multigraph.add_edge g 0 1 in
  let inst = M.Instance.create g ~caps:[| 1; 1 |] in
  let x =
    {
      M.Certify.instance = inst;
      log =
        [
          { M.Certify.attempted = []; completed = []; crashed = [ 1 ]; slowed = [] };
          { M.Certify.attempted = [ e0 ]; completed = [ e0 ]; crashed = []; slowed = [] };
        ];
      idle_rounds = 0;
      quarantined = [];
      replan_bounds = [ 2 ];
    }
  in
  let v = M.Certify.certify_execution x in
  Alcotest.(check bool) "crashed disk use rejected" true
    (List.exists
       (function
         | M.Certify.Exec_uses_crashed_disk { disk = 1; _ } -> true
         | _ -> false)
       v.M.Certify.exec_violations)

(* ------------------------------------------------------------------ *)
(* guards *)

let test_guards () =
  let inst = small_instance 1 in
  Alcotest.check_raises "negative retries"
    (Invalid_argument "Engine.run: max_retries must be >= 0") (fun () ->
      ignore (M.Engine.run ~max_retries:(-1) ~policy:M.Engine.no_faults inst));
  Alcotest.check_raises "zero backoff"
    (Invalid_argument "Engine.run: backoff_base must be >= 1") (fun () ->
      ignore (M.Engine.run ~backoff_base:0 ~policy:M.Engine.no_faults inst));
  Alcotest.check_raises "bad budget"
    (Invalid_argument "Engine.run: round_budget must be >= 1") (fun () ->
      ignore (M.Engine.run ~round_budget:0 ~policy:M.Engine.no_faults inst));
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Fault.engine_policy: fault_rate must be in [0, 1)")
    (fun () -> ignore (S.Fault.engine_policy ~fault_rate:1.0 ~seed:1 ()))

let () =
  Alcotest.run "engine"
    [
      ( "fault-free",
        [
          Alcotest.test_case "execution equals the plan" `Quick
            test_no_faults_is_plan;
          engine_no_faults_prop;
        ] );
      ( "transient",
        [
          Alcotest.test_case "failures retry and complete" `Quick
            test_transient_retry;
          Alcotest.test_case "bounded retries quarantine" `Quick
            test_retries_exhausted_quarantines;
          Alcotest.test_case "backoff is exponential" `Quick
            test_backoff_is_exponential;
        ] );
      ( "calamities",
        [
          Alcotest.test_case "crash quarantines its edges" `Quick
            test_crash_quarantines;
          Alcotest.test_case "slowdown degrades capacity" `Quick
            test_slowdown_degrades_and_respects_caps;
          Alcotest.test_case "crash + slowdown + flaky together" `Quick
            test_crash_and_faults_together;
        ] );
      ( "stochastic",
        [ engine_faulty_certifies; engine_jobs_deterministic ] );
      ( "certifier",
        [
          Alcotest.test_case "tampered logs rejected" `Quick
            test_certifier_catches_tampering;
          Alcotest.test_case "degraded overload rejected" `Quick
            test_certifier_catches_overload;
          Alcotest.test_case "crashed disk use rejected" `Quick
            test_certifier_catches_crashed_disk_use;
        ] );
      ("guards", [ Alcotest.test_case "argument validation" `Quick test_guards ]);
    ]
