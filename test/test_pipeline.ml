(* The planning pipeline layer: Instance.decompose, Schedule.merge,
   the decompose → solve → merge planner (Migration.Pipeline), and the
   schedule-format hardening that rides along with it. *)

module M = Migration
module Multigraph = Mgraph.Multigraph
open Test_util

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* two triangles (0,1,2) and (3,4,5), plus isolated disk 6 *)
let two_triangles () =
  let g = Multigraph.create ~n:7 () in
  List.iter
    (fun (u, v) -> ignore (Multigraph.add_edge g u v))
    [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ];
  M.Instance.create g ~caps:[| 2; 2; 2; 1; 3; 1; 5 |]

(* ------------------------------------------------------------------ *)
(* Instance.decompose *)

let test_decompose_identity () =
  let g = Multigraph.create ~n:3 () in
  ignore (Multigraph.add_edge g 0 1);
  ignore (Multigraph.add_edge g 1 2);
  let inst = M.Instance.create g ~caps:[| 1; 2; 1 |] in
  match M.Instance.decompose inst with
  | [ c ] ->
      Alcotest.(check (array int)) "identity nodes" [| 0; 1; 2 |] c.M.Instance.nodes;
      Alcotest.(check (array int)) "identity edges" [| 0; 1 |] c.M.Instance.edges
  | l -> Alcotest.failf "expected 1 component, got %d" (List.length l)

let test_decompose_components () =
  let inst = two_triangles () in
  let comps = M.Instance.decompose inst in
  Alcotest.(check int) "three components" 3 (List.length comps);
  let g = M.Instance.graph inst in
  let seen = Array.make (M.Instance.n_items inst) 0 in
  List.iter
    (fun c ->
      let ci = c.M.Instance.instance in
      Array.iteri
        (fun lv ov ->
          Alcotest.(check int) "cap remap" (M.Instance.cap inst ov)
            (M.Instance.cap ci lv))
        c.M.Instance.nodes;
      Array.iteri
        (fun i ov ->
          if i > 0 then
            Alcotest.(check bool) "node map strictly increasing" true
              (ov > c.M.Instance.nodes.(i - 1)))
        c.M.Instance.nodes;
      let cg = M.Instance.graph ci in
      Array.iteri
        (fun le oe ->
          seen.(oe) <- seen.(oe) + 1;
          let lu, lv = Multigraph.endpoints cg le in
          let ou, ov = Multigraph.endpoints g oe in
          let mu = c.M.Instance.nodes.(lu) and mv = c.M.Instance.nodes.(lv) in
          Alcotest.(check bool) "edge endpoints remap" true
            ((mu, mv) = (ou, ov) || (mu, mv) = (ov, ou)))
        c.M.Instance.edges)
    comps;
  Array.iteri
    (fun e k -> Alcotest.(check int) (Printf.sprintf "edge %d covered once" e) 1 k)
    seen;
  (* the isolated disk forms its own zero-item component *)
  Alcotest.(check bool) "isolated disk component" true
    (List.exists
       (fun c ->
         M.Instance.n_items c.M.Instance.instance = 0
         && c.M.Instance.nodes = [| 6 |])
       comps)

let test_self_loop_rejected () =
  let g = Multigraph.create ~n:2 () in
  ignore (Multigraph.add_edge g 0 0);
  Alcotest.check_raises "self-loop rejected"
    (Invalid_argument "Instance.create: self-loop (item already at target)")
    (fun () -> ignore (M.Instance.create g ~caps:[| 1; 1 |]))

(* ------------------------------------------------------------------ *)
(* Schedule.merge *)

let test_merge_remap () =
  let s1 = M.Schedule.of_rounds [| [ 0; 1 ]; [ 2 ] |] in
  let s2 = M.Schedule.of_rounds [| [ 0 ] |] in
  let merged = M.Schedule.merge [ (s1, [| 10; 11; 12 |]); (s2, [| 20 |]) ] in
  Alcotest.(check int) "rounds = max over parts" 2 (M.Schedule.n_rounds merged);
  let sorted i = List.sort compare (M.Schedule.round merged i) in
  Alcotest.(check (list int)) "round 0" [ 10; 11; 20 ] (sorted 0);
  Alcotest.(check (list int)) "round 1" [ 12 ] (sorted 1)

let test_merge_empty_and_bad_id () =
  Alcotest.(check int) "merge of nothing is empty" 0
    (M.Schedule.n_rounds (M.Schedule.merge []));
  let s = M.Schedule.of_rounds [| [ 3 ] |] in
  Alcotest.check_raises "out-of-range edge id"
    (Invalid_argument "Schedule.merge: edge id outside its map") (fun () ->
      ignore (M.Schedule.merge [ (s, [| 0 |]) ]))

(* ------------------------------------------------------------------ *)
(* Schedule text format hardening *)

let test_schedule_roundtrip () =
  let s = M.Schedule.of_rounds [| [ 0; 2 ]; []; [ 1 ] |] in
  let s' = M.Schedule.of_string (M.Schedule.to_string s) in
  Alcotest.(check string) "roundtrip" (M.Schedule.to_string s)
    (M.Schedule.to_string s');
  (* trailing blank lines stay fine *)
  ignore (M.Schedule.of_string (M.Schedule.to_string s ^ "\n  \n"))

let test_schedule_trailing_garbage () =
  match M.Schedule.of_string "rounds 1\n0 1\n2 3\n" with
  | _ -> Alcotest.fail "accepted trailing garbage"
  | exception Failure msg ->
      Alcotest.(check bool) "names the problem" true
        (contains msg "trailing garbage")

(* ------------------------------------------------------------------ *)
(* utilization semantics *)

let test_utilization_closed_form () =
  (* per-endpoint accounting must equal the 2m closed form on
     (loop-free, which is all of them) instances *)
  let inst = two_triangles () in
  let sched = M.plan ~rng:(rng_of_int 7) M.Greedy inst in
  check_valid_schedule inst sched "greedy";
  let cap_total = Array.fold_left ( + ) 0 (M.Instance.caps inst) in
  let expect =
    float_of_int (2 * M.Instance.n_items inst)
    /. (float_of_int cap_total *. float_of_int (M.Schedule.n_rounds sched))
  in
  Alcotest.(check (float 1e-9)) "2m closed form" expect
    (M.Schedule.utilization inst sched)

(* ------------------------------------------------------------------ *)
(* the pipeline planner *)

let test_pipeline_mixed_selection () =
  let inst = two_triangles () in
  let sched, report =
    M.Pipeline.solve ~rng:(rng_of_int 5) ~choose:M.Pipeline.auto_choose inst
  in
  check_valid_schedule inst sched "pipeline auto";
  Alcotest.(check int) "components" 3 report.M.Pipeline.components;
  let solver_of i =
    List.find (fun s -> s.M.Pipeline.component = i) report.M.Pipeline.selections
    |> fun s -> s.M.Pipeline.solver
  in
  (* triangle 0-1-2 is all-even, triangle 3-4-5 is not *)
  Alcotest.(check string) "even component" "even-opt" (solver_of 0);
  Alcotest.(check string) "odd component" "hetero" (solver_of 1)

(* disjoint union of two instances — guaranteed >= 2 components *)
let disjoint_union ia ib =
  let ga = M.Instance.graph ia and gb = M.Instance.graph ib in
  let na = Multigraph.n_nodes ga in
  let g = Multigraph.create ~n:(na + Multigraph.n_nodes gb) () in
  Multigraph.iter_edges ga (fun { Multigraph.u; v; _ } ->
      ignore (Multigraph.add_edge g u v));
  Multigraph.iter_edges gb (fun { Multigraph.u; v; _ } ->
      ignore (Multigraph.add_edge g (na + u) (na + v)));
  M.Instance.create g
    ~caps:(Array.append (M.Instance.caps ia) (M.Instance.caps ib))

let multi_spec_gen =
  QCheck2.Gen.(
    let* a = instance_spec_gen ~max_n:8 ~max_m:20 () in
    let* b = instance_spec_gen ~max_n:8 ~max_m:20 () in
    return (a, b))

let prop_pipeline_valid_and_no_worse (sa, sb) =
  let inst = disjoint_union (instance_of_spec sa) (instance_of_spec sb) in
  let sched, report =
    M.Pipeline.solve ~rng:(rng_of_int 11) ~choose:M.Pipeline.auto_choose inst
  in
  check_valid_schedule inst sched "pipeline";
  (* merged round count is the max over component round counts *)
  let worst =
    List.fold_left
      (fun acc s -> max acc s.M.Pipeline.rounds)
      0 report.M.Pipeline.selections
  in
  Alcotest.(check int) "merge takes max over components" worst
    (M.Schedule.n_rounds sched);
  (* never worse than handing the whole instance to the monolithic
     auto-chosen solver *)
  let mono =
    M.Solver.solve ~rng:(rng_of_int 11) (M.Pipeline.auto_choose inst) inst
  in
  M.Schedule.n_rounds sched <= M.Schedule.n_rounds mono

let test_pipeline_empty () =
  let g = Multigraph.create ~n:4 () in
  let inst = M.Instance.create g ~caps:[| 1; 1; 1; 1 |] in
  let sched, report =
    M.Pipeline.solve ~choose:M.Pipeline.auto_choose inst
  in
  Alcotest.(check int) "no rounds" 0 (M.Schedule.n_rounds sched);
  Alcotest.(check int) "four empty components" 4 report.M.Pipeline.components;
  Alcotest.(check int) "no selections" 0
    (List.length report.M.Pipeline.selections)

(* ------------------------------------------------------------------ *)
(* solver registry *)

let test_registry () =
  let names = M.Solver.names () in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
    [ "auto"; "even-opt"; "hetero"; "saia"; "greedy"; "orbits" ];
  Alcotest.(check bool) "unknown name" true (M.Solver.find "nope" = None)

let () =
  Alcotest.run "pipeline"
    [
      ( "decompose",
        [
          Alcotest.test_case "connected is identity" `Quick
            test_decompose_identity;
          Alcotest.test_case "components and maps" `Quick
            test_decompose_components;
          Alcotest.test_case "self-loops rejected" `Quick
            test_self_loop_rejected;
        ] );
      ( "merge",
        [
          Alcotest.test_case "remapping" `Quick test_merge_remap;
          Alcotest.test_case "empty and bad ids" `Quick
            test_merge_empty_and_bad_id;
        ] );
      ( "format",
        [
          Alcotest.test_case "roundtrip" `Quick test_schedule_roundtrip;
          Alcotest.test_case "trailing garbage" `Quick
            test_schedule_trailing_garbage;
          Alcotest.test_case "utilization closed form" `Quick
            test_utilization_closed_form;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "mixed selection" `Quick
            test_pipeline_mixed_selection;
          Alcotest.test_case "empty instance" `Quick test_pipeline_empty;
          qtest "pipeline: valid and never worse than monolithic" ~count:60
            multi_spec_gen prop_pipeline_valid_and_no_worse;
        ] );
      ("registry", [ Alcotest.test_case "built-ins" `Quick test_registry ]);
    ]
