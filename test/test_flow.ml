(* Tests for the max-flow substrate: Flow_network, Max_flow,
   Bmatching. *)

module Fn = Netflow.Flow_network
module Mf = Netflow.Max_flow
module Bm = Netflow.Bmatching
open Test_util

(* ------------------------------------------------------------------ *)
(* Flow_network *)

let test_network_basic () =
  let net = Fn.create ~n:3 in
  let a = Fn.add_arc net ~src:0 ~dst:1 ~cap:5 in
  Alcotest.(check int) "arc ids pair up" 0 a;
  Alcotest.(check int) "n_arcs counts residuals" 2 (Fn.n_arcs net);
  Alcotest.(check int) "src" 0 (Fn.src net a);
  Alcotest.(check int) "dst" 1 (Fn.dst net a);
  Alcotest.(check int) "residual" 5 (Fn.residual net a);
  Alcotest.(check int) "flow" 0 (Fn.flow net a);
  Fn.push net a 3;
  Alcotest.(check int) "residual after push" 2 (Fn.residual net a);
  Alcotest.(check int) "flow after push" 3 (Fn.flow net a);
  Alcotest.(check int) "reverse residual" 3 (Fn.residual net (a lxor 1));
  Fn.reset net;
  Alcotest.(check int) "reset" 5 (Fn.residual net a)

let test_network_errors () =
  let net = Fn.create ~n:2 in
  Alcotest.check_raises "negative cap"
    (Invalid_argument "Flow_network.add_arc: negative capacity") (fun () ->
      ignore (Fn.add_arc net ~src:0 ~dst:1 ~cap:(-1)));
  let a = Fn.add_arc net ~src:0 ~dst:1 ~cap:2 in
  Alcotest.check_raises "overpush" (Invalid_argument "Flow_network.push")
    (fun () -> Fn.push net a 3)

(* ------------------------------------------------------------------ *)
(* Max_flow on known networks *)

(* The classic CLRS example: max flow 23. *)
let test_clrs () =
  let net = Fn.create ~n:6 in
  let s = 0 and t = 5 in
  let add a b c = ignore (Fn.add_arc net ~src:a ~dst:b ~cap:c) in
  add s 1 16;
  add s 2 13;
  add 1 2 10;
  add 2 1 4;
  add 1 3 12;
  add 3 2 9;
  add 2 4 14;
  add 4 3 7;
  add 3 t 20;
  add 4 t 4;
  Alcotest.(check int) "value" 23 (Mf.max_flow net ~s ~t);
  Alcotest.(check bool) "conservation" true (Mf.conservation_ok net ~s ~t)

let test_disconnected () =
  let net = Fn.create ~n:4 in
  ignore (Fn.add_arc net ~src:0 ~dst:1 ~cap:7);
  ignore (Fn.add_arc net ~src:2 ~dst:3 ~cap:7);
  Alcotest.(check int) "no path" 0 (Mf.max_flow net ~s:0 ~t:3)

let test_parallel_arcs () =
  let net = Fn.create ~n:2 in
  ignore (Fn.add_arc net ~src:0 ~dst:1 ~cap:3);
  ignore (Fn.add_arc net ~src:0 ~dst:1 ~cap:4);
  Alcotest.(check int) "parallel arcs add" 7 (Mf.max_flow net ~s:0 ~t:1)

let test_s_eq_t () =
  let net = Fn.create ~n:2 in
  Alcotest.check_raises "s=t" (Invalid_argument "Max_flow.max_flow: s = t")
    (fun () -> ignore (Mf.max_flow net ~s:0 ~t:0))

(* Random bipartite unit networks: flow = value certified by min cut,
   and conservation holds. *)
let flow_cut_duality =
  qtest "max-flow: min cut certifies the flow value" ~count:60
    (graph_spec_gen ~max_n:14 ~max_m:60)
    (fun spec ->
      let g = graph_of_spec spec in
      let n = Mgraph.Multigraph.n_nodes g in
      (* build s -> left copy -> right copy -> t over the graph's edges *)
      let net = Fn.create ~n:((2 * n) + 2) in
      let s = 2 * n and t = (2 * n) + 1 in
      for v = 0 to n - 1 do
        ignore (Fn.add_arc net ~src:s ~dst:v ~cap:1);
        ignore (Fn.add_arc net ~src:(n + v) ~dst:t ~cap:1)
      done;
      Mgraph.Multigraph.iter_edges g (fun { Mgraph.Multigraph.u; v; _ } ->
          ignore (Fn.add_arc net ~src:u ~dst:(n + v) ~cap:1));
      let value = Mf.max_flow net ~s ~t in
      if not (Mf.conservation_ok net ~s ~t) then false
      else begin
        (* capacity of the cut found must equal the flow value *)
        let cut = Mf.min_cut net ~s in
        let cut_cap = ref 0 in
        let a = ref 0 in
        while !a < Fn.n_arcs net do
          (* forward arcs only *)
          let u = Fn.src net !a and v = Fn.dst net !a in
          if cut.(u) && not cut.(v) then
            cut_cap := !cut_cap + Fn.residual net !a + Fn.flow net !a;
          a := !a + 2
        done;
        !cut_cap = value
      end)

(* ------------------------------------------------------------------ *)
(* Bmatching *)

let test_bmatching_exact_small () =
  (* 2x2 complete bipartite with unit caps: perfect matching *)
  let p =
    {
      Bm.n_left = 2;
      n_right = 2;
      left_cap = [| 1; 1 |];
      right_cap = [| 1; 1 |];
      edges = [| (0, 0); (0, 1); (1, 0); (1, 1) |];
    }
  in
  (match Bm.solve_exact p with
  | None -> Alcotest.fail "expected a perfect matching"
  | Some sel ->
      let ld, rd = Bm.degrees p sel in
      Alcotest.(check (array int)) "left degrees" [| 1; 1 |] ld;
      Alcotest.(check (array int)) "right degrees" [| 1; 1 |] rd);
  (* infeasible despite equal cap sums: left node 1 needs two edges but
     only one is incident to it *)
  let p_bad =
    {
      Bm.n_left = 2;
      n_right = 2;
      left_cap = [| 1; 2 |];
      right_cap = [| 2; 1 |];
      edges = [| (0, 0); (0, 1); (1, 0) |];
    }
  in
  Alcotest.(check bool) "infeasible" true (Bm.solve_exact p_bad = None)

let test_bmatching_max () =
  let p =
    {
      Bm.n_left = 3;
      n_right = 2;
      left_cap = [| 1; 1; 1 |];
      right_cap = [| 1; 1 |];
      edges = [| (0, 0); (1, 0); (2, 1) |];
    }
  in
  let sel, value = Bm.solve_max p in
  Alcotest.(check int) "max matching" 2 value;
  let ld, rd = Bm.degrees p sel in
  Alcotest.(check bool) "caps respected" true
    (Array.for_all2 ( >= ) p.Bm.left_cap ld
    && Array.for_all2 ( >= ) p.Bm.right_cap rd)

let test_bmatching_errors () =
  let p =
    {
      Bm.n_left = 1;
      n_right = 1;
      left_cap = [| 1; 2 |];
      right_cap = [| 1 |];
      edges = [||];
    }
  in
  Alcotest.check_raises "cap length"
    (Invalid_argument "Bmatching: capacity vector length mismatch") (fun () ->
      ignore (Bm.solve_max p))

(* Regular bipartite multigraphs always admit an exact c-matching
   (this is the feasibility fact behind the paper's Lemma 4.1). *)
let bmatching_regular_feasible =
  qtest "bmatching: d-regular bipartite admits exact c-matching for c <= d"
    ~count:50
    QCheck2.Gen.(
      let* seed = int_bound 1_000_000 in
      let* n = int_range 2 8 in
      let* d = int_range 1 6 in
      let* c = int_range 1 d in
      return (seed, n, d, c))
    (fun (seed, n, d, c) ->
      let rng = rng_of_int seed in
      (* random d-regular bipartite multigraph via d perfect matchings *)
      let edges = ref [] in
      for _ = 1 to d do
        let perm = Array.init n Fun.id in
        for i = n - 1 downto 1 do
          let j = Random.State.int rng (i + 1) in
          let t = perm.(i) in
          perm.(i) <- perm.(j);
          perm.(j) <- t
        done;
        Array.iteri (fun l r -> edges := (l, r) :: !edges) perm
      done;
      let p =
        {
          Bm.n_left = n;
          n_right = n;
          left_cap = Array.make n c;
          right_cap = Array.make n c;
          edges = Array.of_list !edges;
        }
      in
      match Bm.solve_exact p with
      | None -> false
      | Some sel ->
          let ld, rd = Bm.degrees p sel in
          Array.for_all (fun x -> x = c) ld && Array.for_all (fun x -> x = c) rd)

let () =
  Alcotest.run "netflow"
    [
      ( "network",
        [
          Alcotest.test_case "basic" `Quick test_network_basic;
          Alcotest.test_case "errors" `Quick test_network_errors;
        ] );
      ( "max_flow",
        [
          Alcotest.test_case "clrs example" `Quick test_clrs;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
          Alcotest.test_case "parallel arcs" `Quick test_parallel_arcs;
          Alcotest.test_case "s = t rejected" `Quick test_s_eq_t;
          flow_cut_duality;
        ] );
      ( "bmatching",
        [
          Alcotest.test_case "exact small" `Quick test_bmatching_exact_small;
          Alcotest.test_case "max" `Quick test_bmatching_max;
          Alcotest.test_case "errors" `Quick test_bmatching_errors;
          bmatching_regular_feasible;
        ] );
    ]
