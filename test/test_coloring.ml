(* Tests for the edge-coloring substrate: Edge_coloring state,
   Recolor (capacitated Kempe walks), Greedy, Vizing, Shannon. *)

module Multigraph = Mgraph.Multigraph
module Ec = Coloring.Edge_coloring
open Test_util

(* gnm graphs deduplicated into simple graphs, for Vizing *)
let simple_of_spec spec =
  let g = graph_of_spec spec in
  let seen = Hashtbl.create 16 in
  let h = Multigraph.create ~n:(Multigraph.n_nodes g) () in
  Multigraph.iter_edges g (fun { Multigraph.u; v; _ } ->
      let key = if u <= v then (u, v) else (v, u) in
      if u <> v && not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        ignore (Multigraph.add_edge h u v)
      end);
  h

(* ------------------------------------------------------------------ *)
(* Edge_coloring state *)

let small_graph () =
  let g = Multigraph.create ~n:3 () in
  let e0 = Multigraph.add_edge g 0 1 in
  let e1 = Multigraph.add_edge g 0 1 in
  let e2 = Multigraph.add_edge g 1 2 in
  (g, e0, e1, e2)

let test_state_basic () =
  let g, e0, e1, e2 = small_graph () in
  let t = Ec.create g ~cap:(fun v -> if v = 1 then 2 else 1) ~colors:2 in
  Alcotest.(check int) "palette" 2 (Ec.n_colors t);
  Alcotest.(check int) "uncolored" 3 (Ec.n_uncolored t);
  Ec.assign t e0 0;
  Alcotest.(check (option int)) "color_of" (Some 0) (Ec.color_of t e0);
  Alcotest.(check int) "count" 1 (Ec.count t 0 0);
  Alcotest.(check bool) "0 saturated in color 0" false (Ec.missing t 0 0);
  Alcotest.(check bool) "1 still missing color 0" true (Ec.missing t 1 0);
  (* node 1 has cap 2: e2 can share color 0 *)
  Ec.assign t e2 0;
  Alcotest.(check bool) "1 now saturated" false (Ec.missing t 1 0);
  Alcotest.(check (option int)) "common for e1" (Some 1) (Ec.common_missing t e1);
  Ec.assign t e1 1;
  Alcotest.(check bool) "complete" true (Ec.is_complete t);
  check_valid_coloring t "state basic";
  Ec.unassign t e1;
  Alcotest.(check int) "uncolored again" 1 (Ec.n_uncolored t);
  Alcotest.(check (option int)) "uncolored edge" None (Ec.color_of t e1)

let test_state_guards () =
  let g, e0, e1, _ = small_graph () in
  let t = Ec.create g ~cap:(fun _ -> 1) ~colors:1 in
  Ec.assign t e0 0;
  Alcotest.check_raises "overflow"
    (Invalid_argument "Edge_coloring.assign: capacity overflow at first endpoint")
    (fun () -> Ec.assign t e1 0);
  Alcotest.check_raises "double assign"
    (Invalid_argument "Edge_coloring.assign: edge already colored") (fun () ->
      Ec.assign t e0 0);
  Alcotest.check_raises "bad color"
    (Invalid_argument "Edge_coloring: color not in palette") (fun () ->
      Ec.assign t e1 5);
  Alcotest.check_raises "unassign uncolored"
    (Invalid_argument "Edge_coloring.unassign: edge not colored") (fun () ->
      Ec.unassign t e1)

let test_state_self_loop_rejected () =
  let g = Multigraph.create ~n:1 () in
  ignore (Multigraph.add_edge g 0 0);
  Alcotest.check_raises "self loop"
    (Invalid_argument "Edge_coloring.create: graph has a self-loop") (fun () ->
      ignore (Ec.create g ~cap:(fun _ -> 1) ~colors:1))

let test_state_missing_levels () =
  let g = Multigraph.create ~n:2 () in
  let e0 = Multigraph.add_edge g 0 1 in
  let e1 = Multigraph.add_edge g 0 1 in
  let t = Ec.create g ~cap:(fun _ -> 3) ~colors:1 in
  Alcotest.(check bool) "strongly missing at 0 uses" true
    (Ec.strongly_missing t 0 0);
  Ec.assign t e0 0;
  Alcotest.(check bool) "still strongly missing" true
    (Ec.strongly_missing t 0 0);
  Ec.assign t e1 0;
  Alcotest.(check bool) "lightly missing" true (Ec.lightly_missing t 0 0);
  Alcotest.(check bool) "not strongly" false (Ec.strongly_missing t 0 0);
  Alcotest.(check (list int)) "missing colors" [ 0 ] (Ec.missing_colors t 0)

let test_state_add_color_and_classes () =
  let g, e0, e1, e2 = small_graph () in
  let t = Ec.create g ~cap:(fun _ -> 1) ~colors:1 in
  Ec.assign t e0 0;
  let c1 = Ec.add_color t in
  Alcotest.(check int) "new color id" 1 c1;
  Ec.assign t e1 c1;
  (* node 1 is now saturated in both colors; e2 = (1,2) needs a third *)
  let c2 = Ec.add_color t in
  Ec.assign t e2 c2;
  check_valid_coloring t "after palette growth";
  Ec.unassign t e2;
  Alcotest.check_raises "caps enforced across palette growth"
    (Invalid_argument "Edge_coloring.assign: capacity overflow at first endpoint")
    (fun () -> Ec.assign t e2 c1);
  let t2 = Ec.create g ~cap:(fun _ -> 2) ~colors:1 in
  Ec.assign t2 e0 0;
  Ec.assign t2 e2 0;
  let classes = Ec.classes t2 in
  Alcotest.(check (list int)) "class 0" [ e0; e2 ] (List.sort compare classes.(0));
  Alcotest.(check (list int)) "incident with color" [ e0 ]
    (Ec.incident_with_color t2 0 0)

let test_copy_restore () =
  let g, e0, e1, e2 = small_graph () in
  let t = Ec.create g ~cap:(fun _ -> 2) ~colors:2 in
  Ec.assign t e0 0;
  let snapshot = Ec.copy t in
  Ec.assign t e1 1;
  Ec.assign t e2 0;
  Ec.unassign t e0;
  Ec.restore ~snapshot t;
  Alcotest.(check (option int)) "e0 restored" (Some 0) (Ec.color_of t e0);
  Alcotest.(check (option int)) "e1 restored" None (Ec.color_of t e1);
  Alcotest.(check int) "uncolored restored" 2 (Ec.n_uncolored t);
  check_valid_coloring t "restore"

(* ------------------------------------------------------------------ *)
(* Greedy *)

let greedy_valid =
  qtest "greedy: always complete and valid"
    (instance_spec_gen ~max_n:25 ~max_m:150 ())
    (fun spec ->
      let inst = instance_of_spec spec in
      let t =
        Coloring.Greedy_coloring.color
          (Migration.Instance.graph inst)
          ~cap:(Migration.Instance.cap inst)
      in
      Ec.is_complete t && Ec.validate t = Ok ())

let greedy_palette_bound =
  qtest "greedy: palette < 2 * max ceil(d/c)"
    (instance_spec_gen ~max_n:25 ~max_m:150 ())
    (fun spec ->
      let inst = instance_of_spec spec in
      let g = Migration.Instance.graph inst in
      if Multigraph.n_edges g = 0 then true
      else begin
        let t =
          Coloring.Greedy_coloring.color g ~cap:(Migration.Instance.cap inst)
        in
        (* first-fit never opens a color unless all lower ones are
           saturated at an endpoint: classic 2Δ̄-1 bound *)
        Ec.n_colors t <= (2 * Migration.Lower_bounds.lb1 inst) - 1
      end)

(* ------------------------------------------------------------------ *)
(* Recolor *)

let test_try_free_trivial () =
  let g = Multigraph.create ~n:4 () in
  let e0 = Multigraph.add_edge g 0 1 in
  let e1 = Multigraph.add_edge g 1 2 in
  let _ = e1 in
  let t = Ec.create g ~cap:(fun _ -> 1) ~colors:2 in
  Ec.assign t e0 0;
  (* 0 is saturated in color 0, missing color 1; free color 0 at node 0 *)
  Alcotest.(check bool) "frees by flipping e0" true
    (Coloring.Recolor.try_free t ~v:0 ~a:0 ~b:1 ());
  Alcotest.(check (option int)) "e0 flipped" (Some 1) (Ec.color_of t e0);
  check_valid_coloring t "try_free trivial";
  (* already missing at an untouched node: no-op true *)
  Alcotest.(check bool) "already missing" true
    (Coloring.Recolor.try_free t ~v:2 ~a:0 ~b:1 ())

let test_try_free_chain () =
  (* path 0-1-2-3 colored alternately; freeing color a at one end must
     flip the whole chain *)
  let g = Mgraph.Graph_gen.path 4 in
  let t = Ec.create g ~cap:(fun _ -> 1) ~colors:2 in
  Ec.assign t 0 0;
  Ec.assign t 1 1;
  Ec.assign t 2 0;
  Alcotest.(check bool) "free 0 at node 0" true
    (Coloring.Recolor.try_free t ~v:0 ~a:0 ~b:1 ());
  check_valid_coloring t "chain";
  Alcotest.(check bool) "color 0 now missing at 0" true (Ec.missing t 0 0)

let test_try_free_guards () =
  let g = Mgraph.Graph_gen.path 2 in
  let t = Ec.create g ~cap:(fun _ -> 1) ~colors:2 in
  Alcotest.check_raises "a = b" (Invalid_argument "Recolor.try_free: a = b")
    (fun () -> ignore (Coloring.Recolor.try_free t ~v:0 ~a:0 ~b:0 ()));
  Ec.assign t 0 1;
  Alcotest.check_raises "b not missing"
    (Invalid_argument "Recolor.try_free: b must be missing at v") (fun () ->
      ignore (Coloring.Recolor.try_free t ~v:0 ~a:0 ~b:1 ()))

let recolor_preserves_validity =
  qtest "recolor: try_color_edge leaves a valid state either way"
    ~count:200
    (instance_spec_gen ~max_n:12 ~max_m:60 ())
    (fun spec ->
      let inst = instance_of_spec spec in
      let g = Migration.Instance.graph inst in
      if Multigraph.n_edges g = 0 then true
      else begin
        (* tight palette: exactly lb1 colors *)
        let q = max 1 (Migration.Lower_bounds.lb1 inst) in
        let t = Ec.create g ~cap:(Migration.Instance.cap inst) ~colors:q in
        let rng = rng_of_int spec.gspec.seed in
        Multigraph.iter_edges g (fun { Multigraph.id; _ } ->
            ignore (Coloring.Recolor.try_color_edge t ~rng id));
        Ec.validate t = Ok ()
      end)

(* ------------------------------------------------------------------ *)
(* Vizing *)

let test_vizing_petersen () =
  (* Petersen graph is class 2: needs exactly Δ+1 = 4 colors *)
  let g = Multigraph.create ~n:10 () in
  let outer = [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] in
  let spokes = [ (0, 5); (1, 6); (2, 7); (3, 8); (4, 9) ] in
  let inner = [ (5, 7); (7, 9); (9, 6); (6, 8); (8, 5) ] in
  List.iter
    (fun (u, v) -> ignore (Multigraph.add_edge g u v))
    (outer @ spokes @ inner);
  let t = Coloring.Vizing.color g in
  Alcotest.(check bool) "complete" true (Ec.is_complete t);
  check_valid_coloring t "petersen";
  Alcotest.(check int) "palette 4" 4 (Ec.n_colors t);
  Alcotest.(check int) "no fallbacks" 0 (Coloring.Vizing.last_fallbacks ())

let test_vizing_rejects_multigraph () =
  let g = Mgraph.Graph_gen.triangle_stack 2 in
  Alcotest.check_raises "not simple"
    (Invalid_argument "Vizing.color: graph must be simple") (fun () ->
      ignore (Coloring.Vizing.color g))

let vizing_bound =
  qtest "vizing: valid, complete, palette <= Δ+1, no fallbacks" ~count:150
    (graph_spec_gen ~max_n:20 ~max_m:120)
    (fun spec ->
      let g = simple_of_spec spec in
      let t = Coloring.Vizing.color g in
      Ec.is_complete t
      && Ec.validate t = Ok ()
      && Ec.n_colors t <= Multigraph.max_degree g + 1
      && Coloring.Vizing.last_fallbacks () = 0)

(* ------------------------------------------------------------------ *)
(* Shannon *)

let shannon_bound =
  qtest "shannon: valid, complete, palette <= floor(3Δ/2)" ~count:120
    (graph_spec_gen ~max_n:16 ~max_m:120)
    (fun spec ->
      let g = graph_of_spec spec in
      if Multigraph.n_edges g = 0 then true
      else begin
        let rng = rng_of_int spec.seed in
        let t = Coloring.Shannon.color ~rng g in
        Ec.is_complete t
        && Ec.validate t = Ok ()
        && Ec.n_colors t <= max 1 (Coloring.Shannon.bound g)
      end)

let test_shannon_triangle_tight () =
  (* triangle with multiplicity M needs exactly 3M colors: Shannon's
     bound is tight here (Δ = 2M, 3Δ/2 = 3M) *)
  let m = 4 in
  let g = Mgraph.Graph_gen.triangle_stack m in
  let t = Coloring.Shannon.color ~rng:(rng_of_int 3) g in
  check_valid_coloring t "triangle";
  Alcotest.(check int) "exactly 3M colors" (3 * m) (Ec.n_colors t)

(* ------------------------------------------------------------------ *)
(* König *)

let test_konig_sides () =
  let g = Mgraph.Graph_gen.cycle 4 in
  Alcotest.(check bool) "even cycle bipartite" true
    (Coloring.Konig.sides g <> None);
  let odd = Mgraph.Graph_gen.cycle 5 in
  Alcotest.(check bool) "odd cycle not" true (Coloring.Konig.sides odd = None);
  let loop = Multigraph.create ~n:1 () in
  ignore (Multigraph.add_edge loop 0 0);
  Alcotest.(check bool) "self loop not" true (Coloring.Konig.sides loop = None)

let test_konig_rejects () =
  Alcotest.check_raises "odd cycle"
    (Invalid_argument "Konig.color: graph is not bipartite") (fun () ->
      ignore (Coloring.Konig.color (Mgraph.Graph_gen.cycle 3)))

let konig_exact_delta =
  qtest "konig: bipartite multigraphs colored with exactly Δ colors"
    ~count:80
    QCheck2.Gen.(
      let* seed = int_bound 100_000 in
      let* n1 = int_range 1 10 in
      let* n2 = int_range 1 10 in
      let* m = int_range 0 60 in
      return (seed, n1, n2, m))
    (fun (seed, n1, n2, m) ->
      let g = Mgraph.Graph_gen.bipartite (rng_of_int seed) ~n1 ~n2 ~m in
      let t = Coloring.Konig.color g in
      Ec.is_complete t
      && Ec.validate t = Ok ()
      && Ec.n_colors t = Multigraph.max_degree g)

let test_konig_beats_shannon_on_multiedges () =
  (* two nodes, 6 parallel edges: Δ = 6 = König optimum; Shannon's
     bound would allow 9 *)
  let g = Multigraph.create ~n:2 () in
  for _ = 1 to 6 do
    ignore (Multigraph.add_edge g 0 1)
  done;
  let t = Coloring.Konig.color g in
  check_valid_coloring t "parallel 6";
  Alcotest.(check int) "exactly 6" 6 (Ec.n_colors t)

let test_konig_disconnected () =
  (* two bipartite components with different local degrees: palette is
     the global max degree, not the sum *)
  let g = Multigraph.create ~n:6 () in
  ignore (Multigraph.add_edge g 0 1);
  ignore (Multigraph.add_edge g 0 1);
  ignore (Multigraph.add_edge g 0 1);
  ignore (Multigraph.add_edge g 2 3);
  ignore (Multigraph.add_edge g 4 5);
  let t = Coloring.Konig.color g in
  check_valid_coloring t "disconnected";
  Alcotest.(check int) "palette = max degree" 3 (Ec.n_colors t)

let test_konig_edgeless () =
  let g = Multigraph.create ~n:4 () in
  let t = Coloring.Konig.color g in
  Alcotest.(check int) "empty palette" 0 (Ec.n_colors t)

let test_greedy_order_override () =
  let g = Mgraph.Graph_gen.path 3 in
  (* reversed order still yields a complete valid coloring *)
  let t = Coloring.Greedy_coloring.color ~order:[ 1; 0 ] g ~cap:(fun _ -> 1) in
  Alcotest.(check bool) "complete" true (Ec.is_complete t);
  check_valid_coloring t "order override"

let () =
  Alcotest.run "coloring"
    [
      ( "state",
        [
          Alcotest.test_case "basic" `Quick test_state_basic;
          Alcotest.test_case "guards" `Quick test_state_guards;
          Alcotest.test_case "self loop" `Quick test_state_self_loop_rejected;
          Alcotest.test_case "missing levels" `Quick test_state_missing_levels;
          Alcotest.test_case "add color / classes" `Quick
            test_state_add_color_and_classes;
          Alcotest.test_case "copy & restore" `Quick test_copy_restore;
        ] );
      ("greedy", [ greedy_valid; greedy_palette_bound ]);
      ( "recolor",
        [
          Alcotest.test_case "try_free trivial" `Quick test_try_free_trivial;
          Alcotest.test_case "try_free chain" `Quick test_try_free_chain;
          Alcotest.test_case "guards" `Quick test_try_free_guards;
          recolor_preserves_validity;
        ] );
      ( "vizing",
        [
          Alcotest.test_case "petersen (class 2)" `Quick test_vizing_petersen;
          Alcotest.test_case "rejects multigraphs" `Quick
            test_vizing_rejects_multigraph;
          vizing_bound;
        ] );
      ( "shannon",
        [
          shannon_bound;
          Alcotest.test_case "triangle tight" `Quick test_shannon_triangle_tight;
        ] );
      ( "konig",
        [
          Alcotest.test_case "sides" `Quick test_konig_sides;
          Alcotest.test_case "rejects non-bipartite" `Quick test_konig_rejects;
          konig_exact_delta;
          Alcotest.test_case "parallel edges exact" `Quick
            test_konig_beats_shannon_on_multiedges;
          Alcotest.test_case "disconnected" `Quick test_konig_disconnected;
          Alcotest.test_case "edgeless" `Quick test_konig_edgeless;
        ] );
      ( "greedy_order",
        [ Alcotest.test_case "order override" `Quick test_greedy_order_override ] );
    ]
