(** Shared generators and helpers for the test suites. *)

module Multigraph = Mgraph.Multigraph

let rng_of_int seed = Random.State.make [| seed; 0x5eed |]

(* ------------------------------------------------------------------ *)
(* QCheck generators                                                   *)

(** Random multigraph described by (seed, n, m) so shrinking stays
    meaningful; realized deterministically. *)
type graph_spec = { seed : int; n : int; m : int }

let graph_of_spec { seed; n; m } =
  let rng = rng_of_int seed in
  Mgraph.Graph_gen.gnm rng ~n ~m

let graph_spec_gen ~max_n ~max_m =
  QCheck2.Gen.(
    let* seed = int_bound 1_000_000 in
    let* n = int_range 2 max_n in
    let* m = int_range 0 max_m in
    return { seed; n; m })

let pp_spec { seed; n; m } = Printf.sprintf "{seed=%d; n=%d; m=%d}" seed n m

(** Instance spec: graph spec plus a capacity menu selector. *)
type instance_spec = { gspec : graph_spec; cap_seed : int; menu : int list }

let instance_of_spec { gspec; cap_seed; menu } =
  let g = graph_of_spec gspec in
  let rng = rng_of_int cap_seed in
  Migration.Instance.random_caps rng g ~choices:menu

let instance_spec_gen ?(menu = [ 1; 2; 3; 4; 5 ]) ~max_n ~max_m () =
  QCheck2.Gen.(
    let* gspec = graph_spec_gen ~max_n ~max_m in
    let* cap_seed = int_bound 1_000_000 in
    return { gspec; cap_seed; menu })

let pp_instance_spec { gspec; cap_seed; menu } =
  Printf.sprintf "{g=%s; cap_seed=%d; menu=[%s]}" (pp_spec gspec) cap_seed
    (String.concat ";" (List.map string_of_int menu))

(* ------------------------------------------------------------------ *)
(* Assertion helpers                                                   *)

let check_valid_schedule inst sched where =
  match Migration.Schedule.validate inst sched with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: invalid schedule: %s" where msg

let check_valid_coloring ec where =
  match Coloring.Edge_coloring.validate ec with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: invalid coloring: %s" where msg

(** Make every node's degree even by pairing odd-degree nodes, so the
    graph admits Euler circuits. *)
let evenize g =
  let odd = ref [] in
  for v = Multigraph.n_nodes g - 1 downto 0 do
    if Multigraph.degree g v mod 2 = 1 then odd := v :: !odd
  done;
  let rec pair = function
    | a :: b :: rest ->
        ignore (Multigraph.add_edge g a b);
        pair rest
    | _ -> ()
  in
  pair !odd;
  g

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)
